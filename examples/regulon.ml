(* Whole-regulon deconvolution through a realistic microarray pipeline.

   Twelve synthetic cell-cycle genes (four expression classes: swarmer,
   early-stalked, mid-cycle, late-predivisional) are measured the way a
   real study would: population-level signals, gene-specific probe gains
   and backgrounds, chip-to-chip scale drift, three replicates. The raw
   intensities are background-corrected, normalized and averaged, then
   every gene is deconvolved against one shared population kernel
   (Deconv.Batch) and classified by its recovered peak phase.

   Run with: dune exec examples/regulon.exe *)

open Numerics

let () =
  let genes = Biomodels.Cell_cycle_genes.panel in
  let times = Dataio.Datasets.lv_measurement_times in
  let params = Cellpop.Params.paper_2011 in
  let rng = Rng.create 777 in

  (* 1. True population-level signals per gene. *)
  Printf.printf "simulating population signals for %d genes...\n%!" (Array.length genes);
  let data_kernel =
    Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.split rng) ~n_cells:6000 ~times
      ~n_phi:201
  in
  let true_signals =
    Mat.of_rows
      (Array.map
         (fun (g : Biomodels.Cell_cycle_genes.gene) ->
           Deconv.Forward.apply_fn data_kernel g.Biomodels.Cell_cycle_genes.profile)
         genes)
  in

  (* 2. Microarray measurement: probes, replicates, chip drift. *)
  let raw =
    Microarray.Timecourse.simulate ~replicates:3 (Rng.split rng)
      ~gene_names:(Array.map (fun (g : Biomodels.Cell_cycle_genes.gene) -> g.Biomodels.Cell_cycle_genes.name) genes)
      ~times ~true_signals
  in
  let processed = Microarray.Timecourse.process raw in

  (* 3. Batch deconvolution with an independently simulated kernel. *)
  Printf.printf "deconvolving the panel against a shared kernel...\n%!";
  let inversion_kernel =
    Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.split rng) ~n_cells:6000 ~times
      ~n_phi:201
  in
  let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:12 in
  let batch = Deconv.Batch.prepare ~kernel:inversion_kernel ~basis ~params () in
  let estimates =
    Deconv.Batch.solve_all batch ~sigmas:processed.Microarray.Timecourse.sigmas
      ~measurements:processed.Microarray.Timecourse.estimates ()
  in

  (* 4. Classify genes by recovered peak phase and score. *)
  let predicted =
    Deconv.Batch.classify_by_peak batch estimates
      ~boundaries:Biomodels.Cell_cycle_genes.class_boundaries
  in
  let class_names = [| "swarmer"; "early-stalked"; "mid-cycle"; "late-predivisional" |] in
  Printf.printf "\n%-8s %-20s %-20s %10s %10s\n" "gene" "true class" "predicted class"
    "true peak" "est peak";
  let correct = ref 0 in
  Array.iteri
    (fun i (g : Biomodels.Cell_cycle_genes.gene) ->
      let true_class = Biomodels.Cell_cycle_genes.class_index g in
      if predicted.(i) = true_class then incr correct;
      Printf.printf "%-8s %-20s %-20s %10.2f %10.2f\n" g.Biomodels.Cell_cycle_genes.name
        class_names.(true_class) class_names.(predicted.(i))
        g.Biomodels.Cell_cycle_genes.peak_phase
        (Deconv.Batch.peak_phase batch estimates.(i)))
    genes;
  Printf.printf "\nclassification accuracy: %d/%d\n" !correct (Array.length genes);

  (* 5. Shape recovery per gene (correlation with the truth). *)
  let phases = Deconv.Batch.phases batch in
  let mean_corr = ref 0.0 in
  Array.iteri
    (fun i (g : Biomodels.Cell_cycle_genes.gene) ->
      let truth = Array.map g.Biomodels.Cell_cycle_genes.profile phases in
      let c = Stats.correlation truth estimates.(i).Deconv.Solver.profile in
      mean_corr := !mean_corr +. c)
    genes;
  Printf.printf "mean profile correlation across the panel: %.4f\n"
    (!mean_corr /. float_of_int (Array.length genes))
