(* The paper's section 4.1 validation (Figs. 2-3): a Lotka-Volterra
   'biological oscillator' with a 150-minute period plays the role of a
   known single-cell expression program. We push it through the population
   forward model, optionally corrupt it with noise, deconvolve, and compare
   against the known truth.

   Run with: dune exec examples/lv_oscillator.exe            (noiseless)
             dune exec examples/lv_oscillator.exe -- 0.10    (10% noise)  *)

open Numerics

let () =
  let noise_level =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.0
  in
  let p = Biomodels.Lotka_volterra.default_params in
  let x0 = Biomodels.Lotka_volterra.default_x0 in
  Printf.printf "Lotka-Volterra oscillator: a=%.4g b=%.4g c=%.4g d=%.4g\n"
    p.Biomodels.Lotka_volterra.a p.Biomodels.Lotka_volterra.b p.Biomodels.Lotka_volterra.c
    p.Biomodels.Lotka_volterra.d;
  Printf.printf "measured period: %.1f minutes (tuned to the Caulobacter cycle)\n\n"
    (Biomodels.Lotka_volterra.period p ~x0);

  let phases, f1, f2 = Biomodels.Lotka_volterra.phase_profiles p ~x0 ~n_phi:400 in
  let profile_of values phi = Interp.linear_clamped ~x:phases ~y:values phi in

  let noise =
    if noise_level > 0.0 then Deconv.Noise.Gaussian_fraction noise_level
    else Deconv.Noise.No_noise
  in
  Printf.printf "noise model: %s\n\n" (Deconv.Noise.to_string noise);

  let times = Dataio.Datasets.lv_measurement_times in
  let config = { (Deconv.Pipeline.default_config ~times) with Deconv.Pipeline.noise; seed = 2 } in

  List.iter
    (fun (name, values) ->
      let run = Deconv.Pipeline.run config ~profile:(profile_of values) in
      Printf.printf "%s: lambda=%.3g, recovery %s\n" name run.Deconv.Pipeline.lambda
        (Deconv.Metrics.to_string run.Deconv.Pipeline.recovery);
      let minutes = Array.map (fun phi -> phi *. 150.0) run.Deconv.Pipeline.phases in
      Dataio.Ascii_plot.output stdout
        ~title:(Printf.sprintf "%s: single cell (*) vs deconvolved (o) vs population (#)" name)
        [
          { Dataio.Ascii_plot.label = name ^ " single cell"; glyph = '*'; xs = minutes;
            ys = run.Deconv.Pipeline.truth };
          { Dataio.Ascii_plot.label = name ^ " deconvolved"; glyph = 'o'; xs = minutes;
            ys = run.Deconv.Pipeline.estimate.Deconv.Solver.profile };
          { Dataio.Ascii_plot.label = name ^ " population (vs minutes)"; glyph = '#';
            xs = times; ys = run.Deconv.Pipeline.noisy };
        ];
      print_newline ())
    [ ("x1", f1); ("x2", f2) ]
