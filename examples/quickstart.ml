(* Quickstart: deconvolve a known single-cell expression profile from
   simulated population data.

   A cell-cycle-regulated gene is modeled as a smooth pulse peaking
   mid-cycle. We simulate an asynchronous Caulobacter population measuring
   it at 13 time points, then recover the single-cell profile by
   deconvolution and compare with the truth.

   Run with: dune exec examples/quickstart.exe *)

open Numerics

let () =
  (* 1. The 'true' single-cell profile f(phi): a pulse peaking at phase 0.5. *)
  let profile = Biomodels.Gene_profile.gaussian_pulse ~center:0.5 ~width:0.12 ~height:4.0 () in

  (* 2. Configure the experiment: measurements every 15 minutes for 3 hours,
     10% Gaussian noise, lambda chosen by GCV. *)
  let times = Array.init 13 (fun i -> 15.0 *. float_of_int i) in
  let config =
    { (Deconv.Pipeline.default_config ~times) with
      noise = Deconv.Noise.Gaussian_fraction 0.10;
      seed = 2024;
    }
  in

  (* 3. Run: simulate population data, add noise, deconvolve. *)
  let run = Deconv.Pipeline.run config ~profile in

  Printf.printf "Quickstart: deconvolving a pulse profile from population data\n\n";
  Printf.printf "chosen lambda (GCV):   %.3g\n" run.Deconv.Pipeline.lambda;
  Printf.printf "recovery vs truth:     %s\n"
    (Deconv.Metrics.to_string run.Deconv.Pipeline.recovery);
  let pop_corr =
    (* How badly does the raw population signal misrepresent the truth? *)
    let truth_at_times =
      Array.map
        (fun t -> profile (Float.min 1.0 (t /. 150.0)))
        run.Deconv.Pipeline.config.Deconv.Pipeline.times
    in
    Stats.correlation truth_at_times run.Deconv.Pipeline.noisy
  in
  Printf.printf "population-data corr:  %.4f (vs deconvolved corr %.4f)\n\n" pop_corr
    run.Deconv.Pipeline.recovery.Deconv.Metrics.correlation;

  (* 4. Plot truth vs estimate over phase. *)
  Dataio.Ascii_plot.output stdout ~title:"single-cell profile: truth (*) vs deconvolved (o)"
    [
      { Dataio.Ascii_plot.label = "truth f(phi)"; glyph = '*';
        xs = run.Deconv.Pipeline.phases; ys = run.Deconv.Pipeline.truth };
      { Dataio.Ascii_plot.label = "deconvolved f^(phi)"; glyph = 'o';
        xs = run.Deconv.Pipeline.phases;
        ys = run.Deconv.Pipeline.estimate.Deconv.Solver.profile };
    ];
  print_newline ();
  Dataio.Ascii_plot.output stdout ~title:"population-level data G(t) (what a microarray sees)"
    [
      { Dataio.Ascii_plot.label = "population G(t), minutes"; glyph = '#';
        xs = run.Deconv.Pipeline.config.Deconv.Pipeline.times;
        ys = run.Deconv.Pipeline.noisy };
    ]
