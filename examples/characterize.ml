(* The full workflow for a new organism or growth condition (paper sec 1:
   the asynchrony is "organism-specific (and possibly condition-dependent
   as well) ... in principle characterizable for any system of interest"):

     1. characterize the asynchrony from observable cell-type fractions;
     2. build the kernel from the fitted model;
     3. deconvolve expression data measured in that condition.

   Here the 'unknown organism' is a Caulobacter culture growing slowly in
   minimal medium; its expression data is the synthetic ftsZ gene.

   Run with: dune exec examples/characterize.exe *)

open Numerics

let () =
  let boundaries = Cellpop.Celltype.mid_boundaries in

  (* The hidden truth (what the wet lab would be): slow growth, variable. *)
  let hidden =
    { Cellpop.Params.paper_2011 with Cellpop.Params.mean_cycle_minutes = 195.0; cv_cycle = 0.15 }
  in

  (* 1. The observable: cell-type fractions counted under the microscope. *)
  let observation_times = [| 60.0; 90.0; 120.0; 150.0; 180.0 |] in
  let observed =
    let snapshots =
      Cellpop.Population.simulate hidden ~rng:(Rng.create 42) ~n0:15_000
        ~times:observation_times
    in
    { Cellpop.Calibrate.times = observation_times;
      fractions = Cellpop.Celltype.fractions_over_time boundaries snapshots }
  in
  Printf.printf "fitting the asynchrony model to %d fraction measurements...\n%!"
    (Array.length observation_times * 4);
  let fitted = Cellpop.Calibrate.fit ~base:Cellpop.Params.paper_2011 ~boundaries observed in
  let p = fitted.Cellpop.Calibrate.params in
  Printf.printf
    "characterized: mu_sst %.3f (true %.3f), cycle %.1f min (true %.1f), cv %.3f (true %.3f)\n\n"
    p.Cellpop.Params.mu_sst hidden.Cellpop.Params.mu_sst p.Cellpop.Params.mean_cycle_minutes
    hidden.Cellpop.Params.mean_cycle_minutes p.Cellpop.Params.cv_cycle
    hidden.Cellpop.Params.cv_cycle;

  (* 2-3. Expression data measured in the same condition, deconvolved with
     the FITTED kernel (the hidden params are never used downstream). *)
  let times = Array.init 13 (fun i -> 20.0 *. float_of_int i) in
  let config =
    { (Deconv.Pipeline.default_config ~times) with
      Deconv.Pipeline.data_params = hidden;
      inversion_params = Some p;
      noise = Deconv.Noise.Gaussian_fraction 0.05;
      seed = 4242;
    }
  in
  let run = Deconv.Pipeline.run config ~profile:Biomodels.Ftsz.profile in
  Printf.printf "deconvolution with the characterized kernel: %s\n"
    (Deconv.Metrics.to_string run.Deconv.Pipeline.recovery);
  Printf.printf "transcription delay recovered: %b\n"
    (Biomodels.Ftsz.delay_visible ~phases:run.Deconv.Pipeline.phases
       ~values:run.Deconv.Pipeline.estimate.Deconv.Solver.profile ~threshold:0.06);

  (* Control: skipping step 1 and assuming the rich-medium defaults. *)
  let naive_config = { config with Deconv.Pipeline.inversion_params = None } in
  let naive_config =
    { naive_config with Deconv.Pipeline.data_params = hidden;
      inversion_params = Some Cellpop.Params.paper_2011 }
  in
  let naive = Deconv.Pipeline.run naive_config ~profile:Biomodels.Ftsz.profile in
  Printf.printf "\ncontrol (uncharacterized 150-min kernel): %s\n"
    (Deconv.Metrics.to_string naive.Deconv.Pipeline.recovery);
  Printf.printf "=> characterization first, then deconvolution.\n"
