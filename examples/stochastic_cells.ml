(* Deconvolution with intrinsic single-cell noise.

   The paper defines asynchronous variability as population structure that
   exists "independent of any stochasticity in the observable of interest"
   (§1). Here every cell is genuinely stochastic: its expression follows an
   exact Gillespie simulation of the Lotka-Volterra reaction network in a
   finite reaction volume. The population average then carries BOTH kinds
   of variability, and the deconvolution should recover the ensemble-mean
   single-cell profile.

   Run with: dune exec examples/stochastic_cells.exe            (volume 300)
             dune exec examples/stochastic_cells.exe -- 50      (noisier cells) *)

open Numerics

let () =
  let volume = if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 300.0 in
  let p = Biomodels.Lotka_volterra.default_params in
  let network =
    Stochastic.Networks.lotka_volterra ~a:p.Biomodels.Lotka_volterra.a
      ~b:p.Biomodels.Lotka_volterra.b ~c:p.Biomodels.Lotka_volterra.c
      ~d:p.Biomodels.Lotka_volterra.d ~volume
  in
  let x0 = Stochastic.Networks.concentrations_to_counts ~volume Biomodels.Lotka_volterra.default_x0 in
  let rng = Rng.create 99 in

  (* A pool of exact single-cell trajectories over one cycle (species x1),
     sampled on a phase grid. Each simulated cell will draw one. *)
  let n_pool = 120 in
  let n_phi = 201 in
  let period = 150.0 in
  let phase_grid = Array.init n_phi (fun j -> (float_of_int j +. 0.5) /. float_of_int n_phi) in
  Printf.printf "simulating %d exact stochastic cells (volume %.0f)...\n%!" n_pool volume;
  let pool =
    Array.init n_pool (fun _ ->
        let trajectory =
          Stochastic.Gillespie.direct network ~rng:(Rng.split rng) ~x0 ~t0:0.0 ~t1:(period +. 1.0)
        in
        Array.map
          (fun phi ->
            Stochastic.Gillespie.value_at trajectory ~species:0 (phi *. period) /. volume)
          phase_grid)
  in
  (* Ensemble mean =~ the deterministic single-cell profile. *)
  let ensemble_mean =
    Array.init n_phi (fun j ->
        let acc = ref 0.0 in
        Array.iter (fun cell -> acc := !acc +. cell.(j)) pool;
        !acc /. float_of_int n_pool)
  in
  let intrinsic_cv =
    let mid = n_phi / 2 in
    let values = Array.map (fun cell -> cell.(mid)) pool in
    Stats.cv values
  in
  Printf.printf "intrinsic cell-to-cell CV at mid-cycle: %.2f\n%!" intrinsic_cv;

  (* Population measurement: each cell of a simulated asynchronous culture
     expresses a randomly drawn stochastic trajectory at its own phase. *)
  let params = Cellpop.Params.paper_2011 in
  let times = Dataio.Datasets.lv_measurement_times in
  let snapshots =
    Cellpop.Population.simulate params ~rng:(Rng.split rng) ~n0:4000 ~times
  in
  let population_signal =
    Array.map
      (fun (s : Cellpop.Population.snapshot) ->
        let num = ref 0.0 and den = ref 0.0 in
        Array.iter
          (fun (c : Cellpop.Cell.t) ->
            let v = Cellpop.Cell.volume params c in
            let cell_profile = Rng.pick rng pool in
            let expression =
              Interp.linear_clamped ~x:phase_grid ~y:cell_profile c.Cellpop.Cell.phase
            in
            num := !num +. (v *. expression);
            den := !den +. v)
          s.Cellpop.Population.cells;
        !num /. !den)
      snapshots
  in

  (* Deconvolve against a kernel simulated independently. *)
  let kernel =
    Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.split rng) ~n_cells:4000 ~times
      ~n_phi
  in
  let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:12 in
  let problem =
    Deconv.Problem.create ~kernel ~basis ~measurements:population_signal ~params ()
  in
  let lambda = Deconv.Lambda.select problem ~method_:`Gcv () in
  let estimate = Deconv.Solver.solve ~lambda problem in

  let recovery = Deconv.Metrics.compare ~truth:ensemble_mean ~estimate:estimate.Deconv.Solver.profile in
  Printf.printf "lambda = %.3g\n" lambda;
  Printf.printf "recovery of the ensemble-mean single-cell profile: %s\n"
    (Deconv.Metrics.to_string recovery);
  Dataio.Ascii_plot.output stdout
    ~title:"ensemble mean (*) vs deconvolved (o) with stochastic single cells"
    [
      { Dataio.Ascii_plot.label = "ensemble-mean truth"; glyph = '*'; xs = phase_grid;
        ys = ensemble_mean };
      { Dataio.Ascii_plot.label = "deconvolved"; glyph = 'o'; xs = phase_grid;
        ys = estimate.Deconv.Solver.profile };
    ];
  Printf.printf
    "\n=> asynchronous variability is removed by deconvolution even when cells are\n\
    \   individually stochastic; what remains estimable is the ensemble mean.\n"
