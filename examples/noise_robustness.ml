(* Robustness study: how recovery quality degrades with measurement noise
   (the paper adds 'several levels and types of noise', section 4.1) and how
   the Goodwin and repressilator oscillators — sharper waveforms than
   Lotka-Volterra — fare under deconvolution.

   Run with: dune exec examples/noise_robustness.exe *)

open Numerics

let deconvolve ~noise ~seed profile =
  let times = Dataio.Datasets.lv_measurement_times in
  let config = { (Deconv.Pipeline.default_config ~times) with Deconv.Pipeline.noise; seed } in
  Deconv.Pipeline.run config ~profile

let () =
  (* 1. Noise sweep on the Goodwin oscillator. *)
  let gp = Biomodels.Goodwin.default_params in
  let g_phases, g_profile =
    Biomodels.Goodwin.phase_profile gp ~x0:Biomodels.Goodwin.default_x0 ~n_phi:400
  in
  let goodwin phi = Interp.linear_clamped ~x:g_phases ~y:g_profile phi in
  Printf.printf "Goodwin oscillator (period %.0f min) under increasing noise:\n"
    (Biomodels.Goodwin.period gp ~x0:Biomodels.Goodwin.default_x0);
  Printf.printf "%10s %10s %10s %10s\n" "noise_pct" "rmse" "nrmse" "corr";
  List.iter
    (fun level ->
      let noise =
        if Float.equal level 0.0 then Deconv.Noise.No_noise
        else Deconv.Noise.Gaussian_fraction level
      in
      let run = deconvolve ~noise ~seed:31 goodwin in
      let r = run.Deconv.Pipeline.recovery in
      Printf.printf "%10.0f %10.4f %10.4f %10.4f\n" (100.0 *. level) r.Deconv.Metrics.rmse
        r.Deconv.Metrics.nrmse r.Deconv.Metrics.correlation)
    [ 0.0; 0.02; 0.05; 0.10; 0.15; 0.20 ];

  (* 2. Repressilator mRNA: three species, phase-shifted thirds. *)
  print_newline ();
  let rp = Biomodels.Repressilator.default_params in
  let rx0 = Biomodels.Repressilator.default_x0 in
  Printf.printf "Repressilator mRNAs (period %.0f min), 5%% noise:\n"
    (Biomodels.Repressilator.period rp ~x0:rx0);
  List.iter
    (fun species ->
      let phases, values = Biomodels.Repressilator.phase_profile ~species rp ~x0:rx0 ~n_phi:400 in
      let profile phi = Interp.linear_clamped ~x:phases ~y:values phi in
      let run = deconvolve ~noise:(Deconv.Noise.Gaussian_fraction 0.05) ~seed:37 profile in
      let est = run.Deconv.Pipeline.estimate.Deconv.Solver.profile in
      let peak_truth = run.Deconv.Pipeline.phases.(Vec.argmax run.Deconv.Pipeline.truth) in
      let peak_est = run.Deconv.Pipeline.phases.(Vec.argmax est) in
      Printf.printf
        "  m%d: corr %.4f, true peak phase %.2f, recovered peak phase %.2f\n" (species + 1)
        run.Deconv.Pipeline.recovery.Deconv.Metrics.correlation peak_truth peak_est)
    [ 0; 1; 2 ];

  (* 3. Noise types at a fixed 10% level on the Goodwin profile. *)
  print_newline ();
  Printf.printf "Noise types at 10%% (Goodwin):\n";
  List.iter
    (fun noise ->
      let run = deconvolve ~noise ~seed:41 goodwin in
      Printf.printf "  %-32s corr %.4f\n" (Deconv.Noise.to_string noise)
        run.Deconv.Pipeline.recovery.Deconv.Metrics.correlation)
    [
      Deconv.Noise.Gaussian_fraction 0.10;
      Deconv.Noise.Gaussian_absolute 0.15;
      Deconv.Noise.Multiplicative_lognormal 0.10;
    ]
