(* The paper's section 4.2 validation (Fig. 4): the simulated distribution
   of Caulobacter cell types over time in a batch culture, compared to the
   experimental measurements of Judd et al. (2003).

   Cells are classified by phase into swarmer (SW), early stalked (STE),
   early predivisional (STEPD) and late predivisional (STLPD); the
   STE/STEPD and STEPD/STLPD boundaries are experimentally fuzzy, so low,
   mid and high variants are reported (the shaded band of the paper's
   figure).

   Run with: dune exec examples/cell_types.exe *)

open Numerics

let () =
  (* Condition-dependent asynchrony: the Judd et al. culture grew in
     minimal medium with a ~180-minute cycle. *)
  let params =
    { Cellpop.Params.paper_2011 with
      Cellpop.Params.mean_cycle_minutes = 180.0;
      cv_cycle = 0.18;
    }
  in
  let rng = Rng.create 404 in
  let times = Dataio.Datasets.judd_times in
  let snapshots = Cellpop.Population.simulate params ~rng ~n0:20_000 ~times in
  Printf.printf "simulated %d founder cells; population at the last sample: %d cells\n\n" 20_000
    (Cellpop.Population.count snapshots.(Array.length snapshots - 1));

  let mid = Cellpop.Celltype.fractions_over_time Cellpop.Celltype.mid_boundaries snapshots in
  let labels = [ "SW"; "STE"; "STEPD"; "STLPD" ] in
  let experimental =
    [ Dataio.Datasets.judd_sw; Dataio.Datasets.judd_ste; Dataio.Datasets.judd_stepd;
      Dataio.Datasets.judd_stlpd ]
  in
  List.iteri
    (fun j label ->
      let sim = Mat.col mid j in
      let data = List.nth experimental j in
      Dataio.Ascii_plot.output stdout ~height:12
        ~title:(Printf.sprintf "%s fraction: simulated (o) vs Judd et al. (x)" label)
        [
          { Dataio.Ascii_plot.label = "simulated (mid boundaries)"; glyph = 'o'; xs = times;
            ys = sim };
          { Dataio.Ascii_plot.label = "experimental (digitized)"; glyph = 'x'; xs = times;
            ys = data };
        ];
      Printf.printf "  max |sim - exp| = %.3f\n\n" (Stats.max_abs_error sim data))
    labels;

  (* The boundary band: min/max over low..high boundary choices. *)
  let low = Cellpop.Celltype.fractions_over_time Cellpop.Celltype.low_boundaries snapshots in
  let high = Cellpop.Celltype.fractions_over_time Cellpop.Celltype.high_boundaries snapshots in
  Printf.printf "STEPD fraction at %g min: %.2f (low) / %.2f (mid) / %.2f (high boundaries)\n"
    times.(3) (Mat.get low 3 2) (Mat.get mid 3 2) (Mat.get high 3 2)
