(* The paper's section 4.3 application (Fig. 5): ftsZ expression in
   Caulobacter. FtsZ is transcribed only after DNA replication begins at
   the SW->ST transition; that delay (and the steep post-peak drop) is
   invisible in the population-level time course but is revealed by
   deconvolution.

   The population data here is synthetic (the McGrath et al. microarray
   dataset is not redistributable): the documented single-cell profile is
   pushed through the forward model with 5% measurement noise, which
   preserves exactly the feature-recovery question the paper's figure
   makes. See DESIGN.md, 'Substitutions'.

   Run with: dune exec examples/ftsz_caulobacter.exe *)

open Numerics

let () =
  let times = Dataio.Datasets.ftsz_measurement_times in
  let config =
    { (Deconv.Pipeline.default_config ~times) with
      Deconv.Pipeline.noise = Deconv.Noise.Gaussian_fraction 0.05;
      seed = 5;
    }
  in
  let run = Deconv.Pipeline.run config ~profile:Biomodels.Ftsz.profile in

  Printf.printf "ftsZ deconvolution (paper Fig. 5)\n\n";
  Dataio.Ascii_plot.output stdout ~title:"population ftsZ expression G(t) -- what the microarray sees"
    [
      { Dataio.Ascii_plot.label = "population"; glyph = '#'; xs = times;
        ys = run.Deconv.Pipeline.noisy };
    ];
  print_newline ();
  let minutes, deconvolved = Deconv.Pipeline.deconvolved_vs_minutes run in
  Dataio.Ascii_plot.output stdout
    ~title:"deconvolved (o) vs true single-cell (*) ftsZ expression, simulated minutes"
    [
      { Dataio.Ascii_plot.label = "single-cell truth"; glyph = '*'; xs = minutes;
        ys = run.Deconv.Pipeline.truth };
      { Dataio.Ascii_plot.label = "deconvolved"; glyph = 'o'; xs = minutes; ys = deconvolved };
    ];
  print_newline ();

  let phases = run.Deconv.Pipeline.phases in
  let estimate = run.Deconv.Pipeline.estimate.Deconv.Solver.profile in
  let g = run.Deconv.Pipeline.noisy in
  Printf.printf "early population signal (t=13min) / peak: %.2f -- the delay is hidden\n"
    (g.(1) /. Vec.max g);
  Printf.printf "transcription delay visible after deconvolution: %b\n"
    (Biomodels.Ftsz.delay_visible ~phases ~values:estimate ~threshold:0.06);
  Printf.printf "post-peak drop with no subsequent increase:      %b\n"
    (Biomodels.Ftsz.post_peak_monotone_drop ~phases ~values:estimate ~tolerance:0.08);
  Printf.printf "deconvolved peak phase: %.2f (biology: ~0.4)\n" phases.(Vec.argmax estimate);
  Printf.printf "recovery vs truth: %s\n" (Deconv.Metrics.to_string run.Deconv.Pipeline.recovery)
