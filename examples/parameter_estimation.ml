(* The paper's section 5 'ongoing work': using deconvolution to estimate
   single-cell ODE-model parameters from population data.

   A Lotka-Volterra gene-regulation model with known parameters generates
   the data. We then try to recover (a, b, c, d) two ways:

     1. the naive way: fit the ODE directly to the population time course,
        pretending it is single-cell data;
     2. the paper's way: deconvolve first, then fit the ODE to the
        deconvolved single-cell profile.

   Run with: dune exec examples/parameter_estimation.exe *)

open Numerics

let () =
  let p_true = Biomodels.Lotka_volterra.default_params in
  let x0 = Biomodels.Lotka_volterra.default_x0 in
  let phases400, f1v, f2v = Biomodels.Lotka_volterra.phase_profiles p_true ~x0 ~n_phi:400 in
  let profile values phi = Interp.linear_clamped ~x:phases400 ~y:values phi in

  let times = Dataio.Datasets.lv_measurement_times in
  let config =
    { (Deconv.Pipeline.default_config ~times) with
      Deconv.Pipeline.noise = Deconv.Noise.Gaussian_fraction 0.05;
      seed = 10;
    }
  in
  Printf.printf "generating population data (5%% noise) and deconvolving both species...\n%!";
  let run1 = Deconv.Pipeline.run config ~profile:(profile f1v) in
  let run2 = Deconv.Pipeline.run config ~profile:(profile f2v) in

  (* Objective: phase-profile misfit of a candidate parameter set. *)
  let coarse xs =
    Array.init 60 (fun j ->
        let phi = (float_of_int j +. 0.5) /. 60.0 in
        Interp.linear_clamped ~x:run1.Deconv.Pipeline.phases ~y:xs phi)
  in
  let objective target1 target2 log_params =
    let p =
      {
        Biomodels.Lotka_volterra.a = exp log_params.(0);
        b = exp log_params.(1);
        c = exp log_params.(2);
        d = exp log_params.(3);
      }
    in
    match Biomodels.Lotka_volterra.phase_profiles p ~x0 ~n_phi:60 with
    | exception _ -> 1e9
    | _, g1, g2 ->
      (Stats.rmse g1 target1 /. Float.max 0.1 (Vec.max target1))
      +. (Stats.rmse g2 target2 /. Float.max 0.1 (Vec.max target2))
  in
  let fit target1 target2 =
    let start =
      [| log (p_true.Biomodels.Lotka_volterra.a *. 1.4);
         log (p_true.Biomodels.Lotka_volterra.b /. 1.4);
         log (p_true.Biomodels.Lotka_volterra.c *. 1.3);
         log (p_true.Biomodels.Lotka_volterra.d /. 1.3) |]
    in
    let options = { Optimize.Nelder_mead.default_options with max_iter = 250 } in
    let result = Optimize.Nelder_mead.minimize ~options (objective target1 target2) ~x0:start in
    (Array.map exp result.Optimize.Nelder_mead.x, result.Optimize.Nelder_mead.evaluations)
  in

  Printf.printf "fitting LV parameters to the deconvolved profiles...\n%!";
  let fitted_dec, evals_dec =
    fit (coarse run1.Deconv.Pipeline.estimate.Deconv.Solver.profile)
      (coarse run2.Deconv.Pipeline.estimate.Deconv.Solver.profile)
  in
  Printf.printf "fitting LV parameters to the raw population data...\n%!";
  let pop_as_profile (run : Deconv.Pipeline.run) =
    Array.init 60 (fun j ->
        let phi = (float_of_int j +. 0.5) /. 60.0 in
        Interp.linear_clamped ~x:times ~y:run.Deconv.Pipeline.noisy (phi *. 150.0))
  in
  let fitted_pop, evals_pop = fit (pop_as_profile run1) (pop_as_profile run2) in

  let names = [| "a"; "b"; "c"; "d" |] in
  let true_params =
    [| p_true.Biomodels.Lotka_volterra.a; p_true.Biomodels.Lotka_volterra.b;
       p_true.Biomodels.Lotka_volterra.c; p_true.Biomodels.Lotka_volterra.d |]
  in
  Printf.printf "\n%-6s %12s %18s %18s\n" "param" "true" "fit(deconvolved)" "fit(population)";
  Array.iteri
    (fun i name ->
      Printf.printf "%-6s %12.5f %18.5f %18.5f\n" name true_params.(i) fitted_dec.(i)
        fitted_pop.(i))
    names;
  let mean_rel fitted =
    let acc = ref 0.0 in
    Array.iteri (fun i v -> acc := !acc +. (Float.abs (fitted.(i) -. v) /. v)) true_params;
    !acc /. 4.0
  in
  Printf.printf
    "\nmean relative error: deconvolved %.1f%% (%d evals), population %.1f%% (%d evals)\n"
    (100.0 *. mean_rel fitted_dec) evals_dec
    (100.0 *. mean_rel fitted_pop) evals_pop;
  Printf.printf
    "=> fitting single-cell models to deconvolved data recovers the true parameters;\n\
    \   fitting them to raw population data does not (the paper's sec 5 conclusion).\n"
