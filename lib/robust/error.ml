type t =
  | Ill_conditioned of { cond : float }
  | Qp_stalled of { iterations : int }
  | Non_finite of { stage : string }
  | Invalid_input of { field : string; why : string }
  | Kernel_degenerate

exception Error of t

let raise_error e = raise (Error e)

let to_string = function
  | Ill_conditioned { cond } ->
    Printf.sprintf "ill-conditioned system (condition estimate %.3g)" cond
  | Qp_stalled { iterations } ->
    Printf.sprintf "QP stalled after %d iterations without converging" iterations
  | Non_finite { stage } -> Printf.sprintf "non-finite values in %s" stage
  | Invalid_input { field; why } -> Printf.sprintf "invalid %s: %s" field why
  | Kernel_degenerate -> "degenerate kernel: a time row carries no mass"

let pp fmt e = Format.pp_print_string fmt (to_string e)

let equal (a : t) (b : t) =
  match (a, b) with
  | Ill_conditioned x, Ill_conditioned y -> Float.equal x.cond y.cond
  | Qp_stalled x, Qp_stalled y -> x.iterations = y.iterations
  | Non_finite x, Non_finite y -> String.equal x.stage y.stage
  | Invalid_input x, Invalid_input y ->
    String.equal x.field y.field && String.equal x.why y.why
  | Kernel_degenerate, Kernel_degenerate -> true
  | _ -> false

let same_class (a : t) (b : t) =
  match (a, b) with
  | Ill_conditioned _, Ill_conditioned _
  | Qp_stalled _, Qp_stalled _
  | Non_finite _, Non_finite _
  | Invalid_input _, Invalid_input _
  | Kernel_degenerate, Kernel_degenerate -> true
  | _ -> false

let recoverable = function
  | Ill_conditioned _ | Qp_stalled _ | Non_finite _ -> true
  | Invalid_input { field; _ } -> String.equal field "sigmas"
  | Kernel_degenerate -> false
