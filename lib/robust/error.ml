type t =
  | Ill_conditioned of { cond : float }
  | Qp_stalled of { iterations : int }
  | Non_finite of { stage : string }
  | Invalid_input of { field : string; why : string }
  | Kernel_degenerate
  | Budget_exhausted of { resource : string; limit : float; spent : float }
  | Unexpected of { description : string }

exception Error of t

let raise_error e = raise (Error e)

let to_string = function
  | Ill_conditioned { cond } ->
    Printf.sprintf "ill-conditioned system (condition estimate %.3g)" cond
  | Qp_stalled { iterations } ->
    Printf.sprintf "QP stalled after %d iterations without converging" iterations
  | Non_finite { stage } -> Printf.sprintf "non-finite values in %s" stage
  | Invalid_input { field; why } -> Printf.sprintf "invalid %s: %s" field why
  | Kernel_degenerate -> "degenerate kernel: a time row carries no mass"
  | Budget_exhausted { resource; limit; spent } ->
    Printf.sprintf "solve budget exhausted: %.4g %s spent of a %.4g limit" spent resource
      limit
  | Unexpected { description } -> Printf.sprintf "unexpected failure: %s" description

let class_name = function
  | Ill_conditioned _ -> "ill_conditioned"
  | Qp_stalled _ -> "qp_stalled"
  | Non_finite _ -> "non_finite"
  | Invalid_input _ -> "invalid_input"
  | Kernel_degenerate -> "kernel_degenerate"
  | Budget_exhausted _ -> "budget_exhausted"
  | Unexpected _ -> "unexpected"

let pp fmt e = Format.pp_print_string fmt (to_string e)

let equal (a : t) (b : t) =
  match (a, b) with
  | Ill_conditioned x, Ill_conditioned y -> Float.equal x.cond y.cond
  | Qp_stalled x, Qp_stalled y -> x.iterations = y.iterations
  | Non_finite x, Non_finite y -> String.equal x.stage y.stage
  | Invalid_input x, Invalid_input y ->
    String.equal x.field y.field && String.equal x.why y.why
  | Kernel_degenerate, Kernel_degenerate -> true
  | Budget_exhausted x, Budget_exhausted y ->
    String.equal x.resource y.resource && Float.equal x.limit y.limit
    && Float.equal x.spent y.spent
  | Unexpected x, Unexpected y -> String.equal x.description y.description
  | _ -> false

let same_class (a : t) (b : t) = String.equal (class_name a) (class_name b)

let recoverable = function
  | Ill_conditioned _ | Qp_stalled _ | Non_finite _ -> true
  | Invalid_input { field; _ } -> String.equal field "sigmas"
  | Kernel_degenerate -> false
  (* Retrying after a blown budget would only spend more of the resource
     the caller capped; the cascade must stop, not degrade. *)
  | Budget_exhausted _ -> false
  | Unexpected _ -> false

let of_exn = function
  | Error e -> e
  | e -> Unexpected { description = Printexc.to_string e }
