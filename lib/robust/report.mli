(** Record of everything the robust solver tried on its way to an answer:
    which stages ran, with what regularization, how long each took, what
    failed and why, and which stage finally produced the estimate. *)

type stage =
  | Validation
  | Repair
  | Constrained_qp
  | Unconstrained
  | Richardson_lucy

val stage_name : stage -> string

type attempt = {
  stage : stage;
  lambda : float;  (** smoothing strength used by this attempt *)
  ridge : float;  (** diagonal ridge added to the normal matrix *)
  seconds : float;
      (** wall-clock time spent on the attempt, measured via [Obs.Clock]
          (never [Sys.time], which is processor time and undercounts any
          wait) *)
  iterations : int;
      (** solver iterations the attempt consumed (QP interior-point or
          Richardson–Lucy passes); 0 when the stage has no iterative
          solver or failed before reaching it *)
  outcome : (unit, Error.t) result;
}

type repair = {
  action : string;  (** e.g. "masked non-finite measurements" *)
  count : int;  (** number of entries touched *)
}

type t = {
  attempts : attempt list;  (** chronological *)
  condition : float option;
      (** spectral condition estimate of the penalized normal matrix at the
          entry [lambda], when it could be computed *)
  repairs : repair list;  (** input repairs applied before solving *)
  degradation : int;
      (** 0 = first constrained QP attempt, pristine inputs; 1 = constrained
          QP after repairs / boosted regularization; 2 = unconstrained
          smoothing spline; 3 = Richardson–Lucy *)
  solved_by : stage;  (** the stage that produced the returned estimate *)
}

val num_attempts : t -> int

val failed_attempts : t -> attempt list

val budget_limited : t -> bool
(** Whether any attempt died on {!Error.Budget_exhausted} — i.e. the
    cascade stopped because its {!Budget} ran out, not because the
    problem itself defeated every stage. *)

val to_string : t -> string
