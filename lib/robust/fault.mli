(** Composable fault injectors for the robustness test harness: each value
    describes one way real experimental data (or a Monte-Carlo kernel) goes
    wrong. Injectors are pure — they return a corrupted copy and never
    mutate their input — so a clean fixture can be re-corrupted many ways. *)

open Numerics

type 'a t = {
  name : string;
  inject : Rng.t -> 'a -> 'a;
}

val apply : 'a t -> Rng.t -> 'a -> 'a

val compose : ?name:string -> 'a t list -> 'a t
(** Apply several injectors left to right; the default name concatenates
    the component names. *)

(** {1 Vector faults} (measurements, sigmas, times) *)

val nan_at : ?index:int -> unit -> Vec.t t
(** Replace one entry (random when [index] is omitted) with NaN. *)

val inf_at : ?index:int -> unit -> Vec.t t
val zero_at : ?index:int -> unit -> Vec.t t
(** Force one entry to 0 — the σ→0 fault when applied to sigmas. *)

val negate_at : ?index:int -> unit -> Vec.t t

val spike : ?index:int -> magnitude:float -> unit -> Vec.t t
(** Adversarial noise spike: add [magnitude · max(1, ‖v‖∞)] to one entry. *)

val shuffle : Vec.t t
(** Random permutation, guaranteed different from the input order when one
    exists (length ≥ 2) — the shuffled-times fault. Total: vectors of
    length 0 or 1 are returned unchanged. *)

(** {1 Kernel faults} *)

val kernel_nan_column : ?column:int -> unit -> Cellpop.Kernel.t t
(** Poison one phase column of Q with NaN at every time. *)

val kernel_zero_row : ?row:int -> unit -> Cellpop.Kernel.t t
(** Zero one time row of Q — a degenerate (mass-free) kernel row. *)

val kernel_duplicate_time : ?row:int -> unit -> Cellpop.Kernel.t t
(** Make row [row] (default: a random row ≥ 1) an exact copy of the
    previous row, time point included: duplicated time points that drive
    the forward operator toward singularity without violating any
    structural precondition. *)

val kernel_shuffle_times : Cellpop.Kernel.t t
(** Shuffle the kernel's time stamps (rows untouched), breaking the
    sortedness invariant. *)

(** {1 Matrix faults} (gene batches: rows are genes)

    These are the genome-scale chaos injectors: they corrupt a chosen (or
    random) subset of gene rows so the harness can assert that exactly
    those genes fail while every clean gene's estimate is untouched. *)

val choose_rows : Rng.t -> k:int -> rows:int -> int array
(** [k] distinct row indices drawn without replacement from
    [0 .. rows-1], returned ascending. Raises [Invalid_argument] unless
    [0 <= k <= rows]. *)

val corrupt_rows : rows:int array -> Vec.t t -> Mat.t t
(** Apply a vector fault independently to each of the given rows of a
    copy of the matrix. *)

val corrupt_random_rows : k:int -> Vec.t t -> Mat.t t
(** {!choose_rows} then {!corrupt_rows}. *)

val poison_sigma_rows : rows:int array -> Mat.t t
(** Force one entry of each given σ row to 0 — invalid input (σ must be
    strictly positive) that a batch must contain, not crash on. *)

(** {1 Mid-batch faults} *)

exception Injected_crash of { done_ : int; total : int }
(** Simulated process death raised from inside a batch progress hook. *)

val crash_after : genes:int -> done_:int -> total:int -> unit
(** An [on_block] hook for [Batch.solve_all_result]: raises
    {!Injected_crash} at the first block boundary where [done_ >= genes].
    Because the journal is flushed before the hook runs, the batch dies
    exactly as SIGKILL would — journal intact, run resumable. *)
