(** Composable fault injectors for the robustness test harness: each value
    describes one way real experimental data (or a Monte-Carlo kernel) goes
    wrong. Injectors are pure — they return a corrupted copy and never
    mutate their input — so a clean fixture can be re-corrupted many ways. *)

open Numerics

type 'a t = {
  name : string;
  inject : Rng.t -> 'a -> 'a;
}

val apply : 'a t -> Rng.t -> 'a -> 'a

val compose : ?name:string -> 'a t list -> 'a t
(** Apply several injectors left to right; the default name concatenates
    the component names. *)

(** {1 Vector faults} (measurements, sigmas, times) *)

val nan_at : ?index:int -> unit -> Vec.t t
(** Replace one entry (random when [index] is omitted) with NaN. *)

val inf_at : ?index:int -> unit -> Vec.t t
val zero_at : ?index:int -> unit -> Vec.t t
(** Force one entry to 0 — the σ→0 fault when applied to sigmas. *)

val negate_at : ?index:int -> unit -> Vec.t t

val spike : ?index:int -> magnitude:float -> unit -> Vec.t t
(** Adversarial noise spike: add [magnitude · max(1, ‖v‖∞)] to one entry. *)

val shuffle : Vec.t t
(** Random permutation, guaranteed different from the input order (for
    vectors of length ≥ 2) — the shuffled-times fault. *)

(** {1 Kernel faults} *)

val kernel_nan_column : ?column:int -> unit -> Cellpop.Kernel.t t
(** Poison one phase column of Q with NaN at every time. *)

val kernel_zero_row : ?row:int -> unit -> Cellpop.Kernel.t t
(** Zero one time row of Q — a degenerate (mass-free) kernel row. *)

val kernel_duplicate_time : ?row:int -> unit -> Cellpop.Kernel.t t
(** Make row [row] (default: a random row ≥ 1) an exact copy of the
    previous row, time point included: duplicated time points that drive
    the forward operator toward singularity without violating any
    structural precondition. *)

val kernel_shuffle_times : Cellpop.Kernel.t t
(** Shuffle the kernel's time stamps (rows untouched), breaking the
    sortedness invariant. *)
