(** Typed taxonomy of the failure modes of the ill-posed inversion
    (paper §2.3). Every recoverable or diagnosable failure in the solver
    stack is expressed as one of these values instead of a raw
    [failwith]/[assert], so callers can branch on the cause and the
    degradation cascade can decide what to try next. *)

type t =
  | Ill_conditioned of { cond : float }
      (** The penalized normal matrix has an estimated spectral condition
          number too large for a trustworthy direct solve. *)
  | Qp_stalled of { iterations : int }
      (** The interior-point QP hit its iteration cap without meeting the
          KKT tolerances. *)
  | Non_finite of { stage : string }
      (** A NaN or infinity was detected at the named stage (e.g.
          "measurements", "kernel", "constrained QP solution"). *)
  | Invalid_input of { field : string; why : string }
      (** A structural precondition on the named input field is violated
          (unsorted times, non-positive sigma, dimension mismatch, ...). *)
  | Kernel_degenerate
      (** A kernel time row carries (almost) no probability mass, so the
          forward operator cannot be normalized. *)

exception Error of t
(** Escape hatch for contexts that cannot return a [result]; always
    carries a value of the taxonomy above. *)

val raise_error : t -> 'a

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
(** Structural equality (payloads included). *)

val same_class : t -> t -> bool
(** Equality on the constructor only, ignoring payloads — what most tests
    and retry policies actually branch on. *)

val recoverable : t -> bool
(** Whether the degradation cascade has a meaningful move left for this
    error: numerical failures ([Ill_conditioned], [Qp_stalled],
    [Non_finite]) and repairable sigma problems are recoverable; structural
    input errors and degenerate kernels are not. *)
