(** Typed taxonomy of the failure modes of the ill-posed inversion
    (paper §2.3). Every recoverable or diagnosable failure in the solver
    stack is expressed as one of these values instead of a raw
    [failwith]/[assert], so callers can branch on the cause and the
    degradation cascade can decide what to try next. *)

type t =
  | Ill_conditioned of { cond : float }
      (** The penalized normal matrix has an estimated spectral condition
          number too large for a trustworthy direct solve. *)
  | Qp_stalled of { iterations : int }
      (** The interior-point QP hit its iteration cap without meeting the
          KKT tolerances. *)
  | Non_finite of { stage : string }
      (** A NaN or infinity was detected at the named stage (e.g.
          "measurements", "kernel", "constrained QP solution"). *)
  | Invalid_input of { field : string; why : string }
      (** A structural precondition on the named input field is violated
          (unsorted times, non-positive sigma, dimension mismatch, ...). *)
  | Kernel_degenerate
      (** A kernel time row carries (almost) no probability mass, so the
          forward operator cannot be normalized. *)
  | Budget_exhausted of { resource : string; limit : float; spent : float }
      (** A per-solve budget ({!Budget}) ran out before the solve
          converged: [resource] names the dimension ("seconds" or
          "iterations"), [limit] the cap, [spent] the amount consumed when
          the guard fired. Never recoverable — the cascade stops rather
          than spend more of a capped resource. *)
  | Unexpected of { description : string }
      (** A failure outside the taxonomy (an arbitrary exception captured
          at a fault-isolation boundary), kept as a printable description
          so batch reports can still classify and journal it. *)

exception Error of t
(** Escape hatch for contexts that cannot return a [result]; always
    carries a value of the taxonomy above. *)

val raise_error : t -> 'a

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
(** Structural equality (payloads included). *)

val same_class : t -> t -> bool
(** Equality on the constructor only, ignoring payloads — what most tests
    and retry policies actually branch on. *)

val recoverable : t -> bool
(** Whether the degradation cascade has a meaningful move left for this
    error: numerical failures ([Ill_conditioned], [Qp_stalled],
    [Non_finite]) and repairable sigma problems are recoverable; structural
    input errors, degenerate kernels, exhausted budgets, and unexpected
    exceptions are not. *)

val class_name : t -> string
(** Stable lowercase slug of the constructor (e.g. ["qp_stalled"]), used
    as the metrics label and journal field for per-class failure counts.
    [same_class a b] iff [class_name a = class_name b]. *)

val of_exn : exn -> t
(** Project an arbitrary exception into the taxonomy: [Error e] unwraps to
    [e]; anything else becomes [Unexpected] with its printed form. Used at
    fault-isolation boundaries ({!Parallel.parallel_map_result} slots). *)
