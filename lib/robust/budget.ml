type t = {
  max_seconds : float option;
  max_iterations : int option;
  started : float;
  mutable iterations : int;
}

let create ?max_seconds ?max_iterations () =
  (match max_seconds with
  | Some s when not (Float.is_finite s && s > 0.) ->
    Error.raise_error
      (Error.Invalid_input { field = "max_seconds"; why = "must be finite and > 0" })
  | _ -> ());
  (match max_iterations with
  | Some i when i < 1 ->
    Error.raise_error (Error.Invalid_input { field = "max_iterations"; why = "must be >= 1" })
  | _ -> ());
  { max_seconds; max_iterations; started = Obs.Clock.now (); iterations = 0 }

let unlimited () = create ()

let iterations t = t.iterations
let elapsed t = Obs.Clock.now () -. t.started

let check t =
  (match t.max_iterations with
  | Some cap when t.iterations > cap ->
    Error.raise_error
      (Error.Budget_exhausted
         { resource = "iterations"; limit = float_of_int cap; spent = float_of_int t.iterations })
  | _ -> ());
  match t.max_seconds with
  | Some cap ->
    let spent = elapsed t in
    if spent > cap then
      Error.raise_error (Error.Budget_exhausted { resource = "seconds"; limit = cap; spent })
  | None -> ()

let tick t =
  t.iterations <- t.iterations + 1;
  check t

let on_iteration t = fun (_ : int) -> tick t
