(** Per-solve resource budgets: a wall-clock deadline and/or an iteration
    cap shared across one gene's whole degradation cascade, so a single
    degenerate row cannot stall a worker domain indefinitely.

    A budget is threaded into the inner QP / Richardson–Lucy loops through
    their neutral [?on_iteration] callbacks; when a cap is crossed the
    guard raises {!Error.Error} [(Budget_exhausted _)], which the cascade
    treats as non-recoverable (it stops instead of trying a cheaper stage
    with the clock already blown).

    The iteration cap is deterministic. The wall-clock deadline reads
    {!Obs.Clock.now}, so it is only deterministic under a manual clock —
    tests that assert bit-for-bit results must cap iterations, not time. *)

type t

val create : ?max_seconds:float -> ?max_iterations:int -> unit -> t
(** Start a budget now (clock read at creation). [max_seconds] must be
    finite and positive; [max_iterations >= 1]. Omitted caps are
    unlimited. Raises {!Error.Error} ([Invalid_input]) on out-of-range
    caps, like every other entry point of the robust layer. *)

val unlimited : unit -> t
(** A budget that never fires. *)

val tick : t -> unit
(** Count one iteration, then {!check}. *)

val check : t -> unit
(** Raise {!Error.Error} [(Budget_exhausted _)] if either cap is
    exceeded; otherwise return. The iteration cap fires when the count
    {e exceeds} the cap, so a budget of [n] allows exactly [n] ticks. *)

val on_iteration : t -> int -> unit
(** [on_iteration t] is a callback suitable for [Qp.solve ?on_iteration]
    and [Richardson_lucy.deconvolve ?on_iteration]: ignores the iteration
    index and {!tick}s the shared budget. *)

val iterations : t -> int
(** Ticks recorded so far. *)

val elapsed : t -> float
(** Seconds since creation, on {!Obs.Clock}. *)
