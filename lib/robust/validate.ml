open Numerics

let ( let* ) = Result.bind

let all_finite v = Array.for_all Float.is_finite v

let finite ~stage v =
  if all_finite v then Ok () else Error (Error.Non_finite { stage })

let sigmas v =
  let bad = ref None in
  Array.iteri
    (fun i s -> if !bad = None && not (Float.is_finite s && s > 0.0) then bad := Some (i, s))
    v;
  match !bad with
  | None -> Ok ()
  | Some (i, s) ->
    Error
      (Error.Invalid_input
         { field = "sigmas"; why = Printf.sprintf "sigma %d is %g, must be finite and > 0" i s })

let times ~field v =
  let* () = finite ~stage:field v in
  let n = Array.length v in
  let bad = ref None in
  for i = 0 to n - 1 do
    if !bad = None then
      if v.(i) < 0.0 then
        bad := Some (Printf.sprintf "time %d is negative (%g)" i v.(i))
      else if i > 0 && v.(i) < v.(i - 1) then
        bad :=
          Some (Printf.sprintf "times not sorted: t(%d)=%g > t(%d)=%g" (i - 1) v.(i - 1) i v.(i))
  done;
  match !bad with None -> Ok () | Some why -> Error (Error.Invalid_input { field; why })

let kernel ?(mass_tol = 1e-3) (k : Cellpop.Kernel.t) =
  let n_t, n_phi = Mat.dims k.Cellpop.Kernel.q in
  let* () =
    if n_phi < 2 || n_t < 1 then
      Error
        (Error.Invalid_input
           { field = "kernel"; why = Printf.sprintf "Q is %d x %d, need >= 1 x 2" n_t n_phi })
    else if Array.length k.Cellpop.Kernel.phases <> n_phi then
      Error (Error.Invalid_input { field = "kernel"; why = "phase grid does not match Q columns" })
    else if Array.length k.Cellpop.Kernel.times <> n_t then
      Error (Error.Invalid_input { field = "kernel"; why = "time grid does not match Q rows" })
    else if not (Float.is_finite k.Cellpop.Kernel.bin_width && k.Cellpop.Kernel.bin_width > 0.0)
    then Error (Error.Invalid_input { field = "kernel"; why = "bin width must be positive" })
    else Ok ()
  in
  let* () = finite ~stage:"kernel phases" k.Cellpop.Kernel.phases in
  let* () = times ~field:"kernel times" k.Cellpop.Kernel.times in
  let rec check_rows m =
    if m = n_t then Ok ()
    else
      let row = Mat.row k.Cellpop.Kernel.q m in
      if not (all_finite row) then Error (Error.Non_finite { stage = "kernel" })
      else
        let mass = Vec.sum row *. k.Cellpop.Kernel.bin_width in
        if Float.abs (mass -. 1.0) > mass_tol then Error Error.Kernel_degenerate
        else check_rows (m + 1)
  in
  check_rows 0
