(** Structured pre-solve validation: every check that used to surface as a
    deep-in-the-stack [assert]/[failwith] (or as silent garbage) is checked
    here up front and reported as a typed {!Error.t}. *)

open Numerics

val all_finite : Vec.t -> bool

val finite : stage:string -> Vec.t -> (unit, Error.t) result
(** [Non_finite {stage}] if any entry is NaN or infinite. *)

val sigmas : Vec.t -> (unit, Error.t) result
(** Every σ must be finite and strictly positive. *)

val times : field:string -> Vec.t -> (unit, Error.t) result
(** Times must be finite, non-negative and non-decreasing (ties are
    allowed: replicate measurements at the same time are legitimate). *)

val kernel : ?mass_tol:float -> Cellpop.Kernel.t -> (unit, Error.t) result
(** Checks dimensions, finiteness of phases/times/Q, sortedness of times,
    and that every row of Q integrates to 1 within [mass_tol] (default
    1e-3). A row with (almost) no mass is {!Error.Kernel_degenerate}. *)
