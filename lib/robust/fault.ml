open Numerics

type 'a t = {
  name : string;
  inject : Rng.t -> 'a -> 'a;
}

let apply f rng x = f.inject rng x

let compose ?name fs =
  let name =
    match name with Some n -> n | None -> String.concat " + " (List.map (fun f -> f.name) fs)
  in
  { name; inject = (fun rng x -> List.fold_left (fun acc f -> f.inject rng acc) x fs) }

let pick rng index v =
  match index with Some i -> i | None -> Rng.int rng (Array.length v)

let map_at name ?index f =
  {
    name;
    inject =
      (fun rng v ->
        let v = Array.copy v in
        let i = pick rng index v in
        v.(i) <- f v.(i);
        v);
  }

let nan_at ?index () = map_at "NaN entry" ?index (fun _ -> Float.nan)
let inf_at ?index () = map_at "infinite entry" ?index (fun _ -> Float.infinity)
let zero_at ?index () = map_at "zeroed entry" ?index (fun _ -> 0.0)
let negate_at ?index () = map_at "negated entry" ?index (fun x -> -.x)

let spike ?index ~magnitude () =
  {
    name = Printf.sprintf "noise spike x%g" magnitude;
    inject =
      (fun rng v ->
        let v = Array.copy v in
        let i = pick rng index v in
        v.(i) <- v.(i) +. (magnitude *. Float.max 1.0 (Vec.norm_inf v));
        v);
  }

(* Shuffle, guaranteed to actually permute when that is possible (length
   >= 2): the harness must not silently test the identity fault. Total:
   shorter vectors have no non-identity permutation and return unchanged.
   The identity test runs on an index permutation — comparing shuffled
   values would mistake NaN-containing vectors for permuted ones. *)
let shuffle_strict rng v =
  let n = Array.length v in
  if n < 2 then Array.copy v
  else begin
    let perm = Array.init n (fun i -> i) in
    Rng.shuffle rng perm;
    let identity = ref true in
    Array.iteri (fun i p -> if p <> i then identity := false) perm;
    if !identity then begin
      perm.(0) <- 1;
      perm.(1) <- 0
    end;
    Array.map (fun i -> v.(i)) perm
  end

let shuffle = { name = "shuffled order"; inject = shuffle_strict }

let copy_kernel (k : Cellpop.Kernel.t) =
  {
    k with
    Cellpop.Kernel.phases = Array.copy k.Cellpop.Kernel.phases;
    times = Array.copy k.Cellpop.Kernel.times;
    q = Mat.copy k.Cellpop.Kernel.q;
    q_tilde = Mat.copy k.Cellpop.Kernel.q_tilde;
  }

let kernel_nan_column ?column () =
  {
    name = "NaN kernel column";
    inject =
      (fun rng k ->
        let k = copy_kernel k in
        let j = pick rng column k.Cellpop.Kernel.phases in
        for m = 0 to (fst (Mat.dims k.Cellpop.Kernel.q)) - 1 do
          Mat.set k.Cellpop.Kernel.q m j Float.nan
        done;
        k);
  }

let kernel_zero_row ?row () =
  {
    name = "zeroed kernel row";
    inject =
      (fun rng k ->
        let k = copy_kernel k in
        let m = pick rng row k.Cellpop.Kernel.times in
        Mat.set_row k.Cellpop.Kernel.q m (Vec.zeros (snd (Mat.dims k.Cellpop.Kernel.q)));
        k);
  }

let kernel_duplicate_time ?row () =
  {
    name = "duplicated time point";
    inject =
      (fun rng k ->
        let k = copy_kernel k in
        let n_t = Array.length k.Cellpop.Kernel.times in
        let m =
          match row with Some m -> m | None -> 1 + Rng.int rng (Stdlib.max 1 (n_t - 1))
        in
        let m = Stdlib.min (Stdlib.max 1 m) (n_t - 1) in
        k.Cellpop.Kernel.times.(m) <- k.Cellpop.Kernel.times.(m - 1);
        Mat.set_row k.Cellpop.Kernel.q m (Mat.row k.Cellpop.Kernel.q (m - 1));
        k);
  }

let kernel_shuffle_times =
  {
    name = "shuffled kernel times";
    inject =
      (fun rng k ->
        let k = copy_kernel k in
        { k with Cellpop.Kernel.times = shuffle_strict rng k.Cellpop.Kernel.times });
  }

(* ---------------- matrix (gene-batch) faults ---------------- *)

let choose_rows rng ~k ~rows =
  if k < 0 || k > rows then
    Error.raise_error (Error.Invalid_input { field = "k"; why = "need 0 <= k <= rows" });
  (* Partial Fisher-Yates over the index vector: k distinct draws. *)
  let idx = Array.init rows (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + Rng.int rng (rows - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  let chosen = Array.sub idx 0 k in
  Array.sort compare chosen;
  chosen

let corrupt_rows ~rows fault =
  {
    name = Printf.sprintf "%s in %d rows" fault.name (Array.length rows);
    inject =
      (fun rng m ->
        let m = Mat.copy m in
        Array.iter (fun g -> Mat.set_row m g (fault.inject rng (Mat.row m g))) rows;
        m);
  }

let corrupt_random_rows ~k fault =
  {
    name = Printf.sprintf "%s in %d random rows" fault.name k;
    inject =
      (fun rng m ->
        let rows = choose_rows rng ~k ~rows:(fst (Mat.dims m)) in
        (corrupt_rows ~rows fault).inject rng m);
  }

let poison_sigma_rows ~rows = corrupt_rows ~rows (zero_at ())

exception Injected_crash of { done_ : int; total : int }

let crash_after ~genes ~done_ ~total =
  if done_ >= genes then raise (Injected_crash { done_; total })
