type stage =
  | Validation
  | Repair
  | Constrained_qp
  | Unconstrained
  | Richardson_lucy

let stage_name = function
  | Validation -> "validation"
  | Repair -> "input repair"
  | Constrained_qp -> "constrained QP"
  | Unconstrained -> "unconstrained smoothing spline"
  | Richardson_lucy -> "Richardson-Lucy"

type attempt = {
  stage : stage;
  lambda : float;
  ridge : float;
  seconds : float;
  iterations : int;
  outcome : (unit, Error.t) result;
}

type repair = { action : string; count : int }

type t = {
  attempts : attempt list;
  condition : float option;
  repairs : repair list;
  degradation : int;
  solved_by : stage;
}

let num_attempts r = List.length r.attempts

let failed_attempts r = List.filter (fun a -> Result.is_error a.outcome) r.attempts

let budget_limited r =
  List.exists
    (fun a ->
      match a.outcome with
      | Error (Error.Budget_exhausted _) -> true
      | Ok () | Error _ -> false)
    r.attempts

let to_string r =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "solved by %s (degradation level %d)\n" (stage_name r.solved_by)
    r.degradation;
  (match r.condition with
  | Some c -> Printf.bprintf buf "condition estimate: %.3g\n" c
  | None -> ());
  List.iter (fun { action; count } -> Printf.bprintf buf "repair: %s (%d)\n" action count)
    r.repairs;
  List.iter
    (fun a ->
      Printf.bprintf buf "  %-28s lambda=%-10.3g ridge=%-10.3g %6.1f ms %4s  %s\n"
        (stage_name a.stage) a.lambda a.ridge (1000.0 *. a.seconds)
        (if a.iterations > 0 then Printf.sprintf "%dit" a.iterations else "-")
        (match a.outcome with Ok () -> "ok" | Error e -> Error.to_string e))
    r.attempts;
  Buffer.contents buf
