open Numerics

type t = {
  phases : Vec.t;
  bin_width : float;
  times : Vec.t;
  q : Mat.t;
  q_tilde : Mat.t;
}

(* Triangular moving average with window 2r+1; the row is renormalized by
   the caller. Reflecting boundaries keep mass near the edges. *)
let smooth_row window row =
  if window <= 1 then row
  else begin
    let r = window / 2 in
    let n = Array.length row in
    let reflect i = if i < 0 then -i - 1 else if i >= n then (2 * n) - 1 - i else i in
    Array.init n (fun i ->
        let num = ref 0.0 and den = ref 0.0 in
        for k = -r to r do
          let w = float_of_int (r + 1 - abs k) in
          num := !num +. (w *. row.(reflect (i + k)));
          den := !den +. w
        done;
        !num /. !den)
  end

let of_snapshots ?(smooth_window = 1) params snapshots ~n_phi ~n0 =
  assert (n_phi >= 2);
  assert (Array.length snapshots >= 1);
  let bin_width = 1.0 /. float_of_int n_phi in
  let phases = Array.init n_phi (fun j -> (float_of_int j +. 0.5) *. bin_width) in
  let times = Array.map (fun (s : Population.snapshot) -> s.Population.time) snapshots in
  let n_t = Array.length snapshots in
  let q_tilde = Mat.zeros n_t n_phi in
  let q = Mat.zeros n_t n_phi in
  (* Each snapshot bins into its own matrix row, so rows deposit in
     parallel; the result is identical in any order. *)
  Parallel.parallel_for ~chunk:1 ~n:n_t (fun ~lo ~hi ->
      for m = lo to hi - 1 do
        let s : Population.snapshot = snapshots.(m) in
        let row = Array.make n_phi 0.0 in
        Array.iter
          (fun c ->
            let v = Cell.volume params c in
            (* Cloud-in-cell deposit: split the cell volume between the two
               nearest bin centers. *)
            let pos = (c.Cell.phase /. bin_width) -. 0.5 in
            let j0 = int_of_float (Float.floor pos) in
            let frac = pos -. float_of_int j0 in
            let deposit j w =
              if j >= 0 && j < n_phi then row.(j) <- row.(j) +. (w *. v)
              else if j < 0 then row.(0) <- row.(0) +. (w *. v)
              else row.(n_phi - 1) <- row.(n_phi - 1) +. (w *. v)
            in
            deposit j0 (1.0 -. frac);
            deposit (j0 + 1) frac)
          s.Population.cells;
        (* Per-founder volume density: divide by n0 and bin width. *)
        let density = Array.map (fun x -> x /. (float_of_int n0 *. bin_width)) row in
        let density = smooth_row smooth_window density in
        Mat.set_row q_tilde m density;
        let total = Vec.sum density *. bin_width in
        if total > 0.0 then Mat.set_row q m (Array.map (fun x -> x /. total) density)
      done);
  { phases; bin_width; times; q; q_tilde }

let estimate ?smooth_window params ~rng ~n_cells ~times ~n_phi =
  Obs.Span.with_ "kernel.estimate" (fun sp ->
      Obs.Span.set_int sp "n_cells" n_cells;
      Obs.Span.set_int sp "n_phi" n_phi;
      Obs.Span.set_int sp "n_times" (Array.length times);
      Obs.Span.set_int sp "smooth_window" (Option.value smooth_window ~default:1);
      let snapshots = Population.simulate params ~rng ~n0:n_cells ~times in
      of_snapshots ?smooth_window params snapshots ~n_phi ~n0:n_cells)

let row k m = Mat.row k.q m

let integrate_profile k f =
  assert (Array.length f = Array.length k.phases);
  Array.init (Array.length k.times) (fun m ->
      let q_row = Mat.row k.q m in
      let acc = ref 0.0 in
      for j = 0 to Array.length f - 1 do
        acc := !acc +. (q_row.(j) *. f.(j))
      done;
      !acc *. k.bin_width)

let magic = "deconv-kernel-v1"

let save k ~path =
  Dataio.Atomic_file.write path (fun oc ->
      let n_phi = Array.length k.phases and n_t = Array.length k.times in
      Printf.fprintf oc "%s,%d,%d,%.17g\n" magic n_phi n_t k.bin_width;
      let row_of label values =
        Printf.fprintf oc "%s,%s\n" label
          (String.concat "," (Array.to_list (Array.map (Printf.sprintf "%.17g") values)))
      in
      row_of "times" k.times;
      row_of "phases" k.phases;
      for m = 0 to n_t - 1 do
        row_of "q" (Mat.row k.q m)
      done;
      for m = 0 to n_t - 1 do
        row_of "qtilde" (Mat.row k.q_tilde m)
      done)

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let fail msg = failwith (Printf.sprintf "Kernel.load %s: %s" path msg) in
      let line () = try input_line ic with End_of_file -> fail "truncated file" in
      let header = String.split_on_char ',' (line ()) in
      let n_phi, n_t, bin_width =
        match header with
        | [ m; a; b; w ] when m = magic ->
          (int_of_string a, int_of_string b, float_of_string w)
        | _ -> fail "bad header"
      in
      if n_phi < 2 || n_t < 1 then fail "bad dimensions";
      let labeled expected =
        match String.split_on_char ',' (line ()) with
        | label :: rest when label = expected ->
          Array.of_list (List.map float_of_string rest)
        | label :: _ -> fail (Printf.sprintf "expected %s row, found %s" expected label)
        | [] -> fail "empty line"
      in
      let times = labeled "times" in
      let phases = labeled "phases" in
      if Array.length times <> n_t || Array.length phases <> n_phi then
        fail "inconsistent row lengths";
      let read_matrix label =
        let m = Mat.zeros n_t n_phi in
        for r = 0 to n_t - 1 do
          let row = labeled label in
          if Array.length row <> n_phi then fail "inconsistent matrix row";
          Mat.set_row m r row
        done;
        m
      in
      let q = read_matrix "q" in
      let q_tilde = read_matrix "qtilde" in
      { phases; bin_width; times; q; q_tilde })

let check_normalization k =
  let worst = ref 0.0 in
  for m = 0 to Array.length k.times - 1 do
    let integral = Vec.sum (Mat.row k.q m) *. k.bin_width in
    worst := Float.max !worst (Float.abs (integral -. 1.0))
  done;
  !worst
