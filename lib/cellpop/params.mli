(** Population-model parameters for the Caulobacter asynchrony model
    (paper §2.1 and §3.1). *)

type volume_model =
  | Linear  (** purely linear v(φ) of Siegal-Gaskins et al. 2009 *)
  | Smooth  (** piecewise polynomial of paper eq. 11 with continuous v' across division *)

type initial_condition =
  | Synchronized_swarmer
      (** batch-culture synchrony: every founder cell is a swarmer, with
          phase uniform on [0, φ_sst_k] (paper §2.1, citing Evinger &
          Agabian) *)
  | Uniform_phase  (** unsynchronized control: phase uniform on [0, 1) *)

type t = {
  mu_sst : float;  (** mean SW→ST transition phase *)
  cv_sst : float;  (** coefficient of variation of φ_sst *)
  mean_cycle_minutes : float;  (** mean total cycle time T_k *)
  cv_cycle : float;  (** coefficient of variation of T_k *)
  v0 : float;  (** cell volume at φ = 1, just prior to division *)
  volume_model : volume_model;
  initial_condition : initial_condition;
}

val sw_volume_fraction : float
(** Fraction of the predivisional volume inherited by the swarmer daughter
    (0.4, paper eqs. 6–8). The only allowed literal site is [Params]. *)

val st_volume_fraction : float
(** Fraction inherited by the stalked daughter (0.6 = 1 − 0.4). *)

val paper_2011 : t
(** The updated model of this paper: μ_sst = 0.15, CV 0.13, 150-minute mean
    cycle, smooth volume model. *)

val plos_2009 : t
(** The earlier model: μ_sst = 0.25, linear volume model. *)

val sst_std : t -> float
(** Standard deviation of φ_sst (= cv_sst · mu_sst). *)

val cycle_std : t -> float

val sst_density : t -> float -> float
(** Gaussian density p(φ) = N(φ; μ_sst, σ_sst²) of the transition phase
    (used by the constraint weights of paper eqs. 14–19). *)
