open Numerics

let replication_end_phase = 0.92

let of_cell (c : Cell.t) =
  let start = c.Cell.phi_sst in
  let phi = c.Cell.phase in
  if phi < start then 1.0
  else if phi >= replication_end_phase then 2.0
  else 1.0 +. ((phi -. start) /. (replication_end_phase -. start))

let fractions (s : Population.snapshot) =
  let n = Array.length s.Population.cells in
  if n = 0 then (0.0, 0.0, 0.0)
  else begin
    let one_c = ref 0 and s_phase = ref 0 and two_c = ref 0 in
    Array.iter
      (fun c ->
        let dna = of_cell c in
        if dna <= 1.0 then incr one_c
        else if dna >= 2.0 then incr two_c
        else incr s_phase)
      s.Population.cells;
    let nf = float_of_int n in
    (float_of_int !one_c /. nf, float_of_int !s_phase /. nf, float_of_int !two_c /. nf)
  end

let histogram ?(bins = 60) ?(measurement_cv = 0.06) rng (s : Population.snapshot) =
  let values =
    Array.map
      (fun c ->
        let true_content = of_cell c in
        true_content *. Rng.lognormal_factor rng ~cv:measurement_cv)
      s.Population.cells
  in
  Stats.histogram ~bins ~lo:0.5 ~hi:2.5 values

let fractions_over_time snapshots =
  Mat.init (Array.length snapshots) 3 (fun i j ->
      let one_c, s_phase, two_c = fractions snapshots.(i) in
      match j with 0 -> one_c | 1 -> s_phase | _ -> two_c)
