open Numerics

(* The founder population has, per cell: phi_sst ~ TN(mu, sigma_s) on a
   truncation window, T ~ TN(T_mean, sigma_T), phi_0 ~ U(0, phi_sst). While
   no cell has divided,

   Q~(phi, t) = E[ v_{phi_sst}(phi) 1{0 <= phi - t/T <= phi_sst} / phi_sst ]

   integrated over the (T, phi_sst) product density. Truncation windows are
   the same as in Cell.draw_* so the analytic kernel matches the sampler. *)

let valid_until (p : Params.t) =
  let t_min = Float.max (0.2 *. p.Params.mean_cycle_minutes)
      (p.Params.mean_cycle_minutes -. (3.0 *. Params.cycle_std p))
  in
  let sst_max = Float.min 0.98 (p.Params.mu_sst +. (4.0 *. Params.sst_std p)) in
  t_min *. (1.0 -. sst_max)

(* Truncated-normal density on [lo, hi] (normalized). *)
let truncated_density ~mean ~std ~lo ~hi x =
  if x < lo || x > hi then 0.0
  else begin
    let mass =
      Special.normal_cdf ~mean ~std hi -. Special.normal_cdf ~mean ~std lo
    in
    Special.normal_pdf ~mean ~std x /. mass
  end

let q_tilde ?(quad_nodes = 48) (p : Params.t) ~phi ~t =
  assert (phi >= 0.0 && phi <= 1.0);
  let nodes, weights = Integrate.gauss_legendre_nodes quad_nodes in
  let t_mean = p.Params.mean_cycle_minutes in
  let sigma_t = Params.cycle_std p in
  let t_lo = 0.2 *. t_mean and t_hi = 3.0 *. t_mean in
  (* Integrate T over mean +- 5 sigma intersected with the truncation. *)
  let t_a = Float.max t_lo (t_mean -. (5.0 *. sigma_t)) in
  let t_b = Float.min t_hi (t_mean +. (5.0 *. sigma_t)) in
  let s_mean = p.Params.mu_sst and s_std = Params.sst_std p in
  let s_lo = 0.02 and s_hi = 0.98 in
  let s_a = Float.max s_lo (s_mean -. (6.0 *. s_std)) in
  let s_b = Float.min s_hi (s_mean +. (6.0 *. s_std)) in
  let map_node a b u = ((a +. b) /. 2.0) +. ((b -. a) /. 2.0 *. u) in
  let acc = ref 0.0 in
  for i = 0 to quad_nodes - 1 do
    let cycle = map_node t_a t_b nodes.(i) in
    let w_t =
      weights.(i) *. ((t_b -. t_a) /. 2.0)
      *. truncated_density ~mean:t_mean ~std:sigma_t ~lo:t_lo ~hi:t_hi cycle
    in
    if w_t > 0.0 then begin
      let phi0 = phi -. (t /. cycle) in
      if phi0 >= 0.0 && phi0 <= s_b then begin
        (* phi0 must also be below phi_sst: integrate phi_sst from
           max(phi0, s_a) .. s_b with the 1/phi_sst initial-phase density. *)
        let inner_a = Float.max phi0 s_a in
        if inner_a < s_b then begin
          let inner = ref 0.0 in
          for j = 0 to quad_nodes - 1 do
            let sst = map_node inner_a s_b nodes.(j) in
            let w_s =
              weights.(j) *. ((s_b -. inner_a) /. 2.0)
              *. truncated_density ~mean:s_mean ~std:s_std ~lo:s_lo ~hi:s_hi sst
            in
            if w_s > 0.0 then begin
              let volume = Volume.eval p ~phi_sst:sst (Float.min 1.0 phi) in
              inner := !inner +. (w_s *. volume /. sst)
            end
          done;
          acc := !acc +. (w_t *. !inner)
        end
      end
    end
  done;
  !acc

let estimate ?quad_nodes (p : Params.t) ~times ~n_phi =
  assert (n_phi >= 2);
  let limit = valid_until p in
  Array.iter (fun t -> assert (t <= limit +. 1e-9)) times;
  let bin_width = 1.0 /. float_of_int n_phi in
  let phases = Array.init n_phi (fun j -> (float_of_int j +. 0.5) *. bin_width) in
  let n_t = Array.length times in
  let q_tilde_mat = Mat.zeros n_t n_phi in
  let q_mat = Mat.zeros n_t n_phi in
  Array.iteri
    (fun m t ->
      let row = Array.map (fun phi -> q_tilde ?quad_nodes p ~phi ~t) phases in
      Mat.set_row q_tilde_mat m row;
      let total = Vec.sum row *. bin_width in
      if total > 0.0 then Mat.set_row q_mat m (Array.map (fun x -> x /. total) row))
    times;
  {
    Kernel.phases;
    bin_width;
    times = Array.copy times;
    q = q_mat;
    q_tilde = q_tilde_mat;
  }
