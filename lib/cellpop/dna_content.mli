(** DNA content per cell — the flow-cytometry observable classically used
    to validate cell-cycle phase distributions (the paper's asynchrony
    model is "experimentally-validated"; DNA histograms are how such
    validation is done for Caulobacter synchrony experiments).

    Chromosome replication initiates at the SW→ST transition (the same
    event that gates ftsZ transcription) and completes before division, so
    DNA content is 1C for φ < φ_sst, ramps linearly to 2C during
    replication, and stays 2C until division. *)

open Numerics

val replication_end_phase : float
(** Phase at which replication completes (0.92). *)

val of_cell : Cell.t -> float
(** DNA content in chromosome equivalents (1.0 … 2.0). *)

val fractions : Population.snapshot -> float * float * float
(** [(one_c, s_phase, two_c)] population fractions; sums to 1. *)

val histogram :
  ?bins:int -> ?measurement_cv:float -> Rng.t -> Population.snapshot -> Stats.histogram
(** FACS-style histogram of per-cell DNA content over [0.5, 2.5] with
    multiplicative measurement smear (default CV 0.06, 60 bins) — the
    familiar bimodal 1C/2C profile. *)

val fractions_over_time : Population.snapshot array -> Mat.t
(** Rows = snapshots, columns = (1C, S, 2C). *)
