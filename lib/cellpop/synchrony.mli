(** Quantifying how synchronized a population is — and how fast a
    synchronized batch culture decays back to asynchrony, which is exactly
    the information the deconvolution kernel encodes. *)

open Numerics

val order_parameter : Population.snapshot -> float
(** Kuramoto order parameter R = |⟨e^{2πiφ}⟩| ∈ [0, 1]: 1 for a perfectly
    synchronized population, ~0 for phases spread uniformly. *)

val mean_phase : Population.snapshot -> float
(** Circular mean phase in [0, 1). *)

val phase_entropy : ?bins:int -> Population.snapshot -> float
(** Normalized Shannon entropy of the phase histogram in [0, 1]:
    0 = concentrated in one bin, 1 = uniform (default 50 bins). *)

val over_time : Population.snapshot array -> Vec.t * Vec.t
(** [(order_parameters, entropies)] per snapshot. *)

val decay_time : Vec.t -> times:Vec.t -> threshold:float -> float option
(** First time the order parameter falls below [threshold] (linear
    interpolation between snapshots); [None] if it never does. *)
