open Numerics

let order_parameter (s : Population.snapshot) =
  let n = Array.length s.Population.cells in
  if n = 0 then 0.0
  else begin
    let sum_cos = ref 0.0 and sum_sin = ref 0.0 in
    Array.iter
      (fun (c : Cell.t) ->
        let angle = 2.0 *. Float.pi *. c.Cell.phase in
        sum_cos := !sum_cos +. Float.cos angle;
        sum_sin := !sum_sin +. Float.sin angle)
      s.Population.cells;
    let nf = float_of_int n in
    sqrt (((!sum_cos /. nf) ** 2.0) +. ((!sum_sin /. nf) ** 2.0))
  end

let mean_phase (s : Population.snapshot) =
  let sum_cos = ref 0.0 and sum_sin = ref 0.0 in
  Array.iter
    (fun (c : Cell.t) ->
      let angle = 2.0 *. Float.pi *. c.Cell.phase in
      sum_cos := !sum_cos +. Float.cos angle;
      sum_sin := !sum_sin +. Float.sin angle)
    s.Population.cells;
  let angle = Float.atan2 !sum_sin !sum_cos in
  let phase = angle /. (2.0 *. Float.pi) in
  if phase < 0.0 then phase +. 1.0 else phase

let phase_entropy ?(bins = 50) (s : Population.snapshot) =
  let n = Array.length s.Population.cells in
  if n = 0 then 0.0
  else begin
    let histogram = Stats.histogram ~bins ~lo:0.0 ~hi:1.0 (Population.phases s) in
    let total = Vec.sum histogram.Stats.counts in
    let entropy = ref 0.0 in
    Array.iter
      (fun count ->
        if count > 0.0 then begin
          let p = count /. total in
          entropy := !entropy -. (p *. log p)
        end)
      histogram.Stats.counts;
    !entropy /. log (float_of_int bins)
  end

let over_time snapshots =
  (Array.map order_parameter snapshots, Array.map (fun s -> phase_entropy s) snapshots)

let decay_time order ~times ~threshold =
  assert (Array.length order = Array.length times);
  let n = Array.length order in
  let result = ref None in
  (try
     for i = 0 to n - 1 do
       if order.(i) < threshold then begin
         if i = 0 then result := Some times.(0)
         else begin
           let w = (order.(i - 1) -. threshold) /. (order.(i - 1) -. order.(i)) in
           result := Some (times.(i - 1) +. (w *. (times.(i) -. times.(i - 1))))
         end;
         raise Exit
       end
     done
   with Exit -> ());
  !result
