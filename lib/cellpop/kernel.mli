(** The integral-transform kernel Q(φ, t) of paper eq. 3.

    Q̃(φ, t) is the expected single-cell volume density over phase;
    Q = Q̃ / ∫Q̃ dφ is the fractional volume density: the fraction of total
    population volume near phase φ at time t. Both are estimated from a
    Monte-Carlo population simulation by volume-weighted deposition onto a
    phase grid. *)

open Numerics

type t = {
  phases : Vec.t;  (** phase-bin centers, length [n_phi] *)
  bin_width : float;
  times : Vec.t;
  q : Mat.t;  (** normalized kernel; row m is Q(·, times.(m)), ∫Q dφ = 1 *)
  q_tilde : Mat.t;  (** unnormalized volume density (per founder cell) *)
}

val estimate :
  ?smooth_window:int ->
  Params.t ->
  rng:Rng.t ->
  n_cells:int ->
  times:Vec.t ->
  n_phi:int ->
  t
(** Simulate [n_cells] founders and deposit cell volumes onto [n_phi] bins
    with linear (cloud-in-cell) weighting to reduce discretization noise.
    [smooth_window] (odd, default 1 = off) applies a triangular moving
    average to each time row before normalization. *)

val of_snapshots : ?smooth_window:int -> Params.t -> Population.snapshot array -> n_phi:int -> n0:int -> t
(** Build the kernel from an existing simulation. *)

val row : t -> int -> Vec.t
(** Q(·, times.(m)). *)

val integrate_profile : t -> Vec.t -> Vec.t
(** [integrate_profile k f] computes G(t_m) = ∫ Q(φ, t_m) f(φ) dφ for a
    profile sampled on [k.phases] (midpoint rule). *)

val check_normalization : t -> float
(** max_m |∫Q(φ, t_m) dφ − 1| — should be ~0. *)

val save : t -> path:string -> unit
(** Persist the kernel (a plain text format with a version header) so the
    expensive Monte-Carlo estimation can be reused across runs and
    shared between the CLI's [kernel] and [deconvolve] commands. *)

val load : path:string -> t
(** Inverse of {!save}. Raises [Failure] on format or consistency
    violations. *)
