type snapshot = { time : float; cells : Cell.t array }

(* Advance one cell by [dt] minutes, emitting it and any descendants born
   within the window into [out]. Division times are located exactly because
   phase is linear in time. *)
let rec advance_cell params rng out cell dt =
  let to_division = Cell.time_to_division cell in
  if dt < to_division then out := Cell.advance cell dt :: !out
  else begin
    let remaining = dt -. to_division in
    let swarmer = Cell.swarmer_daughter params rng in
    let stalked = Cell.stalked_daughter params rng in
    advance_cell params rng out swarmer remaining;
    advance_cell params rng out stalked remaining
  end

(* Founders per RNG chunk. Fixed — never derived from the domain count —
   so the substream each founder sees is a function of (seed, n0) alone
   and simulation results are bit-identical at every jobs setting. *)
let founders_per_chunk = 256

(* Simulate founders [lo, hi) through every snapshot time with a private
   generator. Cells are independent, so a chunk's trajectory never needs
   to see another chunk's cells; the per-time cell arrays are merged by
   the caller in chunk order. *)
let simulate_chunk params crng ~lo ~hi ~times =
  let count = hi - lo in
  let first = Cell.founder params crng in
  let founders = Array.make count first in
  for i = 1 to count - 1 do
    founders.(i) <- Cell.founder params crng
  done;
  let current = ref founders in
  let now = ref 0.0 in
  let n_times = Array.length times in
  let per_time = Array.make n_times [||] in
  for i = 0 to n_times - 1 do
    let dt = times.(i) -. !now in
    if dt > 0.0 then begin
      let out = ref [] in
      Array.iter (fun c -> advance_cell params crng out c dt) !current;
      current := Array.of_list !out;
      now := times.(i)
    end;
    per_time.(i) <- Array.copy !current
  done;
  per_time

let simulate params ~rng ~n0 ~times =
  Obs.Span.with_ "population.simulate" (fun sp ->
      assert (n0 > 0);
      let n_times = Array.length times in
      assert (n_times >= 1);
      for i = 0 to n_times - 2 do
        assert (times.(i) < times.(i + 1))
      done;
      assert (times.(0) >= 0.0);
      let n_chunks = (n0 + founders_per_chunk - 1) / founders_per_chunk in
      Obs.Span.set_int sp "n0" n0;
      Obs.Span.set_int sp "n_times" n_times;
      Obs.Span.set_int sp "chunks" n_chunks;
      (* One substream per chunk, derived in ascending chunk order before
         any dispatch: the derivation consumes the parent generator
         sequentially, so neither the substreams nor the parent's final
         state depend on execution order. *)
      let rngs = Array.make n_chunks rng in
      for c = 0 to n_chunks - 1 do
        rngs.(c) <- Numerics.Rng.split rng
      done;
      let per_chunk =
        Parallel.parallel_map ~chunk:1 ~n:n_chunks (fun c ->
            let lo = c * founders_per_chunk in
            let hi = Stdlib.min n0 (lo + founders_per_chunk) in
            simulate_chunk params rngs.(c) ~lo ~hi ~times)
      in
      let snapshots =
        Array.init n_times (fun i ->
            {
              time = times.(i);
              cells = Array.concat (Array.to_list (Array.map (fun pt -> pt.(i)) per_chunk));
            })
      in
      let final_cells = Array.length snapshots.(n_times - 1).cells in
      Obs.Span.set_int sp "final_cells" final_cells;
      Obs.Metrics.incr ~by:(float_of_int final_cells) "population.cells_simulated";
      snapshots)

let count s = Array.length s.cells

let total_volume params s =
  Array.fold_left (fun acc c -> acc +. Cell.volume params c) 0.0 s.cells

let phases s = Array.map (fun (c : Cell.t) -> c.Cell.phase) s.cells

let volumes params s = Array.map (Cell.volume params) s.cells

let growth_rate ?discard snapshots =
  let n = Array.length snapshots in
  assert (n >= 2);
  let t_min = snapshots.(0).time and t_max = snapshots.(n - 1).time in
  let discard = match discard with Some d -> d | None -> t_min +. ((t_max -. t_min) /. 2.0) in
  let retained =
    Array.of_list
      (List.filter
         (fun s -> s.time >= discard && Array.length s.cells > 0)
         (Array.to_list snapshots))
  in
  assert (Array.length retained >= 2);
  let times = Array.map (fun s -> s.time) retained in
  let log_counts = Array.map (fun s -> log (float_of_int (Array.length s.cells))) retained in
  (* Least-squares slope. *)
  let t_mean = Numerics.Stats.mean times and l_mean = Numerics.Stats.mean log_counts in
  let num = ref 0.0 and den = ref 0.0 in
  Array.iteri
    (fun i t ->
      num := !num +. ((t -. t_mean) *. (log_counts.(i) -. l_mean));
      den := !den +. ((t -. t_mean) *. (t -. t_mean)))
    times;
  assert (!den > 0.0);
  !num /. !den

let euler_lotka_rate (p : Params.t) =
  let t_cycle = p.Params.mean_cycle_minutes in
  let s = p.Params.mu_sst in
  let equation r = exp (-.r *. t_cycle) +. exp (-.r *. t_cycle *. (1.0 -. s)) -. 1.0 in
  (* r is bracketed by the one-offspring (r = 0+) and symmetric-doubling
     (ln 2 / (T(1-s))) regimes. *)
  Numerics.Rootfind.brent equation ~a:(1e-6 /. t_cycle) ~b:(2.0 *. log 2.0 /. t_cycle)

let mean_signal params f s =
  let num = ref 0.0 and den = ref 0.0 in
  Array.iter
    (fun c ->
      let v = Cell.volume params c in
      num := !num +. (v *. f ~phi:c.Cell.phase);
      den := !den +. v)
    s.cells;
  if Float.equal !den 0.0 then 0.0 else !num /. !den
