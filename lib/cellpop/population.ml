type snapshot = { time : float; cells : Cell.t array }

(* Advance one cell by [dt] minutes, emitting it and any descendants born
   within the window into [out]. Division times are located exactly because
   phase is linear in time. *)
let rec advance_cell params rng out cell dt =
  let to_division = Cell.time_to_division cell in
  if dt < to_division then out := Cell.advance cell dt :: !out
  else begin
    let remaining = dt -. to_division in
    let swarmer = Cell.swarmer_daughter params rng in
    let stalked = Cell.stalked_daughter params rng in
    advance_cell params rng out swarmer remaining;
    advance_cell params rng out stalked remaining
  end

let simulate params ~rng ~n0 ~times =
  Obs.Span.with_ "population.simulate" (fun sp ->
      assert (n0 > 0);
      let n_times = Array.length times in
      assert (n_times >= 1);
      for i = 0 to n_times - 2 do
        assert (times.(i) < times.(i + 1))
      done;
      assert (times.(0) >= 0.0);
      Obs.Span.set_int sp "n0" n0;
      Obs.Span.set_int sp "n_times" n_times;
      let founders = Array.init n0 (fun _ -> Cell.founder params rng) in
      let current = ref founders in
      let now = ref 0.0 in
      let snapshots =
        Array.map
          (fun t ->
            let dt = t -. !now in
            if dt > 0.0 then begin
              let out = ref [] in
              Array.iter (fun c -> advance_cell params rng out c dt) !current;
              current := Array.of_list !out;
              now := t
            end;
            { time = t; cells = Array.copy !current })
          times
      in
      Obs.Span.set_int sp "final_cells" (Array.length !current);
      Obs.Metrics.incr ~by:(float_of_int (Array.length !current)) "population.cells_simulated";
      snapshots)

let count s = Array.length s.cells

let total_volume params s =
  Array.fold_left (fun acc c -> acc +. Cell.volume params c) 0.0 s.cells

let phases s = Array.map (fun (c : Cell.t) -> c.Cell.phase) s.cells

let volumes params s = Array.map (Cell.volume params) s.cells

let growth_rate ?discard snapshots =
  let n = Array.length snapshots in
  assert (n >= 2);
  let t_min = snapshots.(0).time and t_max = snapshots.(n - 1).time in
  let discard = match discard with Some d -> d | None -> t_min +. ((t_max -. t_min) /. 2.0) in
  let retained =
    Array.of_list
      (List.filter
         (fun s -> s.time >= discard && Array.length s.cells > 0)
         (Array.to_list snapshots))
  in
  assert (Array.length retained >= 2);
  let times = Array.map (fun s -> s.time) retained in
  let log_counts = Array.map (fun s -> log (float_of_int (Array.length s.cells))) retained in
  (* Least-squares slope. *)
  let t_mean = Numerics.Stats.mean times and l_mean = Numerics.Stats.mean log_counts in
  let num = ref 0.0 and den = ref 0.0 in
  Array.iteri
    (fun i t ->
      num := !num +. ((t -. t_mean) *. (log_counts.(i) -. l_mean));
      den := !den +. ((t -. t_mean) *. (t -. t_mean)))
    times;
  assert (!den > 0.0);
  !num /. !den

let euler_lotka_rate (p : Params.t) =
  let t_cycle = p.Params.mean_cycle_minutes in
  let s = p.Params.mu_sst in
  let equation r = exp (-.r *. t_cycle) +. exp (-.r *. t_cycle *. (1.0 -. s)) -. 1.0 in
  (* r is bracketed by the one-offspring (r = 0+) and symmetric-doubling
     (ln 2 / (T(1-s))) regimes. *)
  Numerics.Rootfind.brent equation ~a:(1e-6 /. t_cycle) ~b:(2.0 *. log 2.0 /. t_cycle)

let mean_signal params f s =
  let num = ref 0.0 and den = ref 0.0 in
  Array.iter
    (fun c ->
      let v = Cell.volume params c in
      num := !num +. (v *. f ~phi:c.Cell.phase);
      den := !den +. v)
    s.cells;
  if Float.equal !den 0.0 then 0.0 else !num /. !den
