(** Characterizing the population asynchrony from observable data — the
    prerequisite the paper states for applying deconvolution to any
    organism ("it is in principle characterizable for any system of
    interest", §1).

    The observable is a cell-type fraction time course (what Judd et al.
    measured, paper Fig. 4); the fitted quantities are the asynchrony
    parameters (μ_sst, mean cycle time, cycle-time CV). The fit minimizes
    the summed squared fraction error over a Nelder–Mead search with
    common random numbers (a fixed simulation seed), which makes the
    Monte-Carlo objective deterministic and smooth enough for direct
    search. *)

open Numerics

type observation = {
  times : Vec.t;  (** minutes *)
  fractions : Mat.t;  (** rows = times; columns = SW, STE, STEPD, STLPD *)
}

val judd : observation
(** The embedded Judd et al. dataset. *)

val objective :
  base:Params.t ->
  boundaries:Celltype.boundaries ->
  n_cells:int ->
  seed:int ->
  observation ->
  Params.t ->
  float
(** Mean squared fraction error of a parameter candidate. *)

type fitted = {
  params : Params.t;
  objective_value : float;
  evaluations : int;
}

val fit :
  ?n_cells:int ->
  ?seed:int ->
  ?max_iter:int ->
  base:Params.t ->
  boundaries:Celltype.boundaries ->
  observation ->
  fitted
(** Fit (μ_sst, mean_cycle_minutes, cv_cycle) starting from [base] (whose
    other fields are kept); box bounds μ_sst ∈ [0.05, 0.45],
    T ∈ [60, 400] min, cv ∈ [0.02, 0.40]. Defaults: 4000 cells, seed 7,
    200 iterations. *)
