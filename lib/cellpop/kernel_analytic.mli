(** Deterministic (quadrature-based) evaluation of the kernel for the
    FIRST cell cycle of a synchronized culture — before any division has
    occurred, the phase of founder k is exactly φ_k(t) = φ_k(0) + t/T_k
    with φ_k(0) ~ U(0, φ_sst_k), so Q̃(φ, t) is a double integral over the
    (T, φ_sst) population distribution with no Monte-Carlo error.

    This provides ground truth for validating the Monte-Carlo estimator in
    {!Kernel} (convergence as the cell count grows) and an alternative
    kernel for short experiments. *)

open Numerics

val valid_until : Params.t -> float
(** A conservative upper bound on the experiment time for which the
    no-division assumption holds for essentially all cells (the 3σ-fastest
    cell starting closest to division). *)

val q_tilde : ?quad_nodes:int -> Params.t -> phi:float -> t:float -> float
(** Pointwise Q̃(φ, t) (volume density per founder cell). *)

val estimate : ?quad_nodes:int -> Params.t -> times:Vec.t -> n_phi:int -> Kernel.t
(** Full kernel on the standard bin-center grid; rows are normalized like
    the Monte-Carlo kernel. All [times] should be below {!valid_until}
    (checked with an assertion). *)
