(** Morphological cell-type classification (paper §4.2, Fig. 4).

    Cells are grouped by phase into swarmer (SW), early stalked (STE),
    early predivisional (STEPD) and late predivisional (STLPD). The SW→STE
    boundary is each cell's own φ_sst; the later boundaries are
    population-level phases that are hard to pin down experimentally, so
    the paper reports ranges: STE→STEPD ∈ [0.6, 0.7] and
    STEPD→STLPD ∈ [0.85, 0.9]. *)

open Numerics

type category = SW | STE | STEPD | STLPD

val category_to_string : category -> string
val all_categories : category list

type boundaries = { ste_to_stepd : float; stepd_to_stlpd : float }

val low_boundaries : boundaries
(** 0.6 / 0.85 *)

val mid_boundaries : boundaries
(** 0.65 / 0.875 — the figure's solid line *)

val high_boundaries : boundaries
(** 0.7 / 0.9 *)

val classify : boundaries -> Cell.t -> category

val fractions : boundaries -> Population.snapshot -> float array
(** [| sw; ste; stepd; stlpd |], each in [0,1], summing to 1. *)

val fractions_over_time : boundaries -> Population.snapshot array -> Mat.t
(** Row m = fractions at snapshot m; columns ordered SW, STE, STEPD,
    STLPD. *)
