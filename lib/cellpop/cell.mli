(** Individual cell state and its stochastic parameters θ_k = (φ_sst_k, T_k)
    (paper §2.1). *)

open Numerics

type t = {
  phase : float;  (** current cell-cycle phase φ_k ∈ [0, 1) *)
  phi_sst : float;  (** this cell's SW→ST transition phase *)
  cycle_minutes : float;  (** this cell's total cycle time T_k *)
}

val draw_phi_sst : Params.t -> Rng.t -> float
(** Truncated-normal draw of φ_sst, confined to (0.02, 0.98) so every cell
    has a valid dimorphic cycle. *)

val draw_cycle_minutes : Params.t -> Rng.t -> float
(** Truncated-normal draw of T_k, bounded below at 20 % of the mean. *)

val founder : Params.t -> Rng.t -> t
(** A founder cell per the population's initial condition. *)

val swarmer_daughter : Params.t -> Rng.t -> t
(** Fresh SW daughter at φ = 0 with freshly drawn θ. *)

val stalked_daughter : Params.t -> Rng.t -> t
(** Fresh ST daughter re-entering its cycle at its own φ_sst (it skips the
    swarmer stage). *)

val rate : t -> float
(** Phase progression rate dφ/dt = 1/T_k (per minute). *)

val time_to_division : t -> float
(** Minutes until this cell reaches φ = 1. *)

val advance : t -> float -> t
(** [advance cell dt] moves the phase forward by [dt] minutes. The caller
    must ensure the cell does not cross φ = 1 (use {!time_to_division}). *)

val volume : Params.t -> t -> float
val is_swarmer : t -> bool
