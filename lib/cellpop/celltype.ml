open Numerics

type category = SW | STE | STEPD | STLPD

let category_to_string = function
  | SW -> "SW"
  | STE -> "STE"
  | STEPD -> "STEPD"
  | STLPD -> "STLPD"

let all_categories = [ SW; STE; STEPD; STLPD ]

type boundaries = { ste_to_stepd : float; stepd_to_stlpd : float }

(* lint: allow R4 -- DNA-content gate boundary between early and
   early-predivisional stalked cells, not the ST volume fraction *)
let low_boundaries = { ste_to_stepd = 0.6; stepd_to_stlpd = 0.85 }
let mid_boundaries = { ste_to_stepd = 0.65; stepd_to_stlpd = 0.875 }
let high_boundaries = { ste_to_stepd = 0.7; stepd_to_stlpd = 0.9 }

let classify b (c : Cell.t) =
  if c.Cell.phase < c.Cell.phi_sst then SW
  else if c.Cell.phase < b.ste_to_stepd then STE
  else if c.Cell.phase < b.stepd_to_stlpd then STEPD
  else STLPD

let index = function SW -> 0 | STE -> 1 | STEPD -> 2 | STLPD -> 3

let fractions b (s : Population.snapshot) =
  let counts = Array.make 4 0.0 in
  Array.iter (fun c -> counts.(index (classify b c)) <- counts.(index (classify b c)) +. 1.0) s.Population.cells;
  let n = float_of_int (Array.length s.Population.cells) in
  if Float.equal n 0.0 then counts else Array.map (fun c -> c /. n) counts

let fractions_over_time b snapshots =
  Mat.of_rows (Array.map (fractions b) snapshots)
