open Numerics

type volume_model = Linear | Smooth

type initial_condition = Synchronized_swarmer | Uniform_phase

type t = {
  mu_sst : float;
  cv_sst : float;
  mean_cycle_minutes : float;
  cv_cycle : float;
  v0 : float;
  volume_model : volume_model;
  initial_condition : initial_condition;
}

(* Daughter-volume split at division (paper eqs. 6–8, Thanbichler &
   Shapiro 2006): the swarmer daughter receives 40 % of the predivisional
   volume, the stalked daughter the remaining 60 %. Every other occurrence
   of the 0.4/0.6 split in the codebase must reference these two names —
   the deconv-lint magic-number rule (R4) enforces it; this file is the
   rule's single allowed definition site. *)
let sw_volume_fraction = 0.4
let st_volume_fraction = 0.6

let paper_2011 =
  {
    mu_sst = 0.15;
    cv_sst = 0.13;
    mean_cycle_minutes = 150.0;
    cv_cycle = 0.1;
    v0 = 1.0;
    volume_model = Smooth;
    initial_condition = Synchronized_swarmer;
  }

let plos_2009 = { paper_2011 with mu_sst = 0.25; volume_model = Linear }

let sst_std p = p.cv_sst *. p.mu_sst

let cycle_std p = p.cv_cycle *. p.mean_cycle_minutes

let sst_density p phi = Special.normal_pdf ~mean:p.mu_sst ~std:(sst_std p) phi
