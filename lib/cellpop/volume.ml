let check phi_sst phi =
  assert (phi_sst > 0.0 && phi_sst < 1.0);
  assert (phi >= 0.0 && phi <= 1.0 +. 1e-9)

let linear ~v0 ~phi_sst phi =
  check phi_sst phi;
  if phi < phi_sst then v0 *. (0.4 +. (0.2 *. phi /. phi_sst))
  else v0 *. (0.6 +. (0.4 *. (phi -. phi_sst) /. (1.0 -. phi_sst)))

let linear_deriv ~v0 ~phi_sst phi =
  check phi_sst phi;
  if phi < phi_sst then v0 *. 0.2 /. phi_sst else v0 *. 0.4 /. (1.0 -. phi_sst)

(* Paper eq. 11. *)
let smooth ~v0 ~phi_sst phi =
  check phi_sst phi;
  let s = phi_sst in
  if phi < s then begin
    let c1 = 0.4 /. (1.0 -. s) in
    let c2 = (0.6 -. (1.8 *. s)) /. ((1.0 -. s) *. s *. s) in
    let c3 = ((1.2 *. s) -. 0.4) /. ((1.0 -. s) *. s *. s *. s) in
    v0 *. (0.4 +. (c1 *. phi) +. (c2 *. phi *. phi) +. (c3 *. phi *. phi *. phi))
  end
  else v0 *. (1.0 -. (0.4 /. (1.0 -. s)) +. (0.4 /. (1.0 -. s) *. phi))

let smooth_deriv ~v0 ~phi_sst phi =
  check phi_sst phi;
  let s = phi_sst in
  if phi < s then begin
    let c1 = 0.4 /. (1.0 -. s) in
    let c2 = (0.6 -. (1.8 *. s)) /. ((1.0 -. s) *. s *. s) in
    let c3 = ((1.2 *. s) -. 0.4) /. ((1.0 -. s) *. s *. s *. s) in
    v0 *. (c1 +. (2.0 *. c2 *. phi) +. (3.0 *. c3 *. phi *. phi))
  end
  else v0 *. 0.4 /. (1.0 -. s)

let eval (p : Params.t) ~phi_sst phi =
  match p.volume_model with
  | Params.Linear -> linear ~v0:p.v0 ~phi_sst phi
  | Params.Smooth -> smooth ~v0:p.v0 ~phi_sst phi

let deriv (p : Params.t) ~phi_sst phi =
  match p.volume_model with
  | Params.Linear -> linear_deriv ~v0:p.v0 ~phi_sst phi
  | Params.Smooth -> smooth_deriv ~v0:p.v0 ~phi_sst phi

let beta ~phi_sst = 0.4 /. (1.0 -. phi_sst)
