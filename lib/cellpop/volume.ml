let check phi_sst phi =
  assert (phi_sst > 0.0 && phi_sst < 1.0);
  assert (phi >= 0.0 && phi <= 1.0 +. 1e-9)

(* Shorthands for the daughter-volume split; [Params] is the canonical
   definition site of the 0.4/0.6 fractions (paper eqs. 6–8). *)
let sw = Params.sw_volume_fraction
let st = Params.st_volume_fraction

(* Slope of the stalked-phase linear segment: the volume grows by the
   remaining (1 − st)·v0 over the final (1 − φ_sst) of the cycle. *)
let stalked_slope ~phi_sst = (1.0 -. st) /. (1.0 -. phi_sst)

let linear ~v0 ~phi_sst phi =
  check phi_sst phi;
  if phi < phi_sst then v0 *. (sw +. ((st -. sw) *. phi /. phi_sst))
  else v0 *. (st +. ((1.0 -. st) *. (phi -. phi_sst) /. (1.0 -. phi_sst)))

let linear_deriv ~v0 ~phi_sst phi =
  check phi_sst phi;
  if phi < phi_sst then v0 *. (st -. sw) /. phi_sst
  else v0 *. stalked_slope ~phi_sst

(* Paper eq. 11: a cubic on [0, φ_sst] pinned by v(0) = sw·v0,
   v(φ_sst) = st·v0 and rate continuity v'(0) = v'(φ_sst) = β (the
   stalked-segment slope), followed by the linear stalked segment. *)
let smooth_cubic_coeffs ~phi_sst =
  let s = phi_sst in
  let beta = stalked_slope ~phi_sst in
  (* Solve sw + β·s + c2·s² + c3·s³ = st with 2·c2·s + 3·c3·s² = 0. *)
  let delta = (st -. sw) -. (beta *. s) in
  let c2 = 3.0 *. delta /. (s *. s) in
  let c3 = -2.0 *. delta /. (s *. s *. s) in
  (beta, c2, c3)

let smooth ~v0 ~phi_sst phi =
  check phi_sst phi;
  if phi < phi_sst then begin
    let c1, c2, c3 = smooth_cubic_coeffs ~phi_sst in
    v0 *. (sw +. (c1 *. phi) +. (c2 *. phi *. phi) +. (c3 *. phi *. phi *. phi))
  end
  else v0 *. (1.0 +. (stalked_slope ~phi_sst *. (phi -. 1.0)))

let smooth_deriv ~v0 ~phi_sst phi =
  check phi_sst phi;
  if phi < phi_sst then begin
    let c1, c2, c3 = smooth_cubic_coeffs ~phi_sst in
    v0 *. (c1 +. (2.0 *. c2 *. phi) +. (3.0 *. c3 *. phi *. phi))
  end
  else v0 *. stalked_slope ~phi_sst

let eval (p : Params.t) ~phi_sst phi =
  match p.volume_model with
  | Params.Linear -> linear ~v0:p.v0 ~phi_sst phi
  | Params.Smooth -> smooth ~v0:p.v0 ~phi_sst phi

let deriv (p : Params.t) ~phi_sst phi =
  match p.volume_model with
  | Params.Linear -> linear_deriv ~v0:p.v0 ~phi_sst phi
  | Params.Smooth -> smooth_deriv ~v0:p.v0 ~phi_sst phi

let beta ~phi_sst = stalked_slope ~phi_sst
