open Numerics

type t = { phase : float; phi_sst : float; cycle_minutes : float }

let draw_phi_sst (p : Params.t) rng =
  Rng.truncated_normal rng ~mean:p.mu_sst ~std:(Params.sst_std p) ~lo:0.02 ~hi:0.98

let draw_cycle_minutes (p : Params.t) rng =
  Rng.truncated_normal rng ~mean:p.mean_cycle_minutes ~std:(Params.cycle_std p)
    ~lo:(0.2 *. p.mean_cycle_minutes)
    ~hi:(3.0 *. p.mean_cycle_minutes)

let founder (p : Params.t) rng =
  let phi_sst = draw_phi_sst p rng in
  let cycle_minutes = draw_cycle_minutes p rng in
  let phase =
    match p.initial_condition with
    | Params.Synchronized_swarmer -> Rng.uniform rng ~lo:0.0 ~hi:phi_sst
    | Params.Uniform_phase -> Rng.float rng
  in
  { phase; phi_sst; cycle_minutes }

let swarmer_daughter (p : Params.t) rng =
  { phase = 0.0; phi_sst = draw_phi_sst p rng; cycle_minutes = draw_cycle_minutes p rng }

let stalked_daughter (p : Params.t) rng =
  let phi_sst = draw_phi_sst p rng in
  { phase = phi_sst; phi_sst; cycle_minutes = draw_cycle_minutes p rng }

let rate c = 1.0 /. c.cycle_minutes

let time_to_division c = (1.0 -. c.phase) *. c.cycle_minutes

let advance c dt =
  let phase = c.phase +. (dt /. c.cycle_minutes) in
  assert (phase <= 1.0 +. 1e-9);
  { c with phase = Float.min phase 1.0 }

let volume p c = Volume.eval p ~phi_sst:c.phi_sst c.phase

let is_swarmer c = c.phase < c.phi_sst
