(** Monte-Carlo simulation of an asynchronously growing cell population.

    Cells progress through phase linearly at rate 1/T_k; on reaching φ = 1
    a cell divides into a swarmer daughter (φ = 0) and a stalked daughter
    (φ = its own φ_sst), each with freshly drawn θ_k (paper §2.1). *)

open Numerics

type snapshot = {
  time : float;  (** minutes since the start of the experiment *)
  cells : Cell.t array;
}

val simulate : Params.t -> rng:Rng.t -> n0:int -> times:Vec.t -> snapshot array
(** [simulate params ~rng ~n0 ~times] founds [n0] cells per the initial
    condition and records the population at each requested time (increasing,
    first may be 0). Division events are located exactly in time (phase
    progression is linear), so results do not depend on an integration
    step.

    Founder cells are simulated in fixed 256-founder chunks, each with its
    own [Rng.split] substream, fanned across the default {!Parallel} pool.
    The chunk schedule depends only on [n0], so the snapshots (and the
    final state of [rng]) are bit-for-bit identical at every jobs
    setting. *)

val count : snapshot -> int

val total_volume : Params.t -> snapshot -> float
(** Σ_k v_k(φ_k) — the population volume V(t) of paper eq. 1 (up to the
    factor N·∫Q̃). *)

val phases : snapshot -> Vec.t
val volumes : Params.t -> snapshot -> Vec.t

val mean_signal : Params.t -> (phi:float -> float) -> snapshot -> float
(** Volume-weighted population average of a per-cell phase profile:
    Σ v_k f(φ_k) / Σ v_k — the exact Monte-Carlo counterpart of
    G(t) = ∫Qf dφ, used to validate the discretized kernel. *)

val growth_rate : ?discard:float -> snapshot array -> float
(** Asymptotic exponential growth rate r (per minute) from a least-squares
    fit of ln N(t) over snapshots with [time >= discard] (default: the
    first half of the observation window is discarded as transient).
    Requires at least two retained snapshots with positive counts. *)

val euler_lotka_rate : Params.t -> float
(** The deterministic (zero-variance) prediction of the asymptotic growth
    rate: Caulobacter division is a two-type branching process — the
    swarmer daughter divides after a full cycle T, the stalked daughter
    after T·(1 − φ_sst) — whose Malthusian parameter r solves the
    Euler–Lotka equation

    1 = e^{−rT} + e^{−rT(1−μ_sst)}.

    The doubling time is ln 2 / r (shorter than T because stalked daughters
    skip the swarmer stage). *)
