(** Cell-volume models v_k(φ) (paper §3.1).

    Both models satisfy the division-partition values of paper eqs. 6–8:
    v(0) = 0.4·V0, v(φ_sst) = 0.6·V0, v(1) = V0 (40 % of the mother volume
    goes to the swarmer daughter, 60 % to the stalked daughter, Thanbichler
    & Shapiro 2006). The smooth model additionally satisfies the
    rate-continuity conditions of eqs. 9–10: v'(0) = v'(φ_sst) = v'(1). *)

val linear : v0:float -> phi_sst:float -> float -> float
(** Piecewise-linear model of the 2009 paper. *)

val linear_deriv : v0:float -> phi_sst:float -> float -> float

val smooth : v0:float -> phi_sst:float -> float -> float
(** Piecewise polynomial of paper eq. 11 (cubic before φ_sst, linear
    after). *)

val smooth_deriv : v0:float -> phi_sst:float -> float -> float

val eval : Params.t -> phi_sst:float -> float -> float
(** Dispatch on [Params.volume_model]. *)

val deriv : Params.t -> phi_sst:float -> float -> float

val beta : phi_sst:float -> float
(** β(φ_sst) = v'(1)/V0 = 0.4/(1 − φ_sst) (paper, below eq. 12). *)
