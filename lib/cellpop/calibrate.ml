open Numerics

type observation = {
  times : Vec.t;
  fractions : Mat.t;
}

(* Embedded digitized Judd et al. data (see Dataio.Datasets for provenance;
   duplicated here numerically to keep cellpop free of a dataio
   dependency). *)
let judd =
  {
    times = [| 75.0; 90.0; 105.0; 120.0; 135.0; 150.0 |];
    fractions =
      Mat.of_rows
        [|
          [| 0.03; 0.80; 0.15; 0.02 |];
          [| 0.03; 0.65; 0.28; 0.04 |];
          [| 0.04; 0.45; 0.40; 0.11 |];
          [| 0.06; 0.28; 0.47; 0.19 |];
          [| 0.12; 0.18; 0.42; 0.28 |];
          [| 0.22; 0.12; 0.35; 0.31 |];
        |];
  }

let objective ~base ~boundaries ~n_cells ~seed observation (candidate : Params.t) =
  let p = { base with
            Params.mu_sst = candidate.Params.mu_sst;
            mean_cycle_minutes = candidate.Params.mean_cycle_minutes;
            cv_cycle = candidate.Params.cv_cycle }
  in
  (* Common random numbers: the same seed for every candidate makes the
     Monte-Carlo objective a deterministic function of the parameters. *)
  let snapshots =
    Population.simulate p ~rng:(Rng.create seed) ~n0:n_cells ~times:observation.times
  in
  let simulated = Celltype.fractions_over_time boundaries snapshots in
  let n_t, n_c = Mat.dims observation.fractions in
  assert (Mat.dims simulated = (n_t, n_c));
  let acc = ref 0.0 in
  for i = 0 to n_t - 1 do
    for j = 0 to n_c - 1 do
      let d = Mat.get simulated i j -. Mat.get observation.fractions i j in
      acc := !acc +. (d *. d)
    done
  done;
  !acc /. float_of_int (n_t * n_c)

type fitted = {
  params : Params.t;
  objective_value : float;
  evaluations : int;
}

let fit ?(n_cells = 4000) ?(seed = 7) ?(max_iter = 200) ~base ~boundaries observation =
  let lo = [| 0.05; 60.0; 0.02 |] in
  let hi = [| 0.45; 400.0; 0.40 |] in
  let to_params x =
    { base with
      Params.mu_sst = x.(0);
      mean_cycle_minutes = x.(1);
      cv_cycle = x.(2) }
  in
  let f x = objective ~base ~boundaries ~n_cells ~seed observation (to_params x) in
  let x0 =
    [| base.Params.mu_sst; base.Params.mean_cycle_minutes; base.Params.cv_cycle |]
  in
  let options = { Optimize.Nelder_mead.default_options with max_iter } in
  let result = Optimize.Nelder_mead.minimize_bounded ~options ~initial_step:0.25 ~lo ~hi f ~x0 in
  {
    params = to_params result.Optimize.Nelder_mead.x;
    objective_value = result.Optimize.Nelder_mead.f;
    evaluations = result.Optimize.Nelder_mead.evaluations;
  }
