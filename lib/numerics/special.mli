(** Special functions used by the statistical models: error function,
    Gaussian density/CDF/quantile, log-gamma. *)

val erf : float -> float
(** Error function, absolute error below ~1e-7 (Abramowitz–Stegun 7.1.26
    refined by one Newton correction of the complement). *)

val erfc : float -> float

val normal_pdf : mean:float -> std:float -> float -> float
val normal_cdf : mean:float -> std:float -> float -> float

val normal_ppf : mean:float -> std:float -> float -> float
(** Inverse CDF (Acklam's rational approximation, refined by one Halley
    step). Input must lie strictly in (0, 1). *)

val log_gamma : float -> float
(** Lanczos approximation, valid for positive arguments. *)

val gamma_inc_lower : a:float -> float -> float
(** Regularized lower incomplete gamma P(a, x) ∈ [0, 1] (series for
    x < a+1, continued fraction otherwise). Requires [a > 0], [x >= 0]. *)

val chi2_cdf : dof:int -> float -> float
(** χ² cumulative distribution, P(X ≤ x) with [dof] degrees of freedom. *)

val chi2_sf : dof:int -> float -> float
(** χ² survival function (the lack-of-fit p-value companion). *)
