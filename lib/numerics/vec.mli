(** Dense vectors as [float array] with the numeric operations used
    throughout the library. All binary operations require equal lengths. *)

type t = float array

val make : int -> float -> t
val init : int -> (int -> float) -> t
val zeros : int -> t
val ones : int -> t
val copy : t -> t
val of_list : float list -> t
val to_list : t -> float list

val linspace : float -> float -> int -> t
(** [linspace a b n] is [n >= 2] evenly spaced points from [a] to [b]
    inclusive. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val neg : t -> t
val mul : t -> t -> t
(** Element-wise product. *)

val div : t -> t -> t
(** Element-wise quotient. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] updates [y <- a*x + y] in place. *)

val dot : t -> t -> float
val sum : t -> float
val mean : t -> float
val norm2 : t -> float
val norm_inf : t -> float
val min : t -> float
val max : t -> float
val argmin : t -> int
val argmax : t -> int

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val mapi : (int -> float -> float) -> t -> t

val clamp : lo:float -> hi:float -> t -> t
(** Element-wise clamping into [\[lo, hi\]]. *)

val concat : t list -> t

val approx_equal : ?tol:float -> t -> t -> bool
(** Infinity-norm comparison with absolute tolerance (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
