(** One-dimensional interpolation on sorted grids. *)

val bracket : Vec.t -> float -> int
(** [bracket x v] returns [i] with [x.(i) <= v < x.(i+1)] (clamped to the
    end intervals for out-of-range queries). [x] must be strictly
    increasing with at least two entries. *)

val linear : x:Vec.t -> y:Vec.t -> float -> float
(** Piecewise-linear interpolation; linear extrapolation outside the grid. *)

val linear_clamped : x:Vec.t -> y:Vec.t -> float -> float
(** Like {!linear} but holds end values outside the grid. *)

val linear_many : x:Vec.t -> y:Vec.t -> Vec.t -> Vec.t

type pchip

val pchip_build : x:Vec.t -> y:Vec.t -> pchip
(** Monotone piecewise-cubic interpolant (Fritsch–Carlson): never
    overshoots the data. *)

val pchip_eval : pchip -> float -> float
val pchip_eval_many : pchip -> Vec.t -> Vec.t
