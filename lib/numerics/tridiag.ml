let solve ~lower ~diag ~upper ~rhs =
  let n = Array.length diag in
  assert (Array.length lower = n - 1);
  assert (Array.length upper = n - 1);
  assert (Array.length rhs = n);
  let c' = Array.make (n - 1) 0.0 in
  let d' = Array.make n 0.0 in
  if Float.equal diag.(0) 0.0 then failwith "Tridiag.solve: zero pivot";
  if n > 1 then c'.(0) <- upper.(0) /. diag.(0);
  d'.(0) <- rhs.(0) /. diag.(0);
  for i = 1 to n - 1 do
    let denom = diag.(i) -. (lower.(i - 1) *. (if i - 1 < n - 1 then c'.(i - 1) else 0.0)) in
    if Float.equal denom 0.0 then failwith "Tridiag.solve: zero pivot";
    if i < n - 1 then c'.(i) <- upper.(i) /. denom;
    d'.(i) <- (rhs.(i) -. (lower.(i - 1) *. d'.(i - 1))) /. denom
  done;
  let x = Array.make n 0.0 in
  x.(n - 1) <- d'.(n - 1);
  for i = n - 2 downto 0 do
    x.(i) <- d'.(i) -. (c'.(i) *. x.(i + 1))
  done;
  x

(* Sherman-Morrison: write the cyclic matrix as T + u vᵀ with
   u = (gamma, 0, ..., 0, bottom_left)ᵀ? The standard trick: choose
   gamma = -diag.(0), u = (gamma, 0, .., beta)ᵀ, v = (1, 0, .., alpha/gamma)ᵀ
   where alpha = top-right corner, beta = bottom-left corner. *)
let solve_cyclic ~lower ~diag ~upper ~corner ~rhs =
  let n = Array.length diag in
  assert (n >= 3);
  let alpha, beta = corner in
  let gamma = -.diag.(0) in
  let diag' = Array.copy diag in
  diag'.(0) <- diag.(0) -. gamma;
  diag'.(n - 1) <- diag.(n - 1) -. (alpha *. beta /. gamma);
  let y = solve ~lower ~diag:diag' ~upper ~rhs in
  let u = Array.make n 0.0 in
  u.(0) <- gamma;
  u.(n - 1) <- beta;
  let z = solve ~lower ~diag:diag' ~upper ~rhs:u in
  let vy = y.(0) +. (alpha /. gamma *. y.(n - 1)) in
  let vz = z.(0) +. (alpha /. gamma *. z.(n - 1)) in
  let factor = vy /. (1.0 +. vz) in
  Array.init n (fun i -> y.(i) -. (factor *. z.(i)))
