type t = { rows : int; cols : int; data : float array }

let make rows cols x =
  assert (rows >= 0 && cols >= 0);
  { rows; cols; data = Array.make (rows * cols) x }

let init rows cols f =
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let zeros rows cols = make rows cols 0.0

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let diag v =
  let n = Array.length v in
  init n n (fun i j -> if i = j then v.(i) else 0.0)

let of_rows rows =
  let r = Array.length rows in
  assert (r > 0);
  let c = Array.length rows.(0) in
  Array.iter (fun row -> assert (Array.length row = c)) rows;
  init r c (fun i j -> rows.(i).(j))

let of_cols cols =
  let c = Array.length cols in
  assert (c > 0);
  let r = Array.length cols.(0) in
  Array.iter (fun col -> assert (Array.length col = r)) cols;
  init r c (fun i j -> cols.(j).(i))

let copy m = { m with data = Array.copy m.data }

let get m i j = m.data.((i * m.cols) + j)
let set m i j x = m.data.((i * m.cols) + j) <- x
let dims m = (m.rows, m.cols)

let row m i = Array.sub m.data (i * m.cols) m.cols

let col m j = Array.init m.rows (fun i -> get m i j)

let set_row m i v =
  assert (Array.length v = m.cols);
  Array.blit v 0 m.data (i * m.cols) m.cols

let set_col m j v =
  assert (Array.length v = m.rows);
  for i = 0 to m.rows - 1 do
    set m i j v.(i)
  done

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let add a b =
  assert (a.rows = b.rows && a.cols = b.cols);
  { a with data = Array.mapi (fun k x -> x +. b.data.(k)) a.data }

let sub a b =
  assert (a.rows = b.rows && a.cols = b.cols);
  { a with data = Array.mapi (fun k x -> x -. b.data.(k)) a.data }

let scale s a = { a with data = Array.map (fun x -> s *. x) a.data }

let matmul a b =
  assert (a.cols = b.rows);
  let c = zeros a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if not (Float.equal aik 0.0) then begin
        let arow = i * b.cols and brow = k * b.cols in
        for j = 0 to b.cols - 1 do
          c.data.(arow + j) <- c.data.(arow + j) +. (aik *. b.data.(brow + j))
        done
      end
    done
  done;
  c

let mv a x =
  assert (a.cols = Array.length x);
  Array.init a.rows (fun i ->
      let acc = ref 0.0 in
      let base = i * a.cols in
      for j = 0 to a.cols - 1 do
        acc := !acc +. (a.data.(base + j) *. x.(j))
      done;
      !acc)

let tmv a x =
  assert (a.rows = Array.length x);
  let y = Array.make a.cols 0.0 in
  for i = 0 to a.rows - 1 do
    let base = i * a.cols in
    let xi = x.(i) in
    if not (Float.equal xi 0.0) then
      for j = 0 to a.cols - 1 do
        y.(j) <- y.(j) +. (a.data.(base + j) *. xi)
      done
  done;
  y

let gram a =
  let g = zeros a.cols a.cols in
  for i = 0 to a.rows - 1 do
    let base = i * a.cols in
    for j = 0 to a.cols - 1 do
      let aij = a.data.(base + j) in
      if not (Float.equal aij 0.0) then
        for k = j to a.cols - 1 do
          let v = get g j k +. (aij *. a.data.(base + k)) in
          set g j k v
        done
    done
  done;
  (* Mirror the upper triangle. *)
  for j = 0 to a.cols - 1 do
    for k = 0 to j - 1 do
      set g j k (get g k j)
    done
  done;
  g

let map f a = { a with data = Array.map f a.data }

let trace m =
  assert (m.rows = m.cols);
  let acc = ref 0.0 in
  for i = 0 to m.rows - 1 do
    acc := !acc +. get m i i
  done;
  !acc

let frobenius m = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let max_abs m = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 m.data

let is_symmetric ?(tol = 1e-9) m =
  m.rows = m.cols
  && begin
       let ok = ref true in
       for i = 0 to m.rows - 1 do
         for j = i + 1 to m.cols - 1 do
           if Float.abs (get m i j -. get m j i) > tol then ok := false
         done
       done;
       !ok
     end

let hcat a b =
  assert (a.rows = b.rows);
  init a.rows (a.cols + b.cols) (fun i j ->
      if j < a.cols then get a i j else get b i (j - a.cols))

let vcat a b =
  assert (a.cols = b.cols);
  init (a.rows + b.rows) a.cols (fun i j ->
      if i < a.rows then get a i j else get b (i - a.rows) j)

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && begin
       let ok = ref true in
       Array.iteri (fun k x -> if Float.abs (x -. b.data.(k)) > tol then ok := false) a.data;
       !ok
     end

let pp fmt m =
  for i = 0 to m.rows - 1 do
    (* lint: allow R12 -- pp writes only to the caller-supplied formatter; it
       is the debug printer for test output, not a kernel *)
    Format.fprintf fmt "[";
    for j = 0 to m.cols - 1 do
      Format.fprintf fmt "%s%10.4g" (if j = 0 then "" else " ") (get m i j)
    done;
    Format.fprintf fmt "]@\n"
  done
