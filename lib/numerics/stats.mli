(** Descriptive statistics and error metrics over [float array] samples. *)

val mean : Vec.t -> float
val variance : Vec.t -> float
(** Unbiased sample variance (n-1 denominator); 0 for singleton samples. *)

val std : Vec.t -> float
val cv : Vec.t -> float
(** Coefficient of variation std/|mean|. *)

val median : Vec.t -> float
val quantile : Vec.t -> float -> float
(** Linear-interpolation quantile, [q] in \[0, 1\]. *)

val covariance : Vec.t -> Vec.t -> float
val correlation : Vec.t -> Vec.t -> float
(** Pearson correlation; 0 when either input is constant. *)

val rmse : Vec.t -> Vec.t -> float
val mae : Vec.t -> Vec.t -> float
val max_abs_error : Vec.t -> Vec.t -> float

val nrmse : Vec.t -> Vec.t -> float
(** RMSE normalized by the range of the first (reference) argument. *)

type histogram = { edges : Vec.t; counts : Vec.t }
(** [edges] has [n+1] entries for [n] bins; [counts] may be weighted. *)

val histogram : ?weights:Vec.t -> bins:int -> lo:float -> hi:float -> Vec.t -> histogram
(** Values outside [\[lo, hi)] are clamped into the end bins when within
    round-off, otherwise dropped. *)

val histogram_density : histogram -> Vec.t
(** Counts normalized so the histogram integrates to 1. *)

val runs_z : Vec.t -> float
(** Wald–Wolfowitz runs-test z-score on the sample's signs: \[|z| > 2.5\]
    flags serial structure (non-white residuals). Degenerate samples
    (single sign, n < 2) score 0. *)

val moment_z : Vec.t -> float * float
(** [(z_skewness, z_excess_kurtosis)] against the normal-null standard
    errors √(6/n) and √(24/n) — the two Jarque–Bera components, kept
    separate so the caller can see which moment misbehaves. (0, 0) for
    degenerate samples. *)

val normality_z : Vec.t -> float
(** [max |z_skew| |z_kurt|] of {!moment_z}: a one-number normality moment
    check on standardized residuals. *)
