(** Numerical quadrature over \[a, b\] and over sampled grids. *)

val trapezoid : (float -> float) -> a:float -> b:float -> n:int -> float
(** Composite trapezoid rule with [n >= 1] panels. *)

val trapezoid_sampled : x:Vec.t -> y:Vec.t -> float
(** Trapezoid rule on (possibly non-uniform) samples; [x] must be
    increasing. *)

val trapezoid_weights : Vec.t -> Vec.t
(** Quadrature weights [w] such that [dot w y] = trapezoid integral of the
    samples [y] on grid [x]. *)

val simpson : (float -> float) -> a:float -> b:float -> n:int -> float
(** Composite Simpson rule; [n] is rounded up to an even panel count. *)

val adaptive_simpson : ?tol:float -> ?max_depth:int -> (float -> float) -> a:float -> b:float -> float

val gauss_legendre_nodes : int -> Vec.t * Vec.t
(** [gauss_legendre_nodes n] returns nodes and weights on \[-1, 1\]. *)

val gauss_legendre : (float -> float) -> a:float -> b:float -> n:int -> float
(** n-point Gauss–Legendre quadrature mapped onto \[a, b\]. *)
