(** Direct dense linear algebra: factorizations, solves, least squares and
    symmetric eigendecomposition. All routines raise [Singular] when the
    input is numerically rank-deficient beyond recovery. *)

exception Singular of string

type lu
(** LU factorization with partial pivoting. *)

val lu_factor : Mat.t -> lu
(** Factor a square matrix. Raises {!Singular} on exact singularity. *)

val lu_solve : lu -> Vec.t -> Vec.t

val solve : Mat.t -> Vec.t -> Vec.t
(** [solve a b] solves the square system [a x = b] by LU. *)

val solve_many : Mat.t -> Mat.t -> Mat.t
(** [solve_many a b] solves [a X = b] column by column. *)

val inverse : Mat.t -> Mat.t
val det : Mat.t -> float

type cholesky

val cholesky_factor : Mat.t -> cholesky
(** Factor a symmetric positive-definite matrix (lower triangular).
    Raises {!Singular} if a pivot is not strictly positive. *)

val cholesky_solve : cholesky -> Vec.t -> Vec.t

val cholesky_log_det : cholesky -> float
(** log-determinant of the factored SPD matrix (2·Σ log l_ii). *)

val solve_spd : Mat.t -> Vec.t -> Vec.t
(** Solve with a symmetric positive-definite matrix via Cholesky; falls back
    to LU if the Cholesky pivots fail (semi-definite boundary cases). *)

val qr_lstsq : Mat.t -> Vec.t -> Vec.t
(** Least-squares solution of an overdetermined system [a x ~ b]
    ([rows >= cols], full column rank) via Householder QR. *)

val solve_sym_indefinite : Mat.t -> Vec.t -> Vec.t
(** Solve a symmetric (possibly indefinite, e.g. KKT) system by pivoted LU. *)

val jacobi_eigen : ?tol:float -> ?max_sweeps:int -> Mat.t -> Vec.t * Mat.t
(** [jacobi_eigen a] for symmetric [a] returns [(eigenvalues, eigenvectors)]
    with eigenvectors in columns, sorted by descending eigenvalue. *)

val lower_solve : cholesky -> Vec.t -> Vec.t
(** Forward substitution against the lower-triangular factor: solves
    [L y = b]. *)

val lower_transpose_solve : cholesky -> Vec.t -> Vec.t
(** Back substitution against the transposed factor: solves [Lᵀ x = b]. *)

val generalized_eigen_spd : Mat.t -> Mat.t -> Vec.t * Mat.t
(** [generalized_eigen_spd s omega] solves the generalized symmetric
    eigenproblem [omega b = s b Γ] for SPD [s] and symmetric PSD [omega]:
    with [s = LLᵀ] (Cholesky) it diagonalizes [K = L⁻¹ omega L⁻ᵀ] by
    {!jacobi_eigen} and returns [(gamma, b)] where the columns of
    [b = L⁻ᵀU] satisfy [bᵀ s b = I] and [bᵀ omega b = diag gamma], with
    [gamma] descending and clamped at 0 (Ω is PSD by contract). This is the
    Demmler–Reinsch construction behind the spectral λ fast path. Raises
    {!Singular} when [s] is not numerically positive definite. *)

val condition_spd : Mat.t -> float
(** Spectral condition number estimate of a symmetric PSD matrix via
    {!jacobi_eigen}. *)

val singular_values : Mat.t -> Vec.t
(** Singular values of an arbitrary matrix, descending — computed as the
    square roots of the eigenvalues of the (smaller-side) Gram matrix, so
    accuracy is limited to ~sqrt(machine epsilon) for the smallest values.
    Sufficient for rank/identifiability analysis. *)
