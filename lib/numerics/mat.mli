(** Dense row-major matrices of floats. Sized operations assert dimension
    compatibility; indices are 0-based. *)

type t = { rows : int; cols : int; data : float array }

val make : int -> int -> float -> t
val init : int -> int -> (int -> int -> float) -> t
val zeros : int -> int -> t
val identity : int -> t
val diag : Vec.t -> t
val of_rows : Vec.t array -> t
val of_cols : Vec.t array -> t
val copy : t -> t

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val dims : t -> int * int

val row : t -> int -> Vec.t
val col : t -> int -> Vec.t
val set_row : t -> int -> Vec.t -> unit
val set_col : t -> int -> Vec.t -> unit

val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val matmul : t -> t -> t
val mv : t -> Vec.t -> Vec.t
(** Matrix-vector product. *)

val tmv : t -> Vec.t -> Vec.t
(** [tmv a x] is [transpose a * x] without forming the transpose. *)

val gram : t -> t
(** [gram a] is [aᵀa]. *)

val map : (float -> float) -> t -> t
val trace : t -> float
val frobenius : t -> float
val is_symmetric : ?tol:float -> t -> bool
val max_abs : t -> float

val hcat : t -> t -> t
val vcat : t -> t -> t

val approx_equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
