(** Deterministic pseudo-random number generation.

    A small, fast, seedable generator (SplitMix64) so that every simulation
    in the library is exactly reproducible across runs and OCaml versions.
    All stochastic code in the repository threads an explicit [t]. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. Equal seeds
    produce equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]; streams of
    the parent and child are (statistically) independent. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [\[0, 1)] with 53 bits of precision. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform float in [\[lo, hi)]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val bool : t -> bool

val normal : t -> mean:float -> std:float -> float
(** Gaussian variate (Box–Muller; the spare value is cached). *)

val truncated_normal : t -> mean:float -> std:float -> lo:float -> hi:float -> float
(** Gaussian conditioned on [\[lo, hi\]], by rejection with a uniform
    fallback when the window is many standard deviations away. Requires
    [lo < hi]. *)

val exponential : t -> rate:float -> float
(** Exponential variate with given rate (> 0). *)

val poisson : t -> lambda:float -> int
(** Poisson variate (Knuth's multiplication method for small means, normal
    approximation with continuity correction above mean 64). Requires
    [lambda >= 0]. *)

val lognormal_factor : t -> cv:float -> float
(** A mean-one multiplicative noise factor: exp(N(−σ²/2, σ²)) with σ chosen
    so the factor's coefficient of variation is [cv]. Returns 1.0 when
    [cv <= 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
