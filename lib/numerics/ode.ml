type system = float -> Vec.t -> Vec.t

type solution = { times : Vec.t; states : Mat.t }

let fixed_step_solver step f ~y0 ~t0 ~t1 ~steps =
  assert (steps >= 1);
  assert (t1 > t0);
  let dim = Array.length y0 in
  let h = (t1 -. t0) /. float_of_int steps in
  let times = Array.make (steps + 1) 0.0 in
  let states = Mat.zeros (steps + 1) dim in
  let y = ref (Vec.copy y0) in
  times.(0) <- t0;
  Mat.set_row states 0 !y;
  for i = 1 to steps do
    let t = t0 +. (h *. float_of_int (i - 1)) in
    y := step f t !y h;
    times.(i) <- t0 +. (h *. float_of_int i);
    Mat.set_row states i !y
  done;
  { times; states }

let euler_step f t y h = Vec.add y (Vec.scale h (f t y))

let midpoint_step f t y h =
  let k1 = f t y in
  let k2 = f (t +. (h /. 2.0)) (Vec.add y (Vec.scale (h /. 2.0) k1)) in
  Vec.add y (Vec.scale h k2)

let rk4_step f t y h =
  let k1 = f t y in
  let k2 = f (t +. (h /. 2.0)) (Vec.add y (Vec.scale (h /. 2.0) k1)) in
  let k3 = f (t +. (h /. 2.0)) (Vec.add y (Vec.scale (h /. 2.0) k2)) in
  let k4 = f (t +. h) (Vec.add y (Vec.scale h k3)) in
  let incr =
    Vec.add (Vec.add k1 (Vec.scale 2.0 k2)) (Vec.add (Vec.scale 2.0 k3) k4)
  in
  Vec.add y (Vec.scale (h /. 6.0) incr)

let euler = fixed_step_solver euler_step
let midpoint = fixed_step_solver midpoint_step
let rk4 = fixed_step_solver rk4_step

(* Dormand–Prince coefficients. *)
let dp_c = [| 0.0; 0.2; 0.3; 0.8; 8.0 /. 9.0; 1.0; 1.0 |]

let dp_a =
  [|
    [||];
    [| 0.2 |];
    [| 3.0 /. 40.0; 9.0 /. 40.0 |];
    [| 44.0 /. 45.0; -56.0 /. 15.0; 32.0 /. 9.0 |];
    [| 19372.0 /. 6561.0; -25360.0 /. 2187.0; 64448.0 /. 6561.0; -212.0 /. 729.0 |];
    [| 9017.0 /. 3168.0; -355.0 /. 33.0; 46732.0 /. 5247.0; 49.0 /. 176.0; -5103.0 /. 18656.0 |];
    [| 35.0 /. 384.0; 0.0; 500.0 /. 1113.0; 125.0 /. 192.0; -2187.0 /. 6784.0; 11.0 /. 84.0 |];
  |]

let dp_b5 = [| 35.0 /. 384.0; 0.0; 500.0 /. 1113.0; 125.0 /. 192.0; -2187.0 /. 6784.0; 11.0 /. 84.0; 0.0 |]

let dp_b4 =
  [|
    5179.0 /. 57600.0; 0.0; 7571.0 /. 16695.0; 393.0 /. 640.0; -92097.0 /. 339200.0;
    187.0 /. 2100.0; 1.0 /. 40.0;
  |]

(* Cubic Hermite interpolation between (t0,y0,f0) and (t1,y1,f1). *)
let hermite t0 y0 f0 t1 y1 f1 t =
  let h = t1 -. t0 in
  let s = (t -. t0) /. h in
  let s2 = s *. s in
  let s3 = s2 *. s in
  let h00 = (2.0 *. s3) -. (3.0 *. s2) +. 1.0 in
  let h10 = s3 -. (2.0 *. s2) +. s in
  let h01 = (-2.0 *. s3) +. (3.0 *. s2) in
  let h11 = s3 -. s2 in
  Array.init (Array.length y0) (fun i ->
      (h00 *. y0.(i)) +. (h10 *. h *. f0.(i)) +. (h01 *. y1.(i)) +. (h11 *. h *. f1.(i)))

let rk45 ?(rtol = 1e-8) ?(atol = 1e-10) ?h0 ?h_max f ~y0 ~times =
  let n_out = Array.length times in
  assert (n_out >= 1);
  for i = 0 to n_out - 2 do
    assert (times.(i) < times.(i + 1))
  done;
  let dim = Array.length y0 in
  let t_end = times.(n_out - 1) in
  let t0 = times.(0) in
  let h_max = match h_max with Some h -> h | None -> Float.max 1e-12 ((t_end -. t0) /. 4.0) in
  let h = ref (match h0 with Some h -> h | None -> Float.min h_max ((t_end -. t0) /. 100.0)) in
  let states = Mat.zeros n_out dim in
  Mat.set_row states 0 y0;
  let t = ref t0 in
  let y = ref (Vec.copy y0) in
  let fy = ref (f t0 y0) in
  let next_out = ref 1 in
  let safety = 0.9 in
  while !next_out < n_out && !t < t_end do
    let h_try = Float.min !h (t_end -. !t) in
    (* Evaluate the seven stages. *)
    let k = Array.make 7 [||] in
    k.(0) <- !fy;
    for stage = 1 to 6 do
      let acc = Vec.copy !y in
      for j = 0 to stage - 1 do
        Vec.axpy (h_try *. dp_a.(stage).(j)) k.(j) acc
      done;
      k.(stage) <- f (!t +. (dp_c.(stage) *. h_try)) acc
    done;
    let y5 = Vec.copy !y in
    let y4 = Vec.copy !y in
    for j = 0 to 6 do
      Vec.axpy (h_try *. dp_b5.(j)) k.(j) y5;
      Vec.axpy (h_try *. dp_b4.(j)) k.(j) y4
    done;
    (* Scaled error norm. *)
    let err = ref 0.0 in
    for i = 0 to dim - 1 do
      let scale = atol +. (rtol *. Float.max (Float.abs !y.(i)) (Float.abs y5.(i))) in
      let e = (y5.(i) -. y4.(i)) /. scale in
      err := !err +. (e *. e)
    done;
    let err = sqrt (!err /. float_of_int dim) in
    if err <= 1.0 then begin
      (* Accept; FSAL: k7 is f at the new point. *)
      let t_new = !t +. h_try in
      let f_new = k.(6) in
      (* Emit any requested output times inside (t, t_new]. *)
      while
        !next_out < n_out
        && times.(!next_out) <= t_new +. 1e-12 *. Float.max 1.0 (Float.abs t_new)
      do
        let t_out = times.(!next_out) in
        let y_out =
          if Float.abs (t_out -. t_new) <= 1e-12 *. Float.max 1.0 (Float.abs t_new) then y5
          else hermite !t !y !fy t_new y5 f_new t_out
        in
        Mat.set_row states !next_out y_out;
        incr next_out
      done;
      t := t_new;
      y := y5;
      fy := f_new
    end;
    (* Step-size update (both on accept and reject). *)
    let factor =
      if Float.equal err 0.0 then 5.0 else Float.min 5.0 (Float.max 0.2 (safety *. (err ** (-0.2))))
    in
    h := Float.min h_max (h_try *. factor);
    if !h < 1e-14 *. Float.max 1.0 (Float.abs !t) then
      failwith "Ode.rk45: step size underflow (stiff system or bad tolerances?)"
  done;
  { times = Array.copy times; states }

let solve_at { times; states } t =
  let n = Array.length times in
  assert (n >= 1);
  if t <= times.(0) then Mat.row states 0
  else if t >= times.(n - 1) then Mat.row states (n - 1)
  else begin
    (* Binary search for the bracketing interval. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if times.(mid) <= t then lo := mid else hi := mid
    done;
    let t0 = times.(!lo) and t1 = times.(!hi) in
    let w = (t -. t0) /. (t1 -. t0) in
    let y0 = Mat.row states !lo and y1 = Mat.row states !hi in
    Array.init (Array.length y0) (fun i -> ((1.0 -. w) *. y0.(i)) +. (w *. y1.(i)))
  end
