let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let is_pow2 n = n > 0 && n land (n - 1) = 0

(* Iterative radix-2 Cooley-Tukey with bit-reversal permutation. *)
let transform sign input =
  let n = Array.length input in
  assert (is_pow2 n);
  let a = Array.copy input in
  (* Bit reversal. *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let t = a.(i) in
      a.(i) <- a.(!j);
      a.(!j) <- t
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  (* Butterflies. *)
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let angle = sign *. 2.0 *. Float.pi /. float_of_int !len in
    let wn = Complex.polar 1.0 angle in
    let block = ref 0 in
    while !block < n do
      let w = ref Complex.one in
      for k = 0 to half - 1 do
        let u = a.(!block + k) in
        let v = Complex.mul !w a.(!block + k + half) in
        a.(!block + k) <- Complex.add u v;
        a.(!block + k + half) <- Complex.sub u v;
        w := Complex.mul !w wn
      done;
      block := !block + !len
    done;
    len := !len * 2
  done;
  a

let fft input = transform (-1.0) input

let ifft input =
  let n = Array.length input in
  let out = transform 1.0 input in
  Array.map (fun c -> Complex.div c { Complex.re = float_of_int n; im = 0.0 }) out

let rfft signal =
  let n = next_pow2 (Array.length signal) in
  let padded =
    Array.init n (fun i ->
        if i < Array.length signal then { Complex.re = signal.(i); im = 0.0 } else Complex.zero)
  in
  fft padded

let power_spectrum signal =
  let mean = Vec.mean signal in
  let centered = Array.map (fun x -> x -. mean) signal in
  let spectrum = rfft centered in
  let n = Array.length spectrum in
  Array.init ((n / 2) + 1) (fun k -> Complex.norm2 spectrum.(k))

let dominant_period ?(dt = 1.0) signal =
  assert (Array.length signal >= 4);
  let ps = power_spectrum signal in
  (* Skip the DC bin. *)
  let best = ref 1 in
  for k = 2 to Array.length ps - 1 do
    if ps.(k) > ps.(!best) then best := k
  done;
  let n_padded = next_pow2 (Array.length signal) in
  float_of_int n_padded *. dt /. float_of_int !best

let convolve a b =
  let out_len = Array.length a + Array.length b - 1 in
  let n = next_pow2 out_len in
  let pad v =
    Array.init n (fun i ->
        if i < Array.length v then { Complex.re = v.(i); im = 0.0 } else Complex.zero)
  in
  let fa = fft (pad a) and fb = fft (pad b) in
  let product = Array.init n (fun i -> Complex.mul fa.(i) fb.(i)) in
  let inv = ifft product in
  Array.init out_len (fun i -> inv.(i).Complex.re)
