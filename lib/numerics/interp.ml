let bracket x v =
  let n = Array.length x in
  assert (n >= 2);
  if v <= x.(0) then 0
  else if v >= x.(n - 1) then n - 2
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if x.(mid) <= v then lo := mid else hi := mid
    done;
    !lo
  end

let linear ~x ~y v =
  assert (Array.length x = Array.length y);
  let i = bracket x v in
  let t = (v -. x.(i)) /. (x.(i + 1) -. x.(i)) in
  y.(i) +. (t *. (y.(i + 1) -. y.(i)))

let linear_clamped ~x ~y v =
  let n = Array.length x in
  if v <= x.(0) then y.(0) else if v >= x.(n - 1) then y.(n - 1) else linear ~x ~y v

let linear_many ~x ~y vs = Array.map (linear ~x ~y) vs

type pchip = { x : Vec.t; y : Vec.t; d : Vec.t (* endpoint derivatives per knot *) }

(* Fritsch–Carlson monotone slopes. *)
let pchip_build ~x ~y =
  let n = Array.length x in
  assert (n = Array.length y);
  assert (n >= 2);
  let h = Array.init (n - 1) (fun i -> x.(i + 1) -. x.(i)) in
  let delta = Array.init (n - 1) (fun i -> (y.(i + 1) -. y.(i)) /. h.(i)) in
  let d = Array.make n 0.0 in
  if n = 2 then begin
    d.(0) <- delta.(0);
    d.(1) <- delta.(0)
  end
  else begin
    (* Interior slopes: weighted harmonic mean when deltas share a sign. *)
    for i = 1 to n - 2 do
      if delta.(i - 1) *. delta.(i) > 0.0 then begin
        let w1 = (2.0 *. h.(i)) +. h.(i - 1) in
        let w2 = h.(i) +. (2.0 *. h.(i - 1)) in
        d.(i) <- (w1 +. w2) /. ((w1 /. delta.(i - 1)) +. (w2 /. delta.(i)))
      end
    done;
    (* One-sided endpoint formulas with monotonicity clipping. *)
    let endpoint h0 h1 d0 d1 =
      let slope = (((2.0 *. h0) +. h1) *. d0 -. (h0 *. d1)) /. (h0 +. h1) in
      if slope *. d0 <= 0.0 then 0.0
      else if d0 *. d1 < 0.0 && Float.abs slope > 3.0 *. Float.abs d0 then 3.0 *. d0
      else slope
    in
    d.(0) <- endpoint h.(0) h.(1) delta.(0) delta.(1);
    d.(n - 1) <- endpoint h.(n - 2) h.(n - 3) delta.(n - 2) delta.(n - 3)
  end;
  { x; y; d }

let pchip_eval { x; y; d } v =
  let n = Array.length x in
  if v <= x.(0) then y.(0)
  else if v >= x.(n - 1) then y.(n - 1)
  else begin
    let i = bracket x v in
    let h = x.(i + 1) -. x.(i) in
    let s = (v -. x.(i)) /. h in
    let s2 = s *. s in
    let s3 = s2 *. s in
    let h00 = (2.0 *. s3) -. (3.0 *. s2) +. 1.0 in
    let h10 = s3 -. (2.0 *. s2) +. s in
    let h01 = (-2.0 *. s3) +. (3.0 *. s2) in
    let h11 = s3 -. s2 in
    (h00 *. y.(i)) +. (h10 *. h *. d.(i)) +. (h01 *. y.(i + 1)) +. (h11 *. h *. d.(i + 1))
  end

let pchip_eval_many p vs = Array.map (pchip_eval p) vs
