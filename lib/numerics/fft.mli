(** Radix-2 fast Fourier transform and derived spectral tools (used for
    period detection in oscillatory expression profiles). *)

val fft : Complex.t array -> Complex.t array
(** In-order forward DFT. Length must be a power of two. *)

val ifft : Complex.t array -> Complex.t array
(** Inverse DFT, normalized by 1/n. *)

val rfft : Vec.t -> Complex.t array
(** Forward DFT of a real signal (zero-padded to the next power of two). *)

val power_spectrum : Vec.t -> Vec.t
(** One-sided periodogram |X_k|² of a mean-removed, zero-padded real
    signal; entry k corresponds to frequency k/(n·dt) for the padded
    length n. *)

val dominant_period : ?dt:float -> Vec.t -> float
(** Period (in units of [dt], default 1.0 per sample) of the strongest
    nonzero-frequency component of the signal. *)

val convolve : Vec.t -> Vec.t -> Vec.t
(** Linear convolution of two real signals via FFT; output length
    [length a + length b - 1]. *)

val next_pow2 : int -> int
