let mean = Vec.mean

let variance x =
  let n = Array.length x in
  assert (n > 0);
  if n = 1 then 0.0
  else begin
    let m = mean x in
    let acc = ref 0.0 in
    Array.iter (fun xi -> acc := !acc +. ((xi -. m) *. (xi -. m))) x;
    !acc /. float_of_int (n - 1)
  end

let std x = sqrt (variance x)

let cv x =
  let m = mean x in
  if Float.equal m 0.0 then Float.infinity else std x /. Float.abs m

let quantile x q =
  assert (Array.length x > 0);
  assert (q >= 0.0 && q <= 1.0);
  let sorted = Array.copy x in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let w = pos -. float_of_int lo in
  ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))

let median x = quantile x 0.5

let covariance x y =
  assert (Array.length x = Array.length y);
  let n = Array.length x in
  assert (n > 1);
  let mx = mean x and my = mean y in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. ((x.(i) -. mx) *. (y.(i) -. my))
  done;
  !acc /. float_of_int (n - 1)

let correlation x y =
  let sx = std x and sy = std y in
  if Float.equal sx 0.0 || Float.equal sy 0.0 then 0.0 else covariance x y /. (sx *. sy)

let rmse x y =
  assert (Array.length x = Array.length y);
  let n = Array.length x in
  assert (n > 0);
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let d = x.(i) -. y.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int n)

let mae x y =
  assert (Array.length x = Array.length y);
  let n = Array.length x in
  assert (n > 0);
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. Float.abs (x.(i) -. y.(i))
  done;
  !acc /. float_of_int n

let max_abs_error x y =
  assert (Array.length x = Array.length y);
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := Float.max !acc (Float.abs (x.(i) -. y.(i)))
  done;
  !acc

let nrmse x y =
  let range = Vec.max x -. Vec.min x in
  if Float.equal range 0.0 then Float.infinity else rmse x y /. range

type histogram = { edges : Vec.t; counts : Vec.t }

let histogram ?weights ~bins ~lo ~hi x =
  assert (bins > 0);
  assert (hi > lo);
  let weights =
    match weights with
    | Some w ->
      assert (Array.length w = Array.length x);
      w
    | None -> Array.make (Array.length x) 1.0
  in
  let edges = Vec.linspace lo hi (bins + 1) in
  let counts = Array.make bins 0.0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iteri
    (fun i xi ->
      let bin = int_of_float (Float.floor ((xi -. lo) /. width)) in
      let bin = if xi >= hi && xi <= hi +. 1e-12 then bins - 1 else bin in
      if bin >= 0 && bin < bins then counts.(bin) <- counts.(bin) +. weights.(i))
    x;
  { edges; counts }

let histogram_density { edges; counts } =
  let total = Vec.sum counts in
  if Float.equal total 0.0 then Array.map (fun _ -> 0.0) counts
  else
    Array.mapi
      (fun i c ->
        let width = edges.(i + 1) -. edges.(i) in
        c /. (total *. width))
      counts
