let mean = Vec.mean

let variance x =
  let n = Array.length x in
  assert (n > 0);
  if n = 1 then 0.0
  else begin
    let m = mean x in
    let acc = ref 0.0 in
    Array.iter (fun xi -> acc := !acc +. ((xi -. m) *. (xi -. m))) x;
    !acc /. float_of_int (n - 1)
  end

let std x = sqrt (variance x)

let cv x =
  let m = mean x in
  if Float.equal m 0.0 then Float.infinity else std x /. Float.abs m

let quantile x q =
  assert (Array.length x > 0);
  assert (q >= 0.0 && q <= 1.0);
  let sorted = Array.copy x in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let w = pos -. float_of_int lo in
  ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))

let median x = quantile x 0.5

let covariance x y =
  assert (Array.length x = Array.length y);
  let n = Array.length x in
  assert (n > 1);
  let mx = mean x and my = mean y in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. ((x.(i) -. mx) *. (y.(i) -. my))
  done;
  !acc /. float_of_int (n - 1)

let correlation x y =
  let sx = std x and sy = std y in
  if Float.equal sx 0.0 || Float.equal sy 0.0 then 0.0 else covariance x y /. (sx *. sy)

let rmse x y =
  assert (Array.length x = Array.length y);
  let n = Array.length x in
  assert (n > 0);
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let d = x.(i) -. y.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int n)

let mae x y =
  assert (Array.length x = Array.length y);
  let n = Array.length x in
  assert (n > 0);
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. Float.abs (x.(i) -. y.(i))
  done;
  !acc /. float_of_int n

let max_abs_error x y =
  assert (Array.length x = Array.length y);
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := Float.max !acc (Float.abs (x.(i) -. y.(i)))
  done;
  !acc

let nrmse x y =
  let range = Vec.max x -. Vec.min x in
  if Float.equal range 0.0 then Float.infinity else rmse x y /. range

type histogram = { edges : Vec.t; counts : Vec.t }

let histogram ?weights ~bins ~lo ~hi x =
  assert (bins > 0);
  assert (hi > lo);
  let weights =
    match weights with
    | Some w ->
      assert (Array.length w = Array.length x);
      w
    | None -> Array.make (Array.length x) 1.0
  in
  let edges = Vec.linspace lo hi (bins + 1) in
  let counts = Array.make bins 0.0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iteri
    (fun i xi ->
      let bin = int_of_float (Float.floor ((xi -. lo) /. width)) in
      let bin = if xi >= hi && xi <= hi +. 1e-12 then bins - 1 else bin in
      if bin >= 0 && bin < bins then counts.(bin) <- counts.(bin) +. weights.(i))
    x;
  { edges; counts }

let histogram_density { edges; counts } =
  let total = Vec.sum counts in
  if Float.equal total 0.0 then Array.map (fun _ -> 0.0) counts
  else
    Array.mapi
      (fun i c ->
        let width = edges.(i + 1) -. edges.(i) in
        c /. (total *. width))
      counts

(* ---------------- residual-whiteness statistics ---------------- *)

(* Wald-Wolfowitz runs test on the signs of a sequence. Under the null
   (signs are exchangeable — residuals carry no serial structure) the
   number of sign runs is asymptotically normal; the returned z-score is
   (observed - expected) / sd. Degenerate sequences (all one sign, or
   fewer than two elements) score 0: no evidence either way. *)
let runs_z x =
  let n = Array.length x in
  let positives = Array.fold_left (fun acc r -> if r >= 0.0 then acc + 1 else acc) 0 x in
  let negatives = n - positives in
  if positives = 0 || negatives = 0 then 0.0
  else begin
    let runs = ref 1 in
    for i = 1 to n - 1 do
      if not (Bool.equal (x.(i) >= 0.0) (x.(i - 1) >= 0.0)) then incr runs
    done;
    let np = float_of_int positives and nn = float_of_int negatives in
    let total = np +. nn in
    let expected = (2.0 *. np *. nn /. total) +. 1.0 in
    let variance =
      2.0 *. np *. nn *. ((2.0 *. np *. nn) -. total) /. (total *. total *. (total -. 1.0))
    in
    if variance <= 0.0 then 0.0 else (float_of_int !runs -. expected) /. sqrt variance
  end

(* Moment-based normality check: z-scores of sample skewness and excess
   kurtosis against their null standard errors sqrt(6/n) and sqrt(24/n)
   (the two components of the Jarque-Bera statistic, kept separate so the
   caller can see WHICH moment misbehaves). *)
let moment_z x =
  let n = Array.length x in
  if n < 3 then (0.0, 0.0)
  else begin
    let nf = float_of_int n in
    let mu = mean x in
    let central k = Array.fold_left (fun acc xi -> acc +. ((xi -. mu) ** k)) 0.0 x /. nf in
    let m2 = central 2.0 in
    if m2 <= 0.0 then (0.0, 0.0)
    else begin
      let skew = central 3.0 /. (m2 ** 1.5) in
      let kurt = (central 4.0 /. (m2 *. m2)) -. 3.0 in
      (skew /. sqrt (6.0 /. nf), kurt /. sqrt (24.0 /. nf))
    end
  end

let normality_z x =
  let zs, zk = moment_z x in
  Float.max (Float.abs zs) (Float.abs zk)
