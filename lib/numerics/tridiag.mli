(** Tridiagonal linear systems (Thomas algorithm), the workhorse of natural
    cubic-spline interpolation. *)

val solve : lower:Vec.t -> diag:Vec.t -> upper:Vec.t -> rhs:Vec.t -> Vec.t
(** Solve a tridiagonal system of size n: [lower] has n-1 entries (row i,
    column i-1), [diag] has n, [upper] has n-1 (row i, column i+1). The
    system must not require pivoting (true for the diagonally dominant
    spline systems). Raises [Failure] on a zero pivot. *)

val solve_cyclic : lower:Vec.t -> diag:Vec.t -> upper:Vec.t -> corner:float * float -> rhs:Vec.t -> Vec.t
(** Cyclic tridiagonal system with additional corner entries
    [(top_right, bottom_left)] — used for periodic splines — via the
    Sherman–Morrison formula. Size must be at least 3. *)
