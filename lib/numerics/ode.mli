(** Initial-value problem integrators for systems [y' = f(t, y)]. *)

type system = float -> Vec.t -> Vec.t
(** Right-hand side: [f t y] returns dy/dt. *)

type solution = { times : Vec.t; states : Mat.t }
(** Row [i] of [states] is the state at [times.(i)]. *)

val euler : system -> y0:Vec.t -> t0:float -> t1:float -> steps:int -> solution
val midpoint : system -> y0:Vec.t -> t0:float -> t1:float -> steps:int -> solution
val rk4 : system -> y0:Vec.t -> t0:float -> t1:float -> steps:int -> solution

val rk45 :
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?h_max:float ->
  system ->
  y0:Vec.t ->
  times:Vec.t ->
  solution
(** Adaptive Dormand–Prince 5(4) integration, sampled at the (increasing)
    requested [times] by cubic Hermite interpolation between accepted steps.
    [times] must contain at least the initial time as first element. *)

val solve_at : solution -> float -> Vec.t
(** Linear interpolation of a solution at an arbitrary time within range. *)
