let trapezoid f ~a ~b ~n =
  assert (n >= 1);
  let h = (b -. a) /. float_of_int n in
  let acc = ref ((f a +. f b) /. 2.0) in
  for i = 1 to n - 1 do
    acc := !acc +. f (a +. (h *. float_of_int i))
  done;
  !acc *. h

let trapezoid_sampled ~x ~y =
  assert (Array.length x = Array.length y);
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 2 do
    acc := !acc +. ((x.(i + 1) -. x.(i)) *. (y.(i) +. y.(i + 1)) /. 2.0)
  done;
  !acc

let trapezoid_weights x =
  let n = Array.length x in
  assert (n >= 2);
  Array.init n (fun i ->
      let left = if i = 0 then 0.0 else (x.(i) -. x.(i - 1)) /. 2.0 in
      let right = if i = n - 1 then 0.0 else (x.(i + 1) -. x.(i)) /. 2.0 in
      left +. right)

let simpson f ~a ~b ~n =
  let n = if n mod 2 = 0 then n else n + 1 in
  let n = Stdlib.max n 2 in
  let h = (b -. a) /. float_of_int n in
  let acc = ref (f a +. f b) in
  for i = 1 to n - 1 do
    let coeff = if i mod 2 = 1 then 4.0 else 2.0 in
    acc := !acc +. (coeff *. f (a +. (h *. float_of_int i)))
  done;
  !acc *. h /. 3.0

let adaptive_simpson ?(tol = 1e-10) ?(max_depth = 32) f ~a ~b =
  let simpson_on a b fa fm fb = (b -. a) /. 6.0 *. (fa +. (4.0 *. fm) +. fb) in
  let rec go a b fa fm fb whole tol depth =
    let m = (a +. b) /. 2.0 in
    let lm = (a +. m) /. 2.0 and rm = (m +. b) /. 2.0 in
    let flm = f lm and frm = f rm in
    let left = simpson_on a m fa flm fm in
    let right = simpson_on m b fm frm fb in
    let delta = left +. right -. whole in
    if depth <= 0 || Float.abs delta <= 15.0 *. tol then left +. right +. (delta /. 15.0)
    else
      go a m fa flm fm left (tol /. 2.0) (depth - 1)
      +. go m b fm frm fb right (tol /. 2.0) (depth - 1)
  in
  let fa = f a and fb = f b and fm = f ((a +. b) /. 2.0) in
  go a b fa fm fb (simpson_on a b fa fm fb) tol max_depth

(* Nodes are roots of the Legendre polynomial P_n, found by Newton iteration
   from the Chebyshev initial guess; weights w_i = 2 / ((1-x²) P'_n(x)²). *)
let gauss_legendre_nodes n =
  assert (n >= 1);
  let nodes = Array.make n 0.0 and weights = Array.make n 0.0 in
  let m = (n + 1) / 2 in
  for i = 0 to m - 1 do
    let x = ref (cos (Float.pi *. (float_of_int i +. 0.75) /. (float_of_int n +. 0.5))) in
    let p_deriv = ref 0.0 in
    let continue = ref true in
    let iter = ref 0 in
    while !continue && !iter < 100 do
      incr iter;
      (* Evaluate P_n and P_{n-1} by recurrence. *)
      let p0 = ref 1.0 and p1 = ref 0.0 in
      for j = 0 to n - 1 do
        let p2 = !p1 in
        p1 := !p0;
        let jf = float_of_int j in
        p0 := ((((2.0 *. jf) +. 1.0) *. !x *. !p1) -. (jf *. p2)) /. (jf +. 1.0)
      done;
      let pp = float_of_int n *. ((!x *. !p0) -. !p1) /. ((!x *. !x) -. 1.0) in
      p_deriv := pp;
      let dx = !p0 /. pp in
      x := !x -. dx;
      if Float.abs dx < 1e-15 then continue := false
    done;
    nodes.(i) <- -. !x;
    nodes.(n - 1 - i) <- !x;
    let w = 2.0 /. ((1.0 -. (!x *. !x)) *. !p_deriv *. !p_deriv) in
    weights.(i) <- w;
    weights.(n - 1 - i) <- w
  done;
  (nodes, weights)

let gauss_legendre f ~a ~b ~n =
  let nodes, weights = gauss_legendre_nodes n in
  let half = (b -. a) /. 2.0 and mid = (a +. b) /. 2.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) *. f (mid +. (half *. nodes.(i))))
  done;
  !acc *. half
