type t = { mutable state : int64; mutable spare : float option }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed; spare = None }

let copy t = { state = t.state; spare = t.spare }

let int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = int64 t in
  { state = s; spare = None }

(* 53 random bits scaled into [0,1). *)
let float t =
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let int t n =
  assert (n > 0);
  (* Rejection to avoid modulo bias. *)
  let bound = Int64.of_int n in
  let rec go () =
    let r = Int64.shift_right_logical (int64 t) 1 in
    let v = Int64.rem r bound in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int bound) 1L then go ()
    else Int64.to_int v
  in
  go ()

let bool t = Int64.logand (int64 t) 1L = 1L

let normal t ~mean ~std =
  match t.spare with
  | Some z ->
    t.spare <- None;
    mean +. (std *. z)
  | None ->
    (* Box–Muller; u1 must be strictly positive. *)
    let rec positive () =
      let u = float t in
      if u > 0.0 then u else positive ()
    in
    let u1 = positive () and u2 = float t in
    let r = sqrt (-2.0 *. log u1) in
    let theta = 2.0 *. Float.pi *. u2 in
    t.spare <- Some (r *. sin theta);
    mean +. (std *. r *. cos theta)

let truncated_normal t ~mean ~std ~lo ~hi =
  assert (lo < hi);
  if std <= 0.0 then Float.max lo (Float.min hi mean)
  else begin
    (* Plain rejection is fine when the window has decent mass; otherwise
       fall back to inverse-free uniform rejection against the density. *)
    let rec reject n =
      if n = 0 then
        (* Window far in the tail: sample uniformly, accept against the
           (normalized-free) Gaussian density ratio. *)
        let rec unif () =
          let x = uniform t ~lo ~hi in
          let edge = if mean < lo then lo else if mean > hi then hi else mean in
          let logp = -.((x -. mean) ** 2.0) /. (2.0 *. std *. std) in
          let logq = -.((edge -. mean) ** 2.0) /. (2.0 *. std *. std) in
          if log (Float.max 1e-300 (float t)) <= logp -. logq then x else unif ()
        in
        unif ()
      else
        let x = normal t ~mean ~std in
        if x >= lo && x <= hi then x else reject (n - 1)
    in
    reject 64
  end

let exponential t ~rate =
  assert (rate > 0.0);
  let rec positive () =
    let u = float t in
    if u > 0.0 then u else positive ()
  in
  -.log (positive ()) /. rate

let lognormal_factor t ~cv =
  if cv <= 0.0 then 1.0
  else begin
    let sigma = sqrt (log (1.0 +. (cv *. cv))) in
    exp (normal t ~mean:(-.(sigma *. sigma) /. 2.0) ~std:sigma)
  end

let poisson t ~lambda =
  assert (lambda >= 0.0);
  if Float.equal lambda 0.0 then 0
  else if lambda < 64.0 then begin
    (* Knuth: count uniform draws until the product falls below e^-lambda. *)
    let limit = exp (-.lambda) in
    let rec go k product =
      let product = product *. float t in
      if product <= limit then k else go (k + 1) product
    in
    go 0 1.0
  end
  else begin
    (* Normal approximation with continuity correction. *)
    let x = normal t ~mean:lambda ~std:(sqrt lambda) in
    Stdlib.max 0 (int_of_float (Float.round x))
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
