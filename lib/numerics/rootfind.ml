exception No_bracket

let bisect ?(tol = 1e-12) ?(max_iter = 200) f ~a ~b =
  let fa = f a and fb = f b in
  if Float.equal fa 0.0 then a
  else if Float.equal fb 0.0 then b
  else if fa *. fb > 0.0 then raise No_bracket
  else begin
    let a = ref a and b = ref b and fa = ref fa in
    let result = ref ((!a +. !b) /. 2.0) in
    (try
       for _ = 1 to max_iter do
         let mid = (!a +. !b) /. 2.0 in
         result := mid;
         let fm = f mid in
         if Float.equal fm 0.0 || (!b -. !a) /. 2.0 < tol then raise Exit;
         if !fa *. fm < 0.0 then b := mid
         else begin
           a := mid;
           fa := fm
         end
       done
     with Exit -> ());
    !result
  end

let brent ?(tol = 1e-12) ?(max_iter = 200) f ~a ~b =
  let fa = f a and fb = f b in
  if Float.equal fa 0.0 then a
  else if Float.equal fb 0.0 then b
  else if fa *. fb > 0.0 then raise No_bracket
  else begin
    let a = ref a and b = ref b and fa = ref fa and fb = ref fb in
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in
      a := !b;
      b := t;
      let t = !fa in
      fa := !fb;
      fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) in
    let mflag = ref true in
    let iter = ref 0 in
    while Float.abs !fb > 0.0 && Float.abs (!b -. !a) > tol && !iter < max_iter do
      incr iter;
      let s =
        if !fa <> !fc && !fb <> !fc then
          (* Inverse quadratic interpolation. *)
          (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
          +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
          +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
        else (* Secant. *)
          !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
      in
      let lo = ((3.0 *. !a) +. !b) /. 4.0 in
      let between = (s >= Float.min lo !b && s <= Float.max lo !b) in
      let use_bisection =
        (not between)
        || (!mflag && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.0)
        || ((not !mflag) && Float.abs (s -. !b) >= Float.abs (!c -. !d) /. 2.0)
        || (!mflag && Float.abs (!b -. !c) < tol)
        || ((not !mflag) && Float.abs (!c -. !d) < tol)
      in
      let s = if use_bisection then (!a +. !b) /. 2.0 else s in
      mflag := use_bisection;
      let fs = f s in
      d := !c;
      c := !b;
      fc := !fb;
      if !fa *. fs < 0.0 then begin
        b := s;
        fb := fs
      end
      else begin
        a := s;
        fa := fs
      end;
      if Float.abs !fa < Float.abs !fb then begin
        let t = !a in
        a := !b;
        b := t;
        let t = !fa in
        fa := !fb;
        fb := t
      end
    done;
    !b
  end

let find_bracket f ~x0 ~step ~max_expand =
  let rec go k step =
    if k > max_expand then None
    else begin
      let a = x0 -. step and b = x0 +. step in
      if f a *. f b <= 0.0 then Some (a, b) else go (k + 1) (step *. 2.0)
    end
  in
  go 0 step
