exception Singular of string

type lu = { lu : Mat.t; pivots : int array; sign : float }

let lu_factor a =
  let n, m = Mat.dims a in
  assert (n = m);
  let lu = Mat.copy a in
  let pivots = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* Partial pivoting: largest magnitude in column k at/below the diagonal. *)
    let pivot_row = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Mat.get lu i k) > Float.abs (Mat.get lu !pivot_row k) then pivot_row := i
    done;
    if !pivot_row <> k then begin
      let tmp = Mat.row lu k in
      Mat.set_row lu k (Mat.row lu !pivot_row);
      Mat.set_row lu !pivot_row tmp;
      let tp = pivots.(k) in
      pivots.(k) <- pivots.(!pivot_row);
      pivots.(!pivot_row) <- tp;
      sign := -. !sign
    end;
    let pivot = Mat.get lu k k in
    if Float.equal pivot 0.0 then raise (Singular "lu_factor: zero pivot");
    for i = k + 1 to n - 1 do
      let factor = Mat.get lu i k /. pivot in
      Mat.set lu i k factor;
      if not (Float.equal factor 0.0) then
        for j = k + 1 to n - 1 do
          Mat.set lu i j (Mat.get lu i j -. (factor *. Mat.get lu k j))
        done
    done
  done;
  { lu; pivots; sign = !sign }

let lu_solve { lu; pivots; _ } b =
  let n = lu.Mat.rows in
  assert (Array.length b = n);
  let x = Array.init n (fun i -> b.(pivots.(i))) in
  (* Forward substitution with unit lower triangle. *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.get lu i j *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* Back substitution. *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get lu i j *. x.(j))
    done;
    x.(i) <- !acc /. Mat.get lu i i
  done;
  x

let solve a b = lu_solve (lu_factor a) b

let solve_many a b =
  let f = lu_factor a in
  let n, m = Mat.dims b in
  assert (n = a.Mat.rows);
  let x = Mat.zeros n m in
  for j = 0 to m - 1 do
    Mat.set_col x j (lu_solve f (Mat.col b j))
  done;
  x

let inverse a = solve_many a (Mat.identity a.Mat.rows)

let det a =
  match lu_factor a with
  | { lu; sign; _ } ->
    let acc = ref sign in
    for i = 0 to lu.Mat.rows - 1 do
      acc := !acc *. Mat.get lu i i
    done;
    !acc
  | exception Singular _ -> 0.0

type cholesky = Mat.t

let cholesky_factor a =
  let n, m = Mat.dims a in
  assert (n = m);
  let l = Mat.zeros n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (Mat.get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (Mat.get l i k *. Mat.get l j k)
      done;
      if i = j then begin
        if !acc <= 0.0 then raise (Singular "cholesky_factor: non-positive pivot");
        Mat.set l i i (sqrt !acc)
      end
      else Mat.set l i j (!acc /. Mat.get l j j)
    done
  done;
  l

let cholesky_solve l b =
  let n = l.Mat.rows in
  assert (Array.length b = n);
  let y = Array.copy b in
  for i = 0 to n - 1 do
    let acc = ref y.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.get l i j *. y.(j))
    done;
    y.(i) <- !acc /. Mat.get l i i
  done;
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get l j i *. y.(j))
    done;
    y.(i) <- !acc /. Mat.get l i i
  done;
  y

let cholesky_log_det (l : cholesky) =
  let acc = ref 0.0 in
  for i = 0 to l.Mat.rows - 1 do
    acc := !acc +. (2.0 *. log (Mat.get l i i))
  done;
  !acc

let solve_spd a b =
  match cholesky_factor a with
  | l -> cholesky_solve l b
  | exception Singular _ -> solve a b

let qr_lstsq a b =
  let m, n = Mat.dims a in
  assert (m >= n);
  assert (Array.length b = m);
  let r = Mat.copy a in
  let qtb = Array.copy b in
  (* Householder QR applied in place; Q is applied to b on the fly. *)
  for k = 0 to n - 1 do
    let norm = ref 0.0 in
    for i = k to m - 1 do
      let v = Mat.get r i k in
      norm := !norm +. (v *. v)
    done;
    let norm = sqrt !norm in
    if Float.equal norm 0.0 then raise (Singular "qr_lstsq: rank-deficient column");
    let alpha = if Mat.get r k k > 0.0 then -.norm else norm in
    (* Householder vector v stored implicitly: v_k = r_kk - alpha, v_i = r_ik. *)
    let vk = Mat.get r k k -. alpha in
    let beta = -1.0 /. (alpha *. vk) in
    (* Apply H = I - beta v vᵀ to remaining columns of r. *)
    for j = k + 1 to n - 1 do
      let s = ref (vk *. Mat.get r k j) in
      for i = k + 1 to m - 1 do
        s := !s +. (Mat.get r i k *. Mat.get r i j)
      done;
      let s = beta *. !s in
      Mat.set r k j (Mat.get r k j -. (s *. vk));
      for i = k + 1 to m - 1 do
        Mat.set r i j (Mat.get r i j -. (s *. Mat.get r i k))
      done
    done;
    (* Apply H to b. *)
    let s = ref (vk *. qtb.(k)) in
    for i = k + 1 to m - 1 do
      s := !s +. (Mat.get r i k *. qtb.(i))
    done;
    let s = beta *. !s in
    qtb.(k) <- qtb.(k) -. (s *. vk);
    for i = k + 1 to m - 1 do
      qtb.(i) <- qtb.(i) -. (s *. Mat.get r i k)
    done;
    Mat.set r k k alpha
  done;
  (* Back substitution on the n x n upper triangle. *)
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let acc = ref qtb.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get r i j *. x.(j))
    done;
    let rii = Mat.get r i i in
    if Float.equal rii 0.0 then raise (Singular "qr_lstsq: zero diagonal in R");
    x.(i) <- !acc /. rii
  done;
  x

(* Forward substitution L y = b against a lower-triangular factor. The
   inner loops index the backing array directly: these solves run 2n+n
   times per spectral factorization, where cross-module Mat.get's boxed
   float returns were a measurable share of the cost. *)
let lower_solve (l : cholesky) b =
  let n = l.Mat.rows in
  assert (Array.length b = n);
  let ld = l.Mat.data in
  let y = Array.copy b in
  for i = 0 to n - 1 do
    let acc = ref y.(i) in
    let irow = i * n in
    for j = 0 to i - 1 do
      acc := !acc -. (ld.(irow + j) *. y.(j))
    done;
    y.(i) <- !acc /. ld.(irow + i)
  done;
  y

(* Back substitution Lᵀ x = b against the same lower-triangular factor. *)
let lower_transpose_solve (l : cholesky) b =
  let n = l.Mat.rows in
  assert (Array.length b = n);
  let ld = l.Mat.data in
  let x = Array.copy b in
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (ld.((j * n) + i) *. x.(j))
    done;
    x.(i) <- !acc /. ld.((i * n) + i)
  done;
  x

let solve_sym_indefinite a b = solve a b

let jacobi_eigen ?(tol = 1e-12) ?(max_sweeps = 64) a =
  let n, m = Mat.dims a in
  assert (n = m);
  let d = Mat.copy a in
  let v = Mat.identity n in
  (* The rotation loops index the backing arrays directly: at the small
     sizes this eigensolver runs on (spline bases, n ~ 12-20), the
     cross-module Mat.get/set calls — each returning a boxed float —
     cost an order of magnitude more than the arithmetic itself. Same
     operations in the same order, so results are bit-identical. *)
  let dd = d.Mat.data and vd = v.Mat.data in
  let off_diagonal_norm () =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let x = dd.((i * n) + j) in
        acc := !acc +. (2.0 *. x *. x)
      done
    done;
    sqrt !acc
  in
  let scale = Float.max 1e-300 (Mat.frobenius a) in
  let sweep = ref 0 in
  while off_diagonal_norm () > tol *. scale && !sweep < max_sweeps do
    incr sweep;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = dd.((p * n) + q) in
        if Float.abs apq > 1e-300 then begin
          let app = dd.((p * n) + p) and aqq = dd.((q * n) + q) in
          let theta = (aqq -. app) /. (2.0 *. apq) in
          let t =
            let s = if theta >= 0.0 then 1.0 else -1.0 in
            s /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
          in
          let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
          let s = t *. c in
          (* Rotate rows/columns p and q. *)
          for k = 0 to n - 1 do
            let kp = (k * n) + p and kq = (k * n) + q in
            let dkp = dd.(kp) and dkq = dd.(kq) in
            dd.(kp) <- (c *. dkp) -. (s *. dkq);
            dd.(kq) <- (s *. dkp) +. (c *. dkq)
          done;
          let prow = p * n and qrow = q * n in
          for k = 0 to n - 1 do
            let dpk = dd.(prow + k) and dqk = dd.(qrow + k) in
            dd.(prow + k) <- (c *. dpk) -. (s *. dqk);
            dd.(qrow + k) <- (s *. dpk) +. (c *. dqk)
          done;
          for k = 0 to n - 1 do
            let kp = (k * n) + p and kq = (k * n) + q in
            let vkp = vd.(kp) and vkq = vd.(kq) in
            vd.(kp) <- (c *. vkp) -. (s *. vkq);
            vd.(kq) <- (s *. vkp) +. (c *. vkq)
          done
        end
      done
    done
  done;
  let eigenvalues = Array.init n (fun i -> Mat.get d i i) in
  (* Sort descending, permuting eigenvector columns accordingly. *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare eigenvalues.(j) eigenvalues.(i)) order;
  let sorted_values = Array.map (fun i -> eigenvalues.(i)) order in
  let sorted_vectors = Mat.init n n (fun i j -> Mat.get v i order.(j)) in
  (sorted_values, sorted_vectors)

let generalized_eigen_spd s omega =
  let n, m = Mat.dims s in
  assert (n = m);
  assert (Mat.dims omega = (n, n));
  let l = cholesky_factor s in
  (* K = L⁻¹ Ω L⁻ᵀ, built in two triangular sweeps: M = L⁻¹Ω column by
     column, then row j of K = L⁻¹ (row j of M) since Kᵀ = L⁻¹Mᵀ. *)
  let mid = Mat.zeros n n in
  for j = 0 to n - 1 do
    Mat.set_col mid j (lower_solve l (Mat.col omega j))
  done;
  let k = Mat.zeros n n in
  for i = 0 to n - 1 do
    Mat.set_row k i (lower_solve l (Mat.row mid i))
  done;
  (* Symmetrize: the two sweeps agree only up to rounding, and the Jacobi
     rotations assume exact symmetry. *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let v = 0.5 *. (Mat.get k i j +. Mat.get k j i) in
      Mat.set k i j v;
      Mat.set k j i v
    done
  done;
  let values, u = jacobi_eigen k in
  (* Ω is PSD by contract; clamp the rounding-level negatives so downstream
     spectral weights 1/(1+λγ) stay monotone in λ. *)
  let gamma = Array.map (fun v -> Float.max 0.0 v) values in
  let b = Mat.zeros n n in
  for j = 0 to n - 1 do
    Mat.set_col b j (lower_transpose_solve l (Mat.col u j))
  done;
  (gamma, b)

let singular_values a =
  let m, n = Mat.dims a in
  let gram = if m >= n then Mat.gram a else Mat.gram (Mat.transpose a) in
  let values, _ = jacobi_eigen gram in
  Array.map (fun v -> sqrt (Float.max 0.0 v)) values

let condition_spd a =
  let values, _ = jacobi_eigen a in
  let n = Array.length values in
  if n = 0 then 1.0
  else begin
    let vmax = values.(0) and vmin = values.(n - 1) in
    if vmin <= 0.0 then Float.infinity else vmax /. vmin
  end
