(** Scalar root finding on a bracketing interval. *)

exception No_bracket
(** Raised when [f a] and [f b] have the same sign. *)

val bisect : ?tol:float -> ?max_iter:int -> (float -> float) -> a:float -> b:float -> float

val brent : ?tol:float -> ?max_iter:int -> (float -> float) -> a:float -> b:float -> float
(** Brent's method: inverse quadratic interpolation with bisection
    safeguards. *)

val find_bracket :
  (float -> float) -> x0:float -> step:float -> max_expand:int -> (float * float) option
(** Expand outward from [x0] until a sign change is found. *)
