(* erf via 32-point Gauss–Legendre quadrature of its defining integral on
   [0, x]; the integrand is entire, so this is accurate to near machine
   precision for |x| <= 6. Nodes are computed once. *)
let erf_nodes = lazy (Integrate.gauss_legendre_nodes 32)

let erf x =
  if Float.abs x > 6.0 then if x > 0.0 then 1.0 else -1.0
  else begin
    let nodes, weights = Lazy.force erf_nodes in
    let half = x /. 2.0 in
    let acc = ref 0.0 in
    for i = 0 to Array.length nodes - 1 do
      let t = half +. (half *. nodes.(i)) in
      acc := !acc +. (weights.(i) *. exp (-.(t *. t)))
    done;
    2.0 /. sqrt Float.pi *. !acc *. half
  end

let erfc x = 1.0 -. erf x

let normal_pdf ~mean ~std x =
  assert (std > 0.0);
  let z = (x -. mean) /. std in
  exp (-0.5 *. z *. z) /. (std *. sqrt (2.0 *. Float.pi))

let normal_cdf ~mean ~std x =
  assert (std > 0.0);
  let z = (x -. mean) /. (std *. sqrt 2.0) in
  0.5 *. (1.0 +. erf z)

(* Acklam's inverse normal CDF approximation. *)
let standard_ppf p =
  assert (p > 0.0 && p < 1.0);
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then begin
      let q = sqrt (-2.0 *. log p) in
      (((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
      /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
    end
    else if p <= 1.0 -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5)) *. q
      /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.0)
    end
    else begin
      let q = sqrt (-2.0 *. log (1.0 -. p)) in
      -.((((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
         /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0))
    end
  in
  (* One Halley refinement using the exact CDF/PDF. *)
  let e = (0.5 *. erfc (-.x /. sqrt 2.0)) -. p in
  let u = e *. sqrt (2.0 *. Float.pi) *. exp (x *. x /. 2.0) in
  x -. (u /. (1.0 +. (x *. u /. 2.0)))

let normal_ppf ~mean ~std p =
  assert (std > 0.0);
  mean +. (std *. standard_ppf p)

(* Lanczos approximation with g = 7, n = 9 coefficients. *)
let rec log_gamma x =
  assert (x > 0.0);
  let g = 7.0 in
  let coefficients =
    [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028; 771.32342877765313;
       -176.61502916214059; 12.507343278686905; -0.13857109526572012; 9.9843695780195716e-6;
       1.5056327351493116e-7 |]
  in
  if x < 0.5 then
    (* Reflection formula. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma_positive (1.0 -. x) g coefficients
  else log_gamma_positive x g coefficients

and log_gamma_positive x g coefficients =
  let x = x -. 1.0 in
  let acc = ref coefficients.(0) in
  for i = 1 to Array.length coefficients - 1 do
    acc := !acc +. (coefficients.(i) /. (x +. float_of_int i))
  done;
  let t = x +. g +. 0.5 in
  (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc

(* Regularized lower incomplete gamma P(a,x), Numerical Recipes style. *)
let gamma_inc_lower ~a x =
  assert (a > 0.0);
  assert (x >= 0.0);
  if Float.equal x 0.0 then 0.0
  else if x < a +. 1.0 then begin
    (* Series representation. *)
    let rec series n term sum =
      if n > 500 || Float.abs term < Float.abs sum *. 1e-15 then sum
      else begin
        let term = term *. x /. (a +. float_of_int n) in
        series (n + 1) term (sum +. term)
      end
    in
    let first = 1.0 /. a in
    let sum = series 1 first first in
    sum *. exp ((-.x) +. (a *. log x) -. log_gamma a)
  end
  else begin
    (* Continued fraction for Q(a,x) by modified Lentz. *)
    let tiny = 1e-300 in
    let b = ref (x +. 1.0 -. a) in
    let c = ref (1.0 /. tiny) in
    let d = ref (1.0 /. !b) in
    let h = ref !d in
    (try
       for i = 1 to 500 do
         let an = -.float_of_int i *. (float_of_int i -. a) in
         b := !b +. 2.0;
         d := (an *. !d) +. !b;
         if Float.abs !d < tiny then d := tiny;
         c := !b +. (an /. !c);
         if Float.abs !c < tiny then c := tiny;
         d := 1.0 /. !d;
         let delta = !d *. !c in
         h := !h *. delta;
         if Float.abs (delta -. 1.0) < 1e-15 then raise Exit
       done
     with Exit -> ());
    let q = exp ((-.x) +. (a *. log x) -. log_gamma a) *. !h in
    1.0 -. q
  end

let chi2_cdf ~dof x =
  assert (dof >= 1);
  if x <= 0.0 then 0.0 else gamma_inc_lower ~a:(float_of_int dof /. 2.0) (x /. 2.0)

let chi2_sf ~dof x = 1.0 -. chi2_cdf ~dof x
