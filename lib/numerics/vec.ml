type t = float array

let make n x = Array.make n x
let init n f = Array.init n f
let zeros n = Array.make n 0.0
let ones n = Array.make n 1.0
let copy = Array.copy
let of_list = Array.of_list
let to_list = Array.to_list

let linspace a b n =
  assert (n >= 2);
  let h = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> a +. (h *. float_of_int i))

let check2 x y = assert (Array.length x = Array.length y)

let add x y =
  check2 x y;
  Array.mapi (fun i xi -> xi +. y.(i)) x

let sub x y =
  check2 x y;
  Array.mapi (fun i xi -> xi -. y.(i)) x

let scale a x = Array.map (fun xi -> a *. xi) x
let neg x = scale (-1.0) x

let mul x y =
  check2 x y;
  Array.mapi (fun i xi -> xi *. y.(i)) x

let div x y =
  check2 x y;
  Array.mapi (fun i xi -> xi /. y.(i)) x

let axpy a x y =
  check2 x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let dot x y =
  check2 x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let sum x = Array.fold_left ( +. ) 0.0 x

let mean x =
  assert (Array.length x > 0);
  sum x /. float_of_int (Array.length x)

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun acc xi -> Float.max acc (Float.abs xi)) 0.0 x

let min x =
  assert (Array.length x > 0);
  Array.fold_left Float.min x.(0) x

let max x =
  assert (Array.length x > 0);
  Array.fold_left Float.max x.(0) x

let argmin x =
  assert (Array.length x > 0);
  let best = ref 0 in
  for i = 1 to Array.length x - 1 do
    if x.(i) < x.(!best) then best := i
  done;
  !best

let argmax x =
  assert (Array.length x > 0);
  let best = ref 0 in
  for i = 1 to Array.length x - 1 do
    if x.(i) > x.(!best) then best := i
  done;
  !best

let map = Array.map
let map2 f x y = check2 x y; Array.mapi (fun i xi -> f xi y.(i)) x
let mapi = Array.mapi

let clamp ~lo ~hi x = Array.map (fun xi -> Float.max lo (Float.min hi xi)) x

let concat = Array.concat

let approx_equal ?(tol = 1e-9) x y =
  Array.length x = Array.length y
  && begin
       let ok = ref true in
       for i = 0 to Array.length x - 1 do
         if Float.abs (x.(i) -. y.(i)) > tol then ok := false
       done;
       !ok
     end

let pp fmt x =
  (* lint: allow R12 -- pp writes only to the caller-supplied formatter; it
     is the debug printer for test output, not a kernel *)
  Format.fprintf fmt "[|";
  Array.iteri (fun i xi -> Format.fprintf fmt "%s%g" (if i = 0 then "" else "; ") xi) x;
  Format.fprintf fmt "|]"
