open Numerics

type t = {
  name : string;
  size : int;
  lo : float;
  hi : float;
  eval : int -> float -> float;
  deriv : int -> float -> float;
  deriv2 : int -> float -> float;
  breaks : Vec.t;
}

let eval_vector b x = Array.init b.size (fun i -> b.eval i x)
let deriv_vector b x = Array.init b.size (fun i -> b.deriv i x)
let deriv2_vector b x = Array.init b.size (fun i -> b.deriv2 i x)

let design b xs = Mat.init (Array.length xs) b.size (fun m i -> b.eval i xs.(m))
let design_deriv b xs = Mat.init (Array.length xs) b.size (fun m i -> b.deriv i xs.(m))
let design_deriv2 b xs = Mat.init (Array.length xs) b.size (fun m i -> b.deriv2 i xs.(m))

let combine b alpha x =
  assert (Array.length alpha = b.size);
  let acc = ref 0.0 in
  for i = 0 to b.size - 1 do
    acc := !acc +. (alpha.(i) *. b.eval i x)
  done;
  !acc

let combine_deriv b alpha x =
  assert (Array.length alpha = b.size);
  let acc = ref 0.0 in
  for i = 0 to b.size - 1 do
    acc := !acc +. (alpha.(i) *. b.deriv i x)
  done;
  !acc

let combine_many b alpha xs = Array.map (combine b alpha) xs
