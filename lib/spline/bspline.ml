open Numerics

(* Order-4 (cubic) B-splines on a clamped knot vector, evaluated by
   Cox–de Boor recursion. For n basis functions the knot vector has n + 4
   entries: 4 copies of lo, n - 4 uniform interior knots, 4 copies of hi. *)

let knot_vector ~lo ~hi ~num_basis =
  let interior = num_basis - 4 in
  Array.init (num_basis + 4) (fun i ->
      if i < 4 then lo
      else if i >= num_basis then hi
      else lo +. ((hi -. lo) *. float_of_int (i - 3) /. float_of_int (interior + 1)))

(* B_{i,order}(x); the half-open convention is used except at the right
   endpoint, which is attributed to the last interval. *)
let rec bspl t i order x hi =
  if order = 1 then begin
    let in_interval =
      (x >= t.(i) && x < t.(i + 1)) || (x = hi && t.(i) < t.(i + 1) && t.(i + 1) = hi)
    in
    if in_interval then 1.0 else 0.0
  end
  else begin
    let left =
      let denom = t.(i + order - 1) -. t.(i) in
      if Float.equal denom 0.0 then 0.0 else (x -. t.(i)) /. denom *. bspl t i (order - 1) x hi
    in
    let right =
      let denom = t.(i + order) -. t.(i + 1) in
      if Float.equal denom 0.0 then 0.0
      else (t.(i + order) -. x) /. denom *. bspl t (i + 1) (order - 1) x hi
    in
    left +. right
  end

let rec bspl_deriv t i order x hi =
  if order = 1 then 0.0
  else begin
    let left =
      let denom = t.(i + order - 1) -. t.(i) in
      if Float.equal denom 0.0 then 0.0 else float_of_int (order - 1) /. denom *. bspl t i (order - 1) x hi
    in
    let right =
      let denom = t.(i + order) -. t.(i + 1) in
      if Float.equal denom 0.0 then 0.0
      else float_of_int (order - 1) /. denom *. bspl t (i + 1) (order - 1) x hi
    in
    left -. right
  end

and bspl_deriv2 t i order x hi =
  if order <= 2 then 0.0
  else begin
    let left =
      let denom = t.(i + order - 1) -. t.(i) in
      if Float.equal denom 0.0 then 0.0
      else float_of_int (order - 1) /. denom *. bspl_deriv t i (order - 1) x hi
    in
    let right =
      let denom = t.(i + order) -. t.(i + 1) in
      if Float.equal denom 0.0 then 0.0
      else float_of_int (order - 1) /. denom *. bspl_deriv t (i + 1) (order - 1) x hi
    in
    left -. right
  end

let create ~lo ~hi ~num_basis =
  assert (num_basis >= 4);
  assert (hi > lo);
  let t = knot_vector ~lo ~hi ~num_basis in
  let breaks =
    (* Distinct knots are the polynomial breakpoints. *)
    let acc = ref [ t.(0) ] in
    Array.iter (fun k -> match !acc with x :: _ when x = k -> () | _ -> acc := k :: !acc) t;
    Vec.of_list (List.rev !acc)
  in
  {
    Basis.name = "bspline-cubic";
    size = num_basis;
    lo;
    hi;
    eval = (fun i x -> bspl t i 4 x hi);
    deriv = (fun i x -> bspl_deriv t i 4 x hi);
    deriv2 = (fun i x -> bspl_deriv2 t i 4 x hi);
    breaks;
  }
