(** Clamped cubic B-spline basis on an interval (P-spline alternative to the
    paper's natural basis; used in the basis-choice ablation). *)


val create : lo:float -> hi:float -> num_basis:int -> Basis.t
(** [create ~lo ~hi ~num_basis] builds [num_basis >= 4] cubic B-splines on a
    clamped uniform knot vector over [\[lo, hi\]]. The functions form a
    partition of unity on the interval. *)
