open Numerics

let second_derivative (b : Basis.t) =
  let n = b.size in
  let nodes, weights = Integrate.gauss_legendre_nodes 3 in
  let omega = Mat.zeros n n in
  let breaks = b.breaks in
  for interval = 0 to Array.length breaks - 2 do
    let a = breaks.(interval) and c = breaks.(interval + 1) in
    let half = (c -. a) /. 2.0 and mid = (a +. c) /. 2.0 in
    for q = 0 to 2 do
      let x = mid +. (half *. nodes.(q)) in
      let w = weights.(q) *. half in
      let d2 = Array.init n (fun i -> b.deriv2 i x) in
      for i = 0 to n - 1 do
        if not (Float.equal d2.(i) 0.0) then
          for j = i to n - 1 do
            Mat.set omega i j (Mat.get omega i j +. (w *. d2.(i) *. d2.(j)))
          done
      done
    done
  done;
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      Mat.set omega i j (Mat.get omega j i)
    done
  done;
  omega

let gram (b : Basis.t) grid =
  let w = Integrate.trapezoid_weights grid in
  let design = Basis.design b grid in
  let n = b.size in
  let g = Mat.zeros n n in
  for m = 0 to Array.length grid - 1 do
    for i = 0 to n - 1 do
      let di = Mat.get design m i in
      if not (Float.equal di 0.0) then
        for j = i to n - 1 do
          Mat.set g i j (Mat.get g i j +. (w.(m) *. di *. Mat.get design m j))
        done
    done
  done;
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      Mat.set g i j (Mat.get g j i)
    done
  done;
  g
