(** Natural cubic spline basis — the representation used by the paper
    (eq. 4): piecewise cubic polynomials, linear beyond the boundary knots.

    The construction is the truncated-power natural basis (Hastie et al.,
    *Elements of Statistical Learning*, §5.2.1): for knots ξ_1 < … < ξ_K,

    - N_1(x) = 1, N_2(x) = x,
    - N_{k+2}(x) = d_k(x) − d_{K−1}(x) with
      d_k(x) = ((x−ξ_k)_+³ − (x−ξ_K)_+³) / (ξ_K − ξ_k).

    The basis has exactly K functions and every combination satisfies the
    natural boundary conditions f'' = f''' = 0 outside [ξ_1, ξ_K]. *)

open Numerics

val create : knots:Vec.t -> Basis.t
(** Requires at least 3 strictly increasing knots. *)

val with_uniform_knots : lo:float -> hi:float -> num_knots:int -> Basis.t
