open Numerics

(* Standard second-derivative representation: on [x_i, x_{i+1}] with
   h_i = x_{i+1} - x_i and curvatures m_i = f''(x_i),
   f(x) = m_i (x_{i+1}-x)³/(6h) + m_{i+1} (x-x_i)³/(6h)
        + (y_i/h - m_i h/6)(x_{i+1}-x) + (y_{i+1}/h - m_{i+1} h/6)(x-x_i). *)
type t = { x : Vec.t; y : Vec.t; m : Vec.t }

let check_grid x y =
  let n = Array.length x in
  assert (n = Array.length y);
  assert (n >= 2);
  for i = 0 to n - 2 do
    assert (x.(i) < x.(i + 1))
  done;
  n

let natural ~x ~y =
  let n = check_grid x y in
  if n = 2 then { x; y; m = [| 0.0; 0.0 |] }
  else begin
    let h = Array.init (n - 1) (fun i -> x.(i + 1) -. x.(i)) in
    (* Interior equations: h_{i-1} m_{i-1} + 2(h_{i-1}+h_i) m_i + h_i m_{i+1}
       = 6 ((y_{i+1}-y_i)/h_i - (y_i-y_{i-1})/h_{i-1}), plus m_0 = m_{n-1} = 0. *)
    let size = n - 2 in
    let diag = Array.init size (fun i -> 2.0 *. (h.(i) +. h.(i + 1))) in
    let lower = Array.init (size - 1) (fun i -> h.(i + 1)) in
    let upper = Array.init (size - 1) (fun i -> h.(i + 1)) in
    let rhs =
      Array.init size (fun i ->
          6.0
          *. (((y.(i + 2) -. y.(i + 1)) /. h.(i + 1)) -. ((y.(i + 1) -. y.(i)) /. h.(i))))
    in
    let interior =
      if size = 1 then [| rhs.(0) /. diag.(0) |]
      else Tridiag.solve ~lower ~diag ~upper ~rhs
    in
    let m = Array.make n 0.0 in
    Array.blit interior 0 m 1 size;
    { x; y; m }
  end

let periodic ~x ~y =
  let n = check_grid x y in
  assert (n >= 4);
  assert (Float.abs (y.(0) -. y.(n - 1)) < 1e-9);
  (* Unknowns m_0 .. m_{n-2} with m_{n-1} = m_0; cyclic system. *)
  let h = Array.init (n - 1) (fun i -> x.(i + 1) -. x.(i)) in
  let size = n - 1 in
  let hm i = h.((i + size - 1) mod size) in
  (* h before node i (wrapping) *)
  let hp i = h.(i mod size) in
  let slope i =
    (* slope of segment starting at node (i mod size) *)
    let i = i mod size in
    (y.(i + 1) -. y.(i)) /. h.(i)
  in
  let diag = Array.init size (fun i -> 2.0 *. (hm i +. hp i)) in
  let lower = Array.init (size - 1) (fun i -> hm (i + 1)) in
  let upper = Array.init (size - 1) (fun i -> hp i) in
  let rhs = Array.init size (fun i -> 6.0 *. (slope i -. slope (i + size - 1))) in
  let corner = (hm 0, hp (size - 1)) in
  (* top-right couples m_0 to m_{size-1}; bottom-left symmetric *)
  let interior = Tridiag.solve_cyclic ~lower ~diag ~upper ~corner ~rhs in
  let m = Array.init n (fun i -> if i = n - 1 then interior.(0) else interior.(i)) in
  { x; y; m }

let segment t v =
  let n = Array.length t.x in
  if v <= t.x.(0) then 0 else if v >= t.x.(n - 1) then n - 2 else Interp.bracket t.x v

let eval t v =
  let n = Array.length t.x in
  if v <= t.x.(0) then t.y.(0)
  else if v >= t.x.(n - 1) then t.y.(n - 1)
  else begin
    let i = segment t v in
    let h = t.x.(i + 1) -. t.x.(i) in
    let a = (t.x.(i + 1) -. v) /. h in
    let b = (v -. t.x.(i)) /. h in
    (a *. t.y.(i)) +. (b *. t.y.(i + 1))
    +. (((a *. a *. a) -. a) *. t.m.(i) +. (((b *. b *. b) -. b) *. t.m.(i + 1)))
       *. h *. h /. 6.0
  end

let deriv t v =
  let i = segment t v in
  let h = t.x.(i + 1) -. t.x.(i) in
  let a = (t.x.(i + 1) -. v) /. h in
  let b = (v -. t.x.(i)) /. h in
  ((t.y.(i + 1) -. t.y.(i)) /. h)
  +. ((((3.0 *. b *. b) -. 1.0) *. t.m.(i + 1) -. (((3.0 *. a *. a) -. 1.0) *. t.m.(i)))
      *. h /. 6.0)

let deriv2 t v =
  let i = segment t v in
  let h = t.x.(i + 1) -. t.x.(i) in
  let a = (t.x.(i + 1) -. v) /. h in
  let b = (v -. t.x.(i)) /. h in
  (a *. t.m.(i)) +. (b *. t.m.(i + 1))

let eval_many t vs = Array.map (eval t) vs
