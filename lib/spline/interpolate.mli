(** Exact cubic-spline interpolation through data points (as opposed to the
    penalized regression splines in {!Natural}): the classical
    second-derivative formulation solved with a tridiagonal system.

    Used for resampling simulated trajectories onto phase grids and as an
    independent check of the regression-spline machinery. *)

open Numerics

type t

val natural : x:Vec.t -> y:Vec.t -> t
(** Natural boundary conditions (f'' = 0 at both ends). [x] strictly
    increasing, at least 2 points (2 points degenerate to a line). *)

val periodic : x:Vec.t -> y:Vec.t -> t
(** Periodic boundary conditions: f, f', f'' match across the ends.
    Requires [y.(0) = y.(n-1)] up to 1e-9 and at least 4 points. *)

val eval : t -> float -> float
(** Clamped to the end values outside the data range. *)

val deriv : t -> float -> float
val deriv2 : t -> float -> float
val eval_many : t -> Vec.t -> Vec.t
