(** Knot placement helpers. *)

open Numerics

val uniform : lo:float -> hi:float -> int -> Vec.t
(** [uniform ~lo ~hi n] places [n >= 2] knots evenly, endpoints included. *)

val quantile : Vec.t -> int -> Vec.t
(** [quantile samples n] places [n] knots at evenly spaced quantiles of the
    sample distribution (deduplicated monotone result). *)
