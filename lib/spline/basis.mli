(** A common interface for spline bases on an interval.

    A basis is a finite family of functions {ψ_i}; the deconvolution
    estimate is the combination f_α(φ) = Σ α_i ψ_i(φ) (paper eq. 4). *)

open Numerics

type t = {
  name : string;
  size : int;  (** number of basis functions *)
  lo : float;
  hi : float;  (** supported interval *)
  eval : int -> float -> float;  (** ψ_i(x) *)
  deriv : int -> float -> float;  (** ψ_i'(x) *)
  deriv2 : int -> float -> float;  (** ψ_i''(x) *)
  breaks : Vec.t;
      (** breakpoints between which every ψ_i'' is polynomial of degree <= 1;
          used for exact penalty quadrature *)
}

val eval_vector : t -> float -> Vec.t
(** All basis functions at a point: [ψ_1(x); ...; ψ_n(x)]. *)

val deriv_vector : t -> float -> Vec.t
val deriv2_vector : t -> float -> Vec.t

val design : t -> Vec.t -> Mat.t
(** [design basis xs] has entry (m, i) = ψ_i(xs.(m)). *)

val design_deriv : t -> Vec.t -> Mat.t
val design_deriv2 : t -> Vec.t -> Mat.t

val combine : t -> Vec.t -> float -> float
(** [combine basis alpha x] evaluates f_α(x). *)

val combine_deriv : t -> Vec.t -> float -> float
val combine_many : t -> Vec.t -> Vec.t -> Vec.t
