(** Second-derivative roughness penalty matrices: Ω_ij = ∫ ψ_i'' ψ_j'' dx
    (the regularizer of paper eq. 5). *)

open Numerics

val second_derivative : Basis.t -> Mat.t
(** Exact penalty matrix: for cubic splines ψ'' is piecewise linear between
    [basis.breaks], so the product is piecewise quadratic and 3-point
    Gauss–Legendre per break interval integrates it exactly. The result is
    symmetric positive semi-definite. *)

val gram : Basis.t -> Vec.t -> Mat.t
(** [gram basis grid] = trapezoid-weighted ∫ ψ_i ψ_j dx on the given grid
    (used for function-space norms in tests and diagnostics). *)
