open Numerics

let uniform ~lo ~hi n =
  assert (n >= 2);
  Vec.linspace lo hi n

let quantile samples n =
  assert (n >= 2);
  let qs = Vec.linspace 0.0 1.0 n in
  let raw = Array.map (Stats.quantile samples) qs in
  (* Enforce strict monotonicity by nudging duplicates. *)
  for i = 1 to n - 1 do
    if raw.(i) <= raw.(i - 1) then raw.(i) <- raw.(i - 1) +. 1e-9
  done;
  raw
