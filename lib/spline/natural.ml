let cube_plus v = if v > 0.0 then v *. v *. v else 0.0
let sq_plus v = if v > 0.0 then v *. v else 0.0
let plus v = if v > 0.0 then v else 0.0

let create ~knots =
  let k = Array.length knots in
  assert (k >= 3);
  for i = 0 to k - 2 do
    assert (knots.(i) < knots.(i + 1))
  done;
  let xi_last = knots.(k - 1) in
  let d j x =
    (* j is a 0-based knot index, valid for j <= k-2. *)
    (cube_plus (x -. knots.(j)) -. cube_plus (x -. xi_last)) /. (xi_last -. knots.(j))
  in
  let d_deriv j x =
    3.0 *. (sq_plus (x -. knots.(j)) -. sq_plus (x -. xi_last)) /. (xi_last -. knots.(j))
  in
  let d_deriv2 j x =
    6.0 *. (plus (x -. knots.(j)) -. plus (x -. xi_last)) /. (xi_last -. knots.(j))
  in
  let eval i x =
    if i = 0 then 1.0
    else if i = 1 then x
    else d (i - 2) x -. d (k - 2) x
  in
  let deriv i x =
    if i = 0 then 0.0 else if i = 1 then 1.0 else d_deriv (i - 2) x -. d_deriv (k - 2) x
  in
  let deriv2 i x =
    if i = 0 || i = 1 then 0.0 else d_deriv2 (i - 2) x -. d_deriv2 (k - 2) x
  in
  {
    Basis.name = "natural-cubic";
    size = k;
    lo = knots.(0);
    hi = xi_last;
    eval;
    deriv;
    deriv2;
    breaks = Array.copy knots;
  }

let with_uniform_knots ~lo ~hi ~num_knots = create ~knots:(Knots.uniform ~lo ~hi num_knots)
