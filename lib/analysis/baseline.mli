(** Findings snapshots for incremental adoption of new rules.

    A baseline is a sorted, line-oriented snapshot of known findings.
    Entries are keyed by (rule, file, message) — deliberately {e not} by
    line/column, so unrelated edits that shift code do not invalidate
    the baseline. Comparing a run against a baseline partitions it into
    {e fresh} findings (absent from the baseline: these fail the build)
    and {e stale} entries (baselined findings that no longer occur: the
    baseline should shrink — rewrite it).

    The module is pure string-to-string so the library performs no IO
    (rule R9); [bin/lint.ml] owns reading and writing the file. *)

type entry = { rule : string; file : string; message : string }

type t = entry list

type comparison = {
  fresh : Finding.t list;  (** findings not covered by the baseline *)
  stale : t;  (** baseline entries no current finding matches *)
}

val key : Finding.t -> entry

val to_string : Finding.t list -> string
(** Serialize a snapshot: one [rule<TAB>file<TAB>message] line per
    distinct key, sorted. *)

val of_string : string -> t
(** Parse a snapshot; blank lines and [#] comments are ignored,
    malformed lines are dropped. *)

val compare_against : baseline:t -> Finding.t list -> comparison
