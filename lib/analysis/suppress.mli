(** Per-site suppression comments.

    Syntax: [(* lint: allow R2 — justification *)] (also accepted: [-], [--]
    or [:] as the separator, and several comma/space-separated rule ids).
    A suppression silences the named rules on every line the comment spans
    and on the line immediately following it, so both trailing same-line
    comments and comment-above style work.

    A suppression without a recognizable rule id or without a non-empty
    reason is {e malformed}: it suppresses nothing and is reported as an
    [R0] finding — there is no silent rule disabling. *)

type t = {
  rules : string list;  (** normalized rule ids *)
  reason : string;
  first_line : int;  (** line the marker appears on (1-based) *)
  last_line : int;  (** line of the comment's closing delimiter *)
}

type malformed = { line : int; why : string }

val scan : string -> t list * malformed list
(** Find every suppression comment in a source buffer. *)

val covers : t -> rule:string -> line:int -> bool
(** Does this suppression silence [rule] for a finding on [line]? *)
