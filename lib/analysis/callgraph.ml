open Parsetree

type target = Def of string | External of string

type def = {
  id : string;
  path : string;
  line : int;
  col : int;
  public : bool;
  body : Parsetree.expression;
}

type scope = {
  prefixes : string list;
      (* enclosing module paths, innermost first; the last element is the
         file's own prefix, e.g. ["Deconv.Solver"] for lib/core/solver.ml *)
  opens : string list list;  (* flattened [open M] paths visible here *)
  aliases : (string * string list) list;  (* module X = Y: "X" -> parts of Y *)
}

type t = {
  table : (string, def) Hashtbl.t;
  scopes : (string, scope) Hashtbl.t;
  includes : (string, string list list) Hashtbl.t;
      (* module path -> flattened paths of the modules it [include]s *)
  exns : (string, unit) Hashtbl.t;  (* qualified declared exception names *)
}

(* ---------------- path -> module prefix ---------------- *)

let segments path =
  String.split_on_char '/' path
  |> List.filter (fun s -> not (String.equal s "") && not (String.equal s "."))

(* The dune library whose directory is lib/<dir>: the wrapping module is
   the capitalized directory name, except where the library's (name ...)
   differs from its directory. lib/core is the only such library today;
   new libraries that follow the dir = name convention need no entry. *)
let lib_module_of_dir = function
  | "core" -> "Deconv"
  | dir -> String.capitalize_ascii dir

let module_of_file file =
  String.capitalize_ascii (Filename.remove_extension file)

let module_prefix_of_path path =
  let segs = segments path in
  let rec after_lib = function
    | "lib" :: dir :: rest when rest <> [] -> Some (dir, rest)
    | _ :: rest -> after_lib rest
    | [] -> None
  in
  match after_lib segs with
  | Some (dir, rest) -> (
    let libmod = lib_module_of_dir dir in
    (* Nested dirs under a library keep only the file segment: dune
       flattens module paths inside a library. *)
    match List.rev rest with
    | file :: _ ->
      let m = module_of_file file in
      if String.equal m libmod then libmod else libmod ^ "." ^ m
    | [] -> libmod)
  | None -> (
    match List.rev segs with
    | file :: _ -> module_of_file file
    | [] -> "Scratch")

(* ---------------- small helpers ---------------- *)

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_lid l @ [ s ]
  | Longident.Lapply (f, _) -> flatten_lid f

let join parts = String.concat "." parts

let vars_of_pattern p =
  let acc = ref [] in
  let rec go p =
    match p.ppat_desc with
    | Ppat_var v -> acc := (v.Location.txt, p.ppat_loc) :: !acc
    | Ppat_alias (inner, v) ->
      acc := (v.Location.txt, p.ppat_loc) :: !acc;
      go inner
    | Ppat_tuple ps | Ppat_array ps -> List.iter go ps
    | Ppat_construct (_, Some (_, inner)) | Ppat_variant (_, Some inner) -> go inner
    | Ppat_record (fields, _) -> List.iter (fun (_, p) -> go p) fields
    | Ppat_or (a, b) ->
      go a;
      go b
    | Ppat_constraint (inner, _) | Ppat_lazy inner | Ppat_open (_, inner) -> go inner
    | Ppat_exception inner -> go inner
    | _ -> ()
  in
  go p;
  List.rev !acc

let pattern_vars p = List.map fst (vars_of_pattern p)

(* ---------------- build ---------------- *)

type builder = {
  b_table : (string, def) Hashtbl.t;
  b_scopes : (string, scope) Hashtbl.t;
  b_includes : (string, string list list) Hashtbl.t;
  b_exns : (string, unit) Hashtbl.t;
  mutable b_opens : string list list;  (* per-file accumulation *)
  mutable b_aliases : (string * string list) list;
}

(* Collect the opens and module aliases that appear *inside* expressions
   ([let open M in], [M.(...)], [let module X = Y in]) so a definition's
   scope sees them. File-conservative: an open anywhere in the file is
   treated as visible everywhere in it — over-approximating visibility
   only adds resolution candidates. *)
let scan_expression_scopes b expr =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_open ({ popen_expr = { pmod_desc = Pmod_ident lid; _ }; _ }, _) ->
            b.b_opens <- flatten_lid lid.Location.txt :: b.b_opens
          | Pexp_letmodule (name, { pmod_desc = Pmod_ident lid; _ }, _) -> (
            match name.Location.txt with
            | Some n -> b.b_aliases <- (n, flatten_lid lid.Location.txt) :: b.b_aliases
            | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it expr

let add_def b ~prefix ~path ~public (name, loc) body =
  let id = join (prefix @ [ name ]) in
  if not (Hashtbl.mem b.b_table id) then begin
    let pos = loc.Location.loc_start in
    Hashtbl.replace b.b_table id
      {
        id;
        path;
        line = pos.Lexing.pos_lnum;
        col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol + 1;
        public;
        body;
      };
    scan_expression_scopes b body
  end

(* Walk a structure, registering defs under [prefix]. [enclosing] is the
   stack of module paths (innermost first) used later for resolution. *)
let rec walk_structure b ~path ~prefix str =
  List.iter (walk_item b ~path ~prefix) str

and walk_item b ~path ~prefix item =
  match item.pstr_desc with
  | Pstr_value (_, bindings) ->
    List.iter
      (fun vb ->
        List.iter
          (fun (name, loc) -> add_def b ~prefix ~path ~public:true (name, loc) vb.pvb_expr)
          (vars_of_pattern vb.pvb_pat))
      bindings
  | Pstr_exception ext ->
    Hashtbl.replace b.b_exns (join (prefix @ [ ext.ptyexn_constructor.pext_name.txt ])) ()
  | Pstr_module mb -> walk_module_binding b ~path ~prefix mb
  | Pstr_recmodule mbs -> List.iter (walk_module_binding b ~path ~prefix) mbs
  | Pstr_open { popen_expr = { pmod_desc = Pmod_ident lid; _ }; _ } ->
    b.b_opens <- flatten_lid lid.Location.txt :: b.b_opens
  | Pstr_include { pincl_mod; _ } -> (
    match (unwrap_module pincl_mod).pmod_desc with
    | Pmod_ident lid ->
      let key = join prefix in
      let target = flatten_lid lid.Location.txt in
      (* The included path is resolved in the include's own scope:
         [include Base] inside Deconv.Solver names the sibling
         Deconv.Base. Record the target qualified through every
         enclosing prefix (outermost last, bare path as written first);
         expansion only keeps variants that hit a real definition, so
         the extras are harmless. *)
      let drop_last parts =
        match List.rev parts with [] -> [] | _ :: rest -> List.rev rest
      in
      let rec qualified ctx acc =
        match ctx with
        | [] -> List.rev (target :: acc)
        | _ -> qualified (drop_last ctx) ((ctx @ target) :: acc)
      in
      let prev = try Hashtbl.find b.b_includes key with Not_found -> [] in
      Hashtbl.replace b.b_includes key (qualified prefix [] @ prev)
    | Pmod_structure str -> walk_structure b ~path ~prefix str
    | _ -> ())
  | _ -> ()

and unwrap_module m =
  match m.pmod_desc with Pmod_constraint (inner, _) -> unwrap_module inner | _ -> m

and walk_module_binding b ~path ~prefix mb =
  match mb.pmb_name.Location.txt with
  | None -> ()
  | Some name -> (
    let sub = prefix @ [ name ] in
    let rec handle m =
      match (unwrap_module m).pmod_desc with
      | Pmod_structure str -> walk_structure b ~path ~prefix:sub str
      | Pmod_ident lid -> b.b_aliases <- (name, flatten_lid lid.Location.txt) :: b.b_aliases
      | Pmod_functor (_, body) ->
        (* Functor bodies are analyzed in place: members of any
           application [F (X)] resolve into the body's definitions — a
           conservative, argument-insensitive view. *)
        handle body
      | Pmod_apply (f, _) -> (
        (* module M = F (X): M's members live in F's body. *)
        match (unwrap_module f).pmod_desc with
        | Pmod_ident lid -> b.b_aliases <- (name, flatten_lid lid.Location.txt) :: b.b_aliases
        | _ -> ())
      | _ -> ()
    in
    handle mb.pmb_expr)

(* ---------------- .mli exports ---------------- *)

(* Returns (exact value paths, module prefixes exported opaquely). *)
let rec exports_of_signature ~rel sg =
  List.fold_left
    (fun (vals, mods) item ->
      match item.psig_desc with
      | Psig_value vd -> ((rel @ [ vd.pval_name.txt ]) :: vals, mods)
      | Psig_module md -> (
        match md.pmd_name.Location.txt with
        | None -> (vals, mods)
        | Some name -> (
          match md.pmd_type.pmty_desc with
          | Pmty_signature sub ->
            let v, m = exports_of_signature ~rel:(rel @ [ name ]) sub in
            (v @ vals, m @ mods)
          | _ -> (vals, (rel @ [ name ]) :: mods)))
      | Psig_include _ ->
        (* include S: the export set is no longer syntactically visible;
           treat the whole module as exported. *)
        (vals, rel :: mods)
      | _ -> (vals, mods))
    ([], []) sg

(* ---------------- public API ---------------- *)

let build sources =
  let b =
    {
      b_table = Hashtbl.create 512;
      b_scopes = Hashtbl.create 512;
      b_includes = Hashtbl.create 32;
      b_exns = Hashtbl.create 32;
      b_opens = [];
      b_aliases = [];
    }
  in
  let errors = ref [] in
  let parse_with parser ~path source =
    let lexbuf = Lexing.from_string source in
    Location.init lexbuf path;
    match parser lexbuf with
    | ast -> Some ast
    (* lint: allow R2 — any parser exception (Syntaxerr.Error,
       Lexer.Error, ...) means exactly "this file does not parse", which
       is the error we record *)
    | exception exn ->
      errors := (path, Printf.sprintf "parse error (%s)" (Printexc.to_string exn)) :: !errors;
      None
  in
  let mls = List.filter (fun (p, _) -> Filename.check_suffix p ".ml") sources in
  let mlis = List.filter (fun (p, _) -> Filename.check_suffix p ".mli") sources in
  let exports = Hashtbl.create 32 in
  List.iter
    (fun (path, source) ->
      match parse_with Parse.interface ~path source with
      | None -> ()
      | Some sg ->
        let prefix = module_prefix_of_path path in
        Hashtbl.replace exports prefix (exports_of_signature ~rel:[] sg))
    mlis;
  List.iter
    (fun (path, source) ->
      match parse_with Parse.implementation ~path source with
      | None -> ()
      | Some str ->
        let prefix = module_prefix_of_path path in
        let file_prefix = String.split_on_char '.' prefix in
        b.b_opens <- [];
        b.b_aliases <- [];
        let marker = Hashtbl.create 16 in
        Hashtbl.iter (fun id _ -> Hashtbl.replace marker id ()) b.b_table;
        walk_structure b ~path ~prefix:file_prefix str;
        (* Freeze this file's scope for every def it contributed, and
           apply the .mli export list (if any) to publicness. *)
        let opens = b.b_opens and aliases = b.b_aliases in
        let export = Hashtbl.find_opt exports prefix in
        Hashtbl.iter
          (fun id (d : def) ->
            if (not (Hashtbl.mem marker id)) && String.equal d.path path then begin
              let rel =
                (* id = prefix ^ "." ^ rel *)
                let pl = String.length prefix in
                if
                  String.length id > pl + 1
                  && String.equal (String.sub id 0 pl) prefix
                then String.split_on_char '.' (String.sub id (pl + 1) (String.length id - pl - 1))
                else []
              in
              let public =
                match export with
                | None -> true
                | Some (vals, mods) ->
                  List.exists (fun v -> v = rel) vals
                  || List.exists
                       (fun m ->
                         let ml = List.length m in
                         List.length rel > ml
                         &&
                         let rec prefix_eq a b =
                           match (a, b) with
                           | [], _ -> true
                           | x :: xs, y :: ys -> String.equal x y && prefix_eq xs ys
                           | _ -> false
                         in
                         prefix_eq m rel)
                       mods
              in
              if not public then Hashtbl.replace b.b_table id { d with public = false };
              (* Enclosing module paths, innermost first: from the def's
                 own module path down through the file prefix to the
                 library wrapper, so a sibling reference like
                 [Solver.solve] from lib/core/batch.ml tries
                 "Deconv.Solver.solve" — dune's wrapped-library scoping. *)
              let drop_last parts =
                match List.rev parts with [] -> [] | _ :: rest -> List.rev rest
              in
              let rec enclosing acc parts =
                match parts with
                | [] -> acc
                | _ ->
                  let here = join parts in
                  if List.length parts <= 1 then here :: acc
                  else enclosing (here :: acc) (drop_last parts)
              in
              let id_parts = String.split_on_char '.' id in
              let mod_parts = drop_last id_parts in
              let prefixes = List.rev (enclosing [] mod_parts) in
              let prefixes = if prefixes = [] then [ prefix ] else prefixes in
              Hashtbl.replace b.b_scopes id { prefixes; opens; aliases }
            end)
          (Hashtbl.copy b.b_table)
    )
    mls;
  ( { table = b.b_table; scopes = b.b_scopes; includes = b.b_includes; exns = b.b_exns },
    List.rev !errors )

let defs t =
  Hashtbl.fold (fun _ d acc -> d :: acc) t.table []
  |> List.sort (fun a b -> String.compare a.id b.id)

let find t id = Hashtbl.find_opt t.table id

let scope_of t id = Hashtbl.find_opt t.scopes id

(* ---------------- resolution ---------------- *)

(* Candidate fully-qualified keys for a dotted reference, most specific
   first. A reference [M1...Mn.v] may start from a module alias on the
   head, and the resulting base path is then tried against every
   qualification context: the enclosing module paths (innermost out —
   this is what makes a sibling shadow an [open]), every [open]ed path
   (itself qualified through the enclosing paths, so [open Error] inside
   lib/robust expands to Robust.Error), and finally unqualified (a
   library's top module referenced directly). *)
let candidates _t scope parts =
  match parts with
  | [] -> []
  | head :: rest ->
    let alias_bases =
      List.filter_map
        (fun (name, target) ->
          if String.equal name head then Some (target @ rest) else None)
        scope.aliases
    in
    let bases = alias_bases @ [ parts ] in
    let contexts =
      scope.prefixes
      @ List.concat_map
          (fun o -> join o :: List.map (fun p -> p ^ "." ^ join o) scope.prefixes)
          scope.opens
    in
    let keys_of bp = List.map (fun c -> c ^ "." ^ join bp) contexts @ [ join bp ] in
    List.concat_map keys_of bases
    |> List.fold_left (fun acc k -> if List.mem k acc then acc else k :: acc) []
    |> List.rev

(* Expand a candidate key through [include]d modules: P.x where module P
   includes M also means M.x. Depth-limited to keep cycles harmless. *)
let rec include_expansions t depth key =
  if depth = 0 then []
  else
    (* Split key at every module boundary and look for includes. *)
    let parts = String.split_on_char '.' key in
    let n = List.length parts in
    let rec take k l = if k = 0 then [] else match l with [] -> [] | x :: xs -> x :: take (k - 1) xs in
    let rec drop k l = if k = 0 then l else match l with [] -> [] | _ :: xs -> drop (k - 1) xs in
    let out = ref [] in
    for i = n - 1 downto 1 do
      let modpath = join (take i parts) in
      match Hashtbl.find_opt t.includes modpath with
      | None -> ()
      | Some included ->
        List.iter
          (fun inc ->
            let k' = join (inc @ drop i parts) in
            out := k' :: (include_expansions t (depth - 1) k' @ !out))
          included
    done;
    !out

let lookup t keys =
  let rec go = function
    | [] -> None
    | k :: rest -> (
      if Hashtbl.mem t.table k then Some k
      else
        match List.find_opt (Hashtbl.mem t.table) (include_expansions t 3 k) with
        | Some k' -> Some k'
        | None -> go rest)
  in
  go keys

let resolve t scope ~locals lid =
  let parts = flatten_lid lid in
  match parts with
  | [ v ] when locals v -> External v
  | _ -> (
    match lookup t (candidates t scope parts) with
    | Some id -> Def id
    | None -> External (join parts))

let exception_name t scope lid =
  let parts = flatten_lid lid in
  let keys = candidates t scope parts in
  match
    List.find_opt
      (fun k ->
        Hashtbl.mem t.exns k
        || List.exists (Hashtbl.mem t.exns) (include_expansions t 3 k))
      keys
  with
  | Some k -> (
    if Hashtbl.mem t.exns k then k
    else
      match List.find_opt (Hashtbl.mem t.exns) (include_expansions t 3 k) with
      | Some k' -> k'
      | None -> k)
  | None -> join parts
