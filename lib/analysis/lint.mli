(** deconv-lint: parse OCaml sources with compiler-libs and enforce the
    numerical-safety rules of {!Rules}.

    Scoping is path-based: a file is "library code" (rules R2/R4/R5 apply)
    when a [lib] path segment appears among its parent directories, and
    [lib/cellpop/params.ml] is the one file where the paper constants of
    rule R4 may appear as literals. *)

type run_result = {
  findings : Finding.t list;  (** sorted by file/line/col *)
  files : int;  (** number of [.ml]/[.mli] files linted *)
  errors : (string * string) list;  (** (path, message): unreadable/unparsable *)
}

val in_lib : string -> bool
(** Path-based scoping used for [Lib_only] rules. *)

val is_params_file : string -> bool
(** Is this the canonical constants file ([lib/cellpop/params.ml])? *)

val lint_source :
  ?disabled:string list -> path:string -> string -> (Finding.t list, string) result
(** Lint one source buffer. [path] is the logical path used for scoping and
    reporting; it must end in [.ml] or [.mli] (interfaces are parsed for
    syntax only — the rules are expression-level). [disabled] rule ids are
    dropped from the output. [Error] means the buffer failed to parse. *)

val lint_file :
  ?disabled:string list -> ?as_path:string -> string -> (Finding.t list, string) result
(** Read and lint a file on disk. [as_path] overrides the logical path used
    for scoping/reporting (used by tests that lint temp files as if they
    lived under [lib/]). *)

val collect_files : string list -> (string list, string) result
(** Expand files/directories into a sorted list of [.ml]/[.mli] paths,
    skipping [_build] and dot-directories. [Error] on an unreadable path. *)

val run : ?disabled:string list -> string list -> run_result
(** Lint every source file under the given paths. *)
