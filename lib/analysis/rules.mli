(** The registry of numerical-safety rules enforced by deconv-lint.

    Rule ids are stable strings ("R0".."R14") used in findings, in
    [--disable] flags and in suppression comments. *)

type scope =
  | Everywhere  (** enforced in every linted file *)
  | Lib_only  (** enforced only for files under a [lib/] directory *)
  | Except_obs  (** enforced everywhere except under [lib/obs/] *)
  | Except_concurrency
      (** enforced everywhere except under [lib/parallel/] and [lib/obs/] *)
  | Except_atomic
      (** enforced under [lib/] except [lib/dataio/atomic_file.ml], the one
          module allowed to open raw output channels *)
  | Except_quality
      (** enforced under [lib/] except [lib/numerics/] and [lib/core/], the
          layers where solution-quality statistics are computed *)
  | Check_only
      (** interprocedural: enforced by the whole-program [deconv-lint check]
          pass ({!Policy}), not by the per-file expression walker *)

type t = {
  id : string;
  title : string;  (** short label for listings *)
  scope : scope;
  description : string;  (** what it catches and why it matters *)
}

val all : t list
(** Every rule, in id order. *)

val find : string -> t option
(** Lookup by id, case-insensitive. *)

val normalize_id : string -> string option
(** ["r4"] -> [Some "R4"]; [None] for unknown ids. *)
