type check_result = {
  findings : Finding.t list;
  files : int;
  defs : int;
  iterations : int;
  errors : (string * string) list;
}

(* The robust public surface: entry points whose contract is "failures
   come back as Robust.Error, never as an arbitrary exception". The
   solver cascade converts at these boundaries; everything reachable
   underneath may use typed internal exceptions (Linalg.Singular,
   Csv.Parse_error, ...) freely as long as something on the path
   converts them. *)
let default_roots =
  [
    "Deconv.Pipeline.";
    "Deconv.Batch.";
    "Deconv.Bootstrap.";
    "Deconv.Chaos.";
    "Deconv.Solver.solve_robust";
  ]

(* ---------------- path scoping ---------------- *)

let segments path =
  String.split_on_char '/' path
  |> List.filter (fun s -> not (String.equal s "") && not (String.equal s "."))

let in_lib_dir dirs path =
  let rec go = function
    | "lib" :: d :: _ when List.exists (String.equal d) dirs -> true
    | _ :: rest -> go rest
    | [] -> false
  in
  go (segments path)

let in_lib path =
  let rec go = function
    | "lib" :: _ :: _ -> true
    | _ :: rest -> go rest
    | [] -> false
  in
  go (segments path)

(* Capabilities whose origin lies inside the audited concurrency and
   observability layers are sanctioned: lib/parallel's pool state is the
   scheduler itself and lib/obs guards its sinks with the domain-safe
   clamps R8 confines there. *)
let audited_origin (o : Effects.origin) = in_lib_dir [ "parallel"; "obs" ] o.file

let numeric_core path = in_lib_dir [ "numerics"; "spline"; "optimize" ] path

(* ---------------- findings ---------------- *)

let finding_at (o : Effects.origin) ~rule ~message ~hint =
  { Finding.file = o.file; line = o.line; col = o.col; rule; message; hint }

let describe_exn name =
  if String.equal name Effects.dynamic_raise then
    "an exception value only known at runtime"
  else name

let root_matches roots (d : Callgraph.def) =
  d.Callgraph.public
  && (List.exists
        (fun pat ->
          let n = String.length pat in
          if n > 0 && Char.equal pat.[n - 1] '.' then
            String.length d.Callgraph.id > n
            && String.equal (String.sub d.Callgraph.id 0 n) pat
          else String.equal d.Callgraph.id pat)
        roots
     || not (in_lib d.Callgraph.path))

let check_graph ~roots graph (eff : Effects.result) =
  let findings = ref [] in
  let seen = Hashtbl.create 64 in
  let emit key f =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      findings := f :: !findings
    end
  in
  let defs = Callgraph.defs graph in
  (* R10: exception escape from the declared roots. *)
  List.iter
    (fun (d : Callgraph.def) ->
      if root_matches roots d then
        match eff.Effects.caps_of d.Callgraph.id with
        | None -> ()
        | Some caps ->
          Effects.Names.iter
            (fun name (o : Effects.origin) ->
              if not (String.equal name Effects.robust_error) then
                emit
                  ("R10", o.file, o.line, o.col, name)
                  (finding_at o ~rule:"R10"
                     ~message:
                       (Printf.sprintf
                          "%s raised here can escape the typed-error entry point %s \
                           without becoming a Robust.Error"
                          (describe_exn name) d.Callgraph.id)
                     ~hint:
                       "convert at the boundary (Robust.Error.raise_error / of_exn), catch \
                        it on the path, or suppress here with the reason it cannot fire"))
            caps.Effects.raises)
    defs;
  (* R11: nondeterminism reachable from Parallel task closures. *)
  List.iter
    (fun (t : Effects.task) ->
      let site = Printf.sprintf "%s:%d" t.Effects.site.Effects.file t.Effects.site.Effects.line in
      let caps = t.Effects.caps in
      let cap_finding what (o : Effects.origin) message hint =
        if not (audited_origin o) then
          emit ("R11", o.file, o.line, o.col, what) (finding_at o ~rule:"R11" ~message ~hint)
      in
      Option.iter
        (fun o ->
          cap_finding "mutates" o
            (Printf.sprintf
               "module-level mutable state is written here, inside the parallel task \
                dispatched at %s: results would depend on domain scheduling"
               site)
            "make the state per-chunk (each task owns its output slot), or move the \
             write outside the fan-out")
        caps.Effects.mutates;
      Option.iter
        (fun o ->
          cap_finding "rng" o
            (Printf.sprintf
               "the ambient Random generator is read here, inside the parallel task \
                dispatched at %s: draws depend on domain interleaving"
               site)
            "derive one Numerics.Rng.split substream per chunk before dispatch and pass \
             it in explicitly")
        caps.Effects.rng;
      Option.iter
        (fun o ->
          cap_finding "clock" o
            (Printf.sprintf
               "a raw clock is read here, inside the parallel task dispatched at %s: \
                values differ run to run"
               site)
            "time through Obs.Span / Obs.Clock (mockable and domain-safe), outside the \
             task body")
        caps.Effects.clock;
      Effects.Names.iter
        (fun name (o : Effects.origin) ->
          if not (String.equal name Effects.robust_error) && not (audited_origin o) then
            emit
              ("R11", o.file, o.line, o.col, name)
              (finding_at o ~rule:"R11"
                 ~message:
                   (Printf.sprintf
                      "%s raised here can escape the parallel task dispatched at %s: an \
                       untyped failure cancels sibling chunks in scheduling order"
                      (describe_exn name) site)
                 ~hint:
                   "raise Robust.Error (captured deterministically per index by \
                    parallel_map_result) or handle it inside the task"))
        caps.Effects.raises)
    eff.Effects.tasks;
  (* R12: purity of the numeric core. *)
  List.iter
    (fun (d : Callgraph.def) ->
      if numeric_core d.Callgraph.path then
        match eff.Effects.caps_of d.Callgraph.id with
        | None -> ()
        | Some caps ->
          let cap_finding what (o : Effects.origin) message hint =
            if not (audited_origin o) then
              emit ("R12", o.file, o.line, o.col, what)
                (finding_at o ~rule:"R12" ~message ~hint)
          in
          Option.iter
            (fun o ->
              cap_finding "io" o
                (Printf.sprintf
                   "IO performed here is reachable from the numeric kernel %s"
                   d.Callgraph.id)
                "hot kernels must stay pure: return data and let bin/ or lib/dataio do \
                 the IO")
            caps.Effects.io;
          Option.iter
            (fun o ->
              cap_finding "rng" o
                (Printf.sprintf
                   "the ambient Random generator read here is reachable from the numeric \
                    kernel %s"
                   d.Callgraph.id)
                "take an explicit Numerics.Rng.t argument instead")
            caps.Effects.rng;
          Option.iter
            (fun o ->
              cap_finding "clock" o
                (Printf.sprintf
                   "a raw clock read here is reachable from the numeric kernel %s"
                   d.Callgraph.id)
                "timing belongs in Obs.Clock; kernels must not read time")
            caps.Effects.clock)
    defs;
  List.rev !findings

(* ---------------- drivers ---------------- *)

let check_sources ?(disabled = []) ?(roots = default_roots) sources =
  let disabled = List.filter_map Rules.normalize_id disabled in
  let off rule = List.exists (String.equal rule) disabled in
  let graph, errors = Callgraph.build sources in
  let eff = Effects.analyze graph in
  let raw = check_graph ~roots graph eff in
  (* Per-site suppressions, same syntax and nearby-line semantics as the
     per-file pass. Malformed suppressions are already reported (R0) by
     the per-file pass over the same tree, so they are not re-reported
     here. *)
  let supps_by_file = Hashtbl.create 16 in
  List.iter
    (fun (path, source) ->
      if Filename.check_suffix path ".ml" then
        let supps, _bad = Suppress.scan source in
        Hashtbl.replace supps_by_file path supps)
    sources;
  let keep (f : Finding.t) =
    (not (off f.Finding.rule))
    &&
    match Hashtbl.find_opt supps_by_file f.Finding.file with
    | None -> true
    | Some supps ->
      not
        (List.exists
           (fun s -> Suppress.covers s ~rule:f.Finding.rule ~line:f.Finding.line)
           supps)
  in
  let n_defs = List.length (Callgraph.defs graph) in
  {
    findings = List.sort Finding.compare (List.filter keep raw);
    files =
      List.length (List.filter (fun (p, _) -> Filename.check_suffix p ".ml") sources);
    defs = n_defs;
    iterations = eff.Effects.iterations;
    errors;
  }

let check_paths ?disabled ?roots paths =
  match Lint.collect_files paths with
  | Error msg ->
    { findings = []; files = 0; defs = 0; iterations = 0; errors = [ ("", msg) ] }
  | Ok files ->
    let sources, read_errors =
      List.fold_left
        (fun (srcs, errs) file ->
          match In_channel.with_open_bin file In_channel.input_all with
          | source -> ((file, source) :: srcs, errs)
          | exception Sys_error msg -> (srcs, (file, msg) :: errs))
        ([], []) files
    in
    let result = check_sources ?disabled ?roots (List.rev sources) in
    { result with errors = result.errors @ List.rev read_errors }
