(** Whole-program module-qualified def/use graph over the repository's
    OCaml sources, built from the Parsetree alone (no type information).

    Every top-level [let] (including those nested in [module X = struct],
    functor bodies, and recursive groups) becomes a {!def} with a
    fully-qualified id such as ["Numerics.Linalg.solve"]. Qualification
    follows dune's wrapping convention: [lib/<dir>/<file>.ml] defines
    [<LibModule>.<File>] (or [<LibModule>] itself when the file name
    matches the library, as [lib/parallel/parallel.ml] = [Parallel]);
    files outside [lib/] qualify as just [<File>].

    Reference resolution is name-based and deliberately conservative:
    [open]/[include] (both file-level and local), module aliases
    ([module L = Linalg]), functor bodies (members of [F(X)] resolve into
    [F]'s body), and local shadowing (a [let]-bound or parameter name
    hides the same-named sibling definition) are all handled; anything
    that cannot be resolved to a definition in the graph is reported as
    an {!target.External} so the effect analysis can apply its intrinsic
    table. *)

type target =
  | Def of string  (** id of a definition in this graph *)
  | External of string  (** dotted name of an unresolved reference *)

type def = {
  id : string;  (** fully qualified, e.g. "Deconv.Solver.solve_robust" *)
  path : string;  (** source file, as given to {!build} *)
  line : int;
  col : int;
  public : bool;
      (** exported: listed in the paired [.mli] (recursively for nested
          module signatures), or everything when no [.mli] exists *)
  body : Parsetree.expression;
}

(** Per-definition resolution scope: the enclosing module path plus the
    opens, aliases and includes visible at the definition site. *)
type scope

type t

val build : (string * string) list -> t * (string * string) list
(** [build sources] parses every [(path, source)] pair ([.ml] defines
    definitions; a [.mli] contributes the export list of its [.ml]) and
    returns the graph plus [(path, message)] parse errors. Files that do
    not parse contribute no definitions but do not abort the build. *)

val defs : t -> def list
(** All definitions, sorted by id. *)

val find : t -> string -> def option

val scope_of : t -> string -> scope option
(** The resolution scope of a definition id. *)

val exception_name : t -> scope -> Longident.t -> string
(** Canonical name of an exception constructor as referenced from
    [scope]: resolved against the graph's declared exceptions (so
    [Error] inside [lib/robust/error.ml] and [Robust.Error.Error] from
    outside both canonicalize to ["Robust.Error.Error"]); unresolved
    constructors keep their dotted spelling. *)

val resolve :
  t -> scope -> locals:(string -> bool) -> Longident.t -> target
(** Resolve a value reference. [locals] answers whether a bare name is
    bound in the expression's local scope (parameters, [let]s, pattern
    variables) — such names shadow module-level definitions. *)

val module_prefix_of_path : string -> string
(** The qualification prefix the graph assigns to a file path (exposed
    for the policy layer's root matching and for tests). *)

val pattern_vars : Parsetree.pattern -> string list
(** Every variable bound by a pattern (shared with the effect walker so
    both layers agree on what shadows what). *)

val flatten_lid : Longident.t -> string list
(** ["A.B.c"] as [["A"; "B"; "c"]]; functor applications keep only the
    functor part. *)
