type t = { rules : string list; reason : string; first_line : int; last_line : int }

type malformed = { line : int; why : string }

let marker = "lint: allow"

let starts_with source i needle =
  let n = String.length needle in
  i + n <= String.length source && String.equal (String.sub source i n) needle

let index_from_opt source pos needle =
  let len = String.length source in
  let rec go i = if i >= len then None else if starts_with source i needle then Some i else go (i + 1) in
  go pos

let is_sep tok =
  List.exists (String.equal tok)
    [ "\xe2\x80\x94" (* em dash *); "\xe2\x80\x93" (* en dash *); "--"; "-"; ":" ]

let split_tokens body =
  String.split_on_char ' '
    (String.map (fun c -> match c with '\n' | '\r' | '\t' | ',' | ';' -> ' ' | c -> c) body)
  |> List.filter (fun s -> not (String.equal s ""))

(* Split the comment body into (rule ids, reason). *)
let parse_body body =
  let rec take_rules acc = function
    | tok :: rest -> (
      match Rules.normalize_id tok with
      | Some id -> take_rules (id :: acc) rest
      | None -> (List.rev acc, tok :: rest))
    | [] -> (List.rev acc, [])
  in
  let rules, rest = take_rules [] (split_tokens body) in
  let reason =
    match rest with
    | sep :: more when is_sep sep -> String.concat " " more
    | more -> String.concat " " more
  in
  (rules, String.trim reason)

(* A lightweight lexer over the raw source so the marker is only
   recognized inside comments — never inside string or char literals
   (which is where the linter's own documentation of the syntax lives). *)
let scan source =
  let len = String.length source in
  let supps = ref [] and bad = ref [] in
  let line = ref 1 in
  let count_lines from upto =
    for k = from to upto - 1 do
      if k < len && Char.equal source.[k] '\n' then incr line
    done
  in
  (* Skip a string literal starting at the opening quote; returns the
     position just past the closing quote. *)
  let skip_string i =
    let j = ref (i + 1) in
    let finished = ref false in
    while (not !finished) && !j < len do
      (match source.[!j] with
      | '\\' ->
        (* Skip the escaped character too; an escaped newline (string
           continuation) still ends a physical line. *)
        if !j + 1 < len && Char.equal source.[!j + 1] '\n' then incr line;
        incr j
      | '"' -> finished := true
      | '\n' -> incr line
      | _ -> ());
      incr j
    done;
    !j
  in
  (* Skip a quoted-string literal {id| ... |id}; [i] points at '{'.
     Returns [None] if this is not actually a quoted string. *)
  let skip_quoted_string i =
    let j = ref (i + 1) in
    while
      !j < len
      && (match source.[!j] with 'a' .. 'z' | '_' -> true | _ -> false)
    do
      incr j
    done;
    if !j < len && Char.equal source.[!j] '|' then begin
      let id = String.sub source (i + 1) (!j - (i + 1)) in
      let closing = "|" ^ id ^ "}" in
      match index_from_opt source (!j + 1) closing with
      | Some close ->
        count_lines i (close + String.length closing);
        Some (close + String.length closing)
      | None -> Some len
    end
    else None
  in
  let handle_marker i =
    let after = i + String.length marker in
    match index_from_opt source after "*)" with
    | None ->
      bad := { line = !line; why = "unterminated suppression comment" } :: !bad;
      after
    | Some close ->
      let body = String.sub source after (close - after) in
      let rules, reason = parse_body body in
      let first_line = !line in
      count_lines i close;
      (if List.length rules = 0 then
         bad := { line = first_line; why = "suppression names no known rule id" } :: !bad
       else if String.equal reason "" then
         bad :=
           {
             line = first_line;
             why = "suppression gives no reason (use '(* lint: allow R_ -- why *)')";
           }
           :: !bad
       else
         supps := { rules; reason; first_line; last_line = !line } :: !supps);
      close + 2
  in
  let i = ref 0 in
  let depth = ref 0 in
  while !i < len do
    let c = source.[!i] in
    if Char.equal c '\n' then begin
      incr line;
      incr i
    end
    else if Char.equal c '"' then i := skip_string !i
    else if starts_with source !i "(*" then begin
      incr depth;
      i := !i + 2
    end
    else if starts_with source !i "*)" then begin
      if !depth > 0 then decr depth;
      i := !i + 2
    end
    else if !depth > 0 then
      if starts_with source !i marker then begin
        i := handle_marker !i;
        (* handle_marker consumed through the closing delimiter *)
        if !depth > 0 then decr depth
      end
      else incr i
    else if Char.equal c '{' then begin
      match skip_quoted_string !i with Some j -> i := j | None -> incr i
    end
    else if Char.equal c '\'' then
      (* Char literal or type variable: treat '\..' and 'x' as literals so
         '"' does not open a string; anything else is a type variable. *)
      if !i + 1 < len && Char.equal source.[!i + 1] '\\' then begin
        match index_from_opt source (!i + 2) "'" with
        | Some close when close - !i <= 6 -> i := close + 1
        | _ -> incr i
      end
      else if !i + 2 < len && Char.equal source.[!i + 2] '\'' then i := !i + 3
      else incr i
    else incr i
  done;
  (List.rev !supps, List.rev !bad)

let covers t ~rule ~line =
  List.exists (String.equal rule) t.rules && line >= t.first_line && line <= t.last_line + 1
