type scope =
  | Everywhere
  | Lib_only
  | Except_obs
  | Except_concurrency
  | Except_atomic
  | Except_quality
  | Check_only
      (** interprocedural: enforced by the whole-program [deconv-lint check]
          pass (callgraph + effect fixpoint), not the per-file walker *)

type t = { id : string; title : string; scope : scope; description : string }

let all =
  [
    {
      id = "R0";
      title = "malformed suppression";
      scope = Everywhere;
      description =
        "A '(* lint: allow ... *)' comment that names no known rule or gives no \
         reason. Suppressions must state why the rule does not apply — silent \
         rule disabling is itself a finding.";
    };
    {
      id = "R1";
      title = "NaN-unsafe float comparison";
      scope = Everywhere;
      description =
        "Polymorphic =, <>, compare, min or max applied to float-looking \
         operands. Polymorphic equality is false for NaN = NaN and the \
         polymorphic min/max silently propagate or drop NaN depending on \
         argument order; deconvolution residuals and condition numbers can be \
         NaN. Use Float.equal / Float.compare / Float.min / Float.max or an \
         explicit tolerance.";
    };
    {
      id = "R2";
      title = "catch-all exception handler";
      scope = Lib_only;
      description =
        "'try ... with _ ->' (or a variable pattern that never re-raises) in \
         library code. Catch-alls swallow typed Robust.Error propagation and \
         programming errors (Assert_failure, Invalid_argument) alike. Match \
         the specific exceptions and re-raise the rest.";
    };
    {
      id = "R3";
      title = "unguarded partial access";
      scope = Everywhere;
      description =
        "List.hd, List.tl or Option.get (which raise on empty input), or \
         Array.get applied to an array literal. Pattern-match instead so the \
         empty case is handled explicitly.";
    };
    {
      id = "R4";
      title = "magic paper constant";
      scope = Lib_only;
      description =
        "A float literal equal to one of the paper's parameters (phi_sst mean \
         0.15, CV 0.13, the 40/60 SW/ST daughter-volume split, the 150-minute \
         mean cycle) outside lib/cellpop/params.ml. Literals inside array/list \
         data tables are exempt (digitized figure data). Reference the named \
         constant in Params instead, so eq. 11 and the conservation \
         constraints can never drift apart. (CV_cycle = 0.1 is deliberately \
         not in the set: the value is too generic to lint without drowning in \
         tolerance literals.)";
    };
    {
      id = "R5";
      title = "stdout/stderr side effect in library code";
      scope = Lib_only;
      description =
        "print_string / Printf.printf / prerr_* / Format.printf or a bare \
         stdout/stderr channel in lib/. Library code must return strings or \
         write to an explicit out_channel/formatter supplied by the caller; \
         only bin/ and bench/ own the process's channels.";
    };
    {
      id = "R6";
      title = "ignored result value";
      scope = Everywhere;
      description =
        "'ignore' applied to an expression that syntactically carries a \
         result (an Ok/Error construction, a Result.* call, or a call to a \
         *_result / validate / solve_robust function). Discarding these drops \
         typed Robust.Error values on the floor; match on the result or log \
         the error.";
    };
    {
      id = "R7";
      title = "raw timing call outside lib/obs";
      scope = Except_obs;
      description =
        "Sys.time, Unix.gettimeofday, Unix.time or Unix.times referenced \
         outside lib/obs. Sys.time is processor time and was once mislabeled \
         wall-clock in Robust.Report.seconds; timing must flow through \
         Obs.Clock.now so it is monotonic, wall-clock, and mockable in tests. \
         Only lib/obs (the clock implementation itself) may read the real \
         clock.";
    };
    {
      id = "R8";
      title = "raw concurrency primitive outside the concurrency layers";
      scope = Except_concurrency;
      description =
        "Domain.spawn, Mutex.* or Condition.* referenced outside lib/parallel \
         and lib/obs. Ad-hoc domain spawning breaks the deterministic chunk \
         schedule (results must be bit-identical at every --jobs setting) and \
         ad-hoc locks invite deadlocks against the pool's own mutex. Fan work \
         out through Parallel.parallel_for / parallel_map; only the pool \
         implementation (lib/parallel) and the observability layer's guards \
         (lib/obs) may touch the raw primitives.";
    };
    {
      id = "R9";
      title = "raw output channel on a final path outside the atomic writer";
      scope = Except_atomic;
      description =
        "open_out / open_out_bin / open_out_gen (or Out_channel.open_* / \
         with_open_*) in library code outside lib/dataio/atomic_file.ml. A raw \
         open truncates the destination immediately, so a crash mid-write \
         leaves a torn file — fatal for the checkpoint journal, kernel dumps \
         and trajectory records that --resume and the bench gate re-read. \
         Route final-path writes through Dataio.Atomic_file.write (same-dir \
         temp file + fsync + rename); only the atomic writer itself may open \
         an output channel.";
    };
    {
      id = "R10";
      title = "exception can escape a typed-error entry point";
      scope = Check_only;
      description =
        "An explicit raise site (raise/failwith/invalid_arg or a declared \
         exception constructor) whose exception can propagate, through the \
         call graph, out of one of the library's declared robust entry points \
         (the Pipeline/Batch/Bootstrap/solve_robust surface) without being \
         caught and converted to Robust.Error. The validate-repair-retry-\
         degrade cascade is a whole-program guarantee: one tunneling raise \
         turns a typed, reportable failure into a crash. Convert at the \
         boundary (Robust.Error.raise_error / Robust.Error.of_exn) or \
         suppress with a reason explaining why the exception cannot actually \
         reach the entry point.";
    };
    {
      id = "R11";
      title = "nondeterminism reachable from a parallel task body";
      scope = Check_only;
      description =
        "Code reachable from a closure handed to Parallel.parallel_for / \
         parallel_map / parallel_map_result writes module-level mutable \
         state, reads the ambient Random generator or a raw clock, or can \
         raise an exception other than Robust.Error. Task bodies run on \
         worker domains: unsynchronized global writes and ambient reads make \
         results depend on domain count and scheduling — exactly what the \
         bit-for-bit jobs-independence tests forbid — and an untyped raise \
         cancels sibling chunks in a scheduling-dependent order. State \
         guarded inside lib/parallel and lib/obs (the audited layers) is \
         exempt.";
    };
    {
      id = "R12";
      title = "impure numeric kernel";
      scope = Check_only;
      description =
        "A function defined in the numeric core (lib/numerics, lib/spline, \
         lib/optimize) can, transitively, perform IO, read the ambient \
         Random generator, or read a raw clock. The hot kernels must stay \
         referentially transparent so they can be memoized, benchmarked, and \
         fanned out across domains freely; observability flows through \
         Obs (whose clock and sinks are the audited exception). Explicit \
         Numerics.Rng substreams passed as arguments are, by construction, \
         not ambient and do not trip this rule.";
    };
    {
      id = "R13";
      title = "raw GC/procfs introspection outside lib/obs";
      scope = Except_obs;
      description =
        "Gc.stat, Gc.quick_stat, Gc.counters, Gc.allocated_bytes or a \
         \"/proc\" path literal referenced outside lib/obs. Runtime \
         introspection is telemetry and belongs to the resource sampler \
         (Obs.Resource): Gc.stat forces a full major collection wherever it \
         is called, per-domain counters silently measure the wrong domain, \
         and procfs reads are Linux-only — the sampler centralizes the cheap \
         variants and the portability fallback exactly once (same shape as \
         R7's clock rule).";
    };
    {
      id = "R14";
      title = "quality statistic computed outside the quality layers";
      scope = Except_quality;
      description =
        "A solution-quality statistic primitive (Linalg.condition_spd, \
         Stats.runs_z, Stats.moment_z, Stats.normality_z) referenced in \
         library code outside lib/numerics and lib/core. Quality statistics \
         are computed in exactly one place — Quality/Diagnostics over the \
         numerics kernels — and leave the library only as Obs.Diag events \
         on the trace stream, where [diagnose] and [trace diff] can see \
         them. A per-module reimplementation (or an ad-hoc Printf of a \
         condition number) forks the definition: the report card and the \
         module would disagree about the same solve. Call into Quality, or \
         emit an Obs.Diag record and let the CLI render it. The rule also \
         confines the factorization internals (Linalg.jacobi_eigen, \
         Linalg.generalized_eigen_spd, Linalg.lower_solve, \
         Linalg.lower_transpose_solve) to lib/numerics and lib/optimize: \
         lib/core consumes decompositions through Optimize.Spectral / \
         Optimize.Ridge, never by calling the eigensolver or triangular \
         substitutions directly — a raw call there would bypass the \
         anchoring, caching and telemetry those wrappers own.";
    };
  ]

let normalize_id id =
  let up = String.uppercase_ascii (String.trim id) in
  if List.exists (fun r -> String.equal r.id up) all then Some up else None

let find id =
  match normalize_id id with
  | None -> None
  | Some up -> List.find_opt (fun r -> String.equal r.id up) all
