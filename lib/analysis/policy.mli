(** The interprocedural rules (R10–R12) checked by [deconv-lint check]:
    a {!Callgraph} + {!Effects} pass enforcing the repository's two
    whole-program invariants — the typed-error cascade and bit-for-bit
    jobs-independent parallelism — plus the purity of the numeric core.

    {b R10 (exception escape).} Against a set of declared roots (by
    default the robust public surface: [Deconv.Pipeline], [Deconv.Batch],
    [Deconv.Bootstrap], [Deconv.Solver.solve_robust], [Deconv.Chaos] —
    plus every public definition of a file that lives outside [lib/],
    so scratch files are checked wholesale): any exception other than
    [Robust.Error.Error] that can propagate out of a root uncaught is a
    finding, anchored at the originating raise site.

    {b R11 (domain safety).} Every closure handed to a [Parallel]
    fan-out entry point is audited: module-level mutation, ambient
    RNG/clock reads, and non-[Robust.Error] raises reachable from the
    task body are findings, anchored at the offending site. Capabilities
    originating inside [lib/parallel] and [lib/obs] (the audited,
    synchronized layers) are exempt.

    {b R12 (numeric-core purity).} Definitions in [lib/numerics],
    [lib/spline] and [lib/optimize] must not reach IO, ambient RNG or
    raw clocks (again excepting origins inside [lib/obs], whose mockable
    clock is the sanctioned instrument).

    Findings honor the same per-site suppression comments (rule id plus
    reason, anchored at the originating site), [--disable] ids and
    output formats as the per-file rules. *)

type check_result = {
  findings : Finding.t list;  (** sorted, suppressions already applied *)
  files : int;  (** number of [.ml] files analyzed *)
  defs : int;  (** definitions in the call graph *)
  iterations : int;  (** effect-fixpoint sweeps until stable *)
  errors : (string * string) list;  (** (path, message) parse/IO errors *)
}

val default_roots : string list
(** R10's declared roots. A pattern ending in ['.'] matches every public
    definition under that prefix; anything else must match an id
    exactly. *)

val check_sources :
  ?disabled:string list ->
  ?roots:string list ->
  (string * string) list ->
  check_result
(** Analyze in-memory [(path, source)] pairs (tests use this; [.mli]
    sources contribute export lists). *)

val check_paths :
  ?disabled:string list -> ?roots:string list -> string list -> check_result
(** Analyze files/directories on disk ([deconv-lint check]'s driver). *)
