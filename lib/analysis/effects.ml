open Parsetree

type origin = { file : string; line : int; col : int }

module Names = Map.Make (String)
module Sset = Set.Make (String)

type caps = {
  raises : origin Names.t;
  mutates : origin option;
  rng : origin option;
  clock : origin option;
  io : origin option;
}

type task = { owner : string; site : origin; caps : caps }

type result = {
  caps_of : string -> caps option;
  tasks : task list;
  iterations : int;
}

let robust_error = "Robust.Error.Error"
let dynamic_raise = "<dynamic>"

let empty =
  { raises = Names.empty; mutates = None; rng = None; clock = None; io = None }

let is_empty c =
  Names.is_empty c.raises && c.mutates = None && c.rng = None && c.clock = None
  && c.io = None

(* ---------------- capability lattice ops ---------------- *)

let keep_first a b = match a with Some _ -> a | None -> b

let union a b =
  {
    raises = Names.union (fun _ x _ -> Some x) a.raises b.raises;
    mutates = keep_first a.mutates b.mutates;
    rng = keep_first a.rng b.rng;
    clock = keep_first a.clock b.clock;
    io = keep_first a.io b.io;
  }

let same_shape a b =
  Names.cardinal a.raises = Names.cardinal b.raises
  && Names.for_all (fun k _ -> Names.mem k b.raises) a.raises
  && Option.is_some a.mutates = Option.is_some b.mutates
  && Option.is_some a.rng = Option.is_some b.rng
  && Option.is_some a.clock = Option.is_some b.clock
  && Option.is_some a.io = Option.is_some b.io

(* What an enclosing stack of [try]s catches around a program point. *)
type mask = { all : bool; caught : Sset.t }

let no_mask = { all = false; caught = Sset.empty }

let mask_union m ~all ~caught =
  { all = m.all || all; caught = Sset.union m.caught caught }

let apply_mask m caps =
  if m.all then { caps with raises = Names.empty }
  else { caps with raises = Names.filter (fun k _ -> not (Sset.mem k m.caught)) caps.raises }

(* ---------------- intrinsics ---------------- *)

let clock_names =
  [ "Sys.time"; "Unix.gettimeofday"; "Unix.time"; "Unix.times"; "Unix.sleep"; "Unix.sleepf" ]

let io_names =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char"; "print_int";
    "print_float"; "print_bytes"; "prerr_string"; "prerr_endline"; "prerr_newline";
    "prerr_char"; "prerr_int"; "prerr_float"; "prerr_bytes"; "read_line"; "read_int";
    "read_int_opt"; "read_float"; "read_float_opt"; "output_string"; "output_char";
    "output_bytes"; "output_byte"; "output_value"; "output_binary_int"; "input_line";
    "input_char"; "input_value"; "input_byte"; "really_input"; "really_input_string";
    "open_out"; "open_out_bin"; "open_out_gen"; "open_in"; "open_in_bin"; "open_in_gen";
    "close_out"; "close_in"; "flush"; "flush_all"; "stdout"; "stderr"; "stdin";
    "Printf.printf"; "Printf.eprintf"; "Printf.fprintf"; "Format.printf"; "Format.eprintf";
    "Format.fprintf"; "Format.print_string"; "Format.print_newline"; "Sys.command";
    "Sys.remove"; "Sys.rename"; "Sys.readdir"; "Sys.getenv"; "Sys.getenv_opt";
    "Sys.file_exists"; "Sys.is_directory"; "Sys.chdir"; "Sys.getcwd"; "Sys.mkdir";
    "Filename.temp_file"; "Filename.open_temp_file";
  ]

let io_prefixes = [ "In_channel."; "Out_channel."; "Unix." ]

let raising_intrinsics =
  [
    ("failwith", "Failure");
    ("Stdlib.failwith", "Failure");
    ("invalid_arg", "Invalid_argument");
    ("Stdlib.invalid_arg", "Invalid_argument");
    ("Robust.Error.raise_error", robust_error);
    ("Error.raise_error", robust_error);
  ]

(* Mutating stdlib calls whose *first* argument is the mutated value: if
   that argument is a reference to a module-level definition, the call
   writes global state. *)
let mutator_names =
  [
    ":="; "incr"; "decr"; "Array.set"; "Array.unsafe_set"; "Array.fill"; "Bytes.set";
    "Bytes.unsafe_set"; "Bytes.fill"; "Hashtbl.add"; "Hashtbl.replace"; "Hashtbl.remove";
    "Hashtbl.reset"; "Hashtbl.clear"; "Atomic.set"; "Atomic.exchange";
    "Atomic.compare_and_set"; "Atomic.incr"; "Atomic.decr"; "Queue.add"; "Queue.push";
    "Queue.pop"; "Queue.take"; "Queue.clear"; "Queue.transfer"; "Stack.push"; "Stack.pop";
    "Stack.clear"; "Buffer.add_string"; "Buffer.add_char"; "Buffer.add_bytes";
    "Buffer.add_substring"; "Buffer.clear"; "Buffer.reset"; "Buffer.truncate";
  ]

(* Domain.spawn is in the list because a spawned body IS a task body:
   the sampler domain in lib/obs and the pool workers in lib/parallel
   are the audited spawners, and anything else (R8 already confines the
   primitive) gets the same nondeterminism audit as a pool task. *)
let fanout_names =
  [
    "Parallel.parallel_for"; "Parallel.parallel_map"; "Parallel.parallel_map_result";
    "Parallel.Pool.parallel_for"; "Parallel.Pool.parallel_map";
    "Parallel.Pool.parallel_map_result"; "Domain.spawn";
  ]

let starts_with ~prefix s =
  let n = String.length prefix in
  String.length s >= n && String.equal (String.sub s 0 n) prefix

(* ---------------- extraction ---------------- *)

type node = { direct : caps; edges : (string * mask) list }

type task_meta = { t_owner : string; t_site : origin; t_node : string }

type st = {
  graph : Callgraph.t;
  scope : Callgraph.scope;
  path : string;
  mutable acc_raises : origin Names.t;
  mutable acc_mutates : origin option;
  mutable acc_rng : origin option;
  mutable acc_clock : origin option;
  mutable acc_io : origin option;
  mutable acc_edges : (string * mask) list;
  nodes : (string, node) Hashtbl.t;
  tasks : task_meta list ref;
  owner : string;
}

let origin_of st loc =
  let pos = loc.Location.loc_start in
  {
    file = st.path;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol + 1;
  }

let snapshot st =
  {
    raises = st.acc_raises;
    mutates = st.acc_mutates;
    rng = st.acc_rng;
    clock = st.acc_clock;
    io = st.acc_io;
  }

let add_raise st mask name o =
  let masked =
    if String.equal name dynamic_raise then mask.all
    else mask.all || Sset.mem name mask.caught
  in
  if (not masked) && not (Names.mem name st.acc_raises) then
    st.acc_raises <- Names.add name o st.acc_raises

let add_cap st what o =
  match what with
  | `Mutates -> if st.acc_mutates = None then st.acc_mutates <- Some o
  | `Rng -> if st.acc_rng = None then st.acc_rng <- Some o
  | `Clock -> if st.acc_clock = None then st.acc_clock <- Some o
  | `Io -> if st.acc_io = None then st.acc_io <- Some o

let intrinsics st mask name o =
  (match List.assoc_opt name raising_intrinsics with
  | Some exn -> add_raise st mask exn o
  | None -> ());
  if List.exists (String.equal name) clock_names then add_cap st `Clock o
  else if List.exists (String.equal name) io_names then add_cap st `Io o
  else if starts_with ~prefix:"Random." name then add_cap st `Rng o
  else if List.exists (fun p -> starts_with ~prefix:p name) io_prefixes then
    add_cap st `Io o

let ident_of e = match e.pexp_desc with Pexp_ident { txt; _ } -> Some txt | _ -> None

let dotted lid = String.concat "." (Callgraph.flatten_lid lid)

(* The canonical name a [try]/raise constructor resolves to. *)
let exn_name st lid = Callgraph.exception_name st.graph st.scope lid

(* Classify the unguarded handler cases of a try/match-exception:
   (catches_all, caught constructor names, re-raising variable names). *)
let classify_handlers st cases =
  let all = ref false and caught = ref Sset.empty and reraise = ref Sset.empty in
  let rec pat_exns p =
    match p.ppat_desc with
    | Ppat_construct (lid, _) -> [ exn_name st lid.Location.txt ]
    | Ppat_or (a, b) -> pat_exns a @ pat_exns b
    | Ppat_alias (inner, _) | Ppat_constraint (inner, _) -> pat_exns inner
    | _ -> []
  in
  let rec catch_all_var p =
    match p.ppat_desc with
    | Ppat_any -> Some None
    | Ppat_var v -> Some (Some v.Location.txt)
    | Ppat_alias (inner, v) -> (
      match catch_all_var inner with Some _ -> Some (Some v.Location.txt) | None -> None)
    | Ppat_constraint (inner, _) -> catch_all_var inner
    | _ -> None
  in
  let reraises var body =
    let found = ref false in
    let expr self e =
      (match e.pexp_desc with
      | Pexp_apply (f, args) -> (
        match ident_of f with
        | Some (Longident.Lident ("raise" | "raise_notrace"))
        | Some (Longident.Ldot (Longident.Lident "Printexc", "raise_with_backtrace")) -> (
          match args with
          | (_, { pexp_desc = Pexp_ident { txt = Longident.Lident v; _ }; _ }) :: _
            when String.equal v var ->
            found := true
          | _ -> ())
        | _ -> ())
      | _ -> ());
      Ast_iterator.default_iterator.expr self e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.expr it body;
    !found
  in
  List.iter
    (fun case ->
      match case.pc_guard with
      | Some _ -> () (* a guarded handler may decline: it masks nothing *)
      | None -> (
        let p =
          match case.pc_lhs.ppat_desc with
          | Ppat_exception inner -> inner
          | _ -> case.pc_lhs
        in
        match catch_all_var p with
        | Some var -> (
          match var with
          | Some v when reraises v case.pc_rhs ->
            (* catch-everything that re-raises: a pass-through, masks
               nothing; remember the variable so its own [raise v] is
               not double-counted as a dynamic raise *)
            reraise := Sset.add v !reraise
          | _ -> all := true)
        | None -> List.iter (fun n -> caught := Sset.add n !caught) (pat_exns p)))
    cases;
  (!all, !caught, !reraise)

let rec walk st (locals : Sset.t) (reraise : Sset.t) (mask : mask) e =
  let recurse = walk st locals reraise mask in
  let reference lid loc =
    match Callgraph.resolve st.graph st.scope ~locals:(fun v -> Sset.mem v locals) lid with
    | Callgraph.Def id -> st.acc_edges <- (id, mask) :: st.acc_edges
    | Callgraph.External name -> intrinsics st mask name (origin_of st loc)
  in
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> reference txt e.pexp_loc
  | Pexp_apply (f, args) -> handle_apply st locals reraise mask e f args
  | Pexp_try (body, cases) ->
    let all, caught, reraise_vars = classify_handlers st cases in
    walk st locals reraise (mask_union mask ~all ~caught) body;
    List.iter
      (fun case ->
        let bound = Sset.of_list (Callgraph.pattern_vars case.pc_lhs) in
        let locals' = Sset.union bound locals in
        let reraise' = Sset.union (Sset.inter reraise_vars bound) reraise in
        Option.iter (walk st locals' reraise' mask) case.pc_guard;
        walk st locals' reraise' mask case.pc_rhs)
      cases
  | Pexp_match (scrut, cases) ->
    let exn_cases =
      List.filter
        (fun c -> match c.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false)
        cases
    in
    let all, caught, reraise_vars =
      if exn_cases = [] then (false, Sset.empty, Sset.empty)
      else classify_handlers st exn_cases
    in
    walk st locals reraise (mask_union mask ~all ~caught) scrut;
    List.iter
      (fun case ->
        let bound = Sset.of_list (Callgraph.pattern_vars case.pc_lhs) in
        let locals' = Sset.union bound locals in
        let reraise' = Sset.union (Sset.inter reraise_vars bound) reraise in
        Option.iter (walk st locals' reraise' mask) case.pc_guard;
        walk st locals' reraise' mask case.pc_rhs)
      cases
  | Pexp_let (rec_flag, bindings, body) ->
    let bound =
      Sset.of_list (List.concat_map (fun vb -> Callgraph.pattern_vars vb.pvb_pat) bindings)
    in
    let inner = Sset.union bound locals in
    let for_defs = match rec_flag with Asttypes.Recursive -> inner | _ -> locals in
    List.iter (fun vb -> walk st for_defs reraise mask vb.pvb_expr) bindings;
    walk st inner reraise mask body
  | Pexp_fun (_, default, pat, body) ->
    Option.iter recurse default;
    walk st (Sset.union (Sset.of_list (Callgraph.pattern_vars pat)) locals) reraise mask body
  | Pexp_function cases ->
    List.iter
      (fun case ->
        let locals' = Sset.union (Sset.of_list (Callgraph.pattern_vars case.pc_lhs)) locals in
        Option.iter (walk st locals' reraise mask) case.pc_guard;
        walk st locals' reraise mask case.pc_rhs)
      cases
  | Pexp_for (pat, e1, e2, _, body) ->
    recurse e1;
    recurse e2;
    walk st (Sset.union (Sset.of_list (Callgraph.pattern_vars pat)) locals) reraise mask body
  | Pexp_setfield (target, _, value) ->
    (match ident_of target with
    | Some lid -> (
      match
        Callgraph.resolve st.graph st.scope ~locals:(fun v -> Sset.mem v locals) lid
      with
      | Callgraph.Def _ -> add_cap st `Mutates (origin_of st e.pexp_loc)
      | Callgraph.External _ -> ())
    | None -> recurse target);
    recurse value
  | Pexp_assert inner ->
    (* Assert_failure is a programming invariant, not a tracked effect;
       still walk the condition for calls it makes. *)
    recurse inner
  | _ ->
    let it =
      {
        Ast_iterator.default_iterator with
        expr = (fun _ child -> walk st locals reraise mask child);
      }
    in
    Ast_iterator.default_iterator.expr it e

and handle_apply st locals reraise mask e f args =
  let resolve_value lid =
    Callgraph.resolve st.graph st.scope ~locals:(fun v -> Sset.mem v locals) lid
  in
  let f_name =
    match ident_of f with
    | Some lid -> (
      match resolve_value lid with
      | Callgraph.Def id -> Some (`Def (id, lid))
      | Callgraph.External n -> Some (`External (n, lid)))
    | None -> None
  in
  let walk_args () = List.iter (fun (_, a) -> walk st locals reraise mask a) args in
  let raise_like () =
    match args with
    | (_, arg) :: rest ->
      (match arg.pexp_desc with
      | Pexp_construct (lid, payload) ->
        add_raise st mask (exn_name st lid.Location.txt) (origin_of st arg.pexp_loc);
        Option.iter (walk st locals reraise mask) payload
      | Pexp_ident { txt = Longident.Lident v; _ }
        when Sset.mem v reraise ->
        (* the pass-through re-raise of a caught exception: already
           accounted by the enclosing handler's (non-)mask *)
        ()
      | _ ->
        add_raise st mask dynamic_raise (origin_of st arg.pexp_loc);
        walk st locals reraise mask arg);
      List.iter (fun (_, a) -> walk st locals reraise mask a) rest
    | [] -> ()
  in
  match ident_of f with
  | Some (Longident.Lident ("raise" | "raise_notrace"))
  | Some (Longident.Ldot (Longident.Lident "Stdlib", ("raise" | "raise_notrace")))
  | Some (Longident.Ldot (Longident.Lident "Printexc", "raise_with_backtrace")) ->
    raise_like ()
  | _ -> (
    (* Mutation of module-level state through a known mutator. *)
    let mutator_name =
      match f_name with
      | Some (`External (n, _)) when List.exists (String.equal n) mutator_names -> Some ()
      | _ -> (
        match ident_of f with
        | Some lid when List.exists (String.equal (dotted lid)) mutator_names -> Some ()
        | _ -> None)
    in
    (match (mutator_name, args) with
    | Some (), (_, target) :: _ -> (
      match ident_of target with
      | Some lid -> (
        match resolve_value lid with
        | Callgraph.Def _ -> add_cap st `Mutates (origin_of st e.pexp_loc)
        | Callgraph.External _ -> ())
      | None -> ())
    | _ -> ());
    (* Fan-out onto the domain pool: the function argument becomes a
       synthetic task node audited by rule R11. *)
    let fanout =
      match f_name with
      | Some (`Def (id, _)) -> List.exists (String.equal id) fanout_names
      | Some (`External (n, _)) -> List.exists (String.equal n) fanout_names
      | None -> false
    in
    if fanout then begin
      (match List.rev args with
      | (Asttypes.Nolabel, task_body) :: _ ->
        let site = origin_of st e.pexp_loc in
        let node_id =
          Printf.sprintf "%s!task@%d:%d" st.owner site.line site.col
        in
        let sub =
          {
            st with
            acc_raises = Names.empty;
            acc_mutates = None;
            acc_rng = None;
            acc_clock = None;
            acc_io = None;
            acc_edges = [];
            owner = node_id;
          }
        in
        (* The task runs on a worker domain: enclosing try/with in the
           submitter does not make its failure deterministic, so the
           task's own mask starts empty. *)
        walk sub locals reraise no_mask task_body;
        Hashtbl.replace st.nodes node_id { direct = snapshot sub; edges = sub.acc_edges };
        st.tasks := { t_owner = st.owner; t_site = site; t_node = node_id } :: !(st.tasks)
      | _ -> ())
    end;
    (* The callee reference itself, then the arguments. *)
    (match ident_of f with
    | Some lid -> (
      match resolve_value lid with
      | Callgraph.Def id -> st.acc_edges <- (id, mask) :: st.acc_edges
      | Callgraph.External name -> intrinsics st mask name (origin_of st f.pexp_loc))
    | None -> walk st locals reraise mask f);
    walk_args ())

(* ---------------- analysis driver ---------------- *)

let analyze graph =
  let nodes : (string, node) Hashtbl.t = Hashtbl.create 512 in
  let tasks = ref [] in
  List.iter
    (fun (d : Callgraph.def) ->
      match Callgraph.scope_of graph d.Callgraph.id with
      | None -> ()
      | Some scope ->
        let st =
          {
            graph;
            scope;
            path = d.Callgraph.path;
            acc_raises = Names.empty;
            acc_mutates = None;
            acc_rng = None;
            acc_clock = None;
            acc_io = None;
            acc_edges = [];
            nodes;
            tasks;
            owner = d.Callgraph.id;
          }
        in
        walk st Sset.empty Sset.empty no_mask d.Callgraph.body;
        Hashtbl.replace nodes d.Callgraph.id
          { direct = snapshot st; edges = st.acc_edges })
    (Callgraph.defs graph);
  (* Transitive fixpoint: effects flow from callee to caller, raises
     filtered by the catch mask at each call site. *)
  let current : (string, caps) Hashtbl.t = Hashtbl.create 512 in
  Hashtbl.iter (fun id node -> Hashtbl.replace current id node.direct) nodes;
  let sweeps = ref 0 in
  let changed = ref true in
  while !changed && !sweeps < 1000 do
    changed := false;
    incr sweeps;
    Hashtbl.iter
      (fun id node ->
        let merged =
          List.fold_left
            (fun acc (callee, m) ->
              match Hashtbl.find_opt current callee with
              | Some c -> union acc (apply_mask m c)
              | None -> acc)
            node.direct node.edges
        in
        let prev = try Hashtbl.find current id with Not_found -> empty in
        if not (same_shape prev merged) then begin
          Hashtbl.replace current id (union prev merged);
          changed := true
        end)
      nodes
  done;
  {
    caps_of = (fun id -> Hashtbl.find_opt current id);
    tasks =
      List.rev_map
        (fun tm ->
          {
            owner = tm.t_owner;
            site = tm.t_site;
            caps =
              (match Hashtbl.find_opt current tm.t_node with
              | Some c -> c
              | None -> empty);
          })
        !tasks;
    iterations = !sweeps;
  }
