open Parsetree
open Longident

type run_result = {
  findings : Finding.t list;
  files : int;
  errors : (string * string) list;
}

(* ---------------- path scoping ---------------- *)

let segments path =
  String.split_on_char '/' path
  |> List.filter (fun s -> not (String.equal s "") && not (String.equal s "."))

let in_lib path =
  match List.rev (segments path) with
  | _file :: dirs -> List.exists (String.equal "lib") dirs
  | [] -> false

let is_params_file path =
  in_lib path
  &&
  match List.rev (segments path) with
  | file :: dir :: _ -> String.equal file "params.ml" && String.equal dir "cellpop"
  | _ -> false

(* The observability layer itself: the one place allowed to read the real
   clock (rule R7's exemption). *)
let in_obs path =
  in_lib path
  &&
  match List.rev (segments path) with
  | _file :: dir :: _ -> String.equal dir "obs"
  | _ -> false

(* The domain-pool implementation: together with lib/obs, the only code
   allowed to touch the raw concurrency primitives (rule R8's exemption). *)
let in_parallel path =
  in_lib path
  &&
  match List.rev (segments path) with
  | _file :: dir :: _ -> String.equal dir "parallel"
  | _ -> false

(* The atomic writer: the one library module allowed to open a raw output
   channel (rule R9's exemption). *)
let is_atomic_file path =
  in_lib path
  &&
  match List.rev (segments path) with
  | file :: dir :: _ -> String.equal file "atomic_file.ml" && String.equal dir "dataio"
  | _ -> false

(* The quality layers: lib/numerics holds the statistic kernels and
   lib/core (Quality, Diagnostics) assembles them into diag records —
   the only library code allowed to reference the quality-statistic
   primitives (rule R14's exemption). *)
let in_quality path =
  in_lib path
  &&
  match List.rev (segments path) with
  | _file :: dir :: _ -> String.equal dir "numerics" || String.equal dir "core"
  | _ -> false

(* The factorization layers: lib/numerics implements the decompositions and
   lib/optimize wraps them (Spectral, Ridge) with anchoring, caching and
   telemetry — the only library code allowed to call the eigensolver and
   triangular-substitution primitives directly (rule R14's second clause). *)
let in_factorization path =
  in_lib path
  &&
  match List.rev (segments path) with
  | _file :: dir :: _ -> String.equal dir "numerics" || String.equal dir "optimize"
  | _ -> false

(* ---------------- rule implementations ---------------- *)

(* The paper constants of rule R4: phi_sst ~ N(0.15, (0.13*0.15)^2), the
   40/60 SW/ST daughter-volume split of eq. 11, and the 150-minute mean
   cycle time. A list literal, so the linter's own data-table exemption
   covers this table when it lints itself. *)
let magic_constants = [ 0.15; 0.13; 0.4; 0.6; 150.0 ]

let is_magic v = List.exists (fun c -> Float.equal c v) magic_constants

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

let float_funs =
  [
    "sqrt"; "exp"; "log"; "log10"; "expm1"; "log1p"; "sin"; "cos"; "tan"; "asin"; "acos";
    "atan"; "atan2"; "sinh"; "cosh"; "tanh"; "float_of_int"; "float_of_string"; "abs_float";
    "mod_float"; "ceil"; "floor"; "copysign"; "ldexp";
  ]

let ident_of e = match e.pexp_desc with Pexp_ident { txt; _ } -> Some txt | _ -> None

(* Does an expression syntactically look float-valued? A heuristic: the
   type checker is not available here, so we only claim float-ness for
   float literals, float arithmetic, Float.* calls and float-returning
   stdlib functions. *)
let rec looks_float e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (_, { ptyp_desc = Ptyp_constr ({ txt = Lident "float"; _ }, []); _ }) ->
    true
  | Pexp_apply (f, _) -> (
    match ident_of f with
    | Some (Lident op) when List.exists (String.equal op) float_ops -> true
    | Some (Lident fn) when List.exists (String.equal fn) float_funs -> true
    | Some (Ldot (Lident "Float", fn)) ->
      (* Float.to_int, Float.compare etc. return non-floats; anything else
         from Float is float-valued. *)
      not
        (List.exists (String.equal fn)
           [ "to_int"; "compare"; "equal"; "is_nan"; "is_finite"; "is_integer"; "to_string" ])
    | _ -> false)
  | Pexp_ifthenelse (_, e1, Some e2) -> looks_float e1 || looks_float e2
  | _ -> false

(* R5 ident sets. *)
let r5_plain =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char"; "print_int";
    "print_float"; "print_bytes"; "prerr_string"; "prerr_endline"; "prerr_newline";
    "prerr_char"; "prerr_int"; "prerr_float"; "prerr_bytes"; "stdout"; "stderr";
  ]

let r5_printf = [ "printf"; "eprintf" ]

let r5_format =
  [
    "printf"; "eprintf"; "print_string"; "print_char"; "print_int"; "print_float";
    "print_newline"; "print_space"; "print_cut"; "print_flush"; "std_formatter";
    "err_formatter";
  ]

(* R6: expressions that syntactically carry a result value. *)
let resulty e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Lident ("Ok" | "Error"); _ }, Some _) -> true
  | Pexp_apply (f, _) -> (
    match ident_of f with
    | Some lid ->
      let rec parts = function
        | Longident.Lident s -> [ s ]
        | Longident.Ldot (l, s) -> parts l @ [ s ]
        | Longident.Lapply _ -> []
      in
      let ps = parts lid in
      let last = match List.rev ps with s :: _ -> s | [] -> "" in
      let contains_result s =
        let n = String.length s and m = String.length "result" in
        let rec go i =
          i + m <= n && (String.equal (String.sub s i m) "result" || go (i + 1))
        in
        go 0
      in
      List.exists (String.equal "Result") ps
      || contains_result (String.lowercase_ascii last)
      || List.exists (String.equal last) [ "validate"; "solve_robust" ]
    | None -> false)
  | _ -> false

type catch_all = Not_catch_all | Wildcard | Var of string

let rec classify_catch_all p =
  match p.ppat_desc with
  | Ppat_any -> Wildcard
  | Ppat_var v -> Var v.Location.txt
  | Ppat_alias (inner, v) -> (
    match classify_catch_all inner with
    | Not_catch_all -> Not_catch_all
    | _ -> Var v.Location.txt)
  | Ppat_or (a, b) -> (
    match classify_catch_all a with Not_catch_all -> classify_catch_all b | r -> r)
  | Ppat_constraint (inner, _) -> classify_catch_all inner
  | _ -> Not_catch_all

let reraises_var var body =
  let found = ref false in
  let expr self e =
    (match e.pexp_desc with
    | Pexp_apply (f, args) -> (
      match ident_of f with
      | Some (Lident ("raise" | "raise_notrace"))
      | Some (Ldot (Lident "Printexc", "raise_with_backtrace")) -> (
        match args with
        | (_, { pexp_desc = Pexp_ident { txt = Lident v; _ }; _ }) :: _
          when String.equal v var ->
          found := true
        | _ -> ())
      | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it body;
  !found

(* ---------------- the walker ---------------- *)

type ctx = {
  path : string;
  lib : bool;
  params : bool;
  obs : bool;  (* under lib/obs/: exempt from R7 *)
  conc : bool;  (* under lib/parallel/ or lib/obs/: exempt from R8 *)
  atomic : bool;  (* lib/dataio/atomic_file.ml: exempt from R9 *)
  quality : bool;  (* under lib/numerics/ or lib/core/: exempt from R14 *)
  factorization : bool;  (* under lib/numerics/ or lib/optimize/: R14 clause 2 *)
  mutable in_data : bool;  (* inside an array/list literal (data table) *)
  mutable acc : Finding.t list;
}

let report ctx ~loc ~rule ~message ~hint =
  ctx.acc <- Finding.make ~file:ctx.path ~loc ~rule ~message ~hint :: ctx.acc

let check_r1 ctx f args =
  let flag op suggestion =
    match args with
    | (_, a) :: (_, b) :: _ when looks_float a || looks_float b ->
      report ctx ~loc:f.pexp_loc ~rule:"R1"
        ~message:(Printf.sprintf "polymorphic '%s' on float operands is NaN-unsafe" op)
        ~hint:suggestion
    | _ -> ()
  in
  match ident_of f with
  | Some (Lident ("=" as op)) | Some (Ldot (Lident "Stdlib", ("=" as op))) ->
    flag op "use Float.equal, or an explicit tolerance comparison"
  | Some (Lident ("<>" as op)) | Some (Ldot (Lident "Stdlib", ("<>" as op))) ->
    flag op "use 'not (Float.equal ...)', or an explicit tolerance comparison"
  | Some (Lident ("compare" as op)) | Some (Ldot (Lident "Stdlib", ("compare" as op))) ->
    flag op "use Float.compare"
  | Some (Lident (("min" | "max") as op)) | Some (Ldot (Lident "Stdlib", (("min" | "max") as op)))
    ->
    flag op (Printf.sprintf "use Float.%s, which handles NaN explicitly" op)
  | _ -> ()

let check_r2_case ctx case =
  match case.pc_guard with
  | Some _ -> () (* a guarded handler lets unmatched exceptions fall through *)
  | None -> (
    let inner_pat p =
      match p.ppat_desc with Ppat_exception inner -> Some inner | _ -> None
    in
    let pat =
      match inner_pat case.pc_lhs with Some inner -> inner | None -> case.pc_lhs
    in
    match classify_catch_all pat with
    | Not_catch_all -> ()
    | Wildcard ->
      report ctx ~loc:pat.ppat_loc ~rule:"R2"
        ~message:
          "catch-all exception handler 'with _ ->' swallows typed errors \
           (Robust.Error) and programming errors alike"
        ~hint:"match the specific exceptions this expression can raise; re-raise the rest"
    | Var v ->
      if not (reraises_var v case.pc_rhs) then
        report ctx ~loc:pat.ppat_loc ~rule:"R2"
          ~message:
            (Printf.sprintf
               "exception handler binds '%s' but never re-raises it: a catch-all that \
                discards the exception"
               v)
          ~hint:"handle the specific exceptions and 'raise' the others")

let check_r3 ctx f args =
  match ident_of f with
  | Some (Ldot (Lident "List", (("hd" | "tl") as fn))) ->
    report ctx ~loc:f.pexp_loc ~rule:"R3"
      ~message:(Printf.sprintf "List.%s raises on the empty list" fn)
      ~hint:"pattern-match on the list (| [] -> ... | x :: rest -> ...)"
  | Some (Ldot (Lident "Option", "get")) ->
    report ctx ~loc:f.pexp_loc ~rule:"R3"
      ~message:"Option.get raises on None"
      ~hint:"pattern-match, or use Option.value ~default / Option.fold"
  | Some (Ldot (Lident "Array", "get")) -> (
    match args with
    | (_, { pexp_desc = Pexp_array _; _ }) :: _ ->
      report ctx ~loc:f.pexp_loc ~rule:"R3"
        ~message:"indexing an array literal can raise Invalid_argument at runtime"
        ~hint:"bind the literal to a name and bounds-check, or match on it"
    | _ -> ())
  | _ -> ()

let check_r4 ctx e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float (repr, None)) when ctx.lib && (not ctx.params) && not ctx.in_data
    -> (
    match float_of_string_opt repr with
    | Some v when is_magic v ->
      report ctx ~loc:e.pexp_loc ~rule:"R4"
        ~message:
          (Printf.sprintf
             "magic paper constant %s outside lib/cellpop/params.ml" repr)
        ~hint:
          "reference the named constant in Cellpop.Params (e.g. sw_volume_fraction, \
           st_volume_fraction, paper_2011) so the value lives in exactly one place"
    | _ -> ())
  | _ -> ()

let check_r5_ident ctx e =
  if ctx.lib then
    match e.pexp_desc with
    | Pexp_ident { txt = Lident name; _ } when List.exists (String.equal name) r5_plain ->
      report ctx ~loc:e.pexp_loc ~rule:"R5"
        ~message:(Printf.sprintf "'%s' writes to the process's std channels from library code" name)
        ~hint:
          "return a string, or take an explicit out_channel / Format.formatter argument"
    | Pexp_ident { txt = Ldot (Lident "Printf", fn); _ } when List.exists (String.equal fn) r5_printf
      ->
      report ctx ~loc:e.pexp_loc ~rule:"R5"
        ~message:(Printf.sprintf "Printf.%s writes to std channels from library code" fn)
        ~hint:"use Printf.sprintf to build a string, or Printf.fprintf on an explicit channel"
    | Pexp_ident { txt = Ldot (Lident "Format", fn); _ } when List.exists (String.equal fn) r5_format
      ->
      report ctx ~loc:e.pexp_loc ~rule:"R5"
        ~message:(Printf.sprintf "Format.%s targets the std formatters from library code" fn)
        ~hint:"take an explicit Format.formatter argument (Fmt style) instead"
    | _ -> ()

(* R7: raw timing calls outside lib/obs. Flag the identifier itself so a
   bare reference (let t = Sys.time) is caught like an application. *)
let check_r7 ctx e =
  if not ctx.obs then
    match e.pexp_desc with
    | Pexp_ident { txt = Ldot (Lident "Sys", "time"); _ } ->
      report ctx ~loc:e.pexp_loc ~rule:"R7"
        ~message:
          "Sys.time is processor time, not wall-clock, and bypasses the mockable Obs.Clock"
        ~hint:"use Obs.Clock.now () (wall-clock, monotonic, substitutable in tests)"
    | Pexp_ident { txt = Ldot (Lident "Unix", (("gettimeofday" | "time" | "times") as fn)); _ }
      ->
      report ctx ~loc:e.pexp_loc ~rule:"R7"
        ~message:
          (Printf.sprintf "raw timing call Unix.%s outside lib/obs bypasses Obs.Clock" fn)
        ~hint:"use Obs.Clock.now (), or add a source to Obs.Clock if a new clock is needed"
    | _ -> ()

(* R8: raw concurrency primitives outside lib/parallel and lib/obs. Flag
   the identifier itself (like R7) so bare references are caught too. *)
let check_r8 ctx e =
  if not ctx.conc then
    match e.pexp_desc with
    | Pexp_ident { txt = Ldot (Lident "Domain", "spawn"); _ } ->
      report ctx ~loc:e.pexp_loc ~rule:"R8"
        ~message:
          "raw Domain.spawn outside lib/parallel bypasses the deterministic pool: results \
           would depend on the ad-hoc fan-out, not the fixed chunk schedule"
        ~hint:"use Parallel.parallel_for / Parallel.parallel_map (or a Parallel.Pool)"
    | Pexp_ident { txt = Ldot (Lident (("Mutex" | "Condition") as m), fn); _ } ->
      report ctx ~loc:e.pexp_loc ~rule:"R8"
        ~message:
          (Printf.sprintf
             "raw lock primitive %s.%s outside lib/parallel and lib/obs risks deadlock \
              against the pool's own lock"
             m fn)
        ~hint:
          "fan work out through Parallel (workers never need app-level locks: each chunk \
           owns its output slots); shared-sink guards belong in lib/obs"
    | _ -> ()

(* R9: raw output channels in library code outside the atomic writer. Like
   R7/R8, flag the identifier itself so partial applications and bare
   references are caught. *)
let r9_out_channel_fns =
  [ "open_bin"; "open_text"; "open_gen"; "with_open_bin"; "with_open_text"; "with_open_gen" ]

let check_r9 ctx e =
  if ctx.lib && not ctx.atomic then
    match e.pexp_desc with
    | Pexp_ident { txt = Lident (("open_out" | "open_out_bin" | "open_out_gen") as fn); _ }
    | Pexp_ident
        { txt = Ldot (Lident "Stdlib", (("open_out" | "open_out_bin" | "open_out_gen") as fn));
          _ } ->
      report ctx ~loc:e.pexp_loc ~rule:"R9"
        ~message:
          (Printf.sprintf
             "'%s' truncates the destination before writing: a crash mid-write leaves a \
              torn file"
             fn)
        ~hint:
          "write final paths through Dataio.Atomic_file.write (temp file + fsync + rename)"
    | Pexp_ident { txt = Ldot (Lident "Out_channel", fn); _ }
      when List.exists (String.equal fn) r9_out_channel_fns ->
      report ctx ~loc:e.pexp_loc ~rule:"R9"
        ~message:
          (Printf.sprintf
             "Out_channel.%s opens a raw output channel on a final path from library code" fn)
        ~hint:
          "write final paths through Dataio.Atomic_file.write (temp file + fsync + rename)"
    | _ -> ()

(* R13: raw GC/procfs introspection outside lib/obs — R7's shape, for
   runtime state instead of clocks. Both the Gc identifiers and a string
   literal naming a procfs path are flagged, so an ad-hoc
   open_in "/proc/..." cannot slip past by avoiding the Gc module. *)
let r13_gc_fns = [ "stat"; "quick_stat"; "counters"; "allocated_bytes" ]

let check_r13 ctx e =
  if not ctx.obs then
    match e.pexp_desc with
    | Pexp_ident { txt = Ldot (Lident "Gc", fn); _ }
      when List.exists (String.equal fn) r13_gc_fns ->
      report ctx ~loc:e.pexp_loc ~rule:"R13"
        ~message:
          (Printf.sprintf
             "raw Gc.%s outside lib/obs: GC introspection is telemetry and belongs to the \
              resource sampler"
             fn)
        ~hint:
          "read Obs.Resource.read () (or emit Obs.Resource.sample ()); it picks the \
           cheap quick_stat variant and owns the portability story"
    | Pexp_constant (Pconst_string (s, _, _))
      (* lint: allow R13 -- the rule's own prefix constant, not a procfs read *)
      when String.length s >= 5 && String.equal (String.sub s 0 5) "/proc" ->
      report ctx ~loc:e.pexp_loc ~rule:"R13"
        ~message:"procfs path literal outside lib/obs: procfs reads are Linux-only telemetry"
        ~hint:
          "use Obs.Resource.read (), which reads procfs once with the \
           unavailable-platform fallback"
    | _ -> ()

(* R14: quality-statistic primitives outside lib/numerics and lib/core.
   Matched on the trailing (Module, fn) pair so both [Stats.runs_z] and
   the fully qualified [Numerics.Stats.runs_z] are caught. *)
let r14_stats_fns = [ "runs_z"; "moment_z"; "normality_z" ]

(* R14 clause 2: decomposition internals outside lib/numerics and
   lib/optimize. lib/core consumes factorizations through Optimize.Spectral
   and Optimize.Ridge, which own the anchoring, the cross-solve cache and
   the spans — a raw eigensolver or triangular-substitution call bypasses
   all three. *)
let r14_factorization_fns =
  [ "jacobi_eigen"; "generalized_eigen_spd"; "lower_solve"; "lower_transpose_solve" ]

let check_r14 ctx e =
  match e.pexp_desc with
  | Pexp_ident { txt = lid; _ } -> (
    (if ctx.lib && not ctx.quality then
       match lid with
       | Ldot (Lident "Linalg", "condition_spd")
       | Ldot (Ldot (_, "Linalg"), "condition_spd") ->
         report ctx ~loc:e.pexp_loc ~rule:"R14"
           ~message:
             "condition-number computation outside the quality layers: κ is a quality \
              statistic and is reported through Obs.Diag"
           ~hint:
             "use Quality.kappa (or Solver's cascade, which already records it) and let the \
              diag stream carry the value"
       | Ldot (Lident "Stats", fn) | Ldot (Ldot (_, "Stats"), fn)
         when List.exists (String.equal fn) r14_stats_fns ->
         report ctx ~loc:e.pexp_loc ~rule:"R14"
           ~message:
             (Printf.sprintf
                "residual-test statistic Stats.%s referenced outside the quality layers" fn)
           ~hint:
             "route through Quality.residual_stats / Diagnostics so the statistic has one \
              definition, and emit it as an Obs.Diag event instead of printing it"
       | _ -> ());
    if ctx.lib && not ctx.factorization then
      match lid with
      | Ldot (Lident "Linalg", fn) | Ldot (Ldot (_, "Linalg"), fn)
        when List.exists (String.equal fn) r14_factorization_fns ->
        report ctx ~loc:e.pexp_loc ~rule:"R14"
          ~message:
            (Printf.sprintf
               "factorization internal Linalg.%s referenced outside lib/numerics and \
                lib/optimize"
               fn)
          ~hint:
            "consume the decomposition through Optimize.Spectral (or Optimize.Ridge), which \
             owns the anchoring, the factorization cache and the telemetry spans"
      | _ -> ())
  | _ -> ()

let check_r6 ctx f args =
  let is_ignore e =
    match ident_of e with
    | Some (Lident "ignore") | Some (Ldot (Lident "Stdlib", "ignore")) -> true
    | _ -> false
  in
  let flag loc arg =
    if resulty arg then
      report ctx ~loc ~rule:"R6"
        ~message:"'ignore' discards an expression that carries a result value"
        ~hint:"match on Ok/Error (or log the Robust.Error) instead of dropping it"
  in
  if is_ignore f then
    match args with [ (_, arg) ] -> flag f.pexp_loc arg | _ -> ()
  else
    match (ident_of f, args) with
    | Some (Lident "@@"), [ (_, lhs); (_, arg) ] when is_ignore lhs -> flag lhs.pexp_loc arg
    | Some (Lident "|>"), [ (_, arg); (_, rhs) ] when is_ignore rhs -> flag rhs.pexp_loc arg
    | _ -> ()

let make_iterator ctx =
  let default = Ast_iterator.default_iterator in
  let expr self e =
    (match e.pexp_desc with
    | Pexp_apply (f, args) ->
      check_r1 ctx f args;
      check_r3 ctx f args;
      check_r6 ctx f args
    | Pexp_try (_, cases) -> if ctx.lib then List.iter (check_r2_case ctx) cases
    | Pexp_match (_, cases) ->
      if ctx.lib then
        List.iter
          (fun c ->
            match c.pc_lhs.ppat_desc with
            | Ppat_exception _ -> check_r2_case ctx c
            | _ -> ())
          cases
    | _ -> ());
    check_r4 ctx e;
    check_r5_ident ctx e;
    check_r7 ctx e;
    check_r8 ctx e;
    check_r9 ctx e;
    check_r13 ctx e;
    check_r14 ctx e;
    match e.pexp_desc with
    | Pexp_array _ | Pexp_construct ({ txt = Lident "::"; _ }, Some _) ->
      let saved = ctx.in_data in
      ctx.in_data <- true;
      default.expr self e;
      ctx.in_data <- saved
    | _ -> default.expr self e
  in
  { default with expr }

(* ---------------- driver ---------------- *)

let parse_kind path =
  if Filename.check_suffix path ".mli" then `Interface
  else if Filename.check_suffix path ".ml" then `Implementation
  else `Other

let walk_source ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  match parse_kind path with
  | `Other -> Error (Printf.sprintf "%s: not an OCaml source file" path)
  | `Interface -> (
    (* Interfaces carry no expressions; parse for syntax errors only. *)
    match Parse.interface lexbuf with
    | (_ : signature) -> Ok []
    (* lint: allow R2 — the parser raises several exception types
       (Syntaxerr.Error, Lexer.Error, ...); any of them means exactly
       "this buffer does not parse", which is what we report *)
    | exception exn -> Error (Printf.sprintf "%s: parse error (%s)" path (Printexc.to_string exn))
    )
  | `Implementation -> (
    match Parse.implementation lexbuf with
    | str ->
      let ctx =
        {
          path;
          lib = in_lib path;
          params = is_params_file path;
          obs = in_obs path;
          conc = in_obs path || in_parallel path;
          atomic = is_atomic_file path;
          quality = in_quality path;
          factorization = in_factorization path;
          in_data = false;
          acc = [];
        }
      in
      let it = make_iterator ctx in
      it.Ast_iterator.structure it str;
      Ok ctx.acc
    (* lint: allow R2 — same as above: any parser exception is by
       definition a parse error for this file *)
    | exception exn -> Error (Printf.sprintf "%s: parse error (%s)" path (Printexc.to_string exn))
    )

let lint_source ?(disabled = []) ~path source =
  let disabled = List.filter_map Rules.normalize_id disabled in
  let off rule = List.exists (String.equal rule) disabled in
  match walk_source ~path source with
  | Error _ as e -> e
  | Ok raw ->
    let supps, bad = Suppress.scan source in
    let malformed =
      List.map
        (fun (m : Suppress.malformed) ->
          {
            Finding.file = path;
            line = m.Suppress.line;
            col = 1;
            rule = "R0";
            message = m.Suppress.why;
            hint = "write '(* lint: allow <rule-id> — <reason> *)'";
          })
        bad
    in
    let keep (f : Finding.t) =
      (not (off f.Finding.rule))
      && not
           (List.exists
              (fun s -> Suppress.covers s ~rule:f.Finding.rule ~line:f.Finding.line)
              supps)
    in
    Ok (List.sort Finding.compare (List.filter keep (raw @ malformed)))

let lint_file ?disabled ?as_path path =
  match In_channel.with_open_bin path In_channel.input_all with
  | source ->
    let logical = match as_path with Some p -> p | None -> path in
    lint_source ?disabled ~path:logical source
  | exception Sys_error msg -> Error msg

let is_source path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

let skip_dir name =
  String.equal name "_build"
  || (String.length name > 0 && Char.equal name.[0] '.')

let collect_files paths =
  let rec walk acc path =
    match acc with
    | Error _ -> acc
    | Ok files -> (
      match Sys.is_directory path with
      | true ->
        Sys.readdir path |> Array.to_list
        |> List.sort String.compare
        |> List.fold_left
             (fun acc name ->
               if skip_dir name then acc else walk acc (Filename.concat path name))
             (Ok files)
      | false -> if is_source path then Ok (path :: files) else Ok files
      | exception Sys_error msg -> Error msg)
  in
  match List.fold_left walk (Ok []) paths with
  | Error _ as e -> e
  | Ok files -> Ok (List.sort String.compare files)

let run ?(disabled = []) paths =
  match collect_files paths with
  | Error msg -> { findings = []; files = 0; errors = [ ("", msg) ] }
  | Ok files ->
    let findings, errors =
      List.fold_left
        (fun (fs, errs) file ->
          match lint_file ~disabled file with
          | Ok found -> (fs @ found, errs)
          | Error msg -> (fs, (file, msg) :: errs))
        ([], []) files
    in
    {
      findings = List.sort Finding.compare findings;
      files = List.length files;
      errors = List.rev errors;
    }
