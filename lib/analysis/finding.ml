type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
  hint : string;
}

let make ~file ~loc ~rule ~message ~hint =
  let pos = loc.Location.loc_start in
  {
    file;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol + 1;
    rule;
    message;
    hint;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_text f =
  Printf.sprintf "%s:%d:%d: [%s] %s. hint: %s" f.file f.line f.col f.rule f.message f.hint

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf
    "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"message\":\"%s\",\"hint\":\"%s\"}"
    (json_escape f.file) f.line f.col (json_escape f.rule) (json_escape f.message)
    (json_escape f.hint)

let list_to_json findings =
  match findings with
  | [] -> "[]"
  | fs -> "[\n  " ^ String.concat ",\n  " (List.map to_json fs) ^ "\n]"

(* Minimal SARIF 2.1.0: one run, one driver, the referenced rules, one
   result per finding. Hand-rolled like the JSON above — the point is to
   be ingestible by standard viewers without pulling in a JSON dep. *)
let list_to_sarif ~tool ~rules findings =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let referenced =
    List.fold_left
      (fun acc f -> if List.mem f.rule acc then acc else f.rule :: acc)
      [] findings
    |> List.rev
  in
  let rule_objs =
    List.filter_map
      (fun (id, title, description) ->
        if List.mem id referenced then
          Some
            (Printf.sprintf
               "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"},\"fullDescription\":{\"text\":\"%s\"}}"
               (json_escape id) (json_escape title) (json_escape description))
        else None)
      rules
  in
  let result f =
    Printf.sprintf
      "{\"ruleId\":\"%s\",\"level\":\"error\",\"message\":{\"text\":\"%s. hint: %s\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]}"
      (json_escape f.rule)
      (json_escape f.message)
      (json_escape f.hint)
      (json_escape f.file)
      f.line f.col
  in
  add "{\n";
  add "  \"version\": \"2.1.0\",\n";
  add
    "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  add "  \"runs\": [{\n";
  add "    \"tool\": {\"driver\": {\"name\": \"%s\", \"rules\": [%s]}},\n"
    (json_escape tool)
    (String.concat ", " rule_objs);
  (match findings with
  | [] -> add "    \"results\": []\n"
  | fs ->
    add "    \"results\": [\n      %s\n    ]\n"
      (String.concat ",\n      " (List.map result fs)));
  add "  }]\n";
  add "}";
  Buffer.contents b
