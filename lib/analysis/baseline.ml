type entry = { rule : string; file : string; message : string }

type t = entry list

type comparison = { fresh : Finding.t list; stale : t }

(* Messages are single-line by construction (Printf-built), but scrub
   separators anyway so a snapshot line always splits back into three
   fields. *)
let scrub s =
  String.map (fun c -> match c with '\t' | '\n' | '\r' -> ' ' | c -> c) s

let key (f : Finding.t) =
  { rule = f.Finding.rule; file = scrub f.Finding.file; message = scrub f.Finding.message }

let entry_compare a b =
  let c = String.compare a.rule b.rule in
  if c <> 0 then c
  else
    let c = String.compare a.file b.file in
    if c <> 0 then c else String.compare a.message b.message

let entry_equal a b = entry_compare a b = 0

let to_string findings =
  let entries =
    List.map key findings |> List.sort_uniq entry_compare
  in
  String.concat ""
    (List.map (fun e -> Printf.sprintf "%s\t%s\t%s\n" e.rule e.file e.message) entries)

let of_string s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if String.equal line "" || (String.length line > 0 && Char.equal line.[0] '#')
         then None
         else
           match String.split_on_char '\t' line with
           | rule :: file :: rest when rest <> [] ->
             Some { rule; file; message = String.concat "\t" rest }
           | _ -> None)

let compare_against ~baseline findings =
  let fresh =
    List.filter
      (fun f -> not (List.exists (entry_equal (key f)) baseline))
      findings
  in
  let stale =
    List.filter
      (fun e -> not (List.exists (fun f -> entry_equal (key f) e) findings))
      baseline
  in
  { fresh; stale }
