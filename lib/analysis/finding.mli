(** A single linter diagnostic: where, which rule, what to do about it. *)

type t = {
  file : string;  (** path as given to the linter *)
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
  rule : string;  (** rule id, e.g. ["R1"] *)
  message : string;  (** what is wrong at this site *)
  hint : string;  (** suggested fix *)
}

val make :
  file:string -> loc:Location.t -> rule:string -> message:string -> hint:string -> t
(** Build a finding anchored at the start of [loc]. *)

val compare : t -> t -> int
(** Order by file, line, column, then rule id (deterministic output). *)

val to_text : t -> string
(** [file:line:col: [rule] message. hint: ...] — one line, no trailing
    newline. *)

val to_json : t -> string
(** A single JSON object with fields file/line/col/rule/message/hint. *)

val list_to_json : t list -> string
(** A JSON array of {!to_json} objects. *)

val list_to_sarif :
  tool:string -> rules:(string * string * string) list -> t list -> string
(** A minimal SARIF 2.1.0 log (one run). [rules] is the registry as
    [(id, title, description)]; only rules referenced by a finding are
    emitted in the driver metadata. *)
