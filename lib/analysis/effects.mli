(** Interprocedural capability inference over a {!Callgraph.t}.

    Each definition gets a capability set inferred from its Parsetree
    body and propagated to a transitive fixpoint over the call graph:

    - [raises]: exception constructors that can escape the definition
      (explicit [raise]/[failwith]/[invalid_arg] sites and declared
      constructors; [try]/[with] handlers subtract what they catch, a
      re-raising catch-all subtracts nothing). [assert] is deliberately
      not tracked: an [Assert_failure] is a programming-error invariant,
      not a data-path failure. A [raise] of a value whose constructor is
      not syntactically visible is tracked as {!dynamic_raise}.
    - [mutates]: writes module-level mutable state ([:=]/[incr]/[decr],
      [<-], [Array.set]/[Hashtbl.replace]/... whose target resolves to a
      module-level definition — a locally created ref is not global).
    - [rng]: reads the ambient [Random] generator (the explicit
      [Numerics.Rng] substreams are the sanctioned source and do not
      count).
    - [clock]: reads a raw clock ([Sys.time], [Unix.gettimeofday], ...).
    - [io]: touches the process's channels or the filesystem.

    References are conservative: mentioning a function (passing it to a
    higher-order combinator included) is treated as calling it, which is
    exactly what routes a closure's effects through [Parallel.*] even
    though the pool's own machinery re-raises dynamically.

    Every function-typed argument handed to a [Parallel] fan-out entry
    point ([parallel_for]/[parallel_map]/[parallel_map_result], module
    level or on a [Pool.t]) additionally becomes a {!task}: a synthetic
    node holding the capabilities of the code the domain pool will run,
    which is what rule R11 audits. *)

type origin = { file : string; line : int; col : int }
(** Where a capability was introduced (the raise site, the mutation
    site, ...): findings anchor here so suppressions sit next to the
    offending code. *)

module Names : Map.S with type key = string

type caps = {
  raises : origin Names.t;  (** canonical exception name -> first origin *)
  mutates : origin option;
  rng : origin option;
  clock : origin option;
  io : origin option;
}

type task = {
  owner : string;  (** id of the definition submitting the job *)
  site : origin;  (** the fan-out call site *)
  caps : caps;  (** fixpoint capabilities of the task closure *)
}

type result = {
  caps_of : string -> caps option;  (** fixpoint capabilities of a def id *)
  tasks : task list;
  iterations : int;  (** fixpoint sweeps until stable (telemetry) *)
}

val robust_error : string
(** ["Robust.Error.Error"] — the one exception allowed to cross the
    typed-error boundary. *)

val dynamic_raise : string
(** The pseudo-name under which [raise e] of a computed exception value
    is tracked. *)

val empty : caps

val is_empty : caps -> bool

val analyze : Callgraph.t -> result
