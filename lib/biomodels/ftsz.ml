open Numerics

(* lint: allow R4 -- Kelly et al. (1998) ftsZ transcription-onset delay, an
   independent biological observation that only coincidentally equals the
   swarmer volume fraction *)
let transcription_onset = 0.15

(* lint: allow R4 -- Fig. 5 deconvolved ftsZ peak phase; coincidentally equal
   to the swarmer volume-split value, not derived from it *)
let peak_phase = 0.4

(* Control points chosen so that: expression is exactly 0 through the
   swarmer stage (φ ≤ 0.15, the transcription delay of Kelly et al. 1998);
   the peak (≈11, matching Fig. 5's deconvolved scale) sits at φ = 0.4; the
   decline is steep and never reverses; and the division-conservation
   relation f(1) = 0.4 f(0) + 0.6 f(φ_sst) holds exactly:
   f(1) = 0.4·0 + 0.6·0 = 0. *)
let control_phases = [| 0.0; 0.05; 0.10; 0.15; 0.20; 0.28; 0.40; 0.50; 0.60; 0.75; 0.90; 1.0 |]
let control_values = [| 0.0; 0.0; 0.0; 0.0; 2.0; 7.5; 11.0; 7.0; 3.0; 1.2; 0.4; 0.0 |]

let profile = Gene_profile.from_samples ~phases:control_phases ~values:control_values

let sample grid = Array.map profile grid

let delay_visible ~phases ~values ~threshold =
  assert (Array.length phases = Array.length values);
  let vmax = Vec.max values in
  if vmax <= 0.0 then false
  else begin
    let ok = ref true in
    Array.iteri
      (fun i phi ->
        if phi < transcription_onset && values.(i) > threshold *. vmax then ok := false)
      phases;
    !ok
  end

let post_peak_monotone_drop ~phases ~values ~tolerance =
  assert (Array.length phases = Array.length values);
  let vmax = Vec.max values in
  if vmax <= 0.0 then false
  else begin
    let peak_index = Vec.argmax values in
    let running_min = ref values.(peak_index) in
    let ok = ref true in
    for i = peak_index + 1 to Array.length values - 1 do
      if values.(i) > !running_min +. (tolerance *. vmax) then ok := false;
      running_min := Float.min !running_min values.(i)
    done;
    !ok
  end
