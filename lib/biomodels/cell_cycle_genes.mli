(** A synthetic panel of cell-cycle-regulated genes, patterned on the
    classes of Caulobacter regulators the paper's line of work targets
    (early swarmer-stage genes, replication-initiation genes, mid-cycle
    division genes such as ftsZ, late predivisional genes). Each gene has a
    known single-cell phase profile, so a whole-regulon deconvolution can
    be scored exactly. *)

open Numerics

type gene = {
  name : string;
  expression_class : [ `Swarmer | `Early_stalked | `Mid_cycle | `Late_predivisional ];
  profile : Gene_profile.t;
  peak_phase : float;  (** phase of maximal expression *)
}

val panel : gene array
(** 12 genes, 3 per class, with distinct amplitudes and peak phases. *)

val class_index : gene -> int
(** 0 = Swarmer … 3 = Late_predivisional (class windows in peak-phase
    order). *)

val class_boundaries : Vec.t
(** Right edges of the peak-phase windows separating the four classes
    (length 3), usable with [Deconv.Batch.classify_by_peak]. *)

val sample_profiles : gene array -> phases:Vec.t -> Mat.t
(** Genes × phases matrix of true single-cell profiles. *)
