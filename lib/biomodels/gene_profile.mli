(** Parametric single-cell phase-expression profiles f(φ) used as ground
    truth in tests and ablations. All profiles are non-negative on [0, 1]. *)

open Numerics

type t = float -> float
(** A profile maps phase φ ∈ [0, 1] to expression concentration. *)

val constant : float -> t

val cosine : ?mean:float -> ?amplitude:float -> ?cycles:float -> ?phase_shift:float -> unit -> t
(** [mean + amplitude·cos(2π·cycles·(φ − shift))], clipped at 0. *)

val gaussian_pulse : center:float -> width:float -> height:float -> ?baseline:float -> unit -> t
(** A smooth bump. *)

val smoothstep : at:float -> width:float -> low:float -> high:float -> t
(** Sigmoidal step from [low] to [high] centered at [at]. *)

val ramp : from_value:float -> to_value:float -> t

val delayed_pulse : delay:float -> peak_at:float -> peak:float -> tail:float -> t
(** Zero until [delay], smooth rise to [peak] at [peak_at], then decay to
    [tail] at φ = 1 — the shape family of cell-division genes such as ftsZ. *)

val from_samples : phases:Vec.t -> values:Vec.t -> t
(** Monotone-cubic interpolation through sample points (clamped outside). *)

val sample : t -> Vec.t -> Vec.t
(** Evaluate a profile on a phase grid. *)
