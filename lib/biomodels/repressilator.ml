open Numerics

type params = { alpha : float; alpha0 : float; beta : float; n : float; timescale : float }

let default_params = { alpha = 216.0; alpha0 = 0.216; beta = 5.0; n = 2.0; timescale = 0.057920 }

let default_x0 = [| 1.0; 2.0; 3.0; 1.0; 2.0; 3.0 |]

let system p : Ode.system =
 fun _t y ->
  let m i = y.(i) and pr i = y.(3 + i) in
  let repressor i = pr ((i + 2) mod 3) in
  Array.init 6 (fun k ->
      let v =
        if k < 3 then
          (p.alpha /. (1.0 +. (Float.max 0.0 (repressor k) ** p.n))) +. p.alpha0 -. m k
        else p.beta *. (m (k - 3) -. pr (k - 3))
      in
      p.timescale *. v)

let simulate ?(rtol = 1e-8) p ~x0 ~times = Ode.rk45 ~rtol ~atol:1e-10 (system p) ~y0:x0 ~times

let crossings_of sol level ~component ~from =
  let n = Array.length sol.Ode.times in
  let out = ref [] in
  for i = 0 to n - 2 do
    if sol.Ode.times.(i) >= from then begin
      let a = Mat.get sol.Ode.states i component -. level in
      let b = Mat.get sol.Ode.states (i + 1) component -. level in
      if a < 0.0 && b >= 0.0 then begin
        let t0 = sol.Ode.times.(i) and t1 = sol.Ode.times.(i + 1) in
        out := (t0 +. ((t1 -. t0) *. (-.a /. (b -. a)))) :: !out
      end
    end
  done;
  List.rev !out

let period ?(t_max = 3000.0) ?(transient = 600.0) p ~x0 =
  let n = 30000 in
  let times = Vec.linspace 0.0 t_max n in
  let sol = simulate p ~x0 ~times in
  let level =
    let acc = ref [] in
    Array.iteri (fun i ti -> if ti >= transient then acc := Mat.get sol.Ode.states i 0 :: !acc) times;
    Vec.mean (Vec.of_list !acc)
  in
  match crossings_of sol level ~component:0 ~from:transient with
  | c0 :: (_ :: _ as rest) ->
    let last = List.nth rest (List.length rest - 1) in
    (last -. c0) /. float_of_int (List.length rest)
  | _ -> failwith "Repressilator.period: no sustained oscillation found"

let phase_profile ?(species = 0) p ~x0 ~n_phi =
  assert (n_phi >= 2);
  assert (species >= 0 && species < 6);
  let t = period p ~x0 in
  let transient = 600.0 in
  let probe_times = Vec.linspace 0.0 (transient +. (3.0 *. t)) 20000 in
  let sol = simulate p ~x0 ~times:probe_times in
  (* Align every species to the same reference event (an upward mean-level
     crossing of m1) so relative phase shifts between species survive. *)
  let level =
    let acc = ref [] in
    Array.iteri
      (fun i ti -> if ti >= transient then acc := Mat.get sol.Ode.states i 0 :: !acc)
      probe_times;
    Vec.mean (Vec.of_list !acc)
  in
  let start =
    match crossings_of sol level ~component:0 ~from:transient with
    | c :: _ -> c
    | [] -> transient
  in
  let bin_width = 1.0 /. float_of_int n_phi in
  let phases = Array.init n_phi (fun j -> (float_of_int j +. 0.5) *. bin_width) in
  let sample_times = Array.map (fun phi -> start +. (phi *. t)) phases in
  let times_full = Array.append [| 0.0 |] sample_times in
  let sol2 = simulate p ~x0 ~times:times_full in
  (phases, Array.init n_phi (fun j -> Mat.get sol2.Ode.states (j + 1) species))
