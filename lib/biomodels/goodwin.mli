(** Goodwin negative-feedback oscillator — a second single-cell test model
    (extension beyond the paper's LV example):

    ẋ = a / (1 + zⁿ) − b x,   ẏ = c x − d y,   ż = e y − f z

    Oscillates for sufficiently steep feedback (n ≳ 8). *)

open Numerics

type params = { a : float; b : float; c : float; d : float; e : float; f : float; n : float }

val default_params : params
(** Parameters giving a stable limit cycle with a period on the order of a
    Caulobacter cell cycle when time is measured in minutes. *)

val default_x0 : Vec.t
val system : params -> Ode.system
val simulate : ?rtol:float -> params -> x0:Vec.t -> times:Vec.t -> Ode.solution

val period : ?t_max:float -> ?transient:float -> params -> x0:Vec.t -> float
(** Period measured after discarding an initial transient (the Goodwin
    cycle is attracting, unlike the neutrally stable LV orbits). *)

val phase_profile : ?species:int -> params -> x0:Vec.t -> n_phi:int -> Vec.t * Vec.t
(** One post-transient period of the chosen species (default x, index 0)
    resampled onto phase-bin centers. *)
