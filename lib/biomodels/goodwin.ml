open Numerics

type params = { a : float; b : float; c : float; d : float; e : float; f : float; n : float }

let default_params =
  { a = 1.558000; b = 0.025967; c = 0.025967; d = 0.025967; e = 0.025967; f = 0.025967; n = 10.0 }

let default_x0 = [| 0.5; 0.5; 0.5 |]

let system p : Ode.system =
 fun _t y ->
  let x = y.(0) and yy = y.(1) and z = y.(2) in
  [|
    (p.a /. (1.0 +. (Float.max 0.0 z ** p.n))) -. (p.b *. x);
    (p.c *. x) -. (p.d *. yy);
    (p.e *. yy) -. (p.f *. z);
  |]

let simulate ?(rtol = 1e-8) p ~x0 ~times = Ode.rk45 ~rtol ~atol:1e-10 (system p) ~y0:x0 ~times

let crossings_of sol eq ~component =
  let n = Array.length sol.Ode.times in
  let out = ref [] in
  for i = 0 to n - 2 do
    let a = Mat.get sol.Ode.states i component -. eq in
    let b = Mat.get sol.Ode.states (i + 1) component -. eq in
    if a < 0.0 && b >= 0.0 then begin
      let t0 = sol.Ode.times.(i) and t1 = sol.Ode.times.(i + 1) in
      out := (t0 +. ((t1 -. t0) *. (-.a /. (b -. a)))) :: !out
    end
  done;
  List.rev !out

let period ?(t_max = 3000.0) ?(transient = 600.0) p ~x0 =
  let n = 30000 in
  let times = Vec.linspace 0.0 t_max n in
  let sol = simulate p ~x0 ~times in
  (* Reference level: mean of x after the transient. *)
  let post = ref [] in
  for i = n - 1 downto 0 do
    if times.(i) >= transient then post := Mat.get sol.Ode.states i 0 :: !post
  done;
  let mean_level = Vec.mean (Vec.of_list !post) in
  let crossings =
    List.filter (fun t -> t >= transient) (crossings_of sol mean_level ~component:0)
  in
  match crossings with
  | c0 :: (_ :: _ as rest) ->
    let last = List.nth rest (List.length rest - 1) in
    (last -. c0) /. float_of_int (List.length rest)
  | _ -> failwith "Goodwin.period: no sustained oscillation found"

let phase_profile ?(species = 0) p ~x0 ~n_phi =
  assert (n_phi >= 2);
  assert (species >= 0 && species < 3);
  let t = period p ~x0 in
  let transient = 600.0 in
  (* Align the cycle start to an upward mean-crossing after the transient. *)
  let probe_times = Vec.linspace 0.0 (transient +. (3.0 *. t)) 20000 in
  let sol = simulate p ~x0 ~times:probe_times in
  let post_mean =
    let acc = ref [] in
    Array.iteri
      (fun i ti -> if ti >= transient then acc := Mat.get sol.Ode.states i species :: !acc)
      probe_times;
    Vec.mean (Vec.of_list !acc)
  in
  let start =
    match List.filter (fun c -> c >= transient) (crossings_of sol post_mean ~component:species) with
    | c :: _ -> c
    | [] -> transient
  in
  let bin_width = 1.0 /. float_of_int n_phi in
  let phases = Array.init n_phi (fun j -> (float_of_int j +. 0.5) *. bin_width) in
  let sample_times = Array.map (fun phi -> start +. (phi *. t)) phases in
  let times_full = Array.append [| 0.0 |] sample_times in
  let sol2 = simulate p ~x0 ~times:times_full in
  let profile = Array.init n_phi (fun j -> Mat.get sol2.Ode.states (j + 1) species) in
  (phases, profile)
