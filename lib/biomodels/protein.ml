open Numerics

type kinetics = {
  translation : float;
  degradation : float;
}

(* With a = k_deg·T and source s(φ) = k_tl·T·m(φ):
     p(φ) = e^{−aφ} ( p0 + ∫₀^φ s(u) e^{au} du ),
   and periodicity p(1) = p0 gives
     p0 = e^{−a} I(1) / (1 − e^{−a}),  I(φ) = ∫₀^φ s(u) e^{au} du. *)
let steady_profile ?(n_quad = 2048) k ~period ~mrna ~phases =
  assert (k.degradation > 0.0);
  assert (period > 0.0);
  let a = k.degradation *. period in
  let source u = k.translation *. period *. mrna u in
  (* Cumulative integral I on a fine uniform grid (trapezoid). *)
  let h = 1.0 /. float_of_int n_quad in
  let cumulative = Array.make (n_quad + 1) 0.0 in
  let integrand u = source u *. exp (a *. u) in
  let previous = ref (integrand 0.0) in
  for i = 1 to n_quad do
    let u = float_of_int i *. h in
    let current = integrand u in
    cumulative.(i) <- cumulative.(i - 1) +. (h *. (!previous +. current) /. 2.0);
    previous := current
  done;
  let grid = Array.init (n_quad + 1) (fun i -> float_of_int i *. h) in
  let i_of phi = Interp.linear_clamped ~x:grid ~y:cumulative phi in
  let p0 =
    let e = exp (-.a) in
    e *. i_of 1.0 /. (1.0 -. e)
  in
  Array.map (fun phi -> exp (-.a *. phi) *. (p0 +. i_of phi)) phases

let phase_lag ~mrna_peak ~protein_peak =
  let lag = protein_peak -. mrna_peak in
  if lag < 0.0 then lag +. 1.0 else lag
