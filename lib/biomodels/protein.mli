(** Protein dynamics downstream of a deconvolved mRNA profile.

    Once deconvolution yields the single-cell mRNA concentration m(φ), the
    corresponding protein concentration follows the linear kinetics

    dp/dt = k_tl · m(φ(t)) − k_deg · p,   t = φ·T,

    and, because protein numbers partition with volume at division,
    concentration is continuous across division: the relevant single-cell
    profile is the periodic steady state p(0) = p(1). This module computes
    it in closed form (integrating factor + periodicity), enabling the
    "fit single-cell models to deconvolved data" workflow of the paper's
    §5 to chain from transcript to protein. *)

open Numerics

type kinetics = {
  translation : float;  (** k_tl, protein · mRNA⁻¹ · min⁻¹ *)
  degradation : float;  (** k_deg, min⁻¹ (> 0; includes dilution) *)
}

val steady_profile :
  ?n_quad:int -> kinetics -> period:float -> mrna:(float -> float) -> phases:Vec.t -> Vec.t
(** Periodic steady-state protein concentration at the given phases.
    [n_quad] (default 2048) trapezoid panels resolve the convolution
    integral. *)

val phase_lag : mrna_peak:float -> protein_peak:float -> float
(** Circular lag protein-after-mRNA in [0, 1). *)
