(** The classical Lotka–Volterra system used by the paper (§4.1, eqs.
    20–21) as a 'toy' cell-cycle-regulated biological oscillator:

    ẋ1 = x1 (a − b x2),   ẋ2 = x2 (c x1 − d)

    x1 and x2 are two chemical species which bind and convert x1 to x2.
    The default parameters give an oscillation period of ≈150 minutes
    (matching the average Caulobacter cycle time) with amplitudes similar
    to the paper's Figs. 2–3 (x1 up to ≈3, x2 up to ≈12). *)

open Numerics

type params = { a : float; b : float; c : float; d : float }

val default_params : params
val default_x0 : Vec.t

val system : params -> Ode.system

val equilibrium : params -> Vec.t
(** The coexistence fixed point (d/c, a/b). *)

val conserved : params -> Vec.t -> float
(** The LV first integral V = c·x1 − d·ln x1 + b·x2 − a·ln x2; constant
    along trajectories (used to validate the integrator). *)

val simulate : ?rtol:float -> params -> x0:Vec.t -> times:Vec.t -> Ode.solution

val period : ?t_max:float -> params -> x0:Vec.t -> float
(** Oscillation period measured from successive upward crossings of
    x1 through its equilibrium value. *)

val phase_profiles : params -> x0:Vec.t -> n_phi:int -> Vec.t * Vec.t * Vec.t
(** [(phases, f1, f2)]: one full period resampled onto [n_phi] phase-bin
    centers on [0, 1) — the 'true' synchronized single-cell expression
    profiles used as deconvolution ground truth. *)
