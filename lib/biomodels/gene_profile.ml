open Numerics

type t = float -> float

let constant v _phi = v

let cosine ?(mean = 1.0) ?(amplitude = 0.5) ?(cycles = 1.0) ?(phase_shift = 0.0) () phi =
  Float.max 0.0 (mean +. (amplitude *. cos (2.0 *. Float.pi *. cycles *. (phi -. phase_shift))))

let gaussian_pulse ~center ~width ~height ?(baseline = 0.0) () phi =
  let z = (phi -. center) /. width in
  baseline +. (height *. exp (-0.5 *. z *. z))

let smoothstep ~at ~width ~low ~high phi =
  let z = (phi -. at) /. width in
  let s = 1.0 /. (1.0 +. exp (-.z)) in
  low +. ((high -. low) *. s)

let ramp ~from_value ~to_value phi = from_value +. ((to_value -. from_value) *. phi)

let delayed_pulse ~delay ~peak_at ~peak ~tail phi =
  assert (delay < peak_at && peak_at < 1.0);
  if phi <= delay then 0.0
  else if phi <= peak_at then begin
    (* Smooth cubic rise 0 -> peak with zero slope at both ends. *)
    let s = (phi -. delay) /. (peak_at -. delay) in
    peak *. s *. s *. (3.0 -. (2.0 *. s))
  end
  else begin
    (* Exponential-like decay toward the tail value, C1 at the peak. *)
    let s = (phi -. peak_at) /. (1.0 -. peak_at) in
    tail +. ((peak -. tail) *. exp (-4.0 *. s *. s))
  end

let from_samples ~phases ~values =
  let interp = Interp.pchip_build ~x:phases ~y:values in
  fun phi -> Interp.pchip_eval interp phi

let sample f grid = Array.map f grid
