open Numerics

type params = { a : float; b : float; c : float; d : float }

(* Tuned so the closed orbit through default_x0 has a period of ~150 min,
   x1 amplitude ~0.3–3 and x2 amplitude ~1–12, echoing the paper's Fig. 2. *)
let default_params = { a = 0.045620; b = 0.009124; c = 0.038017; d = 0.045620 }

let default_x0 = [| 0.35; 5.0 |]

let system p : Ode.system =
 fun _t y ->
  let x1 = y.(0) and x2 = y.(1) in
  [| x1 *. (p.a -. (p.b *. x2)); x2 *. ((p.c *. x1) -. p.d) |]

let equilibrium p = [| p.d /. p.c; p.a /. p.b |]

let conserved p y =
  let x1 = y.(0) and x2 = y.(1) in
  (p.c *. x1) -. (p.d *. log x1) +. (p.b *. x2) -. (p.a *. log x2)

let simulate ?(rtol = 1e-9) p ~x0 ~times = Ode.rk45 ~rtol ~atol:1e-12 (system p) ~y0:x0 ~times

let period ?(t_max = 1000.0) p ~x0 =
  let eq = equilibrium p in
  let n = 20000 in
  let times = Vec.linspace 0.0 t_max n in
  let sol = simulate p ~x0 ~times in
  (* Collect upward crossings of x1 through its equilibrium. *)
  let crossings = ref [] in
  for i = 0 to n - 2 do
    let a = Mat.get sol.Ode.states i 0 -. eq.(0) in
    let b = Mat.get sol.Ode.states (i + 1) 0 -. eq.(0) in
    if a < 0.0 && b >= 0.0 then begin
      let t0 = times.(i) and t1 = times.(i + 1) in
      let t_cross = t0 +. ((t1 -. t0) *. (-.a /. (b -. a))) in
      crossings := t_cross :: !crossings
    end
  done;
  match List.rev !crossings with
  | c0 :: rest when List.length rest >= 1 ->
    (* Average spacing over all observed cycles for robustness. *)
    let last = List.nth rest (List.length rest - 1) in
    (last -. c0) /. float_of_int (List.length rest)
  | _ -> failwith "Lotka_volterra.period: fewer than two crossings; increase t_max"

let phase_profiles p ~x0 ~n_phi =
  assert (n_phi >= 2);
  let t = period p ~x0 in
  let bin_width = 1.0 /. float_of_int n_phi in
  let phases = Array.init n_phi (fun j -> (float_of_int j +. 0.5) *. bin_width) in
  let times = Array.map (fun phi -> phi *. t) phases in
  (* rk45 requires the first output time; prepend 0 then drop it. *)
  let times_full = Array.append [| 0.0 |] times in
  let sol = simulate p ~x0 ~times:times_full in
  let f1 = Array.init n_phi (fun j -> Mat.get sol.Ode.states (j + 1) 0) in
  let f2 = Array.init n_phi (fun j -> Mat.get sol.Ode.states (j + 1) 1) in
  (phases, f1, f2)
