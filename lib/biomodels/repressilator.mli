(** Elowitz–Leibler repressilator — a third oscillator for stress-testing
    the deconvolution on sharper waveforms (extension):

    ṁ_i = α/(1 + p_{i−1}ⁿ) + α0 − m_i,   ṗ_i = β (m_i − p_i),  i ∈ {1,2,3}

    with indices cyclic. State layout: [m1; m2; m3; p1; p2; p3]. *)

open Numerics

type params = { alpha : float; alpha0 : float; beta : float; n : float; timescale : float }

val default_params : params
(** [timescale] rescales time so the period lands near 150 'minutes'. *)

val default_x0 : Vec.t
val system : params -> Ode.system
val simulate : ?rtol:float -> params -> x0:Vec.t -> times:Vec.t -> Ode.solution
val period : ?t_max:float -> ?transient:float -> params -> x0:Vec.t -> float

val phase_profile : ?species:int -> params -> x0:Vec.t -> n_phi:int -> Vec.t * Vec.t
(** One post-transient period of the chosen state component (default m1). *)
