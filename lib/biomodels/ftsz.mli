(** Synthetic ftsZ expression model (paper §4.3, Fig. 5).

    FtsZ is a tubulin homolog essential for bacterial cell division,
    transcribed only after DNA replication begins at the SW→ST transition
    (Kelly et al. 1998): its single-cell profile is *zero* during the
    swarmer stage, rises to a maximum near φ ≈ 0.4, then drops with no
    subsequent increase. The paper deconvolves McGrath et al. 2007
    microarray data; as that dataset is not redistributable, we build a
    synthetic single-cell profile with exactly the documented features and
    generate the population data through the forward model (substitution
    recorded in DESIGN.md). The experiment then checks that deconvolution
    recovers the delay and the post-peak drop that the population-level
    curve hides. *)

open Numerics

val transcription_onset : float
(** Phase at which ftsZ transcription begins (≈ the SW→ST transition). *)

val peak_phase : float
(** Phase of maximal transcript concentration (paper: φ ≈ 0.4). *)

val profile : Gene_profile.t
(** The synthetic single-cell profile. Satisfies the division-conservation
    relation f(1) = 0.4·f(0) + 0.6·f(φ_sst) at φ_sst = onset. *)

val sample : Vec.t -> Vec.t

val delay_visible : phases:Vec.t -> values:Vec.t -> threshold:float -> bool
(** True when the profile stays below [threshold × max] for all phases
    before {!transcription_onset} — the paper's "transcription delay"
    feature detector, applied to either the truth or an estimate. *)

val post_peak_monotone_drop : phases:Vec.t -> values:Vec.t -> tolerance:float -> bool
(** True when, after the profile's maximum, values never rise again by more
    than [tolerance × max] — the paper's "no subsequent increase"
    prediction. *)
