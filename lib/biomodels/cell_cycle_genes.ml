open Numerics

type gene = {
  name : string;
  expression_class : [ `Swarmer | `Early_stalked | `Mid_cycle | `Late_predivisional ];
  profile : Gene_profile.t;
  peak_phase : float;
}

let pulse ~center ~width ~height ~baseline =
  Gene_profile.gaussian_pulse ~center ~width ~height ~baseline ()

(* Peak phases chosen inside the four class windows below; amplitudes and
   widths vary so no two genes are trivially identical. *)
let panel =
  [|
    (* Swarmer-stage genes: expressed right after birth. *)
    { name = "flgA"; expression_class = `Swarmer; peak_phase = 0.04;
      profile = pulse ~center:0.04 ~width:0.06 ~height:5.0 ~baseline:0.3 };
    { name = "pilX"; expression_class = `Swarmer; peak_phase = 0.08;
      profile = pulse ~center:0.08 ~width:0.05 ~height:3.0 ~baseline:0.2 };
    { name = "cheY"; expression_class = `Swarmer; peak_phase = 0.11;
      profile = pulse ~center:0.11 ~width:0.07 ~height:4.0 ~baseline:0.4 };
    (* Replication initiation around the SW->ST transition. *)
    { name = "dnaX"; expression_class = `Early_stalked; peak_phase = 0.22;
      profile = pulse ~center:0.22 ~width:0.08 ~height:6.0 ~baseline:0.5 };
    { name = "gcrB"; expression_class = `Early_stalked; peak_phase = 0.28;
      profile = pulse ~center:0.28 ~width:0.07 ~height:3.5 ~baseline:0.3 };
    { name = "repA"; expression_class = `Early_stalked; peak_phase = 0.34;
      profile = pulse ~center:0.34 ~width:0.09 ~height:4.5 ~baseline:0.4 };
    (* Mid-cycle division machinery (the ftsZ neighborhood). *)
    { name = "ftsZ*"; expression_class = `Mid_cycle; peak_phase = 0.45;
      profile = pulse ~center:0.45 ~width:0.09 ~height:8.0 ~baseline:0.3 };
    { name = "ftsQ*"; expression_class = `Mid_cycle; peak_phase = 0.52;
      profile = pulse ~center:0.52 ~width:0.10 ~height:5.0 ~baseline:0.5 };
    { name = "murB"; expression_class = `Mid_cycle; peak_phase = 0.58;
      profile = pulse ~center:0.58 ~width:0.08 ~height:4.0 ~baseline:0.4 };
    (* Late predivisional genes. *)
    { name = "ccrX"; expression_class = `Late_predivisional; peak_phase = 0.74;
      profile = pulse ~center:0.74 ~width:0.08 ~height:6.0 ~baseline:0.4 };
    { name = "parZ"; expression_class = `Late_predivisional; peak_phase = 0.82;
      profile = pulse ~center:0.82 ~width:0.07 ~height:3.0 ~baseline:0.3 };
    { name = "podJ*"; expression_class = `Late_predivisional; peak_phase = 0.90;
      profile = pulse ~center:0.90 ~width:0.06 ~height:4.5 ~baseline:0.2 };
  |]

let class_index g =
  match g.expression_class with
  | `Swarmer -> 0
  | `Early_stalked -> 1
  | `Mid_cycle -> 2
  | `Late_predivisional -> 3

(* Window edges halfway between the extreme peaks of adjacent classes. *)
let class_boundaries = [| 0.165; 0.395; 0.66 |]

let sample_profiles genes ~phases =
  Mat.init (Array.length genes) (Array.length phases) (fun g j ->
      genes.(g).profile phases.(j))
