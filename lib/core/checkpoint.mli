(** Crash-safe JSONL journal of per-gene batch outcomes — the
    checkpoint/resume layer of the survivable genome-scale run.

    {b File format.} Line 1 is the header
    [{"journal":"deconv-batch","version":1}]; every further line is one
    {!entry}: [{"gene":g,"key":"…","ok":{…}}] for a completed estimate or
    [{"gene":g,"key":"…","error":{…}}] for a journaled {!Robust.Error.t}.
    Every float is serialized as a hexadecimal literal ([%h]) inside a
    JSON string and parsed back with [float_of_string], so replayed
    estimates are bit-for-bit identical to the originals.

    {b Durability.} The journal is flushed through
    {!Dataio.Atomic_file.write} (temp file + [fsync] + [rename]) once per
    appended batch, so after SIGKILL the file on disk is always a valid
    journal — the last complete batch, never a torn line.

    {b Keys.} Each entry carries a content hash ({!key_of_parts}, FNV-1a
    64) of everything that determines the gene's result: kernel, basis,
    constraint set, λ policy and the gene's data row. [--resume] only
    replays an entry when both the gene index and the key match, so a
    journal from a different configuration silently re-solves instead of
    corrupting the run. *)

type entry = {
  gene : int;  (** row index in the batch's measurement matrix *)
  key : string;  (** content hash (16 hex digits) of the solve's inputs *)
  outcome : (Solver.estimate, Robust.Error.t) result;
}

val key_of_parts : string list -> string
(** FNV-1a 64-bit hash of the length-prefixed parts, as 16 hex digits. *)

val vec_part : Numerics.Vec.t -> string
(** Canonical (hex-float) key part for a vector. *)

val mat_part : Numerics.Mat.t -> string
(** Canonical key part for a matrix, row-major. *)

type t
(** An open journal: in-memory entries mirrored to disk on {!append}. *)

val create : path:string -> t
(** Start a fresh journal at [path], immediately replacing whatever was
    there (so a stale journal can never leak into a later [--resume]). *)

val resume : path:string -> (t, string) result
(** Reopen an existing journal, keeping its entries; a missing file yields
    an empty journal. [Error] describes the first malformed line. *)

val append : t -> entry list -> unit
(** Record a batch of outcomes and atomically rewrite the journal
    ([fsync]'d). No-op on []. *)

val entries : t -> entry list
(** All entries, in append order. *)

val path : t -> string

val find : entry list -> gene:int -> key:string -> entry option
(** The replayable entry for a gene, if its key matches. *)

val load : path:string -> (entry list, string) result
(** Read a journal without opening it for writing ([Ok []] if absent). *)

val entry_json : entry -> string
(** One JSONL line, no trailing newline (exposed for tests). *)

val entry_of_line : string -> (entry, string) result
(** Parse one entry line (exposed for tests). *)
