open Numerics

type t = {
  kernel : Cellpop.Kernel.t;
  basis : Spline.Basis.t;
  measurements : Vec.t;
  sigmas : Vec.t;
  params : Cellpop.Params.t;
  use_positivity : bool;
  use_conservation : bool;
  use_rate_continuity : bool;
  design : Mat.t;
  penalty : Mat.t;
}

let create ?(use_positivity = true) ?(use_conservation = true) ?(use_rate_continuity = true)
    ?sigmas ~kernel ~basis ~measurements ~params () =
  let n_m = Array.length measurements in
  if Array.length kernel.Cellpop.Kernel.times <> n_m then
    Robust.Error.raise_error
      (Robust.Error.Invalid_input
         {
           field = "measurements";
           why =
             Printf.sprintf "%d measurements but kernel has %d times" n_m
               (Array.length kernel.Cellpop.Kernel.times);
         });
  let sigmas =
    match sigmas with
    | Some s ->
      if Array.length s <> n_m then
        Robust.Error.raise_error
          (Robust.Error.Invalid_input
             {
               field = "sigmas";
               why =
                 Printf.sprintf "%d sigmas for %d measurements" (Array.length s) n_m;
             });
      (* Sigma positivity/finiteness is deliberately NOT asserted here:
         [validate] reports it as a typed error, and the robust solver can
         repair it. *)
      s
    | None -> Vec.ones n_m
  in
  {
    kernel;
    basis;
    measurements;
    sigmas;
    params;
    use_positivity;
    use_conservation;
    use_rate_continuity;
    (* Assembled once here: kernel- and basis-derived matrices are
       invariant under the record updates the codebase performs (new
       measurements/sigmas for bootstrap resamples and input repair), and
       recomputing them dominated every λ-sweep before the spectral fast
       path. Swapping the kernel or basis must go through [create]. *)
    design = Forward.matrix_basis kernel basis;
    penalty = Spline.Penalty.second_derivative basis;
  }

let num_measurements t = Array.length t.measurements

let validate t =
  let ( let* ) = Result.bind in
  let* () = Robust.Validate.kernel t.kernel in
  let* () =
    if t.basis.Spline.Basis.size < 2 then
      Error
        (Robust.Error.Invalid_input
           { field = "basis"; why = "fewer than 2 basis functions" })
    else Ok ()
  in
  let* () = Robust.Validate.finite ~stage:"measurements" t.measurements in
  Robust.Validate.sigmas t.sigmas

let weights t = Array.map (fun s -> 1.0 /. (s *. s)) t.sigmas

let design t = t.design

let penalty t = t.penalty
