open Numerics

type t = {
  kernel : Cellpop.Kernel.t;
  basis : Spline.Basis.t;
  measurements : Vec.t;
  sigmas : Vec.t;
  params : Cellpop.Params.t;
  use_positivity : bool;
  use_conservation : bool;
  use_rate_continuity : bool;
}

let create ?(use_positivity = true) ?(use_conservation = true) ?(use_rate_continuity = true)
    ?sigmas ~kernel ~basis ~measurements ~params () =
  let n_m = Array.length measurements in
  assert (Array.length kernel.Cellpop.Kernel.times = n_m);
  let sigmas =
    match sigmas with
    | Some s ->
      assert (Array.length s = n_m);
      Array.iter (fun x -> assert (x > 0.0)) s;
      s
    | None -> Vec.ones n_m
  in
  {
    kernel;
    basis;
    measurements;
    sigmas;
    params;
    use_positivity;
    use_conservation;
    use_rate_continuity;
  }

let num_measurements t = Array.length t.measurements

let weights t = Array.map (fun s -> 1.0 /. (s *. s)) t.sigmas

let design t = Forward.matrix_basis t.kernel t.basis

let penalty t = Spline.Penalty.second_derivative t.basis
