open Numerics

type bands = {
  level : float;
  lower : Vec.t;
  median : Vec.t;
  upper : Vec.t;
  replicates : Mat.t;
}

let residual ?(replicates = 200) ?(level = 0.9) problem (estimate : Solver.estimate) ~rng =
  assert (replicates >= 10);
  assert (level > 0.0 && level < 1.0);
  let g = problem.Problem.measurements in
  let fitted = estimate.Solver.fitted in
  let sigmas = problem.Problem.sigmas in
  let n_m = Array.length g in
  (* Standardized residuals: r_m / sigma_m are exchangeable under the
     weighted model. *)
  let standardized = Array.init n_m (fun m -> (g.(m) -. fitted.(m)) /. sigmas.(m)) in
  let n_phi = Array.length estimate.Solver.profile in
  let profiles = Mat.zeros replicates n_phi in
  (* One substream per replicate, derived sequentially up front, so the
     resampling draws are a function of the replicate index alone and the
     fan-out below is bit-identical at every jobs setting. Each replicate
     solves into its own matrix row. *)
  let rngs = Array.make replicates rng in
  for b = 0 to replicates - 1 do
    rngs.(b) <- Rng.split rng
  done;
  (* Replicates share the design, weights and penalty (only measurements
     are resampled), so one locally created factorization cache serves the
     whole fan-out: a single Demmler–Reinsch decomposition warm-starts
     every replicate's QP. [residual_result] wires its cache identically —
     the bit-identical contract between the two paths includes the solver
     route. *)
  let cache = Optimize.Spectral.Cache.create () in
  Parallel.parallel_for ~n:replicates (fun ~lo ~hi ->
      for b = lo to hi - 1 do
        let brng = rngs.(b) in
        let resampled = Array.make n_m 0.0 in
        for m = 0 to n_m - 1 do
          resampled.(m) <- fitted.(m) +. (sigmas.(m) *. Rng.pick brng standardized)
        done;
        let problem_b = { problem with Problem.measurements = resampled } in
        let estimate_b = Solver.solve ~lambda:estimate.Solver.lambda ~cache problem_b in
        Mat.set_row profiles b estimate_b.Solver.profile
      done);
  let alpha = (1.0 -. level) /. 2.0 in
  let percentile q = Array.init n_phi (fun j -> Stats.quantile (Mat.col profiles j) q) in
  {
    level;
    lower = percentile alpha;
    median = percentile 0.5;
    upper = percentile (1.0 -. alpha);
    replicates = profiles;
  }

type outcome = {
  bands : bands option;
  failures : (int * Robust.Error.t) list;
  attempted : int;
  quality : (string * Quality.quantiles) list;
}

let residual_result ?(replicates = 200) ?(level = 0.9) ?max_seconds ?max_iterations ?progress
    problem (estimate : Solver.estimate) ~rng =
  assert (replicates >= 10);
  assert (level > 0.0 && level < 1.0);
  let g = problem.Problem.measurements in
  let fitted = estimate.Solver.fitted in
  let sigmas = problem.Problem.sigmas in
  let n_m = Array.length g in
  let standardized = Array.init n_m (fun m -> (g.(m) -. fitted.(m)) /. sigmas.(m)) in
  let n_phi = Array.length estimate.Solver.profile in
  (* Substreams derived exactly like [residual]'s, so the draws — and
     therefore every successful replicate's profile — are bit-identical
     to the all-or-nothing path. *)
  let rngs = Array.make replicates rng in
  for b = 0 to replicates - 1 do
    rngs.(b) <- Rng.split rng
  done;
  (* Factorization cache wired exactly as in [residual]: one decomposition
     shared by all replicates, so both paths take the same solver route and
     successful replicates stay bit-identical between them. *)
  let cache = Optimize.Spectral.Cache.create () in
  (* Same aggregation-only contract as Batch: fires on worker domains,
     Progress is mutex-guarded, replicate profiles are unaffected. *)
  let on_result _ res =
    match res with
    | Ok _ -> Obs.Progress.record_into progress ~ok:true ()
    | Error exn ->
      Obs.Progress.record_into progress
        ~cls:(Robust.Error.class_name (Robust.Error.of_exn exn))
        ~ok:false ()
  in
  let results =
    Parallel.parallel_map_result ~on_result ~n:replicates (fun b ->
        Obs.Diag.with_solve (Printf.sprintf "rep:%d" b) (fun () ->
            let brng = rngs.(b) in
            let resampled = Array.make n_m 0.0 in
            for m = 0 to n_m - 1 do
              resampled.(m) <- fitted.(m) +. (sigmas.(m) *. Rng.pick brng standardized)
            done;
            let problem_b = { problem with Problem.measurements = resampled } in
            let budget =
              if max_seconds = None && max_iterations = None then None
              else Some (Robust.Budget.create ?max_seconds ?max_iterations ())
            in
            let estimate_b =
              Solver.solve ?budget ~lambda:estimate.Solver.lambda ~cache problem_b
            in
            if Solver.finite_estimate estimate_b then
              ( estimate_b.Solver.profile,
                [
                  ("rss", estimate_b.Solver.data_misfit);
                  ("qp_iterations", float_of_int estimate_b.Solver.qp_iterations);
                  ("active_positivity", float_of_int estimate_b.Solver.active_positivity);
                ] )
            else
              Robust.Error.raise_error (Robust.Error.Non_finite { stage = "bootstrap replicate" })))
  in
  let failures = ref [] in
  let ok = ref [] in
  let stats = ref [] in
  Array.iteri
    (fun b -> function
      | Ok (profile, s) ->
        ok := profile :: !ok;
        stats := s :: !stats
      | Error exn -> failures := (b, Robust.Error.of_exn exn) :: !failures)
    results;
  let failures = List.rev !failures in
  let profiles_ok = Array.of_list (List.rev !ok) in
  (* Per-replicate quality quantiles: a replicate population whose RSS or
     iteration quantiles drift from the original fit's signals that the
     resampled problems are not exchangeable with it. *)
  let quality = Quality.summarize (List.rev !stats) in
  List.iter
    (fun (key, (q : Quality.quantiles)) ->
      Obs.Metrics.set ("bootstrap.quality." ^ key ^ ".p50") q.Quality.q50;
      Obs.Metrics.set ("bootstrap.quality." ^ key ^ ".p90") q.Quality.q90)
    quality;
  let bands =
    if Array.length profiles_ok = 0 then None
    else begin
      let profiles = Mat.of_rows profiles_ok in
      let alpha = (1.0 -. level) /. 2.0 in
      let percentile q = Array.init n_phi (fun j -> Stats.quantile (Mat.col profiles j) q) in
      Some
        {
          level;
          lower = percentile alpha;
          median = percentile 0.5;
          upper = percentile (1.0 -. alpha);
          replicates = profiles;
        }
    end
  in
  Obs.Metrics.incr ~by:(float_of_int (List.length failures)) "bootstrap.replicates_failed";
  { bands; failures; attempted = replicates; quality }

let width bands = Vec.sub bands.upper bands.lower

let coverage bands ~truth =
  assert (Array.length truth = Array.length bands.lower);
  let inside = ref 0 in
  Array.iteri
    (fun j v -> if v >= bands.lower.(j) -. 1e-12 && v <= bands.upper.(j) +. 1e-12 then incr inside)
    truth;
  float_of_int !inside /. float_of_int (Array.length truth)
