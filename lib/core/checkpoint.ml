open Numerics

type entry = {
  gene : int;
  key : string;
  outcome : (Solver.estimate, Robust.Error.t) result;
}

(* All floats travel as hexadecimal literals ("%h") inside JSON strings:
   float_of_string round-trips them bit-for-bit, which is what makes a
   resumed run reproduce the uninterrupted run exactly. *)
let hex = Printf.sprintf "%h"

let float_of_token s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> failwith (Printf.sprintf "checkpoint: unreadable float %S" s)

(* ---------------- content keys ---------------- *)

(* FNV-1a 64-bit over length-prefixed parts (the prefix keeps part
   boundaries from aliasing: ["ab";"c"] and ["a";"bc"] hash apart). *)
let key_of_parts parts =
  let h = ref 0xcbf29ce484222325L in
  let feed s =
    String.iter
      (fun c ->
        h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
      s
  in
  List.iter
    (fun part ->
      feed (string_of_int (String.length part));
      feed ":";
      feed part)
    parts;
  Printf.sprintf "%016Lx" !h

let vec_part v = String.concat "," (Array.to_list (Array.map hex v))

let mat_part (m : Mat.t) =
  String.concat ";" (List.init m.Mat.rows (fun i -> vec_part (Mat.row m i)))

(* ---------------- JSON writing ---------------- *)

let vec_json v =
  "[" ^ String.concat "," (Array.to_list (Array.map (fun x -> "\"" ^ hex x ^ "\"") v)) ^ "]"

let estimate_json (e : Solver.estimate) =
  Printf.sprintf
    {|{"alpha":%s,"profile":%s,"fitted":%s,"lambda":"%s","cost":"%s","data_misfit":"%s","roughness":"%s","active_positivity":%d,"qp_iterations":%d}|}
    (vec_json e.Solver.alpha) (vec_json e.Solver.profile) (vec_json e.Solver.fitted)
    (hex e.Solver.lambda) (hex e.Solver.cost) (hex e.Solver.data_misfit)
    (hex e.Solver.roughness) e.Solver.active_positivity e.Solver.qp_iterations

let error_json (e : Robust.Error.t) =
  let cls = Robust.Error.class_name e in
  let payload =
    match e with
    | Robust.Error.Ill_conditioned { cond } -> Printf.sprintf {|,"cond":"%s"|} (hex cond)
    | Qp_stalled { iterations } -> Printf.sprintf {|,"iterations":%d|} iterations
    | Non_finite { stage } ->
      Printf.sprintf {|,"stage":"%s"|} (Obs.Export.json_escape stage)
    | Invalid_input { field; why } ->
      Printf.sprintf {|,"field":"%s","why":"%s"|} (Obs.Export.json_escape field)
        (Obs.Export.json_escape why)
    | Kernel_degenerate -> ""
    | Budget_exhausted { resource; limit; spent } ->
      Printf.sprintf {|,"resource":"%s","limit":"%s","spent":"%s"|}
        (Obs.Export.json_escape resource) (hex limit) (hex spent)
    | Unexpected { description } ->
      Printf.sprintf {|,"description":"%s"|} (Obs.Export.json_escape description)
  in
  Printf.sprintf {|{"class":"%s"%s}|} cls payload

let entry_json { gene; key; outcome } =
  match outcome with
  | Ok est -> Printf.sprintf {|{"gene":%d,"key":"%s","ok":%s}|} gene key (estimate_json est)
  | Error e -> Printf.sprintf {|{"gene":%d,"key":"%s","error":%s}|} gene key (error_json e)

let header_json = {|{"journal":"deconv-batch","version":1}|}

(* ---------------- JSON reading ---------------- *)

open Obs.Export

let field name fields = List.assoc_opt name fields

let str_field name fields =
  match field name fields with
  | Some (J_str s) -> s
  | _ -> failwith (Printf.sprintf "checkpoint: missing string field %S" name)

let int_field name fields =
  match field name fields with
  | Some (J_num s) -> (
    match int_of_string_opt s with
    | Some i -> i
    | None -> failwith (Printf.sprintf "checkpoint: non-integer field %S" name))
  | _ -> failwith (Printf.sprintf "checkpoint: missing integer field %S" name)

let float_field name fields = float_of_token (str_field name fields)

let vec_field name fields =
  match field name fields with
  | Some (J_arr items) ->
    Array.of_list
      (List.map
         (function
           | J_str s -> float_of_token s
           | _ -> failwith (Printf.sprintf "checkpoint: non-string element in %S" name))
         items)
  | _ -> failwith (Printf.sprintf "checkpoint: missing vector field %S" name)

let estimate_of_fields fields : Solver.estimate =
  {
    Solver.alpha = vec_field "alpha" fields;
    profile = vec_field "profile" fields;
    fitted = vec_field "fitted" fields;
    lambda = float_field "lambda" fields;
    cost = float_field "cost" fields;
    data_misfit = float_field "data_misfit" fields;
    roughness = float_field "roughness" fields;
    active_positivity = int_field "active_positivity" fields;
    qp_iterations = int_field "qp_iterations" fields;
  }

let error_of_fields fields : Robust.Error.t =
  match str_field "class" fields with
  | "ill_conditioned" -> Ill_conditioned { cond = float_field "cond" fields }
  | "qp_stalled" -> Qp_stalled { iterations = int_field "iterations" fields }
  | "non_finite" -> Non_finite { stage = str_field "stage" fields }
  | "invalid_input" ->
    Invalid_input { field = str_field "field" fields; why = str_field "why" fields }
  | "kernel_degenerate" -> Kernel_degenerate
  | "budget_exhausted" ->
    Budget_exhausted
      {
        resource = str_field "resource" fields;
        limit = float_field "limit" fields;
        spent = float_field "spent" fields;
      }
  | "unexpected" -> Unexpected { description = str_field "description" fields }
  | cls -> failwith (Printf.sprintf "checkpoint: unknown error class %S" cls)

let entry_of_line line =
  match json_of_string line with
  | Error e -> Error e
  | Ok (J_obj fields) -> (
    match
      let gene = int_field "gene" fields in
      let key = str_field "key" fields in
      match (field "ok" fields, field "error" fields) with
      | Some (J_obj ok), None -> { gene; key; outcome = Ok (estimate_of_fields ok) }
      | None, Some (J_obj err) -> { gene; key; outcome = Error (error_of_fields err) }
      | _ -> failwith "checkpoint: entry needs exactly one of \"ok\"/\"error\""
    with
    | entry -> Ok entry
    | exception Failure msg -> Error msg)
  | Ok _ -> Error "checkpoint: entry line is not a JSON object"

let load ~path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in_bin path in
    let finally () = close_in_noerr ic in
    Fun.protect ~finally (fun () ->
        let rec lines acc n =
          match input_line ic with
          | line -> lines (if String.trim line = "" then acc else (n, line) :: acc) (n + 1)
          | exception End_of_file -> List.rev acc
        in
        match lines [] 1 with
        | [] -> Ok []
        | (_, first) :: rest -> (
          match json_of_string first with
          | Ok (J_obj fields)
            when (match field "journal" fields with
                 | Some (J_str "deconv-batch") -> true
                 | _ -> false) ->
            let parse (n, line) =
              match entry_of_line line with
              | Ok e -> Ok e
              | Error msg -> Error (Printf.sprintf "%s:%d: %s" path n msg)
            in
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | x :: tl -> ( match parse x with Ok e -> go (e :: acc) tl | Error _ as e -> e)
            in
            go [] rest
          | _ -> Error (Printf.sprintf "%s:1: not a deconv-batch journal header" path)))
  end

(* ---------------- the journal ---------------- *)

type t = { path : string; mutable entries : entry list (* in append order *) }

let path t = t.path
let entries t = t.entries

let flush_to_disk t =
  Dataio.Atomic_file.write t.path (fun oc ->
      output_string oc header_json;
      output_char oc '\n';
      List.iter
        (fun e ->
          output_string oc (entry_json e);
          output_char oc '\n')
        t.entries)

let create ~path =
  let t = { path; entries = [] } in
  (* Materialize the (empty) journal immediately so a stale file from an
     unrelated earlier run can never be replayed by a later --resume. *)
  flush_to_disk t;
  t

let resume ~path =
  match load ~path with
  | Ok entries -> Ok { path; entries }
  | Error _ as e -> e

let append t new_entries =
  if new_entries <> [] then begin
    t.entries <- t.entries @ new_entries;
    flush_to_disk t
  end

let find entries ~gene ~key =
  List.find_opt (fun e -> e.gene = gene && String.equal e.key key) entries
