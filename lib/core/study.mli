(** Monte-Carlo recovery studies: how well does deconvolution work *on
    average* over a family of plausible single-cell profiles, rather than
    on one hand-picked example? *)

open Numerics

val random_profile : Rng.t -> float -> float
(** A random non-negative phase profile: a baseline plus 1–3 Gaussian
    pulses with random centers, widths and heights. Calling it is pure;
    randomness is consumed when the profile is built — build one per run
    via [fun () -> random_profile rng]. *)

type summary = {
  runs : int;
  median_rmse : float;
  iqr_rmse : float * float;  (** 25th / 75th percentiles *)
  median_correlation : float;
  worst_correlation : float;
  fraction_above_09 : float;  (** fraction of runs with correlation > 0.9 *)
}

val recovery_distribution :
  ?runs:int -> Pipeline.config -> rng:Rng.t -> Metrics.comparison array
(** Run the pipeline on [runs] (default 20) random profiles, varying the
    pipeline seed per run. *)

val summarize : Metrics.comparison array -> summary

val to_string : summary -> string
