open Numerics

type report = {
  standardized_residuals : Vec.t;
  chi2 : float;
  dof : float;
  p_value : float;
  lag1_autocorrelation : float;
  runs_z : float;
}

let lag1 residuals =
  let n = Array.length residuals in
  if n < 3 then 0.0
  else begin
    let head = Array.sub residuals 0 (n - 1) in
    let tail = Array.sub residuals 1 (n - 1) in
    Stats.correlation head tail
  end

(* Wald-Wolfowitz runs test on the residual signs (lives in Stats so the
   quality observatory and this report share one implementation). *)
let runs_z_score = Stats.runs_z

let analyze problem (estimate : Solver.estimate) =
  let g = problem.Problem.measurements in
  let sigmas = problem.Problem.sigmas in
  let n = Array.length g in
  let standardized =
    Array.init n (fun m -> (g.(m) -. estimate.Solver.fitted.(m)) /. sigmas.(m))
  in
  let chi2 = Array.fold_left (fun acc z -> acc +. (z *. z)) 0.0 standardized in
  (* Effective dof from the unconstrained smoother at the same lambda. *)
  let a = Problem.design problem in
  let w = Problem.weights problem in
  let omega = Problem.penalty problem in
  let fit =
    Optimize.Ridge.solve ~a ~b:g ~weights:w ~penalty:omega ~lambda:estimate.Solver.lambda ()
  in
  let dof = Float.max 1.0 (float_of_int n -. fit.Optimize.Ridge.edf) in
  let p_value = Special.chi2_sf ~dof:(int_of_float (Float.round dof)) chi2 in
  {
    standardized_residuals = standardized;
    chi2;
    dof;
    p_value;
    lag1_autocorrelation = lag1 standardized;
    runs_z = runs_z_score standardized;
  }

let adequate ?(alpha = 0.05) report =
  report.p_value > alpha && Float.abs report.runs_z <= 2.5

let to_string r =
  Printf.sprintf "chi2=%.2f (dof %.1f, p=%.3f), lag1=%.2f, runs z=%.2f" r.chi2 r.dof r.p_value
    r.lag1_autocorrelation r.runs_z
