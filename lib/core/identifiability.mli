(** Quantifying the ill-posedness the paper regularizes against (§2.3:
    "this inversion process is ill-posed"): the singular spectrum of the
    forward operator tells how many independent features of f(φ) a given
    measurement schedule can resolve at a given noise level. *)

open Numerics

type report = {
  singular_values : Vec.t;  (** of the basis-space forward matrix, descending *)
  condition : float;  (** σ₁/σ_last (∞ if the smallest vanishes) *)
}

val analyze : Cellpop.Kernel.t -> Spline.Basis.t -> report

val effective_rank : report -> relative_noise:float -> int
(** Number of singular values above [relative_noise × σ₁] — the modes whose
    coefficients are estimable with signal-to-noise ≥ 1. *)

val measurement_sweep :
  Cellpop.Params.t ->
  rng:Rng.t ->
  n_cells:int ->
  basis:Spline.Basis.t ->
  schedules:Vec.t array ->
  n_phi:int ->
  (int * report) array
(** Analyze several measurement schedules (arrays of times); returns
    [(num_measurements, report)] per schedule. *)
