open Numerics

type comparison = {
  rmse : float;
  nrmse : float;
  mae : float;
  max_abs : float;
  correlation : float;
}

let compare ~truth ~estimate =
  {
    rmse = Stats.rmse truth estimate;
    nrmse = Stats.nrmse truth estimate;
    mae = Stats.mae truth estimate;
    max_abs = Stats.max_abs_error truth estimate;
    correlation = Stats.correlation truth estimate;
  }

let to_string c =
  Printf.sprintf "rmse=%.4g nrmse=%.4g mae=%.4g max=%.4g corr=%.4f" c.rmse c.nrmse c.mae
    c.max_abs c.correlation

let improvement_factor ~truth ~baseline ~estimate =
  let baseline_rmse = Stats.rmse truth baseline in
  let estimate_rmse = Stats.rmse truth estimate in
  if Float.equal estimate_rmse 0.0 then Float.infinity else baseline_rmse /. estimate_rmse
