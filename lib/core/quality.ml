open Numerics

(* ---------------- per-solve statistics ---------------- *)

let edf problem ~lambda =
  match
    Optimize.Ridge.solve ~a:(Problem.design problem) ~b:problem.Problem.measurements
      ~weights:(Problem.weights problem) ~penalty:(Problem.penalty problem) ~lambda ()
  with
  | fit -> fit.Optimize.Ridge.edf
  | exception Linalg.Singular _ -> Float.nan

let kappa problem ~lambda =
  let normal =
    Optimize.Ridge.normal_matrix ~a:(Problem.design problem)
      ~weights:(Problem.weights problem) ~penalty:(Problem.penalty problem) ~lambda
  in
  match Linalg.condition_spd normal with
  | c -> c
  | exception Linalg.Singular _ -> Float.nan

(* Residual-whiteness statistics on the standardized residuals
   (g − ĝ)/σ: the runs test sees serial sign structure, the moment check
   sees departure from the assumed Gaussian noise model. *)
let residual_stats problem ~fitted =
  let g = problem.Problem.measurements in
  let sigmas = problem.Problem.sigmas in
  let standardized = Array.init (Array.length g) (fun m -> (g.(m) -. fitted.(m)) /. sigmas.(m)) in
  [
    ("runs_z", Stats.runs_z standardized);
    ("normality_z", Stats.normality_z standardized);
  ]

let emit_solve ?solve ~problem ~fitted ~lambda ~entry_lambda ~rss ~kappa:k ~degradation
    ~active_positivity ~qp_iterations ~solved_by ~cascade () =
  if Obs.Diag.enabled () then begin
    let values =
      [
        ("kappa", k);
        ("lambda", lambda);
        ("entry_lambda", entry_lambda);
        ("edf", edf problem ~lambda);
        ("rss", rss);
        ("n", float_of_int (Problem.num_measurements problem));
        ("active_positivity", float_of_int active_positivity);
        ("qp_iterations", float_of_int qp_iterations);
        ("degradation", float_of_int degradation);
      ]
      @ residual_stats problem ~fitted
    in
    Obs.Diag.emit
      (Obs.Diag.make ?solve ~stage:"solve" ~values
         ~tags:[ ("solved_by", solved_by); ("cascade", cascade) ]
         ())
  end

(* ---------------- report cards over a trace ---------------- *)

type thresholds = {
  kappa_limit : float;
  edf_fraction : float;
  whiteness_limit : float;
  normality_limit : float;
}

(* kappa_limit matches the solver cascade's default condition_limit: the
   κ at which solve_robust starts preconditioning is also the κ worth
   flagging in a report. *)
let default_thresholds =
  { kappa_limit = 1e12; edf_fraction = 0.9; whiteness_limit = 2.5; normality_limit = 3.5 }

type card = {
  solve : string;
  kappa : float;
  lambda : float;
  entry_lambda : float;
  edf : float;
  rss : float;
  runs_z : float;
  normality_z : float;
  n : float;
  active_positivity : float;
  qp_iterations : float;
  degradation : float;
  solved_by : string;
  cascade : string;
  selector : string;
  curve : (float * float) array;
  flags : string list;
}

let value_or_nan d key = match Obs.Diag.value d key with Some v -> v | None -> Float.nan

let tag_or d key default = match Obs.Diag.tag d key with Some v -> v | None -> default

let flags_of ~thresholds ~kappa ~edf ~n ~runs_z ~normality_z ~degradation =
  List.filter_map
    (fun (cond, name) -> if cond then Some name else None)
    [
      ((not (Float.is_finite kappa)) || kappa > thresholds.kappa_limit, "kappa-overflow");
      (Float.is_finite edf && n > 0.0 && edf > thresholds.edf_fraction *. n, "edf-saturated");
      (Float.abs runs_z > thresholds.whiteness_limit, "non-white-residuals");
      (Float.abs normality_z > thresholds.normality_limit, "non-normal-residuals");
      (degradation > 0.5, "degraded-cascade");
    ]

let cards ?(thresholds = default_thresholds) events =
  List.filter_map
    (fun (solve, diags) ->
      match Obs.Diag.stage diags "solve" with
      | None -> None
      | Some d ->
        let lambda_diag = Obs.Diag.stage diags "lambda" in
        let kappa = value_or_nan d "kappa" in
        let edf = value_or_nan d "edf" in
        let n = value_or_nan d "n" in
        let runs_z = value_or_nan d "runs_z" in
        let normality_z = value_or_nan d "normality_z" in
        let degradation = value_or_nan d "degradation" in
        Some
          {
            solve;
            kappa;
            lambda = value_or_nan d "lambda";
            entry_lambda = value_or_nan d "entry_lambda";
            edf;
            rss = value_or_nan d "rss";
            runs_z;
            normality_z;
            n;
            active_positivity = value_or_nan d "active_positivity";
            qp_iterations = value_or_nan d "qp_iterations";
            degradation;
            solved_by = tag_or d "solved_by" "?";
            cascade = tag_or d "cascade" "?";
            selector =
              (match lambda_diag with Some l -> tag_or l "method" "?" | None -> "-");
            curve = (match lambda_diag with Some l -> l.Obs.Diag.d_curve | None -> [||]);
            flags =
              flags_of ~thresholds ~kappa ~edf ~n ~runs_z ~normality_z ~degradation;
          })
    (Obs.Diag.by_solve events)

let healthy card = card.flags = []

let verdict card = if healthy card then "healthy" else String.concat ", " card.flags

(* Whiteness in words, for the card: the runs test is the primary signal
   the paper's noise model can be checked against. *)
let whiteness_verdict ~thresholds card =
  if not (Float.is_finite card.runs_z) then "unknown"
  else if Float.abs card.runs_z <= thresholds.whiteness_limit then
    Printf.sprintf "white (runs z=%+.2f)" card.runs_z
  else Printf.sprintf "NON-WHITE (runs z=%+.2f)" card.runs_z

let output_card ?(thresholds = default_thresholds) ?(plot = true) oc card =
  Printf.fprintf oc "solve %s — %s\n" card.solve (verdict card);
  Printf.fprintf oc "  kappa        %-14s %s\n"
    (Printf.sprintf "%.3g" card.kappa)
    (if (not (Float.is_finite card.kappa)) || card.kappa > thresholds.kappa_limit then
       "(over condition limit)"
     else "");
  Printf.fprintf oc "  lambda       %.3g (selector %s, entry %.3g)\n" card.lambda card.selector
    card.entry_lambda;
  Printf.fprintf oc "  edf          %.2f of n=%.0f%s\n" card.edf card.n
    (if Float.is_finite card.edf && card.n > 0.0 && card.edf > thresholds.edf_fraction *. card.n
     then " (SATURATED)"
     else "");
  Printf.fprintf oc "  rss          %.6g\n" card.rss;
  Printf.fprintf oc "  residuals    %s, normality z=%+.2f\n"
    (whiteness_verdict ~thresholds card)
    card.normality_z;
  Printf.fprintf oc "  constraints  %d active positivity, %d QP iterations\n"
    (int_of_float card.active_positivity)
    (int_of_float card.qp_iterations);
  Printf.fprintf oc "  cascade      %s (solved by %s, degradation %d)\n" card.cascade
    card.solved_by (int_of_float card.degradation);
  if plot then begin
    let finite =
      List.filter (fun (_, s) -> Float.is_finite s) (Array.to_list card.curve)
    in
    if List.length finite >= 2 then begin
      let pts = Array.of_list finite in
      let xs = Array.map (fun (l, _) -> log10 (Float.max 1e-300 l)) pts in
      let ys = Array.map snd pts in
      Dataio.Ascii_plot.output oc ~height:10
        ~title:(Printf.sprintf "lambda profile (%s score vs log10 lambda)" card.selector)
        [ { Dataio.Ascii_plot.label = "score"; glyph = '*'; xs; ys } ]
    end
  end

let output_report ?(thresholds = default_thresholds) ?(plot = true) oc cards_list =
  List.iteri
    (fun i card ->
      if i > 0 then Printf.fprintf oc "\n";
      output_card ~thresholds ~plot oc card)
    cards_list;
  let flagged = List.filter (fun c -> not (healthy c)) cards_list in
  Printf.fprintf oc "\n%d solve(s), %d flagged\n" (List.length cards_list) (List.length flagged)

let json_of_card card =
  let fj = Obs.Export.float_json in
  let fields =
    [
      ("kappa", fj card.kappa);
      ("lambda", fj card.lambda);
      ("edf", fj card.edf);
      ("rss", fj card.rss);
      ("runs_z", fj card.runs_z);
      ("normality_z", fj card.normality_z);
      ("n", fj card.n);
      ("active_positivity", fj card.active_positivity);
      ("qp_iterations", fj card.qp_iterations);
      ("degradation", fj card.degradation);
    ]
  in
  let quote s = Printf.sprintf "\"%s\"" (Obs.Export.json_escape s) in
  let curve =
    String.concat ","
      (Array.to_list (Array.map (fun (l, s) -> Printf.sprintf "[%s,%s]" (fj l) (fj s)) card.curve))
  in
  Printf.sprintf
    "{\"solve\":%s,%s,\"solved_by\":%s,\"cascade\":%s,\"selector\":%s,\"flags\":[%s],\"curve\":[%s]}"
    (quote card.solve)
    (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" k v) fields))
    (quote card.solved_by) (quote card.cascade) (quote card.selector)
    (String.concat "," (List.map quote card.flags))
    curve

let report_json cards_list =
  Printf.sprintf "{\"solves\":[%s]}" (String.concat "," (List.map json_of_card cards_list))

(* ---------------- batch aggregation ---------------- *)

type quantiles = { q50 : float; q90 : float; q_max : float; count : int }

let summarize per_solve =
  let tbl : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun stats ->
      List.iter
        (fun (key, v) ->
          if Float.is_finite v then
            match Hashtbl.find_opt tbl key with
            | Some r -> r := v :: !r
            | None ->
              Hashtbl.replace tbl key (ref [ v ]);
              order := key :: !order)
        stats)
    per_solve;
  List.rev_map
    (fun key ->
      let values = Array.of_list !(Hashtbl.find tbl key) in
      Array.sort Float.compare values;
      ( key,
        {
          q50 = Stats.quantile values 0.5;
          q90 = Stats.quantile values 0.9;
          q_max = values.(Array.length values - 1);
          count = Array.length values;
        } ))
    !order

let output_quantiles oc summary =
  if summary <> [] then begin
    Printf.fprintf oc "per-gene quality quantiles:\n";
    Printf.fprintf oc "  %-20s %10s %10s %10s  (%s)\n" "statistic" "p50" "p90" "max" "genes";
    List.iter
      (fun (key, q) ->
        Printf.fprintf oc "  %-20s %10.4g %10.4g %10.4g  (%d)\n" key q.q50 q.q90 q.q_max q.count)
      summary
  end
