open Numerics

type forward_mode = Same_kernel | Independent_kernel | Monte_carlo

type selection = [ `Gcv | `Kfold of int | `Lcurve | `Fixed of float ]

type config = {
  data_params : Cellpop.Params.t;
  inversion_params : Cellpop.Params.t option;
  n_cells_kernel : int;
  n_cells_data : int;
  n_phi : int;
  kernel_smooth_window : int;
  times : Vec.t;
  num_knots : int;
  noise : Noise.model;
  selection : selection;
  use_positivity : bool;
  use_conservation : bool;
  use_rate_continuity : bool;
  forward_mode : forward_mode;
  seed : int;
  measurement_fault : Vec.t Robust.Fault.t option;
  solver_policy : Solver.policy;
}

let default_config ~times =
  {
    data_params = Cellpop.Params.paper_2011;
    inversion_params = None;
    n_cells_kernel = 4000;
    n_cells_data = 4000;
    n_phi = 201;
    kernel_smooth_window = 5;
    times;
    num_knots = 12;
    noise = Noise.No_noise;
    selection = `Gcv;
    use_positivity = true;
    use_conservation = true;
    use_rate_continuity = true;
    forward_mode = Monte_carlo;
    seed = 1;
    measurement_fault = None;
    solver_policy = Solver.default_policy;
  }

type run = {
  config : config;
  kernel : Cellpop.Kernel.t;
  phases : Vec.t;
  truth : Vec.t;
  clean : Vec.t;
  noisy : Vec.t;
  sigmas : Vec.t;
  problem : Problem.t;
  lambda : float;
  estimate : Solver.estimate;
  report : Robust.Report.t;
  recovery : Metrics.comparison;
}

let run config ~profile =
  Obs.Span.with_ "pipeline.run" @@ fun pipeline_span ->
  Obs.Span.set_int pipeline_span "seed" config.seed;
  Obs.Span.set_int pipeline_span "n_phi" config.n_phi;
  Obs.Span.set_int pipeline_span "num_knots" config.num_knots;
  let inversion_params =
    match config.inversion_params with Some p -> p | None -> config.data_params
  in
  let root = Rng.create config.seed in
  let rng_kernel = Rng.split root in
  let rng_data = Rng.split root in
  let rng_noise = Rng.split root in
  let rng_cv = Rng.split root in
  let rng_fault = Rng.split root in
  let kernel =
    Obs.Span.with_ "pipeline.kernel" (fun _ ->
        Cellpop.Kernel.estimate ~smooth_window:config.kernel_smooth_window inversion_params
          ~rng:rng_kernel ~n_cells:config.n_cells_kernel ~times:config.times
          ~n_phi:config.n_phi)
  in
  let clean =
    Obs.Span.with_ "pipeline.forward" @@ fun _ ->
    match config.forward_mode with
    | Same_kernel -> Forward.apply_fn kernel profile
    | Independent_kernel ->
      let data_kernel =
        Cellpop.Kernel.estimate ~smooth_window:config.kernel_smooth_window config.data_params
          ~rng:rng_data ~n_cells:config.n_cells_data ~times:config.times ~n_phi:config.n_phi
      in
      Forward.apply_fn data_kernel profile
    | Monte_carlo ->
      let snapshots =
        Cellpop.Population.simulate config.data_params ~rng:rng_data ~n0:config.n_cells_data
          ~times:config.times
      in
      Array.map
        (Cellpop.Population.mean_signal config.data_params (fun ~phi -> profile phi))
        snapshots
  in
  let noisy, sigmas = Noise.apply config.noise rng_noise clean in
  let noisy =
    match config.measurement_fault with
    | None -> noisy
    | Some fault -> Robust.Fault.apply fault rng_fault noisy
  in
  let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:config.num_knots in
  let problem =
    Problem.create ~use_positivity:config.use_positivity
      ~use_conservation:config.use_conservation
      ~use_rate_continuity:config.use_rate_continuity ~sigmas ~kernel ~basis ~measurements:noisy
      ~params:inversion_params ()
  in
  (* One factorization cache spans λ selection and the solve: when the
     repaired problem equals the original (the common case) the sweep's
     Demmler–Reinsch decomposition is reused verbatim to warm-start the
     constrained QP. *)
  let cache = Optimize.Spectral.Cache.create () in
  (* λ selection runs on the repaired copy: a single NaN measurement would
     otherwise poison every candidate score. If selection still fails
     (typed Robust error), fall back to the solver's default λ — the
     cascade takes over from there. *)
  let lambda =
    Obs.Span.with_ "pipeline.lambda" @@ fun sp ->
    let repaired, _ = Solver.repair_problem problem in
    match Lambda.select_result repaired ~method_:config.selection ~rng:rng_cv ~cache () with
    | Ok lambda -> lambda
    | Error _ ->
      Obs.Span.set_bool sp "fallback" true;
      1e-4
  in
  Obs.Span.set_float pipeline_span "lambda" lambda;
  let estimate, report =
    Obs.Span.with_ "pipeline.solve" @@ fun _ ->
    match Solver.solve_robust ~policy:config.solver_policy ~lambda ~cache problem with
    | Ok (estimate, report) -> (estimate, report)
    | Error e -> Robust.Error.raise_error e
  in
  let phases = kernel.Cellpop.Kernel.phases in
  let truth = Array.map profile phases in
  let recovery = Metrics.compare ~truth ~estimate:estimate.Solver.profile in
  Obs.Span.set_float pipeline_span "recovery_rmse" recovery.Metrics.rmse;
  Obs.Span.set_int pipeline_span "degradation" report.Robust.Report.degradation;
  {
    config;
    kernel;
    phases;
    truth;
    clean;
    noisy;
    sigmas;
    problem;
    lambda;
    estimate;
    report;
    recovery;
  }

let population_vs_phase r = (Array.copy r.config.times, Array.copy r.noisy)

let deconvolved_vs_minutes r =
  let t_mean =
    (match r.config.inversion_params with Some p -> p | None -> r.config.data_params)
      .Cellpop.Params.mean_cycle_minutes
  in
  (Array.map (fun phi -> phi *. t_mean) r.phases, Array.copy r.estimate.Solver.profile)
