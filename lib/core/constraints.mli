(** The physical constraints of paper §2.3 and §3.2, expressed as linear
    functionals of the spline coefficients α.

    - Division conservation (2.3, item 2): transcript numbers are conserved
      across division, R(1) = R(0) + R(φ_sst) per cell; averaged over
      p(φ_sst) this is ∫w(φ)f(φ)dφ = 0 with
      w(φ) = δ(1−φ) − 0.4·δ(φ) − 0.6·p(φ).
    - Rate continuity (3.2, eqs. 12–19): the transcript-count rate of change
      is continuous across division, R'(1) = R'(0) + R'(φ_sst); averaged:
      ∫w1 f dφ = ∫w2 f' dφ with w1 = β0 δ(1−φ) − β0 δ(φ) − β(φ)p(φ) and
      w2 = 0.4 δ(φ) + 0.6 p(φ) − δ(1−φ), β(φ) = 0.4/(1−φ).
    - Positivity (2.3, item 1): f_α(φ) ≥ 0, imposed on a grid.

    Dirac terms are evaluated analytically on basis functions; the
    p(φ)-weighted integrals use composite Simpson quadrature on a fine
    grid. *)

open Numerics

val density_integral : Cellpop.Params.t -> (float -> float) -> float
(** ∫₀¹ h(φ)·p(φ) dφ with p the Gaussian density of φ_sst. *)

val beta0 : Cellpop.Params.t -> float
(** β₀ = ∫β(φ)p(φ)dφ (paper eq. 14). *)

val conservation_row : Cellpop.Params.t -> Spline.Basis.t -> Vec.t
(** Row vector c with c·α = 0 ⇔ f_α(1) − 0.4·f_α(0) − 0.6·∫p f_α = 0. *)

val rate_continuity_row : Cellpop.Params.t -> Spline.Basis.t -> Vec.t
(** Row vector c with c·α = 0 ⇔ paper eq. 17 (moved to one side):
    β₀f(1) − β₀f(0) − ∫βpf − 0.4f'(0) − 0.6∫pf' + f'(1) = 0. *)

val positivity_rows : Spline.Basis.t -> grid:Vec.t -> Mat.t
(** Inequality rows Ψ(φ_g) for f_α(φ_g) ≥ 0. *)

val residual_conservation : Cellpop.Params.t -> Spline.Basis.t -> Vec.t -> float
(** The conservation functional evaluated at coefficients α (should be ~0
    for a constrained estimate). *)

val residual_rate_continuity : Cellpop.Params.t -> Spline.Basis.t -> Vec.t -> float
