open Numerics

type curve_point = { lambda : float; score : float }

let default_grid = lazy (Optimize.Cross_validation.log_lambda_grid ~lo:(-7.0) ~hi:2.0 ~count:25)

(* Robust GCV (Cummins, Filloon & Nychka): inflate the effective degrees of
   freedom by gamma in the denominator. Plain GCV (gamma = 1) is known to
   occasionally collapse to a near-interpolating lambda when the number of
   measurements is small (here Nm ~ 13); gamma ~ 1.4 removes that failure
   mode at negligible cost in the well-behaved cases. *)
let robust_gamma = 1.4

let usable_lambda lambda = Float.is_finite lambda && lambda >= 0.0

(* Candidate costs must never let a NaN/Inf win the argmin (NaN compares
   false against everything, so a NaN first candidate would otherwise stick
   as "best"): non-finite scores, non-finite lambda points and candidates
   whose fit blows up are all mapped to +inf, which loses to any finite
   score. *)
let sanitize score = if Float.is_finite score then score else Float.infinity

let guarded_score lambda score_of =
  Obs.Span.with_ "lambda.candidate" (fun sp ->
      Obs.Span.set_float sp "lambda" lambda;
      let score =
        if not (usable_lambda lambda) then Float.infinity
        else
          match score_of lambda with
          | score -> sanitize score
          | exception Linalg.Singular _ -> Float.infinity
      in
      Obs.Span.set_float sp "score" score;
      score)

let fail_if_all_non_finite ~selector best_score =
  if not (Float.is_finite best_score) then
    Robust.Error.raise_error
      (Robust.Error.Non_finite { stage = "lambda selection (" ^ selector ^ ")" })

(* Sequential sweep for the spectral fast path: each candidate costs O(n),
   far below the pool's dispatch overhead, so fanning out would only slow
   it down. Argmin semantics match Cross_validation.select exactly (strict
   <, index order, so the first of tied winners is chosen). *)
let sweep ~lambdas ~score_of =
  assert (Array.length lambdas > 0);
  let curve =
    Array.map (fun lambda -> { lambda; score = guarded_score lambda score_of }) lambdas
  in
  let best = ref curve.(0) in
  Array.iter (fun p -> if p.score < !best.score then best := p) curve;
  (!best, curve)

(* One Demmler–Reinsch factorization of the problem's penalized system
   (through [cache] when the caller shares one across genes/replicates)
   plus the data's spectral coordinates. Raises Linalg.Singular when even
   the anchored Gram side cannot be factored; selectors then fall back to
   the direct per-candidate path. *)
let spectral_projection ?cache problem =
  let a = Problem.design problem in
  let w = Problem.weights problem in
  let omega = Problem.penalty problem in
  let fact = Optimize.Spectral.factorize_problem ?cache ~a ~weights:w ~penalty:omega () in
  let proj =
    Optimize.Spectral.project_data fact ~a ~weights:w ~b:problem.Problem.measurements
  in
  (fact, proj)

let gcv_score ~n ~rss ~edf =
  let denom = n -. (robust_gamma *. edf) in
  if denom <= 0.0 then Float.infinity else n *. rss /. (denom *. denom)

(* Direct reference path: one Ridge solve (Cholesky + per-row edf) per
   candidate. Kept verbatim as the fallback when the spectral factorization
   fails, and as the equivalence oracle for the fast path's tests. *)
let gcv_direct problem ~lambdas =
  let a = Problem.design problem in
  let w = Problem.weights problem in
  let omega = Problem.penalty problem in
  let n = float_of_int (Problem.num_measurements problem) in
  (* The Singular catch sits inside [score_of] itself (not only in
     [guarded_score]'s wrapper) so the failure is handled at the raise's
     nearest boundary — a singular candidate scores as infinitely bad. *)
  let score_of lambda =
    match
      Optimize.Ridge.solve ~a ~b:problem.Problem.measurements ~weights:w ~penalty:omega
        ~lambda ()
    with
    | exception Linalg.Singular _ -> Float.infinity
    | fit -> gcv_score ~n ~rss:fit.Optimize.Ridge.rss ~edf:fit.Optimize.Ridge.edf
  in
  let best, curve =
    Optimize.Cross_validation.select ~lambdas ~fit_and_score:(fun lambda ->
        ((), guarded_score lambda score_of))
  in
  fail_if_all_non_finite ~selector:"GCV" best.Optimize.Cross_validation.score;
  ( best.Optimize.Cross_validation.lambda,
    Array.map
      (fun (s : unit Optimize.Cross_validation.score) ->
        { lambda = s.Optimize.Cross_validation.lambda; score = s.Optimize.Cross_validation.score })
      curve )

let gcv ?cache problem ~lambdas =
  match spectral_projection ?cache problem with
  | exception Linalg.Singular _ -> gcv_direct problem ~lambdas
  | fact, proj ->
    let n = float_of_int (Problem.num_measurements problem) in
    (* As in [gcv_direct]: the Singular catch sits inside [score_of] itself,
       at the raise's nearest boundary — a candidate whose shifted system is
       singular scores as infinitely bad. *)
    let score_of lambda =
      match Optimize.Spectral.evaluate fact proj ~lambda with
      | exception Linalg.Singular _ -> Float.infinity
      | s -> gcv_score ~n ~rss:s.Optimize.Spectral.rss ~edf:s.Optimize.Spectral.edf
    in
    let best, curve = sweep ~lambdas ~score_of in
    fail_if_all_non_finite ~selector:"GCV" best.score;
    (best.lambda, curve)

let submatrix (a : Mat.t) rows =
  Mat.init (Array.length rows) a.Mat.cols (fun i j -> Mat.get a rows.(i) j)

let subvec rows v = Array.map (fun i -> v.(i)) rows

let kfold_direct problem ~fold_master ~k ~lambdas =
  let a = Problem.design problem in
  let w = Problem.weights problem in
  let omega = Problem.penalty problem in
  let b = problem.Problem.measurements in
  let n = Array.length b in
  let submatrix = submatrix a in
  (* As in [gcv]: a fold whose normal matrix is singular scores the
     candidate as infinitely bad, handled right here at the boundary. *)
  let score_of lambda =
    let fold_rng = Rng.copy fold_master in
    match
      Optimize.Cross_validation.kfold_score ~rng:fold_rng ~k ~n
        ~fit_on:(fun ~train lambda ->
          Optimize.Ridge.solve ~a:(submatrix train) ~b:(subvec train b)
            ~weights:(subvec train w) ~penalty:omega ~lambda ())
        ~predict_error:(fun fit ~test ->
          let acc = ref 0.0 in
          Array.iter
            (fun m ->
              let predicted = Vec.dot (Mat.row a m) fit.Optimize.Ridge.x in
              let r = b.(m) -. predicted in
              acc := !acc +. (w.(m) *. r *. r))
            test;
          !acc /. float_of_int (Array.length test))
        lambda
    with
    | score -> score
    | exception Linalg.Singular _ -> Float.infinity
  in
  let best, curve =
    Optimize.Cross_validation.select ~lambdas ~fit_and_score:(fun lambda ->
        ((), guarded_score lambda score_of))
  in
  fail_if_all_non_finite ~selector:"k-fold CV" best.Optimize.Cross_validation.score;
  ( best.Optimize.Cross_validation.lambda,
    Array.map
      (fun (s : unit Optimize.Cross_validation.score) ->
        { lambda = s.Optimize.Cross_validation.lambda; score = s.Optimize.Cross_validation.score })
      curve )

(* Spectral k-fold: the folds are fixed across the sweep (every candidate
   copies the same master), so each training subsystem gets exactly one
   anchored factorization, reused by every λ — candidates then cost one
   O(n²) spectral solution plus the held-out prediction error per fold.
   Training Gram matrices are structurally rank-deficient here (a fold's
   training set is smaller than the basis), which is precisely what the
   anchored factorization exists for. *)
let kfold_spectral problem ~fold_master ~k ~lambdas =
  let a = Problem.design problem in
  let w = Problem.weights problem in
  let omega = Problem.penalty problem in
  let b = problem.Problem.measurements in
  let n = Array.length b in
  (* Same derivation as each direct candidate's: copy the master, draw the
     fold assignment once — bit-identical folds to the fallback path. *)
  let folds =
    Optimize.Cross_validation.kfold_indices (Rng.copy fold_master) ~n ~k
  in
  let per_fold =
    Array.map
      (fun test ->
        let in_test = Array.make n false in
        Array.iter (fun i -> in_test.(i) <- true) test;
        let train =
          Array.of_list (List.filter (fun i -> not in_test.(i)) (List.init n (fun i -> i)))
        in
        let a_train = submatrix a train in
        let w_train = subvec train w in
        let fact =
          Optimize.Spectral.factorize_problem ~a:a_train ~weights:w_train ~penalty:omega ()
        in
        let proj =
          Optimize.Spectral.project_data fact ~a:a_train ~weights:w_train ~b:(subvec train b)
        in
        (fact, proj, test))
      folds
  in
  (* Singular handled at the nearest boundary, as in [kfold_direct]: a fold
     whose shifted system degenerates scores the candidate as infinitely
     bad. *)
  let score_of lambda =
    match
      let total = ref 0.0 in
      Array.iter
        (fun (fact, proj, test) ->
          let x = Optimize.Spectral.solution fact proj ~lambda in
          let acc = ref 0.0 in
          Array.iter
            (fun m ->
              let predicted = Vec.dot (Mat.row a m) x in
              let r = b.(m) -. predicted in
              acc := !acc +. (w.(m) *. r *. r))
            test;
          total := !total +. (!acc /. float_of_int (Array.length test)))
        per_fold;
      !total /. float_of_int k
    with
    | total -> total
    | exception Linalg.Singular _ -> Float.infinity
  in
  let best, curve = sweep ~lambdas ~score_of in
  fail_if_all_non_finite ~selector:"k-fold CV" best.score;
  (best.lambda, curve)

let kfold problem ~rng ~k ~lambdas =
  (* One fold master for the whole sweep so every λ sees the same folds.
     [split] (not a truncated raw draw) keeps the derivation well-defined,
     and each candidate scores against a private [copy] — the master is
     never mutated during the sweep, so the fast path and the fallback
     derive identical folds from it. *)
  let fold_master = Rng.split rng in
  match kfold_spectral problem ~fold_master ~k ~lambdas with
  | result -> result
  | exception Linalg.Singular _ -> kfold_direct problem ~fold_master ~k ~lambdas

(* L-curve corner search over precomputed (log misfit, log roughness)
   points — shared by the spectral fast path and the direct fallback. *)
let lcurve_corner ~lambdas points =
  let n_l = Array.length lambdas in
  if not (Array.exists Option.is_some points) then
    Robust.Error.raise_error (Robust.Error.Non_finite { stage = "lambda selection (L-curve)" });
  (* Discrete curvature via the circumscribed-circle formula on successive
     triples. Where the curve saturates (λ → 0 or λ → ∞) consecutive points
     nearly coincide and the circumradius collapses, faking a huge
     curvature — ignore triples with degenerate segments. *)
  let min_segment = 5e-2 in
  let curvature i =
    match (points.(i - 1), points.(i), points.(i + 1)) with
    | Some (x0, y0), Some (x1, y1), Some (x2, y2) ->
      let area2 = ((x1 -. x0) *. (y2 -. y0)) -. ((x2 -. x0) *. (y1 -. y0)) in
      let d01 = Float.hypot (x1 -. x0) (y1 -. y0) in
      let d12 = Float.hypot (x2 -. x1) (y2 -. y1) in
      let d02 = Float.hypot (x2 -. x0) (y2 -. y0) in
      if d01 < min_segment || d12 < min_segment || Float.equal d02 0.0 then 0.0
      else 2.0 *. Float.abs area2 /. (d01 *. d12 *. d02)
    | _ -> 0.0
  in
  let best = ref 1 in
  let curve =
    Array.init n_l (fun i ->
        let k = if i = 0 || i = n_l - 1 then 0.0 else curvature i in
        { lambda = lambdas.(i); score = -.k })
  in
  for i = 2 to n_l - 2 do
    if curve.(i).score < curve.(!best).score then best := i
  done;
  (lambdas.(!best), curve)

(* L-curve: evaluate misfit/roughness along the grid and find the corner —
   the point of maximum discrete curvature of
   (log misfit(λ), log roughness(λ)) (Hansen). The spectral path reads both
   coordinates off the factorization in O(n) per candidate without ever
   forming a solution; the fallback solves the unconstrained problem per
   candidate, fanned out across the pool. Candidates whose evaluation fails
   or yields non-finite coordinates are dropped (None): they take no part
   in the curvature search, which runs on the index-ordered points and is
   oblivious to execution order. *)
let lcurve_points_spectral ?cache problem ~lambdas =
  let fact, proj = spectral_projection ?cache problem in
  Array.map
    (fun lambda ->
      Obs.Span.with_ "lambda.candidate" (fun sp ->
          Obs.Span.set_float sp "lambda" lambda;
          if not (usable_lambda lambda) then None
          else
            match Optimize.Spectral.evaluate fact proj ~lambda with
            | exception Linalg.Singular _ -> None
            | s ->
              Obs.Span.set_float sp "misfit" s.Optimize.Spectral.rss;
              Obs.Span.set_float sp "roughness" s.Optimize.Spectral.roughness;
              let x = log (Float.max 1e-300 s.Optimize.Spectral.rss) in
              let y = log (Float.max 1e-300 s.Optimize.Spectral.roughness) in
              if Float.is_finite x && Float.is_finite y then Some (x, y) else None))
    lambdas

let lcurve_points_direct problem ~lambdas =
  Parallel.parallel_map ~chunk:1 ~n:(Array.length lambdas) (fun i ->
      let lambda = lambdas.(i) in
      Obs.Span.with_ "lambda.candidate" (fun sp ->
          Obs.Span.set_float sp "lambda" lambda;
          if not (usable_lambda lambda) then None
          else
            match Solver.solve_unconstrained ~lambda problem with
            | exception Linalg.Singular _ -> None
            | est ->
              Obs.Span.set_float sp "misfit" est.Solver.data_misfit;
              Obs.Span.set_float sp "roughness" est.Solver.roughness;
              let x = log (Float.max 1e-300 est.Solver.data_misfit) in
              let y = log (Float.max 1e-300 est.Solver.roughness) in
              if Float.is_finite x && Float.is_finite y then Some (x, y) else None))

let lcurve ?cache problem ~lambdas =
  assert (Array.length lambdas >= 3);
  let points =
    match lcurve_points_spectral ?cache problem ~lambdas with
    | points -> points
    | exception Linalg.Singular _ -> lcurve_points_direct problem ~lambdas
  in
  lcurve_corner ~lambdas points

let method_name = function
  | `Fixed _ -> "fixed"
  | `Gcv -> "gcv"
  | `Lcurve -> "lcurve"
  | `Kfold _ -> "kfold"

let select_with_curve problem ~method_ ?rng ?lambdas ?cache () =
  let lambdas = match lambdas with Some l -> l | None -> Lazy.force default_grid in
  Obs.Span.with_ "lambda.select" (fun sp ->
      Obs.Span.set_str sp "method" (method_name method_);
      Obs.Span.set_int sp "candidates" (Array.length lambdas);
      let chosen, curve =
        match method_ with
        | `Fixed lambda ->
          if usable_lambda lambda then (lambda, [||])
          else
            Robust.Error.raise_error
              (Robust.Error.Invalid_input
                 { field = "lambda"; why = Printf.sprintf "fixed lambda %g is not usable" lambda })
        | `Gcv -> gcv ?cache problem ~lambdas
        | `Lcurve -> lcurve ?cache problem ~lambdas
        | `Kfold k ->
          let rng = match rng with Some r -> r | None -> Rng.create 42 in
          kfold problem ~rng ~k ~lambdas
      in
      Obs.Span.set_float sp "chosen" chosen;
      Obs.Metrics.set "lambda.chosen" chosen;
      (* The full candidate profile goes on the trace stream instead of
         being dropped: diagnose plots it, trace diff compares it
         point-by-point, and the Demmler-Reinsch fast path (ROADMAP item
         1) can prove score-equivalence against it. *)
      if Obs.Diag.enabled () then
        Obs.Diag.emit
          (Obs.Diag.make ~stage:"lambda"
             ~values:[ ("chosen", chosen); ("candidates", float_of_int (Array.length lambdas)) ]
             ~tags:[ ("method", method_name method_) ]
             ~curve:(Array.map (fun p -> (p.lambda, p.score)) curve)
             ());
      (chosen, curve))

let select problem ~method_ ?rng ?lambdas ?cache () =
  fst (select_with_curve problem ~method_ ?rng ?lambdas ?cache ())

let select_result problem ~method_ ?rng ?lambdas ?cache () =
  match select problem ~method_ ?rng ?lambdas ?cache () with
  | lambda -> Ok lambda
  | exception Robust.Error.Error e -> Error e

let select_with_curve_result problem ~method_ ?rng ?lambdas ?cache () =
  match select_with_curve problem ~method_ ?rng ?lambdas ?cache () with
  | r -> Ok r
  | exception Robust.Error.Error e -> Error e
