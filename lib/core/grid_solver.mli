(** Basis-free deconvolution directly on the phase grid: minimize

    ‖W^{1/2}(g − A f)‖² + λ ‖D₂ f‖²   subject to f ≥ 0,

    where f is the profile at every phase bin and D₂ is the discrete
    second-difference operator. This is the discretize-then-regularize
    alternative to the paper's spline representation (eq. 4); the
    `abl_representation` bench compares them. *)

open Numerics

type estimate = {
  profile : Vec.t;  (** f̂ on the kernel's phase grid *)
  fitted : Vec.t;
  lambda : float;
  data_misfit : float;
  roughness : float;  (** ‖D₂f‖² (scaled to approximate ∫f″²) *)
}

val second_difference : int -> bin_width:float -> Mat.t
(** (n−2) × n matrix approximating f″ at interior nodes. *)

val solve :
  ?lambda:float ->
  ?use_positivity:bool ->
  Cellpop.Kernel.t ->
  measurements:Vec.t ->
  ?sigmas:Vec.t ->
  unit ->
  estimate
(** Default λ = 1e-4 and positivity on. The QP has one unknown per phase
    bin (e.g. 201), solved with the same interior-point machinery as the
    spline estimator. *)
