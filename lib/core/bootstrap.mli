(** Residual-bootstrap uncertainty bands for the deconvolved profile —
    turning the point estimate of paper eq. 5 into confidence statements
    (natural companion to the paper's parameter-estimation application).

    Caveat (standard for penalized estimators): the bands quantify
    *sampling variability* around the regularized estimate. The smoothing
    bias — the systematic difference between the λ-penalized estimate and
    the truth — is NOT captured, so coverage of the true profile is below
    nominal wherever the estimate is strongly smoothed (sharp peaks,
    boundary regions). *)

open Numerics

type bands = {
  level : float;  (** nominal two-sided confidence level, e.g. 0.9 *)
  lower : Vec.t;  (** per-phase lower percentile *)
  median : Vec.t;
  upper : Vec.t;
  replicates : Mat.t;  (** all bootstrap profiles (rows = replicates) *)
}

val residual :
  ?replicates:int ->
  ?level:float ->
  Problem.t ->
  Solver.estimate ->
  rng:Rng.t ->
  bands
(** Standard residual bootstrap: resample standardized fit residuals with
    replacement, add them back to the fitted values, re-solve with the same
    λ, and take per-phase percentiles of the resulting profiles (defaults:
    200 replicates, level 0.9). *)

type outcome = {
  bands : bands option;  (** [None] only if every replicate failed *)
  failures : (int * Robust.Error.t) list;
      (** failed replicate indices (ascending) with their typed errors *)
  attempted : int;
  quality : (string * Quality.quantiles) list;
      (** per-replicate quality quantiles (rss, qp_iterations,
          active_positivity) over the successful re-solves; drifting
          quantiles flag replicate populations that are not exchangeable
          with the original fit *)
}

val residual_result :
  ?replicates:int ->
  ?level:float ->
  ?max_seconds:float ->
  ?max_iterations:int ->
  ?progress:Obs.Progress.t ->
  Problem.t ->
  Solver.estimate ->
  rng:Rng.t ->
  outcome
(** Fault-isolated {!residual}: each replicate solves independently via
    {!Parallel.parallel_map_result}; a failing replicate is recorded
    instead of aborting the job, and the bands are computed over the
    successful replicates (their rows, in replicate order). RNG
    substreams are derived exactly as in {!residual}, so every successful
    replicate's profile is bit-identical to the all-or-nothing path.
    [max_seconds]/[max_iterations] give each replicate a fresh
    {!Robust.Budget}. Failed-replicate counts are published as the
    [bootstrap.replicates_failed] metric. [progress] receives one
    {!Obs.Progress.record} per completed replicate (aggregation only;
    profiles are unaffected). *)

val width : bands -> Vec.t
(** Upper − lower band width per phase point. *)

val coverage : bands -> truth:Vec.t -> float
(** Fraction of phase-grid points where the truth lies inside the band
    (on well-specified synthetic data this should approach [level],
    pointwise). *)
