(** Richardson–Lucy iterative deconvolution on the raw phase grid — a
    classical positivity-preserving baseline with no spline representation
    and no explicit regularizer (early stopping regularizes implicitly).
    Used as the comparator algorithm for the paper's method. *)

open Numerics

type result = {
  profile : Vec.t;  (** estimate on the kernel's phase grid *)
  fitted : Vec.t;  (** forward model of the estimate *)
  iterations : int;
  misfit_history : Vec.t;  (** weighted data misfit after each iteration *)
}

val deconvolve :
  ?on_iteration:(int -> unit) ->
  ?iterations:int ->
  ?initial:Vec.t ->
  ?min_value:float ->
  Cellpop.Kernel.t ->
  measurements:Vec.t ->
  unit ->
  result
(** Multiplicative updates
    f ← f · (Aᵀ(g ⊘ Af)) ⊘ (Aᵀ1), with the kernel's forward matrix A.
    Measurements are clamped at 0 (RL assumes non-negative data). Default
    100 iterations, flat initial estimate at the data mean, ratios guarded
    by [min_value] (1e-12). [on_iteration] is invoked with the 1-based
    iteration index before each multiplicative update and may raise to
    abort the deconvolution (external deadline/budget enforcement). *)
