open Numerics

type report = {
  singular_values : Vec.t;
  condition : float;
}

let analyze kernel basis =
  let a = Forward.matrix_basis kernel basis in
  let values = Linalg.singular_values a in
  let n = Array.length values in
  let smallest = values.(n - 1) in
  let condition = if smallest <= 0.0 then Float.infinity else values.(0) /. smallest in
  { singular_values = values; condition }

let effective_rank report ~relative_noise =
  assert (relative_noise >= 0.0);
  let threshold = relative_noise *. report.singular_values.(0) in
  Array.fold_left (fun acc v -> if v > threshold then acc + 1 else acc) 0
    report.singular_values

let measurement_sweep params ~rng ~n_cells ~basis ~schedules ~n_phi =
  Array.map
    (fun times ->
      let kernel =
        Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.split rng) ~n_cells ~times
          ~n_phi
      in
      (Array.length times, analyze kernel basis))
    schedules
