(** Chaos harness for the survivable genome-scale batch: build a synthetic
    many-gene experiment, inject per-gene faults (NaN measurement entries,
    poisoned sigma rows) plus a mid-batch crash, and check the isolation
    invariants the resilience layer promises:

    {ol
     {- the batch completes with {e exactly} the injected genes failing,
        each with a typed journaled {!Robust.Error.t};}
     {- every clean gene's estimate is [Int64.bits_of_float]-identical to
        the fault-free run, at every jobs setting under test;}
     {- after an injected crash at a block boundary, [--resume] replays
        the journal and reproduces the uninterrupted outcomes
        bit-for-bit.}}

    The harness never prints (rule R5): violations come back as strings in
    the {!report} for the CLI to render. *)

type config = {
  genes : int;
  faults : int;  (** injected faulty gene rows (must be <= genes) *)
  seed : int;
  jobs : int list;  (** jobs settings the determinism invariant sweeps *)
  block : int;  (** journal flush granularity for the crash/resume leg *)
  crash_after : int;  (** crash once this many genes completed; 0 = genes/2 *)
  n_cells : int;  (** Monte-Carlo size of the fixture kernel *)
  n_phi : int;
  n_times : int;
}

val default_config : config
(** The acceptance-criterion scenario: 200 genes, 10 faults, jobs 1/2/4,
    blocks of 16, crash halfway. *)

type report = {
  config : config;
  faulty_rows : int array;  (** injected rows, ascending *)
  class_counts : (string * int) list;  (** failures per error class *)
  journaled_errors : int;  (** error entries in the final journal *)
  replayed : int;  (** genes the resumed run restored from the journal *)
  violations : string list;  (** empty iff every invariant held *)
}

val passed : report -> bool

val run : ?config:config -> journal_path:string -> unit -> report
(** Execute the full scenario; [journal_path] is (re)created and holds the
    final journal afterwards (one entry per gene) for inspection. *)
