open Numerics

type model =
  | No_noise
  | Gaussian_fraction of float
  | Gaussian_absolute of float
  | Multiplicative_lognormal of float

let to_string = function
  | No_noise -> "none"
  | Gaussian_fraction f -> Printf.sprintf "gaussian %g%% of magnitude" (100.0 *. f)
  | Gaussian_absolute s -> Printf.sprintf "gaussian sigma=%g" s
  | Multiplicative_lognormal s -> Printf.sprintf "lognormal sigma=%g" s

let sigma_floor g =
  (* A small fraction of the signal scale keeps 1/σ² weights finite. *)
  Float.max 1e-9 (0.005 *. Vec.norm_inf g)

let apply model rng g =
  let n = Array.length g in
  let floor_ = sigma_floor g in
  match model with
  | No_noise -> (Vec.copy g, Vec.ones n)
  | Gaussian_fraction fraction ->
    assert (fraction >= 0.0);
    (* The injected noise is exactly fraction x magnitude; only the REPORTED
       sigmas are floored (they become 1/sigma^2 weights downstream). *)
    let sigmas = Array.map (fun gi -> Float.max floor_ (fraction *. Float.abs gi)) g in
    let noisy =
      Array.map
        (fun gi ->
          let std = fraction *. Float.abs gi in
          if std > 0.0 then gi +. Rng.normal rng ~mean:0.0 ~std else gi)
        g
    in
    (noisy, sigmas)
  | Gaussian_absolute sigma ->
    assert (sigma >= 0.0);
    let s = Float.max floor_ sigma in
    let noisy = Array.map (fun gi -> gi +. Rng.normal rng ~mean:0.0 ~std:s) g in
    (noisy, Array.make n s)
  | Multiplicative_lognormal sigma ->
    assert (sigma >= 0.0);
    let noisy =
      Array.map
        (fun gi ->
          let z = Rng.normal rng ~mean:0.0 ~std:1.0 in
          gi *. exp ((sigma *. z) -. (sigma *. sigma /. 2.0)))
        g
    in
    (* Delta-method standard deviation of the multiplicative model. *)
    let sigmas =
      Array.map (fun gi -> Float.max floor_ (Float.abs gi *. sqrt (exp (sigma *. sigma) -. 1.0))) g
    in
    (noisy, sigmas)
