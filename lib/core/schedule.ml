open Numerics

type candidate = {
  kernel : Cellpop.Kernel.t;
  design : Mat.t;
}

let candidates params ~rng ~n_cells ~times ~n_phi ~basis =
  let kernel = Cellpop.Kernel.estimate ~smooth_window:5 params ~rng ~n_cells ~times ~n_phi in
  { kernel; design = Forward.matrix_basis kernel basis }

let log_det_information design ~rows ~ridge =
  assert (ridge > 0.0);
  let n = design.Mat.cols in
  let info = Mat.scale ridge (Mat.identity n) in
  List.iter
    (fun r ->
      let row = Mat.row design r in
      for i = 0 to n - 1 do
        if not (Float.equal row.(i) 0.0) then
          for j = 0 to n - 1 do
            Mat.set info i j (Mat.get info i j +. (row.(i) *. row.(j)))
          done
      done)
    rows;
  Linalg.cholesky_log_det (Linalg.cholesky_factor info)

let greedy ?(ridge = 1e-8) candidate ~budget =
  let n_candidates = candidate.design.Mat.rows in
  assert (budget >= 1 && budget <= n_candidates);
  let chosen = ref [] in
  for _ = 1 to budget do
    let best = ref None in
    for r = 0 to n_candidates - 1 do
      if not (List.mem r !chosen) then begin
        let score = log_det_information candidate.design ~rows:(r :: !chosen) ~ridge in
        match !best with
        | Some (_, s) when s >= score -> ()
        | _ -> best := Some (r, score)
      end
    done;
    match !best with
    | Some (r, _) -> chosen := r :: !chosen
    | None -> ()
  done;
  List.sort compare !chosen

let times_of candidate rows =
  Vec.of_list (List.map (fun r -> candidate.kernel.Cellpop.Kernel.times.(r)) rows)
