(** The constrained regularized estimator of paper §2.3: minimize the cost
    C(λ) of eq. 5 subject to positivity, conservation and rate-continuity,
    as a convex QP over the spline coefficients. *)

open Numerics

type estimate = {
  alpha : Vec.t;  (** spline coefficients of f̂ *)
  profile : Vec.t;  (** f̂ sampled on the kernel's phase grid *)
  fitted : Vec.t;  (** Ĝ(t_m) = A Ψ α *)
  lambda : float;
  cost : float;  (** the achieved value of eq. 5 *)
  data_misfit : float;  (** Σ (G−Ĝ)²/σ² *)
  roughness : float;  (** ∫ f̂''² *)
  active_positivity : int;  (** number of active positivity constraints *)
  qp_iterations : int;
}

val solve : ?lambda:float -> Problem.t -> estimate
(** Default λ = 1e-4 (use {!Lambda} for data-driven selection). *)

val solve_unconstrained : ?lambda:float -> Problem.t -> estimate
(** The same objective ignoring all constraints — the pure smoothing-spline
    baseline (used for λ selection and ablations). *)

val naive : Problem.t -> estimate
(** The no-regularization baseline: λ = 0 with a vanishing ridge for
    numerical solvability and no constraints. Demonstrates the
    ill-posedness of the inversion (paper §2.3: "this inversion process is
    ill-posed"). *)

val profile_on : Problem.t -> estimate -> Vec.t -> Vec.t
(** Evaluate the estimated f̂ on an arbitrary phase grid. *)
