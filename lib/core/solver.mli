(** The constrained regularized estimator of paper §2.3: minimize the cost
    C(λ) of eq. 5 subject to positivity, conservation and rate-continuity,
    as a convex QP over the spline coefficients — plus {!solve_robust}, a
    fault-tolerant front end that validates, repairs, retries and degrades
    gracefully instead of raising from deep inside the numerics. *)

open Numerics

type estimate = {
  alpha : Vec.t;  (** spline coefficients of f̂ *)
  profile : Vec.t;  (** f̂ sampled on the kernel's phase grid *)
  fitted : Vec.t;  (** Ĝ(t_m) = A Ψ α *)
  lambda : float;
  cost : float;  (** the achieved value of eq. 5 *)
  data_misfit : float;  (** Σ (G−Ĝ)²/σ² *)
  roughness : float;  (** ∫ f̂''² *)
  active_positivity : int;  (** number of active positivity constraints *)
  qp_iterations : int;
}

val solve :
  ?budget:Robust.Budget.t ->
  ?lambda:float ->
  ?ridge:float ->
  ?cache:Optimize.Spectral.Cache.t ->
  Problem.t ->
  estimate
(** Default λ = 1e-4 (use {!Lambda} for data-driven selection). [ridge]
    (default 0) adds ridge·I to the normal matrix — the knob the robust
    cascade escalates to fight ill-conditioning. [budget] (default
    unlimited) is ticked once per QP interior-point pass; when it fires
    the solve raises {!Robust.Error.Error} [(Budget_exhausted _)]. All
    failures cross this boundary as {!Robust.Error.Error}: a singular
    system surfaces as [Ill_conditioned], an infeasible QP as
    [Qp_stalled] — never a bare internal exception.

    [cache] opts the solve into the spectral warm start: the constrained
    QP starts from the unconstrained Demmler–Reinsch solution at λ (the
    factorization coming from / going into the cache), which typically
    saves the interior-point method its early centering iterations.
    Results are unaffected beyond the QP tolerance — the warm start moves
    the starting iterate, not the optimum. *)

val solve_unconstrained :
  ?lambda:float ->
  ?ridge:float ->
  ?spectral:Optimize.Spectral.t * Optimize.Spectral.projection ->
  Problem.t ->
  estimate
(** The same objective ignoring all constraints — the pure smoothing-spline
    baseline (used for λ selection and ablations). [spectral] supplies a
    prebuilt Demmler–Reinsch factorization + data projection of this
    problem: the solve becomes an O(n²) diagonal rescale instead of a
    Cholesky factorization. Ignored when a nonzero [ridge] is requested
    (the ridge perturbs the factored system). *)

val naive : Problem.t -> estimate
(** The no-regularization baseline: λ = 0 with a vanishing ridge for
    numerical solvability and no constraints. Demonstrates the
    ill-posedness of the inversion (paper §2.3: "this inversion process is
    ill-posed"). *)

val profile_on : Problem.t -> estimate -> Vec.t -> Vec.t
(** Evaluate the estimated f̂ on an arbitrary phase grid. *)

val finite_estimate : estimate -> bool
(** All of [alpha], [profile], [fitted] and [cost] are finite — the
    sanity gate the cascade (and the fault-isolated batch) applies before
    accepting an estimate. *)

(** {1 Fault tolerance} *)

type policy = {
  max_retries : int;  (** extra constrained attempts after the first *)
  lambda_boost : float;  (** λ multiplier per retry *)
  ridge_floor : float;  (** first retry's ridge, relative to ‖H‖_max *)
  ridge_growth : float;  (** ridge multiplier per further retry *)
  condition_limit : float;  (** κ above which a preemptive ridge is applied *)
  qp_tol : float;
  qp_max_iter : int;
  enable_unconstrained : bool;  (** allow degradation level 2 *)
  enable_richardson_lucy : bool;  (** allow degradation level 3 *)
  repair_inputs : bool;  (** mask NaN measurements, fix bad sigmas *)
  rl_iterations : int;
}

val default_policy : policy
(** 2 retries, λ×10 per retry, relative ridge floor 1e-8 growing ×100,
    condition limit 1e12, both fallbacks and input repair enabled. *)

val repair_problem : Problem.t -> Problem.t * Robust.Report.repair list
(** Best-effort input repair: non-finite measurements are masked (value 0
    with a huge-but-finite σ, so their weight vanishes) and non-finite or
    non-positive sigmas are replaced by the median of the valid ones.
    Returns the problem unchanged (physically equal) when nothing needed
    fixing. *)

val solve_robust :
  ?policy:policy ->
  ?budget:Robust.Budget.t ->
  ?lambda:float ->
  ?cache:Optimize.Spectral.Cache.t ->
  Problem.t ->
  (estimate * Robust.Report.t, Robust.Error.t) result
(** Fault-tolerant solve. [cache] enables the spectral warm start for the
    first constrained attempt (see {!solve}); escalation retries always
    warm-start from the previous attempt's iterate and active set —
    neighboring λ share their active faces. The cascade:

    {ol
     {- repair inputs (if [policy.repair_inputs]) and {!Problem.validate};
        unreparable input ⇒ [Error];}
     {- estimate the condition number of AᵀWA + λΩ; above
        [condition_limit], precondition with a ridge;}
     {- constrained QP, retrying up to [max_retries] times with escalating
        λ and ridge on stall / singular factorization / non-finite result;}
     {- unconstrained smoothing spline at the boosted regularization;}
     {- Richardson–Lucy multiplicative deconvolution (positivity-preserving,
        factorization-free).}}

    On a clean problem the first attempt is numerically identical to
    {!solve} and the report shows [degradation = 0]. Every attempt (stage,
    λ, ridge, wall-clock, outcome) is recorded in the report.

    [budget] (default unlimited) is one {!Robust.Budget} shared across the
    whole cascade: every QP interior-point pass and Richardson–Lucy update
    ticks it, and when it fires the remaining stages are skipped and the
    result is [Error (Budget_exhausted _)] — a runaway gene is cut off
    rather than handed to a cheaper stage with the clock already blown. *)
