open Numerics

let matrix_grid (k : Cellpop.Kernel.t) =
  let n_t = Array.length k.Cellpop.Kernel.times in
  let n_phi = Array.length k.Cellpop.Kernel.phases in
  Mat.init n_t n_phi (fun m j -> Mat.get k.Cellpop.Kernel.q m j *. k.Cellpop.Kernel.bin_width)

let matrix_basis k basis =
  let design = Spline.Basis.design basis k.Cellpop.Kernel.phases in
  Mat.matmul (matrix_grid k) design

let apply k f = Cellpop.Kernel.integrate_profile k f

let apply_fn k profile = apply k (Array.map profile k.Cellpop.Kernel.phases)
