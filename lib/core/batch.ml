open Numerics

type t = {
  kernel : Cellpop.Kernel.t;
  basis : Spline.Basis.t;
  params : Cellpop.Params.t;
  use_positivity : bool;
  use_conservation : bool;
  use_rate_continuity : bool;
}

let prepare ?(use_positivity = true) ?(use_conservation = true) ?(use_rate_continuity = true)
    ~kernel ~basis ~params () =
  { kernel; basis; params; use_positivity; use_conservation; use_rate_continuity }

let problem_for t ?sigmas measurements =
  Problem.create ~use_positivity:t.use_positivity ~use_conservation:t.use_conservation
    ~use_rate_continuity:t.use_rate_continuity ?sigmas ~kernel:t.kernel ~basis:t.basis
    ~measurements ~params:t.params ()

let solve_gene t ?sigmas ?(lambda = `Gcv) ~measurements () =
  let problem = problem_for t ?sigmas measurements in
  let lambda =
    match lambda with
    | `Fixed l -> l
    | `Gcv -> Lambda.select problem ~method_:`Gcv ()
  in
  Solver.solve ~lambda problem

let solve_all t ?sigmas ?lambda ~measurements () =
  let genes, _ = Mat.dims measurements in
  (* Whole solves fan out per gene; a gene's inner λ sweep then finds the
     pool busy and runs inline (Parallel's nested fallback), which is the
     right granularity — genes outnumber domains long before candidates
     do. GCV is deterministic, so per-gene results do not depend on the
     fan-out. *)
  Parallel.parallel_map ~chunk:1 ~n:genes (fun g ->
      let sigma_row = Option.map (fun s -> Mat.row s g) sigmas in
      solve_gene t ?sigmas:sigma_row ?lambda ~measurements:(Mat.row measurements g) ())

let phases t = Array.copy t.kernel.Cellpop.Kernel.phases

let peak_phase t (estimate : Solver.estimate) =
  t.kernel.Cellpop.Kernel.phases.(Vec.argmax estimate.Solver.profile)

let classify_by_peak t estimates ~boundaries =
  let n_b = Array.length boundaries in
  for i = 0 to n_b - 2 do
    assert (boundaries.(i) < boundaries.(i + 1))
  done;
  Array.map
    (fun estimate ->
      let peak = peak_phase t estimate in
      let rec find i = if i >= n_b || peak < boundaries.(i) then i else find (i + 1) in
      find 0)
    estimates
