open Numerics

type t = {
  kernel : Cellpop.Kernel.t;
  basis : Spline.Basis.t;
  params : Cellpop.Params.t;
  use_positivity : bool;
  use_conservation : bool;
  use_rate_continuity : bool;
}

let prepare ?(use_positivity = true) ?(use_conservation = true) ?(use_rate_continuity = true)
    ~kernel ~basis ~params () =
  { kernel; basis; params; use_positivity; use_conservation; use_rate_continuity }

let problem_for t ?sigmas measurements =
  Problem.create ~use_positivity:t.use_positivity ~use_conservation:t.use_conservation
    ~use_rate_continuity:t.use_rate_continuity ?sigmas ~kernel:t.kernel ~basis:t.basis
    ~measurements ~params:t.params ()

let solve_gene t ?sigmas ?(lambda = `Gcv) ?cache ~measurements () =
  let problem = problem_for t ?sigmas measurements in
  let lambda =
    match lambda with
    | `Fixed l -> l
    | `Gcv -> (
      (* GCV scoring tolerates singular candidate systems (they score as
         infinitely bad), but the final factorization at the chosen λ can
         still fail; that failure crosses this typed-error boundary as
         Robust.Error, matching Solver.solve. *)
      match Lambda.select problem ~method_:`Gcv ?cache () with
      | l -> l
      | exception Linalg.Singular _ ->
        Robust.Error.raise_error
          (Robust.Error.Ill_conditioned { cond = Float.infinity }))
  in
  Solver.solve ~lambda ?cache problem

(* ---------------- fault-isolated batch ---------------- *)

let hex = Printf.sprintf "%h"

let gene_key t ?sigmas ~lambda ~measurements () =
  let k = t.kernel in
  let b = t.basis in
  let p = t.params in
  let flag v = if v then "1" else "0" in
  Checkpoint.key_of_parts
    [
      "kernel";
      Checkpoint.vec_part k.Cellpop.Kernel.phases;
      hex k.Cellpop.Kernel.bin_width;
      Checkpoint.vec_part k.Cellpop.Kernel.times;
      Checkpoint.mat_part k.Cellpop.Kernel.q;
      "basis";
      b.Spline.Basis.name;
      string_of_int b.Spline.Basis.size;
      hex b.Spline.Basis.lo;
      hex b.Spline.Basis.hi;
      "params";
      hex p.Cellpop.Params.mu_sst;
      hex p.Cellpop.Params.cv_sst;
      hex p.Cellpop.Params.mean_cycle_minutes;
      hex p.Cellpop.Params.cv_cycle;
      hex p.Cellpop.Params.v0;
      (match p.Cellpop.Params.volume_model with
      | Cellpop.Params.Linear -> "linear"
      | Cellpop.Params.Smooth -> "smooth");
      (match p.Cellpop.Params.initial_condition with
      | Cellpop.Params.Synchronized_swarmer -> "swarmer"
      | Cellpop.Params.Uniform_phase -> "uniform");
      "constraints";
      flag t.use_positivity ^ flag t.use_conservation ^ flag t.use_rate_continuity;
      "lambda";
      (match lambda with `Gcv -> "gcv" | `Fixed l -> "fixed:" ^ hex l);
      "gene";
      Checkpoint.vec_part measurements;
      "sigmas";
      (match sigmas with None -> "none" | Some s -> Checkpoint.vec_part s);
    ]

let solve_gene_result t ?sigmas ?(lambda = `Gcv) ?budget ?cache ~measurements () =
  match
    let problem = problem_for t ?sigmas measurements in
    match Problem.validate problem with
    | Error e -> Error e
    | Ok () -> (
      match
        match lambda with
        | `Fixed l ->
          if Float.is_finite l && l >= 0.0 then Ok l
          else
            Error
              (Robust.Error.Invalid_input
                 { field = "lambda"; why = Printf.sprintf "%g is not finite and >= 0" l })
        | `Gcv -> Lambda.select_result problem ~method_:`Gcv ?cache ()
      with
      | Error e -> Error e
      | Ok lam ->
        let est = Solver.solve ?budget ~lambda:lam ?cache problem in
        if Solver.finite_estimate est then begin
          (* Batch genes go through the raw solve (no cascade), so the
             per-solve quality record is emitted here; κ is recomputed
             only under an active sink. *)
          if Obs.Diag.enabled () then
            Quality.emit_solve ~problem ~fitted:est.Solver.fitted ~lambda:est.Solver.lambda
              ~entry_lambda:lam ~rss:est.Solver.data_misfit
              ~kappa:(Quality.kappa problem ~lambda:est.Solver.lambda)
              ~degradation:0 ~active_positivity:est.Solver.active_positivity
              ~qp_iterations:est.Solver.qp_iterations ~solved_by:"constrained_qp"
              ~cascade:"constrained_qp" ();
          Ok est
        end
        else Error (Robust.Error.Non_finite { stage = "constrained QP solution" }))
  with
  | r -> r
  | exception Robust.Error.Error e -> Error e
  (* lint: allow R2 -- this is the per-gene fault-isolation boundary: the
     exception becomes a typed, journaled outcome instead of killing the
     batch *)
  | exception e -> Error (Robust.Error.of_exn e)

module Outcome = struct
  type t = {
    outcomes : (Solver.estimate, Robust.Error.t) result array;
    replayed : int;
    quality : (string * Quality.quantiles) list;
        (** per-gene quality quantiles over the successful solves —
            empty when nothing succeeded *)
  }

  let total t = Array.length t.outcomes

  let ok_count t =
    Array.fold_left (fun n -> function Ok _ -> n + 1 | Error _ -> n) 0 t.outcomes

  let failed_count t = total t - ok_count t
  let fully_ok t = failed_count t = 0

  let failures t =
    let acc = ref [] in
    Array.iteri
      (fun g -> function Ok _ -> () | Error e -> acc := (g, e) :: !acc)
      t.outcomes;
    List.rev !acc

  let class_counts t =
    let tally = Hashtbl.create 8 in
    List.iter
      (fun (_, e) ->
        let cls = Robust.Error.class_name e in
        Hashtbl.replace tally cls (1 + Option.value ~default:0 (Hashtbl.find_opt tally cls)))
      (failures t);
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun cls n acc -> (cls, n) :: acc) tally [])

  let estimates t =
    Array.map (function Ok est -> est | Error e -> Robust.Error.raise_error e) t.outcomes
end

let solve_all_result t ?sigmas ?(lambda = `Gcv) ?max_seconds ?max_iterations ?journal
    ?(block = 64) ?on_block ?progress ~measurements () =
  if block < 1 then
    Robust.Error.raise_error
      (Robust.Error.Invalid_input { field = "block"; why = "must be >= 1" });
  let genes, _ = Mat.dims measurements in
  let sigma_row g = Option.map (fun s -> Mat.row s g) sigmas in
  let keys =
    match journal with
    | None -> [||]
    | Some _ ->
      Array.init genes (fun g ->
          gene_key t ?sigmas:(sigma_row g) ~lambda ~measurements:(Mat.row measurements g) ())
  in
  let outcomes = Array.make genes None in
  let replayed = ref 0 in
  (match journal with
  | Some j ->
    let entries = Checkpoint.entries j in
    for g = 0 to genes - 1 do
      match Checkpoint.find entries ~gene:g ~key:keys.(g) with
      | Some e ->
        outcomes.(g) <- Some e.Checkpoint.outcome;
        incr replayed
      | None -> ()
    done
  | None -> ());
  let pending =
    Array.of_list
      (List.filter (fun g -> outcomes.(g) = None) (List.init genes (fun g -> g)))
  in
  (* One factorization cache for the whole batch: genes share the kernel
     (and, absent per-gene sigmas, the weights), so their penalized
     systems hash to the same key and the Demmler–Reinsch decomposition
     is computed once, not per gene. Created locally and passed down —
     never module-level state — so worker-domain access stays inside the
     cache's lock-free CAS discipline and results cannot depend on jobs
     count (cache entries are pure functions of their keys). *)
  let cache = Optimize.Spectral.Cache.create () in
  (match progress with
  | Some p -> Obs.Progress.record_replayed p !replayed
  | None -> ());
  (* Fires on worker domains as genes finish; Progress is mutex-guarded
     and the callback only tallies, so determinism is untouched. *)
  let on_result _ res =
    match res with
    | Ok (Ok _) -> Obs.Progress.record_into progress ~ok:true ()
    | Ok (Error e) ->
      Obs.Progress.record_into progress ~cls:(Robust.Error.class_name e) ~ok:false ()
    | Error exn ->
      Obs.Progress.record_into progress
        ~cls:(Robust.Error.class_name (Robust.Error.of_exn exn))
        ~ok:false ()
  in
  let done_ = ref !replayed in
  let pos = ref 0 in
  while !pos < Array.length pending do
    let hi = Stdlib.min (Array.length pending) (!pos + block) in
    let idx = Array.sub pending !pos (hi - !pos) in
    (* Whole solves fan out per gene; a gene's inner λ sweep then finds
       the pool busy and runs inline (Parallel's nested fallback), which
       is the right granularity — genes outnumber domains long before
       candidates do. GCV is deterministic and genes are independent, so
       per-gene results depend on neither the fan-out nor the block
       boundaries. *)
    let results =
      Parallel.parallel_map_result ~chunk:1 ~on_result ~n:(Array.length idx) (fun j ->
          let g = idx.(j) in
          let budget =
            if max_seconds = None && max_iterations = None then None
            else Some (Robust.Budget.create ?max_seconds ?max_iterations ())
          in
          (* Diag records emitted inside key by gene id, so trace diff
             can join per-gene quality across two batch runs. *)
          Obs.Diag.with_solve (Printf.sprintf "gene:%d" g) (fun () ->
              solve_gene_result t ?sigmas:(sigma_row g) ~lambda ?budget ~cache
                ~measurements:(Mat.row measurements g) ()))
    in
    let fresh = ref [] in
    Array.iteri
      (fun j res ->
        let g = idx.(j) in
        let outcome =
          match res with Ok o -> o | Error exn -> Error (Robust.Error.of_exn exn)
        in
        outcomes.(g) <- Some outcome;
        if Option.is_some journal then
          fresh := { Checkpoint.gene = g; key = keys.(g); outcome } :: !fresh)
      results;
    (match journal with Some j -> Checkpoint.append j (List.rev !fresh) | None -> ());
    done_ := !done_ + Array.length idx;
    (match on_block with Some f -> f ~done_:!done_ ~total:genes | None -> ());
    pos := hi
  done;
  let outcomes = Array.map (function Some o -> o | None -> assert false) outcomes in
  (* Per-gene quality quantiles over the successful solves. Everything
     here is O(n) per gene on data already in hand (the runs test reuses
     the gene's own measurements/σ row), so the summary is always
     computed — genome-scale output should be auditable without a trace
     sink. *)
  let quality =
    let per_gene = ref [] in
    Array.iteri
      (fun g outcome ->
        match outcome with
        | Error _ -> ()
        | Ok (est : Solver.estimate) ->
          let meas = Mat.row measurements g in
          let standardized =
            Array.init (Array.length meas) (fun m ->
                let sigma =
                  match sigma_row g with Some s -> s.(m) | None -> 1.0
                in
                (meas.(m) -. est.Solver.fitted.(m)) /. sigma)
          in
          per_gene :=
            [
              ("rss", est.Solver.data_misfit);
              ("lambda", est.Solver.lambda);
              ("qp_iterations", float_of_int est.Solver.qp_iterations);
              ("active_positivity", float_of_int est.Solver.active_positivity);
              ("runs_z", Stats.runs_z standardized);
            ]
            :: !per_gene)
      outcomes;
    Quality.summarize (List.rev !per_gene)
  in
  List.iter
    (fun (key, (q : Quality.quantiles)) ->
      Obs.Metrics.set ("batch.quality." ^ key ^ ".p50") q.Quality.q50;
      Obs.Metrics.set ("batch.quality." ^ key ^ ".p90") q.Quality.q90)
    quality;
  let outcome = { Outcome.outcomes; replayed = !replayed; quality } in
  Obs.Metrics.incr ~by:(float_of_int (Outcome.ok_count outcome)) "batch.genes_ok";
  Obs.Metrics.incr ~by:(float_of_int (Outcome.failed_count outcome)) "batch.genes_failed";
  Obs.Metrics.incr ~by:(float_of_int !replayed) "batch.genes_replayed";
  List.iter
    (fun (cls, n) ->
      Obs.Metrics.incr ~by:(float_of_int n) ("batch.failures." ^ cls))
    (Outcome.class_counts outcome);
  outcome

let solve_all t ?sigmas ?lambda ~measurements () =
  Outcome.estimates (solve_all_result t ?sigmas ?lambda ~measurements ())

let phases t = Array.copy t.kernel.Cellpop.Kernel.phases

let peak_phase t (estimate : Solver.estimate) =
  t.kernel.Cellpop.Kernel.phases.(Vec.argmax estimate.Solver.profile)

let classify_by_peak t estimates ~boundaries =
  let n_b = Array.length boundaries in
  for i = 0 to n_b - 2 do
    assert (boundaries.(i) < boundaries.(i + 1))
  done;
  Array.map
    (fun estimate ->
      let peak = peak_phase t estimate in
      let rec find i = if i >= n_b || peak < boundaries.(i) then i else find (i + 1) in
      find 0)
    estimates
