open Numerics

type config = {
  genes : int;
  faults : int;
  seed : int;
  jobs : int list;
  block : int;
  crash_after : int;
  n_cells : int;
  n_phi : int;
  n_times : int;
}

let default_config =
  {
    genes = 200;
    faults = 10;
    seed = 1106;
    jobs = [ 1; 2; 4 ];
    block = 16;
    crash_after = 0 (* 0 = halfway *);
    n_cells = 400;
    n_phi = 41;
    n_times = 9;
  }

type report = {
  config : config;
  faulty_rows : int array;
  class_counts : (string * int) list;
  journaled_errors : int;
  replayed : int;
  violations : string list;
}

let passed r = r.violations = []

(* ---------------- fixture ---------------- *)

let fixture cfg =
  let params = Cellpop.Params.paper_2011 in
  let rng = Rng.create cfg.seed in
  let times = Array.init cfg.n_times (fun i -> 20.0 *. float_of_int i) in
  let kernel =
    Cellpop.Kernel.estimate ~smooth_window:5 params ~rng ~n_cells:cfg.n_cells ~times
      ~n_phi:cfg.n_phi
  in
  let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:10 in
  let batch = Batch.prepare ~kernel ~basis ~params () in
  let grng = Rng.split rng in
  let measurements =
    Mat.of_rows
      (Array.init cfg.genes (fun _ ->
           (* lint: allow R4 — 0.15 here bounds the synthetic pulse shapes,
              not the paper's phi_sst mean *)
           let center = Rng.uniform grng ~lo:0.15 ~hi:0.85 in
           (* lint: allow R4 — same: a pulse-width bound, not phi_sst *)
           let width = Rng.uniform grng ~lo:0.08 ~hi:0.15 in
           let height = Rng.uniform grng ~lo:1.0 ~hi:4.0 in
           let profile = Biomodels.Gene_profile.gaussian_pulse ~center ~width ~height () in
           Forward.apply_fn kernel profile))
  in
  (batch, measurements)

(* ---------------- bitwise comparison ---------------- *)

let bits_vec_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x -> if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
        a;
      !ok)

let bits_estimate_equal (a : Solver.estimate) (b : Solver.estimate) =
  bits_vec_equal a.Solver.alpha b.Solver.alpha
  && bits_vec_equal a.Solver.profile b.Solver.profile
  && bits_vec_equal a.Solver.fitted b.Solver.fitted
  && Int64.bits_of_float a.Solver.lambda = Int64.bits_of_float b.Solver.lambda
  && Int64.bits_of_float a.Solver.cost = Int64.bits_of_float b.Solver.cost

let bits_outcome_equal a b =
  match (a, b) with
  | Ok x, Ok y -> bits_estimate_equal x y
  | Error x, Error y -> Robust.Error.equal x y
  | _ -> false

let with_jobs n f =
  let prev = Parallel.jobs () in
  Parallel.set_jobs n;
  let finally () = Parallel.set_jobs prev in
  Fun.protect ~finally f

(* ---------------- the harness ---------------- *)

let run ?(config = default_config) ~journal_path () =
  let cfg = config in
  if cfg.faults > cfg.genes then
    Robust.Error.raise_error
      (Robust.Error.Invalid_input { field = "faults"; why = "must be <= genes" });
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let batch, clean_measurements = fixture cfg in
  (* Injected faults: the first half of the chosen rows get a NaN
     measurement entry, the rest get a poisoned (zero) sigma row — both
     members of the Robust.Error taxonomy a real microarray produces. *)
  let frng = Rng.create (cfg.seed + 1) in
  let rows = Robust.Fault.choose_rows frng ~k:cfg.faults ~rows:cfg.genes in
  let nan_rows = Array.sub rows 0 (Array.length rows / 2) in
  let sigma_rows = Array.sub rows (Array.length rows / 2) (Array.length rows - (Array.length rows / 2)) in
  let measurements =
    Robust.Fault.apply
      (Robust.Fault.corrupt_rows ~rows:nan_rows (Robust.Fault.nan_at ()))
      frng clean_measurements
  in
  let genes, n_m = Mat.dims clean_measurements in
  let sigmas =
    Robust.Fault.apply
      (Robust.Fault.poison_sigma_rows ~rows:sigma_rows)
      frng
      (Mat.of_rows (Array.init genes (fun _ -> Vec.ones n_m)))
  in
  let faulty = Array.to_list rows in
  (* Reference: the fault-free run, single-domain. *)
  let reference =
    with_jobs 1 (fun () -> Batch.solve_all_result batch ~lambda:`Gcv ~measurements:clean_measurements ())
  in
  (match Batch.Outcome.failures reference with
  | [] -> ()
  | (g, e) :: _ ->
    violate "fault-free reference run failed at gene %d: %s" g (Robust.Error.to_string e));
  (* Invariant 1+2: under faults, the batch completes with exactly the
     injected genes failing, and clean genes bit-identical to the
     reference — at every jobs setting. *)
  let chaos_at jobs =
    with_jobs jobs (fun () ->
        Batch.solve_all_result batch ~sigmas ~lambda:`Gcv ~measurements ())
  in
  let chaos_ref = chaos_at (match cfg.jobs with j :: _ -> j | [] -> 1) in
  List.iter
    (fun jobs ->
      let outcome = chaos_at jobs in
      let failed = List.map fst (Batch.Outcome.failures outcome) in
      if failed <> faulty then
        violate "jobs=%d: failed genes [%s] do not match injected faults [%s]" jobs
          (String.concat "," (List.map string_of_int failed))
          (String.concat "," (List.map string_of_int faulty));
      Array.iteri
        (fun g out ->
          match (out, reference.Batch.Outcome.outcomes.(g)) with
          | Ok est, Ok ref_est when not (List.mem g faulty) ->
            if not (bits_estimate_equal est ref_est) then
              violate "jobs=%d: clean gene %d differs bitwise from fault-free run" jobs g
          | Error e, _ when not (List.mem g faulty) ->
            violate "jobs=%d: clean gene %d failed: %s" jobs g (Robust.Error.to_string e)
          | _ -> ())
        outcome.Batch.Outcome.outcomes)
    cfg.jobs;
  (* Invariant 3: crash mid-batch, then resume; the journal must hold only
     complete blocks, and the resumed run must reproduce the uninterrupted
     outcomes bit-for-bit while replaying (not re-solving) journaled
     genes. *)
  let crash_point = if cfg.crash_after > 0 then cfg.crash_after else cfg.genes / 2 in
  let journal = Checkpoint.create ~path:journal_path in
  (match
     with_jobs 1 (fun () ->
         Batch.solve_all_result batch ~sigmas ~lambda:`Gcv ~journal ~block:cfg.block
           ~on_block:(Robust.Fault.crash_after ~genes:crash_point)
           ~measurements ())
   with
  | (_ : Batch.Outcome.t) ->
    violate "injected crash after %d genes never fired (%d genes, block %d)" crash_point
      cfg.genes cfg.block
  | exception Robust.Fault.Injected_crash _ -> ());
  let resumed =
    match Checkpoint.resume ~path:journal_path with
    | Error msg ->
      violate "journal unreadable after crash: %s" msg;
      with_jobs 1 (fun () ->
          Batch.solve_all_result batch ~sigmas ~lambda:`Gcv ~measurements ())
    | Ok journal ->
      let before = List.length (Checkpoint.entries journal) in
      if before < crash_point then
        violate "journal holds %d entries, expected at least the %d pre-crash genes" before
          crash_point;
      with_jobs 1 (fun () ->
          Batch.solve_all_result batch ~sigmas ~lambda:`Gcv ~journal ~block:cfg.block
            ~measurements ())
  in
  if resumed.Batch.Outcome.replayed = 0 then
    violate "resume replayed no journaled genes";
  Array.iteri
    (fun g out ->
      if not (bits_outcome_equal out chaos_ref.Batch.Outcome.outcomes.(g)) then
        violate "resumed gene %d differs from the uninterrupted run" g)
    resumed.Batch.Outcome.outcomes;
  (* The journal must now hold exactly one entry per gene, with exactly
     [faults] journaled errors. *)
  let journaled_errors =
    match Checkpoint.load ~path:journal_path with
    | Error msg ->
      violate "final journal unreadable: %s" msg;
      0
    | Ok entries ->
      if List.length entries <> cfg.genes then
        violate "final journal holds %d entries for %d genes" (List.length entries) cfg.genes;
      List.length
        (List.filter (fun e -> Result.is_error e.Checkpoint.outcome) entries)
  in
  if journaled_errors <> cfg.faults then
    violate "journal records %d errors, expected exactly %d" journaled_errors cfg.faults;
  {
    config = cfg;
    faulty_rows = rows;
    class_counts = Batch.Outcome.class_counts chaos_ref;
    journaled_errors;
    replayed = resumed.Batch.Outcome.replayed;
    violations = List.rev !violations;
  }
