(** Recovery metrics comparing an estimated single-cell profile against the
    known ground truth in the validation experiments. *)

open Numerics

type comparison = {
  rmse : float;
  nrmse : float;  (** RMSE / range of the truth *)
  mae : float;
  max_abs : float;
  correlation : float;  (** Pearson correlation *)
}

val compare : truth:Vec.t -> estimate:Vec.t -> comparison

val to_string : comparison -> string

val improvement_factor : truth:Vec.t -> baseline:Vec.t -> estimate:Vec.t -> float
(** RMSE(baseline, truth) / RMSE(estimate, truth): > 1 when the estimate is
    closer to the truth than the baseline (e.g. deconvolved vs. raw
    population signal). *)
