open Numerics

type estimate = {
  alpha : Vec.t;
  profile : Vec.t;
  fitted : Vec.t;
  lambda : float;
  cost : float;
  data_misfit : float;
  roughness : float;
  active_positivity : int;
  qp_iterations : int;
}

(* Quadratic form pieces of eq. 5:
   C(α) = (g − Aα)ᵀ W (g − Aα) + λ αᵀ Ω α
        = αᵀ(AᵀWA + λΩ)α − 2(AᵀWg)ᵀα + const,
   i.e. QP with H = 2(AᵀWA + λΩ), linear term −2AᵀWg. An optional ridge
   (the cascade's escalating floor) adds ridge·I inside the parentheses. *)
let quadratic_pieces ?(ridge = 0.0) problem lambda =
  let a = Problem.design problem in
  let w = Problem.weights problem in
  let omega = Problem.penalty problem in
  let normal = Optimize.Ridge.normal_matrix ~a ~weights:w ~penalty:omega ~lambda in
  if ridge > 0.0 then
    for i = 0 to normal.Mat.rows - 1 do
      Mat.set normal i i (Mat.get normal i i +. ridge)
    done;
  let h = Mat.scale 2.0 normal in
  let wg = Vec.mul w problem.Problem.measurements in
  let g_lin = Vec.scale (-2.0) (Mat.tmv a wg) in
  (a, w, omega, h, g_lin)

let equality_rows problem =
  let rows = ref [] in
  if problem.Problem.use_rate_continuity then
    rows := Constraints.rate_continuity_row problem.Problem.params problem.Problem.basis :: !rows;
  if problem.Problem.use_conservation then
    rows := Constraints.conservation_row problem.Problem.params problem.Problem.basis :: !rows;
  match !rows with
  | [] -> None
  | rows -> Some (Mat.of_rows (Array.of_list rows))

let finish problem lambda a w omega (alpha : Vec.t) iterations active =
  let fitted = Mat.mv a alpha in
  let residuals = Vec.sub problem.Problem.measurements fitted in
  let data_misfit =
    let acc = ref 0.0 in
    Array.iteri (fun i r -> acc := !acc +. (w.(i) *. r *. r)) residuals;
    !acc
  in
  let roughness = Vec.dot alpha (Mat.mv omega alpha) in
  let profile =
    Spline.Basis.combine_many problem.Problem.basis alpha
      problem.Problem.kernel.Cellpop.Kernel.phases
  in
  {
    alpha;
    profile;
    fitted;
    lambda;
    cost = data_misfit +. (lambda *. roughness);
    data_misfit;
    roughness;
    active_positivity = active;
    qp_iterations = iterations;
  }

(* The full constrained solve, returning the raw QP solution alongside the
   estimate so the cascade can distinguish "converged" from "gave up" and
   reuse the iterate + active set to warm-start the next retry. *)
let solve_constrained ?warm_start ?on_iteration ?(ridge = 0.0) ?(tol = 1e-9) ?(max_iter = 100)
    ?(fail_on_stall = true) ~lambda problem =
  Obs.Span.with_ "solver.constrained" (fun sp ->
      Obs.Span.set_float sp "lambda" lambda;
      Obs.Span.set_float sp "ridge" ridge;
      let a, w, omega, h, g_lin = quadratic_pieces ~ridge problem lambda in
      let c_eq = equality_rows problem in
      let d_eq = Option.map (fun (c : Mat.t) -> Vec.zeros c.Mat.rows) c_eq in
      let a_ineq, b_ineq =
        if problem.Problem.use_positivity then begin
          let grid = problem.Problem.kernel.Cellpop.Kernel.phases in
          (* Include the interval endpoints: the conservation constraints act
             on f(0) and f(1), which lie outside the bin-center grid. *)
          let grid = Vec.concat [ [| 0.0 |]; grid; [| 1.0 |] ] in
          let rows = Constraints.positivity_rows problem.Problem.basis ~grid in
          (Some rows, Some (Vec.zeros rows.Mat.rows))
        end
        else (None, None)
      in
      let qp = { Optimize.Qp.h; g = g_lin; c_eq; d_eq; a_ineq; b_ineq } in
      let solution =
        Optimize.Qp.solve ?warm_start ?on_iteration ~tol ~max_iter ~fail_on_stall qp
      in
      let est =
        finish problem lambda a w omega solution.Optimize.Qp.x solution.Optimize.Qp.iterations
          (List.length solution.Optimize.Qp.active)
      in
      Obs.Span.set_int sp "qp_iterations" est.qp_iterations;
      Obs.Span.set_int sp "active_positivity" est.active_positivity;
      Obs.Metrics.incr "solver.constrained_solves";
      Obs.Metrics.incr ~by:(float_of_int est.qp_iterations) "solver.qp_iterations";
      Obs.Metrics.observe "solver.active_positivity" (float_of_int est.active_positivity);
      (est, solution))

(* Spectral warm-start hint for the constrained QP at λ: the unconstrained
   minimizer read off the (cached) Demmler–Reinsch factorization. A failed
   factorization just means a cold start — the hint is an optimization,
   never a requirement. *)
let spectral_warm_start ?cache problem ~lambda =
  match
    let a = Problem.design problem in
    let w = Problem.weights problem in
    let omega = Problem.penalty problem in
    let fact = Optimize.Spectral.factorize_problem ?cache ~a ~weights:w ~penalty:omega () in
    let proj =
      Optimize.Spectral.project_data fact ~a ~weights:w ~b:problem.Problem.measurements
    in
    Optimize.Spectral.solution fact proj ~lambda
  with
  | x0 -> Some { Optimize.Qp.x0; active0 = [] }
  | exception Linalg.Singular _ -> None

let solve ?budget ?(lambda = 1e-4) ?ridge ?cache problem =
  let on_iteration = Option.map Robust.Budget.on_iteration budget in
  (* A caller-supplied factorization cache opts the solve into the spectral
     warm start: genes/replicates sharing one kernel pay for the
     factorization once and every subsequent QP starts from its own
     unconstrained spectral solution. Without a cache the solve is the
     cold-start path, unchanged. *)
  let warm_start =
    match cache with
    | None -> None
    | Some _ -> spectral_warm_start ?cache problem ~lambda
  in
  (* The boundary of the typed-error contract for the raw (non-cascade)
     entry point: internal numeric exceptions become Robust.Error here, so
     direct callers — Batch.solve_gene, Bootstrap.residual's replicate
     re-solves — never see a bare Singular/Infeasible. *)
  match fst (solve_constrained ?warm_start ?on_iteration ?ridge ~lambda problem) with
  | est -> est
  | exception Linalg.Singular _ ->
    Robust.Error.raise_error (Robust.Error.Ill_conditioned { cond = Float.infinity })
  | exception Optimize.Qp.Infeasible _ ->
    Robust.Error.raise_error (Robust.Error.Qp_stalled { iterations = 0 })

let solve_unconstrained ?(lambda = 1e-4) ?ridge ?spectral problem =
  match (spectral, ridge) with
  | Some (fact, proj), (None | Some 0.0) ->
    (* Demmler–Reinsch fast path: the unconstrained minimizer is a diagonal
       rescale in the factorization's basis. A ridge disqualifies it — the
       ridge perturbs the Gram side the factorization was built on. *)
    let a = Problem.design problem in
    let w = Problem.weights problem in
    let omega = Problem.penalty problem in
    let alpha = Optimize.Spectral.solution fact proj ~lambda in
    finish problem lambda a w omega alpha 0 0
  | _ ->
    let a, w, omega, h, g_lin = quadratic_pieces ?ridge problem lambda in
    let alpha = Optimize.Qp.unconstrained h g_lin in
    finish problem lambda a w omega alpha 0 0

let naive problem =
  (* λ chosen only to make the normal matrix invertible; relative to the
     data scale it is ~1e-12, so the fit is effectively unregularized. *)
  let scale = Float.max 1e-300 (Vec.norm_inf problem.Problem.measurements) in
  let lambda = 1e-12 *. scale *. scale in
  let a, w, omega, h, g_lin = quadratic_pieces problem lambda in
  let alpha = Optimize.Qp.unconstrained h g_lin in
  { (finish problem lambda a w omega alpha 0 0) with lambda = 0.0 }

let profile_on problem estimate grid =
  Spline.Basis.combine_many problem.Problem.basis estimate.alpha grid

(* ---------------- graceful degradation ---------------- *)

type policy = {
  max_retries : int;
  lambda_boost : float;
  ridge_floor : float;
  ridge_growth : float;
  condition_limit : float;
  qp_tol : float;
  qp_max_iter : int;
  enable_unconstrained : bool;
  enable_richardson_lucy : bool;
  repair_inputs : bool;
  rl_iterations : int;
}

let default_policy =
  {
    max_retries = 2;
    lambda_boost = 10.0;
    ridge_floor = 1e-8;
    ridge_growth = 100.0;
    (* κ ≈ 1e10 still leaves ~6 significant digits in double precision and
       shows up on routine noisy datasets; only precondition when a direct
       solve is genuinely at risk. *)
    condition_limit = 1e12;
    qp_tol = 1e-9;
    qp_max_iter = 100;
    enable_unconstrained = true;
    enable_richardson_lucy = true;
    repair_inputs = true;
    rl_iterations = 200;
  }

(* Sigma that effectively removes a measurement from the fit (weight
   1/σ² ~ 1e-300) while staying finite and positive for validation. *)
let masking_sigma = 1e150

let repair_problem problem =
  let n = Array.length problem.Problem.measurements in
  let meas = Array.copy problem.Problem.measurements in
  let sig_ = Array.copy problem.Problem.sigmas in
  let good_sigma s = Float.is_finite s && s > 0.0 in
  let replacement =
    let good = List.filter good_sigma (Array.to_list sig_) in
    match List.sort Float.compare good with
    | [] -> 1.0
    | sorted -> List.nth sorted (List.length sorted / 2)
  in
  let floored = ref 0 and masked = ref 0 in
  for i = 0 to n - 1 do
    if not (good_sigma sig_.(i)) then begin
      sig_.(i) <- replacement;
      incr floored
    end;
    if not (Float.is_finite meas.(i)) then begin
      meas.(i) <- 0.0;
      sig_.(i) <- masking_sigma;
      incr masked
    end
  done;
  let repairs =
    (if !masked > 0 then
       [ { Robust.Report.action = "masked non-finite measurements"; count = !masked } ]
     else [])
    @
    if !floored > 0 then
      [ { Robust.Report.action = "replaced invalid sigmas"; count = !floored } ]
    else []
  in
  if repairs = [] then (problem, [])
  else ({ problem with Problem.measurements = meas; sigmas = sig_ }, repairs)

let finite_vec = Robust.Validate.all_finite

let finite_estimate e =
  finite_vec e.alpha && finite_vec e.profile && finite_vec e.fitted && Float.is_finite e.cost

(* Wrap the Richardson–Lucy grid estimate in the [estimate] record: project
   the grid profile onto the spline basis so [profile_on] keeps working,
   and recompute the cost pieces against the (repaired) measurements. *)
let estimate_of_richardson_lucy problem lambda (rl : Richardson_lucy.result) =
  let basis = problem.Problem.basis in
  let phases = problem.Problem.kernel.Cellpop.Kernel.phases in
  let alpha =
    match Linalg.qr_lstsq (Spline.Basis.design basis phases) rl.Richardson_lucy.profile with
    | alpha -> alpha
    | exception Linalg.Singular _ -> Vec.zeros basis.Spline.Basis.size
  in
  let w = Problem.weights problem in
  let residuals = Vec.sub problem.Problem.measurements rl.Richardson_lucy.fitted in
  let data_misfit =
    let acc = ref 0.0 in
    Array.iteri (fun i r -> acc := !acc +. (w.(i) *. r *. r)) residuals;
    !acc
  in
  let omega = Problem.penalty problem in
  let roughness = Vec.dot alpha (Mat.mv omega alpha) in
  {
    alpha;
    profile = rl.Richardson_lucy.profile;
    fitted = rl.Richardson_lucy.fitted;
    lambda;
    cost = data_misfit +. (lambda *. roughness);
    data_misfit;
    roughness;
    active_positivity = 0;
    qp_iterations = rl.Richardson_lucy.iterations;
  }

let solve_robust_validated ?cache ~policy ~budget ~lambda problem =
  let attempts = ref [] in
  (* One budget covers the whole cascade: iterations spent by an attempt
     that failed still count against the later stages, and a blown budget
     (non-recoverable by construction) aborts the remaining stages. *)
  let on_iteration = Robust.Budget.on_iteration budget in
  let aborted = ref false in
  (* Attempt durations are wall-clock via Obs.Clock (never Sys.time, which
     is processor time and stands still while the process waits). *)
  let record ?(iters = 0) stage lam ridge t0 outcome =
    attempts :=
      {
        Robust.Report.stage;
        lambda = lam;
        ridge;
        seconds = Obs.Clock.now () -. t0;
        iterations = iters;
        outcome;
      }
      :: !attempts
  in
  (* Each cascade attempt is also a span on the observability stream, so a
     trace shows the same story as the Robust.Report — stage, retry index,
     regularization and outcome — with the QP spans nested inside. *)
  let attempt_span stage_name body =
    Obs.Span.with_ "solver.attempt" (fun sp ->
        Obs.Span.set_str sp "stage" stage_name;
        body sp)
  in
  let outcome_attr sp = function
    | Ok () -> Obs.Span.set_str sp "outcome" "ok"
    | Error e -> Obs.Span.set_str sp "outcome" (Robust.Error.to_string e)
  in
  let problem', repairs =
    if policy.repair_inputs then repair_problem problem else (problem, [])
  in
  let t_validate = Obs.Clock.now () in
  match Problem.validate problem' with
  | Error e ->
    record Robust.Report.Validation lambda 0.0 t_validate (Error e);
    Error e
  | Ok () ->
    let problem = problem' in
    let repaired = repairs <> [] in
    (* Condition estimate of the penalized normal matrix at the entry λ:
       both a diagnostic and the trigger for a preemptive ridge floor. *)
    let normal =
      Optimize.Ridge.normal_matrix ~a:(Problem.design problem)
        ~weights:(Problem.weights problem) ~penalty:(Problem.penalty problem) ~lambda
    in
    let h_scale = Float.max 1e-300 (Mat.max_abs normal) in
    (* Only [Linalg.Singular] means "no usable estimate"; anything else
       (e.g. a non-square matrix) is a programming error and propagates. *)
    let condition =
      match Linalg.condition_spd normal with
      | c -> Some c
      | exception Linalg.Singular _ -> None
    in
    (match condition with
    | Some c -> Obs.Metrics.set "solver.condition" c
    | None -> ());
    let precondition_ridge =
      match condition with
      | Some c when c > policy.condition_limit -> policy.ridge_floor *. h_scale
      | _ -> 0.0
    in
    let report stage degradation =
      {
        Robust.Report.attempts = List.rev !attempts;
        condition;
        repairs;
        degradation;
        solved_by = stage;
      }
    in
    let last_error = ref (Robust.Error.Non_finite { stage = "solver" }) in
    let result = ref None in
    (* Warm-start state for stage 1: seeded from the spectral unconstrained
       solution when a factorization cache is in play, then replaced by the
       previous attempt's iterate + active set across the escalation
       retries (neighboring λ share their active faces). *)
    let warm =
      ref (match cache with None -> None | Some _ -> spectral_warm_start ?cache problem ~lambda)
    in
    (* Stage 1: constrained QP with bounded retry — escalating λ boost and
       ridge floor over the regularization strength. *)
    let k = ref 0 in
    while !result = None && (not !aborted) && !k <= policy.max_retries do
      let lam = lambda *. (policy.lambda_boost ** float_of_int !k) in
      let ridge =
        if !k = 0 then precondition_ridge
        else
          Float.max precondition_ridge (policy.ridge_floor *. h_scale)
          *. (policy.ridge_growth ** float_of_int (!k - 1))
      in
      attempt_span "constrained_qp" (fun sp ->
          Obs.Span.set_int sp "retry" !k;
          Obs.Span.set_float sp "lambda" lam;
          Obs.Span.set_float sp "ridge" ridge;
          let record ?iters stage l r t0 outcome =
            outcome_attr sp outcome;
            record ?iters stage l r t0 outcome
          in
          let t0 = Obs.Clock.now () in
          match
            solve_constrained ?warm_start:!warm ~on_iteration ~ridge ~tol:policy.qp_tol
              ~max_iter:policy.qp_max_iter ~fail_on_stall:false ~lambda:lam problem
          with
      | exception Robust.Error.Error e ->
        record Robust.Report.Constrained_qp lam ridge t0 (Error e);
        last_error := e;
        if not (Robust.Error.recoverable e) then aborted := true
      | exception Linalg.Singular _ ->
        let e =
          Robust.Error.Ill_conditioned
            { cond = Option.value condition ~default:Float.infinity }
        in
        record Robust.Report.Constrained_qp lam ridge t0 (Error e);
        last_error := e
      | exception Optimize.Qp.Infeasible _ ->
        let e = Robust.Error.Qp_stalled { iterations = policy.qp_max_iter } in
        record ~iters:policy.qp_max_iter Robust.Report.Constrained_qp lam ridge t0 (Error e);
        last_error := e
      | est, ({ Optimize.Qp.status = Optimize.Qp.Stalled; _ } as sol) ->
        (* The stalled iterate is still the best point seen at this λ —
           reuse it (and its active set) to start the boosted retry. *)
        if finite_vec sol.Optimize.Qp.x then
          warm := Some { Optimize.Qp.x0 = sol.Optimize.Qp.x; active0 = sol.Optimize.Qp.active };
        let e = Robust.Error.Qp_stalled { iterations = est.qp_iterations } in
        record ~iters:est.qp_iterations Robust.Report.Constrained_qp lam ridge t0 (Error e);
        last_error := e
      | est, { Optimize.Qp.status = Optimize.Qp.Converged; _ } ->
        if finite_estimate est then begin
          record ~iters:est.qp_iterations Robust.Report.Constrained_qp lam ridge t0 (Ok ());
          let degradation =
            if !k = 0 && (not repaired) && Float.equal precondition_ridge 0.0 then 0
            else 1
          in
          result := Some (est, report Robust.Report.Constrained_qp degradation)
        end
        else begin
          let e = Robust.Error.Non_finite { stage = "constrained QP solution" } in
          record ~iters:est.qp_iterations Robust.Report.Constrained_qp lam ridge t0 (Error e);
          last_error := e
        end);
      incr k
    done;
    (* Stage 2: unconstrained smoothing spline at the most-boosted
       regularization. *)
    if !result = None && (not !aborted) && policy.enable_unconstrained then begin
      let lam = lambda *. (policy.lambda_boost ** float_of_int policy.max_retries) in
      let ridge =
        Float.max precondition_ridge
          (policy.ridge_floor *. h_scale
          *. (policy.ridge_growth ** float_of_int (Stdlib.max 0 (policy.max_retries - 1))))
      in
      attempt_span "unconstrained" (fun sp ->
          Obs.Span.set_float sp "lambda" lam;
          Obs.Span.set_float sp "ridge" ridge;
          let record ?iters stage l r t0 outcome =
            outcome_attr sp outcome;
            record ?iters stage l r t0 outcome
          in
          let t0 = Obs.Clock.now () in
          match
            Robust.Budget.check budget;
            solve_unconstrained ~lambda:lam ~ridge problem
          with
          | exception Robust.Error.Error e ->
            record Robust.Report.Unconstrained lam ridge t0 (Error e);
            last_error := e;
            if not (Robust.Error.recoverable e) then aborted := true
          | exception Linalg.Singular _ ->
        let e =
          Robust.Error.Ill_conditioned
            { cond = Option.value condition ~default:Float.infinity }
        in
        record Robust.Report.Unconstrained lam ridge t0 (Error e);
        last_error := e
      | est ->
        if finite_estimate est then begin
          record ~iters:est.qp_iterations Robust.Report.Unconstrained lam ridge t0 (Ok ());
          result := Some (est, report Robust.Report.Unconstrained 2)
        end
        else begin
          let e = Robust.Error.Non_finite { stage = "unconstrained solution" } in
          record Robust.Report.Unconstrained lam ridge t0 (Error e);
          last_error := e
        end)
    end;
    (* Stage 3: Richardson–Lucy on the raw grid — positivity-preserving and
       factorization-free, the fallback of last resort. *)
    if !result = None && (not !aborted) && policy.enable_richardson_lucy then begin
      attempt_span "richardson_lucy" (fun sp ->
          Obs.Span.set_float sp "lambda" lambda;
          let record ?iters stage l r t0 outcome =
            outcome_attr sp outcome;
            record ?iters stage l r t0 outcome
          in
          let t0 = Obs.Clock.now () in
          let measurements =
            Array.map (fun g -> Float.max 0.0 g) problem.Problem.measurements
          in
          match
            Richardson_lucy.deconvolve ~on_iteration ~iterations:policy.rl_iterations
              problem.Problem.kernel ~measurements ()
          with
      | exception Robust.Error.Error e ->
        record Robust.Report.Richardson_lucy lambda 0.0 t0 (Error e);
        last_error := e
      (* lint: allow R2 — last cascade stage: any failure must become a typed
         error for the report; there is no later stage to re-raise to *)
      | exception _ ->
        let e = Robust.Error.Non_finite { stage = "Richardson-Lucy" } in
        record Robust.Report.Richardson_lucy lambda 0.0 t0 (Error e);
        last_error := e
      | rl ->
        let iters = rl.Richardson_lucy.iterations in
        let est = estimate_of_richardson_lucy problem lambda rl in
        if finite_estimate est then begin
          record ~iters Robust.Report.Richardson_lucy lambda 0.0 t0 (Ok ());
          result := Some (est, report Robust.Report.Richardson_lucy 3)
        end
        else begin
          let e = Robust.Error.Non_finite { stage = "Richardson-Lucy" } in
          record ~iters Robust.Report.Richardson_lucy lambda 0.0 t0 (Error e);
          last_error := e
        end)
    end;
    (match !result with
    | Some (est, rep) ->
      (* Per-solve quality record for the observatory. The statistics the
         cascade already owns (κ, RSS, constraint counts, attempt path)
         are passed through; edf and the residual tests are computed by
         Quality inside the Diag.enabled guard — with no sink this call
         is one branch. *)
      if Obs.Diag.enabled () then begin
        let cascade =
          String.concat ">"
            (List.map
               (fun (a : Robust.Report.attempt) ->
                 Robust.Report.stage_name a.Robust.Report.stage
                 ^ match a.Robust.Report.outcome with Ok () -> "" | Error _ -> "!")
               rep.Robust.Report.attempts)
        in
        Quality.emit_solve ~problem ~fitted:est.fitted ~lambda:est.lambda ~entry_lambda:lambda
          ~rss:est.data_misfit
          ~kappa:(Option.value condition ~default:Float.nan)
          ~degradation:rep.Robust.Report.degradation
          ~active_positivity:est.active_positivity ~qp_iterations:est.qp_iterations
          ~solved_by:(Robust.Report.stage_name rep.Robust.Report.solved_by)
          ~cascade ()
      end;
      Ok (est, rep)
    | None -> Error !last_error)

let solve_robust ?(policy = default_policy) ?budget ?(lambda = 1e-4) ?cache problem =
  Obs.Span.with_ "solver.solve_robust" (fun sp ->
      Obs.Span.set_float sp "lambda" lambda;
      let budget =
        match budget with Some b -> b | None -> Robust.Budget.unlimited ()
      in
      let result =
        if not (Float.is_finite lambda && lambda >= 0.0) then
          Error
            (Robust.Error.Invalid_input
               { field = "lambda"; why = Printf.sprintf "%g is not finite and >= 0" lambda })
        else solve_robust_validated ?cache ~policy ~budget ~lambda problem
      in
      (match result with
      | Ok (_, rep) ->
        Obs.Span.set_str sp "solved_by"
          (Robust.Report.stage_name rep.Robust.Report.solved_by);
        Obs.Span.set_int sp "degradation" rep.Robust.Report.degradation
      | Error e -> Obs.Span.set_str sp "outcome" (Robust.Error.to_string e));
      result)
