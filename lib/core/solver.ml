open Numerics

type estimate = {
  alpha : Vec.t;
  profile : Vec.t;
  fitted : Vec.t;
  lambda : float;
  cost : float;
  data_misfit : float;
  roughness : float;
  active_positivity : int;
  qp_iterations : int;
}

(* Quadratic form pieces of eq. 5:
   C(α) = (g − Aα)ᵀ W (g − Aα) + λ αᵀ Ω α
        = αᵀ(AᵀWA + λΩ)α − 2(AᵀWg)ᵀα + const,
   i.e. QP with H = 2(AᵀWA + λΩ), linear term −2AᵀWg. *)
let quadratic_pieces problem lambda =
  let a = Problem.design problem in
  let w = Problem.weights problem in
  let omega = Problem.penalty problem in
  let normal = Optimize.Ridge.normal_matrix ~a ~weights:w ~penalty:omega ~lambda in
  let h = Mat.scale 2.0 normal in
  let wg = Vec.mul w problem.Problem.measurements in
  let g_lin = Vec.scale (-2.0) (Mat.tmv a wg) in
  (a, w, omega, h, g_lin)

let equality_rows problem =
  let rows = ref [] in
  if problem.Problem.use_rate_continuity then
    rows := Constraints.rate_continuity_row problem.Problem.params problem.Problem.basis :: !rows;
  if problem.Problem.use_conservation then
    rows := Constraints.conservation_row problem.Problem.params problem.Problem.basis :: !rows;
  match !rows with
  | [] -> None
  | rows -> Some (Mat.of_rows (Array.of_list rows))

let finish problem lambda a w omega (alpha : Vec.t) iterations active =
  let fitted = Mat.mv a alpha in
  let residuals = Vec.sub problem.Problem.measurements fitted in
  let data_misfit =
    let acc = ref 0.0 in
    Array.iteri (fun i r -> acc := !acc +. (w.(i) *. r *. r)) residuals;
    !acc
  in
  let roughness = Vec.dot alpha (Mat.mv omega alpha) in
  let profile =
    Spline.Basis.combine_many problem.Problem.basis alpha
      problem.Problem.kernel.Cellpop.Kernel.phases
  in
  {
    alpha;
    profile;
    fitted;
    lambda;
    cost = data_misfit +. (lambda *. roughness);
    data_misfit;
    roughness;
    active_positivity = active;
    qp_iterations = iterations;
  }

let solve ?(lambda = 1e-4) problem =
  let a, w, omega, h, g_lin = quadratic_pieces problem lambda in
  let c_eq = equality_rows problem in
  let d_eq = Option.map (fun (c : Mat.t) -> Vec.zeros c.Mat.rows) c_eq in
  let a_ineq, b_ineq =
    if problem.Problem.use_positivity then begin
      let grid = problem.Problem.kernel.Cellpop.Kernel.phases in
      (* Include the interval endpoints: the conservation constraints act
         on f(0) and f(1), which lie outside the bin-center grid. *)
      let grid = Vec.concat [ [| 0.0 |]; grid; [| 1.0 |] ] in
      let rows = Constraints.positivity_rows problem.Problem.basis ~grid in
      (Some rows, Some (Vec.zeros rows.Mat.rows))
    end
    else (None, None)
  in
  let qp = { Optimize.Qp.h; g = g_lin; c_eq; d_eq; a_ineq; b_ineq } in
  let solution = Optimize.Qp.solve qp in
  finish problem lambda a w omega solution.Optimize.Qp.x solution.Optimize.Qp.iterations
    (List.length solution.Optimize.Qp.active)

let solve_unconstrained ?(lambda = 1e-4) problem =
  let a, w, omega, h, g_lin = quadratic_pieces problem lambda in
  let alpha = Optimize.Qp.unconstrained h g_lin in
  finish problem lambda a w omega alpha 0 0

let naive problem =
  (* λ chosen only to make the normal matrix invertible; relative to the
     data scale it is ~1e-12, so the fit is effectively unregularized. *)
  let scale = Float.max 1e-300 (Vec.norm_inf problem.Problem.measurements) in
  let lambda = 1e-12 *. scale *. scale in
  let a, w, omega, h, g_lin = quadratic_pieces problem lambda in
  let alpha = Optimize.Qp.unconstrained h g_lin in
  { (finish problem lambda a w omega alpha 0 0) with lambda = 0.0 }

let profile_on problem estimate grid =
  Spline.Basis.combine_many problem.Problem.basis estimate.alpha grid
