(** Measurement-noise models for the validation experiments (paper §4.1
    adds "several levels and types of noise" to the simulated population
    data). *)

open Numerics

type model =
  | No_noise
  | Gaussian_fraction of float
      (** zero-mean Gaussian with σ_m = fraction × |G(t_m)| — the paper's
          Fig. 3 uses fraction 0.10 *)
  | Gaussian_absolute of float  (** constant σ *)
  | Multiplicative_lognormal of float
      (** G·exp(σZ − σ²/2), mean-preserving multiplicative noise *)

val to_string : model -> string

val apply : model -> Rng.t -> Vec.t -> Vec.t * Vec.t
(** [apply model rng g] returns [(noisy, sigmas)]; [sigmas] are the
    per-measurement standard deviations to use as weights in the cost of
    paper eq. 5 (all-ones for [No_noise]). Sigmas are floored at a small
    positive value so weights stay finite where G ≈ 0. *)
