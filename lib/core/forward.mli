(** The forward model of paper eq. 3: G(t_m) = ∫ Q(φ, t_m) f(φ) dφ,
    discretized on the kernel's phase grid (midpoint rule). *)

open Numerics

val matrix_grid : Cellpop.Kernel.t -> Mat.t
(** (Nm × n_phi) matrix [A] with A(m,j) = Q(φ_j, t_m)·Δφ, so that
    [A f = G] for a profile sampled on the grid. Every row sums to ~1 (Q is
    a normalized density), so a constant profile passes through
    unchanged. *)

val matrix_basis : Cellpop.Kernel.t -> Spline.Basis.t -> Mat.t
(** (Nm × Nc) matrix [A·Ψ] mapping spline coefficients α directly to
    predicted measurements Ĝ (paper's Ĝ(t_m) = ∫Q(φ,t_m)f_α(φ)dφ). *)

val apply : Cellpop.Kernel.t -> Vec.t -> Vec.t
(** [apply kernel f] = G for a grid-sampled profile. *)

val apply_fn : Cellpop.Kernel.t -> (float -> float) -> Vec.t
(** Forward model of a profile given as a function of phase. *)
