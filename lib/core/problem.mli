(** A fully specified deconvolution problem: data, kernel, representation
    and which physical constraints to enforce. *)

open Numerics

type t = {
  kernel : Cellpop.Kernel.t;  (** Q(φ, t) on the measurement times *)
  basis : Spline.Basis.t;  (** representation of f (paper eq. 4) *)
  measurements : Vec.t;  (** G(t_m) *)
  sigmas : Vec.t;  (** per-measurement standard deviations σ_m *)
  params : Cellpop.Params.t;  (** population model behind the constraints *)
  use_positivity : bool;
  use_conservation : bool;
  use_rate_continuity : bool;
  design : Mat.t;
      (** forward matrix A·Ψ, assembled once by {!create} — prefer the
          {!design} accessor *)
  penalty : Mat.t;
      (** roughness penalty Ω, assembled once by {!create} — prefer the
          {!penalty} accessor *)
}

val create :
  ?use_positivity:bool ->
  ?use_conservation:bool ->
  ?use_rate_continuity:bool ->
  ?sigmas:Vec.t ->
  kernel:Cellpop.Kernel.t ->
  basis:Spline.Basis.t ->
  measurements:Vec.t ->
  params:Cellpop.Params.t ->
  unit ->
  t
(** All constraints default to on (the paper's full method); [sigmas]
    default to all-ones (unweighted fit). Dimension compatibility is
    checked; a mismatch raises {!Robust.Error.Error} ([Invalid_input]),
    keeping the typed-error contract from the very first entry point. *)

val num_measurements : t -> int

val validate : t -> (unit, Robust.Error.t) result
(** Pre-solve validation: kernel well-formed (finite Q, sorted non-negative
    times, every row of mass ≈ 1), measurements finite, sigmas finite and
    strictly positive. Turns what used to be deep-in-the-stack crashes or
    silent NaN propagation into an early structured error; the robust
    solver calls this (after input repair) before touching the QP. *)

val weights : t -> Vec.t
(** 1/σ_m² — the weights of the data-fidelity term in eq. 5. *)

val design : t -> Mat.t
(** Forward matrix A·Ψ from coefficients to predicted measurements.
    Precomputed by {!create}: every λ candidate, fold and bootstrap
    replicate reads the same assembly instead of re-integrating the
    kernel against the basis. *)

val penalty : t -> Mat.t
(** Roughness penalty Ω for the basis. Precomputed by {!create}. *)
