(** Model-adequacy diagnostics for a fitted deconvolution: does the
    estimate actually explain the data at the stated noise level? (The
    question a practitioner must answer before trusting f̂ — mis-specified
    kernels and underestimated σ both show up here.) *)

open Numerics

type report = {
  standardized_residuals : Vec.t;  (** (g − ĝ)/σ per measurement *)
  chi2 : float;  (** Σ standardized residual² *)
  dof : float;  (** measurements − effective dof of the smoother *)
  p_value : float;
      (** lack-of-fit p-value: small (< 0.05) means the model does NOT
          explain the data at the stated noise level *)
  lag1_autocorrelation : float;
      (** of the standardized residuals; large |value| indicates structure
          the fit missed (e.g. a mis-specified kernel) *)
  runs_z : float;
      (** Wald–Wolfowitz runs-test z-score on residual signs; |z| > 2
          flags non-random residual patterns *)
}

val analyze : Problem.t -> Solver.estimate -> report
(** Effective dof of the smoother is recomputed from the unconstrained
    ridge fit at the estimate's λ (constraints change it only slightly). *)

val adequate : ?alpha:float -> report -> bool
(** True when the lack-of-fit p-value exceeds [alpha] (default 0.05) and
    the runs test does not reject (|z| <= 2.5). *)

val to_string : report -> string
