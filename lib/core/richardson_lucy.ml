open Numerics

type result = {
  profile : Vec.t;
  fitted : Vec.t;
  iterations : int;
  misfit_history : Vec.t;
}

let deconvolve ?on_iteration ?(iterations = 100) ?initial ?(min_value = 1e-12) kernel
    ~measurements () =
  assert (iterations >= 1);
  Obs.Span.with_ "rl.deconvolve" (fun sp ->
      let a = Forward.matrix_grid kernel in
      let n_m, n_phi = Mat.dims a in
      assert (Array.length measurements = n_m);
      let g = Array.map (fun v -> Float.max 0.0 v) measurements in
      let f =
        match initial with
        | Some f0 ->
          assert (Array.length f0 = n_phi);
          Array.map (fun v -> Float.max min_value v) f0
        | None -> Array.make n_phi (Float.max min_value (Vec.mean g))
      in
      (* Column sums of A (the RL normalization Aᵀ1). *)
      let column_sums = Mat.tmv a (Vec.ones n_m) in
      let misfits = Array.make iterations 0.0 in
      let f = ref f in
      for k = 0 to iterations - 1 do
        (match on_iteration with Some hook -> hook (k + 1) | None -> ());
        let previous = !f in
        let predicted = Mat.mv a !f in
        let ratios =
          Array.init n_m (fun m -> g.(m) /. Float.max min_value predicted.(m))
        in
        let correction = Mat.tmv a ratios in
        f :=
          Array.init n_phi (fun j ->
              let c =
                if column_sums.(j) > min_value then correction.(j) /. column_sums.(j) else 1.0
              in
              Float.max min_value (!f.(j) *. c));
        let predicted = Mat.mv a !f in
        misfits.(k) <- Stats.rmse g predicted;
        if Obs.Span.enabled () then begin
          (* Relative sup-norm change of the profile this multiplicative
             update made — the natural RL convergence measure. *)
          let rel_change =
            Vec.norm_inf (Vec.sub !f previous)
            /. Float.max min_value (Vec.norm_inf previous)
          in
          Obs.Span.point sp "rl.iteration" ~iter:(k + 1)
            [ ("rel_change", rel_change); ("misfit", misfits.(k)) ]
        end
      done;
      Obs.Span.set_int sp "iterations" iterations;
      Obs.Span.set_int sp "n_phi" n_phi;
      Obs.Span.set_float sp "final_misfit" misfits.(iterations - 1);
      Obs.Metrics.incr "rl.deconvolutions";
      Obs.Metrics.observe "rl.final_misfit" misfits.(iterations - 1);
      if Obs.Diag.enabled () then
        Obs.Diag.emit
          (Obs.Diag.make ~stage:"rl"
             ~values:
               [
                 ("iterations", float_of_int iterations);
                 ("final_misfit", misfits.(iterations - 1));
               ]
             ());
      { profile = !f; fitted = Mat.mv a !f; iterations; misfit_history = misfits })
