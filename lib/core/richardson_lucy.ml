open Numerics

type result = {
  profile : Vec.t;
  fitted : Vec.t;
  iterations : int;
  misfit_history : Vec.t;
}

let deconvolve ?(iterations = 100) ?initial ?(min_value = 1e-12) kernel ~measurements () =
  assert (iterations >= 1);
  let a = Forward.matrix_grid kernel in
  let n_m, n_phi = Mat.dims a in
  assert (Array.length measurements = n_m);
  let g = Array.map (fun v -> Float.max 0.0 v) measurements in
  let f =
    match initial with
    | Some f0 ->
      assert (Array.length f0 = n_phi);
      Array.map (fun v -> Float.max min_value v) f0
    | None -> Array.make n_phi (Float.max min_value (Vec.mean g))
  in
  (* Column sums of A (the RL normalization Aᵀ1). *)
  let column_sums = Mat.tmv a (Vec.ones n_m) in
  let misfits = Array.make iterations 0.0 in
  let f = ref f in
  for k = 0 to iterations - 1 do
    let predicted = Mat.mv a !f in
    let ratios =
      Array.init n_m (fun m -> g.(m) /. Float.max min_value predicted.(m))
    in
    let correction = Mat.tmv a ratios in
    f :=
      Array.init n_phi (fun j ->
          let c = if column_sums.(j) > min_value then correction.(j) /. column_sums.(j) else 1.0 in
          Float.max min_value (!f.(j) *. c));
    let predicted = Mat.mv a !f in
    misfits.(k) <- Stats.rmse g predicted
  done;
  { profile = !f; fitted = Mat.mv a !f; iterations; misfit_history = misfits }
