(** Batch deconvolution of many genes sharing one population kernel — the
    regime of a real microarray study (thousands of genes, one asynchrony
    model). Kernel-, basis- and constraint-dependent quantities are
    assembled once and reused across genes. *)

open Numerics

type t
(** Prepared context: forward matrix, penalty, constraint rows. *)

val prepare :
  ?use_positivity:bool ->
  ?use_conservation:bool ->
  ?use_rate_continuity:bool ->
  kernel:Cellpop.Kernel.t ->
  basis:Spline.Basis.t ->
  params:Cellpop.Params.t ->
  unit ->
  t

val solve_gene :
  t ->
  ?sigmas:Vec.t ->
  ?lambda:[ `Fixed of float | `Gcv ] ->
  measurements:Vec.t ->
  unit ->
  Solver.estimate
(** Deconvolve one gene ([`Gcv] is the default λ policy). *)

val solve_all :
  t ->
  ?sigmas:Mat.t ->
  ?lambda:[ `Fixed of float | `Gcv ] ->
  measurements:Mat.t ->
  unit ->
  Solver.estimate array
(** Rows of [measurements] (and [sigmas]) are genes. *)

val phases : t -> Vec.t

val peak_phase : t -> Solver.estimate -> float
(** Phase of the maximum of the estimated profile. *)

val classify_by_peak : t -> Solver.estimate array -> boundaries:Vec.t -> int array
(** Assign each gene the index of the phase window its peak falls into;
    [boundaries] are the (sorted) right edges of all but the last window. *)
