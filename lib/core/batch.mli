(** Batch deconvolution of many genes sharing one population kernel — the
    regime of a real microarray study (thousands of genes, one asynchrony
    model). Kernel-, basis- and constraint-dependent quantities are
    assembled once and reused across genes. *)

open Numerics

type t
(** Prepared context: forward matrix, penalty, constraint rows. *)

val prepare :
  ?use_positivity:bool ->
  ?use_conservation:bool ->
  ?use_rate_continuity:bool ->
  kernel:Cellpop.Kernel.t ->
  basis:Spline.Basis.t ->
  params:Cellpop.Params.t ->
  unit ->
  t

val solve_gene :
  t ->
  ?sigmas:Vec.t ->
  ?lambda:[ `Fixed of float | `Gcv ] ->
  ?cache:Optimize.Spectral.Cache.t ->
  measurements:Vec.t ->
  unit ->
  Solver.estimate
(** Deconvolve one gene ([`Gcv] is the default λ policy). [cache] shares
    the spectral factorization of the penalized system across genes — the
    λ sweep and the QP warm start both read from it (see
    {!Optimize.Spectral}). *)

val solve_all :
  t ->
  ?sigmas:Mat.t ->
  ?lambda:[ `Fixed of float | `Gcv ] ->
  measurements:Mat.t ->
  unit ->
  Solver.estimate array
(** Rows of [measurements] (and [sigmas]) are genes. Implemented over
    {!solve_all_result}: on any per-gene failure, raises
    {!Robust.Error.Error} for the failing gene of {e lowest index}
    (deterministic, unlike the old first-exception-wins cancellation). *)

(** {1 Fault-isolated batch} *)

val solve_gene_result :
  t ->
  ?sigmas:Vec.t ->
  ?lambda:[ `Fixed of float | `Gcv ] ->
  ?budget:Robust.Budget.t ->
  ?cache:Optimize.Spectral.Cache.t ->
  measurements:Vec.t ->
  unit ->
  (Solver.estimate, Robust.Error.t) result
(** Total per-gene solve: validates the problem, selects λ, solves, and
    checks finiteness — any failure (including an arbitrary exception,
    via {!Robust.Error.of_exn}) becomes a typed [Error] instead of a
    raise. On a clean gene the estimate is bit-for-bit identical to
    {!solve_gene}'s (given the same [cache] policy — {!solve_all_result}
    always passes one, shared by the whole batch). *)

(** Aggregate report of a fault-isolated batch. *)
module Outcome : sig
  type t = {
    outcomes : (Solver.estimate, Robust.Error.t) result array;
        (** per gene, in row order *)
    replayed : int;  (** genes restored from the checkpoint journal *)
    quality : (string * Quality.quantiles) list;
        (** per-gene quality quantiles (rss, lambda, qp_iterations,
            active_positivity, runs_z) over the successful solves; render
            with {!Quality.output_quantiles}. Empty when no gene
            succeeded. *)
  }

  val total : t -> int
  val ok_count : t -> int
  val failed_count : t -> int
  val fully_ok : t -> bool

  val failures : t -> (int * Robust.Error.t) list
  (** Failing genes in ascending index order. *)

  val class_counts : t -> (string * int) list
  (** Failure counts per {!Robust.Error.class_name}, sorted by class. *)

  val estimates : t -> Solver.estimate array
  (** All estimates; raises {!Robust.Error.Error} for the lowest-index
      failure if any gene failed. *)
end

val gene_key :
  t ->
  ?sigmas:Vec.t ->
  lambda:[ `Fixed of float | `Gcv ] ->
  measurements:Vec.t ->
  unit ->
  string
(** The checkpoint content key for one gene: an FNV-1a 64 hash over the
    kernel (phases, times, Q), basis, population parameters, constraint
    flags, λ policy and the gene's data — everything that determines the
    solve's result. *)

val solve_all_result :
  t ->
  ?sigmas:Mat.t ->
  ?lambda:[ `Fixed of float | `Gcv ] ->
  ?max_seconds:float ->
  ?max_iterations:int ->
  ?journal:Checkpoint.t ->
  ?block:int ->
  ?on_block:(done_:int -> total:int -> unit) ->
  ?progress:Obs.Progress.t ->
  measurements:Mat.t ->
  unit ->
  Outcome.t
(** Survivable batch: every gene is attempted (fault isolation via
    {!Parallel.parallel_map_result}), failures are contained as typed
    outcomes, and per-class counts are published to {!Obs.Metrics}
    ([batch.genes_ok], [batch.genes_failed], [batch.genes_replayed],
    [batch.failures.<class>]).

    [max_seconds]/[max_iterations] cap each gene's solve with a fresh
    {!Robust.Budget} (omitted = unlimited; no budget object is created
    then, so results are bit-identical to the uncapped path).

    [journal] enables checkpointing: genes whose [(index, key)] already
    appear in the journal are replayed verbatim (bit-for-bit, thanks to
    hex-float serialization) and the rest are solved in blocks of
    [block] genes (default 64), with one atomic, fsync'd journal flush
    per block. [on_block ~done_ ~total] fires after each flush — the
    chaos harness's mid-batch crash hook; an exception it raises
    propagates (it is deliberately {e not} isolated).

    [progress] receives one {!Obs.Progress.record} per solved gene (with
    its failure class) as completions land on worker domains, plus one
    {!Obs.Progress.record_replayed} for journal replays up front — the
    live [--progress] feed. Aggregation only; results are unaffected. *)

val phases : t -> Vec.t

val peak_phase : t -> Solver.estimate -> float
(** Phase of the maximum of the estimated profile. *)

val classify_by_peak : t -> Solver.estimate array -> boundaries:Vec.t -> int array
(** Assign each gene the index of the phase window its peak falls into;
    [boundaries] are the (sorted) right edges of all but the last window. *)
