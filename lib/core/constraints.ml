open Numerics

(* p(φ_sst) is tightly concentrated (σ ≈ 0.02 around 0.15). Integrating
   only over its ±10σ support window (clipped inside (0,1)) both resolves
   the peak sharply and keeps integrands such as β(φ) = 0.4/(1−φ) — which
   blows up at φ = 1 where p is already zero — finite. *)
let quadrature_panels = 2000

let density_integral (params : Cellpop.Params.t) h =
  let mu = params.Cellpop.Params.mu_sst in
  let sigma = Cellpop.Params.sst_std params in
  let a = Float.max 0.0 (mu -. (10.0 *. sigma)) in
  let b = Float.min (1.0 -. 1e-9) (mu +. (10.0 *. sigma)) in
  assert (b > a);
  Integrate.simpson
    (fun phi -> h phi *. Cellpop.Params.sst_density params phi)
    ~a ~b ~n:quadrature_panels

(* Relative growth rate of the stalked segment: the (1 − st) = 0.4 of the
   final volume still to be grown, spread over the remaining phase. *)
let beta phi = (1.0 -. Cellpop.Params.st_volume_fraction) /. (1.0 -. phi)

let beta0 params = density_integral params beta

let conservation_row params (basis : Spline.Basis.t) =
  let sw = Cellpop.Params.sw_volume_fraction in
  let st = Cellpop.Params.st_volume_fraction in
  Array.init basis.Spline.Basis.size (fun i ->
      let psi = basis.Spline.Basis.eval i in
      psi 1.0 -. (sw *. psi 0.0) -. (st *. density_integral params psi))

let rate_continuity_row params (basis : Spline.Basis.t) =
  let sw = Cellpop.Params.sw_volume_fraction in
  let st = Cellpop.Params.st_volume_fraction in
  let b0 = beta0 params in
  Array.init basis.Spline.Basis.size (fun i ->
      let psi = basis.Spline.Basis.eval i in
      let psi' = basis.Spline.Basis.deriv i in
      (b0 *. psi 1.0) -. (b0 *. psi 0.0)
      -. density_integral params (fun phi -> beta phi *. psi phi)
      -. (sw *. psi' 0.0)
      -. (st *. density_integral params psi')
      +. psi' 1.0)

let positivity_rows basis ~grid = Spline.Basis.design basis grid

let residual_conservation params basis alpha =
  Vec.dot (conservation_row params basis) alpha

let residual_rate_continuity params basis alpha =
  Vec.dot (rate_continuity_row params basis) alpha
