(** Solution-quality statistics and the diagnose report card.

    This module (with {!Numerics.Stats} and {!Diagnostics}) is where
    quality statistics — condition number κ of the penalized normal
    matrix, effective degrees of freedom, residual whiteness/normality
    tests — are {e computed}; they leave the library only as
    [Obs.Diag] events on the trace stream (lint rule R14). The CLI's
    [diagnose] subcommand turns the stream back into per-solve report
    cards here, and [batch] aggregates per-gene statistics into
    quantiles. *)

open Numerics

(** {1 Statistics} *)

val edf : Problem.t -> lambda:float -> float
(** Effective degrees of freedom tr(H) of the unconstrained smoother at
    λ, via {!Optimize.Ridge.solve}; NaN when the normal matrix is
    singular. An O(solve) computation — hoist behind {!Obs.Diag.enabled}
    on hot paths. *)

val kappa : Problem.t -> lambda:float -> float
(** Spectral condition number κ of [AᵀWA + λΩ]; NaN when singular. *)

val residual_stats : Problem.t -> fitted:Vec.t -> (string * float) list
(** [("runs_z", z); ("normality_z", z)] on the standardized residuals
    (g − ĝ)/σ — the whiteness and noise-model moment checks. *)

val emit_solve :
  ?solve:string ->
  problem:Problem.t ->
  fitted:Vec.t ->
  lambda:float ->
  entry_lambda:float ->
  rss:float ->
  kappa:float ->
  degradation:int ->
  active_positivity:int ->
  qp_iterations:int ->
  solved_by:string ->
  cascade:string ->
  unit ->
  unit
(** Build and emit the per-solve ["solve"]-stage diag record. All
    statistics not passed in (edf, residual tests) are computed here,
    inside the {!Obs.Diag.enabled} guard — with no sink installed the
    whole call costs one branch. *)

(** {1 Report cards} *)

type thresholds = {
  kappa_limit : float;  (** flag κ above this (solver's condition_limit) *)
  edf_fraction : float;
      (** flag edf above this fraction of n: the fit is near-interpolating *)
  whiteness_limit : float;  (** flag |runs z| above this *)
  normality_limit : float;  (** flag |normality z| above this *)
}

val default_thresholds : thresholds

type card = {
  solve : string;
  kappa : float;
  lambda : float;
  entry_lambda : float;
  edf : float;
  rss : float;
  runs_z : float;
  normality_z : float;
  n : float;
  active_positivity : float;
  qp_iterations : float;
  degradation : float;
  solved_by : string;
  cascade : string;
  selector : string;  (** λ-selection method, from the ["lambda"] diag *)
  curve : (float * float) array;  (** λ-candidate profile, ditto *)
  flags : string list;  (** empty = healthy *)
}

val cards : ?thresholds:thresholds -> Obs.Export.event list -> card list
(** One card per solve id carrying a ["solve"]-stage diag record, in
    first-seen order; the ["lambda"] record of the same solve contributes
    the selector and candidate profile. Statistics absent from the stream
    read as NaN. *)

val healthy : card -> bool

val verdict : card -> string
(** ["healthy"] or the comma-joined flag list. *)

val output_card : ?thresholds:thresholds -> ?plot:bool -> out_channel -> card -> unit
(** Render one report card; [plot] (default true) draws the λ-profile as
    an {!Dataio.Ascii_plot} curve when the card carries ≥ 2 finite
    candidate points. *)

val output_report : ?thresholds:thresholds -> ?plot:bool -> out_channel -> card list -> unit
(** All cards plus a flagged-solve count footer. *)

val report_json : card list -> string
(** The machine-readable form: [{"solves":[{...}]}] with exact float
    round-trip. *)

(** {1 Batch aggregation} *)

type quantiles = { q50 : float; q90 : float; q_max : float; count : int }

val summarize : (string * float) list list -> (string * quantiles) list
(** Per-statistic quantiles over many solves' stat lists (one list per
    gene); non-finite values are dropped. Keys appear in first-seen
    order. *)

val output_quantiles : out_channel -> (string * quantiles) list -> unit
