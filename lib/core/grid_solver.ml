open Numerics

type estimate = {
  profile : Vec.t;
  fitted : Vec.t;
  lambda : float;
  data_misfit : float;
  roughness : float;
}

(* Row i approximates f''(phi_{i+1}) = (f_i - 2 f_{i+1} + f_{i+2}) / h²;
   scaling rows by sqrt(h) makes ||D f||² approximate the integral ∫f''². *)
let second_difference n ~bin_width =
  assert (n >= 3);
  let h = bin_width in
  let scale = sqrt h /. (h *. h) in
  Mat.init (n - 2) n (fun i j ->
      if j = i then scale
      else if j = i + 1 then -2.0 *. scale
      else if j = i + 2 then scale
      else 0.0)

let solve ?(lambda = 1e-4) ?(use_positivity = true) kernel ~measurements ?sigmas () =
  assert (lambda >= 0.0);
  let a = Forward.matrix_grid kernel in
  let n_m, n_phi = Mat.dims a in
  assert (Array.length measurements = n_m);
  let weights =
    match sigmas with
    | Some s ->
      assert (Array.length s = n_m);
      Array.map (fun x -> 1.0 /. (x *. x)) s
    | None -> Vec.ones n_m
  in
  let d2 = second_difference n_phi ~bin_width:kernel.Cellpop.Kernel.bin_width in
  let penalty = Mat.gram d2 in
  let normal = Optimize.Ridge.normal_matrix ~a ~weights ~penalty ~lambda in
  let h = Mat.scale 2.0 normal in
  let g_lin = Vec.scale (-2.0) (Mat.tmv a (Vec.mul weights measurements)) in
  let profile =
    if use_positivity then begin
      let solution =
        Optimize.Qp.solve
          { Optimize.Qp.h; g = g_lin; c_eq = None; d_eq = None;
            a_ineq = Some (Mat.identity n_phi); b_ineq = Some (Vec.zeros n_phi) }
      in
      solution.Optimize.Qp.x
    end
    else Optimize.Qp.unconstrained h g_lin
  in
  let fitted = Mat.mv a profile in
  let residuals = Vec.sub measurements fitted in
  let data_misfit =
    let acc = ref 0.0 in
    Array.iteri (fun i r -> acc := !acc +. (weights.(i) *. r *. r)) residuals;
    !acc
  in
  let rough = Mat.mv d2 profile in
  { profile; fitted; lambda; data_misfit; roughness = Vec.dot rough rough }
