(** Measurement-schedule design: when should the population be sampled so
    that deconvolution is best conditioned?

    Because each kernel row Q(·, t) depends only on its own time, a kernel
    estimated once on a fine candidate grid provides the forward row for
    every candidate schedule; schedules are then just row subsets, and a
    greedy D-optimal selection is cheap. *)

open Numerics

type candidate = {
  kernel : Cellpop.Kernel.t;  (** kernel on the full candidate time grid *)
  design : Mat.t;  (** forward matrix (rows = candidate times) in basis space *)
}

val candidates :
  Cellpop.Params.t ->
  rng:Rng.t ->
  n_cells:int ->
  times:Vec.t ->
  n_phi:int ->
  basis:Spline.Basis.t ->
  candidate

val log_det_information : Mat.t -> rows:int list -> ridge:float -> float
(** log det(A_Sᵀ A_S + ridge·I) for the row subset S — the D-optimality
    score of a schedule. *)

val greedy :
  ?ridge:float ->
  candidate ->
  budget:int ->
  int list
(** Greedily add the candidate row with the largest D-optimality gain until
    [budget] rows are chosen. Returns sorted candidate indices. *)

val times_of : candidate -> int list -> Vec.t
