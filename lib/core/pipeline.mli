(** End-to-end validation pipeline (paper §4.1): take a known single-cell
    profile f(φ), push it through the forward model to simulated
    population-level data, add noise, deconvolve, and compare the estimate
    with the truth. *)

open Numerics

type forward_mode =
  | Same_kernel
      (** generate the data with the very kernel used for inversion — an
          'inverse crime' setting, useful for exact-recovery unit tests *)
  | Independent_kernel
      (** generate the data with an independently simulated kernel (fresh
          Monte-Carlo randomness) *)
  | Monte_carlo
      (** generate the data as the volume-weighted single-cell average over
          an independent population — the most faithful forward model; the
          default *)

type selection = [ `Gcv | `Kfold of int | `Lcurve | `Fixed of float ]

type config = {
  data_params : Cellpop.Params.t;  (** population model generating the data *)
  inversion_params : Cellpop.Params.t option;
      (** model assumed by the deconvolution (kernel + constraints);
          defaults to [data_params]. Setting these apart drives the
          volume-model ablation (E6). *)
  n_cells_kernel : int;
  n_cells_data : int;
  n_phi : int;
  kernel_smooth_window : int;
  times : Vec.t;  (** measurement times, minutes *)
  num_knots : int;  (** natural-spline knots (basis size) *)
  noise : Noise.model;
  selection : selection;
  use_positivity : bool;
  use_conservation : bool;
  use_rate_continuity : bool;
  forward_mode : forward_mode;
  seed : int;
  measurement_fault : Vec.t Robust.Fault.t option;
      (** optional fault injected into the noisy measurements before the
          inversion — the end-to-end robustness test hook *)
  solver_policy : Solver.policy;  (** degradation-cascade policy *)
}

val default_config : times:Vec.t -> config
(** Paper-2011 population parameters, 4000-cell kernel, 201 phase bins,
    12 knots, no noise, GCV selection, all constraints on, Monte-Carlo
    forward, seed 1. *)

type run = {
  config : config;
  kernel : Cellpop.Kernel.t;
  phases : Vec.t;
  truth : Vec.t;  (** f on the phase grid *)
  clean : Vec.t;  (** noiseless population signal G(t_m) *)
  noisy : Vec.t;  (** measured data after noise *)
  sigmas : Vec.t;
  problem : Problem.t;
  lambda : float;
  estimate : Solver.estimate;
  report : Robust.Report.t;  (** what the cascade did to produce [estimate] *)
  recovery : Metrics.comparison;
}

val run : config -> profile:(float -> float) -> run
(** The inversion routes through {!Solver.solve_robust}: λ selection runs
    on a repaired copy of the problem (falling back to λ = 1e-4 when every
    candidate is non-finite) and the degradation cascade handles faulty
    data. Raises {!Robust.Error.Error} only when even the cascade's last
    fallback cannot produce a finite estimate. *)

val population_vs_phase : run -> Vec.t * Vec.t
(** [(minutes, values)] of the measured population signal (for plotting
    against the single-cell series). *)

val deconvolved_vs_minutes : run -> Vec.t * Vec.t
(** The deconvolved profile with phase scaled to minutes by the mean cycle
    time (the paper's Fig. 5 'simulated time'). *)
