(** Data-driven selection of the smoothing parameter λ of paper eq. 5
    ("λ ... may be selected via cross validation", citing Craven–Wahba).

    All selectors run on a spectral fast path by default: one
    Demmler–Reinsch factorization of the penalized system
    ({!Optimize.Spectral}) turns every λ candidate's misfit, roughness and
    edf into O(n) diagonal operations, so a k-candidate sweep costs about
    one factorization instead of k Cholesky solves. When the factorization
    fails ({!Numerics.Linalg.Singular} even with the anchored Gram side)
    the selectors transparently fall back to the direct per-candidate
    path; the two paths agree to rounding (the equivalence tests pin
    ≤1e-8). Pass [cache] to reuse factorizations across solves that share
    a kernel (batch genes, bootstrap replicates). *)

open Numerics

type curve_point = { lambda : float; score : float }

val gcv :
  ?cache:Optimize.Spectral.Cache.t -> Problem.t -> lambdas:Vec.t -> float * curve_point array
(** Robust generalized cross-validation on the unconstrained smoothing
    problem: score(λ) = N·RSS_w / (N − γ·edf)² with γ = 1.4 (Cummins,
    Filloon & Nychka). Plain GCV (γ = 1) occasionally collapses to a
    near-interpolating λ when N is as small as a typical expression time
    course; the γ-correction removes that failure mode. Returns the winning
    λ and the full curve. *)

val kfold :
  Problem.t -> rng:Rng.t -> k:int -> lambdas:Vec.t -> float * curve_point array
(** k-fold cross-validation: each fold refits on the remaining measurements
    (unconstrained, for speed and because constraints are
    data-independent) and scores weighted squared error on the held-out
    measurements. On the fast path each fold's training subsystem is
    factored exactly once (anchored — training Gram matrices are smaller
    than the basis and hence rank-deficient) and reused by every
    candidate. The fold assignment is derived identically on both paths,
    so a fallback changes the arithmetic route, not the folds. *)

val lcurve :
  ?cache:Optimize.Spectral.Cache.t -> Problem.t -> lambdas:Vec.t -> float * curve_point array
(** L-curve selection: pick the λ of maximum curvature of the parametric
    curve (log misfit, log roughness) over the grid (Hansen's criterion).
    The returned curve's [score] field carries the (negated) discrete
    curvature so that lower-is-better matches the other selectors.

    Provided for completeness and comparison: on this problem the L-curve
    is typically gently curved with no sharp corner (the known
    smooth-solution failure mode, Hanke 1996) and tends to undersmooth —
    the `ext_lambda_selection` bench quantifies this. Robust GCV is the
    recommended default. *)

val select_with_curve :
  Problem.t ->
  method_:[ `Gcv | `Kfold of int | `Lcurve | `Fixed of float ] ->
  ?rng:Rng.t ->
  ?lambdas:Vec.t ->
  ?cache:Optimize.Spectral.Cache.t ->
  unit ->
  float * curve_point array
(** As {!select}, also returning the full candidate profile the selector
    scored ([[||]] for [`Fixed]) so callers need not re-run the sweep to
    plot it. When a trace sink is installed the profile is additionally
    emitted as a ["lambda"]-stage {!Obs.Diag} event. *)

val select :
  Problem.t ->
  method_:[ `Gcv | `Kfold of int | `Lcurve | `Fixed of float ] ->
  ?rng:Rng.t ->
  ?lambdas:Vec.t ->
  ?cache:Optimize.Spectral.Cache.t ->
  unit ->
  float
(** Unified entry point; the default grid is 25 points, logarithmic in
    [1e-7, 1e2].

    All selectors are guarded against non-finite candidates: NaN/Inf λ grid
    points and candidates whose cost comes out NaN/Inf (or whose fit raises
    {!Linalg.Singular}) are skipped rather than allowed to win the argmin.
    When {e every} candidate is non-finite the selection raises
    {!Robust.Error.Error} with [Non_finite {stage = "lambda selection ..."}]
    — use {!select_result} for the non-raising form. *)

val select_result :
  Problem.t ->
  method_:[ `Gcv | `Kfold of int | `Lcurve | `Fixed of float ] ->
  ?rng:Rng.t ->
  ?lambdas:Vec.t ->
  ?cache:Optimize.Spectral.Cache.t ->
  unit ->
  (float, Robust.Error.t) result
(** As {!select}, returning the typed error instead of raising. *)

val select_with_curve_result :
  Problem.t ->
  method_:[ `Gcv | `Kfold of int | `Lcurve | `Fixed of float ] ->
  ?rng:Rng.t ->
  ?lambdas:Vec.t ->
  ?cache:Optimize.Spectral.Cache.t ->
  unit ->
  (float * curve_point array, Robust.Error.t) result
(** As {!select_with_curve}, returning the typed error instead of
    raising. *)
