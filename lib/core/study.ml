open Numerics

let random_profile rng =
  let n_pulses = 1 + Rng.int rng 3 in
  let baseline = Rng.uniform rng ~lo:0.1 ~hi:1.0 in
  let pulses =
    List.init n_pulses (fun _ ->
        let center = Rng.uniform rng ~lo:0.1 ~hi:0.9 in
        let width = Rng.uniform rng ~lo:0.06 ~hi:0.2 in
        let height = Rng.uniform rng ~lo:1.0 ~hi:6.0 in
        (center, width, height))
  in
  fun phi ->
    List.fold_left
      (fun acc (center, width, height) ->
        let z = (phi -. center) /. width in
        acc +. (height *. exp (-0.5 *. z *. z)))
      baseline pulses

type summary = {
  runs : int;
  median_rmse : float;
  iqr_rmse : float * float;
  median_correlation : float;
  worst_correlation : float;
  fraction_above_09 : float;
}

let recovery_distribution ?(runs = 20) (config : Pipeline.config) ~rng =
  assert (runs >= 1);
  Array.init runs (fun i ->
      let profile = random_profile rng in
      let config_i = { config with Pipeline.seed = config.Pipeline.seed + (1000 * (i + 1)) } in
      let run = Pipeline.run config_i ~profile in
      run.Pipeline.recovery)

let summarize comparisons =
  let runs = Array.length comparisons in
  assert (runs >= 1);
  let rmses = Array.map (fun c -> c.Metrics.rmse) comparisons in
  let correlations = Array.map (fun c -> c.Metrics.correlation) comparisons in
  let above =
    Array.fold_left (fun acc c -> if c > 0.9 then acc + 1 else acc) 0 correlations
  in
  {
    runs;
    median_rmse = Stats.median rmses;
    iqr_rmse = (Stats.quantile rmses 0.25, Stats.quantile rmses 0.75);
    median_correlation = Stats.median correlations;
    worst_correlation = Vec.min correlations;
    fraction_above_09 = float_of_int above /. float_of_int runs;
  }

let to_string s =
  let q25, q75 = s.iqr_rmse in
  Printf.sprintf
    "%d runs: rmse median %.4g (IQR %.4g-%.4g), corr median %.4f, worst %.4f, %.0f%% runs > 0.9"
    s.runs s.median_rmse q25 q75 s.median_correlation s.worst_correlation
    (100.0 *. s.fraction_above_09)
