(** A hand-rolled domain pool for the deconvolution pipeline's
    embarrassingly parallel layers (Monte Carlo population simulation,
    λ candidate sweeps, bootstrap/batch fan-out).

    {b Determinism contract.} The pool never makes scheduling visible to
    the caller: [parallel_for] partitions [0 .. n-1] into contiguous
    chunks whose boundaries depend only on [n] and [chunk] — never on the
    number of domains — and [parallel_map] writes each result into its own
    slot. A caller that derives one [Rng.split] substream per chunk (in
    ascending chunk order, before dispatch) therefore produces bit-for-bit
    identical results for every jobs setting, including [--jobs 1], which
    runs the same chunk schedule inline without spawning anything.

    {b Nesting.} A [parallel_for]/[parallel_map] issued while the same
    pool is already executing a job (from a worker domain, or reentrantly
    from the submitting domain) falls back to running its chunks inline,
    sequentially — no deadlock, same results.

    {b Exceptions.} The first exception raised by any chunk cancels the
    job's unclaimed chunks, is captured with its backtrace, and is
    re-raised in the submitting domain once in-flight chunks have
    drained. The pool stays healthy and reusable afterwards. *)

(** Injected chunk telemetry. This library is zero-dependency (and rule
    R7 keeps raw clocks out of it), so it cannot time its own chunks;
    instead the CLI installs a probe built from [Obs.Clock] /
    [Obs.Export] when tracing is on, and every executed chunk — pooled
    or inline — is bracketed with [now] readings and reported through
    [record]. With no probe installed a chunk costs one extra
    load+branch. [install]/[uninstall] must happen while no job is in
    flight; the callbacks run on worker domains concurrently and must be
    domain-safe and non-raising (a raise here is indistinguishable from
    a chunk failure). *)
module Probe : sig
  type t = {
    now : unit -> float;
    record : domain:int -> lo:int -> hi:int -> start_s:float -> stop_s:float -> unit;
  }

  val install : t -> unit
  val uninstall : unit -> unit

  val installed : unit -> bool
end

module Pool : sig
  type t

  val create : domains:int -> t
  (** [create ~domains] makes a pool that executes jobs on [domains]
      domains in total: the submitting domain participates, and
      [domains - 1] worker domains are spawned lazily on first use.
      [domains = 1] never spawns and runs everything inline. Requires
      [domains >= 1]. *)

  val domains : t -> int

  val shutdown : t -> unit
  (** Join the worker domains (idempotent). Jobs submitted after a
      shutdown run inline, sequentially. *)

  val parallel_for : t -> ?chunk:int -> n:int -> (lo:int -> hi:int -> unit) -> unit
  (** [parallel_for pool ~chunk ~n body] runs [body ~lo ~hi] over
      contiguous half-open chunks [\[lo, hi)] covering [0 .. n-1], each
      chunk exactly once. [chunk] defaults to [max 1 (n / 64)] — a fixed
      schedule independent of the pool size. Chunks may run in any order,
      on any domain; [body] must only write to disjoint, per-index (or
      per-chunk) state. *)

  val parallel_map : t -> ?chunk:int -> n:int -> (int -> 'a) -> 'a array
  (** [parallel_map pool ~n f] is [[| f 0; ...; f (n-1) |]] with the
      applications distributed like {!parallel_for}. *)

  val parallel_map_result :
    t ->
    ?chunk:int ->
    ?on_result:(int -> ('a, exn) result -> unit) ->
    n:int ->
    (int -> 'a) ->
    ('a, exn) result array
  (** Fault-isolated {!parallel_map}: an exception raised by [f i] is
      captured into slot [i] as [Error exn] instead of cancelling the
      job — every index is always attempted, so one pathological item
      cannot discard the work of its siblings (the genome-scale batch
      contract). The chunk schedule, and therefore any per-chunk RNG
      substream derivation, is identical to {!parallel_map}'s.

      [on_result], when given, fires once per index immediately after
      that index's result is committed, on whichever domain executed it
      — concurrently with other indices. It exists for progress
      aggregation ({!Obs.Progress}): it must be domain-safe, must not
      raise, and must not influence results. *)

  val busy : t -> bool
  (** Whether a job is currently executing on this pool. *)
end

val jobs : unit -> int
(** The effective jobs setting for the global default pool: the last
    {!set_jobs} value if any, else a positive integer [DECONV_JOBS]
    environment variable, else [Domain.recommended_domain_count ()]. *)

val set_jobs : int -> unit
(** Override the default pool size ([--jobs]). Takes effect on the next
    {!default} access (the previous default pool is shut down). Requires
    [n >= 1]. Raises [Invalid_argument] if called while the default pool
    is executing a job: resizing mid-flight would tear down workers that
    still hold unclaimed chunks. *)

val default : unit -> Pool.t
(** The lazily-created global pool, sized by {!jobs}. Re-created on size
    changes; its workers are joined automatically at process exit. *)

val parallel_for : ?chunk:int -> n:int -> (lo:int -> hi:int -> unit) -> unit
(** {!Pool.parallel_for} on {!default}. *)

val parallel_map : ?chunk:int -> n:int -> (int -> 'a) -> 'a array
(** {!Pool.parallel_map} on {!default}. *)

val parallel_map_result :
  ?chunk:int ->
  ?on_result:(int -> ('a, exn) result -> unit) ->
  n:int ->
  (int -> 'a) ->
  ('a, exn) result array
(** {!Pool.parallel_map_result} on {!default}. *)
