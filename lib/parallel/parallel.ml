(* A small domain pool. Design constraints, in order:

   1. Determinism: the chunk schedule of a job depends only on (n, chunk),
      never on how many domains execute it, so callers can derive one RNG
      substream per chunk and get bit-identical results at every jobs
      setting.
   2. No surprises under failure: the first exception cancels the job's
      unclaimed chunks and is re-raised (with backtrace) in the submitting
      domain after in-flight chunks drain; the pool remains usable.
   3. No deadlocks under nesting: a submission while the pool is busy
      (reentrant, or from a worker domain) runs inline instead.

   One job runs at a time. Workers and the submitting domain claim chunks
   from a shared counter under the pool mutex and execute them unlocked. *)

(* This library is deliberately zero-dependency, and rule R7 keeps raw
   clocks out of it — so chunk telemetry is injected, not imported: the
   CLI installs a probe built from Obs.Clock/Obs.Export when tracing is
   on. With no probe installed every chunk costs one extra load+branch.
   Reads happen on worker domains against a plain ref: installation must
   precede the fan-out (the CLI installs before any job is submitted),
   and the probe's callbacks must be domain-safe and must not raise — a
   raise here would be indistinguishable from a chunk failure. *)
module Probe = struct
  type t = {
    now : unit -> float;
    record : domain:int -> lo:int -> hi:int -> start_s:float -> stop_s:float -> unit;
  }

  let active : t option ref = ref None

  let install p = active := Some p
  let uninstall () = active := None
  let installed () = Option.is_some !active
end

(* Only the outermost chunk on a domain is recorded: a nested submission
   (a gene's inner λ sweep finding the pool busy) re-enters run_inline
   *inside* its parent chunk, and timing those too would double-count the
   domain's busy time — per-domain busy fractions must stay <= 1. *)
let in_probed_chunk : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let probe_chunk body ~lo ~hi =
  match !Probe.active with
  | None -> body ~lo ~hi
  | Some p ->
    let nested = Domain.DLS.get in_probed_chunk in
    if !nested then body ~lo ~hi
    else begin
      nested := true;
      let start_s = p.Probe.now () in
      Fun.protect
        ~finally:(fun () ->
          nested := false;
          p.Probe.record
            ~domain:(Domain.self () :> int)
            ~lo ~hi ~start_s ~stop_s:(p.Probe.now ()))
        (fun () -> body ~lo ~hi)
    end

module Pool = struct
  type job = {
    body : lo:int -> hi:int -> unit;
    chunk : int;
    n : int;
    n_chunks : int;
    mutable next : int;  (* first unclaimed chunk *)
    mutable remaining : int;  (* chunks not yet completed *)
    mutable failure : (exn * Printexc.raw_backtrace) option;
  }

  type t = {
    size : int;
    mutex : Mutex.t;
    work : Condition.t;  (* signalled when a job is installed or on stop *)
    done_ : Condition.t;  (* signalled when a job completes *)
    mutable job : job option;
    mutable busy : bool;
    mutable stop : bool;
    mutable workers : unit Domain.t list;
    mutable spawned : bool;  (* workers are created on first dispatch *)
  }

  let create ~domains =
    (* lint: allow R10 -- programmer-error precondition on a static pool size;
       this zero-dependency layer sits below lib/robust and cannot raise its
       typed error *)
    if domains < 1 then invalid_arg "Parallel.Pool.create: domains must be >= 1";
    {
      size = domains;
      mutex = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      job = None;
      busy = false;
      stop = false;
      workers = [];
      spawned = false;
    }

  let domains t = t.size

  (* Fixed fan-out target: enough chunks that uneven per-chunk cost still
     balances across domains, few enough that claiming stays cheap. Must
     not depend on the pool size (determinism contract). *)
  let default_chunk n = Stdlib.max 1 (n / 64)

  let chunk_size ~chunk ~n =
    let c = match chunk with Some c -> c | None -> default_chunk n in
    if c < 1 then invalid_arg "Parallel: chunk must be >= 1";
    c

  let run_inline ~chunk ~n body =
    let c = ref 0 in
    while !c * chunk < n do
      let lo = !c * chunk in
      let hi = Stdlib.min n (lo + chunk) in
      probe_chunk body ~lo ~hi;
      incr c
    done

  (* Claim and execute chunks of [job] until none are unclaimed. Called
     with [t.mutex] held; returns with it held. *)
  let drain t job =
    while job.next < job.n_chunks do
      let c = job.next in
      job.next <- c + 1;
      Mutex.unlock t.mutex;
      let failure =
        let lo = c * job.chunk in
        let hi = Stdlib.min job.n (lo + job.chunk) in
        match probe_chunk job.body ~lo ~hi with
        | () -> None
        (* lint: allow R2 -- captured with its backtrace and re-raised by
           [parallel_for] in the submitting domain once the job drains *)
        | exception e -> Some (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.mutex;
      (match (failure, job.failure) with
      | Some _, None ->
        job.failure <- failure;
        (* Cancel the unclaimed tail; chunks already in flight on other
           domains finish normally. *)
        job.remaining <- job.remaining - (job.n_chunks - job.next);
        job.next <- job.n_chunks
      | _ -> ());
      job.remaining <- job.remaining - 1;
      if job.remaining = 0 then begin
        t.job <- None;
        Condition.broadcast t.done_
      end
    done

  let rec worker_loop t =
    match t.job with
    | Some job when job.next < job.n_chunks ->
      drain t job;
      worker_loop t
    | _ ->
      if not t.stop then begin
        Condition.wait t.work t.mutex;
        worker_loop t
      end

  let worker t =
    Mutex.lock t.mutex;
    worker_loop t;
    Mutex.unlock t.mutex

  (* With [t.mutex] held. *)
  let ensure_workers t =
    if not t.spawned then begin
      t.spawned <- true;
      t.workers <- List.init (t.size - 1) (fun _ -> Domain.spawn (fun () -> worker t))
    end

  let parallel_for t ?chunk ~n body =
    if n > 0 then begin
      let chunk = chunk_size ~chunk ~n in
      let n_chunks = (n + chunk - 1) / chunk in
      if t.size = 1 || n_chunks = 1 then run_inline ~chunk ~n body
      else begin
        Mutex.lock t.mutex;
        if t.busy || t.stop then begin
          (* Nested (or post-shutdown) submission: same chunk schedule,
             executed inline — results are identical by construction. *)
          Mutex.unlock t.mutex;
          run_inline ~chunk ~n body
        end
        else begin
          t.busy <- true;
          ensure_workers t;
          let job =
            { body; chunk; n; n_chunks; next = 0; remaining = n_chunks; failure = None }
          in
          t.job <- Some job;
          Condition.broadcast t.work;
          drain t job;
          while job.remaining > 0 do
            Condition.wait t.done_ t.mutex
          done;
          t.busy <- false;
          Mutex.unlock t.mutex;
          match job.failure with
          (* lint: allow R10 R11 -- deterministic re-raise of the lowest-index
             failing chunk's own exception; what a task can raise is already
             tracked at the caller through its closure *)
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ()
        end
      end
    end

  let parallel_map t ?chunk ~n f =
    if n <= 0 then [||]
    else begin
      let out = Array.make n None in
      parallel_for t ?chunk ~n (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            out.(i) <- Some (f i)
          done);
      Array.map (function Some v -> v | None -> assert false) out
    end

  let parallel_map_result t ?chunk ?on_result ~n f =
    if n <= 0 then [||]
    else begin
      let out = Array.make n None in
      parallel_for t ?chunk ~n (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            let r =
              match f i with
              | v -> Ok v
              (* lint: allow R2 -- per-index fault isolation is this
                 function's contract: the exception is returned in slot i
                 as a value, never swallowed *)
              | exception e -> Error e
            in
            out.(i) <- Some r;
            (* Fires on the executing domain, concurrently with other
               chunks: the callback must be domain-safe and must not
               raise (a raise would read as a chunk failure and cancel
               the job). Pure aggregation only — results are already
               committed to their slots. *)
            match on_result with Some g -> g i r | None -> ()
          done);
      Array.map (function Some v -> v | None -> assert false) out
    end

  let busy t =
    Mutex.lock t.mutex;
    let b = t.busy in
    Mutex.unlock t.mutex;
    b

  let shutdown t =
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.work;
    let ws = t.workers in
    t.workers <- [];
    Mutex.unlock t.mutex;
    List.iter Domain.join ws
end

(* ---------------- the global default pool ---------------- *)

(* Guards [requested]/[current]: [default ()] can be reached from worker
   domains through nested library calls. *)
let state_mutex = Mutex.create ()

let requested : int option ref = ref None
let current : Pool.t option ref = ref None

let env_jobs () =
  match Sys.getenv_opt "DECONV_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ -> None)

let jobs () =
  match !requested with
  | Some n -> n
  | None -> (
    match env_jobs () with
    | Some n -> n
    | None -> Domain.recommended_domain_count ())

let set_jobs n =
  (* lint: allow R10 -- programmer-error precondition with a test-pinned
     message; this zero-dependency layer sits below lib/robust and cannot
     raise its typed error *)
  if n < 1 then invalid_arg "Parallel.set_jobs: jobs must be >= 1";
  Mutex.lock state_mutex;
  (* Resizing swaps (and shuts down) the default pool on next access;
     doing that under a running job would orphan its unclaimed chunks.
     The documented contract is now enforced instead of being silent
     undefined behavior. *)
  let in_flight = match !current with Some p -> Pool.busy p | None -> false in
  if in_flight then begin
    Mutex.unlock state_mutex;
    (* lint: allow R10 R11 -- contract violation with a test-pinned message:
       resizing the pool mid-job is refused, never performed; below lib/robust *)
    invalid_arg "Parallel.set_jobs: parallel work is in flight"
  end;
  requested := Some n;
  Mutex.unlock state_mutex

let default () =
  Mutex.lock state_mutex;
  let pool =
    match !current with
    | Some p when Pool.domains p = jobs () -> p
    | prev ->
      (match prev with Some p -> Pool.shutdown p | None -> ());
      let p = Pool.create ~domains:(jobs ()) in
      current := Some p;
      p
  in
  Mutex.unlock state_mutex;
  pool

(* Join the workers on exit so the process never terminates with live
   domains blocked on the pool's condition variable. *)
let () =
  at_exit (fun () ->
      Mutex.lock state_mutex;
      let p = !current in
      current := None;
      Mutex.unlock state_mutex;
      match p with Some p -> Pool.shutdown p | None -> ())

let parallel_for ?chunk ~n body = Pool.parallel_for (default ()) ?chunk ~n body
let parallel_map ?chunk ~n f = Pool.parallel_map (default ()) ?chunk ~n f

let parallel_map_result ?chunk ?on_result ~n f =
  Pool.parallel_map_result (default ()) ?chunk ?on_result ~n f
