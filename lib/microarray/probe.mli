(** A probe/hybridization model for one gene on an expression array: the
    measured intensity is an affine, saturating, noisy transform of the
    population-level concentration (paper §2.2: "signal intensity … is
    proportional to the population-level concentration" — proportional only
    after the preprocessing implemented in {!Normalize} and
    {!Timecourse}). *)

open Numerics

type t = {
  gain : float;  (** probe-specific sensitivity (multiplicative) *)
  background : float;  (** additive background fluorescence *)
  noise_cv : float;  (** multiplicative lognormal measurement noise CV *)
  saturation : float;  (** intensity ceiling of the scanner *)
}

val default : t

val draw : ?gain_cv:float -> ?background_mean:float -> Rng.t -> t
(** Random probe: lognormal gain around 1 (CV default 0.3), exponential
    background, noise CV 0.05, saturation 65535. *)

val measure : t -> Rng.t -> concentration:float -> float
(** One raw intensity readout. *)
