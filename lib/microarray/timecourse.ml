open Numerics

type raw = {
  gene_names : string array;
  times : Vec.t;
  probes : Probe.t array;
  replicates : Mat.t array;
  control_spots : int;
}

(* lint: allow R4 -- default per-array scale coefficient of variation for the
   synthetic microarray model; coincidentally equal to the swarmer fraction *)
let simulate ?(replicates = 3) ?(array_scale_cv = 0.15) ?(control_spots = 8) rng ~gene_names
    ~times ~true_signals =
  let genes, n_times = Mat.dims true_signals in
  assert (Array.length gene_names = genes);
  assert (Array.length times = n_times);
  assert (replicates >= 1);
  assert (control_spots >= 0);
  let total_rows = genes + control_spots in
  let probes = Array.init total_rows (fun _ -> Probe.draw rng) in
  let replicate_matrices =
    Array.init replicates (fun _ ->
        let chip_scales =
          Array.init n_times (fun _ -> Rng.lognormal_factor rng ~cv:array_scale_cv)
        in
        Mat.init total_rows n_times (fun g m ->
            (* Control spots see zero target concentration. *)
            let concentration =
              if g < genes then Float.max 0.0 (Mat.get true_signals g m) else 0.0
            in
            chip_scales.(m) *. Probe.measure probes.(g) rng ~concentration))
  in
  {
    gene_names;
    times = Array.copy times;
    probes;
    replicates = replicate_matrices;
    control_spots;
  }

type processed = {
  estimates : Mat.t;
  sigmas : Mat.t;
}

let background_of_chip raw chip j =
  let total_rows, _ = Mat.dims chip in
  let genes = total_rows - raw.control_spots in
  if raw.control_spots > 0 then begin
    let controls = Array.init raw.control_spots (fun k -> Mat.get chip (genes + k) j) in
    Stats.median controls
  end
  else Stats.quantile (Mat.col chip j) 0.05

let process raw =
  let total_rows, n_times = Mat.dims raw.replicates.(0) in
  let genes = total_rows - raw.control_spots in
  let normalized =
    Array.map
      (fun chip ->
        (* Background from the blank controls, per chip column. *)
        let corrected =
          Mat.init total_rows n_times (fun g j ->
              Float.max 0.0 (Mat.get chip g j -. background_of_chip raw chip j))
        in
        (* Median scaling over the GENE rows only (controls are ~zero and
           would distort the median on small panels). *)
        let gene_block = Mat.init genes n_times (fun g j -> Mat.get corrected g j) in
        Normalize.median_scale gene_block)
      raw.replicates
  in
  let n_reps = Array.length normalized in
  let estimates = Mat.zeros genes n_times in
  let sigmas = Mat.zeros genes n_times in
  for g = 0 to genes - 1 do
    for m = 0 to n_times - 1 do
      let values = Array.init n_reps (fun r -> Mat.get normalized.(r) g m) in
      let mean = Stats.mean values in
      Mat.set estimates g m mean;
      let se = if n_reps > 1 then Stats.std values /. sqrt (float_of_int n_reps) else 0.0 in
      Mat.set sigmas g m se
    done
  done;
  (* Floor sigmas at a small fraction of each gene's dynamic range so the
     deconvolution weights stay finite. *)
  for g = 0 to genes - 1 do
    let row = Mat.row estimates g in
    let floor_ = Float.max 1e-9 (0.02 *. Vec.norm_inf row) in
    for m = 0 to n_times - 1 do
      Mat.set sigmas g m (Float.max floor_ (Mat.get sigmas g m))
    done
  done;
  { estimates; sigmas }

let gene_measurements p ~gene = (Mat.row p.estimates gene, Mat.row p.sigmas gene)
