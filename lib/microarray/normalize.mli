(** Array-level normalization: one column of the expression matrix is one
    chip (a time point); normalization removes chip-to-chip gain and
    background differences before deconvolution. *)

open Numerics

val background_correct : ?percentile:float -> Mat.t -> Mat.t
(** Subtract a per-column background estimate (the given percentile of the
    column, default 0.05) and clamp at zero. *)

val median_scale : Mat.t -> Mat.t
(** Rescale each column so its median matches the global median of all
    column medians (global intensity normalization). Columns with zero
    median are left unscaled. *)

val quantile : Mat.t -> Mat.t
(** Full quantile normalization: every column is forced onto the common
    (mean) quantile profile — rank statistics per column are preserved. *)

val log2 : ?offset:float -> Mat.t -> Mat.t
(** log₂(x + offset), offset default 1.0. *)
