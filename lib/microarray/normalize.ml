open Numerics

let background_correct ?(percentile = 0.05) m =
  let out = Mat.copy m in
  for j = 0 to m.Mat.cols - 1 do
    let column = Mat.col m j in
    let bg = Stats.quantile column percentile in
    for i = 0 to m.Mat.rows - 1 do
      Mat.set out i j (Float.max 0.0 (Mat.get m i j -. bg))
    done
  done;
  out

let median_scale m =
  let medians = Array.init m.Mat.cols (fun j -> Stats.median (Mat.col m j)) in
  let positive = Array.of_list (List.filter (fun x -> x > 0.0) (Array.to_list medians)) in
  if Array.length positive = 0 then Mat.copy m
  else begin
    let target = Stats.median positive in
    let out = Mat.copy m in
    for j = 0 to m.Mat.cols - 1 do
      if medians.(j) > 0.0 then begin
        let scale = target /. medians.(j) in
        for i = 0 to m.Mat.rows - 1 do
          Mat.set out i j (Mat.get m i j *. scale)
        done
      end
    done;
    out
  end

let quantile m =
  let rows = m.Mat.rows and cols = m.Mat.cols in
  (* Rank each column, average the sorted profiles, then write the mean
     profile back through each column's ranks. *)
  let order = Array.init cols (fun j ->
      let idx = Array.init rows (fun i -> i) in
      let column = Mat.col m j in
      Array.sort (fun a b -> compare column.(a) column.(b)) idx;
      idx)
  in
  let mean_sorted = Array.make rows 0.0 in
  for j = 0 to cols - 1 do
    let column = Mat.col m j in
    Array.iteri (fun rank i -> mean_sorted.(rank) <- mean_sorted.(rank) +. column.(i)) order.(j)
  done;
  let mean_sorted = Array.map (fun x -> x /. float_of_int cols) mean_sorted in
  let out = Mat.zeros rows cols in
  for j = 0 to cols - 1 do
    Array.iteri (fun rank i -> Mat.set out i j mean_sorted.(rank)) order.(j)
  done;
  out

let log2 ?(offset = 1.0) m = Mat.map (fun x -> Float.log2 (x +. offset)) m
