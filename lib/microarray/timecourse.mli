(** Simulation and preprocessing of a full time-course expression
    experiment: one array (chip) per time point, several biological
    replicates, gene-specific probes. The processed output — per-gene
    measurement vectors with replicate-based standard deviations — is
    exactly what the deconvolution consumes. *)

open Numerics

type raw = {
  gene_names : string array;
  times : Vec.t;
  probes : Probe.t array;  (** one probe per gene *)
  replicates : Mat.t array;
      (** per replicate: (genes + control_spots) × times raw intensities;
          the final [control_spots] rows are blank (zero-concentration)
          control probes *)
  control_spots : int;
}

val simulate :
  ?replicates:int ->
  ?array_scale_cv:float ->
  ?control_spots:int ->
  Rng.t ->
  gene_names:string array ->
  times:Vec.t ->
  true_signals:Mat.t ->
  raw
(** [true_signals] is genes × times of population-level concentrations
    G_g(t_m). Each replicate chip gets its own multiplicative array scale
    (lognormal, CV default 0.15, mimicking labeling/scanner drift), each
    gene its own random probe (drawn once, shared across replicates, as on
    a real platform). [control_spots] blank probes (default 8) measure
    pure background per chip — real platforms include them, and they make
    background correction well-defined even for small gene panels.
    Default 3 replicates. *)

type processed = {
  estimates : Mat.t;  (** genes × times, background-corrected, normalized, replicate-averaged *)
  sigmas : Mat.t;  (** genes × times replicate standard errors (floored) *)
}

val process : raw -> processed
(** Per chip: subtract the median intensity of the blank control spots
    (falling back to a low percentile of all spots when no controls exist),
    clamp at zero, median-scale, drop the control rows; then average across
    replicates. The result is proportional to the true concentrations up to
    a single global factor and per-gene probe gains; deconvolution is
    per-gene and scale-equivariant, so shapes are preserved. *)

val gene_measurements : processed -> gene:int -> Vec.t * Vec.t
(** [(g, sigma)] rows for one gene. *)
