open Numerics

type t = {
  gain : float;
  background : float;
  noise_cv : float;
  saturation : float;
}

let default = { gain = 1.0; background = 0.0; noise_cv = 0.0; saturation = Float.infinity }

let draw ?(gain_cv = 0.3) ?(background_mean = 0.05) rng =
  let gain = Rng.lognormal_factor rng ~cv:gain_cv in
  let background =
    if background_mean > 0.0 then Rng.exponential rng ~rate:(1.0 /. background_mean) else 0.0
  in
  { gain; background; noise_cv = 0.05; saturation = 65535.0 }

let measure t rng ~concentration =
  assert (concentration >= 0.0);
  let clean = (t.gain *. concentration) +. t.background in
  let noisy = clean *. Rng.lognormal_factor rng ~cv:t.noise_cv in
  Float.min t.saturation (Float.max 0.0 noisy)
