(** Convex quadratic programming:

    minimize ½ xᵀ H x + gᵀ x
    subject to  C x = d   (equalities)
    and         A x ≥ b   (inequalities)

    Equality-only problems are solved directly through the KKT system;
    problems with inequalities use a primal-dual interior-point method
    (infeasible-start path following with a Mehrotra-style centering
    parameter), which is robust to the heavy degeneracy of "function ≥ 0 on
    a fine grid" constraint sets. [H] must be symmetric positive definite
    (the deconvolution problem guarantees this through the λ-regularizer). *)

open Numerics

type problem = {
  h : Mat.t;  (** n × n, symmetric positive definite *)
  g : Vec.t;  (** linear term, length n *)
  c_eq : Mat.t option;  (** equality constraint rows *)
  d_eq : Vec.t option;
  a_ineq : Mat.t option;  (** inequality constraint rows (≥) *)
  b_ineq : Vec.t option;
}

type status =
  | Converged  (** all KKT tolerances met *)
  | Stalled  (** iteration cap reached first — the iterate is best-effort *)

type solution = {
  x : Vec.t;
  active : int list;  (** inequality constraints essentially active at the solution *)
  iterations : int;
  kkt_residual : float;  (** infinity norm of the stationarity residual *)
  status : status;
}

type warm_start = {
  x0 : Vec.t;  (** initial primal point, length n *)
  active0 : int list;  (** inequality rows believed active at the solution *)
}
(** Warm-start hint for the interior-point method — typically the spectral
    unconstrained solution at the same λ ({!Spectral.solution}), or the
    previous solution and active set when sweeping neighboring λ values
    (the robust cascade's escalation retries). Affects only the starting
    iterate: slacks are read off [x0] (floored away from the boundary) and
    duals are placed on the central path at a small μ₀, so a good hint
    saves the early centering iterations while a poor one degrades to the
    cold-start trajectory. Ignored by direct equality-only solves. *)

exception Infeasible of string

val unconstrained : Mat.t -> Vec.t -> Vec.t
(** Minimizer of the pure quadratic: solves [H x = −g]. *)

val solve_equality : Mat.t -> Vec.t -> c:Mat.t -> d:Vec.t -> Vec.t * Vec.t
(** Equality-constrained minimizer via the KKT system; returns
    [(x, multipliers)]. *)

val solve :
  ?warm_start:warm_start ->
  ?on_iteration:(int -> unit) ->
  ?tol:float ->
  ?max_iter:int ->
  ?fail_on_stall:bool ->
  problem ->
  solution
(** Full solve. [tol] bounds both the complementarity measure and the
    scaled KKT residuals at termination (default 1e-9); [max_iter] defaults
    to 100 interior-point steps. When the iteration cap is reached without
    convergence, raises {!Infeasible} if [fail_on_stall] (the default), and
    otherwise returns the last iterate with [status = Stalled] so callers
    (e.g. the robust degradation cascade) can distinguish "converged" from
    "gave up" and react.

    [on_iteration] is invoked with the 1-based iteration count at the top
    of every interior-point pass (and once, with [1], for direct
    equality-only solves) before any work for that pass is done. It may
    raise to abort the solve — the hook for external deadline/budget
    enforcement without this module depending on any policy layer. *)
