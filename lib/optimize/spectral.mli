(** Demmler–Reinsch spectral reparameterization of the penalized
    least-squares family [(AᵀWA + λΩ) x = AᵀWg].

    One generalized symmetric eigendecomposition of the pencil
    [(AᵀWA + λ₀Ω, Ω)] — Cholesky of the SPD side plus
    {!Numerics.Linalg.jacobi_eigen} — yields a basis [B] with
    [Bᵀ(AᵀWA + λ₀Ω)B = I] and [BᵀΩB = Γ]. In that basis every λ candidate
    is a diagonal rescale: with [c = Bᵀ(AᵀWg)] and
    [dᵢ(λ) = 1/(1 + (λ−λ₀)γᵢ)],

    - solution        [x(λ) = B (d ∘ c)]                          (O(n²))
    - edf = tr(H)     [Σ dᵢ(1 − λ₀γᵢ)]                            (O(n))
    - weighted RSS    [gᵀWg − Σ (2 − dᵢ(1−λ₀γᵢ)) dᵢ cᵢ²]          (O(n))
    - roughness xᵀΩx  [Σ γᵢ dᵢ² cᵢ²]                              (O(n))

    so a k-candidate λ sweep costs one factorization plus k cheap
    evaluations instead of k Cholesky solves. The anchor [λ₀] makes the
    factored side SPD even when [AᵀWA] alone is rank-deficient (k-fold
    training sets smaller than the basis); [λ₀ = 0] recovers the classic
    Demmler–Reinsch basis. The reparameterization is algebraically exact
    for any anchor — agreement with the direct path is limited only by
    rounding. *)

open Numerics

type t = {
  basis : Mat.t;  (** [B]: columns are the Demmler–Reinsch directions *)
  gamma : Vec.t;  (** generalized eigenvalues [Γ], descending, ≥ 0 *)
  anchor : float;  (** [λ₀] of the factored SPD side [AᵀWA + λ₀Ω] *)
}

type projection = {
  coeff : Vec.t;  (** [c = Bᵀ(AᵀWg)] — the data in spectral coordinates *)
  yty : float;  (** [gᵀWg], the constant term of the weighted RSS *)
}

type scores = { rss : float; roughness : float; edf : float }

val size : t -> int

val factorize : ?anchor:float -> gram:Mat.t -> penalty:Mat.t -> unit -> t
(** Factor the pencil at the given anchor (default 0, the classic basis).
    [gram] is [AᵀWA], [penalty] is [Ω]. Raises {!Linalg.Singular} when
    [gram + anchor·penalty] is not numerically SPD. *)

val auto_anchor : gram:Mat.t -> penalty:Mat.t -> float
(** Scale-aware strictly positive anchor (~1e-4 of the Gram's magnitude in
    penalty units) — SPD-safe for rank-deficient Gram sides while keeping
    the shifted weights well-conditioned across the candidate grid. *)

val factorize_auto : gram:Mat.t -> penalty:Mat.t -> t
(** {!factorize} at {!auto_anchor}. *)

val project : t -> rhs:Vec.t -> yty:float -> projection
(** [rhs] is [AᵀWg]; [yty] is [gᵀWg]. *)

val project_data : t -> a:Mat.t -> weights:Vec.t -> b:Vec.t -> projection
(** Build the projection straight from the design, weights and data. *)

val solution : t -> projection -> lambda:float -> Vec.t
(** Unconstrained minimizer [x(λ)] — identical (up to rounding) to solving
    [(AᵀWA + λΩ) x = AᵀWg] directly. Raises {!Linalg.Singular} exactly when
    the direct factorization would (singular shifted system). *)

val evaluate : t -> projection -> lambda:float -> scores
(** Misfit/roughness/edf at a candidate in O(n), without forming the
    solution. [rss] is the weighted residual sum of squares, clamped at 0
    against cancellation near interpolation. Raises like {!solution}. *)

(** {1 Cross-solve factorization reuse}

    Genes of a batch and bootstrap replicates share one kernel (and
    usually one weight vector): their penalized systems are bit-identical,
    so one factorization serves them all. The cache is lock-free (CAS on
    an immutable list) and keyed by a content hash of the exact bit
    patterns of design, weights and penalty — results can never depend on
    cache state, only the amount of work can. Create one cache per batch
    call and pass it down; module-level mutable state is deliberately
    avoided (rule R11). *)

module Cache : sig
  type t

  val create : ?cap:int -> unit -> t
  (** [cap] (default 64) bounds the entry count; once full, further keys
      are computed fresh each time (no eviction — the common case is a
      single shared kernel, not churn). *)

  val hits : t -> int
  val misses : t -> int
  val length : t -> int
end

val problem_key : a:Mat.t -> weights:Vec.t -> penalty:Mat.t -> string
(** Content hash (hex digest) of the penalized-system inputs: dimensions
    plus [Int64.bits_of_float] of every design, weight and penalty entry. *)

val factorize_problem :
  ?cache:Cache.t -> a:Mat.t -> weights:Vec.t -> penalty:Mat.t -> unit -> t
(** Factorization for the weighted problem [(AᵀWA, Ω)] at the automatic
    anchor, through [cache] when given. Raises {!Linalg.Singular} when even
    the anchored side cannot be factored (callers fall back to the direct
    per-candidate path). *)
