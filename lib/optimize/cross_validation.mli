(** λ-selection machinery: k-fold cross-validation and GCV over a λ grid
    (the paper selects the smoothing parameter "via cross validation",
    citing Craven–Wahba). *)

open Numerics

val kfold_indices : Rng.t -> n:int -> k:int -> int array array
(** Random partition of [0..n-1] into [k] folds whose sizes differ by at
    most one. Requires [2 <= k <= n]. *)

val log_lambda_grid : lo:float -> hi:float -> count:int -> Vec.t
(** Logarithmically spaced λ values from [10^lo] to [10^hi]. *)

type 'fit score = { lambda : float; score : float; fit : 'fit }

val select :
  lambdas:Vec.t -> fit_and_score:(float -> 'fit * float) -> 'fit score * 'fit score array
(** Evaluate each λ; return the best (lowest score) plus the full curve. *)

val kfold_score :
  rng:Rng.t ->
  k:int ->
  n:int ->
  fit_on:(train:int array -> float -> 'model) ->
  predict_error:('model -> test:int array -> float) ->
  float ->
  float
(** Mean held-out error of λ across folds: [fit_on ~train lambda] trains a
    model on the index subset, [predict_error model ~test] returns its mean
    squared error on the held-out subset. *)
