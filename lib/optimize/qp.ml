open Numerics

type problem = {
  h : Mat.t;
  g : Vec.t;
  c_eq : Mat.t option;
  d_eq : Vec.t option;
  a_ineq : Mat.t option;
  b_ineq : Vec.t option;
}

type status = Converged | Stalled

type solution = {
  x : Vec.t;
  active : int list;
  iterations : int;
  kkt_residual : float;
  status : status;
}

type warm_start = { x0 : Vec.t; active0 : int list }

exception Infeasible of string

let unconstrained h g = Linalg.solve_spd h (Vec.neg g)

(* KKT system [H Cᵀ; C 0] [x; ν] = [−g; d]. *)
let solve_equality h g ~c ~d =
  let n = h.Mat.rows in
  let m = c.Mat.rows in
  assert (c.Mat.cols = n);
  assert (Array.length d = m);
  let kkt = Mat.zeros (n + m) (n + m) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Mat.set kkt i j (Mat.get h i j)
    done
  done;
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      Mat.set kkt (n + i) j (Mat.get c i j);
      Mat.set kkt j (n + i) (Mat.get c i j)
    done
  done;
  let rhs = Array.init (n + m) (fun i -> if i < n then -.g.(i) else d.(i - n)) in
  let sol = Linalg.solve_sym_indefinite kkt rhs in
  (Array.sub sol 0 n, Array.sub sol n m)

let stationarity_residual problem x nu z =
  (* ∇f − C_eqᵀν − A_ineqᵀz, scaled by the problem magnitude. *)
  let r = Vec.add (Mat.mv problem.h x) problem.g in
  (match problem.c_eq with Some c -> Vec.axpy (-1.0) (Mat.tmv c nu) r | None -> ());
  (match problem.a_ineq with Some a -> Vec.axpy (-1.0) (Mat.tmv a z) r | None -> ());
  let scale = Float.max 1.0 (Float.max (Vec.norm_inf problem.g) (Mat.max_abs problem.h)) in
  Vec.norm_inf r /. scale

(* Infeasible-start primal-dual path following for the inequality case.
   [sp] is the enclosing qp.solve span: each pass of the main loop emits
   one "qp.iteration" point on it, so a trace replays the convergence
   trajectory and the point count equals [solution.iterations]. *)
let solve_interior_point ~sp ~warm_start ~on_iteration ~tol ~max_iter ~fail_on_stall problem
    a b =
  let n = problem.h.Mat.rows in
  let m_ineq = a.Mat.rows in
  let n_eq = match problem.c_eq with Some c -> c.Mat.rows | None -> 0 in
  let d_eq = match problem.d_eq with Some d -> d | None -> [||] in
  let x = ref (Vec.zeros n) in
  let y = ref (Vec.zeros n_eq) in
  let s = ref (Vec.ones m_ineq) in
  let z = ref (Vec.ones m_ineq) in
  (match warm_start with
  | None -> ()
  | Some w ->
    assert (Array.length w.x0 = n);
    let ax = Mat.mv a w.x0 in
    let hint_scale = Float.max 1.0 (Float.max (Vec.norm_inf b) (Vec.norm_inf ax)) in
    let violation = ref 0.0 in
    for i = 0 to m_ineq - 1 do
      violation := Float.max !violation (b.(i) -. ax.(i))
    done;
    (* Adopt only nearly feasible hints (ringing-level violations, ≤10% of
       the prediction scale). A badly infeasible x0 would pair tiny slacks
       with a large primal residual — the fraction-to-boundary rule then
       crawls, and the "warm" start costs more passes than the cold one it
       replaces. Rejection keeps the cold defaults, so a poor hint can
       never make a solve worse. *)
    if !violation <= 0.1 *. hint_scale then begin
      Obs.Span.set_bool sp "warm_adopted" true;
      (* Start at the supplied point with slacks read off it, floored away
         from the boundary, and duals on the central path at μ₀ = 0.1 —
         one decade into the cold start's μ schedule, far enough that a
         good hint saves the early centering passes, conservative enough
         that a mediocre one costs nothing. *)
      x := Vec.copy w.x0;
      let slack_floor = 1e-2 *. hint_scale in
      let mu0 = 1e-1 in
      for i = 0 to m_ineq - 1 do
        !s.(i) <- Float.max (ax.(i) -. b.(i)) slack_floor;
        !z.(i) <- mu0 /. !s.(i)
      done;
      (* Constraints the caller believes are active get a unit dual so the
         first step does not immediately walk off the active face. *)
      List.iter
        (fun i -> if i >= 0 && i < m_ineq then !z.(i) <- Float.max !z.(i) 1.0)
        w.active0
    end);
  let mf = float_of_int m_ineq in
  let duality_gap () = Vec.dot !s !z /. mf in
  let residuals () =
    (* r_dual = Hx + g − Cᵀy − Aᵀz; r_eq = Cx − d; r_ineq = Ax − s − b. *)
    let r_dual = Vec.add (Mat.mv problem.h !x) problem.g in
    (match problem.c_eq with Some c -> Vec.axpy (-1.0) (Mat.tmv c !y) r_dual | None -> ());
    Vec.axpy (-1.0) (Mat.tmv a !z) r_dual;
    let r_eq =
      match problem.c_eq with
      | Some c -> Vec.sub (Mat.mv c !x) d_eq
      | None -> [||]
    in
    let r_ineq = Vec.sub (Vec.sub (Mat.mv a !x) !s) b in
    (r_dual, r_eq, r_ineq)
  in
  let scale =
    Float.max 1.0
      (Float.max (Vec.norm_inf problem.g)
         (Float.max (Mat.max_abs problem.h) (Vec.norm_inf b)))
  in
  let iterations = ref 0 in
  let converged = ref false in
  (* Scaled worst-case KKT residual — the quantity the convergence test
     compares against [tol], so the telemetry curve mirrors the stop rule. *)
  let kkt_of r_dual r_eq r_ineq =
    Float.max (Vec.norm_inf r_dual)
      (Float.max
         (if n_eq = 0 then 0.0 else Vec.norm_inf r_eq)
         (Vec.norm_inf r_ineq))
    /. scale
  in
  while (not !converged) && !iterations < max_iter do
    incr iterations;
    (match on_iteration with Some f -> f !iterations | None -> ());
    let r_dual, r_eq, r_ineq = residuals () in
    let mu = duality_gap () in
    if
      mu < tol *. scale
      && Vec.norm_inf r_dual < tol *. scale
      && (n_eq = 0 || Vec.norm_inf r_eq < tol *. scale)
      && Vec.norm_inf r_ineq < tol *. scale
    then begin
      converged := true;
      if Obs.Span.enabled () then
        Obs.Span.point sp "qp.iteration" ~iter:!iterations
          [ ("kkt_residual", kkt_of r_dual r_eq r_ineq); ("mu", mu) ]
    end
    else begin
      (* Centering parameter: aggressive once residuals are small. *)
      let sigma = if Vec.norm_inf r_ineq < 1e-8 *. scale then 0.1 else 0.3 in
      (* Reduced system over (Δx, Δy):
         (H + AᵀS⁻¹ZA)Δx − CᵀΔy = −r_dual + Aᵀ(σμS⁻¹e − z − S⁻¹Z r_ineq)
         C Δx = −r_eq. *)
      let s_inv_z = Array.init m_ineq (fun i -> !z.(i) /. !s.(i)) in
      let h_aug = Mat.copy problem.h in
      for i = 0 to m_ineq - 1 do
        let row = Mat.row a i in
        let w = s_inv_z.(i) in
        for p = 0 to n - 1 do
          if not (Float.equal row.(p) 0.0) then
            for q = 0 to n - 1 do
              Mat.set h_aug p q (Mat.get h_aug p q +. (w *. row.(p) *. row.(q)))
            done
        done
      done;
      let rhs_extra =
        (* Aᵀ(σμS⁻¹e − z − S⁻¹Z·r_ineq) *)
        let v =
          Array.init m_ineq (fun i ->
              (sigma *. mu /. !s.(i)) -. !z.(i) -. (s_inv_z.(i) *. r_ineq.(i)))
        in
        Mat.tmv a v
      in
      let rhs_x = Vec.add (Vec.neg r_dual) rhs_extra in
      let dx, dy =
        match problem.c_eq with
        | None -> (Linalg.solve_spd h_aug rhs_x, [||])
        | Some c ->
          (* We need [H_aug −Cᵀ; C 0][Δx; Δy] = [rhs_x; −r_eq], while
             solve_equality solves [H Cᵀ; C 0][x; ν] = [−g; d]. Passing
             g = −rhs_x, d = −r_eq yields the same Δx with ν = −Δy. *)
          let dx, multipliers = solve_equality h_aug (Vec.neg rhs_x) ~c ~d:(Vec.neg r_eq) in
          (dx, Vec.neg multipliers)
      in
      let ds = Vec.add (Mat.mv a dx) r_ineq in
      let dz =
        Array.init m_ineq (fun i ->
            ((sigma *. mu) -. (!z.(i) *. !s.(i)) -. (!z.(i) *. ds.(i))) /. !s.(i))
      in
      (* Fraction-to-boundary step sizes. *)
      let step_for v dv =
        let alpha = ref 1.0 in
        for i = 0 to Array.length v - 1 do
          if dv.(i) < 0.0 then alpha := Float.min !alpha (-0.995 *. v.(i) /. dv.(i))
        done;
        !alpha
      in
      let alpha_p = step_for !s ds in
      let alpha_d = step_for !z dz in
      Vec.axpy alpha_p dx !x;
      (match problem.c_eq with
      | Some _ -> Vec.axpy alpha_d dy !y
      | None -> ());
      Vec.axpy alpha_p ds !s;
      Vec.axpy alpha_d dz !z;
      if Obs.Span.enabled () then
        Obs.Span.point sp "qp.iteration" ~iter:!iterations
          [
            ("kkt_residual", kkt_of r_dual r_eq r_ineq);
            ("mu", mu);
            ("alpha_p", alpha_p);
            ("alpha_d", alpha_d);
          ]
    end
  done;
  if (not !converged) && fail_on_stall then
    raise (Infeasible "Qp.solve: interior-point iteration limit");
  let active =
    let threshold = sqrt tol *. Float.max 1.0 (Vec.norm_inf !s) in
    List.filter (fun i -> !s.(i) < threshold) (List.init m_ineq (fun i -> i))
  in
  {
    x = !x;
    active;
    iterations = !iterations;
    kkt_residual = stationarity_residual problem !x !y !z;
    status = (if !converged then Converged else Stalled);
  }

let solve_dispatch ~sp ~warm_start ~on_iteration ~tol ~max_iter ~fail_on_stall problem =
  let n = problem.h.Mat.rows in
  assert (Array.length problem.g = n);
  (* Direct solves count as one iteration; emit the matching single point
     so every solve's telemetry series has exactly [iterations] entries. *)
  let direct sol =
    (match on_iteration with Some f -> f 1 | None -> ());
    if Obs.Span.enabled () then
      Obs.Span.point sp "qp.iteration" ~iter:1
        [ ("kkt_residual", sol.kkt_residual); ("mu", 0.0) ];
    sol
  in
  match (problem.a_ineq, problem.b_ineq) with
  | None, None | None, Some _ ->
    (* Equality-only (or unconstrained): one KKT solve. *)
    (match (problem.c_eq, problem.d_eq) with
    | Some c, Some d ->
      let x, nu = solve_equality problem.h problem.g ~c ~d in
      direct
        {
          x;
          active = [];
          iterations = 1;
          kkt_residual = stationarity_residual problem x nu [||];
          status = Converged;
        }
    | None, _ ->
      let x = unconstrained problem.h problem.g in
      direct
        {
          x;
          active = [];
          iterations = 1;
          kkt_residual = stationarity_residual problem x [||] [||];
          status = Converged;
        }
    | Some _, None ->
      (* lint: allow R10 R11 -- mismatched optional-constraint pair is caller
         programmer error; the solver cascade builds matched pairs by
         construction, and lib/optimize sits below lib/robust *)
      invalid_arg "Qp.solve: c_eq without d_eq")
  | Some a, Some b ->
    assert (a.Mat.cols = n);
    assert (Array.length b = a.Mat.rows);
    solve_interior_point ~sp ~warm_start ~on_iteration ~tol:(Float.max tol 1e-12) ~max_iter
      ~fail_on_stall problem a b
  | Some _, None ->
    (* lint: allow R10 R11 -- mismatched optional-constraint pair is caller
       programmer error; the solver cascade builds matched pairs by
       construction, and lib/optimize sits below lib/robust *)
    invalid_arg "Qp.solve: a_ineq without b_ineq"

let solve ?warm_start ?on_iteration ?(tol = 1e-9) ?(max_iter = 100) ?(fail_on_stall = true)
    problem =
  Obs.Span.with_ "qp.solve" (fun sp ->
      Obs.Span.set_int sp "n" problem.h.Mat.rows;
      Obs.Span.set_int sp "m_ineq"
        (match problem.a_ineq with Some a -> a.Mat.rows | None -> 0);
      Obs.Span.set_int sp "m_eq" (match problem.c_eq with Some c -> c.Mat.rows | None -> 0);
      Obs.Span.set_bool sp "warm_start" (Option.is_some warm_start);
      if Option.is_some warm_start then Obs.Metrics.incr "qp.warm_starts";
      let sol = solve_dispatch ~sp ~warm_start ~on_iteration ~tol ~max_iter ~fail_on_stall problem in
      Obs.Span.set_int sp "iterations" sol.iterations;
      Obs.Span.set_int sp "active" (List.length sol.active);
      Obs.Span.set_float sp "kkt_residual" sol.kkt_residual;
      Obs.Span.set_str sp "status"
        (match sol.status with Converged -> "converged" | Stalled -> "stalled");
      Obs.Metrics.incr "qp.solves";
      Obs.Metrics.incr ~by:(float_of_int sol.iterations) "qp.iterations";
      Obs.Metrics.observe "qp.iterations_per_solve" (float_of_int sol.iterations);
      (* Separate distribution for warm-started solves: comparing its
         quantiles against qp.iterations_per_solve quantifies the
         iteration savings the spectral warm start buys. *)
      if Option.is_some warm_start then
        Obs.Metrics.observe "qp.warm_iterations_per_solve" (float_of_int sol.iterations);
      Obs.Metrics.observe "qp.active_constraints" (float_of_int (List.length sol.active));
      if Obs.Diag.enabled () then
        Obs.Diag.emit
          (Obs.Diag.make ~stage:"qp"
             ~values:
               [
                 ("n", float_of_int problem.h.Mat.rows);
                 ( "m_ineq",
                   float_of_int (match problem.a_ineq with Some a -> a.Mat.rows | None -> 0) );
                 ("iterations", float_of_int sol.iterations);
                 ("active", float_of_int (List.length sol.active));
                 ("kkt_residual", sol.kkt_residual);
               ]
             ~tags:
               [ ("status", match sol.status with Converged -> "converged" | Stalled -> "stalled") ]
             ());
      sol)
