open Numerics

let kfold_indices rng ~n ~k =
  assert (k >= 2 && k <= n);
  let order = Array.init n (fun i -> i) in
  Rng.shuffle rng order;
  Array.init k (fun fold ->
      (* Fold [fold] takes every k-th element, which balances sizes. *)
      let members = ref [] in
      for i = n - 1 downto 0 do
        if i mod k = fold then members := order.(i) :: !members
      done;
      Array.of_list !members)

let log_lambda_grid ~lo ~hi ~count =
  assert (count >= 1);
  if count = 1 then [| 10.0 ** lo |]
  else Array.map (fun e -> 10.0 ** e) (Vec.linspace lo hi count)

type 'fit score = { lambda : float; score : float; fit : 'fit }

let select ~lambdas ~fit_and_score =
  assert (Array.length lambdas > 0);
  (* Candidates are scored independently (each solve builds its own
     factorizations), so the sweep fans out across the default pool; the
     argmin runs over the index-ordered results, so the winner — ties
     included — is the same at every jobs setting. *)
  let scores =
    Parallel.parallel_map ~chunk:1 ~n:(Array.length lambdas) (fun i ->
        let lambda = lambdas.(i) in
        let fit, s = fit_and_score lambda in
        { lambda; score = s; fit })
  in
  let best = ref scores.(0) in
  Array.iter (fun s -> if s.score < !best.score then best := s) scores;
  (!best, scores)

let kfold_score ~rng ~k ~n ~fit_on ~predict_error lambda =
  let folds = kfold_indices rng ~n ~k in
  let total = ref 0.0 in
  Array.iter
    (fun test ->
      let in_test = Array.make n false in
      Array.iter (fun i -> in_test.(i) <- true) test;
      let train =
        Array.of_list (List.filter (fun i -> not in_test.(i)) (List.init n (fun i -> i)))
      in
      let model = fit_on ~train lambda in
      total := !total +. predict_error model ~test)
    folds;
  !total /. float_of_int k
