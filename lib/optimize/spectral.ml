open Numerics

type t = {
  basis : Mat.t;
  gamma : Vec.t;
  anchor : float;
}

type projection = {
  coeff : Vec.t;
  yty : float;
}

type scores = { rss : float; roughness : float; edf : float }

let size t = Array.length t.gamma

let factorize ?(anchor = 0.0) ~gram ~penalty () =
  assert (anchor >= 0.0);
  Obs.Span.with_ "spectral.factorize" (fun sp ->
      Obs.Span.set_int sp "n" gram.Mat.rows;
      Obs.Span.set_float sp "anchor" anchor;
      let s =
        if Float.equal anchor 0.0 then gram else Mat.add gram (Mat.scale anchor penalty)
      in
      let gamma, basis = Linalg.generalized_eigen_spd s penalty in
      Obs.Metrics.incr "spectral.factorizations";
      { basis; gamma; anchor })

(* A strictly positive shift that lifts the penalty's scale to ~1e-4 of the
   Gram's: large enough to make S = AᵀWA + λ₀Ω solidly SPD when the Gram
   side is rank-deficient (k-fold training sets smaller than the basis),
   small enough to keep the shifted spectral weights well-conditioned over
   the whole candidate grid. The anchored reparameterization is exact for
   any λ₀, so this constant affects rounding only. *)
let auto_anchor ~gram ~penalty =
  1e-4 *. Float.max 1e-300 (Mat.max_abs gram) /. Float.max 1e-300 (Mat.max_abs penalty)

let factorize_auto ~gram ~penalty =
  factorize ~anchor:(auto_anchor ~gram ~penalty) ~gram ~penalty ()

let project t ~rhs ~yty = { coeff = Mat.tmv t.basis rhs; yty }

let project_data t ~a ~weights ~b =
  let wb = Vec.mul weights b in
  project t ~rhs:(Mat.tmv a wb) ~yty:(Vec.dot b wb)

(* Spectral weight dᵢ(λ) = 1/(1 + (λ−λ₀)γᵢ): the diagonal of
   Bᵀ(AᵀWA + λΩ)⁻ᵀB. The denominator 1 − λ₀γᵢ + λγᵢ can only reach zero
   when the Gram side is singular along eigendirection i AND λ = 0 — the
   same configuration where the direct Cholesky of AᵀWA + λΩ fails — so a
   non-positive denominator maps to the same {!Linalg.Singular} the direct
   path raises. *)
let weight t ~lambda i =
  let denom = 1.0 +. ((lambda -. t.anchor) *. t.gamma.(i)) in
  if denom <= 1e-300 then
    raise (Linalg.Singular "Spectral.weight: singular shifted system")
  else 1.0 /. denom

let solution t proj ~lambda =
  let n = size t in
  assert (Array.length proj.coeff = n);
  let dc = Array.init n (fun i -> weight t ~lambda i *. proj.coeff.(i)) in
  Mat.mv t.basis dc

let evaluate t proj ~lambda =
  let n = size t in
  assert (Array.length proj.coeff = n);
  let rss = ref proj.yty in
  let roughness = ref 0.0 in
  let edf = ref 0.0 in
  for i = 0 to n - 1 do
    let d = weight t ~lambda i in
    let g = t.gamma.(i) in
    (* BᵀNB = I − λ₀Γ for the anchored factorization (N = AᵀWA); the clamp
       removes rounding-level negatives on near-null Gram directions. *)
    let nfac = Float.max 0.0 (1.0 -. (t.anchor *. g)) in
    let c2 = proj.coeff.(i) *. proj.coeff.(i) in
    rss := !rss +. ((((d *. nfac) -. 2.0) *. d) *. c2);
    roughness := !roughness +. (g *. d *. d *. c2);
    edf := !edf +. (d *. nfac)
  done;
  (* Weighted RSS is a difference of same-order terms; near interpolation
     cancellation can push it a hair below zero. *)
  { rss = Float.max 0.0 !rss; roughness = !roughness; edf = !edf }

(* ---------------- cross-solve factorization reuse ---------------- *)

type factorization = t

module Cache = struct
  type entry = { key : string; fact : factorization }

  type t = {
    slots : entry list Atomic.t;
    hit_count : int Atomic.t;
    miss_count : int Atomic.t;
    cap : int;
  }

  let create ?(cap = 64) () =
    assert (cap >= 1);
    {
      slots = Atomic.make [];
      hit_count = Atomic.make 0;
      miss_count = Atomic.make 0;
      cap;
    }

  let hits c = Atomic.get c.hit_count
  let misses c = Atomic.get c.miss_count
  let length c = List.length (Atomic.get c.slots)
  let find c key = List.find_opt (fun e -> String.equal e.key key) (Atomic.get c.slots)

  (* Lock-free insert: CAS-prepend onto an immutable list, retrying on a
     racing writer. Losing a race (or hitting the cap) only means the
     factorization is recomputed next time — it is a pure function of the
     key's content, so every candidate value is bit-identical and the cache
     never affects results, only work. *)
  let insert c key fact =
    let rec attempt () =
      let cur = Atomic.get c.slots in
      if
        List.length cur >= c.cap
        || List.exists (fun e -> String.equal e.key key) cur
      then ()
      else if not (Atomic.compare_and_set c.slots cur ({ key; fact } :: cur)) then
        attempt ()
    in
    attempt ()
end

(* Content hash of the penalized-system inputs the factorization depends
   on: dimensions plus the exact bit patterns of the design, weights and
   penalty entries. Hashing bits (not decimal renderings) makes the key
   exact — two problems collide only if their systems are bit-identical,
   in which case sharing the factorization is the whole point. *)
let problem_key ~a ~weights ~penalty =
  let buf = Buffer.create (8 * (Array.length a.Mat.data + Array.length weights + 16)) in
  Buffer.add_string buf "spectral-v1:";
  let add_int i = Buffer.add_int64_le buf (Int64.of_int i) in
  let add_float x = Buffer.add_int64_le buf (Int64.bits_of_float x) in
  add_int a.Mat.rows;
  add_int a.Mat.cols;
  Array.iter add_float a.Mat.data;
  add_int (Array.length weights);
  Array.iter add_float weights;
  add_int penalty.Mat.rows;
  add_int penalty.Mat.cols;
  Array.iter add_float penalty.Mat.data;
  Digest.to_hex (Digest.bytes (Buffer.to_bytes buf))

let factorize_problem ?cache ~a ~weights ~penalty () =
  let compute () =
    let gram = Ridge.normal_matrix ~a ~weights ~penalty ~lambda:0.0 in
    factorize_auto ~gram ~penalty
  in
  match cache with
  | None -> compute ()
  | Some c -> (
    let key = problem_key ~a ~weights ~penalty in
    match Cache.find c key with
    | Some e ->
      Atomic.incr c.Cache.hit_count;
      Obs.Metrics.incr "spectral.cache_hits";
      e.Cache.fact
    | None ->
      Atomic.incr c.Cache.miss_count;
      Obs.Metrics.incr "spectral.cache_misses";
      let fact = compute () in
      Cache.insert c key fact;
      fact)
