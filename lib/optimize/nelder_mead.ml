open Numerics

type options = { max_iter : int; f_tol : float; x_tol : float }

let default_options = { max_iter = 2000; f_tol = 1e-10; x_tol = 1e-10 }

type result = {
  x : Vec.t;
  f : float;
  iterations : int;
  evaluations : int;
  converged : bool;
}

let minimize ?(options = default_options) ?(initial_step = 0.1) f ~x0 =
  let n = Array.length x0 in
  assert (n >= 1);
  let evaluations = ref 0 in
  let eval x =
    incr evaluations;
    f x
  in
  (* Initial simplex: x0 plus n perturbed vertices. *)
  let vertices =
    Array.init (n + 1) (fun i ->
        if i = 0 then Vec.copy x0
        else begin
          let v = Vec.copy x0 in
          let j = i - 1 in
          v.(j) <- (if Float.equal v.(j) 0.0 then 0.00025 else v.(j) *. (1.0 +. initial_step));
          v
        end)
  in
  let values = Array.map eval vertices in
  let order () =
    let idx = Array.init (n + 1) (fun i -> i) in
    Array.sort (fun a b -> compare values.(a) values.(b)) idx;
    idx
  in
  let iter = ref 0 in
  let converged = ref false in
  while (not !converged) && !iter < options.max_iter do
    incr iter;
    let idx = order () in
    let best = idx.(0) and worst = idx.(n) and second_worst = idx.(n - 1) in
    (* Convergence tests. *)
    let f_spread = Float.abs (values.(worst) -. values.(best)) in
    let x_spread =
      let acc = ref 0.0 in
      for i = 1 to n do
        acc := Float.max !acc (Vec.norm_inf (Vec.sub vertices.(idx.(i)) vertices.(best)))
      done;
      !acc
    in
    if f_spread < options.f_tol && x_spread < options.x_tol then converged := true
    else begin
      (* Centroid of all but the worst. *)
      let centroid = Vec.zeros n in
      for i = 0 to n do
        if i <> worst then Vec.axpy (1.0 /. float_of_int n) vertices.(i) centroid
      done;
      let point coeff =
        Array.init n (fun j -> centroid.(j) +. (coeff *. (centroid.(j) -. vertices.(worst).(j))))
      in
      let reflected = point 1.0 in
      let f_reflected = eval reflected in
      if f_reflected < values.(best) then begin
        (* Try expansion. *)
        let expanded = point 2.0 in
        let f_expanded = eval expanded in
        if f_expanded < f_reflected then begin
          vertices.(worst) <- expanded;
          values.(worst) <- f_expanded
        end
        else begin
          vertices.(worst) <- reflected;
          values.(worst) <- f_reflected
        end
      end
      else if f_reflected < values.(second_worst) then begin
        vertices.(worst) <- reflected;
        values.(worst) <- f_reflected
      end
      else begin
        (* Contraction (outside if the reflection improved on the worst). *)
        let outside = f_reflected < values.(worst) in
        let contracted = point (if outside then 0.5 else -0.5) in
        let f_contracted = eval contracted in
        let accept =
          if outside then f_contracted <= f_reflected else f_contracted < values.(worst)
        in
        if accept then begin
          vertices.(worst) <- contracted;
          values.(worst) <- f_contracted
        end
        else begin
          (* Shrink toward the best vertex. *)
          for i = 0 to n do
            if i <> best then begin
              vertices.(i) <-
                Array.init n (fun j ->
                    vertices.(best).(j) +. (0.5 *. (vertices.(i).(j) -. vertices.(best).(j))));
              values.(i) <- eval vertices.(i)
            end
          done
        end
      end
    end
  done;
  let idx = order () in
  {
    x = vertices.(idx.(0));
    f = values.(idx.(0));
    iterations = !iter;
    evaluations = !evaluations;
    converged = !converged;
  }

let minimize_bounded ?options ?initial_step ~lo ~hi f ~x0 =
  let n = Array.length x0 in
  assert (Array.length lo = n && Array.length hi = n);
  for i = 0 to n - 1 do
    assert (lo.(i) <= hi.(i))
  done;
  let clamp x = Array.init n (fun i -> Float.max lo.(i) (Float.min hi.(i) x.(i))) in
  let wrapped x = f (clamp x) in
  let result = minimize ?options ?initial_step wrapped ~x0 in
  { result with x = clamp result.x; f = f (clamp result.x) }
