(** Nelder–Mead downhill simplex minimization (derivative free), used for
    the paper's §5 application: fitting ODE-model parameters to expression
    data. *)

open Numerics

type options = {
  max_iter : int;
  f_tol : float;  (** stop when the simplex f-spread falls below this *)
  x_tol : float;  (** stop when the simplex diameter falls below this *)
}

val default_options : options

type result = {
  x : Vec.t;
  f : float;
  iterations : int;
  evaluations : int;
  converged : bool;
}

val minimize :
  ?options:options -> ?initial_step:float -> (Vec.t -> float) -> x0:Vec.t -> result
(** Standard reflection/expansion/contraction/shrink simplex started from
    [x0] perturbed by [initial_step] (default 0.1 relative, 0.00025
    absolute for zero coordinates, as in common implementations). *)

val minimize_bounded :
  ?options:options ->
  ?initial_step:float ->
  lo:Vec.t ->
  hi:Vec.t ->
  (Vec.t -> float) ->
  x0:Vec.t ->
  result
(** Box-constrained variant via coordinate clamping inside the objective. *)
