(** Penalized weighted least squares:

    minimize  Σ_m w_m (b_m − (A x)_m)²  +  λ xᵀ P x

    the unconstrained core of the paper's cost (eq. 5), plus diagnostics
    (effective degrees of freedom, GCV score) used for λ selection. *)

open Numerics

type fit = {
  x : Vec.t;
  fitted : Vec.t;  (** A x *)
  residuals : Vec.t;  (** b − A x *)
  rss : float;  (** weighted residual sum of squares *)
  edf : float;  (** effective degrees of freedom, tr(hat matrix) *)
  gcv : float;  (** generalized cross-validation score *)
  lambda : float;
}

val normal_matrix : a:Mat.t -> weights:Vec.t -> penalty:Mat.t -> lambda:float -> Mat.t
(** [AᵀWA + λP] (the quadratic-form matrix of the problem). *)

val solve : a:Mat.t -> b:Vec.t -> ?weights:Vec.t -> penalty:Mat.t -> lambda:float -> unit -> fit
(** Weights default to 1. Requires [lambda >= 0] and a positive-definite
    normal matrix. *)
