open Numerics

type fit = {
  x : Vec.t;
  fitted : Vec.t;
  residuals : Vec.t;
  rss : float;
  edf : float;
  gcv : float;
  lambda : float;
}

let normal_matrix ~a ~weights ~penalty ~lambda =
  let m, n = Mat.dims a in
  assert (Array.length weights = m);
  assert (Mat.dims penalty = (n, n));
  let out = Mat.scale lambda penalty in
  for r = 0 to m - 1 do
    let row = Mat.row a r in
    let w = weights.(r) in
    if not (Float.equal w 0.0) then
      for i = 0 to n - 1 do
        if not (Float.equal row.(i) 0.0) then
          for j = 0 to n - 1 do
            Mat.set out i j (Mat.get out i j +. (w *. row.(i) *. row.(j)))
          done
      done
  done;
  out

let solve ~a ~b ?weights ~penalty ~lambda () =
  assert (lambda >= 0.0);
  let m, _n = Mat.dims a in
  assert (Array.length b = m);
  let weights = match weights with Some w -> w | None -> Vec.ones m in
  let normal = normal_matrix ~a ~weights ~penalty ~lambda in
  (* Right-hand side AᵀWb. *)
  let wb = Vec.mul weights b in
  let rhs = Mat.tmv a wb in
  let factor = Linalg.cholesky_factor normal in
  let x = Linalg.cholesky_solve factor rhs in
  let fitted = Mat.mv a x in
  let residuals = Vec.sub b fitted in
  let rss =
    let acc = ref 0.0 in
    for i = 0 to m - 1 do
      acc := !acc +. (weights.(i) *. residuals.(i) *. residuals.(i))
    done;
    !acc
  in
  (* Effective dof: tr(H) with H = A (AᵀWA+λP)⁻¹ AᵀW
     = Σ_m w_m a_mᵀ (normal)⁻¹ a_m. *)
  let edf = ref 0.0 in
  for r = 0 to m - 1 do
    let row = Mat.row a r in
    let z = Linalg.cholesky_solve factor row in
    edf := !edf +. (weights.(r) *. Vec.dot row z)
  done;
  let mf = float_of_int m in
  let denom = mf -. !edf in
  let gcv = if denom <= 0.0 then Float.infinity else mf *. rss /. (denom *. denom) in
  { x; fitted; residuals; rss; edf = !edf; gcv; lambda }
