(** Embedded experimental reference data.

    The Judd et al. (2003, PNAS) cell-type fractions are a *digitized
    approximation* of the experimental panel reproduced in the paper's
    Fig. 4 (bottom); the original numeric table is not redistributable.
    The digitization preserves the qualitative shapes the validation
    compares: SW low then rising after the first divisions, STE decaying,
    STEPD rising then leveling, STLPD rising late. *)

open Numerics

val judd_times : Vec.t
(** Minutes: 75, 90, 105, 120, 135, 150. *)

val judd_sw : Vec.t
val judd_ste : Vec.t
val judd_stepd : Vec.t
val judd_stlpd : Vec.t

val judd_fractions : Mat.t
(** Rows = times, columns = SW, STE, STEPD, STLPD; each row sums to 1. *)

val ftsz_measurement_times : Vec.t
(** Sampling grid of the McGrath et al. microarray time course (minutes
    0–160 every ~13 min, 13 samples) used for the Fig. 5 experiment. *)

val lv_measurement_times : Vec.t
(** Sampling grid of the Fig. 2/3 experiment: 0–180 minutes every 15. *)

val load_measurements :
  path:string -> (Vec.t * Vec.t * Vec.t option, Csv.error) result
(** Load a measurements CSV with columns [minutes,g[,sigma]] as
    [(times, g, sigmas)], sorted by time (unsorted files are accepted and
    reordered). Malformed files — wrong column count, non-numeric or
    ragged rows — are reported as a structured {!Csv.error}. *)
