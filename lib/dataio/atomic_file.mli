(** Crash-safe file replacement: write to a fresh temp file in the
    destination's directory, flush + [fsync], then [rename] over the final
    path (and best-effort fsync the directory). A reader — or a process
    restarted after SIGKILL — observes either the previous content or the
    complete new content, never a torn prefix.

    This is the designated sink for every durable write in the tree: lint
    rule R9 bans raw [open_out] on final paths everywhere else. *)

val write : string -> (out_channel -> unit) -> unit
(** [write path body] replaces [path] atomically with whatever [body]
    writes to the channel. On exception from [body] the temp file is
    removed and [path] is untouched; the exception is re-raised. *)

val write_string : string -> string -> unit
(** [write_string path s] is [write path] of exactly [s]. *)
