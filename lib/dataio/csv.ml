type error = { line : int; column : int; message : string }

exception Parse_error of error

let error_to_string e = Printf.sprintf "line %d, column %d: %s" e.line e.column e.message

let write ~path ~header ~rows =
  Atomic_file.write path (fun oc ->
      if header <> [] then output_string oc (String.concat "," header ^ "\n");
      List.iter
        (fun row ->
          let fields = Array.to_list (Array.map (Printf.sprintf "%.10g") row) in
          output_string oc (String.concat "," fields ^ "\n"))
        rows)

let write_columns ~path ~header ~columns =
  match columns with
  | [] -> write ~path ~header ~rows:[]
  | first :: rest ->
    let n = Array.length first in
    List.iter (fun c -> assert (Array.length c = n)) rest;
    let rows =
      List.init n (fun i -> Array.of_list (List.map (fun c -> c.(i)) columns))
    in
    write ~path ~header ~rows

let parse_line line = String.split_on_char ',' (String.trim line)

let is_number s = match float_of_string_opt (String.trim s) with Some _ -> true | None -> false

(* Parse one data line; [lineno] is the 1-based physical line number used in
   error reports. *)
let parse_row ~lineno ~expected_width fields =
  let width = List.length fields in
  match expected_width with
  | Some w when width <> w ->
    (* Point at the first offending field: the first extra one when the row
       is too long, the first missing one when it is too short. *)
    Error
      { line = lineno; column = Stdlib.min width w + 1;
        message = Printf.sprintf "row has %d fields, expected %d" width w }
  | _ ->
    let row = Array.make width 0.0 in
    let rec fill j = function
      | [] -> Ok row
      | f :: rest -> (
        match float_of_string_opt (String.trim f) with
        | Some v ->
          row.(j) <- v;
          fill (j + 1) rest
        | None ->
          Error
            { line = lineno; column = j + 1;
              message = Printf.sprintf "%S is not a number" (String.trim f) })
    in
    fill 0 fields

let read_result ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (* Keep physical line numbers alongside non-blank lines. *)
      let lines = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           if String.trim line <> "" then lines := (!lineno, line) :: !lines
         done
       with End_of_file -> ());
      match List.rev !lines with
      | [] -> Ok ([], [])
      | (first_no, first) :: rest ->
        let first_fields = parse_line first in
        let has_header = List.exists (fun f -> not (is_number f)) first_fields in
        let header = if has_header then first_fields else [] in
        let data_lines = if has_header then rest else (first_no, first) :: rest in
        let rec go acc expected_width = function
          | [] -> Ok (header, List.rev acc)
          | (lineno, line) :: rest -> (
            match parse_row ~lineno ~expected_width (parse_line line) with
            | Error e -> Error e
            | Ok row -> go (row :: acc) (Some (Array.length row)) rest)
        in
        go [] None data_lines)

let read ~path =
  match read_result ~path with Ok r -> r | Error e -> raise (Parse_error e)

let read_columns_result ~path =
  match read_result ~path with
  | Error e -> Error e
  | Ok (header, rows) -> (
    match rows with
    | [] -> Ok (header, [])
    | first :: _ ->
      (* Equal widths are guaranteed by read_result. *)
      let n_cols = Array.length first in
      let columns =
        List.init n_cols (fun j -> Array.of_list (List.map (fun r -> r.(j)) rows))
      in
      Ok (header, columns))

let read_columns ~path =
  match read_columns_result ~path with Ok r -> r | Error e -> raise (Parse_error e)
