let write ~path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      if header <> [] then output_string oc (String.concat "," header ^ "\n");
      List.iter
        (fun row ->
          let fields = Array.to_list (Array.map (Printf.sprintf "%.10g") row) in
          output_string oc (String.concat "," fields ^ "\n"))
        rows)

let write_columns ~path ~header ~columns =
  match columns with
  | [] -> write ~path ~header ~rows:[]
  | first :: rest ->
    let n = Array.length first in
    List.iter (fun c -> assert (Array.length c = n)) rest;
    let rows =
      List.init n (fun i -> Array.of_list (List.map (fun c -> c.(i)) columns))
    in
    write ~path ~header ~rows

let parse_line line = String.split_on_char ',' (String.trim line)

let is_number s = match float_of_string_opt (String.trim s) with Some _ -> true | None -> false

let read ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then lines := line :: !lines
         done
       with End_of_file -> ());
      match List.rev !lines with
      | [] -> ([], [])
      | first :: rest ->
        let first_fields = parse_line first in
        let has_header = List.exists (fun f -> not (is_number f)) first_fields in
        let header = if has_header then first_fields else [] in
        let data_lines = if has_header then rest else first :: rest in
        let rows =
          List.map
            (fun line ->
              Array.of_list (List.map (fun f -> float_of_string (String.trim f)) (parse_line line)))
            data_lines
        in
        (header, rows))

let read_columns ~path =
  let header, rows = read ~path in
  match rows with
  | [] -> (header, [])
  | first :: _ ->
    let n_cols = Array.length first in
    List.iter (fun r -> assert (Array.length r = n_cols)) rows;
    let columns =
      List.init n_cols (fun j -> Array.of_list (List.map (fun r -> r.(j)) rows))
    in
    (header, columns)
