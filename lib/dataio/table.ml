type t = { title : string; headers : string list; mutable rows : float array list }

let create ~title ~headers = { title; headers; rows = [] }

let add_row t row =
  assert (Array.length row = List.length t.headers);
  t.rows <- row :: t.rows

let add_rows t columns =
  match columns with
  | [] -> ()
  | first :: rest ->
    let n = Array.length first in
    List.iter (fun c -> assert (Array.length c = n)) rest;
    for i = 0 to n - 1 do
      add_row t (Array.of_list (List.map (fun c -> c.(i)) columns))
    done

let to_string ?(precision = 4) t =
  let buf = Buffer.create 1024 in
  let rows = List.rev t.rows in
  let cells = List.map (fun r -> Array.to_list (Array.map (Printf.sprintf "%.*g" precision) r)) rows in
  let widths =
    List.mapi
      (fun j h ->
        List.fold_left (fun w row -> Stdlib.max w (String.length (List.nth row j)))
          (String.length h) cells)
      t.headers
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let pad width s = String.make (width - String.length s) ' ' ^ s in
  List.iteri
    (fun j h ->
      if j > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (pad (List.nth widths j) h))
    t.headers;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      List.iteri
        (fun j cell ->
          if j > 0 then Buffer.add_string buf "  ";
          Buffer.add_string buf (pad (List.nth widths j) cell))
        row;
      Buffer.add_char buf '\n')
    cells;
  Buffer.contents buf

let output ?precision oc t = output_string oc (to_string ?precision t)

let of_csv ~path =
  match Csv.read_result ~path with
  | Error e -> Error e
  | Ok (header, rows) ->
    let width = match rows with [] -> List.length header | r :: _ -> Array.length r in
    if header <> [] && List.length header <> width then
      Error
        { Csv.line = 1; column = width + 1;
          message =
            Printf.sprintf "header has %d fields but rows have %d" (List.length header) width }
    else begin
      let headers =
        if header <> [] then header else List.init width (fun j -> Printf.sprintf "c%d" (j + 1))
      in
      let t = create ~title:(Filename.basename path) ~headers in
      List.iter (add_row t) rows;
      Ok t
    end
