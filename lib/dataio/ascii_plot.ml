open Numerics

type series = { label : string; glyph : char; xs : Vec.t; ys : Vec.t }

let render ?(width = 72) ?(height = 20) ?title series =
  assert (width >= 16 && height >= 4);
  let all_x = Vec.concat (List.map (fun s -> s.xs) series) in
  let all_y = Vec.concat (List.map (fun s -> s.ys) series) in
  if Array.length all_x = 0 then "(empty plot)\n"
  else begin
    let x_min = Vec.min all_x and x_max = Vec.max all_x in
    let y_min = Float.min 0.0 (Vec.min all_y) and y_max = Vec.max all_y in
    let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
    let y_span = if y_max > y_min then y_max -. y_min else 1.0 in
    let canvas = Array.make_matrix height width ' ' in
    (* Axes: bottom row and left column. *)
    for j = 0 to width - 1 do
      canvas.(height - 1).(j) <- '-'
    done;
    for i = 0 to height - 1 do
      canvas.(i).(0) <- '|'
    done;
    canvas.(height - 1).(0) <- '+';
    List.iter
      (fun s ->
        assert (Array.length s.xs = Array.length s.ys);
        Array.iteri
          (fun k x ->
            let y = s.ys.(k) in
            let col = 1 + int_of_float ((x -. x_min) /. x_span *. float_of_int (width - 2)) in
            let row =
              height - 2 - int_of_float ((y -. y_min) /. y_span *. float_of_int (height - 2))
            in
            let col = Stdlib.max 1 (Stdlib.min (width - 1) col) in
            let row = Stdlib.max 0 (Stdlib.min (height - 2) row) in
            canvas.(row).(col) <- s.glyph)
          s.xs)
      series;
    let buf = Buffer.create (width * height * 2) in
    (match title with Some t -> Buffer.add_string buf (t ^ "\n") | None -> ());
    Buffer.add_string buf (Printf.sprintf "y: %.3g .. %.3g\n" y_min y_max);
    Array.iter
      (fun row ->
        Buffer.add_string buf (String.init width (Array.get row));
        Buffer.add_char buf '\n')
      canvas;
    Buffer.add_string buf (Printf.sprintf "x: %.3g .. %.3g\n" x_min x_max);
    List.iter
      (fun s -> Buffer.add_string buf (Printf.sprintf "  %c = %s\n" s.glyph s.label))
      series;
    Buffer.contents buf
  end

let output ?width ?height ?title oc series =
  output_string oc (render ?width ?height ?title series)
