open Numerics

let judd_times = [| 75.0; 90.0; 105.0; 120.0; 135.0; 150.0 |]

(* Digitized approximation of Judd et al. 2003 as reproduced in the paper's
   Fig. 4 (bottom panel); rows sum to 1. *)
let judd_sw = [| 0.03; 0.03; 0.04; 0.06; 0.12; 0.22 |]
let judd_ste = [| 0.80; 0.65; 0.45; 0.28; 0.18; 0.12 |]
let judd_stepd = [| 0.15; 0.28; 0.40; 0.47; 0.42; 0.35 |]
let judd_stlpd = [| 0.02; 0.04; 0.11; 0.19; 0.28; 0.31 |]

let judd_fractions =
  Mat.init 6 4 (fun i j ->
      match j with
      | 0 -> judd_sw.(i)
      | 1 -> judd_ste.(i)
      | 2 -> judd_stepd.(i)
      | _ -> judd_stlpd.(i))

let ftsz_measurement_times = Array.init 13 (fun i -> float_of_int i *. 160.0 /. 12.0)

let lv_measurement_times = Array.init 13 (fun i -> float_of_int i *. 15.0)

let load_measurements ~path =
  match Csv.read_columns_result ~path with
  | Error e -> Error e
  | Ok (_, columns) -> (
    let sorted times g sigmas =
      (* Accept unsorted files: order all columns by time. *)
      let order = Array.init (Array.length times) Fun.id in
      Array.sort (fun a b -> compare times.(a) times.(b)) order;
      let reorder v = Array.map (fun i -> v.(i)) order in
      Ok (reorder times, reorder g, Option.map reorder sigmas)
    in
    match columns with
    | [ t; g ] -> sorted t g None
    | [ t; g; s ] -> sorted t g (Some s)
    | cols ->
      Error
        { Csv.line = 1; column = List.length cols;
          message =
            Printf.sprintf "expected 2 or 3 columns (minutes,g[,sigma]), found %d"
              (List.length cols) })
