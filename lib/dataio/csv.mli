(** Minimal CSV reading/writing (no quoting — numeric tables only).

    Reading comes in two flavours: [_result] functions report malformed
    input as a structured {!error} (1-based line and column of the
    offending field), and the plain functions raise {!Parse_error} carrying
    the same value — never a bare [Failure]. *)

open Numerics

type error = {
  line : int;  (** 1-based physical line number in the file *)
  column : int;  (** 1-based field index within the line *)
  message : string;
}

exception Parse_error of error

val error_to_string : error -> string

val write : path:string -> header:string list -> rows:float array list -> unit
(** Each row is one line; header names the columns. *)

val write_columns : path:string -> header:string list -> columns:Vec.t list -> unit
(** Transposed convenience: all columns must have equal length. *)

val read_result : path:string -> (string list * float array list, error) result
(** Returns [(header, rows)]. The first line is taken as a header when any
    of its fields fails to parse as a number; otherwise the header is
    empty. Every data row must have the same number of fields and every
    field must parse as a number, else the [error] pinpoints the first
    offending line and column. *)

val read : path:string -> string list * float array list
(** As {!read_result}, raising {!Parse_error} on malformed input. *)

val read_columns_result : path:string -> (string list * Vec.t list, error) result

val read_columns : path:string -> string list * Vec.t list
(** As {!read_columns_result}, raising {!Parse_error} on malformed input. *)
