(** Minimal CSV reading/writing (no quoting — numeric tables only). *)

open Numerics

val write : path:string -> header:string list -> rows:float array list -> unit
(** Each row is one line; header names the columns. *)

val write_columns : path:string -> header:string list -> columns:Vec.t list -> unit
(** Transposed convenience: all columns must have equal length. *)

val read : path:string -> string list * float array list
(** Returns [(header, rows)]. The first line is taken as a header when any
    of its fields fails to parse as a number; otherwise the header is
    empty. *)

val read_columns : path:string -> string list * Vec.t list
