(** Terminal line plots so the runnable examples can show the figures
    without a graphics stack. *)

open Numerics

type series = { label : string; glyph : char; xs : Vec.t; ys : Vec.t }

val render :
  ?width:int -> ?height:int -> ?title:string -> series list -> string
(** A fixed-size character canvas with axis ranges fitted to the data,
    y-axis labels on the left, and a legend line per series. Later series
    draw over earlier ones where they collide. *)

val output : ?width:int -> ?height:int -> ?title:string -> out_channel -> series list -> unit
(** Write the rendered plot to an explicit channel (library code never
    writes to [stdout] implicitly — lint rule R5). *)
