(** Terminal line plots so the runnable examples can show the figures
    without a graphics stack. *)

open Numerics

type series = { label : string; glyph : char; xs : Vec.t; ys : Vec.t }

val render :
  ?width:int -> ?height:int -> ?title:string -> series list -> string
(** A fixed-size character canvas with axis ranges fitted to the data,
    y-axis labels on the left, and a legend line per series. Later series
    draw over earlier ones where they collide. *)

val print : ?width:int -> ?height:int -> ?title:string -> series list -> unit
