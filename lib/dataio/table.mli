(** Aligned text tables for the benchmark harness — each experiment prints
    the series a paper figure plots as rows of a table. *)

open Numerics

type t

val create : title:string -> headers:string list -> t

val add_row : t -> float array -> unit
val add_rows : t -> Vec.t list -> unit
(** Columns, transposed into rows (equal lengths required). *)

val to_string : ?precision:int -> t -> string
(** Render with a title line, a header line and aligned numeric columns. *)

val output : ?precision:int -> out_channel -> t -> unit
(** Write the rendered table to an explicit channel. Library code never
    writes to [stdout] implicitly (lint rule R5); callers in [bin/] and
    [bench/] pass the channel they own. *)

val of_csv : path:string -> (t, Csv.error) result
(** Load a numeric CSV as a table (title = file basename; columns named
    c1, c2, ... when the file has no header). Malformed input is reported
    as a structured {!Csv.error} rather than an exception. *)
