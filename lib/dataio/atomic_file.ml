(* The one module allowed to open a final output path for writing (lint
   rule R9): everything durable goes through a same-directory temp file
   that is flushed, fsync'd and renamed over the destination, so readers
   and crash recovery only ever observe either the old or the complete
   new content. *)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    let finally () = Unix.close fd in
    Fun.protect ~finally (fun () ->
        try Unix.fsync fd
        with Unix.Unix_error _ ->
          (* Some filesystems refuse fsync on a directory fd; the rename
             itself is still atomic, only its durability is best-effort. *)
          ())
  | exception Unix.Unix_error _ -> ()

let write path body =
  let dir = Filename.dirname path in
  let tmp =
    Filename.temp_file ~temp_dir:dir ("." ^ Filename.basename path ^ ".") ".tmp"
  in
  match
    (* lint: allow R9 -- this is the atomic helper itself; [tmp] is a fresh
       temp file in the destination directory, renamed below *)
    let oc = open_out_bin tmp in
    let finally () = close_out_noerr oc in
    Fun.protect ~finally (fun () ->
        body oc;
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc));
    Sys.rename tmp path;
    fsync_dir dir
  with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let write_string path s = write path (fun oc -> output_string oc s)
