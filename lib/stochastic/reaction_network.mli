(** Mass-action chemical reaction networks — the substrate for exact
    stochastic simulation of single-cell kinetics (the intrinsic noise that
    the paper's asynchronous variability is defined *against*, §1). *)

type reaction = {
  reactants : (int * int) list;  (** (species index, stoichiometry) *)
  products : (int * int) list;
  rate : float;  (** stochastic rate constant *)
}

type t = {
  species : string array;
  reactions : reaction array;
}

val create : species:string list -> reactions:reaction list -> t
(** Validates species indices and non-negative rates. *)

val num_species : t -> int

val propensity : reaction -> int array -> float
(** Mass-action propensity: rate × Π binomial-style falling factorials
    (x·(x−1)/2 for a homodimer reactant, etc.). *)

val total_propensity : t -> int array -> float

val apply : reaction -> int array -> unit
(** Fire the reaction once, updating copy numbers in place; asserts that
    no count goes negative. *)

val net_change : t -> reaction -> int array
(** Stoichiometric change vector of one firing. *)

val deterministic_rhs : t -> volume:float -> Numerics.Ode.system
(** The mean-field ODE limit: concentrations c = x/volume with mass-action
    rates (bimolecular propensities scale as 1/volume). Used to check SSA
    means against the corresponding ODE model. *)
