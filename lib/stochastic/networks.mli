(** Canonical reaction networks used in tests and experiments. *)

val birth_death : birth:float -> death:float -> Reaction_network.t
(** ∅ →(birth) X, X →(death) ∅. Stationary distribution Poisson(birth/death);
    species: [X]. *)

val lotka_volterra :
  a:float -> b:float -> c:float -> d:float -> volume:float -> Reaction_network.t
(** The stochastic counterpart of the paper's oscillator (eqs. 20–21) in a
    reaction volume Ω:

    - prey birth:      X1 → 2·X1 at rate a
    - predation:       X1 + X2 → X2 at stochastic rate b/Ω
    - predator birth:  X1 + X2 → X1 + 2·X2 at stochastic rate c/Ω
    - predator death:  X2 → ∅ at rate d

    Copy-number means n_i/Ω follow the deterministic LV equations; larger Ω
    means smaller intrinsic noise. Species: [x1; x2]. *)

val concentrations_to_counts : volume:float -> Numerics.Vec.t -> int array
(** Round concentrations into copy numbers for a given volume. *)

val telegraph :
  k_on:float -> k_off:float -> k_transcribe:float -> k_degrade:float -> Reaction_network.t
(** Two-state gene expression: a promoter switches OFF↔ON and transcribes
    only when ON; transcripts degrade first-order. Stationary mean mRNA =
    (k_transcribe/k_degrade) · k_on/(k_on + k_off).
    Species: [gene_off; gene_on; mrna]. *)
