(** Exact stochastic simulation (Gillespie's direct method) and approximate
    tau-leaping for mass-action reaction networks. *)

open Numerics

type trajectory = {
  times : Vec.t;  (** event (or leap) times, starting at t0 *)
  states : int array array;  (** copy numbers after each recorded time *)
}

val direct :
  ?max_events:int ->
  Reaction_network.t ->
  rng:Rng.t ->
  x0:int array ->
  t0:float ->
  t1:float ->
  trajectory
(** Exact SSA from [t0] to [t1] (or until [max_events], default 1e6, or
    propensity exhaustion). The final recorded time is always [t1] with the
    last state, so sampling is safe up to [t1]. *)

val tau_leap :
  Reaction_network.t ->
  rng:Rng.t ->
  x0:int array ->
  t0:float ->
  t1:float ->
  tau:float ->
  trajectory
(** Fixed-step tau-leaping with Poisson firing counts; negative excursions
    are clamped to zero (adequate for the well-populated systems used
    here). *)

val value_at : trajectory -> species:int -> float -> float
(** Piecewise-constant lookup of a species' copy number at a time. *)

val sample : trajectory -> times:Vec.t -> Mat.t
(** Piecewise-constant sampling of all species on a time grid
    (rows = times, columns = species). *)

val mean_trajectory :
  ?runs:int ->
  Reaction_network.t ->
  rng:Rng.t ->
  x0:int array ->
  times:Vec.t ->
  Mat.t
(** Ensemble mean of [runs] (default 100) exact simulations sampled on a
    common grid — converges to the mean-field ODE for large copy
    numbers. *)
