open Numerics

type trajectory = {
  times : Vec.t;
  states : int array array;
}

let direct ?(max_events = 1_000_000) network ~rng ~x0 ~t0 ~t1 =
  assert (t1 > t0);
  assert (Array.length x0 = Reaction_network.num_species network);
  let state = Array.copy x0 in
  let times = ref [ t0 ] in
  let states = ref [ Array.copy state ] in
  let t = ref t0 in
  let events = ref 0 in
  let running = ref true in
  while !running && !events < max_events do
    let total = Reaction_network.total_propensity network state in
    if total <= 0.0 then running := false
    else begin
      let dt = Rng.exponential rng ~rate:total in
      if !t +. dt >= t1 then running := false
      else begin
        t := !t +. dt;
        (* Select the firing channel proportionally to its propensity. *)
        let target = Rng.float rng *. total in
        let acc = ref 0.0 in
        let chosen = ref None in
        Array.iter
          (fun r ->
            if !chosen = None then begin
              acc := !acc +. Reaction_network.propensity r state;
              if !acc >= target then chosen := Some r
            end)
          network.Reaction_network.reactions;
        (match !chosen with
        | Some r -> Reaction_network.apply r state
        | None ->
          (* Round-off corner: fire the last reaction with positive propensity. *)
          let last = ref None in
          Array.iter
            (fun r -> if Reaction_network.propensity r state > 0.0 then last := Some r)
            network.Reaction_network.reactions;
          Option.iter (fun r -> Reaction_network.apply r state) !last);
        times := !t :: !times;
        states := Array.copy state :: !states;
        incr events
      end
    end
  done;
  times := t1 :: !times;
  states := Array.copy state :: !states;
  { times = Vec.of_list (List.rev !times); states = Array.of_list (List.rev !states) }

let tau_leap network ~rng ~x0 ~t0 ~t1 ~tau =
  assert (tau > 0.0 && t1 > t0);
  let state = Array.copy x0 in
  let n_steps = int_of_float (Float.ceil ((t1 -. t0) /. tau)) in
  let times = Array.make (n_steps + 1) t0 in
  let states = Array.make (n_steps + 1) (Array.copy state) in
  let deltas =
    Array.map (Reaction_network.net_change network) network.Reaction_network.reactions
  in
  for step = 1 to n_steps do
    let t = Float.min t1 (t0 +. (tau *. float_of_int step)) in
    let dt = t -. times.(step - 1) in
    let firings =
      Array.map
        (fun r ->
          let a = Reaction_network.propensity r state in
          if a <= 0.0 then 0 else Rng.poisson rng ~lambda:(a *. dt))
        network.Reaction_network.reactions
    in
    Array.iteri
      (fun ri count ->
        if count > 0 then
          Array.iteri
            (fun si d -> state.(si) <- Stdlib.max 0 (state.(si) + (d * count)))
            deltas.(ri))
      firings;
    times.(step) <- t;
    states.(step) <- Array.copy state
  done;
  { times; states }

let value_at trajectory ~species t =
  let n = Array.length trajectory.times in
  if t <= trajectory.times.(0) then float_of_int trajectory.states.(0).(species)
  else if t >= trajectory.times.(n - 1) then float_of_int trajectory.states.(n - 1).(species)
  else begin
    let i = Interp.bracket trajectory.times t in
    float_of_int trajectory.states.(i).(species)
  end

let sample trajectory ~times =
  let n_species = Array.length trajectory.states.(0) in
  Mat.init (Array.length times) n_species (fun m s -> value_at trajectory ~species:s times.(m))

let mean_trajectory ?(runs = 100) network ~rng ~x0 ~times =
  assert (runs > 0);
  let n_t = Array.length times in
  let n_s = Reaction_network.num_species network in
  let acc = Mat.zeros n_t n_s in
  for _ = 1 to runs do
    let trajectory =
      direct network ~rng:(Rng.split rng) ~x0 ~t0:times.(0) ~t1:(times.(n_t - 1) +. 1e-9)
    in
    let sampled = sample trajectory ~times in
    for i = 0 to n_t - 1 do
      for j = 0 to n_s - 1 do
        Mat.set acc i j (Mat.get acc i j +. Mat.get sampled i j)
      done
    done
  done;
  Mat.scale (1.0 /. float_of_int runs) acc
