type reaction = {
  reactants : (int * int) list;
  products : (int * int) list;
  rate : float;
}

type t = {
  species : string array;
  reactions : reaction array;
}

let create ~species ~reactions =
  let species = Array.of_list species in
  let n = Array.length species in
  assert (n > 0);
  List.iter
    (fun r ->
      assert (r.rate >= 0.0);
      List.iter
        (fun (idx, stoich) ->
          assert (idx >= 0 && idx < n);
          assert (stoich > 0))
        (r.reactants @ r.products))
    reactions;
  { species; reactions = Array.of_list reactions }

let num_species t = Array.length t.species

(* Falling-factorial combinatorial count: x choose-ordered stoich. *)
let falling x stoich =
  let rec go acc x k = if k = 0 then acc else go (acc *. float_of_int x) (x - 1) (k - 1) in
  if x < stoich then 0.0 else go 1.0 x stoich

let rec factorial = function 0 | 1 -> 1 | n -> n * factorial (n - 1)

(* Propensity uses the combinatorial count of distinct reactant tuples:
   C(x, s) per species with stoichiometry s. *)
let propensity r state =
  List.fold_left
    (fun acc (idx, stoich) ->
      acc *. falling state.(idx) stoich /. float_of_int (factorial stoich))
    r.rate r.reactants

let total_propensity t state =
  Array.fold_left (fun acc r -> acc +. propensity r state) 0.0 t.reactions

let apply r state =
  List.iter (fun (idx, stoich) -> state.(idx) <- state.(idx) - stoich) r.reactants;
  List.iter (fun (idx, stoich) -> state.(idx) <- state.(idx) + stoich) r.products;
  Array.iter (fun x -> assert (x >= 0)) state

let net_change t r =
  let delta = Array.make (num_species t) 0 in
  List.iter (fun (idx, stoich) -> delta.(idx) <- delta.(idx) - stoich) r.reactants;
  List.iter (fun (idx, stoich) -> delta.(idx) <- delta.(idx) + stoich) r.products;
  delta

let deterministic_rhs t ~volume : Numerics.Ode.system =
  assert (volume > 0.0);
  let deltas = Array.map (net_change t) t.reactions in
  fun _t concentrations ->
    let dydt = Array.make (num_species t) 0.0 in
    Array.iteri
      (fun ri r ->
        (* Concentration-space mass-action flux: rate × Π c_i^stoich, with
           the stochastic bimolecular 1/volume factors already folded into
           the concentration form. *)
        let order = List.fold_left (fun acc (_, s) -> acc + s) 0 r.reactants in
        let scale = volume ** float_of_int (order - 1) in
        let flux =
          List.fold_left
            (fun acc (idx, stoich) ->
              acc *. (Float.max 0.0 concentrations.(idx) ** float_of_int stoich))
            (r.rate *. scale) r.reactants
        in
        Array.iteri (fun si d -> dydt.(si) <- dydt.(si) +. (float_of_int d *. flux)) deltas.(ri))
      t.reactions;
    dydt
