let birth_death ~birth ~death =
  Reaction_network.create ~species:[ "X" ]
    ~reactions:
      [
        { Reaction_network.reactants = []; products = [ (0, 1) ]; rate = birth };
        { Reaction_network.reactants = [ (0, 1) ]; products = []; rate = death };
      ]

let lotka_volterra ~a ~b ~c ~d ~volume =
  assert (volume > 0.0);
  Reaction_network.create ~species:[ "x1"; "x2" ]
    ~reactions:
      [
        (* Prey birth: X1 -> 2 X1. *)
        { Reaction_network.reactants = [ (0, 1) ]; products = [ (0, 2) ]; rate = a };
        (* Predation removes prey: X1 + X2 -> X2. *)
        { Reaction_network.reactants = [ (0, 1); (1, 1) ]; products = [ (1, 1) ];
          rate = b /. volume };
        (* Predator birth fueled by prey: X1 + X2 -> X1 + 2 X2. *)
        { Reaction_network.reactants = [ (0, 1); (1, 1) ]; products = [ (0, 1); (1, 2) ];
          rate = c /. volume };
        (* Predator death: X2 -> 0. *)
        { Reaction_network.reactants = [ (1, 1) ]; products = []; rate = d };
      ]

let concentrations_to_counts ~volume concentrations =
  Array.map (fun c -> Stdlib.max 0 (int_of_float (Float.round (c *. volume)))) concentrations

let telegraph ~k_on ~k_off ~k_transcribe ~k_degrade =
  Reaction_network.create ~species:[ "gene_off"; "gene_on"; "mrna" ]
    ~reactions:
      [
        { Reaction_network.reactants = [ (0, 1) ]; products = [ (1, 1) ]; rate = k_on };
        { Reaction_network.reactants = [ (1, 1) ]; products = [ (0, 1) ]; rate = k_off };
        { Reaction_network.reactants = [ (1, 1) ]; products = [ (1, 1); (2, 1) ];
          rate = k_transcribe };
        { Reaction_network.reactants = [ (2, 1) ]; products = []; rate = k_degrade };
      ]
