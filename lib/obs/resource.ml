(* GC statistics come from [Gc.quick_stat] — the cheap variant that does
   not force a heap traversal — so a 1 Hz heartbeat perturbs the mutator
   it is watching as little as possible. *)
let gc_fields () =
  let q = Gc.quick_stat () in
  [
    ("minor_words", q.Gc.minor_words);
    ("promoted_words", q.Gc.promoted_words);
    ("major_words", q.Gc.major_words);
    ("major_collections", float_of_int q.Gc.major_collections);
    ("minor_collections", float_of_int q.Gc.minor_collections);
    ("heap_words", float_of_int q.Gc.heap_words);
  ]

(* /proc/self/statm is Linux-only: "size resident shared ..." in pages.
   The kernel does not tell us the page size through this file and the
   Unix module has no sysconf binding, so rss_pages is the raw reading
   and rss_bytes assumes the near-universal 4 KiB page. On platforms
   without procfs both fields are simply absent from the sample. *)
let rss_fields () =
  match In_channel.with_open_text "/proc/self/statm" In_channel.input_line with
  | Some line -> (
    match String.split_on_char ' ' (String.trim line) with
    | _size :: resident :: _ -> (
      match float_of_string_opt resident with
      | Some pages when Float.is_finite pages && pages >= 0.0 ->
        [ ("rss_pages", pages); ("rss_bytes", pages *. 4096.0) ]
      | _ -> [])
    | _ -> [])
  | None | (exception Sys_error _) -> []

let read () = gc_fields () @ rss_fields ()

let sample () =
  if Export.tracing () then
    Export.emit (Export.Sample { Export.s_kind = "resource"; t_s = Clock.now (); values = read () })

(* ---------------- interval logic ---------------- *)

(* The ticker is plain arithmetic over caller-supplied readings, so the
   scheduling policy is testable under [Clock.manual] without spawning
   anything. Missed ticks are skipped, not replayed: after a long stall
   the next deadline lands strictly in the future, so a slow sampler
   emits at most one catch-up sample rather than a burst. *)
type ticker = { period : float; mutable next : float }

let ticker ~period ~now =
  if not (Float.is_finite period && period > 0.0) then
    invalid_arg "Obs.Resource.ticker: period must be finite and > 0";
  { period; next = now +. period }

let due t ~now =
  if now < t.next then false
  else begin
    let missed = Float.floor ((now -. t.next) /. t.period) in
    t.next <- t.next +. ((missed +. 1.0) *. t.period);
    true
  end

(* ---------------- sampler domain ---------------- *)

type sampler = { stop_flag : bool Atomic.t; domain : unit Domain.t }

(* Wake at a fraction of the period (capped at 50 ms) so [stop] is
   responsive without busy-waiting; the ticker decides whether a wakeup
   actually samples. *)
let quantum period = Float.min 0.05 (period /. 4.0)

let start ?(period_s = 1.0) () =
  if not (Float.is_finite period_s && period_s > 0.0) then
    invalid_arg "Obs.Resource.start: period_s must be finite and > 0";
  sample ();
  let stop_flag = Atomic.make false in
  let domain =
    (* lint: allow R11 -- the sampler body only reads GC counters and
       procfs and emits through the mutex-serialized Export sink; it
       can neither observe nor perturb numeric results *)
    Domain.spawn (fun () ->
        let t = ticker ~period:period_s ~now:(Clock.now ()) in
        while not (Atomic.get stop_flag) do
          Unix.sleepf (quantum period_s);
          if due t ~now:(Clock.now ()) then sample ()
        done)
  in
  { stop_flag; domain }

let stop s =
  Atomic.set s.stop_flag true;
  Domain.join s.domain;
  sample ()
