(** Solution-quality diagnostics on the trace stream.

    A [Diag.t] is one quality record — condition number, selected λ and
    effective degrees of freedom, residual whiteness statistics, active
    constraint counts, the λ-candidate profile, the robust-cascade path —
    emitted by the solving layers ({!Solver.solve_robust} and friends in
    lib/core) and consumed by [deconv-cli diagnose] / [trace diff].

    Like every other event, emission is free when no sink is installed:
    [emit] (and the callers' stat computations, which they guard with
    {!enabled}) cost a single branch. The JSONL form
    [{"ev":"diag",...}] round-trips floats exactly (see
    {!Export.float_json}). *)

type t = Export.diag = {
  d_solve : string;
  d_stage : string;
  d_values : (string * float) list;
  d_tags : (string * string) list;
  d_curve : (float * float) array;
}

val enabled : unit -> bool
(** Alias of {!Export.tracing}: whether emitting (and therefore computing)
    diagnostics is worthwhile. Callers hoist expensive statistics — edf,
    condition numbers, residual tests — behind this branch. *)

val with_solve : string -> (unit -> 'a) -> 'a
(** Scope an ambient solve label (e.g. ["gene:12"]) around a solve: diag
    records built inside (without an explicit [?solve]) adopt it. The
    label is domain-local, so parallel batch genes on worker domains
    cannot race each other's labels. *)

val solve_label : unit -> string
(** The ambient label, or ["solve"] outside any {!with_solve} scope. *)

val make :
  ?solve:string ->
  stage:string ->
  ?values:(string * float) list ->
  ?tags:(string * string) list ->
  ?curve:(float * float) array ->
  unit ->
  t
(** [solve] defaults to {!solve_label} — ["solve"] on the single-profile
    CLI path, the enclosing {!with_solve} label under a batch. *)

val emit : t -> unit
(** Hand the record to the active sink; one branch when none is installed. *)

val value : t -> string -> float option
val tag : t -> string -> string option

val of_events : Export.event list -> t list
(** All diag records in the stream, in emission order. *)

val by_solve : Export.event list -> (string * t list) list
(** Diag records grouped by solve id, groups in first-seen order and
    records within a group in emission order. *)

val stage : t list -> string -> t option
(** First record of the given stage within one solve's group. *)
