type t = Export.diag = {
  d_solve : string;
  d_stage : string;
  d_values : (string * float) list;
  d_tags : (string * string) list;
  d_curve : (float * float) array;
}

let enabled = Export.tracing

(* The ambient solve label is domain-local: batch genes run on worker
   domains, and each domain's tasks set their own label without racing
   the others (same device as Span's per-domain stack). *)
let solve_key : string option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let with_solve name f =
  let cell = Domain.DLS.get solve_key in
  let saved = !cell in
  cell := Some name;
  Fun.protect ~finally:(fun () -> cell := saved) f

let solve_label () =
  match !(Domain.DLS.get solve_key) with Some s -> s | None -> "solve"

let make ?solve ~stage ?(values = []) ?(tags = []) ?(curve = [||]) () =
  let solve = match solve with Some s -> s | None -> solve_label () in
  { d_solve = solve; d_stage = stage; d_values = values; d_tags = tags; d_curve = curve }

let emit d = if Export.tracing () then Export.emit (Export.Diag d)

let value d key = List.assoc_opt key d.d_values

let tag d key = List.assoc_opt key d.d_tags

let of_events events =
  List.filter_map (function Export.Diag d -> Some d | _ -> None) events

(* Group by solve id, preserving first-seen solve order and per-solve
   emission order — "lambda" before "qp" before "solve" reads as the
   chronology of one deconvolution. *)
let by_solve events =
  let diags = of_events events in
  let order = ref [] in
  let tbl : (string, t list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun d ->
      match Hashtbl.find_opt tbl d.d_solve with
      | Some r -> r := d :: !r
      | None ->
        Hashtbl.replace tbl d.d_solve (ref [ d ]);
        order := d.d_solve :: !order)
    diags;
  List.rev_map
    (fun solve ->
      match Hashtbl.find_opt tbl solve with
      | Some r -> (solve, List.rev !r)
      | None -> (solve, []))
    !order

let stage d stage_name =
  List.find_opt (fun x -> String.equal x.d_stage stage_name) d
