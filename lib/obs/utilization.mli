(** Domain-pool utilization from chunk telemetry.

    [lib/parallel] records one [{"ev":"sample","kind":"chunk",...}] event
    per executed chunk (fields [domain], [lo], [hi], [start], [stop])
    when a probe is installed; this module folds a recorded stream into
    per-domain busy fractions and a chunk-wall imbalance ratio — the
    numbers behind [deconv-cli trace utilization]. Pure aggregation over
    an event list: nothing here touches clocks or the pool. *)

type chunk = { domain : int; lo : int; hi : int; start_s : float; stop_s : float }

type domain_stat = {
  domain : int;
  chunks : int;
  items : int;  (** sum of [hi - lo] *)
  busy_s : float;  (** summed chunk wall time on this domain *)
  busy_fraction : float;
      (** [busy_s] over the fan-out span; in (0, 1] for any domain that
          executed work (1 when the span is zero-width) *)
}

type report = {
  domains : domain_stat list;  (** sorted by domain id *)
  chunk_count : int;
  span_s : float;  (** earliest chunk start to latest chunk stop *)
  mean_chunk_s : float;
  max_chunk_s : float;
  imbalance : float;
      (** max/mean chunk wall time; 1.0 when perfectly balanced or when
          every chunk is instantaneous *)
}

val chunk_of_sample : Export.sample -> chunk option
(** Decode one ["chunk"] sample; [None] for other kinds or malformed
    fields. *)

val chunks_of_events : Export.event list -> chunk list
(** Extract well-formed chunk samples (others are ignored). *)

val of_chunks : chunk list -> report option
(** Aggregate; [None] on an empty list. *)

val of_events : Export.event list -> report option
(** [of_chunks] over [chunks_of_events]. *)

val output : out_channel -> report -> unit
(** Render the per-domain table and imbalance summary. *)
