(** Process-wide registry of counters, gauges and histograms.

    Disabled by default: every recording call is a single branch until
    [enable] is called, so instrumentation left in hot paths is free.
    Metrics are registered lazily by name at first use; kinds live in
    separate namespaces (a counter and a gauge may share a name, though
    instrumented code should not do that).

    Like [Span], the registry is process-global — and domain-safe: a
    mutex guards registration and every recording call, so pool workers
    ([lib/parallel]) may emit metrics concurrently. Counter increments
    from concurrent chunks interleave in nondeterministic order but the
    totals are exact. *)

type kind = Counter | Gauge | Histogram

type snapshot = {
  name : string;
  kind : kind;
  fields : (string * float) list;
      (** counters/gauges: [("value", v)]; histograms: count, sum, mean,
          min, max, plus nearest-rank p50/p90/p99 over all samples *)
}

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val incr : ?by:float -> string -> unit
(** Add [by] (default 1) to a counter. *)

val set : string -> float -> unit
(** Set a gauge to its latest value. *)

val observe : string -> float -> unit
(** Record one sample into a histogram. All samples are retained (memory
    is O(observations)), so the snapshot's p50/p90/p99 are exact. *)

val snapshot : unit -> snapshot list
(** Current state of every registered metric, sorted by (kind, name). *)

val events : unit -> Export.event list
(** [snapshot] rendered as {!Export.Metric} events, ready to append to a
    trace stream. *)

val output : out_channel -> unit
(** Render the current snapshot as the text metrics table (channel
    supplied by the caller; library code never writes to stdout). *)

val reset : unit -> unit
(** Drop every registered metric (does not change enablement). *)
