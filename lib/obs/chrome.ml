(* Chrome trace-event JSON (the format Perfetto and chrome://tracing
   open). Mapping:
   - span            -> complete event (ph "X"), dur = stop - start
   - chunk sample    -> complete event on the worker's tid
   - resource sample -> one counter event (ph "C") per field, so each
     resource gets its own track
   - point           -> instant event (ph "i") at the owning span's start
     (points carry no timestamp of their own; iteration order is kept in
     args)
   - metric          -> skipped (no timestamp to place it at)

   Timestamps are microseconds relative to the earliest event in the
   stream, which keeps them readable and well inside double precision. *)

let span_ts (s : Export.span) = s.Export.start_s

let sample_ts (s : Export.sample) =
  (* Chunk samples carry their true interval in fields; "t" is emission
     time. Prefer the interval start so bars land where work happened. *)
  match List.assoc_opt "start" s.Export.values with
  | Some start when Float.is_finite start -> start
  | _ -> s.Export.t_s

let base_ts events =
  List.fold_left
    (fun acc ev ->
      match ev with
      | Export.Span s -> Float.min acc (span_ts s)
      | Export.Sample s -> Float.min acc (sample_ts s)
      | Export.Metric _ | Export.Point _ | Export.Diag _ -> acc)
    Float.infinity events

(* Spans only tag their per-domain roots with a "domain" attribute;
   children inherit the thread lane from their parent. *)
let span_tid spans =
  let by_id = Hashtbl.create 64 in
  List.iter (fun (s : Export.span) -> Hashtbl.replace by_id s.Export.id s) spans;
  let memo = Hashtbl.create 64 in
  let rec tid (s : Export.span) =
    match Hashtbl.find_opt memo s.Export.id with
    | Some t -> t
    | None ->
      let t =
        match List.assoc_opt "domain" s.Export.attrs with
        | Some (Export.Int d) -> d
        | _ -> (
          match s.Export.parent with
          | Some p -> (
            match Hashtbl.find_opt by_id p with Some parent -> tid parent | None -> 0)
          | None -> 0)
      in
      Hashtbl.replace memo s.Export.id t;
      t
  in
  tid

let usec base t = Export.float_json (1e6 *. (t -. base))

let arg_json = function
  | Export.Float f -> Export.float_json f
  | Export.Int i -> string_of_int i
  | Export.Str s -> Printf.sprintf "\"%s\"" (Export.json_escape s)
  | Export.Bool b -> if b then "true" else "false"

let args_json kvs render =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (Export.json_escape k) (render v)) kvs)

let output oc events =
  let spans = List.filter_map (function Export.Span s -> Some s | _ -> None) events in
  let tid = span_tid spans in
  let base = base_ts events in
  let base = if Float.is_finite base then base else 0.0 in
  let first = ref true in
  let emit line =
    if !first then first := false else output_string oc ",\n";
    output_string oc line
  in
  output_string oc "{\"traceEvents\":[\n";
  List.iter
    (fun ev ->
      match ev with
      | Export.Span s ->
        emit
          (Printf.sprintf
             "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d,\"args\":{%s}}"
             (Export.json_escape s.Export.name)
             (usec base s.Export.start_s)
             (Export.float_json (1e6 *. Float.max 0.0 (s.Export.stop_s -. s.Export.start_s)))
             (tid s)
             (args_json s.Export.attrs arg_json))
      | Export.Sample s when String.equal s.Export.s_kind "chunk" -> (
        match Utilization.chunk_of_sample s with
        | Some c ->
          emit
            (Printf.sprintf
               "{\"name\":\"chunk [%d,%d)\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d,\"args\":{\"lo\":%d,\"hi\":%d}}"
               c.Utilization.lo c.Utilization.hi
               (usec base c.Utilization.start_s)
               (Export.float_json
                  (1e6 *. Float.max 0.0 (c.Utilization.stop_s -. c.Utilization.start_s)))
               c.Utilization.domain c.Utilization.lo c.Utilization.hi)
        | None -> ())
      | Export.Sample s ->
        List.iter
          (fun (k, v) ->
            emit
              (Printf.sprintf
                 "{\"name\":\"%s.%s\",\"ph\":\"C\",\"ts\":%s,\"pid\":1,\"args\":{\"%s\":%s}}"
                 (Export.json_escape s.Export.s_kind) (Export.json_escape k)
                 (usec base s.Export.t_s) (Export.json_escape k) (Export.float_json v)))
          s.Export.values
      | Export.Point p -> (
        let owner =
          Option.bind p.Export.span_id (fun id ->
              List.find_opt (fun s -> s.Export.id = id) spans)
        in
        match owner with
        | Some s ->
          emit
            (Printf.sprintf
               "{\"name\":\"%s #%d\",\"ph\":\"i\",\"ts\":%s,\"pid\":1,\"tid\":%d,\"s\":\"t\",\"args\":{%s}}"
               (Export.json_escape p.Export.series) p.Export.iter
               (usec base s.Export.start_s) (tid s)
               (args_json p.Export.values Export.float_json))
        | None -> ())
      | Export.Metric _ | Export.Diag _ -> ())
    events;
  output_string oc "\n]}\n"
