type live = {
  id : int;
  parent : int option;
  name : string;
  start_s : float;
  mutable attrs : (string * Export.value) list;  (* reverse order *)
}

type t = Disabled | Live of live

(* Ids are process-global so spans emitted from different domains never
   collide; the running-span stack is domain-local, so a span opened on a
   worker domain nests under that domain's own spans only. A worker-domain
   root span carries a ["domain"] attribute instead of a parent: the
   exporter's summary treats it as a root, which is the defined ordering
   story under [--jobs > 1] — per-task trees, tagged with their domain. *)
let next_id = Atomic.make 0

let stack_key : live list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let enabled () = Export.tracing ()

let reset () =
  Atomic.set next_id 0;
  Domain.DLS.get stack_key := []

let set t key v =
  match t with
  | Disabled -> ()
  | Live l -> l.attrs <- (key, v) :: List.filter (fun (k, _) -> not (String.equal k key)) l.attrs

let point t series ~iter values =
  match t with
  | Disabled -> ()
  | Live l -> Export.emit (Export.Point { Export.series; span_id = Some l.id; iter; values })

let set_float t key v = set t key (Export.Float v)
let set_int t key v = set t key (Export.Int v)
let set_str t key v = set t key (Export.Str v)
let set_bool t key v = set t key (Export.Bool v)

let with_ ?(attrs = []) name f =
  if not (Export.tracing ()) then f Disabled
  else begin
    let stack = Domain.DLS.get stack_key in
    let id = Atomic.fetch_and_add next_id 1 + 1 in
    let parent = match !stack with [] -> None | l :: _ -> Some l.id in
    let attrs =
      match parent with
      | None when not (Domain.is_main_domain ()) ->
        attrs @ [ ("domain", Export.Int (Domain.self () :> int)) ]
      | _ -> attrs
    in
    let live = { id; parent; name; start_s = Clock.now (); attrs = List.rev attrs } in
    stack := live :: !stack;
    Fun.protect
      ~finally:(fun () ->
        stack := List.filter (fun l -> l.id <> live.id) !stack;
        Export.emit
          (Export.Span
             {
               Export.id = live.id;
               parent = live.parent;
               name = live.name;
               start_s = live.start_s;
               stop_s = Clock.now ();
               attrs = List.rev live.attrs;
             }))
      (fun () -> f (Live live))
  end
