type live = {
  id : int;
  parent : int option;
  name : string;
  start_s : float;
  mutable attrs : (string * Export.value) list;  (* reverse order *)
}

type t = Disabled | Live of live

let next_id = ref 0

(* Innermost running span first. Single-threaded by assumption (as is the
   rest of the library: solver, pipeline and RNG state are not shared). *)
let stack : live list ref = ref []

let enabled () = Export.tracing ()

let reset () =
  next_id := 0;
  stack := []

let set t key v =
  match t with
  | Disabled -> ()
  | Live l -> l.attrs <- (key, v) :: List.filter (fun (k, _) -> not (String.equal k key)) l.attrs

let point t series ~iter values =
  match t with
  | Disabled -> ()
  | Live l -> Export.emit (Export.Point { Export.series; span_id = Some l.id; iter; values })

let set_float t key v = set t key (Export.Float v)
let set_int t key v = set t key (Export.Int v)
let set_str t key v = set t key (Export.Str v)
let set_bool t key v = set t key (Export.Bool v)

let with_ ?(attrs = []) name f =
  if not (Export.tracing ()) then f Disabled
  else begin
    incr next_id;
    let parent = match !stack with [] -> None | l :: _ -> Some l.id in
    let live =
      { id = !next_id; parent; name; start_s = Clock.now (); attrs = List.rev attrs }
    in
    stack := live :: !stack;
    Fun.protect
      ~finally:(fun () ->
        stack := List.filter (fun l -> l.id <> live.id) !stack;
        Export.emit
          (Export.Span
             {
               Export.id = live.id;
               parent = live.parent;
               name = live.name;
               start_s = live.start_s;
               stop_s = Clock.now ();
               attrs = List.rev live.attrs;
             }))
      (fun () -> f (Live live))
  end
