(** Cross-run trace comparison: [deconv-cli trace diff A B].

    Two JSONL traces of the same workload are compared on two axes:

    - {b wall time} — per-span-name totals (the [trace summarize --top]
      table) diffed with the same noise-aware gate as [bench compare]:
      a multiplicative {!Trajectory.thresholds.tolerance} band, plus an
      absolute noise floor below which spans are skipped rather than
      gated. Because a trace total is a single wall-clock sample (not an
      OLS fit over many runs), a verdict additionally requires the
      absolute drift to clear a 5 ms delta floor — ms-scale spans
      routinely drift 30–50% between process invocations from caching
      and scheduling alone.
    - {b quality} — per-solve diag records joined by solve id and
      compared statistic-by-statistic, {e exactly}: quality numbers are
      deterministic given the inputs, so any bit-level difference in κ,
      λ, edf, residual statistics or a λ-profile λ value is a
      reportable drift, no tolerance applied. NaN = NaN counts as equal
      (both runs failing to produce a statistic is not a delta). The
      single exception is λ-profile {e scores}, which compare within a
      1e-3 relative band: a candidate score near the interpolation
      boundary conditions like κ of the regularized system, so two
      algebraically equivalent evaluation orders (normal equations vs
      the spectral fast path) legitimately round ~ε·κ apart, while any
      real selector change moves scores by percents.

    Together they let a perf PR prove "faster and bit-identical quality"
    from two trace files alone. *)

type time_row = {
  span : string;
  calls_a : int;
  calls_b : int;
  total_a : float;  (** summed wall seconds in A; NaN when absent *)
  total_b : float;
  ratio : float;  (** [total_b /. total_a]; NaN when either side absent *)
  verdict : Trajectory.verdict;
}

type quality_row = {
  solve : string;  (** join key, e.g. ["gene:12"] *)
  stat : string;  (** ["stage/field"], e.g. ["solve/kappa"] *)
  value_a : float;
  value_b : float;
}

type t = {
  time : time_row list;  (** A's span order, then spans only in B *)
  quality : quality_row list;  (** only differing statistics *)
  quality_checked : int;  (** statistics compared across both traces *)
  only_a : string list;  (** solve ids with diag records only in A *)
  only_b : string list;
}

val diff :
  ?thresholds:Trajectory.thresholds -> Export.event list -> Export.event list -> t
(** [diff A B] treats A as the baseline. Thresholds default to
    {!Trajectory.default_thresholds}. *)

val has_regression : t -> bool
(** Any time row gated [Regression]. Quality drift is reported separately
    ({!has_quality_delta}) — it is a correctness signal, not a perf one. *)

val has_quality_delta : t -> bool

val output : out_channel -> t -> unit
(** Render the time table, the quality deltas and a one-line verdict. *)
