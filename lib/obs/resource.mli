(** Periodic runtime-resource heartbeat.

    A [sampler] runs on its own domain and emits one
    [{"ev":"sample","kind":"resource",...}] event per period into the
    active {!Export} sink: GC counters from [Gc.quick_stat]
    (minor/promoted/major words, collection counts, heap words) plus
    resident-set size read from [/proc/self/statm] where procfs exists
    (the [rss_pages]/[rss_bytes] fields are simply absent elsewhere).

    With no sink installed, [sample] costs one branch and the sampler
    domain emits nothing; the interval arithmetic ({!ticker}/{!due}) is
    pure over caller-supplied clock readings so tests drive it with
    {!Clock.manual} and never sleep. *)

val read : unit -> (string * float) list
(** Current resource readings, as sample fields. *)

val sample : unit -> unit
(** Emit one resource sample now (no-op when no sink is installed). *)

(** {1 Interval logic} *)

type ticker

val ticker : period:float -> now:float -> ticker
(** A deadline train with the first tick one [period] after [now].
    Raises [Invalid_argument] unless [period] is finite and positive. *)

val due : ticker -> now:float -> bool
(** Whether a tick deadline has passed; advances the next deadline
    strictly past [now], skipping missed ticks (a stall yields one
    catch-up tick, never a burst). *)

(** {1 Sampler domain} *)

type sampler

val start : ?period_s:float -> unit -> sampler
(** Emit one sample immediately, then spawn a sampler domain ticking
    every [period_s] seconds (default 1.0). Raises [Invalid_argument]
    unless [period_s] is finite and positive. *)

val stop : sampler -> unit
(** Signal the sampler domain, join it, and emit one final sample so a
    run shorter than the period still records its endpoints. *)
