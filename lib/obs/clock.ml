type source = unit -> float

let wall = Unix.gettimeofday

let current : source ref = ref wall

(* Highest reading handed out so far; [now] never goes below it. *)
let last = ref neg_infinity

let set_source src =
  current := src;
  last := neg_infinity

let now () =
  let t = !current () in
  let t = if t > !last then t else !last in
  last := t;
  t

let with_source src f =
  let saved = !current and saved_last = !last in
  set_source src;
  Fun.protect
    ~finally:(fun () ->
      current := saved;
      last := saved_last)
    f

let manual ?(start = 0.0) () =
  let t = ref start in
  ((fun () -> !t), fun dt -> t := !t +. dt)
