type source = unit -> float

let wall = Unix.gettimeofday

let current : source ref = ref wall

(* Highest reading handed out so far; [now] never goes below it. The lock
   keeps the clamp consistent when spans start/stop on worker domains —
   monotonicity then holds across the whole process, not per domain. *)
let lock = Mutex.create ()

let last = ref neg_infinity

let set_source src =
  current := src;
  last := neg_infinity

let now () =
  Mutex.lock lock;
  let t =
    match !current () with
    | t ->
      let t = if t > !last then t else !last in
      last := t;
      t
    | exception e ->
      Mutex.unlock lock;
      raise e
  in
  Mutex.unlock lock;
  t

let with_source src f =
  let saved = !current and saved_last = !last in
  set_source src;
  Fun.protect
    ~finally:(fun () ->
      current := saved;
      last := saved_last)
    f

let manual ?(start = 0.0) () =
  let t = ref start in
  ((fun () -> !t), fun dt -> t := !t +. dt)
