(** Event model and sinks for the observability layer.

    Instrumented code ([Span], [Metrics]) produces [event] values; where
    they go is decided once per process by [install]ing a sink. With no
    sink installed (the default) nothing is recorded and instrumentation
    costs a single branch. Library code never touches stdout/stderr (rule
    R5): the JSONL sink writes to a caller-supplied channel and the text
    summary renders to a caller-supplied channel.

    JSONL schema (one JSON object per line):
    - spans: [{"ev":"span","id":4,"parent":2,"name":"qp.solve",
      "start":0.25,"stop":0.31,"attrs":{"iterations":12,...}}] — [parent]
      is [null] for roots; attribute values are numbers, strings or bools.
    - metrics: [{"ev":"metric","name":"qp.iterations","kind":"counter",
      "fields":{"value":431.0}}].

    Non-finite floats are not representable in JSON; they serialize as the
    strings ["nan"], ["inf"] and ["-inf"]. Metric fields (typed float)
    parse back exactly; a non-finite span {e attribute} reads back as the
    corresponding [Str] — round-tripping is exact for finite values. *)

type value = Float of float | Int of int | Str of string | Bool of bool

type span = {
  id : int;  (** unique per process run, 1-based *)
  parent : int option;  (** enclosing span id; [None] for roots *)
  name : string;
  start_s : float;  (** [Clock.now] at open *)
  stop_s : float;  (** [Clock.now] at close *)
  attrs : (string * value) list;
}

type metric = {
  metric_name : string;
  kind : string;  (** ["counter"], ["gauge"] or ["histogram"] *)
  fields : (string * float) list;
      (** e.g. [("value", v)] for counters/gauges; count/sum/mean/min/max
          for histograms *)
}

type point = {
  series : string;  (** e.g. ["qp.iteration"] — names the convergence series *)
  span_id : int option;  (** enclosing span id, so points group per solve *)
  iter : int;  (** iteration index within the solve, 1-based *)
  values : (string * float) list;
      (** e.g. KKT residual, duality measure mu, step lengths *)
}
(** One sample of an iterative process: convergence telemetry. Serialized
    as [{"ev":"point","series":...,"span":...,"iter":...,"fields":{...}}]. *)

type sample = {
  s_kind : string;
      (** what was sampled: ["resource"] for the {!Resource} heartbeat,
          ["chunk"] for pool chunk timings *)
  t_s : float;  (** [Clock.now] when the sample was taken *)
  values : (string * float) list;
}
(** One observation of ambient runtime state, outside any span: resource
    heartbeats and pool chunk telemetry. Serialized as
    [{"ev":"sample","kind":...,"t":...,"fields":{...}}]. *)

type diag = {
  d_solve : string;
      (** which solve the record belongs to: ["gene:12"] under a batch,
          ["solve"] for a single-profile run — the join key for
          [trace diff] *)
  d_stage : string;
      (** emitting stage: ["solve"] (the per-solve quality record from
          {!Solver.solve_robust}), ["lambda"] (candidate profile),
          ["qp"], ["rl"] *)
  d_values : (string * float) list;
      (** scalar quality statistics — κ, λ, edf, RSS, runs-test z, ... *)
  d_tags : (string * string) list;
      (** string facts: selector method, cascade path, outcome *)
  d_curve : (float * float) array;
      (** λ-candidate profile as (lambda, score) pairs; empty for stages
          that carry no curve *)
}
(** One solution-quality record. Serialized as
    [{"ev":"diag","solve":...,"stage":...,"fields":{...},"tags":{...},
    "curve":[[l,s],...]}] with the same exact float round-trip as
    {!sample} fields. *)

type event =
  | Span of span
  | Metric of metric
  | Point of point
  | Sample of sample
  | Diag of diag

(** {1 Sinks} *)

type sink

val null : sink
(** Accepts and drops every event. Distinct from "no sink installed":
    with [null] installed, spans are still materialized (tracing is on),
    they just go nowhere — useful for overhead measurements. *)

val memory : unit -> sink * (unit -> event list)
(** A recording sink and a function returning everything recorded so far,
    in emission order. *)

val jsonl : out_channel -> sink
(** Writes one JSON object per event line to the given channel. The
    channel stays owned by the caller; [flush] flushes it, nothing closes
    it. *)

val install : sink -> unit
(** Route subsequent events to this sink (replacing any previous one). *)

val uninstall : unit -> unit
(** Flush and remove the active sink; tracing becomes disabled again. *)

val tracing : unit -> bool
(** [true] iff a sink is installed. *)

val emit : event -> unit
(** Hand an event to the active sink; no-op when none is installed. *)

val flush : unit -> unit

(** {1 Serialization} *)

val to_json : event -> string
(** One JSON object, no trailing newline. *)

val of_json : string -> (event, string) result
(** Parse one line produced by [to_json]. *)

val read_jsonl : in_channel -> (event list, string) result
(** Read a whole JSONL stream (blank lines skipped); stops at the first
    malformed line with an error naming its line number. *)

(** {1 Rendering} *)

val output_summary : out_channel -> event list -> unit
(** Render a span tree — siblings aggregated by name, with call counts and
    total/self wall time — followed by a metrics section, to an explicit
    channel. Orphan spans (parent id absent from the stream) are promoted
    to roots. *)

val output_metrics : out_channel -> metric list -> unit
(** Just the metrics section of [output_summary]. *)

val output_top : out_channel -> top:int -> event list -> unit
(** Flat aggregate of the spans in the stream: one row per span name with
    call count, total and self wall time, sorted by total descending.
    [top] bounds the number of rows ([<= 0] prints all). *)

val output_event_counts : out_channel -> event list -> unit
(** Per-kind event totals (spans/metrics/points/samples/diags, with
    points, samples and diags broken down by series/kind/stage). The span
    tree and metrics table ignore point-like events entirely, so this
    footer is what makes a truncated trace visible. Appended to
    [output_summary] automatically; exposed for callers that render their
    own report. *)

val aggregate_span_rows : event list -> (string * int * float * float) list
(** Per-span-name totals over the stream's spans:
    [(name, calls, total_s, self_s)] sorted by total descending — the
    table behind [output_top], exposed so trace-comparison tooling can
    diff two streams without re-deriving parentage. *)

(** {1 Generic JSON}

    The recursive-descent parser behind [of_json], exposed so sibling
    modules (e.g. {!Trajectory}) can parse other single-document JSON
    files without a new dependency. Numbers stay raw strings until the
    caller knows whether an int or float is wanted. *)

type json =
  | J_obj of (string * json) list
  | J_arr of json list
  | J_str of string
  | J_num of string
  | J_bool of bool
  | J_null

val json_of_string : string -> (json, string) result
(** Parse one complete JSON document (trailing garbage is an error). *)

val json_escape : string -> string
(** Escape a string for embedding between double quotes in JSON output. *)

val float_json : float -> string
(** Render a float as a JSON token: round-trip exact for finite values;
    non-finite values become the strings ["nan"] / ["inf"] / ["-inf"]. *)
