(** Monotonic wall-clock abstraction.

    Every timing measurement in the tree flows through [now] (lint rule R7
    forbids raw [Sys.time] / [Unix.gettimeofday] calls outside [lib/obs]),
    so tests can substitute a deterministic source and the rest of the code
    never has to care whether "time" is real.

    [Sys.time] is {e processor} time — it stands still while the process
    waits — which is why it is banned: the robust-solver report once
    mislabeled it as wall-clock. [wall] is real wall-clock time
    ([Unix.gettimeofday]), and [now] additionally clamps it to be
    non-decreasing so span durations can never come out negative when the
    system clock steps backwards.

    The clock is process-global mutable state; reads are mutex-guarded so
    the monotonicity clamp holds across domains when pool workers
    ([lib/parallel]) time spans concurrently. [set_source] /
    [with_source] remain main-domain operations: swap sources only while
    no parallel work is in flight. *)

type source = unit -> float
(** A time source: seconds, as an absolute or arbitrary-epoch value. Only
    differences of readings are ever interpreted. *)

val wall : source
(** Real wall-clock seconds since the Unix epoch. *)

val now : unit -> float
(** Read the installed source, clamped to be monotonically non-decreasing
    across calls. *)

val set_source : source -> unit
(** Replace the installed source (default [wall]) and reset the
    monotonicity clamp. *)

val with_source : source -> (unit -> 'a) -> 'a
(** [with_source src f] runs [f] with [src] installed, restoring the
    previous source (and clamp state) afterwards, also on exceptions. *)

val manual : ?start:float -> unit -> source * (float -> unit)
(** [manual ()] is a deterministic test clock: a source that reads a cell
    starting at [start] (default 0), and an [advance] function adding a
    (non-negative) increment to it. *)
