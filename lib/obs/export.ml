type value = Float of float | Int of int | Str of string | Bool of bool

type span = {
  id : int;
  parent : int option;
  name : string;
  start_s : float;
  stop_s : float;
  attrs : (string * value) list;
}

type metric = {
  metric_name : string;
  kind : string;
  fields : (string * float) list;
}

type point = {
  series : string;
  span_id : int option;
  iter : int;
  values : (string * float) list;
}

type sample = { s_kind : string; t_s : float; values : (string * float) list }

type diag = {
  d_solve : string;
  d_stage : string;
  d_values : (string * float) list;
  d_tags : (string * string) list;
  d_curve : (float * float) array;
}

type event =
  | Span of span
  | Metric of metric
  | Point of point
  | Sample of sample
  | Diag of diag

(* ---------------- sinks ---------------- *)

type sink = { emit : event -> unit; flush : unit -> unit }

let null = { emit = (fun _ -> ()); flush = (fun () -> ()) }

let memory () =
  let acc = ref [] in
  ( { emit = (fun e -> acc := e :: !acc); flush = (fun () -> ()) },
    fun () -> List.rev !acc )

let active : sink option ref = ref None

(* Spans and metrics can be emitted from worker domains under a parallel
   section; the sink (a shared out_channel or the memory accumulator) is
   not domain-safe on its own, so all emission serializes here. The
   [tracing] fast path — the only cost when no sink is installed — stays
   an unlocked load. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let tracing () = Option.is_some !active

let emit e = locked (fun () -> match !active with Some s -> s.emit e | None -> ())

let flush () = locked (fun () -> match !active with Some s -> s.flush () | None -> ())

let install s = locked (fun () -> active := Some s)

let uninstall () =
  flush ();
  locked (fun () -> active := None)

(* ---------------- JSON writing ---------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* %.17g round-trips every finite double exactly. A bare integer rendering
   ("5") would read back as an Int, so integral floats get an explicit
   ".0"; non-finite floats are not JSON numbers and become strings. *)
let float_json f =
  if Float.is_nan f then "\"nan\""
  else if not (Float.is_finite f) then if f > 0.0 then "\"inf\"" else "\"-inf\""
  else begin
    let s = Printf.sprintf "%.17g" f in
    if String.exists (fun c -> Char.equal c '.' || Char.equal c 'e' || Char.equal c 'E') s then s
    else s ^ ".0"
  end

let value_json = function
  | Float f -> float_json f
  | Int i -> string_of_int i
  | Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Bool b -> if b then "true" else "false"

let pairs_json render kvs =
  String.concat "," (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (render v)) kvs)

let to_json = function
  | Span s ->
    Printf.sprintf "{\"ev\":\"span\",\"id\":%d,\"parent\":%s,\"name\":\"%s\",\"start\":%s,\"stop\":%s,\"attrs\":{%s}}"
      s.id
      (match s.parent with Some p -> string_of_int p | None -> "null")
      (escape s.name) (float_json s.start_s) (float_json s.stop_s)
      (pairs_json value_json s.attrs)
  | Metric m ->
    Printf.sprintf "{\"ev\":\"metric\",\"name\":\"%s\",\"kind\":\"%s\",\"fields\":{%s}}"
      (escape m.metric_name) (escape m.kind)
      (pairs_json float_json m.fields)
  | Point p ->
    Printf.sprintf "{\"ev\":\"point\",\"series\":\"%s\",\"span\":%s,\"iter\":%d,\"fields\":{%s}}"
      (escape p.series)
      (match p.span_id with Some id -> string_of_int id | None -> "null")
      p.iter
      (pairs_json float_json p.values)
  | Sample s ->
    Printf.sprintf "{\"ev\":\"sample\",\"kind\":\"%s\",\"t\":%s,\"fields\":{%s}}"
      (escape s.s_kind) (float_json s.t_s)
      (pairs_json float_json s.values)
  | Diag d ->
    let curve =
      String.concat ","
        (Array.to_list
           (Array.map (fun (l, s) -> Printf.sprintf "[%s,%s]" (float_json l) (float_json s)) d.d_curve))
    in
    Printf.sprintf
      "{\"ev\":\"diag\",\"solve\":\"%s\",\"stage\":\"%s\",\"fields\":{%s},\"tags\":{%s},\"curve\":[%s]}"
      (escape d.d_solve) (escape d.d_stage)
      (pairs_json float_json d.d_values)
      (pairs_json (fun v -> Printf.sprintf "\"%s\"" (escape v)) d.d_tags)
      curve

let jsonl oc =
  {
    emit =
      (fun e ->
        output_string oc (to_json e);
        output_char oc '\n');
    flush = (fun () -> Stdlib.flush oc);
  }

(* ---------------- JSON parsing ---------------- *)

(* A minimal recursive-descent parser for the subset we emit. Numbers stay
   raw strings until the schema layer knows whether Int or Float is
   wanted. *)
type json =
  | J_obj of (string * json) list
  | J_arr of json list
  | J_str of string
  | J_num of string
  | J_bool of bool
  | J_null

exception Bad of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when Char.equal x ch -> advance c
  | Some x -> raise (Bad (Printf.sprintf "expected '%c' at offset %d, found '%c'" ch c.pos x))
  | None -> raise (Bad (Printf.sprintf "expected '%c' at offset %d, found end of input" ch c.pos))

let expect_word c word =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.equal (String.sub c.src c.pos n) word then
    c.pos <- c.pos + n
  else raise (Bad (Printf.sprintf "expected %s at offset %d" word c.pos))

let hex_digit ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> raise (Bad "bad hex digit in \\u escape")

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> raise (Bad "unterminated string")
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some 'n' -> Buffer.add_char buf '\n'; advance c
      | Some 'r' -> Buffer.add_char buf '\r'; advance c
      | Some 't' -> Buffer.add_char buf '\t'; advance c
      | Some 'b' -> Buffer.add_char buf '\b'; advance c
      | Some 'f' -> Buffer.add_char buf '\012'; advance c
      | Some '"' -> Buffer.add_char buf '"'; advance c
      | Some '\\' -> Buffer.add_char buf '\\'; advance c
      | Some '/' -> Buffer.add_char buf '/'; advance c
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.src then raise (Bad "truncated \\u escape");
        let code =
          (hex_digit c.src.[c.pos] * 0x1000)
          + (hex_digit c.src.[c.pos + 1] * 0x100)
          + (hex_digit c.src.[c.pos + 2] * 0x10)
          + hex_digit c.src.[c.pos + 3]
        in
        c.pos <- c.pos + 4;
        (* We only ever emit \u for control characters; decode the
           code point as UTF-8 so arbitrary input still parses. *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
      | _ -> raise (Bad "bad escape sequence"));
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let numeric ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when numeric ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  if c.pos = start then raise (Bad (Printf.sprintf "expected a number at offset %d" start));
  String.sub c.src start (c.pos - start)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | Some '{' ->
    advance c;
    skip_ws c;
    if (match peek c with Some '}' -> true | _ -> false) then begin
      advance c;
      J_obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members ((key, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((key, v) :: acc)
        | _ -> raise (Bad (Printf.sprintf "expected ',' or '}' at offset %d" c.pos))
      in
      J_obj (members [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if (match peek c with Some ']' -> true | _ -> false) then begin
      advance c;
      J_arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> raise (Bad (Printf.sprintf "expected ',' or ']' at offset %d" c.pos))
      in
      J_arr (elements [])
    end
  | Some '"' -> J_str (parse_string c)
  | Some 't' ->
    expect_word c "true";
    J_bool true
  | Some 'f' ->
    expect_word c "false";
    J_bool false
  | Some 'n' ->
    expect_word c "null";
    J_null
  | _ -> J_num (parse_number c)

let parse_document line =
  let c = { src = line; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  (match peek c with
  | Some ch -> raise (Bad (Printf.sprintf "trailing garbage '%c' at offset %d" ch c.pos))
  | None -> ());
  v

let json_of_string s =
  match parse_document s with v -> Ok v | exception Bad msg -> Error msg

let json_escape = escape

(* ---------------- schema layer ---------------- *)

let field obj key =
  match List.assoc_opt key obj with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "missing field %S" key))

let as_string key = function
  | J_str s -> s
  | _ -> raise (Bad (Printf.sprintf "field %S: expected a string" key))

let as_int key = function
  | J_num raw -> (
    match int_of_string_opt raw with
    | Some i -> i
    | None -> raise (Bad (Printf.sprintf "field %S: expected an integer, got %s" key raw)))
  | _ -> raise (Bad (Printf.sprintf "field %S: expected an integer" key))

let as_float key = function
  | J_num raw -> (
    match float_of_string_opt raw with
    | Some f -> f
    | None -> raise (Bad (Printf.sprintf "field %S: expected a number, got %s" key raw)))
  | J_str "nan" -> Float.nan
  | J_str "inf" -> Float.infinity
  | J_str "-inf" -> Float.neg_infinity
  | _ -> raise (Bad (Printf.sprintf "field %S: expected a number" key))

let as_obj key = function
  | J_obj kvs -> kvs
  | _ -> raise (Bad (Printf.sprintf "field %S: expected an object" key))

let attr_value key = function
  | J_str s -> Str s
  | J_bool b -> Bool b
  | J_num raw -> (
    (* Integer renderings carry no '.', 'e' or 'E' (see float_json). *)
    if String.exists (fun c -> Char.equal c '.' || Char.equal c 'e' || Char.equal c 'E') raw then
      match float_of_string_opt raw with
      | Some f -> Float f
      | None -> raise (Bad (Printf.sprintf "attr %S: bad number %s" key raw))
    else
      match int_of_string_opt raw with
      | Some i -> Int i
      | None -> raise (Bad (Printf.sprintf "attr %S: bad number %s" key raw)))
  | _ -> raise (Bad (Printf.sprintf "attr %S: expected a scalar" key))

let event_of_document doc =
  match doc with
  | J_obj obj -> (
    match as_string "ev" (field obj "ev") with
    | "span" ->
      let parent =
        match field obj "parent" with J_null -> None | v -> Some (as_int "parent" v)
      in
      Span
        {
          id = as_int "id" (field obj "id");
          parent;
          name = as_string "name" (field obj "name");
          start_s = as_float "start" (field obj "start");
          stop_s = as_float "stop" (field obj "stop");
          attrs =
            List.map (fun (k, v) -> (k, attr_value k v)) (as_obj "attrs" (field obj "attrs"));
        }
    | "metric" ->
      Metric
        {
          metric_name = as_string "name" (field obj "name");
          kind = as_string "kind" (field obj "kind");
          fields =
            List.map (fun (k, v) -> (k, as_float k v)) (as_obj "fields" (field obj "fields"));
        }
    | "point" ->
      let span_id =
        match field obj "span" with J_null -> None | v -> Some (as_int "span" v)
      in
      Point
        {
          series = as_string "series" (field obj "series");
          span_id;
          iter = as_int "iter" (field obj "iter");
          values =
            List.map (fun (k, v) -> (k, as_float k v)) (as_obj "fields" (field obj "fields"));
        }
    | "sample" ->
      Sample
        {
          s_kind = as_string "kind" (field obj "kind");
          t_s = as_float "t" (field obj "t");
          values =
            List.map (fun (k, v) -> (k, as_float k v)) (as_obj "fields" (field obj "fields"));
        }
    | "diag" ->
      let pair = function
        | J_arr [ l; s ] -> (as_float "curve" l, as_float "curve" s)
        | _ -> raise (Bad "field \"curve\": expected [lambda,score] pairs")
      in
      let curve =
        match field obj "curve" with
        | J_arr elems -> Array.of_list (List.map pair elems)
        | _ -> raise (Bad "field \"curve\": expected an array")
      in
      Diag
        {
          d_solve = as_string "solve" (field obj "solve");
          d_stage = as_string "stage" (field obj "stage");
          d_values =
            List.map (fun (k, v) -> (k, as_float k v)) (as_obj "fields" (field obj "fields"));
          d_tags =
            List.map (fun (k, v) -> (k, as_string k v)) (as_obj "tags" (field obj "tags"));
          d_curve = curve;
        }
    | other -> raise (Bad (Printf.sprintf "unknown event kind %S" other)))
  | _ -> raise (Bad "expected a JSON object")

let of_json line =
  match event_of_document (parse_document line) with
  | ev -> Ok ev
  | exception Bad msg -> Error msg

let read_jsonl ic =
  let rec go acc lineno =
    match In_channel.input_line ic with
    | None -> Ok (List.rev acc)
    | Some line ->
      if String.equal (String.trim line) "" then go acc (lineno + 1)
      else (
        match of_json line with
        | Ok ev -> go (ev :: acc) (lineno + 1)
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go [] 1

(* ---------------- text summary tree ---------------- *)

let duration s = s.stop_s -. s.start_s

let format_seconds s =
  if Float.abs s >= 1.0 then Printf.sprintf "%8.3f s " s
  else if Float.abs s >= 1e-3 then Printf.sprintf "%8.3f ms" (s *. 1e3)
  else Printf.sprintf "%8.1f us" (s *. 1e6)

let output_metrics oc metrics =
  if metrics <> [] then begin
    Printf.fprintf oc "metrics:\n";
    List.iter
      (fun m ->
        let show k =
          match List.assoc_opt k m.fields with Some v -> Printf.sprintf "%s=%g" k v | None -> ""
        in
        let body =
          match m.kind with
          | "counter" | "gauge" -> show "value"
          | _ ->
            String.concat " "
              (List.filter
                 (fun s -> not (String.equal s ""))
                 (List.map show [ "count"; "mean"; "min"; "p50"; "p90"; "p99"; "max"; "sum" ]))
        in
        Printf.fprintf oc "  %-9s %-32s %s\n" m.kind m.metric_name body)
      (List.sort (fun a b -> String.compare a.metric_name b.metric_name) metrics)
  end

(* ---------------- aggregate top-N table ---------------- *)

(* Per-span-name totals: call count, summed duration, and self time (total
   minus time spent in child spans). Orphans count their duration as self
   relative to whatever children were emitted. *)
let aggregate_spans spans =
  let known = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace known s.id s) spans;
  let totals : (string, int ref * float ref * float ref) Hashtbl.t = Hashtbl.create 32 in
  let row name =
    match Hashtbl.find_opt totals name with
    | Some r -> r
    | None ->
      let r = (ref 0, ref 0.0, ref 0.0) in
      Hashtbl.replace totals name r;
      r
  in
  List.iter
    (fun s ->
      let count, total, self = row s.name in
      incr count;
      total := !total +. duration s;
      self := !self +. duration s;
      (* Charge this span's duration against its parent's self time. *)
      match s.parent with
      | Some p -> (
        match Hashtbl.find_opt known p with
        | Some parent ->
          let _, _, parent_self = row parent.name in
          parent_self := !parent_self -. duration s
        | None -> ())
      | None -> ())
    spans;
  let rows =
    Hashtbl.fold
      (fun name (count, total, self) acc -> (name, !count, !total, !self) :: acc)
      totals []
  in
  List.sort
    (fun (na, _, ta, _) (nb, _, tb, _) ->
      match Float.compare tb ta with 0 -> String.compare na nb | c -> c)
    rows

let aggregate_span_rows events =
  aggregate_spans (List.filter_map (function Span s -> Some s | _ -> None) events)

let output_top oc ~top events =
  let spans = List.filter_map (function Span s -> Some s | _ -> None) events in
  let rows = aggregate_spans spans in
  let shown = if top <= 0 then rows else List.filteri (fun i _ -> i < top) rows in
  if shown <> [] then begin
    Printf.fprintf oc "top spans by total time (%d of %d names):\n" (List.length shown)
      (List.length rows);
    Printf.fprintf oc "  %-36s %7s  %11s  %11s\n" "span" "calls" "total" "self";
    List.iter
      (fun (name, count, total, self) ->
        Printf.fprintf oc "  %-36s %6dx  %s  %s\n" name count (format_seconds total)
          (format_seconds self))
      shown
  end

(* Per-kind event totals. The span tree and metrics table silently drop
   point/sample/diag events, so a truncated trace (killed run, full disk)
   looks complete without this footer: the counts make every event in the
   stream accountable. *)
let output_event_counts oc events =
  let count_by key items =
    let tbl : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun it ->
        let k = key it in
        match Hashtbl.find_opt tbl k with
        | Some r -> incr r
        | None -> Hashtbl.replace tbl k (ref 1))
      items;
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl [])
  in
  let spans = List.filter (function Span _ -> true | _ -> false) events in
  let metrics = List.filter (function Metric _ -> true | _ -> false) events in
  let points = List.filter_map (function Point p -> Some p | _ -> None) events in
  let samples = List.filter_map (function Sample s -> Some s | _ -> None) events in
  let diags = List.filter_map (function Diag d -> Some d | _ -> None) events in
  Printf.fprintf oc "events: %d total — %d spans, %d metrics, %d points, %d samples, %d diags\n"
    (List.length events) (List.length spans) (List.length metrics) (List.length points)
    (List.length samples) (List.length diags);
  let breakdown label rows =
    if rows <> [] then
      Printf.fprintf oc "  %-8s %s\n" label
        (String.concat ", " (List.map (fun (k, n) -> Printf.sprintf "%s %d" k n) rows))
  in
  breakdown "points:" (count_by (fun p -> p.series) points);
  breakdown "samples:" (count_by (fun s -> s.s_kind) samples);
  breakdown "diags:" (count_by (fun d -> d.d_stage) diags)

let output_summary oc events =
  let spans = List.filter_map (function Span s -> Some s | _ -> None) events in
  let metrics = List.filter_map (function Metric m -> Some m | _ -> None) events in
  let known = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace known s.id ()) spans;
  let children = Hashtbl.create 64 in
  let roots = ref [] in
  (* Emission order is close order; re-sort by start so the tree reads
     chronologically. Orphans (parent never emitted) become roots. *)
  List.iter
    (fun s ->
      match s.parent with
      | Some p when Hashtbl.mem known p ->
        Hashtbl.replace children p (s :: (match Hashtbl.find_opt children p with Some l -> l | None -> []))
      | _ -> roots := s :: !roots)
    spans;
  let by_start a b = Float.compare a.start_s b.start_s in
  let kids s = List.sort by_start (match Hashtbl.find_opt children s.id with Some l -> l | None -> []) in
  if spans <> [] then Printf.fprintf oc "span tree (count, total, self):\n";
  (* Aggregate siblings sharing a name into one row; recurse over the
     union of their children so repeated sub-structure stays collapsed. *)
  let rec render depth group =
    let total = List.fold_left (fun acc s -> acc +. duration s) 0.0 group in
    let all_kids = List.concat_map kids group in
    let child_total = List.fold_left (fun acc s -> acc +. duration s) 0.0 all_kids in
    let name = match group with s :: _ -> s.name | [] -> "" in
    Printf.fprintf oc "  %-*s%-*s %5dx  total %s  self %s\n" (2 * depth) "" (36 - (2 * depth))
      name (List.length group) (format_seconds total)
      (format_seconds (total -. child_total));
    render_level (depth + 1) all_kids
  and render_level depth spans =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun s ->
        if not (Hashtbl.mem seen s.name) then begin
          Hashtbl.replace seen s.name ();
          render depth (List.filter (fun x -> String.equal x.name s.name) spans)
        end)
      (List.sort by_start spans)
  in
  render_level 0 (List.sort by_start !roots);
  if spans <> [] && metrics <> [] then Printf.fprintf oc "\n";
  output_metrics oc metrics;
  if events <> [] then begin
    if spans <> [] || metrics <> [] then Printf.fprintf oc "\n";
    output_event_counts oc events
  end
