(** Domain-safe batch-progress aggregation.

    A [t] counts item completions flowing in concurrently from pool
    worker domains (wired through the [?progress] argument of
    [Batch.solve_all_result] / [Bootstrap.residual_result]), maintains a
    sliding-window throughput estimate and ETA, and tallies failures per
    [Robust.Error] class name. A snapshot can be rendered as a one-line
    status string (the [--progress] stderr line) or a JSON object (the
    future [deconv-serve] scrape payload).

    All mutation is mutex-guarded inside this module — rule R8 keeps raw
    [Mutex] out of [bin/] — and the optional observer callback runs
    outside the lock on an immutable snapshot. *)

type t

and snap = {
  s_total : int;
  s_done : int;  (** completions so far, replays included *)
  s_ok : int;
  s_failed : int;
  s_replayed : int;  (** of [s_done], how many came from a checkpoint *)
  s_elapsed_s : float;
  s_rate : float;
      (** items/sec over the sliding window; falls back to the overall
          average when no completion landed inside the window; [0.0]
          before the first completion *)
  s_eta_s : float;
      (** remaining/rate; [nan] while the rate is unknown; [0.0] once
          done *)
  s_classes : (string * int) list;  (** failure class → count, sorted *)
}

val create : ?window_s:float -> total:int -> unit -> t
(** A fresh aggregator for [total] items, timestamped now. [window_s]
    (default 10) is the sliding-window width for the rate estimate.
    Raises [Invalid_argument] on negative [total] or a non-positive /
    non-finite window. *)

val record : t -> ?cls:string -> ok:bool -> unit -> unit
(** One item finished; [cls] tallies the failure class when [ok] is
    false. Safe to call from any domain. *)

val record_into : t option -> ?cls:string -> ok:bool -> unit -> unit
(** [record] through an optional aggregator: [None] costs one branch, so
    instrumented call sites need no conditional of their own. *)

val record_replayed : t -> int -> unit
(** Count [n] items restored from a checkpoint as already-done successes
    (kept distinct in [s_replayed] so a resumed run's rate is not
    flattered by work it never did — replays bypass the sliding
    window). *)

val observe : ?min_interval_s:float -> t -> (snap -> unit) -> unit
(** Install the single observer, called with a fresh snapshot after a
    completion, rate-limited to one call per [min_interval_s] (default
    0.2 s; the completion that reaches [total] always fires). The
    callback runs outside the aggregator lock. *)

val finish : t -> unit
(** Force one final observer notification (bypassing the rate limit) so
    the last rendered line reflects the final counts. *)

val snapshot : t -> snap
(** Current state, taken under the lock. *)

val render : snap -> string
(** One status line: ["123/500 (25%)  42.0 items/s  eta 00:09  failed 2
    (qp_stalled:2)"]. No trailing newline. *)

val to_json : snap -> string
(** The snapshot as one JSON object (schema mirrors [snap] fields). *)
