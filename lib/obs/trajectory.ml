type kind = Micro | Macro

let kind_name = function Micro -> "micro" | Macro -> "macro"

type record = {
  name : string;
  rev : string;
  kind : kind;
  ns_per_run : float;
  r_square : float;
  runs : int;
  iterations : float;
  domains : int;
}

type t = record list

let empty = []
let records t = t
let append t r = t @ [ r ]

let same_key a b =
  String.equal a.name b.name && String.equal a.rev b.rev && a.kind = b.kind

(* Replace the newest same-key record in place so re-running a suite at one
   revision refreshes its fit without rewriting history order. *)
let upsert t r =
  if List.exists (same_key r) t then begin
    (* Walk from the newest record backwards so only the most recent
       same-key entry is replaced; prepending while consuming the reversed
       list restores chronological order. *)
    let replaced = ref false in
    List.fold_left
      (fun acc existing ->
        if (not !replaced) && same_key r existing then begin
          replaced := true;
          r :: acc
        end
        else existing :: acc)
      []
      (List.rev t)
  end
  else t @ [ r ]

let git_rev () =
  let run () =
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = match In_channel.input_line ic with Some l -> String.trim l | None -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when String.length line > 0 -> Some line
    | _ -> None
  in
  match run () with
  | Some rev -> rev
  | None -> "unknown"
  | exception Unix.Unix_error _ -> "unknown"
  | exception Sys_error _ -> "unknown"
  | exception End_of_file -> "unknown"

(* {1 Persistence} *)

let record_json r =
  Printf.sprintf
    "{\"name\":\"%s\",\"rev\":\"%s\",\"kind\":\"%s\",\"ns_per_run\":%s,\"r_square\":%s,\"runs\":%d,\"iterations\":%s,\"domains\":%d}"
    (Export.json_escape r.name) (Export.json_escape r.rev) (kind_name r.kind)
    (Export.float_json r.ns_per_run)
    (Export.float_json r.r_square)
    r.runs
    (Export.float_json r.iterations)
    r.domains

let to_json_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"suite\":\"deconv\",\"schema\":1,\"records\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      Buffer.add_string buf (record_json r))
    t;
  if t <> [] then Buffer.add_char buf '\n';
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let field name obj = List.assoc_opt name obj

let as_float = function
  | Some (Export.J_num s) -> (
    match float_of_string_opt s with Some f -> f | None -> Float.nan)
  | Some (Export.J_str "nan") -> Float.nan
  | Some (Export.J_str "inf") -> Float.infinity
  | Some (Export.J_str "-inf") -> Float.neg_infinity
  | _ -> Float.nan

let as_int json = int_of_float (as_float json)

let as_string default = function Some (Export.J_str s) -> s | _ -> default

let record_of_json = function
  | Export.J_obj obj ->
    let name = as_string "" (field "name" obj) in
    if String.length name = 0 then Error "record missing \"name\""
    else
      Ok
        {
          name;
          rev = as_string "unknown" (field "rev" obj);
          kind =
            (match as_string "micro" (field "kind" obj) with
            | "macro" -> Macro
            | _ -> Micro);
          ns_per_run = as_float (field "ns_per_run" obj);
          r_square = as_float (field "r_square" obj);
          runs = (match field "runs" obj with Some _ as f -> as_int f | None -> 0);
          iterations = as_float (field "iterations" obj);
          (* Records written before the parallel pool existed were all
             single-domain runs. *)
          domains = (match field "domains" obj with Some _ as f -> as_int f | None -> 1);
        }
  | _ -> Error "record is not an object"

let of_json_string s =
  match Export.json_of_string s with
  | Error msg -> Error (Printf.sprintf "trajectory: %s" msg)
  | Ok (Export.J_obj obj) -> (
    (* Schema 1 stores "records"; the legacy snapshot format stored a
       "results" array without rev/kind — load it as micro @ unknown. *)
    let array_field =
      match field "records" obj with
      | Some (Export.J_arr items) -> Some items
      | Some _ -> None
      | None -> (
        match field "results" obj with
        | Some (Export.J_arr items) -> Some items
        | _ -> None)
    in
    match array_field with
    | None -> Error "trajectory: no \"records\" or \"results\" array"
    | Some items ->
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
          match record_of_json item with
          | Ok r -> collect (r :: acc) rest
          | Error msg -> Error (Printf.sprintf "trajectory: %s" msg))
      in
      collect [] items)
  | Ok _ -> Error "trajectory: top-level value is not an object"

let load ~path =
  if not (Sys.file_exists path) then Ok empty
  else
    match In_channel.with_open_text path In_channel.input_all with
    | contents -> of_json_string contents
    | exception Sys_error msg -> Error msg

let save t ~path =
  Dataio.Atomic_file.write path (fun oc -> output_string oc (to_json_string t))

(* {1 Regression gate} *)

type thresholds = { tolerance : float; min_r_square : float }

let default_thresholds = { tolerance = 0.30; min_r_square = 0.85 }

type verdict = Regression | Improvement | Unchanged | Skipped of string

type comparison = {
  name : string;
  baseline : record option;
  latest : record;
  ratio : float;
  verdict : verdict;
}

(* Distinct names in order of first appearance, so the gate's report reads
   in the same order the suites emitted their benches. *)
let names_in_order t =
  List.rev
    (List.fold_left
       (fun acc (r : record) ->
         if List.exists (String.equal r.name) acc then acc else r.name :: acc)
       [] t)

let last_matching pred l =
  List.fold_left (fun acc r -> if pred r then Some r else acc) None l

let judge thresholds baseline latest =
  let noisy r = Float.is_finite r.r_square && r.r_square < thresholds.min_r_square in
  if not (Float.is_finite latest.ns_per_run) then
    (Float.nan, Skipped "latest timing is not finite")
  else if not (Float.is_finite baseline.ns_per_run) || baseline.ns_per_run <= 0.0 then
    (Float.nan, Skipped "baseline timing is not positive")
  else begin
    let ratio = latest.ns_per_run /. baseline.ns_per_run in
    if noisy baseline then (ratio, Skipped "baseline fit too noisy (low r_square)")
    else if noisy latest then (ratio, Skipped "latest fit too noisy (low r_square)")
    else if ratio > 1.0 +. thresholds.tolerance then (ratio, Regression)
    else if ratio < 1.0 /. (1.0 +. thresholds.tolerance) then (ratio, Improvement)
    else (ratio, Unchanged)
  end

let compare_latest ?baseline_rev ?(thresholds = default_thresholds) t =
  List.filter_map
    (fun name ->
      let entries = List.filter (fun (r : record) -> String.equal r.name name) t in
      match last_matching (fun _ -> true) entries with
      | None -> None
      | Some latest ->
        let earlier =
          (* Everything before the latest record: drop the final entry. *)
          match List.rev entries with [] -> [] | _ :: rest -> List.rev rest
        in
        let baseline =
          match baseline_rev with
          | Some rev -> last_matching (fun (r : record) -> String.equal r.rev rev) earlier
          | None -> last_matching (fun _ -> true) earlier
        in
        let ratio, verdict =
          match baseline with
          | None ->
            ( Float.nan,
              Skipped
                (match baseline_rev with
                | Some rev -> Printf.sprintf "no earlier record at rev %s" rev
                | None -> "no earlier record") )
          | Some b -> judge thresholds b latest
        in
        Some { name; baseline; latest; ratio; verdict })
    (names_in_order t)

let has_regression comparisons =
  List.exists (fun c -> match c.verdict with Regression -> true | _ -> false) comparisons

let format_ns ns =
  if not (Float.is_finite ns) then "n/a"
  else if ns >= 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let verdict_name = function
  | Regression -> "REGRESSION"
  | Improvement -> "improvement"
  | Unchanged -> "ok"
  | Skipped reason -> Printf.sprintf "skipped (%s)" reason

let output_comparisons oc comparisons =
  Printf.fprintf oc "  %-28s %12s %12s %8s  %s\n" "bench" "baseline" "latest" "ratio"
    "verdict";
  List.iter
    (fun c ->
      let baseline_ns =
        match c.baseline with Some b -> format_ns b.ns_per_run | None -> "n/a"
      in
      let ratio =
        if Float.is_finite c.ratio then Printf.sprintf "%.3fx" c.ratio else "n/a"
      in
      Printf.fprintf oc "  %-28s %12s %12s %8s  %s\n" c.name baseline_ns
        (format_ns c.latest.ns_per_run)
        ratio (verdict_name c.verdict))
    comparisons
