(** Hierarchical timed spans.

    [with_ name f] times [f] and emits a single {!Export.Span} event when
    it returns (normally or by exception). Nesting is implicit: a span
    opened while another is running records it as its parent, so the
    exporter can rebuild the call tree from parent ids alone.

    Domain-safe: ids are process-global (atomic), the running-span stack
    is domain-local. A span opened on a worker domain nests under that
    domain's spans only; a worker-domain root span carries a ["domain"]
    attribute and renders as its own root tree in the summary — the
    defined parent/ordering story under [--jobs > 1].

    When no sink is installed ({!Export.tracing} is [false]) the whole
    mechanism degenerates to one branch: [f] runs with a dummy handle and
    every [set_*] is a no-op — instrumentation left in hot paths costs
    nothing when disabled. *)

type t
(** A handle on the currently running span (or a dummy when disabled). *)

val with_ : ?attrs:(string * Export.value) list -> string -> (t -> 'a) -> 'a
(** [with_ name f] runs [f] inside a span called [name], with optional
    initial attributes. The span closes — and its event is emitted — when
    [f] returns or raises. *)

val set : t -> string -> Export.value -> unit
(** Attach (or overwrite) an attribute on a running span. *)

val set_float : t -> string -> float -> unit
val set_int : t -> string -> int -> unit
val set_str : t -> string -> string -> unit
val set_bool : t -> string -> bool -> unit

val point : t -> string -> iter:int -> (string * float) list -> unit
(** [point sp series ~iter values] emits one {!Export.Point} attached to
    the running span — per-iteration convergence telemetry (KKT residual,
    duality measure, relative change, ...). Unlike attributes, points are
    emitted immediately, in iteration order, and do not accumulate on the
    span. No-op on a disabled handle; guard any expensive computation of
    [values] behind {!enabled}. *)

val enabled : unit -> bool
(** Alias for {!Export.tracing}: [true] iff spans are being recorded.
    Use it to skip computing expensive attribute values. *)

val reset : unit -> unit
(** Clear the calling domain's span stack and restart ids from 1. Test
    helper: makes span ids deterministic within a test case. *)
