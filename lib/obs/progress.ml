(* All state lives behind one mutex: completions arrive concurrently from
   pool worker domains (via the Batch/Bootstrap completion callbacks), and
   rule R8 keeps raw Mutex use out of bin/, so the rate-limited render
   throttle lives here too. The observer callback runs *outside* the lock
   on a snapshot — it may write to a channel and must not be able to
   deadlock a worker against the aggregator. *)
type t = {
  total : int;
  window_s : float;
  lock : Mutex.t;
  started_s : float;
  mutable done_ : int;
  mutable ok : int;
  mutable failed : int;
  mutable replayed : int;
  classes : (string, int) Hashtbl.t;
  mutable recent : float list;  (* completion times, newest first *)
  mutable observer : (float * (snap -> unit)) option;  (* min interval, callback *)
  mutable last_notify_s : float;
}

and snap = {
  s_total : int;
  s_done : int;
  s_ok : int;
  s_failed : int;
  s_replayed : int;
  s_elapsed_s : float;
  s_rate : float;
  s_eta_s : float;
  s_classes : (string * int) list;
}

let create ?(window_s = 10.0) ~total () =
  if total < 0 then invalid_arg "Obs.Progress.create: total must be >= 0";
  if not (Float.is_finite window_s && window_s > 0.0) then
    invalid_arg "Obs.Progress.create: window_s must be finite and > 0";
  {
    total;
    window_s;
    lock = Mutex.create ();
    started_s = Clock.now ();
    done_ = 0;
    ok = 0;
    failed = 0;
    replayed = 0;
    classes = Hashtbl.create 8;
    recent = [];
    observer = None;
    last_notify_s = neg_infinity;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Sliding-window throughput. The window holds completion timestamps no
   older than [window_s]; the rate is their count over the window span
   actually covered (elapsed time when shorter than the window). When the
   window is empty but work has completed — completions slower than the
   window — fall back to the overall average so the ETA degrades to the
   long-run estimate instead of stalling at "unknown". *)
let snapshot_locked t ~now =
  let elapsed = Float.max 0.0 (now -. t.started_s) in
  let cutoff = now -. t.window_s in
  t.recent <- List.filter (fun ts -> ts >= cutoff) t.recent;
  let in_window = List.length t.recent in
  let span = Float.min t.window_s elapsed in
  let rate =
    if in_window > 0 && span > 0.0 then float_of_int in_window /. span
    else if t.done_ > 0 && elapsed > 0.0 then float_of_int t.done_ /. elapsed
    else 0.0
  in
  let remaining = t.total - t.done_ in
  let eta =
    if remaining <= 0 then 0.0
    else if rate > 0.0 then float_of_int remaining /. rate
    else Float.nan
  in
  {
    s_total = t.total;
    s_done = t.done_;
    s_ok = t.ok;
    s_failed = t.failed;
    s_replayed = t.replayed;
    s_elapsed_s = elapsed;
    s_rate = rate;
    s_eta_s = eta;
    s_classes =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun cls n acc -> (cls, n) :: acc) t.classes []);
  }

let snapshot t = locked t (fun () -> snapshot_locked t ~now:(Clock.now ()))

let notify_maybe t ~now ~final =
  let fire =
    locked t (fun () ->
        match t.observer with
        | Some (min_interval, f)
          when final || now -. t.last_notify_s >= min_interval || t.done_ >= t.total ->
          t.last_notify_s <- now;
          Some (f, snapshot_locked t ~now)
        | _ -> None)
  in
  match fire with Some (f, snap) -> f snap | None -> ()

let record t ?cls ~ok () =
  let now = Clock.now () in
  locked t (fun () ->
      t.done_ <- t.done_ + 1;
      if ok then t.ok <- t.ok + 1 else t.failed <- t.failed + 1;
      (match cls with
      | Some c ->
        Hashtbl.replace t.classes c (1 + Option.value ~default:0 (Hashtbl.find_opt t.classes c))
      | None -> ());
      t.recent <- now :: t.recent);
  notify_maybe t ~now ~final:false

let record_replayed t n =
  if n > 0 then begin
    locked t (fun () ->
        t.done_ <- t.done_ + n;
        t.ok <- t.ok + n;
        t.replayed <- t.replayed + n);
    notify_maybe t ~now:(Clock.now ()) ~final:false
  end

let record_into t ?cls ~ok () =
  match t with None -> () | Some t -> record t ?cls ~ok ()

let observe ?(min_interval_s = 0.2) t f =
  locked t (fun () -> t.observer <- Some (min_interval_s, f))

let finish t = notify_maybe t ~now:(Clock.now ()) ~final:true

(* ---------------- rendering ---------------- *)

let format_eta s =
  if Float.is_nan s then "--:--"
  else begin
    let s = int_of_float (Float.ceil s) in
    if s >= 3600 then Printf.sprintf "%d:%02d:%02d" (s / 3600) (s mod 3600 / 60) (s mod 60)
    else Printf.sprintf "%02d:%02d" (s / 60) (s mod 60)
  end

let render snap =
  let pct =
    if snap.s_total = 0 then 100.0
    else 100.0 *. float_of_int snap.s_done /. float_of_int snap.s_total
  in
  let failures =
    if snap.s_failed = 0 then ""
    else
      Printf.sprintf "  failed %d%s" snap.s_failed
        (match snap.s_classes with
        | [] -> ""
        | classes ->
          Printf.sprintf " (%s)"
            (String.concat ", " (List.map (fun (c, n) -> Printf.sprintf "%s:%d" c n) classes)))
  in
  Printf.sprintf "%d/%d (%.0f%%)  %.1f items/s  eta %s%s" snap.s_done snap.s_total pct
    snap.s_rate (format_eta snap.s_eta_s) failures

let to_json snap =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"total\":%d,\"done\":%d,\"ok\":%d,\"failed\":%d,\"replayed\":%d,\"elapsed_s\":%s,\"rate\":%s,\"eta_s\":%s,\"failures\":{"
       snap.s_total snap.s_done snap.s_ok snap.s_failed snap.s_replayed
       (Export.float_json snap.s_elapsed_s)
       (Export.float_json snap.s_rate)
       (Export.float_json snap.s_eta_s));
  List.iteri
    (fun i (cls, n) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (Export.json_escape cls) n))
    snap.s_classes;
  Buffer.add_string b "}}";
  Buffer.contents b
