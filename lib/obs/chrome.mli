(** Chrome trace-event export.

    Converts a recorded {!Export} event stream into Chrome trace-event
    JSON ([{"traceEvents":[...]}]) openable in Perfetto or
    chrome://tracing, with zero dependencies: spans and pool chunks
    become complete events ([ph "X"]) on per-domain thread lanes,
    resource samples become counter tracks ([ph "C"]), convergence
    points become instants ([ph "i"]) at their owning span, and
    timestamps are microseconds relative to the earliest event. Behind
    [deconv-cli trace export --format chrome]. *)

val output : out_channel -> Export.event list -> unit
(** Write the whole trace document (trailing newline included). *)
