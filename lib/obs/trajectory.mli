(** Benchmark trajectory store and regression gate.

    [BENCH_deconv.json] is an append/merge history of benchmark fits — one
    record per (bench name, git revision, run) — rather than a single
    snapshot, so the performance trajectory of the repository survives
    across sessions and the newest record can be diffed against a
    baseline. The micro suite ([bench micro --json]) upserts its OLS fits
    keyed by (name, rev); the macro suite ([bench macro]) appends a fresh
    record per run, building a history even within one revision.

    Thresholds are noise-aware: a timing is only gated when its OLS fit is
    trustworthy (r² above [min_r_square]; macro records carry a NaN r²
    when too few repetitions ran for a fit and are then gated on the
    relative tolerance alone). The tolerance is multiplicative — wall
    timings on shared machines routinely jitter by 10–20%, so the default
    only fires on changes well outside that band. *)

type kind = Micro | Macro

val kind_name : kind -> string

type record = {
  name : string;  (** bench name, e.g. ["macro.pipeline_run"] *)
  rev : string;  (** git revision measured (short hash, or ["unknown"]) *)
  kind : kind;
  ns_per_run : float;  (** wall nanoseconds per run (OLS slope or mean) *)
  r_square : float;  (** OLS goodness of fit; NaN when not fitted *)
  runs : int;  (** timed repetitions behind the record; 0 when unknown *)
  iterations : float;
      (** mean solver iterations per run (QP interior-point or
          Richardson–Lucy), NaN when the bench has no solver inside *)
  domains : int;
      (** domain count the bench ran with ([Parallel.jobs ()] at record
          time); records predating the pool load as 1 *)
}

type t
(** A trajectory: records in chronological order (oldest first). *)

val empty : t
val records : t -> record list
val append : t -> record -> t
(** Unconditional append — every run adds a point to the history. *)

val upsert : t -> record -> t
(** Replace the newest record with the same (name, rev, kind) in place, or
    append when none exists. Re-running [bench micro --json] at one
    revision refreshes its fits instead of duplicating them — and never
    touches records of other kinds or revisions. *)

val git_rev : unit -> string
(** Short hash of the checked-out revision, or ["unknown"] when git (or a
    repository) is unavailable. *)

(** {1 Persistence} *)

val to_json_string : t -> string
(** One record per line inside a [{"suite":"deconv","schema":1,
    "records":[...]}] envelope — stable and diff-friendly. *)

val of_json_string : string -> (t, string) result
(** Parses the schema-1 envelope, and also the legacy single-snapshot
    [{"suite":...,"results":[...]}] format (records gain
    [rev = "unknown"], [kind = Micro]). *)

val load : path:string -> (t, string) result
(** [Ok empty] when the file does not exist. *)

val save : t -> path:string -> unit

(** {1 Regression gate} *)

type thresholds = {
  tolerance : float;
      (** relative slowdown tolerated before a regression fires;
          0.30 = 30% *)
  min_r_square : float;
      (** records whose finite r² falls below this are too noisy to gate *)
}

val default_thresholds : thresholds

type verdict =
  | Regression
  | Improvement
  | Unchanged
  | Skipped of string  (** why this pair could not be gated *)

type comparison = {
  name : string;
  baseline : record option;  (** [None]: nothing to compare against *)
  latest : record;
  ratio : float;  (** latest ns / baseline ns; NaN without a baseline *)
  verdict : verdict;
}

val compare_latest : ?baseline_rev:string -> ?thresholds:thresholds -> t -> comparison list
(** For every bench name (in order of first appearance): diff the newest
    record against the baseline — the newest earlier record with revision
    [baseline_rev] when given, the immediately preceding record otherwise.
    Names with no baseline yield [Skipped]. *)

val has_regression : comparison list -> bool

val output_comparisons : out_channel -> comparison list -> unit
(** Render one line per comparison (name, baseline/latest ns, ratio,
    verdict) to a caller-supplied channel. *)
