type kind = Counter | Gauge | Histogram

type snapshot = { name : string; kind : kind; fields : (string * float) list }

(* Histograms keep every sample (amortized-doubling buffer) so snapshot
   percentiles are exact rather than bucket approximations. Memory is
   O(observations); the instrumented call sites record per-solve or
   per-iteration scalars, so counts stay in the thousands. *)
type hist = {
  mutable count : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
  mutable samples : float array;
}

let on = ref false

let enable () = on := true
let disable () = on := false
let enabled () = !on

(* The registries are process-global and reachable from worker domains
   (e.g. per-candidate counters under a parallel λ sweep); every access
   path locks. The [!on] fast path stays unlocked so disabled metrics
   cost one load. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counters : (string, float ref) Hashtbl.t = Hashtbl.create 16
let gauges : (string, float ref) Hashtbl.t = Hashtbl.create 16
let histograms : (string, hist) Hashtbl.t = Hashtbl.create 16

let reset () =
  locked (fun () ->
      Hashtbl.reset counters;
      Hashtbl.reset gauges;
      Hashtbl.reset histograms)

let cell table name =
  match Hashtbl.find_opt table name with
  | Some c -> c
  | None ->
    let c = ref 0.0 in
    Hashtbl.replace table name c;
    c

let incr ?(by = 1.0) name =
  if !on then
    locked (fun () ->
        let c = cell counters name in
        c := !c +. by)

let set name v = if !on then locked (fun () -> cell gauges name := v)

let observe name v =
  if !on then
    locked @@ fun () ->
    let h =
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
        let h =
          { count = 0; sum = 0.0; mn = Float.infinity; mx = Float.neg_infinity;
            samples = Array.make 16 0.0 }
        in
        Hashtbl.replace histograms name h;
        h
    in
    if h.count = Array.length h.samples then begin
      let grown = Array.make (2 * h.count) 0.0 in
      Array.blit h.samples 0 grown 0 h.count;
      h.samples <- grown
    end;
    h.samples.(h.count) <- v;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    h.mn <- Float.min h.mn v;
    h.mx <- Float.max h.mx v

(* Nearest-rank percentile over the recorded samples ([q] in [0,1]). *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else begin
    let rank = int_of_float (Float.round (q *. float_of_int (n - 1))) in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) rank))
  end

let kind_name = function Counter -> "counter" | Gauge -> "gauge" | Histogram -> "histogram"

let snapshot () =
  locked @@ fun () ->
  let scalars kind table =
    Hashtbl.fold (fun name c acc -> { name; kind; fields = [ ("value", !c) ] } :: acc) table []
  in
  let hists =
    Hashtbl.fold
      (fun name h acc ->
        let sorted = Array.sub h.samples 0 h.count in
        Array.sort Float.compare sorted;
        {
          name;
          kind = Histogram;
          fields =
            [
              ("count", float_of_int h.count);
              ("sum", h.sum);
              ("mean", (if h.count = 0 then Float.nan else h.sum /. float_of_int h.count));
              ("min", h.mn);
              ("max", h.mx);
              ("p50", percentile sorted 0.50);
              ("p90", percentile sorted 0.90);
              ("p99", percentile sorted 0.99);
            ];
        }
        :: acc)
      histograms []
  in
  List.sort
    (fun a b ->
      match String.compare (kind_name a.kind) (kind_name b.kind) with
      | 0 -> String.compare a.name b.name
      | c -> c)
    (scalars Counter counters @ scalars Gauge gauges @ hists)

let events () =
  List.map
    (fun s ->
      Export.Metric { Export.metric_name = s.name; kind = kind_name s.kind; fields = s.fields })
    (snapshot ())

let output oc =
  Export.output_metrics oc
    (List.map
       (fun s -> { Export.metric_name = s.name; kind = kind_name s.kind; fields = s.fields })
       (snapshot ()))
