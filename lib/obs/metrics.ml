type kind = Counter | Gauge | Histogram

type snapshot = { name : string; kind : kind; fields : (string * float) list }

type hist = {
  mutable count : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

let on = ref false

let enable () = on := true
let disable () = on := false
let enabled () = !on

let counters : (string, float ref) Hashtbl.t = Hashtbl.create 16
let gauges : (string, float ref) Hashtbl.t = Hashtbl.create 16
let histograms : (string, hist) Hashtbl.t = Hashtbl.create 16

let reset () =
  Hashtbl.reset counters;
  Hashtbl.reset gauges;
  Hashtbl.reset histograms

let cell table name =
  match Hashtbl.find_opt table name with
  | Some c -> c
  | None ->
    let c = ref 0.0 in
    Hashtbl.replace table name c;
    c

let incr ?(by = 1.0) name =
  if !on then begin
    let c = cell counters name in
    c := !c +. by
  end

let set name v = if !on then cell gauges name := v

let observe name v =
  if !on then begin
    let h =
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
        let h = { count = 0; sum = 0.0; mn = Float.infinity; mx = Float.neg_infinity } in
        Hashtbl.replace histograms name h;
        h
    in
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    h.mn <- Float.min h.mn v;
    h.mx <- Float.max h.mx v
  end

let kind_name = function Counter -> "counter" | Gauge -> "gauge" | Histogram -> "histogram"

let snapshot () =
  let scalars kind table =
    Hashtbl.fold (fun name c acc -> { name; kind; fields = [ ("value", !c) ] } :: acc) table []
  in
  let hists =
    Hashtbl.fold
      (fun name h acc ->
        {
          name;
          kind = Histogram;
          fields =
            [
              ("count", float_of_int h.count);
              ("sum", h.sum);
              ("mean", (if h.count = 0 then Float.nan else h.sum /. float_of_int h.count));
              ("min", h.mn);
              ("max", h.mx);
            ];
        }
        :: acc)
      histograms []
  in
  List.sort
    (fun a b ->
      match String.compare (kind_name a.kind) (kind_name b.kind) with
      | 0 -> String.compare a.name b.name
      | c -> c)
    (scalars Counter counters @ scalars Gauge gauges @ hists)

let events () =
  List.map
    (fun s ->
      Export.Metric { Export.metric_name = s.name; kind = kind_name s.kind; fields = s.fields })
    (snapshot ())

let output oc =
  Export.output_metrics oc
    (List.map
       (fun s -> { Export.metric_name = s.name; kind = kind_name s.kind; fields = s.fields })
       (snapshot ()))
