type chunk = { domain : int; lo : int; hi : int; start_s : float; stop_s : float }

type domain_stat = {
  domain : int;
  chunks : int;
  items : int;
  busy_s : float;
  busy_fraction : float;
}

type report = {
  domains : domain_stat list;
  chunk_count : int;
  span_s : float;
  mean_chunk_s : float;
  max_chunk_s : float;
  imbalance : float;
}

let field values key =
  match List.assoc_opt key values with
  | Some v -> v
  | None -> Float.nan

let chunk_of_sample (s : Export.sample) =
  if not (String.equal s.Export.s_kind "chunk") then None
  else begin
    let f = field s.Export.values in
    let domain = f "domain" and lo = f "lo" and hi = f "hi" in
    let start_s = f "start" and stop_s = f "stop" in
    if
      Float.is_finite domain && Float.is_finite lo && Float.is_finite hi
      && Float.is_finite start_s && Float.is_finite stop_s
    then
      Some
        {
          domain = int_of_float domain;
          lo = int_of_float lo;
          hi = int_of_float hi;
          start_s;
          stop_s;
        }
    else None
  end

let chunks_of_events events =
  List.filter_map
    (function Export.Sample s -> chunk_of_sample s | _ -> None)
    events

let wall c = Float.max 0.0 (c.stop_s -. c.start_s)

(* Busy fraction is per-domain busy time over the fan-out's own span
   (earliest chunk start to latest chunk stop), not the process lifetime:
   it answers "while parallel work was in flight, what share of it did
   this domain carry". Chunks on one domain never overlap (each worker
   drains sequentially), so summing walls is exact. *)
let of_chunks chunks =
  match chunks with
  | [] -> None
  | first :: _ ->
    let t0 = List.fold_left (fun acc c -> Float.min acc c.start_s) first.start_s chunks in
    let t1 = List.fold_left (fun acc c -> Float.max acc c.stop_s) first.stop_s chunks in
    let span = Float.max 0.0 (t1 -. t0) in
    let per_domain : (int, int ref * int ref * float ref) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (c : chunk) ->
        let n, items, busy =
          match Hashtbl.find_opt per_domain c.domain with
          | Some r -> r
          | None ->
            let r = (ref 0, ref 0, ref 0.0) in
            Hashtbl.replace per_domain c.domain r;
            r
        in
        incr n;
        items := !items + Stdlib.max 0 (c.hi - c.lo);
        busy := !busy +. wall c)
      chunks;
    let domains =
      List.sort
        (fun (a : domain_stat) (b : domain_stat) -> Int.compare a.domain b.domain)
        (Hashtbl.fold
           (fun domain (n, items, busy) acc ->
             {
               domain;
               chunks = !n;
               items = !items;
               busy_s = !busy;
               (* A zero-width span (instantaneous chunks under a mock
                  clock) still counts as fully busy: the domain did all
                  the work there was. *)
               busy_fraction = (if span > 0.0 then Float.min 1.0 (!busy /. span) else 1.0);
             }
             :: acc)
           per_domain [])
    in
    let walls = List.map wall chunks in
    let n = float_of_int (List.length walls) in
    let mean = List.fold_left ( +. ) 0.0 walls /. n in
    let max_w = List.fold_left Float.max 0.0 walls in
    Some
      {
        domains;
        chunk_count = List.length chunks;
        span_s = span;
        mean_chunk_s = mean;
        max_chunk_s = max_w;
        imbalance = (if mean > 0.0 then max_w /. mean else 1.0);
      }

let of_events events = of_chunks (chunks_of_events events)

let output oc r =
  Printf.fprintf oc "pool utilization: %d chunks over %.3f s wall\n" r.chunk_count r.span_s;
  Printf.fprintf oc "  %-8s %7s %8s %12s %6s\n" "domain" "chunks" "items" "busy" "util";
  List.iter
    (fun d ->
      Printf.fprintf oc "  %-8d %6dx %8d %10.3f s %5.1f%%\n" d.domain d.chunks d.items d.busy_s
        (100.0 *. d.busy_fraction))
    r.domains;
  Printf.fprintf oc "  chunk wall: mean %.3f ms, max %.3f ms, imbalance (max/mean) %.2f\n"
    (1e3 *. r.mean_chunk_s) (1e3 *. r.max_chunk_s) r.imbalance
