(* Jitter floor: spans whose total is below this in both traces carry
   more scheduler noise than signal, so they are skipped rather than
   gated (same spirit as Trajectory's min_r_square guard — don't gate
   what you can't trust). *)
let noise_floor_s = 1e-4

(* Delta floor: a trace total is ONE wall-clock sample per span, not an
   OLS fit over many runs like the bench trajectory — across two process
   invocations a few-millisecond span routinely drifts 30–50% from page
   cache, frequency scaling and scheduling alone. So a verdict fires
   only when the absolute drift also clears this floor; below it the
   span is "ok" (measured, inside single-sample noise). Real regressions
   in traces worth diffing move tens of milliseconds. *)
let delta_floor_s = 5e-3

type time_row = {
  span : string;
  calls_a : int;
  calls_b : int;
  total_a : float;
  total_b : float;
  ratio : float;
  verdict : Trajectory.verdict;
}

type quality_row = {
  solve : string;
  stat : string;
  value_a : float;
  value_b : float;
}

type t = {
  time : time_row list;
  quality : quality_row list;
  quality_checked : int;
  only_a : string list;
  only_b : string list;
}

let time_rows ?(thresholds = Trajectory.default_thresholds) events_a events_b =
  let rows_a = Export.aggregate_span_rows events_a in
  let rows_b = Export.aggregate_span_rows events_b in
  let tbl_b = Hashtbl.create 32 in
  List.iter (fun (name, calls, total, _self) -> Hashtbl.replace tbl_b name (calls, total)) rows_b;
  let seen = Hashtbl.create 32 in
  let of_a =
    List.map
      (fun (name, calls_a, total_a, _self) ->
        Hashtbl.replace seen name ();
        match Hashtbl.find_opt tbl_b name with
        | None ->
          {
            span = name;
            calls_a;
            calls_b = 0;
            total_a;
            total_b = Float.nan;
            ratio = Float.nan;
            verdict = Trajectory.Skipped "absent from B";
          }
        | Some (calls_b, total_b) ->
          let ratio = total_b /. total_a in
          let verdict =
            if Float.max total_a total_b < noise_floor_s then
              Trajectory.Skipped "below noise floor"
            else if not (Float.is_finite ratio) then Trajectory.Skipped "zero baseline"
            else if Float.abs (total_b -. total_a) < delta_floor_s then Trajectory.Unchanged
            else if ratio > 1.0 +. thresholds.Trajectory.tolerance then Trajectory.Regression
            else if ratio < 1.0 /. (1.0 +. thresholds.Trajectory.tolerance) then
              Trajectory.Improvement
            else Trajectory.Unchanged
          in
          { span = name; calls_a; calls_b; total_a; total_b; ratio; verdict })
      rows_a
  in
  let of_b_only =
    List.filter_map
      (fun (name, calls_b, total_b, _self) ->
        if Hashtbl.mem seen name then None
        else
          Some
            {
              span = name;
              calls_a = 0;
              calls_b;
              total_a = Float.nan;
              total_b;
              ratio = Float.nan;
              verdict = Trajectory.Skipped "absent from A";
            })
      rows_b
  in
  of_a @ of_b_only

(* Selector-curve scores are the one quality statistic that cannot be
   gated bit-exactly: a candidate score near the interpolation boundary
   conditions like κ(AᵀWA + λΩ), so two algebraically equivalent
   evaluation orders (normal-equations vs spectral coordinates) round to
   answers ~ε·κ apart — that is evaluation-order noise, not drift. Real
   selector changes (different weighting, grid semantics, a wrong
   formula) move scores by percents, far above this band. The λ values
   of the curve and every scalar statistic remain bit-exact. *)
let curve_score_rtol = 1e-3

let curve_scores_equal sa sb =
  Float.equal sa sb
  ||
  let rel = Float.abs (sb -. sa) /. Float.max (Float.abs sa) (Float.abs sb) in
  rel <= curve_score_rtol

(* Quality statistics are deterministic given the inputs, so unlike wall
   time they diff exactly: any bit-level change in κ, λ, edf or a curve
   λ value is reportable (curve scores alone carry the relative band
   above). Float.equal treats nan = nan as true, which is what we want —
   both solves failing to produce a statistic is not a delta. *)
let quality_rows events_a events_b =
  let groups_a = Diag.by_solve events_a in
  let groups_b = Diag.by_solve events_b in
  let tbl_b = Hashtbl.create 32 in
  List.iter (fun (solve, diags) -> Hashtbl.replace tbl_b solve diags) groups_b;
  let checked = ref 0 in
  let rows = ref [] in
  let only_a = ref [] and only_b = ref [] in
  let add solve stat value_a value_b = rows := { solve; stat; value_a; value_b } :: !rows in
  List.iter
    (fun (solve, diags_a) ->
      match Hashtbl.find_opt tbl_b solve with
      | None -> only_a := solve :: !only_a
      | Some diags_b ->
        List.iter
          (fun (da : Diag.t) ->
            match Diag.stage diags_b da.d_stage with
            | None -> ()
            | Some db ->
              List.iter
                (fun (key, va) ->
                  match Diag.value db key with
                  | None -> ()
                  | Some vb ->
                    incr checked;
                    if not (Float.equal va vb) then
                      add solve (da.d_stage ^ "/" ^ key) va vb)
                da.d_values;
              let na = Array.length da.d_curve and nb = Array.length db.d_curve in
              if na > 0 || nb > 0 then begin
                incr checked;
                if na <> nb then
                  add solve (da.d_stage ^ "/curve.length") (float_of_int na) (float_of_int nb)
                else begin
                  let worst = ref 0.0 and at = ref (-1) in
                  Array.iteri
                    (fun i (la, sa) ->
                      let lb, sb = db.d_curve.(i) in
                      let dl = Float.abs (lb -. la) and ds = Float.abs (sb -. sa) in
                      let d = Float.max dl ds in
                      if (not (Float.equal la lb)) || not (curve_scores_equal sa sb) then
                        if d > !worst || !at < 0 then begin
                          worst := d;
                          at := i
                        end)
                    da.d_curve;
                  if !at >= 0 then begin
                    let la, sa = da.d_curve.(!at) and lb, sb = db.d_curve.(!at) in
                    if not (Float.equal la lb) then
                      add solve (Printf.sprintf "%s/curve[%d].lambda" da.d_stage !at) la lb;
                    if not (curve_scores_equal sa sb) then
                      add solve (Printf.sprintf "%s/curve[%d].score" da.d_stage !at) sa sb
                  end
                end
              end)
          diags_a;
        Hashtbl.remove tbl_b solve)
    groups_a;
  List.iter (fun (solve, _) -> if Hashtbl.mem tbl_b solve then only_b := solve :: !only_b) groups_b;
  (List.rev !rows, !checked, List.rev !only_a, List.rev !only_b)

let diff ?thresholds events_a events_b =
  let time = time_rows ?thresholds events_a events_b in
  let quality, quality_checked, only_a, only_b = quality_rows events_a events_b in
  { time; quality; quality_checked; only_a; only_b }

let has_regression t =
  List.exists (fun r -> match r.verdict with Trajectory.Regression -> true | _ -> false) t.time

let has_quality_delta t = t.quality <> [] || t.only_a <> [] || t.only_b <> []

let verdict_name = function
  | Trajectory.Regression -> "REGRESSION"
  | Trajectory.Improvement -> "improvement"
  | Trajectory.Unchanged -> "ok"
  | Trajectory.Skipped why -> Printf.sprintf "skipped (%s)" why

let format_total s = if Float.is_nan s then "         -" else Printf.sprintf "%10.3f" (s *. 1e3)

let output oc t =
  Printf.fprintf oc "wall time by span (A -> B, ms total):\n";
  Printf.fprintf oc "  %-36s %7s %7s  %10s  %10s  %6s  %s\n" "span" "callsA" "callsB" "A" "B"
    "ratio" "verdict";
  List.iter
    (fun r ->
      Printf.fprintf oc "  %-36s %6dx %6dx  %s  %s  %6s  %s\n" r.span r.calls_a r.calls_b
        (format_total r.total_a) (format_total r.total_b)
        (if Float.is_finite r.ratio then Printf.sprintf "%.2f" r.ratio else "-")
        (verdict_name r.verdict))
    t.time;
  Printf.fprintf oc "\nquality: %d statistics compared, %d deltas\n" t.quality_checked
    (List.length t.quality);
  List.iter
    (fun q ->
      Printf.fprintf oc "  %-12s %-28s %s -> %s\n" q.solve q.stat
        (Export.float_json q.value_a) (Export.float_json q.value_b))
    t.quality;
  let list_only label = function
    | [] -> ()
    | solves -> Printf.fprintf oc "  solves only in %s: %s\n" label (String.concat ", " solves)
  in
  list_only "A" t.only_a;
  list_only "B" t.only_b;
  let verdict =
    if has_regression t then "REGRESSION"
    else if has_quality_delta t then "quality drift"
    else "no regressions"
  in
  Printf.fprintf oc "\ntrace diff verdict: %s\n" verdict
