open Numerics
open Testutil

(* dy/dt = -y, y(0) = 1: y(t) = exp(-t). *)
let decay : Ode.system = fun _t y -> [| -.y.(0) |]

(* Harmonic oscillator: y'' = -y as a 2D system; y(t) = cos t. *)
let harmonic : Ode.system = fun _t y -> [| y.(1); -.y.(0) |]

let final (sol : Ode.solution) component =
  Mat.get sol.Ode.states (Array.length sol.Ode.times - 1) component

let test_euler_first_order () =
  let err steps =
    let sol = Ode.euler decay ~y0:[| 1.0 |] ~t0:0.0 ~t1:1.0 ~steps in
    Float.abs (final sol 0 -. Float.exp (-1.0))
  in
  check_true "euler converges at order 1" (err 200 < err 100 /. 1.8 && err 100 < 0.01)

let test_midpoint_second_order () =
  let err steps =
    let sol = Ode.midpoint decay ~y0:[| 1.0 |] ~t0:0.0 ~t1:1.0 ~steps in
    Float.abs (final sol 0 -. Float.exp (-1.0))
  in
  check_true "midpoint converges at order 2" (err 200 < err 100 /. 3.5)

let test_rk4_fourth_order () =
  let err steps =
    let sol = Ode.rk4 decay ~y0:[| 1.0 |] ~t0:0.0 ~t1:1.0 ~steps in
    Float.abs (final sol 0 -. Float.exp (-1.0))
  in
  check_true "rk4 order 4" (err 80 < err 40 /. 12.0);
  check_true "rk4 accurate" (err 100 < 1e-10)

let test_rk4_harmonic () =
  let sol = Ode.rk4 harmonic ~y0:[| 1.0; 0.0 |] ~t0:0.0 ~t1:(2.0 *. Float.pi) ~steps:2000 in
  check_close ~tol:1e-8 "cos after full period" 1.0 (final sol 0);
  check_close ~tol:1e-8 "sin after full period" 0.0 (final sol 1)

let test_solution_shape () =
  let sol = Ode.rk4 decay ~y0:[| 1.0 |] ~t0:0.0 ~t1:2.0 ~steps:10 in
  Alcotest.(check int) "11 time points" 11 (Array.length sol.Ode.times);
  check_close "initial time" 0.0 sol.Ode.times.(0);
  check_close "final time" 2.0 sol.Ode.times.(10);
  check_close "initial state kept" 1.0 (Mat.get sol.Ode.states 0 0)

let test_rk45_accuracy () =
  let times = Vec.linspace 0.0 5.0 11 in
  let sol = Ode.rk45 ~rtol:1e-10 ~atol:1e-12 decay ~y0:[| 1.0 |] ~times in
  Array.iteri
    (fun i t ->
      check_close ~tol:1e-8
        (Printf.sprintf "exp(-t) at t=%g" t)
        (Float.exp (-.t))
        (Mat.get sol.Ode.states i 0))
    times

let test_rk45_dense_output () =
  (* Output times denser than the natural step size still interpolate well. *)
  let times = Vec.linspace 0.0 (2.0 *. Float.pi) 101 in
  let sol = Ode.rk45 ~rtol:1e-9 harmonic ~y0:[| 1.0; 0.0 |] ~times in
  Array.iteri
    (fun i t ->
      check_close ~tol:1e-6 "dense cos" (Float.cos t) (Mat.get sol.Ode.states i 0))
    times

let test_rk45_nonautonomous () =
  (* y' = t, y(0) = 0 -> y = t^2/2. *)
  let sys : Ode.system = fun t _y -> [| t |] in
  let times = [| 0.0; 1.0; 3.0 |] in
  let sol = Ode.rk45 sys ~y0:[| 0.0 |] ~times in
  check_close ~tol:1e-8 "t^2/2 at 3" 4.5 (Mat.get sol.Ode.states 2 0)

let test_lv_conservation () =
  (* The LV first integral is conserved along rk45 trajectories. *)
  let p = Biomodels.Lotka_volterra.default_params in
  let x0 = Biomodels.Lotka_volterra.default_x0 in
  let times = Vec.linspace 0.0 300.0 61 in
  let sol = Biomodels.Lotka_volterra.simulate p ~x0 ~times in
  let v0 = Biomodels.Lotka_volterra.conserved p x0 in
  Array.iteri
    (fun i _t ->
      let y = Mat.row sol.Ode.states i in
      check_rel ~tol:1e-6 "LV invariant" v0 (Biomodels.Lotka_volterra.conserved p y))
    times

let test_solve_at () =
  let sol = Ode.rk4 decay ~y0:[| 1.0 |] ~t0:0.0 ~t1:1.0 ~steps:100 in
  let y = Ode.solve_at sol 0.505 in
  check_close ~tol:1e-4 "interpolated value" (Float.exp (-0.505)) y.(0);
  (* Clamped outside the range. *)
  check_close "clamp left" 1.0 (Ode.solve_at sol (-1.0)).(0);
  check_close ~tol:1e-9 "clamp right" (final sol 0) (Ode.solve_at sol 99.0).(0)

let tests =
  [
    ( "ode",
      [
        case "euler order" test_euler_first_order;
        case "midpoint order" test_midpoint_second_order;
        case "rk4 order and accuracy" test_rk4_fourth_order;
        case "rk4 harmonic oscillator" test_rk4_harmonic;
        case "solution shape" test_solution_shape;
        case "rk45 accuracy on decay" test_rk45_accuracy;
        case "rk45 dense output" test_rk45_dense_output;
        case "rk45 nonautonomous" test_rk45_nonautonomous;
        case "rk45 conserves LV invariant" test_lv_conservation;
        case "solve_at interpolation" test_solve_at;
      ] );
  ]
