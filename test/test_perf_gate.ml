(* Performance observatory: trajectory persistence and merge semantics,
   the noise-aware regression gate, and per-iteration convergence
   telemetry from the QP and Richardson-Lucy solvers. *)

open Numerics
open Testutil

let record ?(rev = "r1") ?(kind = Obs.Trajectory.Micro) ?(r2 = 0.99) ?(runs = 0)
    ?(iters = Float.nan) ?(domains = 1) name ns =
  {
    Obs.Trajectory.name;
    rev;
    kind;
    ns_per_run = ns;
    r_square = r2;
    runs;
    iterations = iters;
    domains;
  }

let verdict_label = function
  | Obs.Trajectory.Regression -> "regression"
  | Obs.Trajectory.Improvement -> "improvement"
  | Obs.Trajectory.Unchanged -> "unchanged"
  | Obs.Trajectory.Skipped _ -> "skipped"

let only_comparison comparisons =
  match comparisons with
  | [ c ] -> c
  | cs -> Alcotest.failf "expected exactly one comparison, got %d" (List.length cs)

(* ---------------- regression gate ---------------- *)

let test_gate_flags_2x_regression () =
  let t =
    List.fold_left Obs.Trajectory.append Obs.Trajectory.empty
      [ record "solve" 100.0 ~rev:"old"; record "solve" 200.0 ~rev:"new" ]
  in
  let c = only_comparison (Obs.Trajectory.compare_latest t) in
  Alcotest.(check string) "2x slowdown is a regression" "regression"
    (verdict_label c.Obs.Trajectory.verdict);
  Alcotest.(check (float 1e-9)) "ratio" 2.0 c.Obs.Trajectory.ratio;
  check_true "has_regression" (Obs.Trajectory.has_regression [ c ])

let test_gate_passes_jitter () =
  (* 10% jitter is inside the default 30% tolerance, both directions. *)
  List.iter
    (fun latest_ns ->
      let t =
        List.fold_left Obs.Trajectory.append Obs.Trajectory.empty
          [ record "solve" 100.0 ~rev:"old"; record "solve" latest_ns ~rev:"new" ]
      in
      let c = only_comparison (Obs.Trajectory.compare_latest t) in
      Alcotest.(check string)
        (Printf.sprintf "%.0f ns vs 100 ns is within tolerance" latest_ns)
        "unchanged"
        (verdict_label c.Obs.Trajectory.verdict);
      check_true "no regression" (not (Obs.Trajectory.has_regression [ c ])))
    [ 110.0; 90.0 ]

let test_gate_skips_noisy_fit () =
  (* A baseline whose OLS fit explains little variance must not gate. *)
  let t =
    List.fold_left Obs.Trajectory.append Obs.Trajectory.empty
      [ record "solve" 100.0 ~rev:"old" ~r2:0.2; record "solve" 300.0 ~rev:"new" ]
  in
  let c = only_comparison (Obs.Trajectory.compare_latest t) in
  Alcotest.(check string) "noisy baseline skipped" "skipped"
    (verdict_label c.Obs.Trajectory.verdict);
  check_true "skip is not a regression" (not (Obs.Trajectory.has_regression [ c ]))

let test_gate_nan_r2_is_gated () =
  (* Macro records carry NaN r_square (means, not fits): still gated. *)
  let t =
    List.fold_left Obs.Trajectory.append Obs.Trajectory.empty
      [
        record "macro.run" 100.0 ~rev:"old" ~kind:Obs.Trajectory.Macro ~r2:Float.nan;
        record "macro.run" 250.0 ~rev:"new" ~kind:Obs.Trajectory.Macro ~r2:Float.nan;
      ]
  in
  let c = only_comparison (Obs.Trajectory.compare_latest t) in
  Alcotest.(check string) "NaN r2 records are gated" "regression"
    (verdict_label c.Obs.Trajectory.verdict)

let test_gate_baseline_rev_selection () =
  let t =
    List.fold_left Obs.Trajectory.append Obs.Trajectory.empty
      [
        record "solve" 100.0 ~rev:"a";
        record "solve" 400.0 ~rev:"b";
        record "solve" 120.0 ~rev:"c";
      ]
  in
  (* Default baseline: the immediately preceding record (rev b). *)
  let c = only_comparison (Obs.Trajectory.compare_latest t) in
  (match c.Obs.Trajectory.baseline with
  | Some b -> Alcotest.(check string) "default baseline is previous record" "b" b.Obs.Trajectory.rev
  | None -> Alcotest.fail "expected a baseline");
  Alcotest.(check string) "120 vs 400 improves" "improvement"
    (verdict_label c.Obs.Trajectory.verdict);
  (* Pinned baseline: rev a, against which 120 ns is plain jitter. *)
  let c = only_comparison (Obs.Trajectory.compare_latest ~baseline_rev:"a" t) in
  (match c.Obs.Trajectory.baseline with
  | Some b -> Alcotest.(check string) "pinned baseline rev" "a" b.Obs.Trajectory.rev
  | None -> Alcotest.fail "expected a baseline");
  Alcotest.(check string) "120 vs 100 unchanged" "unchanged"
    (verdict_label c.Obs.Trajectory.verdict)

let test_gate_no_baseline_is_skip () =
  let t = Obs.Trajectory.append Obs.Trajectory.empty (record "solve" 100.0) in
  let c = only_comparison (Obs.Trajectory.compare_latest t) in
  Alcotest.(check string) "single record skipped" "skipped"
    (verdict_label c.Obs.Trajectory.verdict);
  check_true "no baseline" (Option.is_none c.Obs.Trajectory.baseline)

(* ---------------- trajectory store ---------------- *)

let test_upsert_replaces_same_key () =
  let t = Obs.Trajectory.append Obs.Trajectory.empty (record "a" 100.0) in
  let t = Obs.Trajectory.append t (record "b" 50.0) in
  let t = Obs.Trajectory.upsert t (record "a" 140.0) in
  let rs = Obs.Trajectory.records t in
  Alcotest.(check int) "upsert does not grow the history" 2 (List.length rs);
  (match rs with
  | [ a; b ] ->
    Alcotest.(check string) "order preserved" "a" a.Obs.Trajectory.name;
    Alcotest.(check (float 0.0)) "value refreshed" 140.0 a.Obs.Trajectory.ns_per_run;
    Alcotest.(check string) "other record untouched" "b" b.Obs.Trajectory.name
  | _ -> Alcotest.fail "expected two records");
  (* A different rev is a different key: upsert appends instead. *)
  let t = Obs.Trajectory.upsert t (record "a" 90.0 ~rev:"r2") in
  Alcotest.(check int) "new rev appends" 3 (List.length (Obs.Trajectory.records t))

let test_macro_append_builds_history () =
  let t = Obs.Trajectory.append Obs.Trajectory.empty (record "m" 100.0 ~kind:Obs.Trajectory.Macro) in
  let t = Obs.Trajectory.append t (record "m" 105.0 ~kind:Obs.Trajectory.Macro) in
  Alcotest.(check int) "same name and rev, two history points" 2
    (List.length (Obs.Trajectory.records t))

let test_trajectory_json_round_trip () =
  let t =
    List.fold_left Obs.Trajectory.append Obs.Trajectory.empty
      [
        record "a" 123.456 ~rev:"abc" ~r2:0.97 ~runs:3 ~iters:42.0 ~domains:4;
        record "b" 1e9 ~kind:Obs.Trajectory.Macro ~r2:Float.nan;
      ]
  in
  match Obs.Trajectory.of_json_string (Obs.Trajectory.to_json_string t) with
  | Error msg -> Alcotest.failf "round trip failed: %s" msg
  | Ok t' ->
    let rs = Obs.Trajectory.records t and rs' = Obs.Trajectory.records t' in
    Alcotest.(check int) "record count" (List.length rs) (List.length rs');
    List.iter2
      (fun (a : Obs.Trajectory.record) (b : Obs.Trajectory.record) ->
        Alcotest.(check string) "name" a.name b.name;
        Alcotest.(check string) "rev" a.rev b.rev;
        Alcotest.(check string) "kind" (Obs.Trajectory.kind_name a.kind)
          (Obs.Trajectory.kind_name b.kind);
        Alcotest.(check (float 0.0)) "ns" a.ns_per_run b.ns_per_run;
        Alcotest.(check int) "runs" a.runs b.runs;
        Alcotest.(check int) "domains" a.domains b.domains;
        check_true "r_square matches (nan == nan)"
          (Float.equal a.r_square b.r_square
          || (Float.is_nan a.r_square && Float.is_nan b.r_square)))
      rs rs'

let test_trajectory_loads_legacy_format () =
  let legacy =
    "{\"suite\":\"deconv\",\"results\":[{\"name\":\"k\",\"ns_per_run\":42.0,\"r_square\":0.9}]}"
  in
  match Obs.Trajectory.of_json_string legacy with
  | Error msg -> Alcotest.failf "legacy load failed: %s" msg
  | Ok t -> (
    match Obs.Trajectory.records t with
    | [ r ] ->
      Alcotest.(check string) "name" "k" r.Obs.Trajectory.name;
      Alcotest.(check string) "rev defaults" "unknown" r.Obs.Trajectory.rev;
      Alcotest.(check (float 0.0)) "ns" 42.0 r.Obs.Trajectory.ns_per_run;
      Alcotest.(check int) "domains default to 1" 1 r.Obs.Trajectory.domains
    | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs))

let test_trajectory_missing_file_is_empty () =
  match Obs.Trajectory.load ~path:"nonexistent-trajectory.json" with
  | Ok t -> Alcotest.(check int) "empty" 0 (List.length (Obs.Trajectory.records t))
  | Error msg -> Alcotest.failf "missing file should load as empty: %s" msg

(* ---------------- convergence telemetry ---------------- *)

let with_clean_obs f () =
  Obs.Span.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Export.uninstall ();
      Obs.Span.reset ();
      Obs.Clock.set_source Obs.Clock.wall)
    f

let points_of events : Obs.Export.point list =
  List.filter_map (function Obs.Export.Point p -> Some p | _ -> None) events

let test_qp_emits_one_point_per_iteration =
  with_clean_obs @@ fun () ->
  let source, advance = Obs.Clock.manual () in
  Obs.Clock.with_source source @@ fun () ->
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  (* min (x+1)^2 + (y-2)^2 s.t. x >= 0: active constraint forces real
     interior-point iterations. Advance the mock clock per event so span
     timings stay deterministic. *)
  advance 1.0;
  let spd_2 = Mat.of_rows [| [| 2.0; 0.0 |]; [| 0.0; 2.0 |] |] in
  let a = Mat.of_rows [| [| 1.0; 0.0 |] |] in
  let solution =
    Optimize.Qp.solve
      { h = spd_2; g = [| 2.0; -4.0 |]; c_eq = None; d_eq = None; a_ineq = Some a;
        b_ineq = Some [| 0.0 |] }
  in
  let events = recorded () in
  let points =
    List.filter (fun p -> String.equal p.Obs.Export.series "qp.iteration") (points_of events)
  in
  Alcotest.(check int) "one point per interior-point iteration"
    solution.Optimize.Qp.iterations (List.length points);
  (* Iteration indices are 1..n in emission order. *)
  List.iteri
    (fun i p -> Alcotest.(check int) "iteration index" (i + 1) p.Obs.Export.iter)
    points;
  let qp_span =
    List.find_map
      (function
        | Obs.Export.Span s when String.equal s.Obs.Export.name "qp.solve" -> Some s
        | _ -> None)
      events
  in
  (match qp_span with
  | None -> Alcotest.fail "no qp.solve span recorded"
  | Some s ->
    List.iter
      (fun p ->
        Alcotest.(check (option int)) "point attached to the qp.solve span"
          (Some s.Obs.Export.id) p.Obs.Export.span_id)
      points;
    (* The span's iterations attribute agrees with the point count. *)
    match List.assoc_opt "iterations" s.Obs.Export.attrs with
    | Some (Obs.Export.Int n) -> Alcotest.(check int) "span attr matches" n (List.length points)
    | _ -> Alcotest.fail "qp.solve span lacks an iterations attribute");
  List.iter
    (fun (p : Obs.Export.point) ->
      check_true "kkt_residual present" (List.mem_assoc "kkt_residual" p.Obs.Export.values);
      check_true "mu present" (List.mem_assoc "mu" p.Obs.Export.values))
    points;
  (* The residual curve ends below the default tolerance scale: converged. *)
  match List.rev points with
  | last :: _ ->
    let kkt = List.assoc "kkt_residual" last.Obs.Export.values in
    check_true "final scaled KKT residual small" (kkt < 1e-6)
  | [] -> Alcotest.fail "no points recorded"

let test_qp_direct_solve_emits_single_point =
  with_clean_obs @@ fun () ->
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  let spd_2 = Mat.of_rows [| [| 2.0; 0.0 |]; [| 0.0; 2.0 |] |] in
  let solution =
    Optimize.Qp.solve
      { h = spd_2; g = [| -2.0; -4.0 |]; c_eq = None; d_eq = None; a_ineq = None; b_ineq = None }
  in
  let points =
    List.filter
      (fun p -> String.equal p.Obs.Export.series "qp.iteration")
      (points_of (recorded ()))
  in
  Alcotest.(check int) "direct solve: one iteration, one point"
    solution.Optimize.Qp.iterations (List.length points)

let test_point_round_trips_jsonl =
  with_clean_obs @@ fun () ->
  let p =
    Obs.Export.Point
      { Obs.Export.series = "qp.iteration"; span_id = Some 7; iter = 3;
        values = [ ("kkt_residual", 1.25e-4); ("mu", Float.nan) ] }
  in
  let line = Obs.Export.to_json p in
  match Obs.Export.of_json line with
  | Error msg -> Alcotest.failf "point parse failed: %s (%s)" msg line
  | Ok p' ->
    Alcotest.(check string) "point round-trip is a fixed point" line (Obs.Export.to_json p')

let test_rl_emits_points_under_mock_clock =
  with_clean_obs @@ fun () ->
  let source, _advance = Obs.Clock.manual () in
  Obs.Clock.with_source source @@ fun () ->
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  let params = Cellpop.Params.paper_2011 in
  let times = [| 0.0; 60.0; 120.0 |] in
  let kernel =
    Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create 42) ~n_cells:200 ~times
      ~n_phi:21
  in
  let iterations = 7 in
  let result =
    Deconv.Richardson_lucy.deconvolve ~iterations kernel ~measurements:[| 1.0; 2.0; 1.5 |] ()
  in
  let events = recorded () in
  let points =
    List.filter (fun p -> String.equal p.Obs.Export.series "rl.iteration") (points_of events)
  in
  Alcotest.(check int) "one point per RL iteration" result.Deconv.Richardson_lucy.iterations
    (List.length points);
  List.iteri
    (fun i p ->
      Alcotest.(check int) "RL iteration index" (i + 1) p.Obs.Export.iter;
      check_true "rel_change present" (List.mem_assoc "rel_change" p.Obs.Export.values);
      check_true "misfit present" (List.mem_assoc "misfit" p.Obs.Export.values))
    points;
  (* Points ride inside the rl.deconvolve span. *)
  let rl_span =
    List.find_map
      (function
        | Obs.Export.Span s when String.equal s.Obs.Export.name "rl.deconvolve" -> Some s
        | _ -> None)
      events
  in
  match rl_span with
  | None -> Alcotest.fail "no rl.deconvolve span recorded"
  | Some s ->
    List.iter
      (fun p ->
        Alcotest.(check (option int)) "point attached to rl.deconvolve"
          (Some s.Obs.Export.id) p.Obs.Export.span_id)
      points

let tests =
  [
    ( "perf-gate",
      [
        case "2x regression fails" test_gate_flags_2x_regression;
        case "10% jitter passes" test_gate_passes_jitter;
        case "noisy fit skipped" test_gate_skips_noisy_fit;
        case "NaN r2 still gated" test_gate_nan_r2_is_gated;
        case "baseline rev selection" test_gate_baseline_rev_selection;
        case "no baseline is a skip" test_gate_no_baseline_is_skip;
      ] );
    ( "perf-trajectory",
      [
        case "upsert replaces same key" test_upsert_replaces_same_key;
        case "macro append builds history" test_macro_append_builds_history;
        case "json round-trip" test_trajectory_json_round_trip;
        case "legacy format loads" test_trajectory_loads_legacy_format;
        case "missing file is empty" test_trajectory_missing_file_is_empty;
      ] );
    ( "perf-convergence",
      [
        case "qp emits one point per iteration" test_qp_emits_one_point_per_iteration;
        case "direct solve emits one point" test_qp_direct_solve_emits_single_point;
        case "point jsonl round-trip" test_point_round_trips_jsonl;
        case "rl emits ordered points" test_rl_emits_points_under_mock_clock;
      ] );
  ]
