(* Solution-quality observatory: diag event round-trip, the diagnose
   report card on a real ftsZ solve, trace-diff verdicts, and the
   runs-test statistic against known sign sequences. *)

open Numerics
open Testutil

(* Same cleanup discipline as test_obs: every test that installs a sink
   uninstalls it even on failure. *)
let with_clean_obs f () =
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Export.uninstall ();
      Obs.Metrics.disable ();
      Obs.Metrics.reset ();
      Obs.Span.reset ();
      Obs.Clock.set_source Obs.Clock.wall)
    f

let diags events = List.filter_map (function Obs.Export.Diag d -> Some d | _ -> None) events

(* ---------------- a small real solve, traced ---------------- *)

let params = Cellpop.Params.paper_2011
let times = Array.init 13 (fun i -> 15.0 *. float_of_int i)

let kernel =
  lazy
    (Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create 700) ~n_cells:3000 ~times
       ~n_phi:101)

let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:12

(* The paper's flagship profile: ftsZ's delayed pulse. *)
let ftsz_data =
  lazy (Deconv.Forward.apply_fn (Lazy.force kernel) Biomodels.Ftsz.profile)

let make_problem () =
  Deconv.Problem.create ~kernel:(Lazy.force kernel) ~basis
    ~measurements:(Lazy.force ftsz_data) ~params ()

(* Trace one robust ftsZ solve (λ by GCV) into memory. *)
let traced_solve_events =
  lazy
    (Obs.Span.reset ();
     let sink, recorded = Obs.Export.memory () in
     Obs.Export.install sink;
     Fun.protect
       ~finally:(fun () ->
         Obs.Export.uninstall ();
         Obs.Span.reset ())
       (fun () ->
         let problem = make_problem () in
         let lambda =
           Deconv.Lambda.select problem ~method_:`Gcv ~rng:(Rng.create 41) ()
         in
         (match Deconv.Solver.solve_robust ~lambda problem with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "robust solve failed: %s" (Robust.Error.to_string e));
         recorded ()))

(* ---------------- JSONL round-trip ---------------- *)

let test_diag_json_round_trip =
  with_clean_obs @@ fun () ->
  let d =
    Obs.Diag.make ~solve:"gene:12" ~stage:"solve"
      ~values:
        [
          ("kappa", 8.708576532223505e9);
          ("lambda", 1.3335214321633241e-06);
          ("edf", 8.5247203177508961);
          ("bad", Float.nan);
          ("worse", Float.infinity);
        ]
      ~tags:[ ("solved_by", "constrained QP"); ("cascade", "constrained_qp") ]
      ~curve:[| (1e-6, 0.25); (1e-5, Float.neg_infinity); (1e-4, 0.5) |]
      ()
  in
  let line = Obs.Export.to_json (Obs.Export.Diag d) in
  match Obs.Export.of_json line with
  | Error msg -> Alcotest.failf "diag line failed to parse: %s" msg
  | Ok (Obs.Export.Diag d') ->
    Alcotest.(check string) "solve id" d.Obs.Diag.d_solve d'.Obs.Diag.d_solve;
    Alcotest.(check string) "stage" d.Obs.Diag.d_stage d'.Obs.Diag.d_stage;
    Alcotest.(check (list string)) "value keys"
      (List.map fst d.Obs.Diag.d_values)
      (List.map fst d'.Obs.Diag.d_values);
    List.iter2
      (fun (k, v) (_, v') ->
        check_true (Printf.sprintf "value %s round-trips exactly" k)
          (Float.equal v v' || (Float.is_nan v && Float.is_nan v')))
      d.Obs.Diag.d_values d'.Obs.Diag.d_values;
    Alcotest.(check (list (pair string string))) "tags" d.Obs.Diag.d_tags d'.Obs.Diag.d_tags;
    Alcotest.(check int) "curve length" (Array.length d.Obs.Diag.d_curve)
      (Array.length d'.Obs.Diag.d_curve);
    Array.iteri
      (fun i (l, s) ->
        let l', s' = d'.Obs.Diag.d_curve.(i) in
        check_true "curve lambda exact" (Float.equal l l');
        check_true "curve score exact"
          (Float.equal s s' || (Float.is_nan s && Float.is_nan s')))
      d.Obs.Diag.d_curve;
    (* the serialized form itself is a fixed point *)
    Alcotest.(check string) "to_json is a fixed point" line
      (Obs.Export.to_json (Obs.Export.Diag d'))
  | Ok _ -> Alcotest.fail "diag line parsed as a different event kind"

let test_diag_solve_labels =
  with_clean_obs @@ fun () ->
  let source, _ = Obs.Clock.manual () in
  Obs.Clock.with_source source (fun () ->
      let sink, recorded = Obs.Export.memory () in
      Obs.Export.install sink;
      Alcotest.(check string) "default label" "solve" (Obs.Diag.solve_label ());
      Obs.Diag.with_solve "gene:3" (fun () ->
          Obs.Diag.emit (Obs.Diag.make ~stage:"qp" ());
          Obs.Diag.with_solve "gene:4" (fun () ->
              Obs.Diag.emit (Obs.Diag.make ~stage:"qp" ()));
          (* the outer label is restored after the nested scope *)
          Obs.Diag.emit (Obs.Diag.make ~stage:"rl" ()));
      Obs.Diag.emit (Obs.Diag.make ~stage:"qp" ());
      match List.map (fun d -> d.Obs.Diag.d_solve) (diags (recorded ())) with
      | [ a; b; c; d ] ->
        Alcotest.(check string) "scoped" "gene:3" a;
        Alcotest.(check string) "nested" "gene:4" b;
        Alcotest.(check string) "restored" "gene:3" c;
        Alcotest.(check string) "outside any scope" "solve" d
      | ds -> Alcotest.failf "expected 4 diags, got %d" (List.length ds))

let test_diag_disabled_is_noop =
  with_clean_obs @@ fun () ->
  Alcotest.(check bool) "diag disabled without a sink" false (Obs.Diag.enabled ());
  Obs.Diag.emit (Obs.Diag.make ~stage:"solve" ~values:[ ("kappa", 1.0) ] ());
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  Alcotest.(check int) "nothing recorded retroactively" 0 (List.length (recorded ()))

(* ---------------- the diagnose report card on ftsZ ---------------- *)

let test_ftsz_solve_emits_quality_record () =
  let events = Lazy.force traced_solve_events in
  let ds = diags events in
  check_true "a lambda-profile diag is on the stream"
    (List.exists (fun d -> String.equal d.Obs.Diag.d_stage "lambda") ds);
  check_true "a qp diag is on the stream"
    (List.exists (fun d -> String.equal d.Obs.Diag.d_stage "qp") ds);
  let solve =
    match List.find_opt (fun d -> String.equal d.Obs.Diag.d_stage "solve") ds with
    | Some d -> d
    | None -> Alcotest.fail "no per-solve quality record on the stream"
  in
  let v key =
    match Obs.Diag.value solve key with
    | Some v -> v
    | None -> Alcotest.failf "solve record carries no %s" key
  in
  check_true "kappa finite and >= 1" (Float.is_finite (v "kappa") && v "kappa" >= 1.0);
  check_true "lambda positive" (v "lambda" > 0.0);
  check_true "edf within (0, n)" (v "edf" > 0.0 && v "edf" < v "n");
  check_true "rss finite" (Float.is_finite (v "rss"));
  check_true "whiteness statistic present" (Float.is_finite (v "runs_z"));
  (match Obs.Diag.tag solve "cascade" with
  | Some path -> check_true "cascade path non-empty" (String.length path > 0)
  | None -> Alcotest.fail "solve record carries no cascade tag")

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1)) in
  go 0

let render_report ?plot cards =
  let path = Filename.temp_file "deconv_diag_report" ".txt" in
  let oc = open_out path in
  Deconv.Quality.output_report ?plot oc cards;
  close_out oc;
  let text = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  text

let test_ftsz_report_card () =
  let events = Lazy.force traced_solve_events in
  match Deconv.Quality.cards events with
  | [ card ] ->
    check_true "card is healthy on the inverse-crime fixture"
      (Deconv.Quality.healthy card);
    Alcotest.(check string) "verdict" "healthy" (Deconv.Quality.verdict card);
    Alcotest.(check string) "selector recorded" "gcv" card.Deconv.Quality.selector;
    check_true "candidate profile captured"
      (Array.length card.Deconv.Quality.curve >= 10);
    let report = render_report [ card ] in
    List.iter
      (fun needle ->
        check_true (Printf.sprintf "report mentions %s" needle) (contains ~needle report))
      [
        "kappa"; "lambda"; "edf"; "rss"; "white (runs z="; "normality z=";
        "cascade"; "lambda profile"; "1 solve(s), 0 flagged";
      ];
    let no_plot = render_report ~plot:false [ card ] in
    check_true "--no-plot drops the profile plot"
      (not (contains ~needle:"lambda profile" no_plot))
  | cards -> Alcotest.failf "expected exactly one card, got %d" (List.length cards)

let test_report_flags_unhealthy_solve () =
  (* A synthetic stream describing a degraded, ill-conditioned solve with
     serially correlated residuals: every flag the ISSUE names. *)
  let solve =
    Obs.Diag.make ~solve:"gene:7" ~stage:"solve"
      ~values:
        [
          ("kappa", 1e14);
          ("lambda", 1e-9);
          ("entry_lambda", 1e-9);
          ("edf", 12.6);
          ("rss", 0.5);
          ("n", 13.0);
          ("runs_z", -4.2);
          ("normality_z", 5.0);
          ("degradation", 2.0);
          ("active_positivity", 0.0);
          ("qp_iterations", 0.0);
        ]
      ~tags:[ ("solved_by", "unconstrained"); ("cascade", "constrained_qp!>unconstrained") ]
      ()
  in
  match Deconv.Quality.cards [ Obs.Export.Diag solve ] with
  | [ card ] ->
    check_true "card is flagged" (not (Deconv.Quality.healthy card));
    let verdict = Deconv.Quality.verdict card in
    List.iter
      (fun needle ->
        check_true (Printf.sprintf "verdict carries %s" needle) (contains ~needle verdict))
      [
        "kappa-overflow"; "edf-saturated"; "non-white-residuals"; "non-normal-residuals";
        "degraded-cascade";
      ];
    let report = render_report [ card ] in
    check_true "footer counts the flagged solve"
      (contains ~needle:"1 solve(s), 1 flagged" report);
    check_true "json carries the flags"
      (contains ~needle:"kappa-overflow" (Deconv.Quality.report_json [ card ]))
  | cards -> Alcotest.failf "expected exactly one card, got %d" (List.length cards)

(* ---------------- trace diff ---------------- *)

let span ~id ~name ~start_s ~stop_s =
  Obs.Export.Span
    { Obs.Export.id; parent = None; name; start_s; stop_s; attrs = [] }

let solve_diag ~kappa ~rss =
  Obs.Export.Diag
    (Obs.Diag.make ~solve:"gene:0" ~stage:"solve"
       ~values:[ ("kappa", kappa); ("rss", rss) ]
       ())

let test_trace_diff_regression () =
  let a = [ span ~id:1 ~name:"qp.solve" ~start_s:0.0 ~stop_s:0.10 ] in
  let b = [ span ~id:1 ~name:"qp.solve" ~start_s:0.0 ~stop_s:0.25 ] in
  let d = Obs.Tracediff.diff a b in
  check_true "2.5x slowdown is a regression" (Obs.Tracediff.has_regression d);
  (match d.Obs.Tracediff.time with
  | [ row ] ->
    check_true "verdict is Regression"
      (match row.Obs.Tracediff.verdict with Obs.Trajectory.Regression -> true | _ -> false);
    check_close ~tol:1e-9 "ratio" 2.5 row.Obs.Tracediff.ratio
  | rows -> Alcotest.failf "expected one time row, got %d" (List.length rows));
  check_true "no quality rows without diags" (not (Obs.Tracediff.has_quality_delta d))

let test_trace_diff_jitter_passes () =
  (* 10% drift is inside the default 30% band: noise, not a regression. *)
  let a = [ span ~id:1 ~name:"qp.solve" ~start_s:0.0 ~stop_s:0.10 ] in
  let b = [ span ~id:1 ~name:"qp.solve" ~start_s:0.0 ~stop_s:0.11 ] in
  let d = Obs.Tracediff.diff a b in
  check_true "within tolerance" (not (Obs.Tracediff.has_regression d));
  (* sub-noise-floor spans are skipped, not gated, even at huge ratios *)
  let a = [ span ~id:1 ~name:"tiny" ~start_s:0.0 ~stop_s:2e-5 ] in
  let b = [ span ~id:1 ~name:"tiny" ~start_s:0.0 ~stop_s:8e-5 ] in
  let d = Obs.Tracediff.diff a b in
  check_true "below the noise floor: skipped" (not (Obs.Tracediff.has_regression d));
  match d.Obs.Tracediff.time with
  | [ row ] ->
    check_true "verdict is Skipped"
      (match row.Obs.Tracediff.verdict with Obs.Trajectory.Skipped _ -> true | _ -> false)
  | rows -> Alcotest.failf "expected one time row, got %d" (List.length rows)

let test_trace_diff_quality_delta () =
  let a = [ solve_diag ~kappa:1e9 ~rss:0.25 ] in
  let b = [ solve_diag ~kappa:1e9 ~rss:0.25000001 ] in
  let d = Obs.Tracediff.diff a b in
  check_true "bit-level rss drift is a quality delta" (Obs.Tracediff.has_quality_delta d);
  (match d.Obs.Tracediff.quality with
  | [ row ] ->
    Alcotest.(check string) "the drifting statistic" "solve/rss" row.Obs.Tracediff.stat;
    Alcotest.(check string) "joined by solve id" "gene:0" row.Obs.Tracediff.solve
  | rows -> Alcotest.failf "expected one quality row, got %d" (List.length rows));
  (* identical streams: every statistic checked, zero deltas *)
  let d = Obs.Tracediff.diff a a in
  check_true "identical traces have no deltas" (not (Obs.Tracediff.has_quality_delta d));
  Alcotest.(check int) "both statistics were compared" 2 d.Obs.Tracediff.quality_checked;
  (* NaN = NaN is not a delta: both runs failing to produce a statistic *)
  let na = [ solve_diag ~kappa:Float.nan ~rss:0.25 ] in
  let d = Obs.Tracediff.diff na na in
  check_true "NaN on both sides is not a delta" (not (Obs.Tracediff.has_quality_delta d))

let curve_diag curve =
  Obs.Export.Diag
    (Obs.Diag.make ~solve:"gene:0" ~stage:"lambda" ~values:[ ("chosen", 1e-4) ] ~curve ())

let test_trace_diff_curve_score_band () =
  (* Candidate scores near the interpolation boundary round ~ε·κ apart
     between the direct and spectral evaluation orders; the curve-score
     comparison tolerates that band so a perf PR's receipt stays clean. *)
  let a = curve_diag [| (1e-6, 0.25); (1e-5, 1035.0397163648702); (1e-4, 0.5) |] in
  let b = curve_diag [| (1e-6, 0.25); (1e-5, 1034.9733878200932); (1e-4, 0.5) |] in
  let d = Obs.Tracediff.diff [ a ] [ b ] in
  check_true "ε·κ-scale score rounding is not a delta"
    (not (Obs.Tracediff.has_quality_delta d));
  (* a percent-scale score change is a real selector drift *)
  let b = curve_diag [| (1e-6, 0.25); (1e-5, 1035.0397163648702); (1e-4, 0.51) |] in
  let d = Obs.Tracediff.diff [ a ] [ b ] in
  check_true "2% score change is a delta" (Obs.Tracediff.has_quality_delta d);
  (match d.Obs.Tracediff.quality with
  | [ row ] ->
    Alcotest.(check string) "reported at the drifting candidate" "lambda/curve[2].score"
      row.Obs.Tracediff.stat
  | rows -> Alcotest.failf "expected one quality row, got %d" (List.length rows));
  (* the λ grid itself still compares bit-exactly *)
  let b = curve_diag [| (1e-6, 0.25); (1.0000001e-5, 1035.0397163648702); (1e-4, 0.5) |] in
  let d = Obs.Tracediff.diff [ a ] [ b ] in
  check_true "a shifted grid point is a delta" (Obs.Tracediff.has_quality_delta d);
  match d.Obs.Tracediff.quality with
  | [ row ] ->
    Alcotest.(check string) "reported as a lambda drift" "lambda/curve[1].lambda"
      row.Obs.Tracediff.stat
  | rows -> Alcotest.failf "expected one quality row, got %d" (List.length rows)

let test_trace_diff_identical_run =
  (* The acceptance check: a trace diffed against itself is silent on both
     axes. Use the real traced solve so every event kind is exercised. *)
  with_clean_obs @@ fun () ->
  let events = Lazy.force traced_solve_events in
  let d = Obs.Tracediff.diff events events in
  check_true "no time regressions" (not (Obs.Tracediff.has_regression d));
  check_true "no quality deltas" (not (Obs.Tracediff.has_quality_delta d));
  check_true "statistics were actually compared" (d.Obs.Tracediff.quality_checked > 0);
  Alcotest.(check (list string)) "no unmatched solves in A" [] d.Obs.Tracediff.only_a;
  Alcotest.(check (list string)) "no unmatched solves in B" [] d.Obs.Tracediff.only_b

(* ---------------- the runs test ---------------- *)

let test_runs_z_known_sequences () =
  (* Perfectly alternating signs: far more runs than chance — large
     positive z. 20 points, 10+/10-: E[R]=11, Var=100*80/(400*19),
     R=20 -> z = 9/sqrt(4.736...) ~ +4.135. *)
  let alternating = Array.init 20 (fun i -> if i mod 2 = 0 then 1.0 else -1.0) in
  check_close ~tol:1e-3 "alternating signs" 4.135 (Stats.runs_z alternating);
  (* One long positive block then one negative block: R=2, far fewer runs
     than chance — strongly negative z. *)
  let blocks = Array.init 20 (fun i -> if i < 10 then 1.0 else -1.0) in
  check_close ~tol:1e-3 "two blocks" (-4.135) (Stats.runs_z blocks);
  (* All one sign: the statistic is undefined; defined as 0. *)
  Alcotest.(check (float 0.0)) "single sign degenerates to 0" 0.0
    (Stats.runs_z (Array.make 12 1.0));
  Alcotest.(check (float 0.0)) "empty input" 0.0 (Stats.runs_z [||]);
  (* Symmetry: negating the sequence preserves the runs count exactly. *)
  check_close ~tol:1e-12 "sign symmetry" (Stats.runs_z blocks)
    (Stats.runs_z (Array.map (fun v -> -.v) blocks))

let test_normality_z_known_sequences () =
  (* A symmetric two-point distribution has skew 0 and kurtosis -2:
     z_kurt = -2 / sqrt(24/n). *)
  let pm = Array.init 24 (fun i -> if i mod 2 = 0 then 1.0 else -1.0) in
  let zs, zk = Stats.moment_z pm in
  check_close ~tol:1e-9 "symmetric: no skew" 0.0 zs;
  check_close ~tol:1e-9 "two-point kurtosis" (-2.0 /. sqrt (24.0 /. 24.0)) zk;
  check_close ~tol:1e-9 "normality_z is the worse moment" (Float.abs zk)
    (Stats.normality_z pm);
  (* Degenerate inputs are defined as 0, not NaN. *)
  let zs, zk = Stats.moment_z (Array.make 10 3.0) in
  Alcotest.(check (float 0.0)) "constant input: skew z" 0.0 zs;
  Alcotest.(check (float 0.0)) "constant input: kurt z" 0.0 zk;
  Alcotest.(check (float 0.0)) "n<3" 0.0 (Stats.normality_z [| 1.0; 2.0 |])

let tests =
  [
    ( "diag-events",
      [
        case "jsonl round trip" test_diag_json_round_trip;
        case "ambient solve labels" test_diag_solve_labels;
        case "disabled path records nothing" test_diag_disabled_is_noop;
      ] );
    ( "diag-report",
      [
        case "ftsz solve emits the quality record" test_ftsz_solve_emits_quality_record;
        case "ftsz report card" test_ftsz_report_card;
        case "unhealthy solve raises every flag" test_report_flags_unhealthy_solve;
      ] );
    ( "diag-tracediff",
      [
        case "slowdown beyond tolerance regresses" test_trace_diff_regression;
        case "jitter and sub-floor spans pass" test_trace_diff_jitter_passes;
        case "quality drift is exact" test_trace_diff_quality_delta;
        case "curve scores carry a relative band" test_trace_diff_curve_score_band;
        case "identical run diffs silent" test_trace_diff_identical_run;
      ] );
    ( "diag-stats",
      [
        case "runs test on known sequences" test_runs_z_known_sequences;
        case "normality moments on known sequences" test_normality_z_known_sequences;
      ] );
  ]
