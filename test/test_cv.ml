open Numerics
open Testutil

let test_kfold_partition () =
  let rng = Rng.create 202 in
  let folds = Optimize.Cross_validation.kfold_indices rng ~n:23 ~k:5 in
  Alcotest.(check int) "five folds" 5 (Array.length folds);
  (* Disjoint cover of 0..22. *)
  let seen = Array.make 23 0 in
  Array.iter (fun fold -> Array.iter (fun i -> seen.(i) <- seen.(i) + 1) fold) folds;
  Array.iteri (fun i c -> Alcotest.(check int) (Printf.sprintf "index %d covered once" i) 1 c) seen;
  (* Balanced sizes: 23 = 5+5+5+4+4 in some order. *)
  Array.iter
    (fun fold ->
      let len = Array.length fold in
      check_true "balanced folds" (len = 4 || len = 5))
    folds

let test_kfold_deterministic_given_seed () =
  let a = Optimize.Cross_validation.kfold_indices (Rng.create 7) ~n:10 ~k:3 in
  let b = Optimize.Cross_validation.kfold_indices (Rng.create 7) ~n:10 ~k:3 in
  Array.iteri (fun i fold -> Alcotest.(check (array int)) "same folds" fold b.(i)) a

let test_log_grid () =
  let grid = Optimize.Cross_validation.log_lambda_grid ~lo:(-3.0) ~hi:1.0 ~count:5 in
  check_vec ~tol:1e-12 "log spaced" [| 1e-3; 1e-2; 1e-1; 1.0; 10.0 |] grid;
  let single = Optimize.Cross_validation.log_lambda_grid ~lo:(-2.0) ~hi:5.0 ~count:1 in
  check_close ~tol:1e-12 "single point grid" 1e-2 single.(0)

let test_select_picks_minimum () =
  let lambdas = [| 1.0; 2.0; 3.0; 4.0 |] in
  let best, curve =
    Optimize.Cross_validation.select ~lambdas ~fit_and_score:(fun l -> ((), (l -. 3.0) ** 2.0))
  in
  check_close "best lambda" 3.0 best.Optimize.Cross_validation.lambda;
  Alcotest.(check int) "full curve" 4 (Array.length curve)

let test_kfold_score_simple_model () =
  (* Mean-of-train predicting the held-out mean: identical data gives zero error. *)
  let rng = Rng.create 33 in
  let data = Array.make 12 5.0 in
  let score =
    Optimize.Cross_validation.kfold_score ~rng ~k:4 ~n:12
      ~fit_on:(fun ~train _lambda ->
        Vec.mean (Array.map (fun i -> data.(i)) train))
      ~predict_error:(fun model ~test ->
        let errs = Array.map (fun i -> (data.(i) -. model) ** 2.0) test in
        Vec.mean errs)
      0.0
  in
  check_close ~tol:1e-12 "zero error on constant data" 0.0 score

let test_kfold_score_penalizes_variance () =
  (* Heterogeneous data must produce positive CV error. *)
  let rng = Rng.create 35 in
  let data = Array.init 12 (fun i -> float_of_int i) in
  let score =
    Optimize.Cross_validation.kfold_score ~rng ~k:3 ~n:12
      ~fit_on:(fun ~train _ -> Vec.mean (Array.map (fun i -> data.(i)) train))
      ~predict_error:(fun model ~test ->
        Vec.mean (Array.map (fun i -> (data.(i) -. model) ** 2.0) test))
      0.0
  in
  check_true "positive error" (score > 1.0)

let tests =
  [
    ( "cross-validation",
      [
        case "kfold partition" test_kfold_partition;
        case "kfold deterministic" test_kfold_deterministic_given_seed;
        case "log lambda grid" test_log_grid;
        case "select picks minimum" test_select_picks_minimum;
        case "kfold score constant data" test_kfold_score_simple_model;
        case "kfold score penalizes variance" test_kfold_score_penalizes_variance;
      ] );
  ]
