open Numerics
open Testutil

let random_matrix rng n = Mat.init n n (fun _ _ -> Rng.uniform rng ~lo:(-2.0) ~hi:2.0)

let random_spd rng n =
  let a = random_matrix rng n in
  Mat.add (Mat.gram a) (Mat.scale (0.1 *. float_of_int n) (Mat.identity n))

let test_solve_known () =
  let a = Mat.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Linalg.solve a [| 5.0; 10.0 |] in
  check_vec ~tol:1e-12 "2x2 solve" [| 1.0; 3.0 |] x

let test_solve_roundtrip () =
  let rng = Rng.create 101 in
  for n = 1 to 8 do
    let a = random_matrix rng n in
    let x_true = Array.init n (fun i -> float_of_int (i + 1)) in
    let b = Mat.mv a x_true in
    let x = Linalg.solve a b in
    check_vec ~tol:1e-8 (Printf.sprintf "roundtrip n=%d" n) x_true x
  done

let test_solve_permuted () =
  (* Forces pivoting: zero on the initial diagonal. *)
  let a = Mat.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  check_vec ~tol:1e-12 "pivot solve" [| 2.0; 1.0 |] (Linalg.solve a [| 1.0; 2.0 |])

let test_singular_raises () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular matrix" (Linalg.Singular "lu_factor: zero pivot") (fun () ->
      ignore (Linalg.solve a [| 1.0; 1.0 |]))

let test_inverse () =
  let rng = Rng.create 103 in
  let a = random_matrix rng 5 in
  let inv = Linalg.inverse a in
  check_true "A * inv(A) = I" (Mat.approx_equal ~tol:1e-8 (Mat.identity 5) (Mat.matmul a inv))

let test_det () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_close ~tol:1e-12 "det 2x2" (-2.0) (Linalg.det a);
  check_close ~tol:1e-12 "det identity" 1.0 (Linalg.det (Mat.identity 4));
  let singular = Mat.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  check_close "det singular" 0.0 (Linalg.det singular)

let test_det_product () =
  let rng = Rng.create 107 in
  let a = random_matrix rng 4 and b = random_matrix rng 4 in
  check_rel ~tol:1e-9 "det(AB) = det(A)det(B)" (Linalg.det a *. Linalg.det b)
    (Linalg.det (Mat.matmul a b))

let test_cholesky () =
  let rng = Rng.create 109 in
  let a = random_spd rng 6 in
  let x_true = Array.init 6 (fun i -> Float.cos (float_of_int i)) in
  let b = Mat.mv a x_true in
  let factor = Linalg.cholesky_factor a in
  check_vec ~tol:1e-8 "cholesky solve" x_true (Linalg.cholesky_solve factor b)

let test_cholesky_rejects_indefinite () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  Alcotest.check_raises "indefinite rejected"
    (Linalg.Singular "cholesky_factor: non-positive pivot") (fun () ->
      ignore (Linalg.cholesky_factor a))

let test_solve_spd_fallback () =
  (* solve_spd falls back to LU for indefinite symmetric systems. *)
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  let x_true = [| 1.0; -1.0 |] in
  let b = Mat.mv a x_true in
  check_vec ~tol:1e-10 "solve_spd fallback" x_true (Linalg.solve_spd a b)

let test_qr_lstsq_exact () =
  (* Square full-rank: least squares equals exact solve. *)
  let rng = Rng.create 113 in
  let a = random_matrix rng 5 in
  let x_true = Array.init 5 (fun i -> float_of_int i -. 2.0) in
  let b = Mat.mv a x_true in
  check_vec ~tol:1e-8 "square lstsq" x_true (Linalg.qr_lstsq a b)

let test_qr_lstsq_overdetermined () =
  (* Fit a line to noisy points; compare with the normal-equation solution. *)
  let xs = Vec.linspace 0.0 1.0 20 in
  let a = Mat.init 20 2 (fun i j -> if j = 0 then 1.0 else xs.(i)) in
  let b = Array.map (fun x -> 2.0 +. (3.0 *. x)) xs in
  check_vec ~tol:1e-10 "exact line fit" [| 2.0; 3.0 |] (Linalg.qr_lstsq a b);
  (* Residual of the least-squares solution is orthogonal to the columns. *)
  let b_noisy = Array.mapi (fun i v -> v +. (0.1 *. Float.sin (float_of_int i))) b in
  let x = Linalg.qr_lstsq a b_noisy in
  let r = Vec.sub b_noisy (Mat.mv a x) in
  check_close ~tol:1e-10 "residual orthogonal col0" 0.0 (Vec.dot r (Mat.col a 0));
  check_close ~tol:1e-10 "residual orthogonal col1" 0.0 (Vec.dot r (Mat.col a 1))

let test_jacobi_eigen_known () =
  let a = Mat.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let values, vectors = Linalg.jacobi_eigen a in
  check_close ~tol:1e-10 "eigenvalue 3" 3.0 values.(0);
  check_close ~tol:1e-10 "eigenvalue 1" 1.0 values.(1);
  (* Eigenvector property: A v = lambda v. *)
  for k = 0 to 1 do
    let v = Mat.col vectors k in
    let av = Mat.mv a v in
    check_vec ~tol:1e-9 "eigenvector equation" (Vec.scale values.(k) v) av
  done

let test_jacobi_eigen_reconstruction () =
  let rng = Rng.create 127 in
  let a = random_spd rng 6 in
  let values, vectors = Linalg.jacobi_eigen a in
  (* Reconstruct V diag(values) Vt. *)
  let reconstructed = Mat.matmul vectors (Mat.matmul (Mat.diag values) (Mat.transpose vectors)) in
  check_true "eigen reconstruction" (Mat.approx_equal ~tol:1e-8 a reconstructed);
  (* Orthogonality of eigenvectors. *)
  check_true "orthonormal vectors"
    (Mat.approx_equal ~tol:1e-9 (Mat.identity 6) (Mat.matmul (Mat.transpose vectors) vectors))

let test_condition_spd () =
  let a = Mat.diag [| 100.0; 1.0 |] in
  check_rel ~tol:1e-9 "condition of diag" 100.0 (Linalg.condition_spd a);
  check_rel ~tol:1e-9 "condition of identity" 1.0 (Linalg.condition_spd (Mat.identity 3))

let test_solve_many () =
  let rng = Rng.create 131 in
  let a = random_matrix rng 4 in
  let x = Mat.init 4 3 (fun i j -> float_of_int ((i * 3) + j)) in
  let b = Mat.matmul a x in
  check_true "solve_many" (Mat.approx_equal ~tol:1e-8 x (Linalg.solve_many a b))

let prop_solve_residual =
  qcheck ~count:50 "LU solve residual" (QCheck2.Gen.int_range 1 8) (fun n ->
      let rng = Rng.create (n + 997) in
      let a = random_matrix rng n in
      let b = Array.init n (fun _ -> Rng.uniform rng ~lo:(-5.0) ~hi:5.0) in
      match Linalg.solve a b with
      | x -> Vec.norm_inf (Vec.sub (Mat.mv a x) b) < 1e-6
      | exception Linalg.Singular _ -> true)

let tests =
  [
    ( "linalg",
      [
        case "solve known 2x2" test_solve_known;
        case "solve roundtrip" test_solve_roundtrip;
        case "solve with pivoting" test_solve_permuted;
        case "singular raises" test_singular_raises;
        case "inverse" test_inverse;
        case "determinant" test_det;
        case "determinant multiplicativity" test_det_product;
        case "cholesky solve" test_cholesky;
        case "cholesky rejects indefinite" test_cholesky_rejects_indefinite;
        case "solve_spd fallback" test_solve_spd_fallback;
        case "qr lstsq square" test_qr_lstsq_exact;
        case "qr lstsq overdetermined" test_qr_lstsq_overdetermined;
        case "jacobi eigen 2x2" test_jacobi_eigen_known;
        case "jacobi eigen reconstruction" test_jacobi_eigen_reconstruction;
        case "condition number" test_condition_spd;
        case "solve many" test_solve_many;
        prop_solve_residual;
      ] );
  ]
