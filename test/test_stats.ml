open Numerics
open Testutil

let sample = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |]

let test_mean_variance () =
  check_close "mean" 5.0 (Stats.mean sample);
  check_close ~tol:1e-12 "variance (n-1)" (32.0 /. 7.0) (Stats.variance sample);
  check_close ~tol:1e-12 "std" (sqrt (32.0 /. 7.0)) (Stats.std sample);
  check_close "singleton variance" 0.0 (Stats.variance [| 3.0 |])

let test_cv () =
  check_close ~tol:1e-12 "cv" (sqrt (32.0 /. 7.0) /. 5.0) (Stats.cv sample);
  check_true "cv of zero-mean" (Stats.cv [| -1.0; 1.0 |] = Float.infinity)

let test_median_quantile () =
  check_close "median even" 4.5 (Stats.median sample);
  check_close "median odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  check_close "q0 = min" 2.0 (Stats.quantile sample 0.0);
  check_close "q1 = max" 9.0 (Stats.quantile sample 1.0);
  check_close ~tol:1e-12 "interpolated quantile" 4.0 (Stats.quantile sample 0.25)

let test_correlation () =
  let x = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close ~tol:1e-12 "perfect correlation" 1.0 (Stats.correlation x (Vec.scale 2.0 x));
  check_close ~tol:1e-12 "perfect anticorrelation" (-1.0) (Stats.correlation x (Vec.neg x));
  check_close "constant input" 0.0 (Stats.correlation x [| 5.0; 5.0; 5.0; 5.0 |])

let test_covariance () =
  let x = [| 1.0; 2.0; 3.0 |] and y = [| 2.0; 4.0; 6.0 |] in
  check_close ~tol:1e-12 "covariance" 2.0 (Stats.covariance x y)

let test_error_metrics () =
  let truth = [| 1.0; 2.0; 3.0 |] in
  let est = [| 1.0; 2.5; 2.0 |] in
  check_close ~tol:1e-12 "rmse" (sqrt (1.25 /. 3.0)) (Stats.rmse truth est);
  check_close ~tol:1e-12 "mae" 0.5 (Stats.mae truth est);
  check_close ~tol:1e-12 "max abs" 1.0 (Stats.max_abs_error truth est);
  check_close ~tol:1e-12 "nrmse" (sqrt (1.25 /. 3.0) /. 2.0) (Stats.nrmse truth est);
  check_close "identical arrays" 0.0 (Stats.rmse truth truth)

let test_histogram_mass () =
  let rng = Rng.create 71 in
  let xs = Array.init 10_000 (fun _ -> Rng.float rng) in
  let h = Stats.histogram ~bins:20 ~lo:0.0 ~hi:1.0 xs in
  check_close "total mass" 10_000.0 (Vec.sum h.Stats.counts);
  Alcotest.(check int) "edge count" 21 (Array.length h.Stats.edges);
  (* Roughly uniform. *)
  Array.iter (fun c -> check_true "uniform bins" (c > 350.0 && c < 650.0)) h.Stats.counts

let test_histogram_weights () =
  let xs = [| 0.25; 0.75 |] in
  let h = Stats.histogram ~weights:[| 2.0; 5.0 |] ~bins:2 ~lo:0.0 ~hi:1.0 xs in
  check_vec "weighted counts" [| 2.0; 5.0 |] h.Stats.counts

let test_histogram_boundary () =
  (* A sample exactly at hi lands in the last bin, not dropped. *)
  let h = Stats.histogram ~bins:4 ~lo:0.0 ~hi:1.0 [| 1.0; 0.0 |] in
  check_close "value at hi kept" 1.0 h.Stats.counts.(3);
  check_close "value at lo kept" 1.0 h.Stats.counts.(0);
  (* Out-of-range values are dropped. *)
  let h2 = Stats.histogram ~bins:4 ~lo:0.0 ~hi:1.0 [| -0.5; 1.5 |] in
  check_close "out-of-range dropped" 0.0 (Vec.sum h2.Stats.counts)

let test_histogram_density () =
  let rng = Rng.create 73 in
  let xs = Array.init 5_000 (fun _ -> Rng.float rng) in
  let h = Stats.histogram ~bins:10 ~lo:0.0 ~hi:1.0 xs in
  let density = Stats.histogram_density h in
  (* Density integrates to 1 over the binned range. *)
  let integral = ref 0.0 in
  Array.iteri (fun i d -> integral := !integral +. (d *. (h.Stats.edges.(i + 1) -. h.Stats.edges.(i)))) density;
  check_close ~tol:1e-12 "density integral" 1.0 !integral

let prop_rmse_bounds =
  qcheck ~count:100 "mae <= rmse <= max_abs"
    QCheck2.Gen.(array_size (int_range 2 30) (float_bound_inclusive 10.0))
    (fun xs ->
      let ys = Array.map (fun x -> x +. 1.0) xs in
      let mae = Stats.mae xs ys and rmse = Stats.rmse xs ys and mx = Stats.max_abs_error xs ys in
      mae <= rmse +. 1e-9 && rmse <= mx +. 1e-9)

let prop_quantile_monotone =
  qcheck ~count:100 "quantiles are monotone"
    QCheck2.Gen.(array_size (int_range 2 50) (float_bound_inclusive 100.0))
    (fun xs ->
      let q25 = Stats.quantile xs 0.25 and q75 = Stats.quantile xs 0.75 in
      q25 <= q75 +. 1e-9)

let tests =
  [
    ( "stats",
      [
        case "mean and variance" test_mean_variance;
        case "cv" test_cv;
        case "median and quantiles" test_median_quantile;
        case "correlation" test_correlation;
        case "covariance" test_covariance;
        case "error metrics" test_error_metrics;
        case "histogram mass" test_histogram_mass;
        case "histogram weights" test_histogram_weights;
        case "histogram boundaries" test_histogram_boundary;
        case "histogram density" test_histogram_density;
        prop_rmse_bounds;
        prop_quantile_monotone;
      ] );
  ]
