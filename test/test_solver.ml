(* Solver + Lambda + Problem tests: the estimator itself. *)

open Numerics
open Testutil

let params = Cellpop.Params.paper_2011
let times = Array.init 13 (fun i -> 15.0 *. float_of_int i)

let kernel =
  lazy
    (Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create 700) ~n_cells:3000 ~times
       ~n_phi:101)

let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:12

let make_problem ?(sigmas : Vec.t option) ?(use_positivity = true) ?(use_conservation = true)
    ?(use_rate_continuity = true) measurements =
  Deconv.Problem.create ~use_positivity ~use_conservation ~use_rate_continuity ?sigmas
    ~kernel:(Lazy.force kernel) ~basis ~measurements ~params ()

let pulse = Biomodels.Gene_profile.gaussian_pulse ~center:0.5 ~width:0.12 ~height:4.0 ()

let clean_data = lazy (Deconv.Forward.apply_fn (Lazy.force kernel) pulse)

let test_problem_validation () =
  let problem = make_problem (Lazy.force clean_data) in
  Alcotest.(check int) "measurement count" 13 (Deconv.Problem.num_measurements problem);
  let w = Deconv.Problem.weights problem in
  check_vec "unit weights by default" (Vec.ones 13) w;
  let problem2 = make_problem ~sigmas:(Vec.make 13 0.5) (Lazy.force clean_data) in
  check_close ~tol:1e-12 "weights are 1/sigma^2" 4.0 (Deconv.Problem.weights problem2).(0)

let test_unconstrained_fits_data () =
  let problem = make_problem (Lazy.force clean_data) in
  let est = Deconv.Solver.solve_unconstrained ~lambda:1e-6 problem in
  check_true "data misfit small" (est.Deconv.Solver.data_misfit < 1e-2);
  check_true "fitted matches data" (Stats.rmse (Lazy.force clean_data) est.Deconv.Solver.fitted < 0.03)

let test_constrained_recovery_inverse_crime () =
  (* Data generated with the same kernel: recovery should be excellent. *)
  let problem = make_problem (Lazy.force clean_data) in
  let est = Deconv.Solver.solve ~lambda:1e-5 problem in
  let truth = Array.map pulse (Lazy.force kernel).Cellpop.Kernel.phases in
  let c = Deconv.Metrics.compare ~truth ~estimate:est.Deconv.Solver.profile in
  check_true "high correlation" (c.Deconv.Metrics.correlation > 0.99);
  check_true "low nrmse" (c.Deconv.Metrics.nrmse < 0.06)

let test_positivity_enforced () =
  let problem = make_problem (Lazy.force clean_data) in
  let est = Deconv.Solver.solve ~lambda:1e-5 problem in
  Array.iter (fun v -> check_true "profile nonnegative" (v >= -1e-6)) est.Deconv.Solver.profile;
  (* And also at the interval endpoints, which sit outside the grid. *)
  let endpoints = Deconv.Solver.profile_on problem est [| 0.0; 1.0 |] in
  Array.iter (fun v -> check_true "endpoints nonnegative" (v >= -1e-6)) endpoints

let test_unconstrained_goes_negative () =
  (* Without positivity, small dips below zero appear near the profile's
     flat foot — this is exactly why the paper imposes the constraint. *)
  let problem = make_problem (Lazy.force clean_data) in
  let est = Deconv.Solver.solve_unconstrained ~lambda:1e-5 problem in
  check_true "unconstrained dips below zero" (Vec.min est.Deconv.Solver.profile < -1e-4)

let test_equality_constraints_satisfied () =
  let problem = make_problem (Lazy.force clean_data) in
  let est = Deconv.Solver.solve ~lambda:1e-4 problem in
  check_close ~tol:1e-6 "conservation satisfied" 0.0
    (Deconv.Constraints.residual_conservation params basis est.Deconv.Solver.alpha);
  check_close ~tol:1e-6 "rate continuity satisfied" 0.0
    (Deconv.Constraints.residual_rate_continuity params basis est.Deconv.Solver.alpha)

let test_constraints_can_be_disabled () =
  let problem =
    make_problem ~use_conservation:false ~use_rate_continuity:false ~use_positivity:false
      (Lazy.force clean_data)
  in
  let est = Deconv.Solver.solve ~lambda:1e-4 problem in
  (* Without the constraint the residual is generally nonzero. *)
  check_true "conservation not enforced"
    (Float.abs (Deconv.Constraints.residual_conservation params basis est.Deconv.Solver.alpha)
     > 1e-8)

let test_cost_decomposition () =
  let problem = make_problem (Lazy.force clean_data) in
  let est = Deconv.Solver.solve ~lambda:1e-3 problem in
  check_close ~tol:1e-9 "cost = misfit + lambda*roughness"
    (est.Deconv.Solver.data_misfit +. (1e-3 *. est.Deconv.Solver.roughness))
    est.Deconv.Solver.cost

let test_lambda_tradeoff () =
  (* Larger lambda: smoother (lower roughness), worse fit (higher misfit). *)
  let problem = make_problem (Lazy.force clean_data) in
  let small = Deconv.Solver.solve ~lambda:1e-6 problem in
  let large = Deconv.Solver.solve ~lambda:1.0 problem in
  check_true "roughness decreases" (large.Deconv.Solver.roughness < small.Deconv.Solver.roughness);
  check_true "misfit increases" (large.Deconv.Solver.data_misfit > small.Deconv.Solver.data_misfit)

let test_naive_baseline_is_worse_under_noise () =
  (* With noise, the unregularized inversion oscillates wildly; the paper's
     regularized constrained estimate is much closer to the truth. *)
  let rng = Rng.create 701 in
  let noisy, sigmas = Deconv.Noise.apply (Deconv.Noise.Gaussian_fraction 0.10) rng (Lazy.force clean_data) in
  let problem = make_problem ~sigmas noisy in
  let naive = Deconv.Solver.naive problem in
  let regularized = Deconv.Solver.solve ~lambda:1e-3 problem in
  let truth = Array.map pulse (Lazy.force kernel).Cellpop.Kernel.phases in
  let naive_err = Stats.rmse truth naive.Deconv.Solver.profile in
  let reg_err = Stats.rmse truth regularized.Deconv.Solver.profile in
  check_true "naive inversion blows up" (naive_err > 2.0 *. reg_err)

let test_weighted_fit_respects_sigmas () =
  (* Corrupt one point with huge reported sigma: the fit should ignore it. *)
  let data = Array.copy (Lazy.force clean_data) in
  let sigmas = Vec.make 13 0.05 in
  data.(6) <- data.(6) +. 10.0;
  sigmas.(6) <- 1e3;
  let problem = make_problem ~sigmas data in
  let est = Deconv.Solver.solve ~lambda:1e-4 problem in
  let truth = Array.map pulse (Lazy.force kernel).Cellpop.Kernel.phases in
  let c = Deconv.Metrics.compare ~truth ~estimate:est.Deconv.Solver.profile in
  check_true "outlier downweighted" (c.Deconv.Metrics.correlation > 0.98)

(* --- Lambda selection --- *)

let test_gcv_selects_reasonable_lambda () =
  let rng = Rng.create 702 in
  let noisy, sigmas = Deconv.Noise.apply (Deconv.Noise.Gaussian_fraction 0.10) rng (Lazy.force clean_data) in
  let problem = make_problem ~sigmas noisy in
  let lambdas = Optimize.Cross_validation.log_lambda_grid ~lo:(-7.0) ~hi:2.0 ~count:19 in
  let best, curve = Deconv.Lambda.gcv problem ~lambdas in
  Alcotest.(check int) "full curve returned" 19 (Array.length curve);
  check_true "best not at extremes" (best > 1e-7 && best < 1e2);
  (* The GCV-selected lambda recovers well. *)
  let est = Deconv.Solver.solve ~lambda:best problem in
  let truth = Array.map pulse (Lazy.force kernel).Cellpop.Kernel.phases in
  check_true "good recovery at chosen lambda"
    ((Deconv.Metrics.compare ~truth ~estimate:est.Deconv.Solver.profile).Deconv.Metrics.correlation
     > 0.95)

let test_gcv_curve_is_finite () =
  let problem = make_problem (Lazy.force clean_data) in
  let lambdas = Optimize.Cross_validation.log_lambda_grid ~lo:(-6.0) ~hi:1.0 ~count:8 in
  let _, curve = Deconv.Lambda.gcv problem ~lambdas in
  Array.iter
    (fun (p : Deconv.Lambda.curve_point) ->
      check_true "scores finite" (Float.is_finite p.Deconv.Lambda.score))
    curve

let test_kfold_selection_runs () =
  let rng = Rng.create 703 in
  let noisy, sigmas = Deconv.Noise.apply (Deconv.Noise.Gaussian_fraction 0.10) rng (Lazy.force clean_data) in
  let problem = make_problem ~sigmas noisy in
  let lambdas = Optimize.Cross_validation.log_lambda_grid ~lo:(-5.0) ~hi:0.0 ~count:6 in
  let best, curve = Deconv.Lambda.kfold problem ~rng:(Rng.create 1) ~k:4 ~lambdas in
  Alcotest.(check int) "curve points" 6 (Array.length curve);
  check_true "kfold lambda in grid" (Array.exists (fun l -> l = best) lambdas)

let test_select_fixed () =
  let problem = make_problem (Lazy.force clean_data) in
  check_close "fixed passthrough" 0.123
    (Deconv.Lambda.select problem ~method_:(`Fixed 0.123) ())

let test_solver_deterministic () =
  let problem = make_problem (Lazy.force clean_data) in
  let a = Deconv.Solver.solve ~lambda:1e-4 problem in
  let b = Deconv.Solver.solve ~lambda:1e-4 problem in
  check_vec ~tol:0.0 "identical estimates" a.Deconv.Solver.alpha b.Deconv.Solver.alpha

let tests =
  [
    ( "solver",
      [
        case "problem validation" test_problem_validation;
        case "unconstrained fits data" test_unconstrained_fits_data;
        case "inverse-crime recovery" test_constrained_recovery_inverse_crime;
        case "positivity enforced" test_positivity_enforced;
        case "unconstrained goes negative" test_unconstrained_goes_negative;
        case "equality constraints satisfied" test_equality_constraints_satisfied;
        case "constraints can be disabled" test_constraints_can_be_disabled;
        case "cost decomposition" test_cost_decomposition;
        case "lambda tradeoff" test_lambda_tradeoff;
        case "naive baseline worse under noise" test_naive_baseline_is_worse_under_noise;
        case "weighted fit respects sigmas" test_weighted_fit_respects_sigmas;
        case "solver deterministic" test_solver_deterministic;
      ] );
    ( "lambda",
      [
        case "gcv selects reasonable lambda" test_gcv_selects_reasonable_lambda;
        case "gcv curve finite" test_gcv_curve_is_finite;
        case "kfold selection" test_kfold_selection_runs;
        case "fixed passthrough" test_select_fixed;
      ] );
  ]
