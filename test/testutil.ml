(* Shared helpers for the test suites. *)

let check_float ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g (tol %g)" msg expected actual tol

let check_rel ?(tol = 1e-6) msg expected actual =
  let scale = Float.max 1.0 (Float.abs expected) in
  if Float.abs (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.12g, got %.12g (rel tol %g)" msg expected actual tol

let check_true msg condition = Alcotest.(check bool) msg true condition

let check_vec ?(tol = 1e-9) msg expected actual =
  if not (Numerics.Vec.approx_equal ~tol expected actual) then
    Alcotest.failf "%s: vectors differ (tol %g):@ expected %s@ got %s" msg tol
      (Format.asprintf "%a" Numerics.Vec.pp expected)
      (Format.asprintf "%a" Numerics.Vec.pp actual)

let case name f = Alcotest.test_case name `Quick f

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Finite-difference derivative check helpers. *)
let fd_deriv f x h = (f (x +. h) -. f (x -. h)) /. (2.0 *. h)

let fd_deriv2 f x h = (f (x +. h) -. (2.0 *. f x) +. f (x -. h)) /. (h *. h)
