(* Tests for the survivability layer of the genome-scale batch: per-index
   fault isolation in the pool, solve budgets, the crash-safe checkpoint
   journal, the fault injectors' totality, and the fault-isolated batch /
   bootstrap entry points. The full 200-gene chaos scenario lives in
   test_chaos.ml (alias @runtest-chaos). *)

open Numerics
open Testutil

(* Restore --jobs 1 afterwards so suite order never matters. *)
let with_jobs n f =
  Parallel.set_jobs n;
  Fun.protect ~finally:(fun () -> Parallel.set_jobs 1) f

(* --- parallel_map_result: per-index isolation --- *)

let test_map_result_isolation () =
  let pool = Parallel.Pool.create ~domains:3 in
  let got =
    Parallel.Pool.parallel_map_result pool ~chunk:1 ~n:64 (fun i ->
        if i mod 7 = 3 then failwith (Printf.sprintf "boom %d" i) else i * i)
  in
  Alcotest.(check int) "every index has a slot" 64 (Array.length got);
  Array.iteri
    (fun i r ->
      match r with
      | Ok v when i mod 7 <> 3 -> Alcotest.(check int) "clean slot" (i * i) v
      | Error (Failure msg) when i mod 7 = 3 ->
        Alcotest.(check string) "failure lands in its own slot"
          (Printf.sprintf "boom %d" i) msg
      | Ok _ -> Alcotest.failf "index %d should have failed" i
      | Error e -> Alcotest.failf "index %d: unexpected %s" i (Printexc.to_string e))
    got;
  (* The pool stays healthy for plain jobs afterwards. *)
  let next = Parallel.Pool.parallel_map pool ~n:8 succ in
  Alcotest.(check (array int)) "pool reusable" (Array.init 8 succ) next;
  Parallel.Pool.shutdown pool

let test_map_result_all_attempted () =
  (* Unlike parallel_map, a failure cancels nothing: every index runs. *)
  let pool = Parallel.Pool.create ~domains:2 in
  let n = 128 in
  let attempted = Array.make n false in
  let (_ : (unit, exn) result array) =
    Parallel.Pool.parallel_map_result pool ~chunk:1 ~n (fun i ->
        attempted.(i) <- true;
        if i = 0 then failwith "first chunk fails immediately")
  in
  Array.iteri
    (fun i a -> if not a then Alcotest.failf "index %d never attempted" i)
    attempted;
  Parallel.Pool.shutdown pool

let test_map_result_matches_map_on_success () =
  let pool = Parallel.Pool.create ~domains:4 in
  let plain = Parallel.Pool.parallel_map pool ~chunk:5 ~n:41 (fun i -> 3 * i) in
  let isolated = Parallel.Pool.parallel_map_result pool ~chunk:5 ~n:41 (fun i -> 3 * i) in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) "same value as parallel_map" plain.(i) v
      | Error e -> Alcotest.failf "index %d failed: %s" i (Printexc.to_string e))
    isolated;
  Parallel.Pool.shutdown pool

(* --- set_jobs while work is in flight (regression: the pool used to be
   resized under a running job, tearing down workers that still held
   unclaimed chunks) --- *)

let test_set_jobs_in_flight_rejected () =
  with_jobs 2 (fun () ->
      let observed = ref None in
      let (_ : int array) =
        Parallel.parallel_map ~chunk:1 ~n:8 (fun i ->
            (if i = 0 then
               match Parallel.set_jobs 4 with
               | () -> observed := Some `Allowed
               | exception Invalid_argument msg -> observed := Some (`Rejected msg));
            i)
      in
      match !observed with
      | Some (`Rejected msg) ->
        Alcotest.(check string) "error names the contract"
          "Parallel.set_jobs: parallel work is in flight" msg
      | Some `Allowed -> Alcotest.fail "set_jobs succeeded mid-job"
      | None -> Alcotest.fail "index 0 never ran");
  (* Outside a job the resize is legal again. *)
  Parallel.set_jobs 1

(* --- Fault.shuffle totality (lengths < 2 used to raise) --- *)

let check_bitwise msg a b =
  if not (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)) then
    Alcotest.failf "%s: %h vs %h" msg a b

let test_shuffle_total_small () =
  let rng = Rng.create 5 in
  let empty = Robust.Fault.apply Robust.Fault.shuffle rng [||] in
  Alcotest.(check int) "length 0 unchanged" 0 (Array.length empty);
  let one = Robust.Fault.apply Robust.Fault.shuffle rng [| 42.0 |] in
  check_bitwise "singleton unchanged" 42.0 one.(0)

let shuffle_prop =
  (* Over lengths 0-3: total, a permutation, and a *different* order
     whenever one exists (length >= 2 with distinct entries). *)
  qcheck ~count:500 "shuffle is total and permutes (lengths 0-3)"
    QCheck2.Gen.(pair (int_range 0 3) int)
    (fun (n, seed) ->
      let v = Array.init n (fun i -> float_of_int (i + 1)) in
      let s = Robust.Fault.apply Robust.Fault.shuffle (Rng.create seed) v in
      Array.length s = n
      && List.sort compare (Array.to_list (Array.map int_of_float s))
         = List.init n (fun i -> i + 1)
      && (n < 2 || s <> v))

(* --- budgets --- *)

let test_budget_iteration_cap () =
  let b = Robust.Budget.create ~max_iterations:3 () in
  Robust.Budget.tick b;
  Robust.Budget.tick b;
  Robust.Budget.tick b;
  Alcotest.(check int) "three ticks allowed" 3 (Robust.Budget.iterations b);
  (match Robust.Budget.tick b with
  | () -> Alcotest.fail "fourth tick should exhaust the budget"
  | exception Robust.Error.Error (Robust.Error.Budget_exhausted { resource; limit; spent }) ->
    Alcotest.(check string) "resource" "iterations" resource;
    check_close "limit" 3.0 limit;
    check_close "spent" 4.0 spent
  | exception e -> Alcotest.failf "unexpected %s" (Printexc.to_string e));
  (* unlimited never fires *)
  let u = Robust.Budget.unlimited () in
  for _ = 1 to 10_000 do
    Robust.Budget.tick u
  done

let test_budget_rejects_bad_caps () =
  let expect_invalid label f =
    match f () with
    | (_ : Robust.Budget.t) -> Alcotest.failf "%s accepted" label
    | exception Robust.Error.Error (Robust.Error.Invalid_input _) -> ()
  in
  expect_invalid "max_iterations 0" (fun () -> Robust.Budget.create ~max_iterations:0 ());
  expect_invalid "negative seconds" (fun () -> Robust.Budget.create ~max_seconds:(-1.0) ());
  expect_invalid "nan seconds" (fun () -> Robust.Budget.create ~max_seconds:Float.nan ())

(* --- shared small batch fixture --- *)

let params = Cellpop.Params.paper_2011
let times = Array.init 7 (fun i -> 25.0 *. float_of_int i)
let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:8

let fixture =
  lazy
    (let kernel =
       Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create 1203) ~n_cells:300
         ~times ~n_phi:31
     in
     let batch = Deconv.Batch.prepare ~kernel ~basis ~params () in
     let rng = Rng.create 1204 in
     let measurements =
       Mat.of_rows
         (Array.init 12 (fun _ ->
              let center = Rng.uniform rng ~lo:0.2 ~hi:0.8 in
              let profile =
                Biomodels.Gene_profile.gaussian_pulse ~center ~width:0.12 ~height:3.0 ()
              in
              Deconv.Forward.apply_fn kernel profile))
     in
     (batch, measurements))

let corrupt rows m =
  Robust.Fault.apply
    (Robust.Fault.corrupt_rows ~rows (Robust.Fault.nan_at ()))
    (Rng.create 7) m

(* --- Batch.solve_all_result --- *)

let test_batch_outcome_counts () =
  let batch, clean = Lazy.force fixture in
  let faulty = [| 2; 9 |] in
  let outcome =
    Deconv.Batch.solve_all_result batch ~lambda:`Gcv ~measurements:(corrupt faulty clean) ()
  in
  let open Deconv.Batch in
  Alcotest.(check int) "total" 12 (Outcome.total outcome);
  Alcotest.(check int) "ok" 10 (Outcome.ok_count outcome);
  Alcotest.(check int) "failed" 2 (Outcome.failed_count outcome);
  check_true "not fully ok" (not (Outcome.fully_ok outcome));
  Alcotest.(check (list int)) "exactly the injected genes fail, ascending"
    (Array.to_list faulty)
    (List.map fst (Outcome.failures outcome));
  List.iter
    (fun (_, e) ->
      check_true "typed as non-finite input"
        (Robust.Error.same_class e (Robust.Error.Non_finite { stage = "" })))
    (Outcome.failures outcome);
  Alcotest.(check (list (pair string int)))
    "class counts" [ ("non_finite", 2) ] (Outcome.class_counts outcome);
  (match Outcome.estimates outcome with
  | (_ : Deconv.Solver.estimate array) -> Alcotest.fail "estimates should raise"
  | exception Robust.Error.Error e -> (
    match Outcome.failures outcome with
    | (_, first) :: _ ->
      check_true "estimates raises the lowest-index failure" (Robust.Error.equal e first)
    | [] -> Alcotest.fail "no failures recorded"));
  (* And the strict wrapper agrees with the isolated one on clean data. *)
  let strict = Deconv.Batch.solve_all batch ~lambda:`Gcv ~measurements:clean () in
  let isolated =
    Deconv.Batch.solve_all_result batch ~lambda:`Gcv ~measurements:clean ()
  in
  check_true "clean batch fully ok" (Outcome.fully_ok isolated);
  Array.iteri
    (fun g (e : Deconv.Solver.estimate) ->
      match isolated.Outcome.outcomes.(g) with
      | Ok e' ->
        if
          not
            (Int64.equal
               (Int64.bits_of_float e.Deconv.Solver.cost)
               (Int64.bits_of_float e'.Deconv.Solver.cost))
        then Alcotest.failf "gene %d: strict and isolated costs differ bitwise" g
      | Error err -> Alcotest.failf "gene %d failed: %s" g (Robust.Error.to_string err))
    strict

let test_batch_budget_exhaustion () =
  let batch, clean = Lazy.force fixture in
  let outcome =
    Deconv.Batch.solve_all_result batch ~lambda:`Gcv ~max_iterations:2 ~measurements:clean ()
  in
  let open Deconv.Batch in
  Alcotest.(check int) "every gene hits the cap" 12 (Outcome.failed_count outcome);
  List.iter
    (fun (_, e) ->
      check_true "typed budget_exhausted"
        (String.equal (Robust.Error.class_name e) "budget_exhausted"))
    (Outcome.failures outcome)

(* --- checkpoint journal --- *)

let sample_estimate () =
  let batch, clean = Lazy.force fixture in
  match
    Deconv.Batch.solve_gene_result batch ~lambda:`Gcv ~measurements:(Mat.row clean 0) ()
  with
  | Ok e -> e
  | Error e -> Alcotest.failf "fixture gene failed: %s" (Robust.Error.to_string e)

let roundtrip entry =
  match Deconv.Checkpoint.entry_of_line (Deconv.Checkpoint.entry_json entry) with
  | Ok e -> e
  | Error msg -> Alcotest.failf "entry did not round-trip: %s" msg

let test_checkpoint_entry_roundtrip () =
  let est = sample_estimate () in
  let entry = { Deconv.Checkpoint.gene = 3; key = "00deadbeef00cafe"; outcome = Ok est } in
  let back = roundtrip entry in
  Alcotest.(check int) "gene" 3 back.Deconv.Checkpoint.gene;
  Alcotest.(check string) "key" "00deadbeef00cafe" back.Deconv.Checkpoint.key;
  (match back.Deconv.Checkpoint.outcome with
  | Error _ -> Alcotest.fail "outcome flipped to Error"
  | Ok e ->
    (* Hex-float serialization: bit-for-bit, not just approximately. *)
    Array.iteri
      (fun i x ->
        if
          not
            (Int64.equal (Int64.bits_of_float x)
               (Int64.bits_of_float e.Deconv.Solver.alpha.(i)))
        then Alcotest.failf "alpha.(%d) not bit-exact" i)
      est.Deconv.Solver.alpha;
    if
      not
        (Int64.equal
           (Int64.bits_of_float est.Deconv.Solver.lambda)
           (Int64.bits_of_float e.Deconv.Solver.lambda))
    then Alcotest.fail "lambda not bit-exact");
  (* Every error class survives the trip too. *)
  List.iter
    (fun err ->
      let e = { Deconv.Checkpoint.gene = 0; key = "0123456789abcdef"; outcome = Error err } in
      match (roundtrip e).Deconv.Checkpoint.outcome with
      | Ok _ -> Alcotest.fail "error flipped to Ok"
      | Error back ->
        check_true
          (Printf.sprintf "%s round-trips" (Robust.Error.class_name err))
          (Robust.Error.equal err back))
    [
      Robust.Error.Ill_conditioned { cond = 1e17 };
      Robust.Error.Qp_stalled { iterations = 99 };
      Robust.Error.Non_finite { stage = "measurements" };
      Robust.Error.Invalid_input { field = "sigmas"; why = "sigma must be > 0" };
      Robust.Error.Kernel_degenerate;
      Robust.Error.Budget_exhausted
        { resource = "iterations"; limit = 40.0; spent = 41.0 };
      Robust.Error.Unexpected { description = "Failure(\"boom\")" };
    ]

let test_checkpoint_file_lifecycle () =
  let path = Filename.temp_file "deconv-test-journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let est = sample_estimate () in
      let j = Deconv.Checkpoint.create ~path in
      Deconv.Checkpoint.append j
        [ { Deconv.Checkpoint.gene = 0; key = "k0"; outcome = Ok est } ];
      Deconv.Checkpoint.append j
        [
          {
            Deconv.Checkpoint.gene = 1;
            key = "k1";
            outcome = Error Robust.Error.Kernel_degenerate;
          };
        ];
      (match Deconv.Checkpoint.load ~path with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok entries ->
        Alcotest.(check int) "two entries on disk" 2 (List.length entries);
        check_true "find hits on matching key"
          (Option.is_some (Deconv.Checkpoint.find entries ~gene:0 ~key:"k0"));
        check_true "find misses on a stale key"
          (Option.is_none (Deconv.Checkpoint.find entries ~gene:0 ~key:"other")));
      (* create truncates: a fresh journal never leaks old entries. *)
      let (_ : Deconv.Checkpoint.t) = Deconv.Checkpoint.create ~path in
      match Deconv.Checkpoint.load ~path with
      | Ok [] -> ()
      | Ok es -> Alcotest.failf "stale journal leaked %d entries" (List.length es)
      | Error msg -> Alcotest.failf "reload failed: %s" msg)

let test_batch_journal_replay () =
  let batch, clean = Lazy.force fixture in
  let measurements = corrupt [| 5 |] clean in
  let path = Filename.temp_file "deconv-test-replay" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let first =
        Deconv.Batch.solve_all_result batch ~lambda:`Gcv
          ~journal:(Deconv.Checkpoint.create ~path) ~block:4 ~measurements ()
      in
      Alcotest.(check int) "first run solves everything" 0
        first.Deconv.Batch.Outcome.replayed;
      let journal =
        match Deconv.Checkpoint.resume ~path with
        | Ok j -> j
        | Error msg -> Alcotest.failf "resume failed: %s" msg
      in
      let second =
        Deconv.Batch.solve_all_result batch ~lambda:`Gcv ~journal ~block:4 ~measurements ()
      in
      Alcotest.(check int) "second run replays every gene" 12
        second.Deconv.Batch.Outcome.replayed;
      Array.iteri
        (fun g out ->
          match (out, first.Deconv.Batch.Outcome.outcomes.(g)) with
          | Ok a, Ok b ->
            if
              not
                (Int64.equal
                   (Int64.bits_of_float a.Deconv.Solver.cost)
                   (Int64.bits_of_float b.Deconv.Solver.cost))
            then Alcotest.failf "gene %d: replay not bit-exact" g
          | Error a, Error b ->
            check_true "replayed error equal" (Robust.Error.equal a b)
          | _ -> Alcotest.failf "gene %d: replay flipped ok/error" g)
        second.Deconv.Batch.Outcome.outcomes)

(* --- bootstrap isolation --- *)

let test_bootstrap_result_matches_residual () =
  let _, clean = Lazy.force fixture in
  let problem, estimate =
    let kernel =
      Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create 1203) ~n_cells:300
        ~times ~n_phi:31
    in
    let measurements = Mat.row clean 0 in
    let problem = Deconv.Problem.create ~kernel ~basis ~measurements ~params () in
    (problem, Deconv.Solver.solve ~lambda:1e-3 problem)
  in
  let reference =
    Deconv.Bootstrap.residual ~replicates:16 ~level:0.9 problem estimate
      ~rng:(Rng.create 31)
  in
  let outcome =
    Deconv.Bootstrap.residual_result ~replicates:16 ~level:0.9 problem estimate
      ~rng:(Rng.create 31)
  in
  Alcotest.(check int) "attempted" 16 outcome.Deconv.Bootstrap.attempted;
  Alcotest.(check int) "no failures" 0 (List.length outcome.Deconv.Bootstrap.failures);
  match outcome.Deconv.Bootstrap.bands with
  | None -> Alcotest.fail "bands missing"
  | Some bands ->
    Array.iteri
      (fun i x ->
        if
          not
            (Int64.equal (Int64.bits_of_float x)
               (Int64.bits_of_float bands.Deconv.Bootstrap.lower.(i)))
        then Alcotest.failf "lower.(%d) differs from all-or-nothing path" i)
      reference.Deconv.Bootstrap.lower

let test_bootstrap_result_contains_budget_failures () =
  let _, clean = Lazy.force fixture in
  let problem, estimate =
    let kernel =
      Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create 1203) ~n_cells:300
        ~times ~n_phi:31
    in
    let measurements = Mat.row clean 0 in
    let problem = Deconv.Problem.create ~kernel ~basis ~measurements ~params () in
    (problem, Deconv.Solver.solve ~lambda:1e-3 problem)
  in
  let outcome =
    Deconv.Bootstrap.residual_result ~replicates:12 ~max_iterations:1 problem estimate
      ~rng:(Rng.create 32)
  in
  Alcotest.(check int) "every replicate capped" 12
    (List.length outcome.Deconv.Bootstrap.failures);
  check_true "bands absent when all replicates fail"
    (Option.is_none outcome.Deconv.Bootstrap.bands);
  List.iter
    (fun (_, e) ->
      check_true "typed budget_exhausted"
        (String.equal (Robust.Error.class_name e) "budget_exhausted"))
    outcome.Deconv.Bootstrap.failures

let tests =
  [
    ( "resilience-isolation",
      [
        case "map_result captures per-index failures" test_map_result_isolation;
        case "map_result attempts every index" test_map_result_all_attempted;
        case "map_result matches map on success" test_map_result_matches_map_on_success;
        case "set_jobs rejected while work in flight" test_set_jobs_in_flight_rejected;
      ] );
    ( "resilience-faults",
      [
        case "shuffle total on lengths 0 and 1" test_shuffle_total_small;
        shuffle_prop;
      ] );
    ( "resilience-budget",
      [
        case "iteration cap allows exactly n ticks" test_budget_iteration_cap;
        case "bad caps rejected" test_budget_rejects_bad_caps;
      ] );
    ( "resilience-batch",
      [
        case "outcome counts and classes" test_batch_outcome_counts;
        case "budget exhaustion contained per gene" test_batch_budget_exhaustion;
      ] );
    ( "resilience-checkpoint",
      [
        case "entry JSON round-trip is bit-exact" test_checkpoint_entry_roundtrip;
        case "journal lifecycle on disk" test_checkpoint_file_lifecycle;
        case "batch replay from journal" test_batch_journal_replay;
      ] );
    ( "resilience-bootstrap",
      [
        case "isolated bootstrap matches residual bitwise" test_bootstrap_result_matches_residual;
        case "budget failures contained per replicate" test_bootstrap_result_contains_budget_failures;
      ] );
  ]
