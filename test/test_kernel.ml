open Numerics
open Testutil

let params = Cellpop.Params.paper_2011
let times = [| 0.0; 30.0; 60.0; 90.0; 120.0; 150.0; 180.0 |]

let kernel =
  lazy
    (Cellpop.Kernel.estimate params ~rng:(Rng.create 400) ~n_cells:3000 ~times ~n_phi:101)

let test_dimensions () =
  let k = Lazy.force kernel in
  Alcotest.(check int) "phase bins" 101 (Array.length k.Cellpop.Kernel.phases);
  Alcotest.(check (pair int int)) "q dims" (7, 101) (Mat.dims k.Cellpop.Kernel.q);
  check_close ~tol:1e-12 "bin width" (1.0 /. 101.0) k.Cellpop.Kernel.bin_width;
  check_close ~tol:1e-12 "first center" (0.5 /. 101.0) k.Cellpop.Kernel.phases.(0)

let test_normalization () =
  let k = Lazy.force kernel in
  check_true "every row integrates to 1" (Cellpop.Kernel.check_normalization k < 1e-10)

let test_nonnegative () =
  let k = Lazy.force kernel in
  Array.iter (fun q -> check_true "kernel nonnegative" (q >= 0.0)) k.Cellpop.Kernel.q.Mat.data

let test_early_support () =
  (* At t=0 a synchronized culture occupies only phases below ~phi_sst. *)
  let k = Lazy.force kernel in
  let row0 = Cellpop.Kernel.row k 0 in
  Array.iteri
    (fun j q ->
      if k.Cellpop.Kernel.phases.(j) > 0.3 then
        check_close ~tol:1e-12 "no mass at high phase at t=0" 0.0 q)
    row0

let test_support_spreads () =
  (* Later rows occupy more of the phase axis than the first row. *)
  let k = Lazy.force kernel in
  let support row = Array.fold_left (fun acc q -> if q > 1e-6 then acc + 1 else acc) 0 row in
  check_true "support grows"
    (support (Cellpop.Kernel.row k 3) > (2 * support (Cellpop.Kernel.row k 0)))

let test_integrate_constant_profile () =
  let k = Lazy.force kernel in
  let ones = Array.make 101 1.0 in
  let g = Cellpop.Kernel.integrate_profile k ones in
  Array.iter (fun v -> check_close ~tol:1e-10 "constant maps to constant" 1.0 v) g

let test_integrate_linearity () =
  let k = Lazy.force kernel in
  let f1 = Array.init 101 (fun j -> Float.sin (float_of_int j)) in
  let f2 = Array.init 101 (fun j -> Float.cos (float_of_int (2 * j))) in
  let combined = Cellpop.Kernel.integrate_profile k (Vec.add f1 f2) in
  let separate = Vec.add (Cellpop.Kernel.integrate_profile k f1) (Cellpop.Kernel.integrate_profile k f2) in
  check_vec ~tol:1e-9 "forward model linear" separate combined

let test_smoothing_preserves_normalization () =
  let smooth =
    Cellpop.Kernel.estimate ~smooth_window:7 params ~rng:(Rng.create 401) ~n_cells:2000 ~times
      ~n_phi:101
  in
  check_true "smoothed rows still normalized" (Cellpop.Kernel.check_normalization smooth < 1e-10)

let test_deterministic () =
  let build seed =
    Cellpop.Kernel.estimate params ~rng:(Rng.create seed) ~n_cells:500 ~times:[| 0.0; 60.0 |]
      ~n_phi:51
  in
  let a = build 7 and b = build 7 in
  check_true "same kernel from same seed"
    (Mat.approx_equal ~tol:0.0 a.Cellpop.Kernel.q b.Cellpop.Kernel.q)

let test_of_snapshots_consistent () =
  (* Building from explicit snapshots equals estimate with the same stream. *)
  let rng1 = Rng.create 402 in
  let k1 = Cellpop.Kernel.estimate params ~rng:rng1 ~n_cells:800 ~times ~n_phi:61 in
  let rng2 = Rng.create 402 in
  let snapshots = Cellpop.Population.simulate params ~rng:rng2 ~n0:800 ~times in
  let k2 = Cellpop.Kernel.of_snapshots params snapshots ~n_phi:61 ~n0:800 in
  check_true "same kernels" (Mat.approx_equal ~tol:1e-12 k1.Cellpop.Kernel.q k2.Cellpop.Kernel.q)

let test_kernel_against_monte_carlo_signal () =
  (* The discretized forward model matches a direct volume-weighted
     Monte-Carlo average of a smooth profile on the same population. *)
  let rng = Rng.create 403 in
  let snapshots = Cellpop.Population.simulate params ~rng ~n0:5000 ~times in
  let k = Cellpop.Kernel.of_snapshots params snapshots ~n_phi:201 ~n0:5000 in
  let profile phi = 1.0 +. Float.sin (2.0 *. Float.pi *. phi) in
  let from_kernel =
    Cellpop.Kernel.integrate_profile k (Array.map profile k.Cellpop.Kernel.phases)
  in
  let direct =
    Array.map (Cellpop.Population.mean_signal params (fun ~phi -> profile phi)) snapshots
  in
  Array.iteri
    (fun m v -> check_close ~tol:5e-3 (Printf.sprintf "t index %d" m) direct.(m) v)
    from_kernel

let test_mass_concentration_mid_experiment () =
  (* At t=75 min (half a cycle) the synchronized population concentrates
     near phase 0.5-0.7; check the mode lands there. *)
  let k = Lazy.force kernel in
  let row = Cellpop.Kernel.row k 3 in
  (* index 3 = 90 minutes *)
  let mode = k.Cellpop.Kernel.phases.(Vec.argmax row) in
  check_true "mode near expected phase" (mode > 0.4 && mode < 0.85)

let tests =
  [
    ( "kernel",
      [
        case "dimensions" test_dimensions;
        case "normalization" test_normalization;
        case "nonnegative" test_nonnegative;
        case "early support confined" test_early_support;
        case "support spreads over time" test_support_spreads;
        case "constant profile invariant" test_integrate_constant_profile;
        case "forward linearity" test_integrate_linearity;
        case "smoothing preserves normalization" test_smoothing_preserves_normalization;
        case "deterministic" test_deterministic;
        case "of_snapshots consistency" test_of_snapshots_consistent;
        case "matches direct monte carlo" test_kernel_against_monte_carlo_signal;
        case "mid-experiment mass location" test_mass_concentration_mid_experiment;
      ] );
  ]
