open Numerics
open Testutil

let params = Cellpop.Params.paper_2011

let test_params_presets () =
  check_close "2011 transition" 0.15 params.Cellpop.Params.mu_sst;
  check_close "2011 cv" 0.13 params.Cellpop.Params.cv_sst;
  check_close "cycle time" 150.0 params.Cellpop.Params.mean_cycle_minutes;
  check_close "2009 transition" 0.25 Cellpop.Params.plos_2009.Cellpop.Params.mu_sst;
  check_close ~tol:1e-12 "sst std" (0.13 *. 0.15) (Cellpop.Params.sst_std params)

let test_sst_density_normalized () =
  let mass =
    Integrate.simpson (Cellpop.Params.sst_density params) ~a:0.0 ~b:0.5 ~n:4000
  in
  check_close ~tol:1e-6 "density mass" 1.0 mass

let test_draw_statistics () =
  let rng = Rng.create 300 in
  let n = 50_000 in
  let phi_ssts = Array.init n (fun _ -> Cellpop.Cell.draw_phi_sst params rng) in
  check_close ~tol:0.002 "phi_sst mean" 0.15 (Stats.mean phi_ssts);
  check_close ~tol:0.01 "phi_sst cv" 0.13 (Stats.cv phi_ssts);
  let cycles = Array.init n (fun _ -> Cellpop.Cell.draw_cycle_minutes params rng) in
  check_close ~tol:0.5 "cycle mean" 150.0 (Stats.mean cycles);
  check_close ~tol:0.01 "cycle cv" 0.1 (Stats.cv cycles)

let test_founder_synchronized () =
  let rng = Rng.create 301 in
  for _ = 1 to 2_000 do
    let c = Cellpop.Cell.founder params rng in
    check_true "founder is swarmer" (Cellpop.Cell.is_swarmer c);
    check_true "phase below own transition" (c.Cellpop.Cell.phase <= c.Cellpop.Cell.phi_sst)
  done

let test_founder_uniform () =
  let uniform_params = { params with Cellpop.Params.initial_condition = Cellpop.Params.Uniform_phase } in
  let rng = Rng.create 302 in
  let phases = Array.init 20_000 (fun _ -> (Cellpop.Cell.founder uniform_params rng).Cellpop.Cell.phase) in
  check_close ~tol:0.01 "uniform phase mean" 0.5 (Stats.mean phases)

let test_daughters () =
  let rng = Rng.create 303 in
  let sw = Cellpop.Cell.swarmer_daughter params rng in
  check_close "swarmer at phase 0" 0.0 sw.Cellpop.Cell.phase;
  let st = Cellpop.Cell.stalked_daughter params rng in
  check_close ~tol:1e-12 "stalked re-enters at its phi_sst" st.Cellpop.Cell.phi_sst
    st.Cellpop.Cell.phase;
  check_true "stalked is not swarmer" (not (Cellpop.Cell.is_swarmer st))

let test_advance_and_division_time () =
  let cell = { Cellpop.Cell.phase = 0.5; phi_sst = 0.15; cycle_minutes = 100.0 } in
  let moved = Cellpop.Cell.advance cell 25.0 in
  check_close ~tol:1e-12 "phase advance" 0.75 moved.Cellpop.Cell.phase;
  check_close ~tol:1e-12 "time to division" 50.0 (Cellpop.Cell.time_to_division cell);
  check_close ~tol:1e-12 "rate" 0.01 (Cellpop.Cell.rate cell)

let test_population_growth () =
  let rng = Rng.create 304 in
  let times = [| 0.0; 75.0; 150.0; 225.0 |] in
  let snapshots = Cellpop.Population.simulate params ~rng ~n0:2000 ~times in
  let counts = Array.map Cellpop.Population.count snapshots in
  Alcotest.(check int) "initial count" 2000 counts.(0);
  check_true "no division in first half cycle" (counts.(1) = 2000);
  check_true "population grows" (counts.(2) > 2000 && counts.(3) > counts.(2));
  (* After ~1.5 mean cycles every founder divided at least once: the
     population roughly doubles by t=225 (between 1.7x and 2.6x). *)
  let ratio = float_of_int counts.(3) /. 2000.0 in
  check_true "growth magnitude plausible" (ratio > 1.7 && ratio < 2.6)

let test_population_phases_in_range () =
  let rng = Rng.create 305 in
  let snapshots = Cellpop.Population.simulate params ~rng ~n0:500 ~times:[| 0.0; 100.0; 200.0 |] in
  Array.iter
    (fun s ->
      Array.iter
        (fun (c : Cellpop.Cell.t) ->
          check_true "phase in [0,1)" (c.Cellpop.Cell.phase >= 0.0 && c.Cellpop.Cell.phase < 1.0))
        s.Cellpop.Population.cells)
    snapshots

let test_population_deterministic () =
  let sim seed =
    let rng = Rng.create seed in
    Cellpop.Population.simulate params ~rng ~n0:200 ~times:[| 0.0; 120.0 |]
  in
  let a = sim 42 and b = sim 42 in
  Alcotest.(check int) "same counts" (Cellpop.Population.count a.(1)) (Cellpop.Population.count b.(1));
  let pa = Cellpop.Population.phases a.(1) and pb = Cellpop.Population.phases b.(1) in
  check_vec ~tol:0.0 "same phases" pa pb

let test_mean_signal_constant () =
  (* A phase-independent expression shows no population-average distortion. *)
  let rng = Rng.create 306 in
  let snapshots = Cellpop.Population.simulate params ~rng ~n0:1000 ~times:[| 0.0; 60.0; 120.0 |] in
  Array.iter
    (fun s ->
      check_close ~tol:1e-12 "constant passes through" 3.0
        (Cellpop.Population.mean_signal params (fun ~phi:_ -> 3.0) s))
    snapshots

let test_total_volume_grows () =
  let rng = Rng.create 307 in
  let times = [| 0.0; 50.0; 100.0; 150.0; 200.0 |] in
  let snapshots = Cellpop.Population.simulate params ~rng ~n0:1000 ~times in
  let volumes = Array.map (Cellpop.Population.total_volume params) snapshots in
  for i = 0 to Array.length volumes - 2 do
    check_true "population volume increases" (volumes.(i + 1) > volumes.(i))
  done

let test_early_population_all_low_phase () =
  (* With a synchronized start, early snapshots contain no late-phase cells. *)
  let rng = Rng.create 308 in
  let snapshots = Cellpop.Population.simulate params ~rng ~n0:2000 ~times:[| 30.0 |] in
  Array.iter
    (fun (c : Cellpop.Cell.t) ->
      (* After 30 min of a >=30-min cycle, phase <= phi_sst + 30/T_min. *)
      check_true "early phases bounded" (c.Cellpop.Cell.phase < 0.15 *. 1.6 +. (30.0 /. 30.0)))
    snapshots.(0).Cellpop.Population.cells;
  (* More specifically, nobody has reached phase 0.6 after 30 minutes. *)
  let max_phase =
    Array.fold_left
      (fun acc (c : Cellpop.Cell.t) -> Float.max acc c.Cellpop.Cell.phase)
      0.0 snapshots.(0).Cellpop.Population.cells
  in
  check_true "no late-phase cells early" (max_phase < 0.6)

let tests =
  [
    ( "cellpop",
      [
        case "params presets" test_params_presets;
        case "sst density normalized" test_sst_density_normalized;
        case "draw statistics" test_draw_statistics;
        case "founders synchronized" test_founder_synchronized;
        case "founders uniform option" test_founder_uniform;
        case "daughter cells" test_daughters;
        case "advance and division time" test_advance_and_division_time;
        case "population growth" test_population_growth;
        case "phases in range" test_population_phases_in_range;
        case "simulation deterministic" test_population_deterministic;
        case "constant profile passes through" test_mean_signal_constant;
        case "total volume grows" test_total_volume_grows;
        case "synchronized start stays early" test_early_population_all_low_phase;
      ] );
  ]
