open Numerics
open Testutil

let test_trapezoid_linear_exact () =
  (* Trapezoid is exact on affine integrands. *)
  let f x = (3.0 *. x) +. 1.0 in
  check_close ~tol:1e-12 "affine exact" 2.5 (Integrate.trapezoid f ~a:0.0 ~b:1.0 ~n:7)

let test_trapezoid_convergence () =
  let f x = Float.sin x in
  let exact = 1.0 -. Float.cos 1.0 in
  let err n = Float.abs (Integrate.trapezoid f ~a:0.0 ~b:1.0 ~n -. exact) in
  check_true "second-order convergence" (err 80 < err 40 /. 3.5)

let test_trapezoid_sampled () =
  let x = [| 0.0; 0.5; 2.0 |] in
  let y = [| 0.0; 1.0; 4.0 |] in
  (* 0.5*(0+1)/2 + 1.5*(1+4)/2 = 0.25 + 3.75 *)
  check_close ~tol:1e-12 "non-uniform samples" 4.0 (Integrate.trapezoid_sampled ~x ~y)

let test_trapezoid_weights () =
  let x = [| 0.0; 0.5; 2.0 |] in
  let y = [| 0.0; 1.0; 4.0 |] in
  let w = Integrate.trapezoid_weights x in
  check_close ~tol:1e-12 "weights reproduce sampled rule"
    (Integrate.trapezoid_sampled ~x ~y) (Vec.dot w y);
  check_close ~tol:1e-12 "weights sum to length" 2.0 (Vec.sum w)

let test_simpson_cubic_exact () =
  (* Simpson integrates cubics exactly. *)
  let f x = (x *. x *. x) -. (2.0 *. x *. x) +. 5.0 in
  let exact = 0.25 -. (2.0 /. 3.0) +. 5.0 in
  check_close ~tol:1e-12 "cubic exact" exact (Integrate.simpson f ~a:0.0 ~b:1.0 ~n:2);
  (* Odd n is rounded up rather than mis-integrating. *)
  check_close ~tol:1e-12 "odd n handled" exact (Integrate.simpson f ~a:0.0 ~b:1.0 ~n:3)

let test_simpson_convergence () =
  let f x = exp x in
  let exact = Float.exp 1.0 -. 1.0 in
  let err n = Float.abs (Integrate.simpson f ~a:0.0 ~b:1.0 ~n -. exact) in
  check_true "fourth-order convergence" (err 32 < err 16 /. 12.0)

let test_adaptive_simpson () =
  (* A sharply peaked integrand. *)
  let f x = 1.0 /. (1e-4 +. ((x -. 0.3) *. (x -. 0.3))) in
  let exact =
    (Float.atan ((1.0 -. 0.3) /. 0.01) +. Float.atan (0.3 /. 0.01)) /. 0.01
  in
  check_rel ~tol:1e-7 "peaked integrand" exact
    (Integrate.adaptive_simpson ~tol:1e-10 f ~a:0.0 ~b:1.0)

let test_gauss_legendre_nodes () =
  let nodes, weights = Integrate.gauss_legendre_nodes 5 in
  check_close ~tol:1e-12 "weights sum to 2" 2.0 (Vec.sum weights);
  check_close ~tol:1e-12 "symmetric nodes" 0.0 (nodes.(0) +. nodes.(4));
  check_close ~tol:1e-12 "middle node zero" 0.0 nodes.(2);
  (* Known 2-point nodes +-1/sqrt(3). *)
  let nodes2, _ = Integrate.gauss_legendre_nodes 2 in
  check_close ~tol:1e-12 "2-point node" (1.0 /. sqrt 3.0) nodes2.(1)

let test_gauss_legendre_polynomial_exactness () =
  (* n-point GL is exact up to degree 2n-1. *)
  for n = 1 to 8 do
    let degree = (2 * n) - 1 in
    let f x = x ** float_of_int degree +. (x ** float_of_int (degree - 1)) in
    let exact =
      (* int_0^1 of x^d + x^(d-1) *)
      (1.0 /. float_of_int (degree + 1)) +. (1.0 /. float_of_int degree)
    in
    check_rel ~tol:1e-12
      (Printf.sprintf "degree %d with %d points" degree n)
      exact
      (Integrate.gauss_legendre f ~a:0.0 ~b:1.0 ~n)
  done

let test_gauss_legendre_interval_map () =
  check_rel ~tol:1e-12 "mapped interval" (Float.sin 3.0 -. Float.sin 1.0)
    (Integrate.gauss_legendre Float.cos ~a:1.0 ~b:3.0 ~n:12)

let prop_trapezoid_additivity =
  qcheck ~count:50 "interval additivity" (QCheck2.Gen.float_range 0.1 0.9) (fun mid ->
      let f x = (x *. x) +. 1.0 in
      let whole = Integrate.simpson f ~a:0.0 ~b:1.0 ~n:400 in
      let left = Integrate.simpson f ~a:0.0 ~b:mid ~n:400 in
      let right = Integrate.simpson f ~a:mid ~b:1.0 ~n:400 in
      Float.abs (whole -. (left +. right)) < 1e-9)

let tests =
  [
    ( "integrate",
      [
        case "trapezoid affine exact" test_trapezoid_linear_exact;
        case "trapezoid convergence order" test_trapezoid_convergence;
        case "trapezoid sampled" test_trapezoid_sampled;
        case "trapezoid weights" test_trapezoid_weights;
        case "simpson cubic exact" test_simpson_cubic_exact;
        case "simpson convergence order" test_simpson_convergence;
        case "adaptive simpson peak" test_adaptive_simpson;
        case "gauss-legendre nodes" test_gauss_legendre_nodes;
        case "gauss-legendre exactness" test_gauss_legendre_polynomial_exactness;
        case "gauss-legendre interval map" test_gauss_legendre_interval_map;
        prop_trapezoid_additivity;
      ] );
  ]
