(* The Demmler-Reinsch spectral fast path: factorization identities,
   spectral-vs-direct equivalence (solution, GCV / L-curve / k-fold
   scores, edf) on well- and ill-conditioned fixtures, factorization-cache
   behaviour, the QP warm start, and bitwise determinism of the cached
   batch path. The direct per-candidate path is the oracle throughout —
   the two routes must agree to ~1e-8. *)

open Numerics
open Testutil

let params = Cellpop.Params.paper_2011
let times = Array.init 13 (fun i -> 15.0 *. float_of_int i)

let kernel =
  lazy
    (Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create 900) ~n_cells:3000 ~times
       ~n_phi:101)

let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:12

(* Oversized basis: more coefficients (18) than the 13 measurements, so
   the Gram matrix alone is structurally rank-deficient — the regime the
   anchored factorization exists for. *)
let wide_basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:16

let ftsz_data = lazy (Deconv.Forward.apply_fn (Lazy.force kernel) Biomodels.Ftsz.profile)

(* Well-conditioned fixture: the paper's ftsZ pulse on the standard basis. *)
let problem_well =
  lazy
    (Deconv.Problem.create ~kernel:(Lazy.force kernel) ~basis
       ~measurements:(Lazy.force ftsz_data) ~params ())

(* Ill-conditioned fixture: same data, oversized basis, uneven weights. *)
let problem_ill =
  lazy
    (let g = Lazy.force ftsz_data in
     let sigmas = Array.mapi (fun m _ -> 0.25 +. (0.05 *. float_of_int (m mod 3))) g in
     Deconv.Problem.create ~sigmas ~kernel:(Lazy.force kernel) ~basis:wide_basis
       ~measurements:g ~params ())

let fixtures = [ ("well", problem_well); ("ill", problem_ill) ]

let grid = Optimize.Cross_validation.log_lambda_grid ~lo:(-5.0) ~hi:1.0 ~count:9

(* The equivalence pins are 1e-8 in each quantity's natural scale. Both
   routes carry absolute rounding of order eps·kappa times the problem
   scale, so "relative to the data's weighted norm" (for misfit-derived
   quantities) and "relative to the solution norm" (for coefficient
   vectors) are the honest formulations — a bare relative comparison would
   demand more accuracy of a near-interpolating candidate's tiny RSS than
   either path can deliver. Probed margins are >= two orders under the
   pins on both fixtures. *)
let weighted_data_norm problem =
  let w = Deconv.Problem.weights problem in
  let b = problem.Deconv.Problem.measurements in
  Vec.dot b (Vec.mul w b)

let check_vec_scaled ~tol msg expected actual =
  let scale = Float.max 1.0 (Vec.norm_inf expected) in
  Array.iteri
    (fun i v ->
      if Float.abs (v -. actual.(i)) > tol *. scale then
        Alcotest.failf "%s [%d]: expected %.12g, got %.12g (tol %g x scale %g)" msg i v
          actual.(i) tol scale)
    expected

let pieces problem =
  let a = Deconv.Problem.design problem in
  let w = Deconv.Problem.weights problem in
  let omega = Deconv.Problem.penalty problem in
  (a, w, omega)

let spectral_of problem =
  let a, w, omega = pieces problem in
  let fact = Optimize.Spectral.factorize_problem ~a ~weights:w ~penalty:omega () in
  let proj =
    Optimize.Spectral.project_data fact ~a ~weights:w ~b:problem.Deconv.Problem.measurements
  in
  (fact, proj)

(* ---------------- factorization identities ---------------- *)

let test_factorization_identities () =
  let problem = Lazy.force problem_well in
  let a, w, omega = pieces problem in
  let gram = Optimize.Ridge.normal_matrix ~a ~weights:w ~penalty:omega ~lambda:0.0 in
  let fact = Optimize.Spectral.factorize_auto ~gram ~penalty:omega in
  let b = fact.Optimize.Spectral.basis in
  let n = Optimize.Spectral.size fact in
  let s =
    Mat.add gram (Mat.scale fact.Optimize.Spectral.anchor omega)
  in
  (* B' S B = I and B' Omega B = Gamma, entrywise. *)
  let check_congruence name m expected =
    let bt_m_b = Mat.matmul (Mat.transpose b) (Mat.matmul m b) in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        check_close ~tol:1e-7
          (Printf.sprintf "%s (%d,%d)" name i j)
          (expected i j) (Mat.get bt_m_b i j)
      done
    done
  in
  check_congruence "B'SB = I" s (fun i j -> if i = j then 1.0 else 0.0);
  check_congruence "B'OmegaB = Gamma" omega (fun i j ->
      if i = j then fact.Optimize.Spectral.gamma.(i) else 0.0);
  check_true "eigenvalues nonnegative"
    (Array.for_all (fun g -> g >= 0.0) fact.Optimize.Spectral.gamma)

(* ---------------- solution and score equivalence ---------------- *)

let direct_fit problem lambda =
  let a, w, omega = pieces problem in
  Optimize.Ridge.solve ~a ~b:problem.Deconv.Problem.measurements ~weights:w ~penalty:omega
    ~lambda ()

let test_solution_matches_direct () =
  List.iter
    (fun (name, problem) ->
      let problem = Lazy.force problem in
      let fact, proj = spectral_of problem in
      Array.iter
        (fun lambda ->
          let direct = direct_fit problem lambda in
          let spectral = Optimize.Spectral.solution fact proj ~lambda in
          check_vec_scaled ~tol:1e-8
            (Printf.sprintf "%s: x(%g) spectral = direct" name lambda)
            direct.Optimize.Ridge.x spectral)
        grid)
    fixtures

let test_scores_match_direct () =
  List.iter
    (fun (name, problem) ->
      let problem = Lazy.force problem in
      let _, _, omega = pieces problem in
      let fact, proj = spectral_of problem in
      let yty = weighted_data_norm problem in
      Array.iter
        (fun lambda ->
          let direct = direct_fit problem lambda in
          let s = Optimize.Spectral.evaluate fact proj ~lambda in
          let label what = Printf.sprintf "%s: %s(%g)" name what lambda in
          check_close
            ~tol:(1e-8 *. Float.max (Float.abs direct.Optimize.Ridge.rss) yty)
            (label "rss") direct.Optimize.Ridge.rss s.Optimize.Spectral.rss;
          check_rel ~tol:1e-8 (label "edf") direct.Optimize.Ridge.edf s.Optimize.Spectral.edf;
          let x = direct.Optimize.Ridge.x in
          let roughness = Vec.dot x (Mat.mv omega x) in
          check_rel ~tol:1e-8 (label "roughness") roughness s.Optimize.Spectral.roughness)
        grid)
    fixtures

(* GCV through the public selector (spectral path) against the score
   recomputed candidate-by-candidate with direct Ridge solves. *)
let robust_gamma = 1.4

let test_gcv_selector_matches_direct () =
  List.iter
    (fun (name, problem) ->
      let problem = Lazy.force problem in
      let n = float_of_int (Deconv.Problem.num_measurements problem) in
      let yty = weighted_data_norm problem in
      let chosen, curve = Deconv.Lambda.gcv problem ~lambdas:grid in
      Alcotest.(check int)
        (name ^ ": full candidate curve")
        (Array.length grid) (Array.length curve);
      Array.iteri
        (fun i (p : Deconv.Lambda.curve_point) ->
          let fit = direct_fit problem grid.(i) in
          let denom = n -. (robust_gamma *. fit.Optimize.Ridge.edf) in
          let reference =
            if denom <= 0.0 then Float.infinity
            else n *. fit.Optimize.Ridge.rss /. (denom *. denom)
          in
          if Float.is_finite reference then
            (* The score is n·RSS/denom²: 1e-8 in the score's own scale is
               1e-8·n·max(RSS, y'Wy)/denom². *)
            check_close
              ~tol:(1e-8 *. n *. Float.max (Float.abs fit.Optimize.Ridge.rss) yty /. (denom *. denom))
              (Printf.sprintf "%s: GCV score at candidate %d" name i)
              reference p.Deconv.Lambda.score
          else
            check_true
              (Printf.sprintf "%s: GCV score at candidate %d infinite on both paths" name i)
              (not (Float.is_finite p.Deconv.Lambda.score)))
        curve;
      let best = ref 0 in
      Array.iteri (fun i p -> if p.Deconv.Lambda.score < curve.(!best).Deconv.Lambda.score then best := i) curve;
      check_close ~tol:0.0 (name ^ ": argmin lambda") curve.(!best).Deconv.Lambda.lambda chosen)
    fixtures

let test_lcurve_points_match_direct () =
  List.iter
    (fun (name, problem) ->
      let problem = Lazy.force problem in
      let fact, proj = spectral_of problem in
      let yty = weighted_data_norm problem in
      Array.iter
        (fun lambda ->
          let est = Deconv.Solver.solve_unconstrained ~lambda problem in
          let s = Optimize.Spectral.evaluate fact proj ~lambda in
          check_close
            ~tol:(1e-8 *. Float.max (Float.abs est.Deconv.Solver.data_misfit) yty)
            (Printf.sprintf "%s: L-curve misfit(%g)" name lambda)
            est.Deconv.Solver.data_misfit s.Optimize.Spectral.rss;
          check_rel ~tol:1e-8
            (Printf.sprintf "%s: L-curve roughness(%g)" name lambda)
            est.Deconv.Solver.roughness s.Optimize.Spectral.roughness)
        grid)
    fixtures

(* k-fold through the public selector (spectral path, anchored train
   factorizations) against the direct oracle: same fold-master derivation,
   per-candidate Ridge refits on each training subset. *)
let test_kfold_selector_matches_direct () =
  let problem = Lazy.force problem_well in
  let a, w, omega = pieces problem in
  let b = problem.Deconv.Problem.measurements in
  let n = Array.length b in
  let k = 4 in
  let seed = 77 in
  let chosen, curve = Deconv.Lambda.kfold problem ~rng:(Rng.create seed) ~k ~lambdas:grid in
  (* Replicate the selector's fold derivation: one master split off the
     caller's rng, privately copied per candidate. *)
  let fold_master = Rng.split (Rng.create seed) in
  let submatrix rows = Mat.init (Array.length rows) a.Mat.cols (fun i j -> Mat.get a rows.(i) j) in
  let subvec rows v = Array.map (fun i -> v.(i)) rows in
  Array.iteri
    (fun i (p : Deconv.Lambda.curve_point) ->
      let lambda = grid.(i) in
      let reference =
        Optimize.Cross_validation.kfold_score ~rng:(Rng.copy fold_master) ~k ~n
          ~fit_on:(fun ~train lambda ->
            Optimize.Ridge.solve ~a:(submatrix train) ~b:(subvec train b)
              ~weights:(subvec train w) ~penalty:omega ~lambda ())
          ~predict_error:(fun fit ~test ->
            let acc = ref 0.0 in
            Array.iter
              (fun m ->
                let predicted = Vec.dot (Mat.row a m) fit.Optimize.Ridge.x in
                let r = b.(m) -. predicted in
                acc := !acc +. (w.(m) *. r *. r))
              test;
            !acc /. float_of_int (Array.length test))
          lambda
      in
      check_rel ~tol:1e-8 (Printf.sprintf "k-fold score at candidate %d" i) reference
        p.Deconv.Lambda.score)
    curve;
  check_true "chosen lambda is a grid member" (Array.exists (fun l -> Float.equal l chosen) grid)

(* ---------------- factorization cache ---------------- *)

let test_cache_hit_miss () =
  let problem = Lazy.force problem_well in
  let a, w, omega = pieces problem in
  let cache = Optimize.Spectral.Cache.create () in
  let f1 = Optimize.Spectral.factorize_problem ~cache ~a ~weights:w ~penalty:omega () in
  Alcotest.(check int) "first call misses" 1 (Optimize.Spectral.Cache.misses cache);
  Alcotest.(check int) "no hit yet" 0 (Optimize.Spectral.Cache.hits cache);
  let f2 = Optimize.Spectral.factorize_problem ~cache ~a ~weights:w ~penalty:omega () in
  Alcotest.(check int) "second call hits" 1 (Optimize.Spectral.Cache.hits cache);
  Alcotest.(check int) "still one miss" 1 (Optimize.Spectral.Cache.misses cache);
  Alcotest.(check int) "one entry" 1 (Optimize.Spectral.Cache.length cache);
  check_vec ~tol:0.0 "hit returns the identical factorization"
    f1.Optimize.Spectral.gamma f2.Optimize.Spectral.gamma;
  (* A different weight vector is a different key. *)
  let w' = Array.map (fun v -> 2.0 *. v) w in
  let f3 = Optimize.Spectral.factorize_problem ~cache ~a ~weights:w' ~penalty:omega () in
  Alcotest.(check int) "changed weights miss" 2 (Optimize.Spectral.Cache.misses cache);
  Alcotest.(check int) "two entries" 2 (Optimize.Spectral.Cache.length cache);
  check_true "different weights, different spectrum"
    (not (Vec.approx_equal ~tol:1e-12 f1.Optimize.Spectral.gamma f3.Optimize.Spectral.gamma))

let test_problem_key_is_content_hash () =
  let problem = Lazy.force problem_well in
  let a, w, omega = pieces problem in
  let k1 = Optimize.Spectral.problem_key ~a ~weights:w ~penalty:omega in
  let k2 = Optimize.Spectral.problem_key ~a ~weights:(Array.copy w) ~penalty:omega in
  Alcotest.(check string) "same content, same key" k1 k2;
  let w' = Array.copy w in
  w'.(0) <- w'.(0) *. (1.0 +. epsilon_float);
  let k3 = Optimize.Spectral.problem_key ~a ~weights:w' ~penalty:omega in
  check_true "one-ulp weight change flips the key" (not (String.equal k1 k3))

(* Cached and uncached selection agree bit-for-bit: the cache only changes
   where the factorization comes from, never its value. *)
let test_cache_does_not_change_selection () =
  let problem = Lazy.force problem_well in
  let cache = Optimize.Spectral.Cache.create () in
  let plain, curve_plain = Deconv.Lambda.gcv problem ~lambdas:grid in
  let cached, curve_cached = Deconv.Lambda.gcv ~cache problem ~lambdas:grid in
  Alcotest.(check int) "same bits for chosen lambda"
    0
    (Int64.compare (Int64.bits_of_float plain) (Int64.bits_of_float cached));
  Array.iteri
    (fun i (p : Deconv.Lambda.curve_point) ->
      Alcotest.(check int)
        (Printf.sprintf "same bits for score %d" i)
        0
        (Int64.compare
           (Int64.bits_of_float p.Deconv.Lambda.score)
           (Int64.bits_of_float curve_cached.(i).Deconv.Lambda.score)))
    curve_plain

(* ---------------- QP warm start ---------------- *)

let test_warm_start_same_solution_fewer_iterations () =
  let problem = Lazy.force problem_well in
  let cold = Deconv.Solver.solve ~lambda:1e-4 problem in
  let cache = Optimize.Spectral.Cache.create () in
  let warm = Deconv.Solver.solve ~lambda:1e-4 ~cache problem in
  (* Warm and cold runs take different interior-point trajectories to the
     same optimum; each stops at the QP tolerance, so they agree to the
     QP's terminal accuracy in the coefficients' scale, not to rounding. *)
  check_vec_scaled ~tol:1e-6 "warm-started QP reaches the same optimum"
    cold.Deconv.Solver.alpha warm.Deconv.Solver.alpha;
  check_true
    (Printf.sprintf "warm start does not add iterations (%d warm vs %d cold)"
       warm.Deconv.Solver.qp_iterations cold.Deconv.Solver.qp_iterations)
    (warm.Deconv.Solver.qp_iterations <= cold.Deconv.Solver.qp_iterations)

(* ---------------- batch determinism on the cached path ---------------- *)

let batch_measurements =
  lazy
    (let genes = Array.sub Biomodels.Cell_cycle_genes.panel 0 4 in
     Mat.of_rows
       (Array.map
          (fun (g : Biomodels.Cell_cycle_genes.gene) ->
            Deconv.Forward.apply_fn (Lazy.force kernel) g.Biomodels.Cell_cycle_genes.profile)
          genes))

let with_jobs n f =
  Parallel.set_jobs n;
  Fun.protect ~finally:(fun () -> Parallel.set_jobs 1) f

let test_batch_cached_path_jobs_independent () =
  let batch = Deconv.Batch.prepare ~kernel:(Lazy.force kernel) ~basis ~params () in
  let measurements = Lazy.force batch_measurements in
  let run () =
    let outcome = Deconv.Batch.solve_all_result batch ~measurements () in
    check_true "all genes solved" (Deconv.Batch.Outcome.fully_ok outcome);
    Deconv.Batch.Outcome.estimates outcome
  in
  let reference = with_jobs 1 run in
  let wide = with_jobs 3 run in
  Array.iteri
    (fun g (est : Deconv.Solver.estimate) ->
      let other = wide.(g) in
      Array.iteri
        (fun j v ->
          Alcotest.(check int)
            (Printf.sprintf "gene %d profile[%d] bit-identical across jobs" g j)
            0
            (Int64.compare (Int64.bits_of_float v)
               (Int64.bits_of_float other.Deconv.Solver.profile.(j))))
        est.Deconv.Solver.profile)
    reference

(* ---------------- diag stream still carries the curve ---------------- *)

let test_diag_curve_survives_fast_path () =
  Obs.Span.reset ();
  let sink, recorded = Obs.Export.memory () in
  Obs.Export.install sink;
  Fun.protect
    ~finally:(fun () ->
      Obs.Export.uninstall ();
      Obs.Span.reset ())
    (fun () ->
      let problem = Lazy.force problem_well in
      let cache = Optimize.Spectral.Cache.create () in
      let chosen = Deconv.Lambda.select problem ~method_:`Gcv ~lambdas:grid ~cache () in
      let lambda_events =
        List.filter_map
          (function
            | Obs.Export.Diag d when String.equal d.Obs.Diag.d_stage "lambda" -> Some d
            | _ -> None)
          (recorded ())
      in
      match lambda_events with
      | [ d ] ->
        Alcotest.(check int)
          "diag event carries the full candidate curve" (Array.length grid)
          (Array.length d.Obs.Diag.d_curve);
        (match Obs.Diag.value d "chosen" with
        | Some v -> check_close ~tol:0.0 "diag chosen matches" chosen v
        | None -> Alcotest.fail "lambda diag event has no 'chosen' value")
      | l -> Alcotest.failf "expected exactly one lambda diag event, got %d" (List.length l))

let tests =
  [
    ( "spectral",
      [
        case "factorization identities" test_factorization_identities;
        case "solution equals direct" test_solution_matches_direct;
        case "scores equal direct" test_scores_match_direct;
        case "gcv selector equals direct" test_gcv_selector_matches_direct;
        case "lcurve points equal direct" test_lcurve_points_match_direct;
        case "kfold selector equals direct" test_kfold_selector_matches_direct;
        case "cache hit/miss" test_cache_hit_miss;
        case "problem key is a content hash" test_problem_key_is_content_hash;
        case "cache never changes selection" test_cache_does_not_change_selection;
        case "warm start: same optimum, no extra iterations"
          test_warm_start_same_solution_fewer_iterations;
        case "cached batch is jobs-independent" test_batch_cached_path_jobs_independent;
        case "diag curve survives the fast path" test_diag_curve_survives_fast_path;
      ] );
  ]
