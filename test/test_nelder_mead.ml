open Numerics
open Testutil

let test_quadratic () =
  let f x = ((x.(0) -. 3.0) ** 2.0) +. ((x.(1) +. 1.0) ** 2.0) in
  let result = Optimize.Nelder_mead.minimize f ~x0:[| 0.0; 0.0 |] in
  check_true "converged" result.Optimize.Nelder_mead.converged;
  check_vec ~tol:1e-4 "quadratic minimum" [| 3.0; -1.0 |] result.Optimize.Nelder_mead.x;
  check_close ~tol:1e-7 "minimum value" 0.0 result.Optimize.Nelder_mead.f

let test_rosenbrock () =
  let f x =
    let a = 1.0 -. x.(0) and b = x.(1) -. (x.(0) *. x.(0)) in
    (a *. a) +. (100.0 *. b *. b)
  in
  let options = { Optimize.Nelder_mead.default_options with max_iter = 5000 } in
  let result = Optimize.Nelder_mead.minimize ~options f ~x0:[| -1.2; 1.0 |] in
  check_vec ~tol:1e-3 "rosenbrock minimum" [| 1.0; 1.0 |] result.Optimize.Nelder_mead.x

let test_one_dimensional () =
  let f x = Float.cos x.(0) in
  let result = Optimize.Nelder_mead.minimize f ~x0:[| 2.5 |] in
  check_close ~tol:1e-4 "cos minimum at pi" Float.pi result.Optimize.Nelder_mead.x.(0)

let test_four_dimensional_sphere () =
  let f x = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 x in
  let options = { Optimize.Nelder_mead.default_options with max_iter = 4000 } in
  let result = Optimize.Nelder_mead.minimize ~options f ~x0:[| 1.0; -2.0; 3.0; -4.0 |] in
  check_true "near origin" (Vec.norm2 result.Optimize.Nelder_mead.x < 1e-3)

let test_evaluation_count () =
  let count = ref 0 in
  let f x =
    incr count;
    x.(0) *. x.(0)
  in
  let result = Optimize.Nelder_mead.minimize f ~x0:[| 5.0 |] in
  Alcotest.(check int) "reported evaluations" !count result.Optimize.Nelder_mead.evaluations

let test_max_iter_respected () =
  let f x = x.(0) *. x.(0) in
  let options = { Optimize.Nelder_mead.default_options with max_iter = 3 } in
  let result = Optimize.Nelder_mead.minimize ~options f ~x0:[| 100.0 |] in
  check_true "stops at limit" (result.Optimize.Nelder_mead.iterations <= 3);
  check_true "not converged" (not result.Optimize.Nelder_mead.converged)

let test_bounded () =
  (* Unconstrained optimum at (3, -1); box [0,2] x [0,2] clamps it. *)
  let f x = ((x.(0) -. 3.0) ** 2.0) +. ((x.(1) +. 1.0) ** 2.0) in
  let result =
    Optimize.Nelder_mead.minimize_bounded ~lo:[| 0.0; 0.0 |] ~hi:[| 2.0; 2.0 |] f
      ~x0:[| 1.0; 1.0 |]
  in
  check_vec ~tol:1e-3 "clamped optimum" [| 2.0; 0.0 |] result.Optimize.Nelder_mead.x

let tests =
  [
    ( "nelder-mead",
      [
        case "quadratic bowl" test_quadratic;
        case "rosenbrock" test_rosenbrock;
        case "one dimensional" test_one_dimensional;
        case "4d sphere" test_four_dimensional_sphere;
        case "evaluation count" test_evaluation_count;
        case "max iterations" test_max_iter_respected;
        case "bounded" test_bounded;
      ] );
  ]
