open Numerics
open Testutil

let params = Cellpop.Params.paper_2011
let boundaries = Cellpop.Celltype.mid_boundaries

let cell phase phi_sst = { Cellpop.Cell.phase; phi_sst; cycle_minutes = 150.0 }

let test_classification () =
  let open Cellpop.Celltype in
  Alcotest.(check string) "swarmer" "SW"
    (category_to_string (classify boundaries (cell 0.1 0.15)));
  Alcotest.(check string) "early stalked" "STE"
    (category_to_string (classify boundaries (cell 0.3 0.15)));
  Alcotest.(check string) "early predivisional" "STEPD"
    (category_to_string (classify boundaries (cell 0.7 0.15)));
  Alcotest.(check string) "late predivisional" "STLPD"
    (category_to_string (classify boundaries (cell 0.95 0.15)))

let test_per_cell_transition () =
  (* The SW boundary is per-cell: same phase, different phi_sst. *)
  let open Cellpop.Celltype in
  Alcotest.(check string) "below own transition" "SW"
    (category_to_string (classify boundaries (cell 0.18 0.25)));
  Alcotest.(check string) "above own transition" "STE"
    (category_to_string (classify boundaries (cell 0.18 0.15)))

let test_boundary_presets () =
  check_close "low ste-stepd" 0.6 Cellpop.Celltype.low_boundaries.Cellpop.Celltype.ste_to_stepd;
  check_close "high stepd-stlpd" 0.9 Cellpop.Celltype.high_boundaries.Cellpop.Celltype.stepd_to_stlpd;
  check_close "mid is midpoint" 0.65 Cellpop.Celltype.mid_boundaries.Cellpop.Celltype.ste_to_stepd

let test_fractions_sum_to_one () =
  let rng = Rng.create 500 in
  let snapshots = Cellpop.Population.simulate params ~rng ~n0:3000 ~times:[| 0.0; 75.0; 150.0 |] in
  Array.iter
    (fun s ->
      let f = Cellpop.Celltype.fractions boundaries s in
      Alcotest.(check int) "four categories" 4 (Array.length f);
      check_close ~tol:1e-9 "fractions sum to 1" 1.0 (Vec.sum f))
    snapshots

let test_initial_population_all_swarmer () =
  let rng = Rng.create 501 in
  let snapshots = Cellpop.Population.simulate params ~rng ~n0:2000 ~times:[| 0.0 |] in
  let f = Cellpop.Celltype.fractions boundaries snapshots.(0) in
  check_close "all swarmer at t=0" 1.0 f.(0)

let test_fractions_dynamics () =
  (* The paper's Fig. 4 qualitative shapes: SW falls as cells transition,
     then rises again after divisions create new swarmers; STE rises then
     falls; predivisional types appear late. *)
  let rng = Rng.create 502 in
  let times = [| 0.0; 40.0; 75.0; 110.0; 150.0 |] in
  let snapshots = Cellpop.Population.simulate params ~rng ~n0:5000 ~times in
  let f = Cellpop.Celltype.fractions_over_time boundaries snapshots in
  (* SW at 40 min is far below 1. *)
  check_true "sw drops" (Mat.get f 1 0 < 0.3);
  (* STE peaks in the middle of the cycle. *)
  check_true "ste present at 40" (Mat.get f 1 1 > 0.5);
  check_true "ste declines by 150" (Mat.get f 4 1 < Mat.get f 2 1);
  (* Late predivisional cells only appear near the end of the cycle. *)
  check_close "no stlpd at 40" 0.0 (Mat.get f 1 3);
  check_true "stlpd appears late" (Mat.get f 4 3 > 0.05);
  (* New swarmer daughters after division push SW back up. *)
  check_true "sw recovers at 150" (Mat.get f 4 0 > Mat.get f 2 0)

let test_boundary_ranges_bracket () =
  (* Low boundaries classify more cells as predivisional than high ones. *)
  let rng = Rng.create 503 in
  let snapshots = Cellpop.Population.simulate params ~rng ~n0:4000 ~times:[| 120.0 |] in
  let low = Cellpop.Celltype.fractions Cellpop.Celltype.low_boundaries snapshots.(0) in
  let high = Cellpop.Celltype.fractions Cellpop.Celltype.high_boundaries snapshots.(0) in
  check_true "low boundary gives more STEPD+STLPD" (low.(2) +. low.(3) >= high.(2) +. high.(3))

let test_all_categories () =
  Alcotest.(check int) "four categories listed" 4 (List.length Cellpop.Celltype.all_categories)

let tests =
  [
    ( "celltype",
      [
        case "classification" test_classification;
        case "per-cell transition boundary" test_per_cell_transition;
        case "boundary presets" test_boundary_presets;
        case "fractions sum to one" test_fractions_sum_to_one;
        case "initial population all swarmer" test_initial_population_all_swarmer;
        case "fraction dynamics match biology" test_fractions_dynamics;
        case "boundary ranges bracket" test_boundary_ranges_bracket;
        case "category list" test_all_categories;
      ] );
  ]
