open Numerics
open Testutil

let spd_2 = Mat.of_rows [| [| 2.0; 0.0 |]; [| 0.0; 2.0 |] |]

let test_unconstrained () =
  (* min x^2 + y^2 - 2x - 4y -> (1, 2). H = 2I, g = (-2, -4). *)
  let x = Optimize.Qp.unconstrained spd_2 [| -2.0; -4.0 |] in
  check_vec ~tol:1e-10 "unconstrained min" [| 1.0; 2.0 |] x

let test_equality_constrained () =
  (* min x^2 + y^2 s.t. x + y = 2 -> (1, 1). *)
  let c = Mat.of_rows [| [| 1.0; 1.0 |] |] in
  let x, multipliers = Optimize.Qp.solve_equality spd_2 [| 0.0; 0.0 |] ~c ~d:[| 2.0 |] in
  check_vec ~tol:1e-10 "equality min" [| 1.0; 1.0 |] x;
  Alcotest.(check int) "one multiplier" 1 (Array.length multipliers)

let test_solve_no_constraints () =
  let solution =
    Optimize.Qp.solve { h = spd_2; g = [| -2.0; -4.0 |]; c_eq = None; d_eq = None; a_ineq = None; b_ineq = None }
  in
  check_vec ~tol:1e-10 "solve without constraints" [| 1.0; 2.0 |] solution.Optimize.Qp.x;
  check_true "tiny KKT residual" (solution.Optimize.Qp.kkt_residual < 1e-8)

let test_solve_equality_only () =
  let c = Mat.of_rows [| [| 1.0; -1.0 |] |] in
  let solution =
    Optimize.Qp.solve
      { h = spd_2; g = [| -2.0; -4.0 |]; c_eq = Some c; d_eq = Some [| 0.0 |]; a_ineq = None; b_ineq = None }
  in
  (* min (x-1)^2 + (y-2)^2 s.t. x = y -> (1.5, 1.5). *)
  check_vec ~tol:1e-10 "equality-only" [| 1.5; 1.5 |] solution.Optimize.Qp.x

let test_inactive_inequality () =
  (* Constraint x >= 0 is inactive at the unconstrained optimum (1,2). *)
  let a = Mat.of_rows [| [| 1.0; 0.0 |] |] in
  let solution =
    Optimize.Qp.solve
      { h = spd_2; g = [| -2.0; -4.0 |]; c_eq = None; d_eq = None; a_ineq = Some a; b_ineq = Some [| 0.0 |] }
  in
  check_vec ~tol:1e-5 "inactive constraint ignored" [| 1.0; 2.0 |] solution.Optimize.Qp.x

let test_active_inequality () =
  (* min (x+1)^2 + (y-2)^2 s.t. x >= 0: optimum clamps to x = 0. *)
  let a = Mat.of_rows [| [| 1.0; 0.0 |] |] in
  let solution =
    Optimize.Qp.solve
      { h = spd_2; g = [| 2.0; -4.0 |]; c_eq = None; d_eq = None; a_ineq = Some a; b_ineq = Some [| 0.0 |] }
  in
  check_vec ~tol:1e-5 "clamped solution" [| 0.0; 2.0 |] solution.Optimize.Qp.x;
  check_true "constraint reported active" (List.mem 0 solution.Optimize.Qp.active)

let test_mixed_constraints () =
  (* min (x-2)^2 + (y-2)^2 s.t. x + y = 2 (equality), x >= 1.5 (ineq).
     Without the inequality: (1,1). With it: x = 1.5, y = 0.5. *)
  let c = Mat.of_rows [| [| 1.0; 1.0 |] |] in
  let a = Mat.of_rows [| [| 1.0; 0.0 |] |] in
  let solution =
    Optimize.Qp.solve
      {
        h = spd_2;
        g = [| -4.0; -4.0 |];
        c_eq = Some c;
        d_eq = Some [| 2.0 |];
        a_ineq = Some a;
        b_ineq = Some [| 1.5 |];
      }
  in
  check_vec ~tol:1e-5 "mixed constraints" [| 1.5; 0.5 |] solution.Optimize.Qp.x

let test_many_redundant_inequalities () =
  (* The positivity-on-a-grid pattern: many nearly identical rows. *)
  let n = 4 in
  let h = Mat.scale 2.0 (Mat.identity n) in
  let g = Array.init n (fun i -> if i = 0 then 4.0 else -2.0) in
  (* x_i >= 0 for all i, repeated three times each. *)
  let rows = Array.init (3 * n) (fun r -> Array.init n (fun j -> if j = r mod n then 1.0 else 0.0)) in
  let a = Mat.of_rows rows in
  let solution =
    Optimize.Qp.solve
      { h; g; c_eq = None; d_eq = None; a_ineq = Some a; b_ineq = Some (Vec.zeros (3 * n)) }
  in
  check_close ~tol:1e-5 "first coordinate clamped" 0.0 solution.Optimize.Qp.x.(0);
  for i = 1 to n - 1 do
    check_close ~tol:1e-5 "others at unconstrained optimum" 1.0 solution.Optimize.Qp.x.(i)
  done

let test_kkt_residual_small () =
  let rng = Rng.create 555 in
  let n = 6 in
  let base = Mat.init n n (fun _ _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let h = Mat.add (Mat.gram base) (Mat.identity n) in
  let g = Array.init n (fun _ -> Rng.uniform rng ~lo:(-2.0) ~hi:2.0) in
  let a = Mat.identity n in
  let solution =
    Optimize.Qp.solve
      { h; g; c_eq = None; d_eq = None; a_ineq = Some a; b_ineq = Some (Vec.zeros n) }
  in
  check_true "KKT residual" (solution.Optimize.Qp.kkt_residual < 1e-6);
  Array.iter (fun xi -> check_true "feasible" (xi >= -1e-7)) solution.Optimize.Qp.x

let prop_ipm_matches_projection =
  (* For H = 2I, g = -2c, positivity x >= 0: solution is max(c, 0). *)
  qcheck ~count:50 "nonnegative projection"
    QCheck2.Gen.(array_size (int_range 1 6) (float_range (-3.0) 3.0))
    (fun c ->
      let n = Array.length c in
      let h = Mat.scale 2.0 (Mat.identity n) in
      let g = Vec.scale (-2.0) c in
      let solution =
        Optimize.Qp.solve
          { h; g; c_eq = None; d_eq = None; a_ineq = Some (Mat.identity n); b_ineq = Some (Vec.zeros n) }
      in
      let expected = Array.map (fun v -> Float.max v 0.0) c in
      Vec.approx_equal ~tol:1e-5 expected solution.Optimize.Qp.x)

let tests =
  [
    ( "qp",
      [
        case "unconstrained" test_unconstrained;
        case "equality constrained" test_equality_constrained;
        case "solve without constraints" test_solve_no_constraints;
        case "solve equality only" test_solve_equality_only;
        case "inactive inequality" test_inactive_inequality;
        case "active inequality" test_active_inequality;
        case "mixed constraints" test_mixed_constraints;
        case "redundant inequality grid" test_many_redundant_inequalities;
        case "kkt residual and feasibility" test_kkt_residual_small;
        prop_ipm_matches_projection;
      ] );
  ]
