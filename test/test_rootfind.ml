open Numerics
open Testutil

let test_bisect_cos () =
  let root = Rootfind.bisect Float.cos ~a:0.0 ~b:3.0 in
  check_close ~tol:1e-10 "cos root" (Float.pi /. 2.0) root

let test_brent_cos () =
  let root = Rootfind.brent Float.cos ~a:0.0 ~b:3.0 in
  check_close ~tol:1e-10 "cos root" (Float.pi /. 2.0) root

let test_brent_polynomial () =
  let f x = (x *. x *. x) -. (2.0 *. x) -. 5.0 in
  let root = Rootfind.brent f ~a:2.0 ~b:3.0 in
  check_close ~tol:1e-9 "wilkinson example" 2.0945514815 root

let test_endpoint_roots () =
  let f x = x -. 1.0 in
  check_close "root at a" 1.0 (Rootfind.bisect f ~a:1.0 ~b:2.0);
  check_close "root at b" 1.0 (Rootfind.brent f ~a:0.0 ~b:1.0)

let test_no_bracket () =
  Alcotest.check_raises "same sign raises" Rootfind.No_bracket (fun () ->
      ignore (Rootfind.bisect (fun x -> (x *. x) +. 1.0) ~a:(-1.0) ~b:1.0));
  Alcotest.check_raises "brent same sign" Rootfind.No_bracket (fun () ->
      ignore (Rootfind.brent (fun x -> (x *. x) +. 1.0) ~a:(-1.0) ~b:1.0))

let test_find_bracket () =
  let f x = x -. 5.0 in
  (match Rootfind.find_bracket f ~x0:0.0 ~step:1.0 ~max_expand:10 with
  | Some (a, b) ->
    check_true "bracket straddles root" (f a *. f b <= 0.0);
    check_true "root inside" (a <= 5.0 && 5.0 <= b)
  | None -> Alcotest.fail "bracket should exist");
  (match Rootfind.find_bracket (fun x -> (x *. x) +. 1.0) ~x0:0.0 ~step:1.0 ~max_expand:5 with
  | None -> ()
  | Some _ -> Alcotest.fail "no bracket exists for positive function")

let test_brent_flat_function () =
  (* Nearly flat near the root: still converges. *)
  let f x = (x -. 2.0) ** 3.0 in
  let root = Rootfind.brent f ~a:0.0 ~b:5.0 in
  check_close ~tol:1e-4 "cubic tangent root" 2.0 root

let prop_brent_finds_linear_roots =
  qcheck ~count:100 "brent on random lines"
    QCheck2.Gen.(pair (float_range 0.5 5.0) (float_range (-3.0) 3.0))
    (fun (slope, root) ->
      let f x = slope *. (x -. root) in
      let found = Rootfind.brent f ~a:(root -. 10.0) ~b:(root +. 10.0) in
      Float.abs (found -. root) < 1e-8)

let tests =
  [
    ( "rootfind",
      [
        case "bisect cos" test_bisect_cos;
        case "brent cos" test_brent_cos;
        case "brent cubic" test_brent_polynomial;
        case "roots at endpoints" test_endpoint_roots;
        case "no bracket raises" test_no_bracket;
        case "find_bracket" test_find_bracket;
        case "brent on flat function" test_brent_flat_function;
        prop_brent_finds_linear_roots;
      ] );
  ]
