open Numerics
open Testutil

let temp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_csv_roundtrip () =
  let path = temp_path "deconv_test_roundtrip.csv" in
  let rows = [ [| 1.0; 2.5 |]; [| -3.0; 4.0e-3 |] ] in
  Dataio.Csv.write ~path ~header:[ "a"; "b" ] ~rows;
  let header, read_rows = Dataio.Csv.read ~path in
  Alcotest.(check (list string)) "header" [ "a"; "b" ] header;
  Alcotest.(check int) "row count" 2 (List.length read_rows);
  check_vec ~tol:1e-12 "first row" [| 1.0; 2.5 |] (List.nth read_rows 0);
  check_vec ~tol:1e-12 "second row" [| -3.0; 4.0e-3 |] (List.nth read_rows 1);
  Sys.remove path

let test_csv_headerless () =
  let path = temp_path "deconv_test_headerless.csv" in
  Dataio.Csv.write ~path ~header:[] ~rows:[ [| 7.0 |] ];
  let header, rows = Dataio.Csv.read ~path in
  Alcotest.(check (list string)) "no header" [] header;
  (match rows with
  | row :: _ -> check_vec "data kept" [| 7.0 |] row
  | [] -> Alcotest.fail "expected one data row");
  Sys.remove path

let test_csv_columns () =
  let path = temp_path "deconv_test_columns.csv" in
  Dataio.Csv.write_columns ~path ~header:[ "t"; "g" ]
    ~columns:[ [| 0.0; 1.0; 2.0 |]; [| 5.0; 6.0; 7.0 |] ];
  let header, columns = Dataio.Csv.read_columns ~path in
  Alcotest.(check (list string)) "header" [ "t"; "g" ] header;
  check_vec "first column" [| 0.0; 1.0; 2.0 |] (List.nth columns 0);
  check_vec "second column" [| 5.0; 6.0; 7.0 |] (List.nth columns 1);
  Sys.remove path

let test_csv_empty () =
  let path = temp_path "deconv_test_empty.csv" in
  Dataio.Csv.write ~path ~header:[] ~rows:[];
  let header, rows = Dataio.Csv.read ~path in
  Alcotest.(check (list string)) "no header" [] header;
  Alcotest.(check int) "no rows" 0 (List.length rows);
  Sys.remove path

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_table_rendering () =
  let t = Dataio.Table.create ~title:"demo" ~headers:[ "x"; "y" ] in
  Dataio.Table.add_row t [| 1.0; 2.0 |];
  Dataio.Table.add_row t [| 30.5; -4.25 |];
  let s = Dataio.Table.to_string t in
  check_true "title present" (String.length s > 0 && String.sub s 0 7 = "== demo");
  check_true "contains first row" (contains_substring s "30.5")

let test_table_add_rows_columns () =
  let t = Dataio.Table.create ~title:"cols" ~headers:[ "a"; "b" ] in
  Dataio.Table.add_rows t [ [| 1.0; 2.0 |]; [| 10.0; 20.0 |] ];
  let s = Dataio.Table.to_string t in
  (* Two data lines plus title and header. *)
  Alcotest.(check int) "line count" 4 (List.length (String.split_on_char '\n' (String.trim s)))

let test_judd_dataset_shape () =
  Alcotest.(check int) "six time points" 6 (Array.length Dataio.Datasets.judd_times);
  for i = 0 to 5 do
    let total =
      Dataio.Datasets.judd_sw.(i) +. Dataio.Datasets.judd_ste.(i)
      +. Dataio.Datasets.judd_stepd.(i) +. Dataio.Datasets.judd_stlpd.(i)
    in
    check_close ~tol:1e-9 "fractions sum to 1" 1.0 total
  done;
  (* Qualitative shapes preserved by the digitization. *)
  check_true "ste decays"
    (Dataio.Datasets.judd_ste.(5) < Dataio.Datasets.judd_ste.(0));
  check_true "sw rises late" (Dataio.Datasets.judd_sw.(5) > Dataio.Datasets.judd_sw.(0));
  check_true "stlpd rises" (Dataio.Datasets.judd_stlpd.(5) > Dataio.Datasets.judd_stlpd.(0))

let test_judd_matrix_matches_arrays () =
  let m = Dataio.Datasets.judd_fractions in
  Alcotest.(check (pair int int)) "matrix dims" (6, 4) (Numerics.Mat.dims m);
  check_close "entry check" Dataio.Datasets.judd_stepd.(2) (Mat.get m 2 2)

let test_measurement_grids () =
  Alcotest.(check int) "13 lv samples" 13 (Array.length Dataio.Datasets.lv_measurement_times);
  check_close "lv last sample" 180.0 Dataio.Datasets.lv_measurement_times.(12);
  Alcotest.(check int) "13 ftsz samples" 13 (Array.length Dataio.Datasets.ftsz_measurement_times);
  check_close ~tol:1e-9 "ftsz last sample" 160.0 Dataio.Datasets.ftsz_measurement_times.(12)

let test_ascii_plot () =
  let s =
    Dataio.Ascii_plot.render ~width:40 ~height:10 ~title:"t"
      [ { Dataio.Ascii_plot.label = "series"; glyph = '*'; xs = [| 0.0; 1.0 |]; ys = [| 0.0; 1.0 |] } ]
  in
  check_true "contains glyph" (String.contains s '*');
  check_true "contains legend" (String.length s > 40);
  let empty = Dataio.Ascii_plot.render [] in
  Alcotest.(check string) "empty plot" "(empty plot)\n" empty

let tests =
  [
    ( "dataio",
      [
        case "csv roundtrip" test_csv_roundtrip;
        case "csv headerless" test_csv_headerless;
        case "csv columns" test_csv_columns;
        case "csv empty" test_csv_empty;
        case "table rendering" test_table_rendering;
        case "table add_rows" test_table_add_rows_columns;
        case "judd dataset shape" test_judd_dataset_shape;
        case "judd matrix" test_judd_matrix_matches_arrays;
        case "measurement grids" test_measurement_grids;
        case "ascii plot" test_ascii_plot;
      ] );
  ]
