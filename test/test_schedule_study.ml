open Numerics
open Testutil

let params = Cellpop.Params.paper_2011
let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:10

let candidate =
  lazy
    (Deconv.Schedule.candidates params ~rng:(Rng.create 1900) ~n_cells:1500
       ~times:(Array.init 19 (fun i -> 10.0 *. float_of_int i))
       ~n_phi:101 ~basis)

let test_candidate_shapes () =
  let c = Lazy.force candidate in
  Alcotest.(check (pair int int)) "design dims" (19, 10) (Mat.dims c.Deconv.Schedule.design)

let test_greedy_properties () =
  let c = Lazy.force candidate in
  let chosen = Deconv.Schedule.greedy c ~budget:6 in
  Alcotest.(check int) "budget respected" 6 (List.length chosen);
  (* Distinct, sorted, in range. *)
  let rec distinct_sorted = function
    | a :: (b :: _ as rest) -> a < b && distinct_sorted rest
    | _ -> true
  in
  check_true "distinct and sorted" (distinct_sorted chosen);
  List.iter (fun r -> check_true "in range" (r >= 0 && r < 19)) chosen

let test_greedy_beats_worst_schedule () =
  let c = Lazy.force candidate in
  let chosen = Deconv.Schedule.greedy c ~budget:5 in
  let optimal =
    Deconv.Schedule.log_det_information c.Deconv.Schedule.design ~rows:chosen ~ridge:1e-8
  in
  (* A pathological schedule: five nearly identical early times. *)
  let clustered = [ 0; 1; 2; 3; 4 ] in
  let bad =
    Deconv.Schedule.log_det_information c.Deconv.Schedule.design ~rows:clustered ~ridge:1e-8
  in
  check_true "greedy beats clustered schedule" (optimal > bad +. 1.0)

let test_information_monotone_in_rows () =
  let c = Lazy.force candidate in
  let base = [ 2; 8; 14 ] in
  let smaller = Deconv.Schedule.log_det_information c.Deconv.Schedule.design ~rows:base ~ridge:1e-8 in
  let larger =
    Deconv.Schedule.log_det_information c.Deconv.Schedule.design ~rows:(5 :: base) ~ridge:1e-8
  in
  check_true "adding a row cannot lose information" (larger >= smaller -. 1e-9)

let test_times_of () =
  let c = Lazy.force candidate in
  check_vec "row indices to times" [| 0.0; 50.0; 180.0 |]
    (Deconv.Schedule.times_of c [ 0; 5; 18 ])

let test_random_profile_properties () =
  let rng = Rng.create 1901 in
  for _ = 1 to 50 do
    let profile = Deconv.Study.random_profile rng in
    for j = 0 to 20 do
      let phi = float_of_int j /. 20.0 in
      check_true "nonnegative" (profile phi >= 0.0);
      check_true "bounded" (profile phi < 30.0)
    done
  done

let test_random_profiles_differ () =
  let rng = Rng.create 1902 in
  let p1 = Deconv.Study.random_profile rng in
  let p2 = Deconv.Study.random_profile rng in
  let grid = Vec.linspace 0.0 1.0 21 in
  check_true "profiles differ"
    (not (Vec.approx_equal ~tol:1e-9 (Array.map p1 grid) (Array.map p2 grid)))

let test_study_summary () =
  let times = Array.init 13 (fun i -> 15.0 *. float_of_int i) in
  let config =
    { (Deconv.Pipeline.default_config ~times) with
      Deconv.Pipeline.n_cells_kernel = 800;
      n_cells_data = 800;
      n_phi = 101;
      seed = 3;
    }
  in
  let comparisons = Deconv.Study.recovery_distribution ~runs:5 config ~rng:(Rng.create 1903) in
  Alcotest.(check int) "five runs" 5 (Array.length comparisons);
  let s = Deconv.Study.summarize comparisons in
  Alcotest.(check int) "runs recorded" 5 s.Deconv.Study.runs;
  check_true "median correlation sensible" (s.Deconv.Study.median_correlation > 0.8);
  let q25, q75 = s.Deconv.Study.iqr_rmse in
  check_true "iqr ordered" (q25 <= q75);
  check_true "fraction in [0,1]"
    (s.Deconv.Study.fraction_above_09 >= 0.0 && s.Deconv.Study.fraction_above_09 <= 1.0);
  check_true "to_string renders" (String.length (Deconv.Study.to_string s) > 20)

let tests =
  [
    ( "schedule-design",
      [
        case "candidate shapes" test_candidate_shapes;
        case "greedy properties" test_greedy_properties;
        case "greedy beats clustered schedule" test_greedy_beats_worst_schedule;
        case "information monotonicity" test_information_monotone_in_rows;
        case "times_of" test_times_of;
      ] );
    ( "study",
      [
        case "random profiles nonnegative" test_random_profile_properties;
        case "random profiles differ" test_random_profiles_differ;
        case "summary statistics" test_study_summary;
      ] );
  ]
