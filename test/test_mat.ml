open Numerics
open Testutil

let m22 a b c d = Mat.of_rows [| [| a; b |]; [| c; d |] |]

let check_mat ?(tol = 1e-9) msg expected actual =
  if not (Mat.approx_equal ~tol expected actual) then
    Alcotest.failf "%s: matrices differ:@ expected@ %a got@ %a" msg Mat.pp expected Mat.pp actual

let test_constructors () =
  let i3 = Mat.identity 3 in
  check_close "identity diag" 1.0 (Mat.get i3 1 1);
  check_close "identity off-diag" 0.0 (Mat.get i3 0 2);
  let d = Mat.diag [| 1.0; 2.0 |] in
  check_mat "diag" (m22 1.0 0.0 0.0 2.0) d;
  let init = Mat.init 2 3 (fun i j -> float_of_int ((10 * i) + j)) in
  check_close "init layout" 12.0 (Mat.get init 1 2)

let test_rows_cols () =
  let m = Mat.init 3 2 (fun i j -> float_of_int ((10 * i) + j)) in
  check_vec "row" [| 10.0; 11.0 |] (Mat.row m 1);
  check_vec "col" [| 1.0; 11.0; 21.0 |] (Mat.col m 1);
  Mat.set_row m 0 [| 5.0; 6.0 |];
  check_vec "set_row" [| 5.0; 6.0 |] (Mat.row m 0);
  Mat.set_col m 0 [| 7.0; 8.0; 9.0 |];
  check_vec "set_col" [| 7.0; 8.0; 9.0 |] (Mat.col m 0)

let test_transpose_involution () =
  let m = Mat.init 3 4 (fun i j -> float_of_int ((i * 7) + j)) in
  check_mat "transpose twice" m (Mat.transpose (Mat.transpose m))

let test_matmul () =
  let a = m22 1.0 2.0 3.0 4.0 in
  let b = m22 5.0 6.0 7.0 8.0 in
  check_mat "matmul known" (m22 19.0 22.0 43.0 50.0) (Mat.matmul a b);
  check_mat "identity neutral" a (Mat.matmul a (Mat.identity 2));
  (* Associativity on small random matrices. *)
  let rng = Rng.create 9 in
  let rand r c = Mat.init r c (fun _ _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let x = rand 3 4 and y = rand 4 2 and z = rand 2 5 in
  check_mat ~tol:1e-9 "associativity" (Mat.matmul (Mat.matmul x y) z) (Mat.matmul x (Mat.matmul y z))

let test_mv_tmv () =
  let a = Mat.init 3 2 (fun i j -> float_of_int (i + j)) in
  let x = [| 1.0; 2.0 |] in
  check_vec "mv" [| 2.0; 5.0; 8.0 |] (Mat.mv a x);
  let y = [| 1.0; 1.0; 1.0 |] in
  check_vec "tmv = transpose mv" (Mat.mv (Mat.transpose a) y) (Mat.tmv a y)

let test_gram () =
  let rng = Rng.create 13 in
  let a = Mat.init 5 3 (fun _ _ -> Rng.uniform rng ~lo:(-2.0) ~hi:2.0) in
  check_mat ~tol:1e-12 "gram = AtA" (Mat.matmul (Mat.transpose a) a) (Mat.gram a);
  check_true "gram symmetric" (Mat.is_symmetric (Mat.gram a))

let test_trace_frobenius () =
  let a = m22 1.0 2.0 3.0 4.0 in
  check_close "trace" 5.0 (Mat.trace a);
  check_close "frobenius" (sqrt 30.0) (Mat.frobenius a);
  check_close "max_abs" 4.0 (Mat.max_abs a)

let test_hcat_vcat () =
  let a = m22 1.0 2.0 3.0 4.0 in
  let b = m22 5.0 6.0 7.0 8.0 in
  let h = Mat.hcat a b in
  Alcotest.(check (pair int int)) "hcat dims" (2, 4) (Mat.dims h);
  check_vec "hcat row" [| 1.0; 2.0; 5.0; 6.0 |] (Mat.row h 0);
  let v = Mat.vcat a b in
  Alcotest.(check (pair int int)) "vcat dims" (4, 2) (Mat.dims v);
  check_vec "vcat col" [| 1.0; 3.0; 5.0; 7.0 |] (Mat.col v 0)

let test_add_sub_scale_map () =
  let a = m22 1.0 2.0 3.0 4.0 in
  check_mat "add" (Mat.scale 2.0 a) (Mat.add a a);
  check_mat "sub" (Mat.zeros 2 2) (Mat.sub a a);
  check_mat "map" (m22 1.0 4.0 9.0 16.0) (Mat.map (fun x -> x *. x) a)

let prop_transpose_matmul =
  qcheck ~count:50 "(AB)t = Bt At"
    QCheck2.Gen.(pair (int_range 1 5) (int_range 1 5))
    (fun (r, c) ->
      let rng = Rng.create ((r * 100) + c) in
      let a = Mat.init r c (fun _ _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
      let b = Mat.init c r (fun _ _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
      Mat.approx_equal ~tol:1e-9
        (Mat.transpose (Mat.matmul a b))
        (Mat.matmul (Mat.transpose b) (Mat.transpose a)))

let prop_mv_linearity =
  qcheck ~count:50 "A(x+y) = Ax + Ay" (QCheck2.Gen.int_range 1 6) (fun n ->
      let rng = Rng.create (n * 31) in
      let a = Mat.init n n (fun _ _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
      let x = Array.init n (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
      let y = Array.init n (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
      Vec.approx_equal ~tol:1e-9 (Mat.mv a (Vec.add x y)) (Vec.add (Mat.mv a x) (Mat.mv a y)))

let tests =
  [
    ( "mat",
      [
        case "constructors" test_constructors;
        case "rows and cols" test_rows_cols;
        case "transpose involution" test_transpose_involution;
        case "matmul" test_matmul;
        case "mv and tmv" test_mv_tmv;
        case "gram" test_gram;
        case "trace frobenius max_abs" test_trace_frobenius;
        case "hcat vcat" test_hcat_vcat;
        case "add sub scale map" test_add_sub_scale_map;
        prop_transpose_matmul;
        prop_mv_linearity;
      ] );
  ]
