open Numerics
open Testutil

let params = Cellpop.Params.paper_2011
let times = Array.init 13 (fun i -> 15.0 *. float_of_int i)

let kernel =
  lazy
    (Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create 2600) ~n_cells:2000 ~times
       ~n_phi:101)

let pulse = Biomodels.Gene_profile.gaussian_pulse ~center:0.5 ~width:0.12 ~height:4.0 ()

let test_second_difference_annihilates_lines () =
  let d2 = Deconv.Grid_solver.second_difference 20 ~bin_width:0.05 in
  Alcotest.(check (pair int int)) "dims" (18, 20) (Mat.dims d2);
  let line = Array.init 20 (fun i -> 3.0 +. (2.0 *. float_of_int i)) in
  check_close ~tol:1e-9 "affine annihilated" 0.0 (Vec.norm_inf (Mat.mv d2 line))

let test_second_difference_scaling () =
  (* ||D f||^2 approximates the integral of f''^2: for f = x^2 on [0,1],
     f'' = 2, integral = 4. *)
  let n = 201 in
  let h = 1.0 /. float_of_int n in
  let d2 = Deconv.Grid_solver.second_difference n ~bin_width:h in
  let f = Array.init n (fun i -> let x = (float_of_int i +. 0.5) *. h in x *. x) in
  let rough = Mat.mv d2 f in
  check_rel ~tol:0.03 "approximates int f''^2" 4.0 (Vec.dot rough rough)

let test_grid_recovery () =
  let clean = Deconv.Forward.apply_fn (Lazy.force kernel) pulse in
  let est = Deconv.Grid_solver.solve ~lambda:1e-4 (Lazy.force kernel) ~measurements:clean () in
  let truth = Array.map pulse (Lazy.force kernel).Cellpop.Kernel.phases in
  check_true "grid solver recovers" (Stats.correlation truth est.Deconv.Grid_solver.profile > 0.98)

let test_grid_positivity () =
  let clean = Deconv.Forward.apply_fn (Lazy.force kernel) pulse in
  let noisy, sigmas =
    Deconv.Noise.apply (Deconv.Noise.Gaussian_fraction 0.15) (Rng.create 2601) clean
  in
  let est = Deconv.Grid_solver.solve ~lambda:1e-4 (Lazy.force kernel) ~measurements:noisy ~sigmas () in
  Array.iter (fun v -> check_true "nonnegative" (v >= -1e-7)) est.Deconv.Grid_solver.profile;
  let unconstrained =
    Deconv.Grid_solver.solve ~lambda:1e-5 ~use_positivity:false (Lazy.force kernel)
      ~measurements:noisy ~sigmas ()
  in
  check_true "unconstrained dips negative" (Vec.min unconstrained.Deconv.Grid_solver.profile < 0.0)

let test_grid_lambda_tradeoff () =
  let clean = Deconv.Forward.apply_fn (Lazy.force kernel) pulse in
  let small = Deconv.Grid_solver.solve ~lambda:1e-6 (Lazy.force kernel) ~measurements:clean () in
  let large = Deconv.Grid_solver.solve ~lambda:1e-1 (Lazy.force kernel) ~measurements:clean () in
  check_true "roughness decreases with lambda"
    (large.Deconv.Grid_solver.roughness < small.Deconv.Grid_solver.roughness);
  check_true "misfit increases with lambda"
    (large.Deconv.Grid_solver.data_misfit >= small.Deconv.Grid_solver.data_misfit)

let test_grid_matches_spline_scale () =
  (* The two representations should agree broadly on the same problem. *)
  let clean = Deconv.Forward.apply_fn (Lazy.force kernel) pulse in
  let grid = Deconv.Grid_solver.solve ~lambda:1e-4 (Lazy.force kernel) ~measurements:clean () in
  let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:12 in
  let problem =
    Deconv.Problem.create ~kernel:(Lazy.force kernel) ~basis ~measurements:clean ~params ()
  in
  let spline = Deconv.Solver.solve ~lambda:1e-4 problem in
  check_true "representations agree"
    (Stats.correlation grid.Deconv.Grid_solver.profile spline.Deconv.Solver.profile > 0.97)

let tests =
  [
    ( "grid-solver",
      [
        case "second difference annihilates lines" test_second_difference_annihilates_lines;
        case "second difference scaling" test_second_difference_scaling;
        case "recovery" test_grid_recovery;
        case "positivity" test_grid_positivity;
        case "lambda tradeoff" test_grid_lambda_tradeoff;
        case "agrees with spline estimator" test_grid_matches_spline_scale;
      ] );
  ]
