(* Tests for the interprocedural checker (Callgraph + Effects + Policy,
   rules R10-R12). Offending code lives inside string literals handed to
   [Policy.check_sources], so this file itself stays lint-clean. *)

open Testutil

let build sources =
  let graph, errors = Analysis.Callgraph.build sources in
  List.iter (fun (p, m) -> Alcotest.failf "parse error in %s: %s" p m) errors;
  graph

let ids graph = List.map (fun d -> d.Analysis.Callgraph.id) (Analysis.Callgraph.defs graph)

let caps_of sources id =
  let graph = build sources in
  let eff = Analysis.Effects.analyze graph in
  match eff.Analysis.Effects.caps_of id with
  | Some caps -> caps
  | None -> Alcotest.failf "no capabilities inferred for %s" id

let raised caps =
  List.map fst (Analysis.Effects.Names.bindings caps.Analysis.Effects.raises)

let check_raises msg expected caps =
  Alcotest.(check (list string)) msg (List.sort String.compare expected) (raised caps)

let check_result ?disabled ?roots sources =
  Analysis.Policy.check_sources ?disabled ?roots sources

let rules_of (r : Analysis.Policy.check_result) =
  List.sort String.compare
    (List.map (fun f -> f.Analysis.Finding.rule) r.Analysis.Policy.findings)

(* ---------------- callgraph construction ---------------- *)

let test_qualification () =
  let graph =
    build
      [
        ("lib/numerics/linalg.ml", "let solve x = x");
        ("lib/core/solver.ml", "let go x = x");
        ("lib/parallel/parallel.ml", "let jobs () = 1");
        ("test/scratch.ml", "let t = 1");
      ]
  in
  let have = ids graph in
  List.iter
    (fun id -> check_true (id ^ " is defined") (List.mem id have))
    [ "Numerics.Linalg.solve"; "Deconv.Solver.go"; "Parallel.jobs"; "Scratch.t" ]

let test_mli_exports () =
  let graph =
    build
      [
        ("lib/numerics/linalg.ml", "let solve x = x\nlet internal_pivot x = x");
        ("lib/numerics/linalg.mli", "val solve : 'a -> 'a");
      ]
  in
  let public id =
    match Analysis.Callgraph.find graph id with
    | Some d -> d.Analysis.Callgraph.public
    | None -> Alcotest.failf "%s not in graph" id
  in
  check_true "exported val is public" (public "Numerics.Linalg.solve");
  check_true "unexported val is private"
    (not (public "Numerics.Linalg.internal_pivot"))

let test_functor_body_defs () =
  let graph =
    build
      [
        ( "lib/core/maker.ml",
          "module Make (X : sig val n : int end) = struct\n\
          \  let boom () = failwith \"functor\"\n\
           end" );
      ]
  in
  check_true "functor-body def is collected"
    (Option.is_some (Analysis.Callgraph.find graph "Deconv.Maker.Make.boom"))

(* ---------------- effect propagation ---------------- *)

let test_direct_raise_and_intrinsics () =
  let caps =
    caps_of [ ("lib/core/a.ml", "let f () = failwith \"x\"") ] "Deconv.A.f"
  in
  check_raises "failwith maps to Failure" [ "Failure" ] caps;
  let caps =
    caps_of [ ("lib/core/a.ml", "let f () = invalid_arg \"x\"") ] "Deconv.A.f"
  in
  check_raises "invalid_arg maps to Invalid_argument" [ "Invalid_argument" ] caps

let test_open_resolution () =
  let sources =
    [
      ( "lib/numerics/linalg.ml",
        "exception Singular\nlet solve b = if b then raise Singular else 0" );
      ("lib/core/solver.ml", "open Numerics\nlet go b = Linalg.solve b");
    ]
  in
  check_raises "exception flows through an open"
    [ "Numerics.Linalg.Singular" ]
    (caps_of sources "Deconv.Solver.go")

let test_sibling_resolution () =
  (* Within one wrapped library a sibling module is referenced bare:
     [Linalg.solve] from lib/numerics/ridge.ml means Numerics.Linalg.solve
     with no open in sight. *)
  let sources =
    [
      ( "lib/numerics/linalg.ml",
        "exception Singular\nlet solve b = if b then raise Singular else 0" );
      ("lib/numerics/ridge.ml", "let fit b = Linalg.solve b");
    ]
  in
  check_raises "intra-library sibling reference resolves"
    [ "Numerics.Linalg.Singular" ]
    (caps_of sources "Numerics.Ridge.fit")

let test_alias_resolution () =
  let sources =
    [
      ( "lib/numerics/linalg.ml",
        "exception Singular\nlet solve b = if b then raise Singular else 0" );
      ( "lib/core/solver.ml",
        "open Numerics\nmodule L = Linalg\nlet go b = L.solve b" );
    ]
  in
  check_raises "module alias resolves through the enclosing open"
    [ "Numerics.Linalg.Singular" ]
    (caps_of sources "Deconv.Solver.go")

let test_include_resolution () =
  let sources =
    [
      ("lib/core/base.ml", "let helper () = failwith \"deep\"");
      ("lib/core/solver.ml", "include Base\nlet go () = helper ()");
    ]
  in
  check_raises "identifier reaches through an include" [ "Failure" ]
    (caps_of sources "Deconv.Solver.go")

let test_local_shadowing () =
  let sources =
    [
      ( "lib/core/a.ml",
        "let risky () = failwith \"x\"\n\
         let safe risky = risky ()\n\
         let unsafe () = risky ()" );
    ]
  in
  check_raises "parameter shadows the module-level def" []
    (caps_of sources "Deconv.A.safe");
  check_raises "unshadowed reference still carries the effect" [ "Failure" ]
    (caps_of sources "Deconv.A.unsafe")

let test_mask_subtracts_caught () =
  let sources =
    [
      ( "lib/core/a.ml",
        "let risky () = failwith \"x\"\n\
         let safe () = try risky () with Failure _ -> 0\n\
         let pass () = try risky () with e -> raise e" );
    ]
  in
  check_raises "try/with subtracts the caught constructor" []
    (caps_of sources "Deconv.A.safe");
  check_raises "a re-raising catch-all subtracts nothing" [ "Failure" ]
    (caps_of sources "Deconv.A.pass")

let test_mutual_recursion_fixpoint () =
  let sources =
    [
      ( "lib/core/a.ml",
        "let rec ping n = if n = 0 then B.boom () else B.pong (n - 1)" );
      ( "lib/core/b.ml",
        "let boom () = failwith \"bottom\"\nlet pong n = A.ping n" );
    ]
  in
  check_raises "effect crosses the two-file cycle" [ "Failure" ]
    (caps_of sources "Deconv.A.ping");
  check_raises "and reaches the other direction" [ "Failure" ]
    (caps_of sources "Deconv.B.pong")

(* ---------------- policy rules ---------------- *)

let test_r10_positive_and_negative () =
  (* A file outside lib/ makes every public def a root. *)
  let bad = [ ("scratch.ml", "let go () = failwith \"boom\"") ] in
  Alcotest.(check (list string)) "bare failwith escapes a root" [ "R10" ]
    (rules_of (check_result bad));
  let good =
    [
      ( "scratch.ml",
        "let go () =\n\
        \  Robust.Error.raise_error\n\
        \    (Robust.Error.Unexpected { description = \"typed\" })" );
    ]
  in
  Alcotest.(check (list string)) "Robust.Error crosses the boundary freely" []
    (rules_of (check_result good))

let test_r10_transitive () =
  let sources =
    [
      ("lib/numerics/deep.ml", "let kaboom () = failwith \"deep\"");
      ("scratch.ml", "let go () = Numerics.Deep.kaboom ()");
    ]
  in
  let r = check_result sources in
  match r.Analysis.Policy.findings with
  | [ f ] ->
    Alcotest.(check string) "rule" "R10" f.Analysis.Finding.rule;
    Alcotest.(check string) "anchored at the raise origin" "lib/numerics/deep.ml"
      f.Analysis.Finding.file
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_r11_task_capabilities () =
  let mutation =
    [
      ( "scratch.ml",
        "let acc = ref 0\n\
         let go () = Parallel.parallel_for ~n:4 (fun i -> acc := !acc + i)" );
    ]
  in
  Alcotest.(check (list string)) "global mutation inside a task" [ "R11" ]
    (rules_of (check_result mutation));
  let rng =
    [ ("scratch.ml", "let go () = Parallel.parallel_map ~n:4 (fun i -> Random.int i)") ]
  in
  Alcotest.(check (list string)) "ambient RNG inside a task" [ "R11" ]
    (rules_of (check_result rng));
  let clean =
    [
      ( "scratch.ml",
        "let go xs = Parallel.parallel_map ~n:4 (fun i -> xs.(i) * 2)" );
    ]
  in
  Alcotest.(check (list string)) "a pure task is silent" []
    (rules_of (check_result clean));
  let local_state =
    [
      ( "scratch.ml",
        "let go () = Parallel.parallel_map ~n:4 (fun i -> let acc = ref 0 in acc := i; !acc)"
      );
    ]
  in
  Alcotest.(check (list string)) "task-local refs are not global state" []
    (rules_of (check_result local_state))

(* Domain.spawn is a fan-out: its body gets the same R11 audit as a pool
   task — the sampler domain in lib/obs is the audited exception. *)
let test_r11_domain_spawn () =
  let spawned_rng =
    [
      ( "scratch.ml",
        "let go () = Domain.spawn (fun () -> Random.float 1.0)" );
    ]
  in
  Alcotest.(check (list string)) "ambient RNG inside a spawned body" [ "R11" ]
    (rules_of (check_result spawned_rng));
  let spawned_mutation =
    [
      ( "scratch.ml",
        "let hits = ref 0\n\
         let go () = Domain.spawn (fun () -> incr hits)" );
    ]
  in
  Alcotest.(check (list string)) "global mutation inside a spawned body" [ "R11" ]
    (rules_of (check_result spawned_mutation));
  let clean = [ ("scratch.ml", "let go x = Domain.spawn (fun () -> x * 2)") ] in
  Alcotest.(check (list string)) "a pure spawned body is silent" []
    (rules_of (check_result clean));
  let audited =
    [
      ( "lib/obs/sampler.ml",
        "let tick = ref 0\n\
         let go () = Domain.spawn (fun () -> incr tick)" );
    ]
  in
  Alcotest.(check (list string)) "lib/obs spawns are the audited exception" []
    (rules_of (check_result audited))

let test_r12_numeric_core_purity () =
  let impure_rng = [ ("lib/numerics/kern.ml", "let noisy () = Random.float 1.0") ] in
  Alcotest.(check (list string)) "ambient RNG in the numeric core" [ "R12" ]
    (rules_of (check_result impure_rng));
  let impure_clock = [ ("lib/spline/kern.ml", "let t () = Sys.time ()") ] in
  Alcotest.(check (list string)) "raw clock in the numeric core" [ "R12" ]
    (rules_of (check_result impure_clock));
  let impure_io =
    [ ("lib/optimize/kern.ml", "let shout x = print_endline x") ]
  in
  Alcotest.(check (list string)) "IO in the numeric core" [ "R12" ]
    (rules_of (check_result impure_io));
  let pure = [ ("lib/numerics/kern.ml", "let double x = x * 2") ] in
  Alcotest.(check (list string)) "a pure kernel is silent" []
    (rules_of (check_result pure));
  let outside = [ ("lib/dataio/reader.ml", "let t () = Sys.time ()") ] in
  Alcotest.(check (list string)) "R12 scopes to the numeric core only" []
    (rules_of (check_result outside))

let test_check_suppression_and_disable () =
  let src rule_comment =
    [
      ( "scratch.ml",
        Printf.sprintf "let go () =\n  failwith \"boom\" %s" rule_comment );
    ]
  in
  Alcotest.(check (list string)) "an origin-site suppression silences R10" []
    (rules_of (check_result (src "(* lint: allow R10 -- demo of the escape hatch *)")));
  Alcotest.(check (list string)) "a wrong-rule suppression does not" [ "R10" ]
    (rules_of (check_result (src "(* lint: allow R12 -- wrong rule on purpose *)")));
  Alcotest.(check (list string)) "--disable R10 drops the rule" []
    (rules_of
       (check_result ~disabled:[ "r10" ]
          [ ("scratch.ml", "let go () = failwith \"boom\"") ]))

(* The acceptance scenario: a temp file with an un-wrapped failwith inside
   a Parallel task body must be flagged by BOTH R10 and R11 through the
   on-disk driver. *)
let test_seeded_defect_file () =
  let path = Filename.temp_file "deconv_checker_seed" ".ml" in
  let oc = open_out path in
  output_string oc
    "let run () =\n\
    \  Parallel.parallel_map ~n:4 (fun i -> if i = 2 then failwith \"boom\" else i)\n";
  close_out oc;
  let r = Analysis.Policy.check_paths [ path ] in
  Sys.remove path;
  List.iter
    (fun (p, m) -> Alcotest.failf "check_paths error on %s: %s" p m)
    r.Analysis.Policy.errors;
  let rules =
    List.sort_uniq String.compare
      (List.map (fun f -> f.Analysis.Finding.rule) r.Analysis.Policy.findings)
  in
  Alcotest.(check (list string)) "flagged by both rules" [ "R10"; "R11" ] rules

(* Regression: the repository's own lib/ tree is R10-R12 clean. Tests run
   in _build/default/test, so the sources live one directory up. *)
let test_repo_lib_is_clean () =
  let root = Filename.concat Filename.parent_dir_name "lib" in
  if not (Sys.file_exists root) then ()
  else begin
    let r = Analysis.Policy.check_paths [ root ] in
    List.iter
      (fun (p, m) -> Alcotest.failf "check error on %s: %s" p m)
      r.Analysis.Policy.errors;
    (match r.Analysis.Policy.findings with
    | [] -> ()
    | f :: _ ->
      Alcotest.failf "lib/ has %d unsuppressed finding(s), first: %s"
        (List.length r.Analysis.Policy.findings)
        (Analysis.Finding.to_text f));
    check_true "the graph is not trivially empty" (r.Analysis.Policy.defs > 100)
  end

(* ---------------- baseline ---------------- *)

let finding ~rule ~file ~message =
  { Analysis.Finding.file; line = 1; col = 1; rule; message; hint = "h" }

let test_baseline_round_trip () =
  let findings =
    [
      finding ~rule:"R10" ~file:"lib/a.ml" ~message:"one";
      finding ~rule:"R11" ~file:"lib/b.ml" ~message:"two";
    ]
  in
  let snapshot = Analysis.Baseline.to_string findings in
  let parsed = Analysis.Baseline.of_string snapshot in
  Alcotest.(check int) "every finding round-trips" 2 (List.length parsed);
  let cmp = Analysis.Baseline.compare_against ~baseline:parsed findings in
  Alcotest.(check int) "no fresh findings against own snapshot" 0
    (List.length cmp.Analysis.Baseline.fresh);
  Alcotest.(check int) "no stale entries either" 0
    (List.length cmp.Analysis.Baseline.stale)

let test_baseline_shrinks () =
  (* Fixing a baselined finding leaves a stale entry: the snapshot must
     shrink, never grow. A new finding is fresh and fails the run. *)
  let old_findings =
    [
      finding ~rule:"R10" ~file:"lib/a.ml" ~message:"legacy escape";
      finding ~rule:"R12" ~file:"lib/numerics/k.ml" ~message:"legacy clock";
    ]
  in
  let baseline =
    Analysis.Baseline.of_string (Analysis.Baseline.to_string old_findings)
  in
  let now =
    [
      finding ~rule:"R10" ~file:"lib/a.ml" ~message:"legacy escape";
      finding ~rule:"R11" ~file:"lib/c.ml" ~message:"brand new";
    ]
  in
  let cmp = Analysis.Baseline.compare_against ~baseline now in
  (match cmp.Analysis.Baseline.fresh with
  | [ f ] -> Alcotest.(check string) "the new finding is fresh" "R11" f.Analysis.Finding.rule
  | fs -> Alcotest.failf "expected one fresh finding, got %d" (List.length fs));
  match cmp.Analysis.Baseline.stale with
  | [ e ] ->
    Alcotest.(check string) "the fixed finding is stale" "R12"
      e.Analysis.Baseline.rule
  | es -> Alcotest.failf "expected one stale entry, got %d" (List.length es)

let test_baseline_ignores_position () =
  let f = finding ~rule:"R10" ~file:"lib/a.ml" ~message:"escape" in
  let baseline =
    Analysis.Baseline.of_string (Analysis.Baseline.to_string [ f ])
  in
  let moved = { f with Analysis.Finding.line = 99; col = 7 } in
  let cmp = Analysis.Baseline.compare_against ~baseline [ moved ] in
  Alcotest.(check int) "a moved finding still matches its entry" 0
    (List.length cmp.Analysis.Baseline.fresh)

(* ---------------- SARIF ---------------- *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1)) in
  go 0

let test_sarif_output () =
  let rules = [ ("R10", "exception escape", "long description") ] in
  let f =
    {
      Analysis.Finding.file = "lib/a.ml";
      line = 12;
      col = 3;
      rule = "R10";
      message = "msg";
      hint = "fix it";
    }
  in
  let sarif = Analysis.Finding.list_to_sarif ~tool:"deconv-lint" ~rules [ f ] in
  List.iter
    (fun needle -> check_true ("sarif contains " ^ needle) (contains ~needle sarif))
    [
      "\"version\": \"2.1.0\"";
      "\"name\": \"deconv-lint\"";
      "\"ruleId\":\"R10\"";
      "\"uri\":\"lib/a.ml\"";
      "\"startLine\":12";
      "\"startColumn\":3";
      "exception escape";
    ];
  let empty = Analysis.Finding.list_to_sarif ~tool:"deconv-lint" ~rules [] in
  check_true "empty run has an empty results array"
    (contains ~needle:"\"results\": []" empty);
  check_true "unreferenced rules are omitted from the driver"
    (not (contains ~needle:"exception escape" empty))

let tests =
  [
    ( "checker-callgraph",
      [
        case "module qualification" test_qualification;
        case "mli exports" test_mli_exports;
        case "functor body defs" test_functor_body_defs;
      ] );
    ( "checker-effects",
      [
        case "raising intrinsics" test_direct_raise_and_intrinsics;
        case "open resolution" test_open_resolution;
        case "sibling resolution" test_sibling_resolution;
        case "alias through open" test_alias_resolution;
        case "include resolution" test_include_resolution;
        case "local shadowing" test_local_shadowing;
        case "try/with masking" test_mask_subtracts_caught;
        case "mutual recursion fixpoint" test_mutual_recursion_fixpoint;
      ] );
    ( "checker-policy",
      [
        case "r10 positive and negative" test_r10_positive_and_negative;
        case "r10 transitive origin" test_r10_transitive;
        case "r11 task capabilities" test_r11_task_capabilities;
        case "r11 domain spawn" test_r11_domain_spawn;
        case "r12 numeric-core purity" test_r12_numeric_core_purity;
        case "suppression and disable" test_check_suppression_and_disable;
        case "seeded defect hits R10 and R11" test_seeded_defect_file;
        case "repo lib/ is clean" test_repo_lib_is_clean;
      ] );
    ( "checker-baseline",
      [
        case "round trip" test_baseline_round_trip;
        case "shrink and fresh" test_baseline_shrinks;
        case "position-independent keys" test_baseline_ignores_position;
      ] );
    ("checker-sarif", [ case "sarif 2.1.0 shape" test_sarif_output ]);
  ]
