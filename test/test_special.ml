open Numerics
open Testutil

let test_erf_table () =
  (* Reference values from Abramowitz & Stegun tables. *)
  check_close ~tol:1e-9 "erf 0" 0.0 (Special.erf 0.0);
  check_close ~tol:1e-9 "erf 0.5" 0.5204998778 (Special.erf 0.5);
  check_close ~tol:1e-9 "erf 1" 0.8427007929 (Special.erf 1.0);
  check_close ~tol:1e-9 "erf 2" 0.9953222650 (Special.erf 2.0);
  check_close ~tol:1e-9 "erf 3" 0.9999779095 (Special.erf 3.0);
  check_close "erf big" 1.0 (Special.erf 10.0)

let test_erf_odd () =
  for i = 1 to 20 do
    let x = 0.3 *. float_of_int i in
    check_close ~tol:1e-12 "erf odd" (-.Special.erf x) (Special.erf (-.x))
  done

let test_erfc () =
  check_close ~tol:1e-9 "erfc complements" 1.0 (Special.erf 0.7 +. Special.erfc 0.7)

let test_normal_pdf () =
  check_close ~tol:1e-12 "standard pdf at 0" (1.0 /. sqrt (2.0 *. Float.pi))
    (Special.normal_pdf ~mean:0.0 ~std:1.0 0.0);
  (* Scale: pdf with std s at mean equals standard/s. *)
  check_close ~tol:1e-12 "scaled pdf" (1.0 /. (0.5 *. sqrt (2.0 *. Float.pi)))
    (Special.normal_pdf ~mean:3.0 ~std:0.5 3.0)

let test_normal_pdf_integrates_to_one () =
  let integral =
    Integrate.simpson (Special.normal_pdf ~mean:0.2 ~std:0.05) ~a:(-0.5) ~b:1.0 ~n:4000
  in
  check_close ~tol:1e-10 "pdf mass" 1.0 integral

let test_normal_cdf () =
  check_close ~tol:1e-12 "cdf at mean" 0.5 (Special.normal_cdf ~mean:2.0 ~std:3.0 2.0);
  check_close ~tol:1e-9 "cdf one sigma" 0.8413447461 (Special.normal_cdf ~mean:0.0 ~std:1.0 1.0);
  check_close ~tol:1e-9 "cdf minus two sigma" 0.0227501319
    (Special.normal_cdf ~mean:0.0 ~std:1.0 (-2.0))

let test_ppf_roundtrip () =
  List.iter
    (fun p ->
      let x = Special.normal_ppf ~mean:0.0 ~std:1.0 p in
      check_close ~tol:1e-8 (Printf.sprintf "ppf roundtrip %g" p) p
        (Special.normal_cdf ~mean:0.0 ~std:1.0 x))
    [ 0.001; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999 ]

let test_ppf_known () =
  check_close ~tol:1e-8 "median" 0.0 (Special.normal_ppf ~mean:0.0 ~std:1.0 0.5);
  check_close ~tol:1e-6 "95th percentile" 1.6448536270 (Special.normal_ppf ~mean:0.0 ~std:1.0 0.95);
  check_close ~tol:1e-6 "shifted/scaled" (10.0 +. (2.0 *. 1.6448536270))
    (Special.normal_ppf ~mean:10.0 ~std:2.0 0.95)

let test_log_gamma () =
  check_close ~tol:1e-10 "lgamma 1" 0.0 (Special.log_gamma 1.0);
  check_close ~tol:1e-10 "lgamma 2" 0.0 (Special.log_gamma 2.0);
  check_close ~tol:1e-9 "lgamma 5 = ln 24" (log 24.0) (Special.log_gamma 5.0);
  check_close ~tol:1e-9 "lgamma 0.5 = ln sqrt(pi)" (0.5 *. log Float.pi) (Special.log_gamma 0.5)

let test_log_gamma_recurrence () =
  (* Gamma(x+1) = x Gamma(x). *)
  List.iter
    (fun x ->
      check_close ~tol:1e-9 "recurrence"
        (Special.log_gamma x +. log x)
        (Special.log_gamma (x +. 1.0)))
    [ 0.3; 1.7; 4.2; 9.9 ]

let test_gamma_inc_lower () =
  check_close "P(a, 0) = 0" 0.0 (Special.gamma_inc_lower ~a:2.5 0.0);
  check_close ~tol:1e-10 "P(1, x) = 1 - e^-x" (1.0 -. exp (-1.7))
    (Special.gamma_inc_lower ~a:1.0 1.7);
  check_close ~tol:1e-9 "saturates to 1" 1.0 (Special.gamma_inc_lower ~a:3.0 1e4);
  (* Monotone in x. *)
  let prev = ref 0.0 in
  for i = 1 to 50 do
    let v = Special.gamma_inc_lower ~a:2.0 (0.2 *. float_of_int i) in
    check_true "monotone" (v >= !prev);
    prev := v
  done

let test_chi2 () =
  (* chi2(2) is exponential with mean 2. *)
  check_close ~tol:1e-10 "chi2 dof 2" (1.0 -. exp (-1.0)) (Special.chi2_cdf ~dof:2 2.0);
  (* chi2(1) at 1.0 = P(|Z| <= 1). *)
  check_close ~tol:1e-8 "chi2 dof 1" 0.6826894921 (Special.chi2_cdf ~dof:1 1.0);
  (* Standard critical value table: chi2_{0.95, 10} = 18.307. *)
  check_close ~tol:1e-3 "critical value" 0.05 (Special.chi2_sf ~dof:10 18.307);
  check_close "sf at 0" 1.0 (Special.chi2_sf ~dof:5 0.0)

let prop_cdf_monotone =
  qcheck ~count:100 "cdf monotone" QCheck2.Gen.(pair (float_range (-4.0) 4.0) (float_range 0.0 2.0))
    (fun (x, dx) ->
      Special.normal_cdf ~mean:0.0 ~std:1.0 x
      <= Special.normal_cdf ~mean:0.0 ~std:1.0 (x +. dx) +. 1e-12)

let tests =
  [
    ( "special",
      [
        case "erf table values" test_erf_table;
        case "erf oddness" test_erf_odd;
        case "erfc" test_erfc;
        case "normal pdf" test_normal_pdf;
        case "pdf integrates to one" test_normal_pdf_integrates_to_one;
        case "normal cdf" test_normal_cdf;
        case "ppf roundtrip" test_ppf_roundtrip;
        case "ppf known values" test_ppf_known;
        case "log gamma values" test_log_gamma;
        case "log gamma recurrence" test_log_gamma_recurrence;
        case "incomplete gamma" test_gamma_inc_lower;
        case "chi-square" test_chi2;
        prop_cdf_monotone;
      ] );
  ]
