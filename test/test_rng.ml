open Numerics
open Testutil

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_close "same seed same stream" (Rng.float a) (Rng.float b)
  done

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.float a = Rng.float b then incr same
  done;
  check_true "different seeds diverge" (!same < 4)

let test_float_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    check_true "float in [0,1)" (x >= 0.0 && x < 1.0)
  done

let test_uniform_moments () =
  let rng = Rng.create 11 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Rng.uniform rng ~lo:2.0 ~hi:6.0) in
  check_close ~tol:0.05 "uniform mean" 4.0 (Stats.mean xs);
  check_close ~tol:0.05 "uniform variance" (16.0 /. 12.0) (Stats.variance xs)

let test_int_bounds () =
  let rng = Rng.create 3 in
  let counts = Array.make 10 0 in
  for _ = 1 to 20_000 do
    let k = Rng.int rng 10 in
    check_true "int in range" (k >= 0 && k < 10);
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter (fun c -> check_true "int roughly uniform" (c > 1600 && c < 2400)) counts

let test_normal_moments () =
  let rng = Rng.create 5 in
  let n = 100_000 in
  let xs = Array.init n (fun _ -> Rng.normal rng ~mean:3.0 ~std:2.0) in
  check_close ~tol:0.03 "normal mean" 3.0 (Stats.mean xs);
  check_close ~tol:0.05 "normal std" 2.0 (Stats.std xs)

let test_normal_tail_fractions () =
  let rng = Rng.create 17 in
  let n = 100_000 in
  let inside = ref 0 in
  for _ = 1 to n do
    let x = Rng.normal rng ~mean:0.0 ~std:1.0 in
    if Float.abs x < 1.0 then incr inside
  done;
  check_close ~tol:0.01 "one-sigma mass" 0.6827 (float_of_int !inside /. float_of_int n)

let test_truncated_normal_bounds () =
  let rng = Rng.create 23 in
  for _ = 1 to 5_000 do
    let x = Rng.truncated_normal rng ~mean:0.15 ~std:0.02 ~lo:0.1 ~hi:0.2 in
    check_true "truncated in bounds" (x >= 0.1 && x <= 0.2)
  done

let test_truncated_normal_far_window () =
  (* Window far from the mean still terminates and respects bounds. *)
  let rng = Rng.create 29 in
  for _ = 1 to 200 do
    let x = Rng.truncated_normal rng ~mean:0.0 ~std:0.1 ~lo:5.0 ~hi:5.5 in
    check_true "far window in bounds" (x >= 5.0 && x <= 5.5)
  done

let test_truncated_normal_mean_shift () =
  let rng = Rng.create 31 in
  let n = 30_000 in
  let xs =
    Array.init n (fun _ -> Rng.truncated_normal rng ~mean:0.0 ~std:1.0 ~lo:0.0 ~hi:10.0)
  in
  (* Mean of the half-normal is sqrt(2/pi). *)
  check_close ~tol:0.02 "half-normal mean" (sqrt (2.0 /. Float.pi)) (Stats.mean xs)

let test_exponential_mean () =
  let rng = Rng.create 37 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Rng.exponential rng ~rate:0.5) in
  check_close ~tol:0.05 "exponential mean = 1/rate" 2.0 (Stats.mean xs)

let test_shuffle_is_permutation () =
  let rng = Rng.create 41 in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle permutes" (Array.init 100 (fun i -> i)) sorted

let test_shuffle_moves_elements () =
  let rng = Rng.create 43 in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle rng a;
  let moved = ref 0 in
  Array.iteri (fun i x -> if i <> x then incr moved) a;
  check_true "shuffle moved most elements" (!moved > 80)

let test_split_independence () =
  let parent = Rng.create 47 in
  let child1 = Rng.split parent in
  let child2 = Rng.split parent in
  let xs = Array.init 2_000 (fun _ -> Rng.float child1) in
  let ys = Array.init 2_000 (fun _ -> Rng.float child2) in
  check_true "split streams decorrelated" (Float.abs (Stats.correlation xs ys) < 0.06)

let test_copy_preserves_state () =
  let a = Rng.create 53 in
  ignore (Rng.float a);
  let b = Rng.copy a in
  check_close "copy continues identically" (Rng.float a) (Rng.float b)

let test_pick () =
  let rng = Rng.create 59 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let x = Rng.pick rng arr in
    check_true "pick from array" (x = 10 || x = 20 || x = 30)
  done

let tests =
  [
    ( "rng",
      [
        case "determinism" test_determinism;
        case "different seeds" test_different_seeds;
        case "float range" test_float_range;
        case "uniform moments" test_uniform_moments;
        case "int bounds and uniformity" test_int_bounds;
        case "normal moments" test_normal_moments;
        case "normal one-sigma mass" test_normal_tail_fractions;
        case "truncated normal bounds" test_truncated_normal_bounds;
        case "truncated normal far window" test_truncated_normal_far_window;
        case "truncated normal half-normal mean" test_truncated_normal_mean_shift;
        case "exponential mean" test_exponential_mean;
        case "shuffle is a permutation" test_shuffle_is_permutation;
        case "shuffle moves elements" test_shuffle_moves_elements;
        case "split independence" test_split_independence;
        case "copy preserves state" test_copy_preserves_state;
        case "pick membership" test_pick;
      ] );
  ]
