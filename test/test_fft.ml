open Numerics
open Testutil

let test_next_pow2 () =
  Alcotest.(check int) "1" 1 (Fft.next_pow2 1);
  Alcotest.(check int) "5 -> 8" 8 (Fft.next_pow2 5);
  Alcotest.(check int) "8 -> 8" 8 (Fft.next_pow2 8);
  Alcotest.(check int) "1000 -> 1024" 1024 (Fft.next_pow2 1000)

let test_fft_ifft_roundtrip () =
  let rng = Rng.create 808 in
  let input = Array.init 64 (fun _ -> { Complex.re = Rng.uniform rng ~lo:(-1.0) ~hi:1.0;
                                        im = Rng.uniform rng ~lo:(-1.0) ~hi:1.0 }) in
  let back = Fft.ifft (Fft.fft input) in
  Array.iteri
    (fun i c ->
      check_close ~tol:1e-10 "roundtrip re" input.(i).Complex.re c.Complex.re;
      check_close ~tol:1e-10 "roundtrip im" input.(i).Complex.im c.Complex.im)
    back

let test_fft_impulse () =
  (* FFT of a delta is all ones. *)
  let input = Array.init 16 (fun i -> if i = 0 then Complex.one else Complex.zero) in
  let out = Fft.fft input in
  Array.iter
    (fun c ->
      check_close ~tol:1e-12 "flat re" 1.0 c.Complex.re;
      check_close ~tol:1e-12 "flat im" 0.0 c.Complex.im)
    out

let test_fft_pure_tone () =
  (* e^{+2πi·3t/n} puts all energy in bin 3 under the e^{-2πi} forward
     convention. *)
  let n = 32 in
  let input =
    Array.init n (fun i ->
        Complex.polar 1.0 (2.0 *. Float.pi *. 3.0 *. float_of_int i /. float_of_int n))
  in
  let out = Fft.fft input in
  check_close ~tol:1e-9 "energy at bin 3" (float_of_int n) (Complex.norm out.(3));
  check_close ~tol:1e-9 "no energy at bin 5" 0.0 (Complex.norm out.(5))

let test_parseval () =
  let rng = Rng.create 809 in
  let signal = Array.init 128 (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let spectrum = Fft.rfft signal in
  let time_energy = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 signal in
  let freq_energy =
    Array.fold_left (fun acc c -> acc +. Complex.norm2 c) 0.0 spectrum /. 128.0
  in
  check_rel ~tol:1e-10 "parseval" time_energy freq_energy

let test_dominant_period () =
  let signal = Array.init 256 (fun i -> Float.sin (2.0 *. Float.pi *. float_of_int i /. 32.0)) in
  check_close ~tol:1e-9 "period 32 samples" 32.0 (Fft.dominant_period signal);
  check_close ~tol:1e-9 "with dt" 64.0 (Fft.dominant_period ~dt:2.0 signal)

let test_dominant_period_offset_signal () =
  (* The DC offset must not win. *)
  let signal =
    Array.init 128 (fun i -> 100.0 +. Float.sin (2.0 *. Float.pi *. float_of_int i /. 16.0))
  in
  check_close ~tol:1e-9 "offset removed" 16.0 (Fft.dominant_period signal)

let test_convolve_known () =
  let c = Fft.convolve [| 1.0; 2.0; 3.0 |] [| 1.0; 1.0 |] in
  check_vec ~tol:1e-10 "conv" [| 1.0; 3.0; 5.0; 3.0 |] c

let test_convolve_identity () =
  let x = [| 4.0; -1.0; 2.5; 0.0; 3.0 |] in
  check_vec ~tol:1e-10 "delta identity" x (Fft.convolve x [| 1.0 |])

let test_convolve_matches_direct () =
  let rng = Rng.create 810 in
  let a = Array.init 17 (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let b = Array.init 9 (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let direct =
    Array.init (17 + 9 - 1) (fun k ->
        let acc = ref 0.0 in
        for i = 0 to 16 do
          let j = k - i in
          if j >= 0 && j < 9 then acc := !acc +. (a.(i) *. b.(j))
        done;
        !acc)
  in
  check_vec ~tol:1e-9 "fft conv = direct conv" direct (Fft.convolve a b)

let test_lv_period_via_fft () =
  (* Cross-module check: the LV oscillator's period from its periodogram. *)
  let p = Biomodels.Lotka_volterra.default_params in
  let times = Vec.linspace 0.0 1200.0 1024 in
  let sol = Biomodels.Lotka_volterra.simulate p ~x0:Biomodels.Lotka_volterra.default_x0 ~times in
  let x1 = Mat.col sol.Ode.states 0 in
  let dt = times.(1) -. times.(0) in
  let period = Fft.dominant_period ~dt x1 in
  check_true "fft period near 150" (Float.abs (period -. 150.0) < 8.0)

let tests =
  [
    ( "fft",
      [
        case "next_pow2" test_next_pow2;
        case "fft/ifft roundtrip" test_fft_ifft_roundtrip;
        case "impulse" test_fft_impulse;
        case "pure tone" test_fft_pure_tone;
        case "parseval" test_parseval;
        case "dominant period" test_dominant_period;
        case "dominant period with offset" test_dominant_period_offset_signal;
        case "convolution known" test_convolve_known;
        case "convolution identity" test_convolve_identity;
        case "convolution matches direct" test_convolve_matches_direct;
        case "LV period via periodogram" test_lv_period_via_fft;
      ] );
  ]
