open Testutil

let phi_ssts = [ 0.1; 0.15; 0.25; 0.4 ]

(* Paper eqs. 6-8: the division-partition values hold for both models. *)
let test_partition_values () =
  List.iter
    (fun phi_sst ->
      List.iter
        (fun (name, v) ->
          check_close ~tol:1e-12 (name ^ " v(0) = 0.4 V0") 0.4 (v 0.0);
          check_close ~tol:1e-9 (name ^ " v(phi_sst) = 0.6 V0") 0.6 (v phi_sst);
          check_close ~tol:1e-12 (name ^ " v(1) = V0") 1.0 (v 1.0))
        [
          ("linear", Cellpop.Volume.linear ~v0:1.0 ~phi_sst);
          ("smooth", Cellpop.Volume.smooth ~v0:1.0 ~phi_sst);
        ])
    phi_ssts

(* Paper eqs. 9-10: rate continuity holds for the smooth model only. *)
let test_smooth_rate_continuity () =
  List.iter
    (fun phi_sst ->
      let d = Cellpop.Volume.smooth_deriv ~v0:1.0 ~phi_sst in
      let expected = 0.4 /. (1.0 -. phi_sst) in
      check_close ~tol:1e-9 "v'(0) = v'(1)" expected (d 0.0);
      check_close ~tol:1e-6 "v'(phi_sst) = v'(1)" expected (d (phi_sst +. 1e-9));
      check_close ~tol:1e-9 "v'(1)" expected (d 1.0))
    phi_ssts

let test_linear_model_violates_rate_continuity () =
  (* The 2009 model has a slope discontinuity at phi_sst when
     0.2/phi_sst != 0.4/(1-phi_sst), i.e. whenever phi_sst != 1/3. *)
  let phi_sst = 0.15 in
  let d = Cellpop.Volume.linear_deriv ~v0:1.0 ~phi_sst in
  check_true "slope jump at transition" (Float.abs (d 0.1 -. d 0.2) > 0.5)

let test_smooth_derivative_fd () =
  List.iter
    (fun phi_sst ->
      let v = Cellpop.Volume.smooth ~v0:1.0 ~phi_sst in
      let d = Cellpop.Volume.smooth_deriv ~v0:1.0 ~phi_sst in
      List.iter
        (fun phi ->
          if Float.abs (phi -. phi_sst) > 1e-3 then
            check_close ~tol:1e-5 "smooth deriv fd" (fd_deriv v phi 1e-7) (d phi))
        [ 0.02; 0.08; 0.3; 0.6; 0.9 ])
    phi_ssts

let test_volume_positive_and_bounded () =
  List.iter
    (fun phi_sst ->
      for i = 0 to 200 do
        let phi = float_of_int i /. 200.0 in
        let v = Cellpop.Volume.smooth ~v0:1.0 ~phi_sst phi in
        check_true "positive" (v > 0.0);
        check_true "at most final volume" (v <= 1.0 +. 1e-9)
      done)
    phi_ssts

let test_volume_monotone () =
  (* Cells never shrink while growing through the cycle. *)
  List.iter
    (fun phi_sst ->
      let v = Cellpop.Volume.smooth ~v0:1.0 ~phi_sst in
      let previous = ref (v 0.0) in
      for i = 1 to 400 do
        let phi = float_of_int i /. 400.0 in
        let value = v phi in
        check_true "monotone growth" (value >= !previous -. 1e-9);
        previous := value
      done)
    phi_ssts

let test_v0_scaling () =
  let phi_sst = 0.15 in
  check_close ~tol:1e-12 "v0 scales volumes"
    (3.0 *. Cellpop.Volume.smooth ~v0:1.0 ~phi_sst 0.5)
    (Cellpop.Volume.smooth ~v0:3.0 ~phi_sst 0.5)

let test_beta () =
  check_close ~tol:1e-12 "beta formula" (0.4 /. 0.85) (Cellpop.Volume.beta ~phi_sst:0.15);
  (* beta = v'(1)/V0 for both models. *)
  check_close ~tol:1e-12 "beta = linear v'(1)" (Cellpop.Volume.linear_deriv ~v0:1.0 ~phi_sst:0.2 1.0)
    (Cellpop.Volume.beta ~phi_sst:0.2);
  check_close ~tol:1e-12 "beta = smooth v'(1)" (Cellpop.Volume.smooth_deriv ~v0:1.0 ~phi_sst:0.2 1.0)
    (Cellpop.Volume.beta ~phi_sst:0.2)

let test_daughters_share_mother_volume () =
  (* v(0) + v(phi_sst) = v(1): the two daughters exactly split the mother. *)
  List.iter
    (fun phi_sst ->
      List.iter
        (fun v ->
          check_close ~tol:1e-9 "0.4 + 0.6 = 1" (v 1.0) (v 0.0 +. v phi_sst))
        [ Cellpop.Volume.linear ~v0:2.5 ~phi_sst; Cellpop.Volume.smooth ~v0:2.5 ~phi_sst ])
    phi_ssts

let test_eval_dispatch () =
  let phi_sst = 0.15 in
  let p_linear = Cellpop.Params.plos_2009 in
  let p_smooth = Cellpop.Params.paper_2011 in
  check_close ~tol:1e-12 "dispatch linear"
    (Cellpop.Volume.linear ~v0:1.0 ~phi_sst 0.5)
    (Cellpop.Volume.eval p_linear ~phi_sst 0.5);
  check_close ~tol:1e-12 "dispatch smooth"
    (Cellpop.Volume.smooth ~v0:1.0 ~phi_sst 0.5)
    (Cellpop.Volume.eval p_smooth ~phi_sst 0.5)

let prop_smooth_between_04_and_1 =
  qcheck ~count:200 "smooth volume within [0.4, 1]"
    QCheck2.Gen.(pair (float_range 0.05 0.5) (float_range 0.0 1.0))
    (fun (phi_sst, phi) ->
      let v = Cellpop.Volume.smooth ~v0:1.0 ~phi_sst phi in
      v >= 0.4 -. 1e-9 && v <= 1.0 +. 1e-9)

let tests =
  [
    ( "volume",
      [
        case "partition values (eqs 6-8)" test_partition_values;
        case "smooth rate continuity (eqs 9-10)" test_smooth_rate_continuity;
        case "linear model slope jump" test_linear_model_violates_rate_continuity;
        case "smooth derivative fd" test_smooth_derivative_fd;
        case "positive and bounded" test_volume_positive_and_bounded;
        case "monotone growth" test_volume_monotone;
        case "v0 scaling" test_v0_scaling;
        case "beta" test_beta;
        case "daughters share mother volume" test_daughters_share_mother_volume;
        case "params dispatch" test_eval_dispatch;
        prop_smooth_between_04_and_1;
      ] );
  ]
