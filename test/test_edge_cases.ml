(* Additional edge-case and property coverage across the stack. *)

open Numerics
open Testutil

(* --- Ascii plot --- *)

let test_ascii_multi_series () =
  let xs = Vec.linspace 0.0 1.0 20 in
  let s =
    Dataio.Ascii_plot.render ~width:40 ~height:12
      [
        { Dataio.Ascii_plot.label = "up"; glyph = 'u'; xs; ys = xs };
        { Dataio.Ascii_plot.label = "down"; glyph = 'd'; xs; ys = Array.map (fun x -> 1.0 -. x) xs };
      ]
  in
  check_true "both glyphs present" (String.contains s 'u' && String.contains s 'd');
  (* Later series draws over earlier on collisions (midpoint). *)
  check_true "legend lines" (String.length s > 100)

let test_ascii_constant_series () =
  (* Constant y must not divide by zero. *)
  let s =
    Dataio.Ascii_plot.render
      [ { Dataio.Ascii_plot.label = "flat"; glyph = '*'; xs = [| 0.0; 1.0 |]; ys = [| 2.0; 2.0 |] } ]
  in
  check_true "renders" (String.contains s '*')

let test_ascii_single_point () =
  let s =
    Dataio.Ascii_plot.render
      [ { Dataio.Ascii_plot.label = "dot"; glyph = 'o'; xs = [| 0.5 |]; ys = [| 1.0 |] } ]
  in
  check_true "single point renders" (String.contains s 'o')

(* --- Table --- *)

let test_table_precision () =
  let t = Dataio.Table.create ~title:"p" ~headers:[ "v" ] in
  Dataio.Table.add_row t [| 1.23456789 |];
  let s2 = Dataio.Table.to_string ~precision:2 t in
  let s6 = Dataio.Table.to_string ~precision:6 t in
  check_true "low precision shorter" (String.length s2 < String.length s6)

(* --- Interpolate failure modes --- *)

let test_periodic_requires_matching_endpoints () =
  let x = Vec.linspace 0.0 1.0 5 in
  let y = [| 0.0; 1.0; 0.5; 1.0; 0.7 |] in
  (* y.(0) <> y.(4): assertion must fire. *)
  (match Spline.Interpolate.periodic ~x ~y with
  | _ -> Alcotest.fail "non-periodic data accepted"
  | exception Assert_failure _ -> ())

let test_natural_requires_sorted () =
  (match Spline.Interpolate.natural ~x:[| 0.0; 0.5; 0.3 |] ~y:[| 1.0; 2.0; 3.0 |] with
  | _ -> Alcotest.fail "unsorted grid accepted"
  | exception Assert_failure _ -> ())

(* --- FFT properties --- *)

let prop_fft_linearity =
  qcheck ~count:30 "fft linearity" (QCheck2.Gen.int_range 1 1000) (fun seed ->
      let rng = Rng.create seed in
      let n = 32 in
      let mk () =
        Array.init n (fun _ ->
            { Complex.re = Rng.uniform rng ~lo:(-1.0) ~hi:1.0; im = 0.0 })
      in
      let a = mk () and b = mk () in
      let sum = Array.init n (fun i -> Complex.add a.(i) b.(i)) in
      let fa = Fft.fft a and fb = Fft.fft b and fsum = Fft.fft sum in
      let ok = ref true in
      for i = 0 to n - 1 do
        let expected = Complex.add fa.(i) fb.(i) in
        if Complex.norm (Complex.sub expected fsum.(i)) > 1e-9 then ok := false
      done;
      !ok)

let prop_convolution_commutative =
  qcheck ~count:30 "convolution commutative"
    QCheck2.Gen.(pair (array_size (int_range 1 12) (float_range (-2.0) 2.0))
                   (array_size (int_range 1 12) (float_range (-2.0) 2.0)))
    (fun (a, b) -> Vec.approx_equal ~tol:1e-8 (Fft.convolve a b) (Fft.convolve b a))

(* --- Spline interpolation property --- *)

let prop_interpolation_exact_at_knots =
  qcheck ~count:50 "natural spline interpolates any data"
    QCheck2.Gen.(array_size (int_range 3 15) (float_range (-5.0) 5.0))
    (fun y ->
      let n = Array.length y in
      let x = Array.init n float_of_int in
      let sp = Spline.Interpolate.natural ~x ~y in
      let ok = ref true in
      Array.iteri
        (fun i xi -> if Float.abs (Spline.Interpolate.eval sp xi -. y.(i)) > 1e-9 then ok := false)
        x;
      !ok)

(* --- Batch/gene edge cases --- *)

let test_classify_with_empty_boundaries () =
  let params = Cellpop.Params.paper_2011 in
  let kernel =
    Cellpop.Kernel.estimate params ~rng:(Rng.create 3000) ~n_cells:300
      ~times:[| 0.0; 60.0; 120.0 |] ~n_phi:51
  in
  let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:8 in
  let batch = Deconv.Batch.prepare ~kernel ~basis ~params () in
  let g = Deconv.Forward.apply_fn kernel (fun phi -> 1.0 +. phi) in
  let estimate = Deconv.Batch.solve_gene batch ~lambda:(`Fixed 1e-3) ~measurements:g () in
  (* Zero boundaries: everything lands in window 0. *)
  let classified = Deconv.Batch.classify_by_peak batch [| estimate |] ~boundaries:[||] in
  Alcotest.(check (array int)) "single window" [| 0 |] classified

(* --- Noise model edge: zero-level noise --- *)

let test_zero_fraction_noise_identity_like () =
  let g = [| 1.0; 2.0; 3.0 |] in
  let noisy, _ = Deconv.Noise.apply (Deconv.Noise.Gaussian_fraction 0.0) (Rng.create 1) g in
  check_vec ~tol:1e-12 "no noise at level 0" g noisy

(* --- Rng.lognormal_factor --- *)

let test_lognormal_factor () =
  let rng = Rng.create 3100 in
  check_close "cv zero gives 1" 1.0 (Rng.lognormal_factor rng ~cv:0.0);
  let xs = Array.init 40_000 (fun _ -> Rng.lognormal_factor rng ~cv:0.25) in
  check_close ~tol:0.01 "mean one" 1.0 (Stats.mean xs);
  check_close ~tol:0.01 "cv as requested" 0.25 (Stats.cv xs)

(* --- Solver with a single constraint family --- *)

let test_solver_rate_only () =
  let params = Cellpop.Params.paper_2011 in
  let times = Array.init 7 (fun i -> 30.0 *. float_of_int i) in
  let kernel =
    Cellpop.Kernel.estimate params ~rng:(Rng.create 3200) ~n_cells:500 ~times ~n_phi:51
  in
  let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:8 in
  let g = Deconv.Forward.apply_fn kernel (fun phi -> 1.0 +. Float.sin (3.0 *. phi)) in
  let problem =
    Deconv.Problem.create ~use_conservation:false ~use_rate_continuity:true ~use_positivity:false
      ~kernel ~basis ~measurements:g ~params ()
  in
  let estimate = Deconv.Solver.solve ~lambda:1e-4 problem in
  check_close ~tol:1e-6 "rate constraint satisfied" 0.0
    (Deconv.Constraints.residual_rate_continuity params basis estimate.Deconv.Solver.alpha)

let tests =
  [
    ( "edge-cases",
      [
        case "ascii multi series" test_ascii_multi_series;
        case "ascii constant series" test_ascii_constant_series;
        case "ascii single point" test_ascii_single_point;
        case "table precision" test_table_precision;
        case "periodic spline endpoint check" test_periodic_requires_matching_endpoints;
        case "natural spline sorted check" test_natural_requires_sorted;
        prop_fft_linearity;
        prop_convolution_commutative;
        prop_interpolation_exact_at_knots;
        case "classify with empty boundaries" test_classify_with_empty_boundaries;
        case "zero-level noise" test_zero_fraction_noise_identity_like;
        case "lognormal factor" test_lognormal_factor;
        case "solver with rate constraint only" test_solver_rate_only;
      ] );
  ]
