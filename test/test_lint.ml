(* Tests for the deconv-lint static-analysis pass (lib/analysis).
   Violating code lives inside string literals, so linting this very file
   stays clean, and the suppression scanner must not mistake the marker
   text in those strings for a real suppression comment. *)

open Testutil

let lint ?disabled ~path src =
  match Analysis.Lint.lint_source ?disabled ~path src with
  | Ok findings -> findings
  | Error msg -> Alcotest.failf "lint_source failed on %s: %s" path msg

let rules_of findings =
  List.sort String.compare (List.map (fun f -> f.Analysis.Finding.rule) findings)

let check_rules msg expected ?disabled ~path src =
  Alcotest.(check (list string))
    msg
    (List.sort String.compare expected)
    (rules_of (lint ?disabled ~path src))

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1)) in
  go 0

(* R1: polymorphic comparison on float operands. *)

let test_r1_positive () =
  check_rules "float '='" [ "R1" ] ~path:"lib/scratch.ml" "let f x = x = 0.0";
  check_rules "float '<>'" [ "R1" ] ~path:"lib/scratch.ml" "let f x = x <> 1.5";
  check_rules "compare on float arithmetic" [ "R1" ] ~path:"lib/scratch.ml"
    "let f a b = compare (a *. 2.0) b";
  check_rules "min on float" [ "R1" ] ~path:"lib/scratch.ml" "let f a b = min a (b +. 1.0)";
  check_rules "R1 applies outside lib too" [ "R1" ] ~path:"test/scratch.ml"
    "let f x = x = 0.0"

let test_r1_negative () =
  check_rules "Float.equal is fine" [] ~path:"lib/scratch.ml" "let f x = Float.equal x 0.0";
  check_rules "int '=' is fine" [] ~path:"lib/scratch.ml" "let f x = x = 0";
  check_rules "explicit tolerance is fine" [] ~path:"lib/scratch.ml"
    "let f x = Float.abs (x -. 1.0) < 1e-9"

let test_r1_location () =
  match lint ~path:"lib/scratch.ml" "let f x = x = 0.0" with
  | [ f ] ->
    let text = Analysis.Finding.to_text f in
    check_true "file:line:col and rule id in text"
      (contains ~needle:"lib/scratch.ml:1:13: [R1]" text)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

(* R2: catch-all exception handlers in library code. *)

let test_r2_positive () =
  check_rules "wildcard handler" [ "R2" ] ~path:"lib/scratch.ml"
    "let f g = try g () with _ -> 0";
  check_rules "variable handler without re-raise" [ "R2" ] ~path:"lib/scratch.ml"
    "let f g = try g () with e -> String.length (Printexc.to_string e)";
  check_rules "catch-all exception case in match" [ "R2" ] ~path:"lib/scratch.ml"
    "let f g = match g () with x -> x | exception _ -> 0"

let test_r2_negative () =
  check_rules "specific exception is fine" [] ~path:"lib/scratch.ml"
    "let f g = try g () with Not_found -> 0";
  check_rules "re-raising variable handler is fine" [] ~path:"lib/scratch.ml"
    "let f g = try g () with e -> raise e";
  check_rules "R2 does not apply outside lib" [] ~path:"bench/scratch.ml"
    "let f g = try g () with _ -> 0"

(* R3: partial accessors. *)

let test_r3_positive () =
  check_rules "List.hd" [ "R3" ] ~path:"lib/scratch.ml" "let f l = List.hd l";
  check_rules "List.tl" [ "R3" ] ~path:"lib/scratch.ml" "let f l = List.tl l";
  check_rules "Option.get" [ "R3" ] ~path:"test/scratch.ml" "let f o = Option.get o"

let test_r3_negative () =
  check_rules "pattern match is fine" [] ~path:"lib/scratch.ml"
    "let f l = match l with [] -> 0 | x :: _ -> x";
  check_rules "Option.value is fine" [] ~path:"lib/scratch.ml"
    "let f o = Option.value o ~default:0"

(* R4: magic paper constants outside the params module. *)

let test_r4_positive () =
  check_rules "0.15 in library code" [ "R4" ] ~path:"lib/foo/scratch.ml" "let x = 0.15";
  check_rules "0.6 in library code" [ "R4" ] ~path:"lib/foo/scratch.ml" "let y = 0.6"

let test_r4_negative () =
  check_rules "params.ml is the allowed site" [] ~path:"lib/cellpop/params.ml"
    "let x = 0.15";
  check_rules "R4 does not apply outside lib" [] ~path:"bench/scratch.ml" "let x = 0.15";
  check_rules "data-table literals are exempt" [] ~path:"lib/foo/scratch.ml"
    "let xs = [| 0.15; 0.4; 0.6 |]";
  check_rules "non-magic constants are fine" [] ~path:"lib/foo/scratch.ml" "let x = 0.25"

(* R5: stdout/stderr side effects in library code. *)

let test_r5_positive () =
  check_rules "print_endline" [ "R5" ] ~path:"lib/scratch.ml"
    "let f () = print_endline \"hi\"";
  check_rules "Printf.printf" [ "R5" ] ~path:"lib/scratch.ml"
    "let f () = Printf.printf \"%d\" 3"

let test_r5_negative () =
  check_rules "printing from bin is fine" [] ~path:"bin/scratch.ml"
    "let f () = print_endline \"hi\"";
  check_rules "Printf.sprintf is fine in lib" [] ~path:"lib/scratch.ml"
    "let f () = Printf.sprintf \"%d\" 3"

(* R6: ignoring result-carrying expressions. *)

let test_r6_positive () =
  check_rules "ignore (validate ...)" [ "R6" ] ~path:"lib/scratch.ml"
    "let f x = ignore (validate x)";
  check_rules "|> ignore" [ "R6" ] ~path:"lib/scratch.ml" "let f x = validate x |> ignore";
  check_rules "ignore on Result combinator" [ "R6" ] ~path:"lib/scratch.ml"
    "let f r = ignore (Result.map succ r)"

let test_r6_negative () =
  check_rules "ignoring a plain value is fine" [] ~path:"lib/scratch.ml"
    "let f x = ignore (succ x)"

(* R8: raw concurrency primitives outside lib/parallel and lib/obs. *)

let test_r8_positive () =
  check_rules "Domain.spawn in library code" [ "R8" ] ~path:"lib/core/scratch.ml"
    "let f g = Domain.spawn g";
  check_rules "bare Domain.spawn reference" [ "R8" ] ~path:"lib/core/scratch.ml"
    "let spawn = Domain.spawn";
  check_rules "Mutex.create" [ "R8" ] ~path:"lib/core/scratch.ml" "let m = Mutex.create ()";
  check_rules "Condition.wait" [ "R8" ] ~path:"lib/core/scratch.ml"
    "let f c m = Condition.wait c m";
  check_rules "R8 applies in bin too" [ "R8" ] ~path:"bin/scratch.ml"
    "let m = Mutex.create ()"

let test_r8_negative () =
  check_rules "lib/parallel may spawn" [] ~path:"lib/parallel/scratch.ml"
    "let f g = Domain.spawn g";
  check_rules "lib/parallel may lock" [] ~path:"lib/parallel/scratch.ml"
    "let m = Mutex.create ()";
  check_rules "lib/obs may lock" [] ~path:"lib/obs/scratch.ml" "let m = Mutex.create ()";
  check_rules "other Domain functions are fine" [] ~path:"lib/core/scratch.ml"
    "let n = Domain.recommended_domain_count ()";
  check_rules "the pool API is the sanctioned route" [] ~path:"lib/core/scratch.ml"
    "let f body = Parallel.parallel_for ~n:8 body"

let test_r9_positive () =
  check_rules "open_out in library code" [ "R9" ] ~path:"lib/core/scratch.ml"
    "let f path = open_out path";
  check_rules "open_out_bin partial application" [ "R9" ] ~path:"lib/core/scratch.ml"
    "let opener = open_out_bin";
  check_rules "Stdlib.open_out_gen" [ "R9" ] ~path:"lib/core/scratch.ml"
    "let f p = Stdlib.open_out_gen [Open_append] 0o644 p";
  check_rules "Out_channel.with_open_text" [ "R9" ] ~path:"lib/obs/scratch.ml"
    "let f p s = Out_channel.with_open_text p (fun oc -> Out_channel.output_string oc s)"

let test_r9_negative () =
  check_rules "the atomic writer itself is exempt" [] ~path:"lib/dataio/atomic_file.ml"
    "let f path = open_out_bin path";
  check_rules "R9 is lib-only: bin may open channels" [] ~path:"bin/scratch.ml"
    "let f path = open_out path";
  check_rules "input channels are fine" [] ~path:"lib/core/scratch.ml"
    "let f path = open_in path";
  check_rules "Out_channel reads of an existing channel are fine" []
    ~path:"lib/core/scratch.ml" "let f oc s = Out_channel.output_string oc s";
  check_rules "a suppression with a reason still works" [] ~path:"lib/core/scratch.ml"
    "let f tmp = open_out tmp (* lint: allow R9 -- same-dir temp file, renamed by caller *)"

(* R13: raw GC/procfs introspection outside lib/obs. *)

let test_r13_positive () =
  check_rules "Gc.stat in library code" [ "R13" ] ~path:"lib/core/scratch.ml"
    "let words () = (Gc.stat ()).Gc.heap_words";
  check_rules "Gc.quick_stat" [ "R13" ] ~path:"lib/core/scratch.ml"
    "let minor () = (Gc.quick_stat ()).Gc.minor_words";
  check_rules "bare Gc.allocated_bytes reference" [ "R13" ] ~path:"lib/core/scratch.ml"
    "let probe = Gc.allocated_bytes";
  check_rules "procfs path literal" [ "R13" ] ~path:"lib/core/scratch.ml"
    "let statm () = open_in \"/proc/self/statm\"";
  check_rules "R13 applies in bin too" [ "R13" ] ~path:"bin/scratch.ml"
    "let s () = Gc.stat ()"

let test_r13_negative () =
  check_rules "lib/obs owns GC introspection" [] ~path:"lib/obs/scratch.ml"
    "let minor () = (Gc.quick_stat ()).Gc.minor_words";
  check_rules "lib/obs owns procfs reads" [] ~path:"lib/obs/scratch.ml"
    "let statm () = open_in \"/proc/self/statm\"";
  check_rules "non-introspecting Gc calls are fine" [] ~path:"lib/core/scratch.ml"
    "let f () = Gc.compact ()";
  check_rules "a non-procfs path is fine" [] ~path:"lib/core/scratch.ml"
    "let f () = open_in \"/tmp/data.csv\"";
  check_rules "a suppression with a reason still works" [] ~path:"lib/core/scratch.ml"
    "let b = Gc.allocated_bytes () (* lint: allow R13 -- one-off allocation probe in a test \
     helper *)"

(* R14: quality-statistic primitives outside lib/numerics and lib/core. *)

let test_r14_positive () =
  check_rules "condition number in an outer library layer" [ "R14" ]
    ~path:"lib/cellpop/scratch.ml" "let k a = Linalg.condition_spd a";
  check_rules "fully qualified condition number" [ "R14" ] ~path:"lib/dataio/scratch.ml"
    "let k a = Numerics.Linalg.condition_spd a";
  check_rules "runs test outside the quality layers" [ "R14" ] ~path:"lib/robust/scratch.ml"
    "let z r = Stats.runs_z r";
  check_rules "normality test, fully qualified" [ "R14" ] ~path:"lib/spline/scratch.ml"
    "let z r = Numerics.Stats.normality_z r";
  check_rules "bare reference is caught like an application" [ "R14" ]
    ~path:"lib/optimize/scratch.ml" "let f = Stats.moment_z"

let test_r14_factorization_positive () =
  check_rules "raw eigensolver call from lib/core" [ "R14" ] ~path:"lib/core/scratch.ml"
    "let e a = Linalg.jacobi_eigen a";
  check_rules "fully qualified generalized eigendecomposition" [ "R14" ]
    ~path:"lib/core/scratch.ml" "let e s o = Numerics.Linalg.generalized_eigen_spd s o";
  check_rules "triangular substitution outside the factorization layers" [ "R14" ]
    ~path:"lib/cellpop/scratch.ml" "let s l b = Linalg.lower_solve l b";
  check_rules "bare reference to the back substitution" [ "R14" ]
    ~path:"lib/robust/scratch.ml" "let f = Linalg.lower_transpose_solve"

let test_r14_factorization_negative () =
  check_rules "lib/optimize wraps the eigensolver" [] ~path:"lib/optimize/scratch.ml"
    "let e s o = Linalg.generalized_eigen_spd s o";
  check_rules "lib/numerics implements the decompositions" []
    ~path:"lib/numerics/scratch.ml" "let e a = jacobi_eigen a";
  check_rules "factorization clause is lib-only" [] ~path:"test/scratch.ml"
    "let e a = Linalg.jacobi_eigen a";
  check_rules "cholesky itself stays available to lib/core" [] ~path:"lib/core/scratch.ml"
    "let c a = Linalg.cholesky_factor a"

let test_r14_negative () =
  check_rules "lib/numerics owns the statistic kernels" [] ~path:"lib/numerics/scratch.ml"
    "let z r = runs_z r\nlet k a = condition_spd a";
  check_rules "lib/core assembles quality records" [] ~path:"lib/core/scratch.ml"
    "let z r = Stats.runs_z r";
  check_rules "R14 is lib-only: the CLI renders via Quality" [] ~path:"bin/scratch.ml"
    "let k a = Numerics.Linalg.condition_spd a";
  check_rules "other Stats functions are fine anywhere" [] ~path:"lib/robust/scratch.ml"
    "let m r = Stats.mean r";
  check_rules "a suppression with a reason still works" [] ~path:"lib/robust/scratch.ml"
    "let z r = Stats.runs_z r (* lint: allow R14 -- doc example, not a reimplementation *)"

(* Suppressions and R0. *)

let test_suppression_trailing () =
  check_rules "trailing suppression silences the rule" [] ~path:"lib/scratch.ml"
    "let f x = x = 0.0 (* lint: allow R1 -- operands proven NaN-free upstream *)"

let test_suppression_above () =
  check_rules "comment-above suppression covers the next line" [] ~path:"lib/scratch.ml"
    "(* lint: allow R1 -- operands proven NaN-free upstream *)\nlet f x = x = 0.0"

let test_suppression_wrong_rule () =
  check_rules "suppressing a different rule does not silence R1" [ "R1" ]
    ~path:"lib/scratch.ml"
    "let f x = x = 0.0 (* lint: allow R3 -- wrong rule on purpose *)"

let test_suppression_malformed_no_rule () =
  check_rules "marker without a rule id is R0 and suppresses nothing" [ "R0"; "R1" ]
    ~path:"lib/scratch.ml" "let f x = x = 0.0 (* lint: allow -- no rule named *)"

let test_suppression_malformed_no_reason () =
  check_rules "marker without a reason is R0 and suppresses nothing" [ "R0"; "R1" ]
    ~path:"lib/scratch.ml" "let f x = x = 0.0 (* lint: allow R1 *)"

let test_marker_in_string_is_not_a_suppression () =
  check_rules "marker inside a string literal is inert" [ "R1" ] ~path:"lib/scratch.ml"
    "let doc = \"(* lint: allow R1 -- not a comment *)\"\nlet f x = x = 0.0"

(* CLI-level behaviors exercised through the library API. *)

let test_disable () =
  check_rules "--disable drops the rule" [] ~disabled:[ "R1" ] ~path:"lib/scratch.ml"
    "let f x = x = 0.0";
  check_rules "disable is case-insensitive" [] ~disabled:[ "r1" ] ~path:"lib/scratch.ml"
    "let f x = x = 0.0";
  check_rules "disabling one rule keeps the others" [ "R2" ] ~disabled:[ "R1" ]
    ~path:"lib/scratch.ml" "let f g = try Float.equal (g ()) 0.0 with _ -> false"

let test_json_round_trip () =
  let findings = lint ~path:"lib/scratch.ml" "let f x = x = 0.0" in
  let json = Analysis.Finding.list_to_json findings in
  check_true "json carries the rule" (contains ~needle:"\"rule\":\"R1\"" json);
  check_true "json carries the line" (contains ~needle:"\"line\":1" json);
  check_true "json carries the file" (contains ~needle:"\"file\":\"lib/scratch.ml\"" json);
  Alcotest.(check string) "empty findings render as []" "[]"
    (Analysis.Finding.list_to_json [])

let test_json_escaping () =
  let f =
    {
      Analysis.Finding.file = "lib/a\"b.ml";
      line = 1;
      col = 1;
      rule = "R1";
      message = "tab\there";
      hint = "back\\slash";
    }
  in
  let json = Analysis.Finding.to_json f in
  check_true "quote escaped" (contains ~needle:"lib/a\\\"b.ml" json);
  check_true "tab escaped" (contains ~needle:"tab\\there" json);
  check_true "backslash escaped" (contains ~needle:"back\\\\slash" json)

let test_parse_error () =
  match Analysis.Lint.lint_source ~path:"lib/scratch.ml" "let let = =" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a parse error"

let test_lint_file_as_path () =
  let path = Filename.temp_file "deconv_lint_test" ".ml" in
  let oc = open_out path in
  output_string oc "let f g = try g () with _ -> 0\n";
  close_out oc;
  let result = Analysis.Lint.lint_file ~as_path:"lib/fake/scratch.ml" path in
  Sys.remove path;
  match result with
  | Ok [ f ] ->
    Alcotest.(check string) "rule" "R2" f.Analysis.Finding.rule;
    Alcotest.(check string) "reported under the logical path" "lib/fake/scratch.ml"
      f.Analysis.Finding.file
  | Ok fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)
  | Error msg -> Alcotest.failf "lint_file failed: %s" msg

(* Regression: the repository's own library tree lints clean. Tests run in
   _build/default/test, so the (copied) sources live one directory up. *)
let test_repo_tree_is_clean () =
  let root p = Filename.concat Filename.parent_dir_name p in
  let paths = List.filter (fun p -> Sys.file_exists (root p)) [ "lib"; "bin"; "bench" ] in
  if paths = [] then ()
  else begin
    let result = Analysis.Lint.run (List.map root paths) in
    List.iter
      (fun (p, msg) -> Alcotest.failf "lint error on %s: %s" p msg)
      result.Analysis.Lint.errors;
    match result.Analysis.Lint.findings with
    | [] -> ()
    | f :: _ ->
      Alcotest.failf "repo tree has %d finding(s), first: %s"
        (List.length result.Analysis.Lint.findings)
        (Analysis.Finding.to_text f)
  end

let tests =
  [
    ( "lint-rules",
      [
        case "r1 positive" test_r1_positive;
        case "r1 negative" test_r1_negative;
        case "r1 location in text output" test_r1_location;
        case "r2 positive" test_r2_positive;
        case "r2 negative" test_r2_negative;
        case "r3 positive" test_r3_positive;
        case "r3 negative" test_r3_negative;
        case "r4 positive" test_r4_positive;
        case "r4 negative" test_r4_negative;
        case "r5 positive" test_r5_positive;
        case "r5 negative" test_r5_negative;
        case "r6 positive" test_r6_positive;
        case "r6 negative" test_r6_negative;
        case "r8 positive" test_r8_positive;
        case "r8 negative" test_r8_negative;
        case "r9 positive" test_r9_positive;
        case "r9 negative" test_r9_negative;
        case "r13 positive" test_r13_positive;
        case "r13 negative" test_r13_negative;
        case "r14 positive" test_r14_positive;
        case "r14 negative" test_r14_negative;
        case "r14 factorization positive" test_r14_factorization_positive;
        case "r14 factorization negative" test_r14_factorization_negative;
      ] );
    ( "lint-suppress",
      [
        case "trailing comment" test_suppression_trailing;
        case "comment above" test_suppression_above;
        case "wrong rule id" test_suppression_wrong_rule;
        case "malformed: no rule" test_suppression_malformed_no_rule;
        case "malformed: no reason" test_suppression_malformed_no_reason;
        case "marker in string literal" test_marker_in_string_is_not_a_suppression;
      ] );
    ( "lint-cli",
      [
        case "disable" test_disable;
        case "json round trip" test_json_round_trip;
        case "json escaping" test_json_escaping;
        case "parse error" test_parse_error;
        case "lint_file as_path" test_lint_file_as_path;
        case "repo tree lints clean" test_repo_tree_is_clean;
      ] );
  ]
