(* Tests for the lib/parallel domain pool: chunk-schedule mechanics,
   exception propagation, and — the load-bearing property — bit-for-bit
   equality of every parallelized pipeline stage across jobs settings.
   Concurrency is exercised exclusively through the pool API: raw
   Domain.spawn / Mutex are off limits here too (rule R8). *)

open Numerics
open Testutil

(* --- pool mechanics --- *)

let test_empty_range () =
  let pool = Parallel.Pool.create ~domains:2 in
  let called = ref false in
  Parallel.Pool.parallel_for pool ~n:0 (fun ~lo:_ ~hi:_ -> called := true);
  check_true "body never called for n = 0" (not !called);
  Parallel.Pool.parallel_for pool ~n:(-3) (fun ~lo:_ ~hi:_ -> called := true);
  check_true "body never called for n < 0" (not !called);
  Alcotest.(check int) "empty map" 0 (Array.length (Parallel.Pool.parallel_map pool ~n:0 succ));
  Parallel.Pool.shutdown pool

let test_chunk_larger_than_n () =
  (* One chunk covers the whole range and runs inline in the submitting
     domain, so plain refs are safe to write. *)
  let pool = Parallel.Pool.create ~domains:4 in
  let calls = ref [] in
  Parallel.Pool.parallel_for pool ~chunk:100 ~n:7 (fun ~lo ~hi -> calls := (lo, hi) :: !calls);
  Alcotest.(check (list (pair int int))) "single chunk [0, 7)" [ (0, 7) ] !calls;
  Parallel.Pool.shutdown pool

let test_coverage_exactly_once () =
  let n = 997 in
  let pool = Parallel.Pool.create ~domains:3 in
  let counts = Array.make n 0 in
  (* Chunks own disjoint index ranges, so these writes never race. *)
  Parallel.Pool.parallel_for pool ~chunk:10 ~n (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        counts.(i) <- counts.(i) + 1
      done);
  Array.iteri
    (fun i c -> if c <> 1 then Alcotest.failf "index %d visited %d times" i c)
    counts;
  Parallel.Pool.shutdown pool

let test_map_preserves_order () =
  let pool = Parallel.Pool.create ~domains:4 in
  let got = Parallel.Pool.parallel_map pool ~chunk:3 ~n:100 (fun i -> i * i) in
  Alcotest.(check (array int)) "f i lands in slot i" (Array.init 100 (fun i -> i * i)) got;
  Parallel.Pool.shutdown pool

let test_nested_parallel_for () =
  (* A submission from inside a running job finds the pool busy and falls
     back to inline execution: same schedule, no deadlock. *)
  let pool = Parallel.Pool.create ~domains:2 in
  let got =
    Parallel.Pool.parallel_map pool ~chunk:1 ~n:8 (fun i ->
        Array.to_list (Parallel.Pool.parallel_map pool ~chunk:1 ~n:4 (fun j -> (10 * i) + j)))
  in
  let expected = Array.init 8 (fun i -> List.init 4 (fun j -> (10 * i) + j)) in
  Alcotest.(check (array (list int))) "nested map results" expected got;
  Parallel.Pool.shutdown pool

let test_exception_propagation () =
  let pool = Parallel.Pool.create ~domains:2 in
  Alcotest.check_raises "chunk exception reaches the submitter" (Failure "boom") (fun () ->
      Parallel.Pool.parallel_for pool ~chunk:1 ~n:64 (fun ~lo ~hi:_ ->
          if lo = 37 then failwith "boom"));
  (* The pool stays healthy: the next job runs to completion. *)
  let got = Parallel.Pool.parallel_map pool ~chunk:1 ~n:32 (fun i -> i + 1) in
  Alcotest.(check (array int)) "pool reusable after a failed job"
    (Array.init 32 (fun i -> i + 1))
    got;
  Parallel.Pool.shutdown pool

let test_single_domain_pool_inline () =
  let pool = Parallel.Pool.create ~domains:1 in
  Alcotest.(check int) "domains" 1 (Parallel.Pool.domains pool);
  let counts = Array.make 50 0 in
  Parallel.Pool.parallel_for pool ~chunk:7 ~n:50 (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        counts.(i) <- counts.(i) + 1
      done);
  Array.iteri (fun i c -> if c <> 1 then Alcotest.failf "index %d visited %d times" i c) counts;
  Parallel.Pool.shutdown pool;
  (* Jobs after shutdown run inline rather than hanging. *)
  let got = Parallel.Pool.parallel_map pool ~n:4 (fun i -> -i) in
  Alcotest.(check (array int)) "post-shutdown inline" [| 0; -1; -2; -3 |] got

let test_jobs_override () =
  Parallel.set_jobs 3;
  Alcotest.(check int) "set_jobs wins" 3 (Parallel.jobs ());
  Alcotest.(check int) "default pool resized" 3 (Parallel.Pool.domains (Parallel.default ()));
  Parallel.set_jobs 1;
  Alcotest.(check int) "back to one" 1 (Parallel.Pool.domains (Parallel.default ()));
  Alcotest.check_raises "set_jobs rejects 0"
    (Invalid_argument "Parallel.set_jobs: jobs must be >= 1") (fun () -> Parallel.set_jobs 0)

(* --- bitwise determinism across jobs settings --- *)

let bits = Int64.bits_of_float

let check_bitwise_vec msg expected actual =
  Alcotest.(check int) (msg ^ ": length") (Array.length expected) (Array.length actual);
  Array.iteri
    (fun i x ->
      if not (Int64.equal (bits x) (bits actual.(i))) then
        Alcotest.failf "%s: element %d differs bitwise: %h vs %h" msg i x actual.(i))
    expected

let check_bitwise_mat msg expected actual =
  Alcotest.(check (pair int int)) (msg ^ ": dims") (Mat.dims expected) (Mat.dims actual);
  for i = 0 to expected.Mat.rows - 1 do
    check_bitwise_vec (Printf.sprintf "%s: row %d" msg i) (Mat.row expected i) (Mat.row actual i)
  done

let check_bitwise_float msg expected actual =
  if not (Int64.equal (bits expected) (bits actual)) then
    Alcotest.failf "%s: %h vs %h" msg expected actual

(* Run [f] under an explicit default-pool size, restoring --jobs 1 (the
   sequential schedule) afterwards so suite order never matters. *)
let with_jobs n f =
  Parallel.set_jobs n;
  Fun.protect ~finally:(fun () -> Parallel.set_jobs 1) f

let params = Cellpop.Params.paper_2011
let times = [| 0.0; 30.0; 60.0; 90.0; 120.0; 150.0; 180.0 |]

let test_kernel_estimate_jobs_independent () =
  (* n_cells = 10^4 spans ~40 founder chunks: enough for a real fan-out at
     every jobs setting tested. *)
  let estimate () =
    Cellpop.Kernel.estimate params ~rng:(Rng.create 777) ~n_cells:10_000 ~times ~n_phi:101
  in
  let reference = with_jobs 1 estimate in
  List.iter
    (fun jobs ->
      let k = with_jobs jobs estimate in
      let tag fmt = Printf.sprintf fmt jobs in
      check_bitwise_mat (tag "q at jobs=%d") reference.Cellpop.Kernel.q k.Cellpop.Kernel.q;
      check_bitwise_mat (tag "q_tilde at jobs=%d") reference.Cellpop.Kernel.q_tilde
        k.Cellpop.Kernel.q_tilde;
      check_bitwise_vec (tag "phases at jobs=%d") reference.Cellpop.Kernel.phases
        k.Cellpop.Kernel.phases)
    [ 2; 4 ]

let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:10

(* A shared deconvolution problem for the λ-selection and bootstrap
   determinism tests (built once; kernel kept small for speed). *)
let problem_and_estimate =
  lazy
    (let kernel =
       Cellpop.Kernel.estimate params ~rng:(Rng.create 778) ~n_cells:2000 ~times ~n_phi:101
     in
     let profile = Biomodels.Gene_profile.gaussian_pulse ~center:0.5 ~width:0.12 ~height:4.0 () in
     let clean = Deconv.Forward.apply_fn kernel profile in
     let noisy, sigmas =
       Deconv.Noise.apply (Deconv.Noise.Gaussian_fraction 0.08) (Rng.create 779) clean
     in
     let problem = Deconv.Problem.create ~sigmas ~kernel ~basis ~measurements:noisy ~params () in
     let estimate = Deconv.Solver.solve ~lambda:1e-3 problem in
     (problem, estimate))

let test_lambda_select_jobs_independent () =
  let problem, _ = Lazy.force problem_and_estimate in
  List.iter
    (fun (name, method_, seed) ->
      let select jobs =
        with_jobs jobs (fun () ->
            let rng = Option.map Rng.create seed in
            Deconv.Lambda.select problem ~method_ ?rng ())
      in
      let reference = select 1 in
      List.iter
        (fun jobs ->
          check_bitwise_float
            (Printf.sprintf "%s: jobs=1 vs jobs=%d" name jobs)
            reference (select jobs))
        [ 2; 4 ])
    [ ("gcv", `Gcv, None); ("lcurve", `Lcurve, None); ("kfold", `Kfold 5, Some 808) ]

let test_bootstrap_jobs_independent () =
  let problem, estimate = Lazy.force problem_and_estimate in
  let run jobs =
    with_jobs jobs (fun () ->
        Deconv.Bootstrap.residual ~replicates:40 ~level:0.9 problem estimate
          ~rng:(Rng.create 909))
  in
  let reference = run 1 in
  List.iter
    (fun jobs ->
      let b = run jobs in
      let tag fmt = Printf.sprintf fmt jobs in
      check_bitwise_vec (tag "lower at jobs=%d") reference.Deconv.Bootstrap.lower
        b.Deconv.Bootstrap.lower;
      check_bitwise_vec (tag "median at jobs=%d") reference.Deconv.Bootstrap.median
        b.Deconv.Bootstrap.median;
      check_bitwise_vec (tag "upper at jobs=%d") reference.Deconv.Bootstrap.upper
        b.Deconv.Bootstrap.upper;
      check_bitwise_mat (tag "replicates at jobs=%d") reference.Deconv.Bootstrap.replicates
        b.Deconv.Bootstrap.replicates)
    [ 2; 4 ]

let test_batch_jobs_independent () =
  let problem, _ = Lazy.force problem_and_estimate in
  let kernel = problem.Deconv.Problem.kernel in
  let batch = Deconv.Batch.prepare ~kernel ~basis ~params () in
  let profiles =
    [|
      Biomodels.Gene_profile.gaussian_pulse ~center:0.25 ~width:0.1 ~height:3.0 ();
      Biomodels.Gene_profile.gaussian_pulse ~center:0.5 ~width:0.12 ~height:4.0 ();
      Biomodels.Gene_profile.gaussian_pulse ~center:0.75 ~width:0.1 ~height:2.0 ();
    |]
  in
  let measurements =
    Mat.of_rows (Array.map (fun p -> Deconv.Forward.apply_fn kernel p) profiles)
  in
  let run jobs =
    with_jobs jobs (fun () -> Deconv.Batch.solve_all batch ~lambda:`Gcv ~measurements ())
  in
  let reference = run 1 in
  List.iter
    (fun jobs ->
      let estimates = run jobs in
      Array.iteri
        (fun g (e : Deconv.Solver.estimate) ->
          check_bitwise_float
            (Printf.sprintf "gene %d lambda at jobs=%d" g jobs)
            e.Deconv.Solver.lambda reference.(g).Deconv.Solver.lambda;
          check_bitwise_vec
            (Printf.sprintf "gene %d profile at jobs=%d" g jobs)
            reference.(g).Deconv.Solver.profile e.Deconv.Solver.profile)
        estimates)
    [ 2; 4 ]

(* Regression for the k-fold seed derivation: fold assignment now comes
   from an [Rng.split] substream, so repeated selections with equal-seeded
   generators agree exactly, candidate order notwithstanding. *)
let test_kfold_fold_seed_determinism () =
  let problem, _ = Lazy.force problem_and_estimate in
  let select () = Deconv.Lambda.select problem ~method_:(`Kfold 5) ~rng:(Rng.create 4242) () in
  let a = select () in
  let b = select () in
  check_bitwise_float "repeat kfold selection" a b;
  check_true "selected lambda usable" (Float.is_finite a && a >= 0.0)

let tests =
  [
    ( "parallel-pool",
      [
        case "empty range" test_empty_range;
        case "chunk larger than n" test_chunk_larger_than_n;
        case "coverage exactly once" test_coverage_exactly_once;
        case "map preserves order" test_map_preserves_order;
        case "nested parallel_for runs inline" test_nested_parallel_for;
        case "exception propagation restores pool health" test_exception_propagation;
        case "single-domain pool inline" test_single_domain_pool_inline;
        case "jobs override" test_jobs_override;
      ] );
    ( "parallel-determinism",
      [
        case "kernel estimate bitwise across jobs" test_kernel_estimate_jobs_independent;
        case "lambda select bitwise across jobs" test_lambda_select_jobs_independent;
        case "bootstrap bands bitwise across jobs" test_bootstrap_jobs_independent;
        case "batch solves bitwise across jobs" test_batch_jobs_independent;
        case "kfold fold-seed determinism" test_kfold_fold_seed_determinism;
      ] );
  ]
