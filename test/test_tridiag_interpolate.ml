open Numerics
open Testutil

let test_tridiag_known () =
  let x = Tridiag.solve ~lower:[| 1.0; 1.0 |] ~diag:[| 2.0; 2.0; 2.0 |] ~upper:[| 1.0; 1.0 |]
      ~rhs:[| 4.0; 8.0; 8.0 |]
  in
  check_vec ~tol:1e-12 "known 3x3" [| 1.0; 2.0; 3.0 |] x

let test_tridiag_vs_dense () =
  let rng = Rng.create 909 in
  for n = 2 to 10 do
    let diag = Array.init n (fun _ -> 4.0 +. Rng.float rng) in
    let lower = Array.init (n - 1) (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
    let upper = Array.init (n - 1) (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
    let rhs = Array.init n (fun _ -> Rng.uniform rng ~lo:(-3.0) ~hi:3.0) in
    let dense =
      Mat.init n n (fun i j ->
          if i = j then diag.(i)
          else if i = j + 1 then lower.(j)
          else if j = i + 1 then upper.(i)
          else 0.0)
    in
    let expected = Linalg.solve dense rhs in
    check_vec ~tol:1e-9 (Printf.sprintf "matches dense n=%d" n) expected
      (Tridiag.solve ~lower ~diag ~upper ~rhs)
  done

let test_tridiag_size_one () =
  check_vec ~tol:1e-12 "1x1" [| 2.5 |] (Tridiag.solve ~lower:[||] ~diag:[| 2.0 |] ~upper:[||] ~rhs:[| 5.0 |])

let test_cyclic_vs_dense () =
  let rng = Rng.create 911 in
  for n = 3 to 8 do
    let diag = Array.init n (fun _ -> 5.0 +. Rng.float rng) in
    let lower = Array.init (n - 1) (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
    let upper = Array.init (n - 1) (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
    let alpha = Rng.uniform rng ~lo:(-1.0) ~hi:1.0 in
    let beta = Rng.uniform rng ~lo:(-1.0) ~hi:1.0 in
    let rhs = Array.init n (fun _ -> Rng.uniform rng ~lo:(-3.0) ~hi:3.0) in
    let dense =
      Mat.init n n (fun i j ->
          if i = j then diag.(i)
          else if i = j + 1 then lower.(j)
          else if j = i + 1 then upper.(i)
          else if i = 0 && j = n - 1 then alpha
          else if i = n - 1 && j = 0 then beta
          else 0.0)
    in
    let expected = Linalg.solve dense rhs in
    check_vec ~tol:1e-8 (Printf.sprintf "cyclic matches dense n=%d" n) expected
      (Tridiag.solve_cyclic ~lower ~diag ~upper ~corner:(alpha, beta) ~rhs)
  done

let test_interpolation_hits_knots () =
  let x = [| 0.0; 0.7; 1.5; 2.0; 3.1 |] in
  let y = [| 1.0; -0.5; 2.0; 0.0; 1.7 |] in
  let sp = Spline.Interpolate.natural ~x ~y in
  Array.iteri
    (fun i xi -> check_close ~tol:1e-12 "interpolates" y.(i) (Spline.Interpolate.eval sp xi))
    x

let test_interpolation_accuracy () =
  let x = Vec.linspace 0.0 Float.pi 25 in
  let y = Array.map Float.sin x in
  let sp = Spline.Interpolate.natural ~x ~y in
  for i = 0 to 100 do
    let v = Float.pi *. float_of_int i /. 100.0 in
    check_close ~tol:2e-4 "sin interpolation" (Float.sin v) (Spline.Interpolate.eval sp v)
  done

let test_natural_boundary () =
  let x = Vec.linspace 0.0 1.0 9 in
  let y = Array.map (fun v -> exp v) x in
  let sp = Spline.Interpolate.natural ~x ~y in
  check_close ~tol:1e-10 "f'' zero at left" 0.0 (Spline.Interpolate.deriv2 sp 0.0);
  check_close ~tol:1e-10 "f'' zero at right" 0.0 (Spline.Interpolate.deriv2 sp 1.0)

let test_derivative_consistency () =
  let x = Vec.linspace 0.0 2.0 15 in
  let y = Array.map (fun v -> (v *. v) +. Float.cos v) x in
  let sp = Spline.Interpolate.natural ~x ~y in
  List.iter
    (fun v ->
      let fd = (Spline.Interpolate.eval sp (v +. 1e-6) -. Spline.Interpolate.eval sp (v -. 1e-6)) /. 2e-6 in
      check_close ~tol:1e-4 "deriv matches fd" fd (Spline.Interpolate.deriv sp v))
    [ 0.3; 0.77; 1.21; 1.9 ]

let test_clamped_outside () =
  let sp = Spline.Interpolate.natural ~x:[| 0.0; 1.0; 2.0 |] ~y:[| 3.0; 5.0; 4.0 |] in
  check_close "left clamp" 3.0 (Spline.Interpolate.eval sp (-1.0));
  check_close "right clamp" 4.0 (Spline.Interpolate.eval sp 10.0)

let test_two_points_line () =
  let sp = Spline.Interpolate.natural ~x:[| 0.0; 2.0 |] ~y:[| 1.0; 5.0 |] in
  check_close ~tol:1e-12 "line midpoint" 3.0 (Spline.Interpolate.eval sp 1.0)

let test_periodic_matches_function () =
  let n = 33 in
  let x = Vec.linspace 0.0 1.0 n in
  let y = Array.map (fun v -> Float.sin (2.0 *. Float.pi *. v)) x in
  let sp = Spline.Interpolate.periodic ~x ~y in
  for i = 0 to 100 do
    let v = float_of_int i /. 100.0 in
    check_close ~tol:2e-4 "periodic sin" (Float.sin (2.0 *. Float.pi *. v))
      (Spline.Interpolate.eval sp v)
  done;
  (* Derivative continuity across the seam. *)
  check_close ~tol:1e-3 "seam derivative" (Spline.Interpolate.deriv sp 1e-9)
    (Spline.Interpolate.deriv sp (1.0 -. 1e-9))

let test_eval_many () =
  let sp = Spline.Interpolate.natural ~x:[| 0.0; 1.0; 2.0 |] ~y:[| 0.0; 1.0; 0.0 |] in
  let out = Spline.Interpolate.eval_many sp [| 0.0; 1.0; 2.0 |] in
  check_vec ~tol:1e-12 "vectorized" [| 0.0; 1.0; 0.0 |] out

let tests =
  [
    ( "tridiag-interpolate",
      [
        case "tridiag known system" test_tridiag_known;
        case "tridiag matches dense" test_tridiag_vs_dense;
        case "tridiag size one" test_tridiag_size_one;
        case "cyclic matches dense" test_cyclic_vs_dense;
        case "interpolation hits knots" test_interpolation_hits_knots;
        case "interpolation accuracy" test_interpolation_accuracy;
        case "natural boundary conditions" test_natural_boundary;
        case "derivative consistency" test_derivative_consistency;
        case "clamped outside" test_clamped_outside;
        case "two points degenerate to line" test_two_points_line;
        case "periodic spline" test_periodic_matches_function;
        case "eval many" test_eval_many;
      ] );
  ]
