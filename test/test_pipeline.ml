(* End-to-end pipeline tests: generate -> noise -> deconvolve -> compare. *)

open Numerics
open Testutil

let times = Array.init 13 (fun i -> 15.0 *. float_of_int i)

let small_config =
  {
    (Deconv.Pipeline.default_config ~times) with
    Deconv.Pipeline.n_cells_kernel = 1500;
    n_cells_data = 1500;
    n_phi = 101;
    seed = 11;
  }

let pulse = Biomodels.Gene_profile.gaussian_pulse ~center:0.5 ~width:0.12 ~height:4.0 ()

let test_noiseless_recovery () =
  let run = Deconv.Pipeline.run small_config ~profile:pulse in
  check_true "good noiseless recovery"
    (run.Deconv.Pipeline.recovery.Deconv.Metrics.correlation > 0.97);
  check_true "nrmse small" (run.Deconv.Pipeline.recovery.Deconv.Metrics.nrmse < 0.1)

let test_noisy_recovery () =
  let config = { small_config with Deconv.Pipeline.noise = Deconv.Noise.Gaussian_fraction 0.10 } in
  let run = Deconv.Pipeline.run config ~profile:pulse in
  check_true "recovery survives 10% noise"
    (run.Deconv.Pipeline.recovery.Deconv.Metrics.correlation > 0.9)

let test_deconvolved_beats_population () =
  (* The headline claim: the deconvolved profile is closer to the truth than
     the raw population data read as a time course. *)
  let run = Deconv.Pipeline.run small_config ~profile:pulse in
  let truth_at_times =
    Array.map (fun t -> pulse (t /. 150.0)) (Array.sub times 0 11)
  in
  let population = Array.sub run.Deconv.Pipeline.noisy 0 11 in
  let deconvolved_at_times =
    Array.map
      (fun t ->
        Interp.linear_clamped ~x:run.Deconv.Pipeline.phases
          ~y:run.Deconv.Pipeline.estimate.Deconv.Solver.profile (t /. 150.0))
      (Array.sub times 0 11)
  in
  let pop_err = Stats.rmse truth_at_times population in
  let dec_err = Stats.rmse truth_at_times deconvolved_at_times in
  check_true "deconvolution reduces error vs population" (dec_err < pop_err /. 1.5)

let test_same_kernel_mode_near_perfect () =
  let config =
    { small_config with Deconv.Pipeline.forward_mode = Deconv.Pipeline.Same_kernel;
      selection = `Fixed 1e-5 }
  in
  let run = Deconv.Pipeline.run config ~profile:pulse in
  check_true "inverse crime near-perfect"
    (run.Deconv.Pipeline.recovery.Deconv.Metrics.correlation > 0.995)

let test_independent_kernel_mode () =
  let config =
    { small_config with Deconv.Pipeline.forward_mode = Deconv.Pipeline.Independent_kernel }
  in
  let run = Deconv.Pipeline.run config ~profile:pulse in
  check_true "independent kernel still recovers"
    (run.Deconv.Pipeline.recovery.Deconv.Metrics.correlation > 0.95)

let test_pipeline_deterministic () =
  let a = Deconv.Pipeline.run small_config ~profile:pulse in
  let b = Deconv.Pipeline.run small_config ~profile:pulse in
  check_vec ~tol:0.0 "same estimate" a.Deconv.Pipeline.estimate.Deconv.Solver.alpha
    b.Deconv.Pipeline.estimate.Deconv.Solver.alpha;
  check_close "same lambda" a.Deconv.Pipeline.lambda b.Deconv.Pipeline.lambda

let test_seed_changes_data () =
  let a = Deconv.Pipeline.run small_config ~profile:pulse in
  let b = Deconv.Pipeline.run { small_config with Deconv.Pipeline.seed = 12 } ~profile:pulse in
  check_true "different seeds different data"
    (not (Vec.approx_equal ~tol:1e-12 a.Deconv.Pipeline.clean b.Deconv.Pipeline.clean))

let test_truth_and_phases_consistent () =
  let run = Deconv.Pipeline.run small_config ~profile:pulse in
  Alcotest.(check int) "truth on grid" (Array.length run.Deconv.Pipeline.phases)
    (Array.length run.Deconv.Pipeline.truth);
  check_close ~tol:1e-12 "truth values" (pulse run.Deconv.Pipeline.phases.(50))
    run.Deconv.Pipeline.truth.(50)

let test_volume_model_ablation_runs () =
  (* Data from the smooth 2011 model, inversion with the linear 2009 model:
     the mismatch should not break anything, just degrade accuracy. *)
  let config =
    {
      small_config with
      Deconv.Pipeline.inversion_params = Some Cellpop.Params.plos_2009;
      selection = `Fixed 1e-4;
    }
  in
  let run = Deconv.Pipeline.run config ~profile:pulse in
  check_true "mismatched model still works"
    (run.Deconv.Pipeline.recovery.Deconv.Metrics.correlation > 0.7)

let test_ftsz_delay_recovered () =
  (* The Fig. 5 headline: the transcription delay invisible in G(t) is
     visible in the deconvolved profile. *)
  let config =
    { small_config with Deconv.Pipeline.noise = Deconv.Noise.Gaussian_fraction 0.05; seed = 21 }
  in
  let run = Deconv.Pipeline.run config ~profile:Biomodels.Ftsz.profile in
  (* The raw population signal at early times is NOT near zero relative to
     its peak (the delay is hidden)... *)
  let g = run.Deconv.Pipeline.noisy in
  let g_max = Vec.max g in
  let early_g = g.(1) in
  (* t=15 min, phase ~0.1: the population already shows signal. *)
  check_true "population hides the delay" (early_g > 0.05 *. g_max);
  (* ...but the deconvolved profile IS near zero through the swarmer stage. *)
  check_true "deconvolution reveals the delay"
    (Biomodels.Ftsz.delay_visible ~phases:run.Deconv.Pipeline.phases
       ~values:run.Deconv.Pipeline.estimate.Deconv.Solver.profile ~threshold:0.06)

let test_helpers () =
  let run = Deconv.Pipeline.run small_config ~profile:pulse in
  let minutes, values = Deconv.Pipeline.deconvolved_vs_minutes run in
  check_close ~tol:1e-9 "phase to minutes scaling" (run.Deconv.Pipeline.phases.(10) *. 150.0)
    minutes.(10);
  check_close "values are the estimate" run.Deconv.Pipeline.estimate.Deconv.Solver.profile.(10)
    values.(10);
  let t, g = Deconv.Pipeline.population_vs_phase run in
  check_vec "population times" times t;
  check_vec "population values" run.Deconv.Pipeline.noisy g

let tests =
  [
    ( "pipeline",
      [
        case "noiseless recovery" test_noiseless_recovery;
        case "recovery under 10% noise" test_noisy_recovery;
        case "deconvolved beats population" test_deconvolved_beats_population;
        case "same-kernel mode near-perfect" test_same_kernel_mode_near_perfect;
        case "independent-kernel mode" test_independent_kernel_mode;
        case "deterministic" test_pipeline_deterministic;
        case "seed changes data" test_seed_changes_data;
        case "truth/phase consistency" test_truth_and_phases_consistent;
        case "volume-model ablation runs" test_volume_model_ablation_runs;
        case "ftsz delay recovered" test_ftsz_delay_recovered;
        case "plotting helpers" test_helpers;
      ] );
  ]
