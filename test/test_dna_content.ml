open Numerics
open Testutil

let params = Cellpop.Params.paper_2011

let cell phase phi_sst = { Cellpop.Cell.phase; phi_sst; cycle_minutes = 150.0 }

let test_of_cell_stages () =
  check_close "1C before transition" 1.0 (Cellpop.Dna_content.of_cell (cell 0.1 0.15));
  check_close "2C after replication" 2.0 (Cellpop.Dna_content.of_cell (cell 0.95 0.15));
  let mid = Cellpop.Dna_content.of_cell (cell 0.5 0.15) in
  check_true "S-phase between 1 and 2" (mid > 1.0 && mid < 2.0);
  (* Linear ramp: halfway through replication = 1.5C. *)
  let halfway = 0.15 +. ((Cellpop.Dna_content.replication_end_phase -. 0.15) /. 2.0) in
  check_close ~tol:1e-12 "ramp midpoint" 1.5 (Cellpop.Dna_content.of_cell (cell halfway 0.15))

let test_of_cell_uses_own_transition () =
  (* Same phase, later transition: still 1C. *)
  check_close "per-cell replication start" 1.0 (Cellpop.Dna_content.of_cell (cell 0.2 0.25));
  check_true "already replicating" (Cellpop.Dna_content.of_cell (cell 0.2 0.15) > 1.0)

let test_fractions_sum () =
  let snapshots =
    Cellpop.Population.simulate params ~rng:(Rng.create 2500) ~n0:2000 ~times:[| 0.0; 100.0 |]
  in
  Array.iter
    (fun s ->
      let a, b, c = Cellpop.Dna_content.fractions s in
      check_close ~tol:1e-9 "fractions sum to 1" 1.0 (a +. b +. c))
    snapshots

let test_synchronized_starts_1c () =
  let snapshots =
    Cellpop.Population.simulate params ~rng:(Rng.create 2501) ~n0:3000 ~times:[| 0.0 |]
  in
  let one_c, _, _ = Cellpop.Dna_content.fractions snapshots.(0) in
  check_close "all 1C at t=0" 1.0 one_c

let test_asynchronous_fractions_match_theory () =
  (* For a uniform-phase population, P(1C) = E[phi_sst] and
     P(2C) = 1 - replication_end_phase. *)
  let async = { params with Cellpop.Params.initial_condition = Cellpop.Params.Uniform_phase } in
  let snapshots =
    Cellpop.Population.simulate async ~rng:(Rng.create 2502) ~n0:30_000 ~times:[| 0.0 |]
  in
  let one_c, _, two_c = Cellpop.Dna_content.fractions snapshots.(0) in
  check_close ~tol:0.01 "1C fraction = mean transition phase" 0.15 one_c;
  check_close ~tol:0.01 "2C fraction = post-replication span"
    (1.0 -. Cellpop.Dna_content.replication_end_phase)
    two_c

let test_histogram_mass_and_range () =
  let snapshots =
    Cellpop.Population.simulate params ~rng:(Rng.create 2503) ~n0:2000 ~times:[| 90.0 |]
  in
  let h = Cellpop.Dna_content.histogram (Rng.create 1) snapshots.(0) in
  check_close ~tol:30.0 "most cells captured" 2000.0 (Vec.sum h.Stats.counts);
  Alcotest.(check int) "default bins" 61 (Array.length h.Stats.edges)

let test_histogram_noiseless_concentrated () =
  (* Without measurement smear, a t=0 culture is a pure 1C spike. *)
  let snapshots =
    Cellpop.Population.simulate params ~rng:(Rng.create 2504) ~n0:1000 ~times:[| 0.0 |]
  in
  let h = Cellpop.Dna_content.histogram ~measurement_cv:0.0 (Rng.create 1) snapshots.(0) in
  (* All mass in the bin containing 1.0. *)
  let total = Vec.sum h.Stats.counts in
  let spike =
    Array.mapi
      (fun i c -> if h.Stats.edges.(i) <= 1.0 && 1.0 < h.Stats.edges.(i + 1) then c else 0.0)
      h.Stats.counts
  in
  check_close "pure 1C spike" total (Vec.sum spike)

let test_fractions_over_time_shape () =
  let times = [| 0.0; 60.0; 120.0 |] in
  let snapshots = Cellpop.Population.simulate params ~rng:(Rng.create 2505) ~n0:2000 ~times in
  let m = Cellpop.Dna_content.fractions_over_time snapshots in
  Alcotest.(check (pair int int)) "dims" (3, 3) (Mat.dims m);
  check_close ~tol:1e-9 "row sums" 1.0 (Vec.sum (Mat.row m 1))

let tests =
  [
    ( "dna-content",
      [
        case "per-cell stages" test_of_cell_stages;
        case "per-cell transition phase" test_of_cell_uses_own_transition;
        case "fractions sum to one" test_fractions_sum;
        case "synchronized culture starts 1C" test_synchronized_starts_1c;
        case "asynchronous fractions match theory" test_asynchronous_fractions_match_theory;
        case "histogram mass" test_histogram_mass_and_range;
        case "noiseless histogram spike" test_histogram_noiseless_concentrated;
        case "fractions over time" test_fractions_over_time_shape;
      ] );
  ]
