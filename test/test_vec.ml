open Numerics
open Testutil

let test_linspace () =
  let v = Vec.linspace 0.0 1.0 5 in
  check_vec "linspace 5" [| 0.0; 0.25; 0.5; 0.75; 1.0 |] v;
  let w = Vec.linspace 2.0 (-2.0) 3 in
  check_vec "descending linspace" [| 2.0; 0.0; -2.0 |] w

let test_arith () =
  let x = [| 1.0; 2.0; 3.0 |] and y = [| 4.0; 5.0; 6.0 |] in
  check_vec "add" [| 5.0; 7.0; 9.0 |] (Vec.add x y);
  check_vec "sub" [| -3.0; -3.0; -3.0 |] (Vec.sub x y);
  check_vec "scale" [| 2.0; 4.0; 6.0 |] (Vec.scale 2.0 x);
  check_vec "mul" [| 4.0; 10.0; 18.0 |] (Vec.mul x y);
  check_vec "div" [| 0.25; 0.4; 0.5 |] (Vec.div x y);
  check_vec "neg" [| -1.0; -2.0; -3.0 |] (Vec.neg x)

let test_axpy () =
  let x = [| 1.0; 2.0 |] in
  let y = [| 10.0; 20.0 |] in
  Vec.axpy 3.0 x y;
  check_vec "axpy in place" [| 13.0; 26.0 |] y

let test_dot_norm () =
  let x = [| 3.0; 4.0 |] in
  check_close "dot" 25.0 (Vec.dot x x);
  check_close "norm2" 5.0 (Vec.norm2 x);
  check_close "norm_inf" 4.0 (Vec.norm_inf x);
  check_close "sum" 7.0 (Vec.sum x);
  check_close "mean" 3.5 (Vec.mean x)

let test_extrema () =
  let x = [| 3.0; -1.0; 4.0; -1.5; 5.0 |] in
  check_close "min" (-1.5) (Vec.min x);
  check_close "max" 5.0 (Vec.max x);
  Alcotest.(check int) "argmin" 3 (Vec.argmin x);
  Alcotest.(check int) "argmax" 4 (Vec.argmax x)

let test_clamp () =
  check_vec "clamp" [| 0.0; 0.5; 1.0 |] (Vec.clamp ~lo:0.0 ~hi:1.0 [| -3.0; 0.5; 7.0 |])

let test_map () =
  check_vec "map" [| 1.0; 4.0; 9.0 |] (Vec.map (fun x -> x *. x) [| 1.0; 2.0; 3.0 |]);
  check_vec "map2" [| 5.0; 8.0 |] (Vec.map2 (fun a b -> a +. b) [| 1.0; 2.0 |] [| 4.0; 6.0 |]);
  check_vec "mapi" [| 0.0; 2.0; 6.0 |] (Vec.mapi (fun i x -> float_of_int i *. x) [| 5.0; 2.0; 3.0 |])

let test_concat () =
  check_vec "concat" [| 1.0; 2.0; 3.0 |] (Vec.concat [ [| 1.0 |]; [| 2.0; 3.0 |] ])

let test_approx_equal () =
  check_true "approx equal" (Vec.approx_equal ~tol:1e-6 [| 1.0 |] [| 1.0 +. 1e-8 |]);
  check_true "not approx equal" (not (Vec.approx_equal ~tol:1e-9 [| 1.0 |] [| 1.1 |]));
  check_true "length mismatch" (not (Vec.approx_equal [| 1.0 |] [| 1.0; 2.0 |]))

let float_array_gen =
  QCheck2.Gen.(array_size (int_range 1 20) (float_bound_inclusive 100.0))

let prop_add_commutative =
  qcheck "vec add commutative" QCheck2.Gen.(pair float_array_gen float_array_gen) (fun (x, y) ->
      let n = Stdlib.min (Array.length x) (Array.length y) in
      let x = Array.sub x 0 n and y = Array.sub y 0 n in
      Vec.approx_equal (Vec.add x y) (Vec.add y x))

let prop_dot_cauchy_schwarz =
  qcheck "cauchy-schwarz" QCheck2.Gen.(pair float_array_gen float_array_gen) (fun (x, y) ->
      let n = Stdlib.min (Array.length x) (Array.length y) in
      let x = Array.sub x 0 n and y = Array.sub y 0 n in
      Float.abs (Vec.dot x y) <= (Vec.norm2 x *. Vec.norm2 y) +. 1e-6)

let prop_scale_linearity =
  qcheck "scale distributes over add" QCheck2.Gen.(pair float_array_gen (float_bound_inclusive 10.0))
    (fun (x, a) ->
      Vec.approx_equal ~tol:1e-6 (Vec.scale a (Vec.add x x)) (Vec.add (Vec.scale a x) (Vec.scale a x)))

let prop_norm_triangle =
  qcheck "triangle inequality" QCheck2.Gen.(pair float_array_gen float_array_gen) (fun (x, y) ->
      let n = Stdlib.min (Array.length x) (Array.length y) in
      let x = Array.sub x 0 n and y = Array.sub y 0 n in
      Vec.norm2 (Vec.add x y) <= Vec.norm2 x +. Vec.norm2 y +. 1e-6)

let tests =
  [
    ( "vec",
      [
        case "linspace" test_linspace;
        case "arithmetic" test_arith;
        case "axpy" test_axpy;
        case "dot and norms" test_dot_norm;
        case "extrema" test_extrema;
        case "clamp" test_clamp;
        case "map variants" test_map;
        case "concat" test_concat;
        case "approx equal" test_approx_equal;
        prop_add_commutative;
        prop_dot_cauchy_schwarz;
        prop_scale_linearity;
        prop_norm_triangle;
      ] );
  ]
