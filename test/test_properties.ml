(* Cross-cutting property-based tests: invariants that must hold for
   random inputs across the whole stack. *)

open Numerics
open Testutil

(* Shared small kernel for the deconvolution properties. *)
let params = Cellpop.Params.paper_2011
let times = [| 0.0; 30.0; 60.0; 90.0; 120.0; 150.0; 180.0 |]

let kernel =
  lazy
    (Cellpop.Kernel.estimate ~smooth_window:5 params ~rng:(Rng.create 2100) ~n_cells:1500 ~times
       ~n_phi:101)

let basis = Spline.Natural.with_uniform_knots ~lo:0.0 ~hi:1.0 ~num_knots:10

let prop_kernel_normalized_random_params =
  qcheck ~count:10 "kernel rows normalized for random population parameters"
    QCheck2.Gen.(triple (float_range 0.08 0.35) (float_range 0.05 0.2) (int_range 1 10000))
    (fun (mu_sst, cv_cycle, seed) ->
      let p = { params with Cellpop.Params.mu_sst; cv_cycle } in
      let k =
        Cellpop.Kernel.estimate p ~rng:(Rng.create seed) ~n_cells:300
          ~times:[| 0.0; 60.0; 120.0 |] ~n_phi:51
      in
      Cellpop.Kernel.check_normalization k < 1e-9)

let prop_forward_monotone_in_profile =
  (* A pointwise-larger profile gives pointwise-larger measurements (the
     kernel is nonnegative). *)
  qcheck ~count:50 "forward model monotone"
    QCheck2.Gen.(array_size (return 101) (float_range 0.0 5.0))
    (fun f ->
      let k = Lazy.force kernel in
      let g1 = Deconv.Forward.apply k f in
      let g2 = Deconv.Forward.apply k (Array.map (fun v -> v +. 0.5) f) in
      Array.for_all2 (fun a b -> b >= a -. 1e-12) g1 g2)

let prop_forward_bounds =
  (* Measurements of a profile lie within [min f, max f] (Q is a
     probability density in phi). *)
  qcheck ~count:50 "forward model respects profile bounds"
    QCheck2.Gen.(array_size (return 101) (float_range 0.0 10.0))
    (fun f ->
      let k = Lazy.force kernel in
      let g = Deconv.Forward.apply k f in
      let lo = Vec.min f -. 1e-9 and hi = Vec.max f +. 1e-9 in
      Array.for_all (fun v -> v >= lo && v <= hi) g)

let prop_solver_positivity_random_data =
  qcheck ~count:15 "solver output nonnegative for random measurements"
    QCheck2.Gen.(array_size (return 7) (float_range 0.0 5.0))
    (fun g ->
      let problem =
        Deconv.Problem.create ~kernel:(Lazy.force kernel) ~basis ~measurements:g ~params ()
      in
      let estimate = Deconv.Solver.solve ~lambda:1e-3 problem in
      Array.for_all (fun v -> v >= -1e-6) estimate.Deconv.Solver.profile)

let prop_solver_constraints_random_data =
  qcheck ~count:15 "equality constraints hold for random measurements"
    QCheck2.Gen.(array_size (return 7) (float_range 0.0 5.0))
    (fun g ->
      let problem =
        Deconv.Problem.create ~kernel:(Lazy.force kernel) ~basis ~measurements:g ~params ()
      in
      let estimate = Deconv.Solver.solve ~lambda:1e-3 problem in
      Float.abs (Deconv.Constraints.residual_conservation params basis estimate.Deconv.Solver.alpha)
        < 1e-5
      && Float.abs
           (Deconv.Constraints.residual_rate_continuity params basis estimate.Deconv.Solver.alpha)
         < 1e-5)

let prop_solver_scale_equivariant =
  (* Scaling the data scales the estimate: the estimator is positively
     homogeneous (all constraints are homogeneous, the penalty quadratic). *)
  qcheck ~count:10 "estimator scale equivariance"
    QCheck2.Gen.(pair (array_size (return 7) (float_range 0.5 5.0)) (float_range 0.5 4.0))
    (fun (g, scale) ->
      let solve data =
        let problem =
          Deconv.Problem.create ~kernel:(Lazy.force kernel) ~basis ~measurements:data ~params ()
        in
        (Deconv.Solver.solve ~lambda:1e-3 problem).Deconv.Solver.profile
      in
      let f1 = solve g in
      let f2 = solve (Vec.scale scale g) in
      (* lambda is not rescaled, so demand only approximate equivariance. *)
      let rel_err = Stats.rmse (Vec.scale scale f1) f2 /. Float.max 1e-9 (Vec.norm_inf f2) in
      rel_err < 0.05)

let prop_qp_optimality =
  (* Random feasible perturbations of the QP solution never decrease the
     objective. *)
  qcheck ~count:25 "QP solution is optimal among feasible perturbations"
    QCheck2.Gen.(pair (int_range 1 100000) (float_range 0.01 0.5))
    (fun (seed, step) ->
      let rng = Rng.create seed in
      let n = 5 in
      let base = Mat.init n n (fun _ _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
      let h = Mat.add (Mat.gram base) (Mat.identity n) in
      let g = Array.init n (fun _ -> Rng.uniform rng ~lo:(-2.0) ~hi:2.0) in
      let solution =
        Optimize.Qp.solve
          { h; g; c_eq = None; d_eq = None; a_ineq = Some (Mat.identity n);
            b_ineq = Some (Vec.zeros n) }
      in
      let objective x = (0.5 *. Vec.dot x (Mat.mv h x)) +. Vec.dot g x in
      let x = solution.Optimize.Qp.x in
      let ok = ref true in
      for _ = 1 to 10 do
        let direction = Array.init n (fun _ -> Rng.normal rng ~mean:0.0 ~std:step) in
        let candidate = Array.mapi (fun i v -> Float.max 0.0 (v +. direction.(i))) x in
        if objective candidate < objective x -. 1e-7 then ok := false
      done;
      !ok)

let prop_noise_weighted_residuals_standard =
  (* Standardized residuals of the noise model have unit variance. *)
  qcheck ~count:10 "noise sigmas standardize residuals"
    QCheck2.Gen.(pair (int_range 1 100000) (float_range 0.02 0.3))
    (fun (seed, level) ->
      let rng = Rng.create seed in
      let g = Array.init 4000 (fun i -> 2.0 +. Float.sin (0.01 *. float_of_int i)) in
      let noisy, sigmas = Deconv.Noise.apply (Deconv.Noise.Gaussian_fraction level) rng g in
      let z = Array.init 4000 (fun i -> (noisy.(i) -. g.(i)) /. sigmas.(i)) in
      Float.abs (Stats.std z -. 1.0) < 0.08)

let prop_volume_partition =
  (* Daughter volumes always partition the mother exactly. *)
  qcheck ~count:100 "volume partition invariant"
    QCheck2.Gen.(pair (float_range 0.05 0.6) (float_range 0.5 3.0))
    (fun (phi_sst, v0) ->
      let v = Cellpop.Volume.smooth ~v0 ~phi_sst in
      Float.abs (v 1.0 -. (v 0.0 +. v phi_sst)) < 1e-9 *. v0)

let prop_population_conserves_phase_invariant =
  qcheck ~count:10 "population phases always in [0,1)"
    QCheck2.Gen.(pair (int_range 1 100000) (float_range 10.0 400.0))
    (fun (seed, t_end) ->
      let snapshots =
        Cellpop.Population.simulate params ~rng:(Rng.create seed) ~n0:100 ~times:[| 0.0; t_end |]
      in
      Array.for_all
        (fun (c : Cellpop.Cell.t) -> c.Cellpop.Cell.phase >= 0.0 && c.Cellpop.Cell.phase < 1.0)
        snapshots.(1).Cellpop.Population.cells)

let prop_rl_iteration_preserves_flux =
  (* Richardson-Lucy updates preserve total predicted signal reasonably:
     the fitted values stay within the data's convex range. *)
  qcheck ~count:10 "RL fitted values bounded by data range"
    QCheck2.Gen.(array_size (return 7) (float_range 0.5 5.0))
    (fun g ->
      let result =
        Deconv.Richardson_lucy.deconvolve ~iterations:50 (Lazy.force kernel) ~measurements:g ()
      in
      Array.for_all
        (fun v -> v >= 0.0 && v <= 2.0 *. Vec.max g)
        result.Deconv.Richardson_lucy.fitted)

let test_growth_rate_matches_euler_lotka () =
  let p = { params with Cellpop.Params.cv_cycle = 0.02; cv_sst = 0.02 } in
  let predicted = Cellpop.Population.euler_lotka_rate p in
  (* Doubling faster than a full cycle but slower than T(1-s). *)
  let doubling = log 2.0 /. predicted in
  check_true "doubling time between T(1-s) and T"
    (doubling > 150.0 *. 0.85 *. 0.9 && doubling < 150.0);
  let times = Vec.linspace 0.0 700.0 15 in
  let snapshots = Cellpop.Population.simulate p ~rng:(Rng.create 2101) ~n0:2000 ~times in
  let measured = Cellpop.Population.growth_rate snapshots in
  check_rel ~tol:0.06 "simulation matches branching-process theory" predicted measured

let test_growth_rate_increases_with_early_transition () =
  (* Larger phi_sst -> stalked daughters skip more of the cycle -> faster
     population growth. *)
  let rate mu = Cellpop.Population.euler_lotka_rate { params with Cellpop.Params.mu_sst = mu } in
  check_true "monotone in transition phase" (rate 0.25 > rate 0.15 && rate 0.15 > rate 0.05)

let tests =
  [
    ( "properties",
      [
        prop_kernel_normalized_random_params;
        prop_forward_monotone_in_profile;
        prop_forward_bounds;
        prop_solver_positivity_random_data;
        prop_solver_constraints_random_data;
        prop_solver_scale_equivariant;
        prop_qp_optimality;
        prop_noise_weighted_residuals_standard;
        prop_volume_partition;
        prop_population_conserves_phase_invariant;
        prop_rl_iteration_preserves_flux;
      ] );
    ( "growth",
      [
        case "Euler-Lotka growth rate" test_growth_rate_matches_euler_lotka;
        case "growth monotone in transition phase" test_growth_rate_increases_with_early_transition;
      ] );
  ]
