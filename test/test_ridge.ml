open Numerics
open Testutil

(* A small well-conditioned regression problem. *)
let make_problem () =
  let xs = Vec.linspace 0.0 1.0 30 in
  let a = Mat.init 30 3 (fun i j -> xs.(i) ** float_of_int j) in
  let b = Array.map (fun x -> 1.0 +. (2.0 *. x) -. (0.5 *. x *. x)) xs in
  (a, b)

let identity_penalty n = Mat.identity n

let test_zero_lambda_equals_lstsq () =
  let a, b = make_problem () in
  let fit = Optimize.Ridge.solve ~a ~b ~penalty:(identity_penalty 3) ~lambda:0.0 () in
  let lstsq = Linalg.qr_lstsq a b in
  check_vec ~tol:1e-8 "lambda 0 = least squares" lstsq fit.Optimize.Ridge.x;
  check_vec ~tol:1e-8 "recovers polynomial" [| 1.0; 2.0; -0.5 |] fit.Optimize.Ridge.x;
  check_close ~tol:1e-10 "zero residuals" 0.0 fit.Optimize.Ridge.rss

let test_large_lambda_shrinks () =
  let a, b = make_problem () in
  let small = Optimize.Ridge.solve ~a ~b ~penalty:(identity_penalty 3) ~lambda:1e-6 () in
  let large = Optimize.Ridge.solve ~a ~b ~penalty:(identity_penalty 3) ~lambda:1e8 () in
  check_true "large lambda shrinks coefficients"
    (Vec.norm2 large.Optimize.Ridge.x < 0.01 *. Vec.norm2 small.Optimize.Ridge.x)

let test_edf_range () =
  let a, b = make_problem () in
  let fit0 = Optimize.Ridge.solve ~a ~b ~penalty:(identity_penalty 3) ~lambda:1e-10 () in
  check_close ~tol:1e-3 "edf at lambda 0 = n_params" 3.0 fit0.Optimize.Ridge.edf;
  let fit_inf = Optimize.Ridge.solve ~a ~b ~penalty:(identity_penalty 3) ~lambda:1e10 () in
  check_true "edf decreases with lambda" (fit_inf.Optimize.Ridge.edf < 0.01)

let test_edf_monotone () =
  let a, b = make_problem () in
  let previous = ref Float.infinity in
  List.iter
    (fun lambda ->
      let fit = Optimize.Ridge.solve ~a ~b ~penalty:(identity_penalty 3) ~lambda () in
      check_true "edf monotone in lambda" (fit.Optimize.Ridge.edf <= !previous +. 1e-9);
      previous := fit.Optimize.Ridge.edf)
    [ 1e-8; 1e-4; 1e-2; 1.0; 100.0 ]

let test_weights_pull_fit () =
  (* Two inconsistent measurements of one parameter: the weighted fit sits
     closer to the heavier point. *)
  let a = Mat.of_rows [| [| 1.0 |]; [| 1.0 |] |] in
  let b = [| 0.0; 1.0 |] in
  let fit =
    Optimize.Ridge.solve ~a ~b ~weights:[| 9.0; 1.0 |] ~penalty:(Mat.zeros 1 1) ~lambda:0.0 ()
  in
  check_close ~tol:1e-10 "weighted mean" 0.1 fit.Optimize.Ridge.x.(0)

let test_normal_matrix () =
  let a, _ = make_problem () in
  let w = Vec.ones 30 in
  let p = identity_penalty 3 in
  let normal = Optimize.Ridge.normal_matrix ~a ~weights:w ~penalty:p ~lambda:2.0 in
  let expected = Mat.add (Mat.gram a) (Mat.scale 2.0 p) in
  check_true "AtWA + lambda P" (Mat.approx_equal ~tol:1e-9 expected normal)

let test_gcv_finite_and_positive () =
  let a, b = make_problem () in
  let noisy = Array.mapi (fun i v -> v +. (0.05 *. Float.sin (float_of_int (7 * i)))) b in
  List.iter
    (fun lambda ->
      let fit = Optimize.Ridge.solve ~a ~b:noisy ~penalty:(identity_penalty 3) ~lambda () in
      check_true "gcv finite" (Float.is_finite fit.Optimize.Ridge.gcv);
      check_true "gcv positive" (fit.Optimize.Ridge.gcv >= 0.0))
    [ 1e-6; 1e-3; 1.0 ]

let test_fitted_and_residuals_consistent () =
  let a, b = make_problem () in
  let fit = Optimize.Ridge.solve ~a ~b ~penalty:(identity_penalty 3) ~lambda:0.1 () in
  check_vec ~tol:1e-10 "fitted = A x" (Mat.mv a fit.Optimize.Ridge.x) fit.Optimize.Ridge.fitted;
  check_vec ~tol:1e-10 "residual identity" (Vec.sub b fit.Optimize.Ridge.fitted)
    fit.Optimize.Ridge.residuals

let tests =
  [
    ( "ridge",
      [
        case "lambda 0 equals least squares" test_zero_lambda_equals_lstsq;
        case "large lambda shrinks" test_large_lambda_shrinks;
        case "edf range" test_edf_range;
        case "edf monotone" test_edf_monotone;
        case "weights pull the fit" test_weights_pull_fit;
        case "normal matrix assembly" test_normal_matrix;
        case "gcv finite" test_gcv_finite_and_positive;
        case "fitted/residual consistency" test_fitted_and_residuals_consistent;
      ] );
  ]
