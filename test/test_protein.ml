open Numerics
open Testutil

let phases = Array.init 200 (fun i -> (float_of_int i +. 0.5) /. 200.0)

let test_constant_mrna_equilibrium () =
  (* Constant source: p* = k_tl m / k_deg everywhere. *)
  let k = { Biomodels.Protein.translation = 0.2; degradation = 0.05 } in
  let p = Biomodels.Protein.steady_profile k ~period:150.0 ~mrna:(fun _ -> 3.0) ~phases in
  Array.iter (fun v -> check_rel ~tol:1e-4 "equilibrium level" (0.2 *. 3.0 /. 0.05) v) p

let test_periodicity () =
  let k = { Biomodels.Protein.translation = 0.1; degradation = 0.02 } in
  let mrna phi = 1.0 +. Float.max 0.0 (Float.sin (2.0 *. Float.pi *. phi)) in
  let endpoints = [| 1e-6; 1.0 -. 1e-6 |] in
  let p = Biomodels.Protein.steady_profile k ~period:150.0 ~mrna ~phases:endpoints in
  check_rel ~tol:1e-3 "p(0) = p(1)" p.(0) p.(1)

let test_ode_residual () =
  (* The returned profile satisfies dp/dphi = T(k_tl m - k_deg p). *)
  let k = { Biomodels.Protein.translation = 0.15; degradation = 0.03 } in
  let period = 150.0 in
  let mrna phi = 2.0 +. Float.cos (2.0 *. Float.pi *. phi) in
  let eval phi_array = Biomodels.Protein.steady_profile k ~period ~mrna ~phases:phi_array in
  List.iter
    (fun phi ->
      (* h must straddle several panels of the 2048-point cumulative grid. *)
      let h = 5e-3 in
      let values = eval [| phi -. h; phi; phi +. h |] in
      let derivative = (values.(2) -. values.(0)) /. (2.0 *. h) in
      let expected = period *. ((k.Biomodels.Protein.translation *. mrna phi) -. (k.Biomodels.Protein.degradation *. values.(1))) in
      check_rel ~tol:2e-2 (Printf.sprintf "ODE residual at %g" phi) expected derivative)
    [ 0.2; 0.5; 0.8 ]

let test_protein_lags_mrna () =
  (* A pulsed transcript yields a protein peak strictly later in phase. *)
  let k = { Biomodels.Protein.translation = 0.1; degradation = 0.04 } in
  let mrna = Biomodels.Gene_profile.gaussian_pulse ~center:0.4 ~width:0.08 ~height:5.0 () in
  let p = Biomodels.Protein.steady_profile k ~period:150.0 ~mrna ~phases in
  let protein_peak = phases.(Vec.argmax p) in
  let lag = Biomodels.Protein.phase_lag ~mrna_peak:0.4 ~protein_peak in
  check_true "protein peaks after mRNA" (lag > 0.01 && lag < 0.45)

let test_lag_shrinks_with_fast_degradation () =
  (* Faster turnover tracks the transcript more tightly. *)
  let mrna = Biomodels.Gene_profile.gaussian_pulse ~center:0.4 ~width:0.08 ~height:5.0 () in
  let lag_for degradation =
    let k = { Biomodels.Protein.translation = 0.1; degradation } in
    let p = Biomodels.Protein.steady_profile k ~period:150.0 ~mrna ~phases in
    Biomodels.Protein.phase_lag ~mrna_peak:0.4 ~protein_peak:phases.(Vec.argmax p)
  in
  check_true "fast turnover, small lag" (lag_for 0.2 < lag_for 0.02)

let test_nonnegative () =
  let k = { Biomodels.Protein.translation = 0.05; degradation = 0.01 } in
  let p = Biomodels.Protein.steady_profile k ~period:150.0 ~mrna:Biomodels.Ftsz.profile ~phases in
  Array.iter (fun v -> check_true "nonnegative protein" (v >= 0.0)) p

let test_phase_lag_wraps () =
  check_close ~tol:1e-12 "wrapping" 0.3 (Biomodels.Protein.phase_lag ~mrna_peak:0.9 ~protein_peak:0.2)

let tests =
  [
    ( "protein",
      [
        case "constant mRNA equilibrium" test_constant_mrna_equilibrium;
        case "periodic steady state" test_periodicity;
        case "satisfies the ODE" test_ode_residual;
        case "protein lags mRNA" test_protein_lags_mrna;
        case "lag shrinks with degradation" test_lag_shrinks_with_fast_degradation;
        case "nonnegative" test_nonnegative;
        case "phase lag wraps" test_phase_lag_wraps;
      ] );
  ]
